// Package model implements DNN model schemas for Nexus: layer chains with
// compute/size metadata, a model database, SHA-256 prefix hashing for
// common-subgraph detection, and the transfer-learning "specialize"
// operation that retrains only the last few layers (§2.2, §6.3).
//
// Models here are structural: they carry the FLOP counts, parameter sizes
// and weight identities that scheduling and prefix batching depend on, not
// numerical weights. Executing one on the simulated GPU consumes virtual
// time according to its batching profile (see internal/profiler and
// internal/gpusim).
package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// LayerKind identifies the operator a layer computes.
type LayerKind string

// Layer kinds used by the catalog. The set is open: any string works, and
// hashing treats kinds opaquely.
const (
	Input   LayerKind = "input"
	Conv    LayerKind = "conv"
	FC      LayerKind = "fc"
	Pool    LayerKind = "pool"
	BN      LayerKind = "bn"
	ReLU    LayerKind = "relu"
	Concat  LayerKind = "concat"
	Softmax LayerKind = "softmax"
	Detect  LayerKind = "detect" // detection head (SSD-style)
)

// Layer is one operator in a model's schema.
type Layer struct {
	Name       string    // human-readable, not hashed
	Kind       LayerKind // operator type
	FLOPs      int64     // compute per single input
	ParamBytes int64     // trained parameter size
	ActBytes   int64     // activation output size per input
	// WeightsID identifies the trained weights. Two layers batch together
	// only if their structure AND weights match; specialization assigns
	// fresh WeightsIDs to retrained layers (§6.3 "Prefix Batching").
	WeightsID string
}

// hashInto mixes the layer's batching-relevant identity into h.
// Name is deliberately excluded: renaming a layer must not break sharing.
func (l *Layer) hashInto(h *hashChain) {
	h.WriteString(string(l.Kind))
	h.WriteInt64(l.FLOPs)
	h.WriteInt64(l.ParamBytes)
	h.WriteInt64(l.ActBytes)
	h.WriteString(l.WeightsID)
}

// Model is a DNN schema: a chain of layers from input to output. Nexus
// treats models as opaque computations with a batching profile; the layer
// chain exists to support prefix detection and memory accounting.
type Model struct {
	ID     string  // unique within a DB
	Task   string  // e.g. "object-detection"
	Layers []Layer // layer 0 is the input layer

	prefixHashes []string // cumulative hash after each layer, lazily built
}

// New constructs a model and validates its schema.
func New(id, task string, layers []Layer) (*Model, error) {
	if id == "" {
		return nil, fmt.Errorf("model: empty id")
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("model %q: no layers", id)
	}
	if layers[0].Kind != Input {
		return nil, fmt.Errorf("model %q: first layer must be input, got %q", id, layers[0].Kind)
	}
	for i, l := range layers {
		if l.FLOPs < 0 || l.ParamBytes < 0 || l.ActBytes < 0 {
			return nil, fmt.Errorf("model %q: layer %d has negative size", id, i)
		}
	}
	return &Model{ID: id, Task: task, Layers: layers}, nil
}

// MustNew is New but panics on error; for catalog construction.
func MustNew(id, task string, layers []Layer) *Model {
	m, err := New(id, task, layers)
	if err != nil {
		panic(err)
	}
	return m
}

// NumLayers returns the layer count.
func (m *Model) NumLayers() int { return len(m.Layers) }

// FLOPs returns total compute per input.
func (m *Model) FLOPs() int64 {
	var sum int64
	for _, l := range m.Layers {
		sum += l.FLOPs
	}
	return sum
}

// ParamBytes returns total parameter size.
func (m *Model) ParamBytes() int64 {
	var sum int64
	for _, l := range m.Layers {
		sum += l.ParamBytes
	}
	return sum
}

// SuffixFLOPs returns the compute of layers from index k (inclusive) on.
func (m *Model) SuffixFLOPs(k int) int64 {
	var sum int64
	for _, l := range m.Layers[k:] {
		sum += l.FLOPs
	}
	return sum
}

// SuffixParamBytes returns the parameter size of layers from index k on.
func (m *Model) SuffixParamBytes(k int) int64 {
	var sum int64
	for _, l := range m.Layers[k:] {
		sum += l.ParamBytes
	}
	return sum
}

// PrefixHash returns the hash of the first k layers (1 <= k <= NumLayers).
// Equal hashes mean the two prefixes compute the same function with the
// same weights, so their executions can be batched together.
func (m *Model) PrefixHash(k int) string {
	if k < 1 || k > len(m.Layers) {
		panic(fmt.Sprintf("model %q: PrefixHash(%d) out of range [1,%d]", m.ID, k, len(m.Layers)))
	}
	m.buildHashes()
	return m.prefixHashes[k-1]
}

func (m *Model) buildHashes() {
	if m.prefixHashes != nil {
		return
	}
	m.prefixHashes = make([]string, len(m.Layers))
	h := newHashState()
	for i := range m.Layers {
		m.Layers[i].hashInto(h)
		m.prefixHashes[i] = h.SumHex() // SumHex folds, chaining layer i in
	}
}

// Clone returns a deep copy with a new ID.
func (m *Model) Clone(newID string) *Model {
	layers := make([]Layer, len(m.Layers))
	copy(layers, m.Layers)
	return &Model{ID: newID, Task: m.Task, Layers: layers}
}

// Specialize models transfer learning: it returns a copy of m whose last
// retrain layers carry fresh weights (and hence fresh WeightsIDs). The
// structure is unchanged, so the first NumLayers-retrain layers still hash
// identically to the base model and remain prefix-batchable with it.
func Specialize(m *Model, newID string, retrain int) (*Model, error) {
	if retrain < 1 || retrain >= m.NumLayers() {
		return nil, fmt.Errorf("model %q: retrain %d out of range [1,%d)", m.ID, retrain, m.NumLayers())
	}
	s := m.Clone(newID)
	n := len(s.Layers)
	for i := n - retrain; i < n; i++ {
		s.Layers[i].WeightsID = fmt.Sprintf("%s/%s#%d", newID, s.Layers[i].Kind, i)
	}
	return s, nil
}

// AppendFC returns a copy of m with extra FC layers appended before output,
// used to build the "2 FC" / "3 FC" suffix variants of Figure 15.
func AppendFC(m *Model, newID string, extra int, units int64) *Model {
	s := m.Clone(newID)
	for i := 0; i < extra; i++ {
		s.Layers = append(s.Layers, Layer{
			Name:       fmt.Sprintf("fc_extra%d", i),
			Kind:       FC,
			FLOPs:      2 * units * units,
			ParamBytes: units * units * 4,
			ActBytes:   units * 4,
			WeightsID:  fmt.Sprintf("%s/fc_extra#%d", newID, i),
		})
	}
	return s
}

// CommonPrefixLen returns the number of leading layers a and b share
// (identical structure and weights).
func CommonPrefixLen(a, b *Model) int {
	n := min(a.NumLayers(), b.NumLayers())
	a.buildHashes()
	b.buildHashes()
	// Binary search on the longest matching prefix: prefix hashes are
	// cumulative, so match(k) is monotone.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if a.prefixHashes[mid-1] == b.prefixHashes[mid-1] {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// DB is a model database (the management plane's model store, §5).
type DB struct {
	models map[string]*Model
}

// NewDB returns an empty model database.
func NewDB() *DB {
	return &DB{models: make(map[string]*Model)}
}

// Register adds a model. Re-registering an ID is an error.
func (db *DB) Register(m *Model) error {
	if _, ok := db.models[m.ID]; ok {
		return fmt.Errorf("model %q already registered", m.ID)
	}
	db.models[m.ID] = m
	return nil
}

// MustRegister is Register but panics on error.
func (db *DB) MustRegister(m *Model) {
	if err := db.Register(m); err != nil {
		panic(err)
	}
}

// Get returns the model or an error if absent.
func (db *DB) Get(id string) (*Model, error) {
	m, ok := db.models[id]
	if !ok {
		return nil, fmt.Errorf("model %q not registered", id)
	}
	return m, nil
}

// MustGet is Get but panics on error.
func (db *DB) MustGet(id string) *Model {
	m, err := db.Get(id)
	if err != nil {
		panic(err)
	}
	return m
}

// IDs returns registered model IDs, sorted.
func (db *DB) IDs() []string {
	ids := make([]string, 0, len(db.models))
	for id := range db.models {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of registered models.
func (db *DB) Len() int { return len(db.models) }

// PrefixGroup is a set of models that share their first PrefixLen layers
// and can therefore execute that prefix as one batch (§6.3).
type PrefixGroup struct {
	PrefixLen int
	ModelIDs  []string // sorted
}

// PrefixGroups partitions the given model IDs into maximal groups of models
// sharing a common prefix of at least minShared layers. Models with no
// sufficiently-shared partner form singleton groups with PrefixLen equal to
// their own depth. Groups are returned in a deterministic order.
func (db *DB) PrefixGroups(ids []string, minShared int) ([]PrefixGroup, error) {
	if minShared < 1 {
		minShared = 1
	}
	models := make([]*Model, len(ids))
	for i, id := range ids {
		m, err := db.Get(id)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	type group struct {
		prefixLen int
		members   []*Model
	}
	var groups []*group
	sorted := make([]*Model, len(models))
	copy(sorted, models)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, m := range sorted {
		best := -1
		bestLCP := 0
		for gi, g := range groups {
			lcp := CommonPrefixLen(g.members[0], m)
			if lcp > g.prefixLen {
				lcp = g.prefixLen
			}
			if lcp >= minShared && lcp > bestLCP {
				best, bestLCP = gi, lcp
			}
		}
		if best >= 0 {
			g := groups[best]
			g.members = append(g.members, m)
			if bestLCP < g.prefixLen {
				g.prefixLen = bestLCP
			}
		} else {
			groups = append(groups, &group{prefixLen: m.NumLayers(), members: []*Model{m}})
		}
	}
	out := make([]PrefixGroup, len(groups))
	for i, g := range groups {
		pg := PrefixGroup{PrefixLen: g.prefixLen}
		for _, m := range g.members {
			pg.ModelIDs = append(pg.ModelIDs, m.ID)
		}
		sort.Strings(pg.ModelIDs)
		out[i] = pg
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ModelIDs[0] < out[j].ModelIDs[0] })
	return out, nil
}

// --- small hash helper -------------------------------------------------

// hashChain is a rolling SHA-256 over layer identities: after each layer,
// state = SHA256(state || layer fields). Equal states imply equal prefixes.
type hashChain struct {
	state [32]byte
	buf   []byte
}

func newHashState() *hashChain { return &hashChain{} }

func (h *hashChain) WriteString(s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.buf = append(h.buf, n[:]...)
	h.buf = append(h.buf, s...)
}

func (h *hashChain) WriteInt64(v int64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(v))
	h.buf = append(h.buf, n[:]...)
}

// fold absorbs the buffered layer fields into the chained state.
func (h *hashChain) fold() {
	d := sha256.New()
	d.Write(h.state[:])
	d.Write(h.buf)
	copy(h.state[:], d.Sum(nil))
	h.buf = h.buf[:0]
}

// SumHex folds pending fields and returns the chained digest in hex.
func (h *hashChain) SumHex() string {
	h.fold()
	return hex.EncodeToString(h.state[:])
}
