package model

import "fmt"

// Catalog model IDs. These are the models the paper's evaluation uses
// (Table 1, §7.1, §7.3, §7.5).
const (
	LeNet5       = "lenet5"
	VGG7         = "vgg7"
	ResNet50     = "resnet50"
	Inception4   = "inception4"
	InceptionV3  = "inception_v3"
	Darknet53    = "darknet53"
	SSD          = "ssd"
	VGGFace      = "vgg_face"
	GoogLeNetCar = "googlenet_car"
	OpenPose     = "openpose"
	GazeNet      = "gazenet"
	TextCRNN     = "text_crnn"
)

// CatalogIDs lists every model the built-in catalog provides.
func CatalogIDs() []string {
	return []string{
		LeNet5, VGG7, ResNet50, Inception4, InceptionV3, Darknet53,
		SSD, VGGFace, GoogLeNetCar, OpenPose, GazeNet, TextCRNN,
	}
}

// Catalog returns a model DB populated with representative schemas for the
// paper's model zoo. Layer structures are synthetic but carry realistic
// total FLOPs and parameter sizes, with compute concentrated in conv stacks
// and parameters concentrated in the final FC layers — the shape that makes
// prefix batching profitable (§6.3).
func Catalog() *DB {
	db := NewDB()
	db.MustRegister(buildConvNet(LeNet5, "digit-recognition", convNetSpec{
		blocks: 2, blockFLOPs: 8e6, blockParams: 20e3,
		fcUnits: 84, classes: 10,
	}))
	db.MustRegister(buildConvNet(VGG7, "classification", convNetSpec{
		blocks: 5, blockFLOPs: 120e6, blockParams: 500e3,
		fcUnits: 512, classes: 100,
	}))
	db.MustRegister(buildConvNet(ResNet50, "object-recognition", convNetSpec{
		blocks: 16, blockFLOPs: 240e6, blockParams: 1.45e6,
		fcUnits: 2048, classes: 1000,
	}))
	db.MustRegister(buildConvNet(Inception4, "object-recognition", convNetSpec{
		blocks: 17, blockFLOPs: 520e6, blockParams: 2.4e6,
		fcUnits: 1536, classes: 1000,
	}))
	db.MustRegister(buildConvNet(InceptionV3, "object-recognition", convNetSpec{
		blocks: 11, blockFLOPs: 520e6, blockParams: 2.0e6,
		fcUnits: 2048, classes: 1000,
	}))
	db.MustRegister(buildConvNet(Darknet53, "object-recognition", convNetSpec{
		blocks: 26, blockFLOPs: 720e6, blockParams: 1.55e6,
		fcUnits: 1024, classes: 1000,
	}))
	db.MustRegister(buildDetector(SSD, "object-detection", 22, 1.4e9, 4.5e6))
	db.MustRegister(buildConvNet(VGGFace, "face-recognition", convNetSpec{
		blocks: 13, blockFLOPs: 1.18e9, blockParams: 1.1e6,
		fcUnits: 4096, classes: 2622,
	}))
	db.MustRegister(buildConvNet(GoogLeNetCar, "car-make-model", convNetSpec{
		blocks: 9, blockFLOPs: 170e6, blockParams: 650e3,
		fcUnits: 1024, classes: 431,
	}))
	db.MustRegister(buildConvNet(OpenPose, "pose-estimation", convNetSpec{
		blocks: 14, blockFLOPs: 2.0e9, blockParams: 3.7e6,
		fcUnits: 512, classes: 38,
	}))
	db.MustRegister(buildConvNet(GazeNet, "gaze-estimation", convNetSpec{
		blocks: 6, blockFLOPs: 150e6, blockParams: 800e3,
		fcUnits: 256, classes: 3,
	}))
	db.MustRegister(buildConvNet(TextCRNN, "text-recognition", convNetSpec{
		blocks: 7, blockFLOPs: 300e6, blockParams: 1.2e6,
		fcUnits: 512, classes: 96,
	}))
	return db
}

type convNetSpec struct {
	blocks      int
	blockFLOPs  float64
	blockParams float64
	fcUnits     int64
	classes     int64
}

// buildConvNet produces input -> N conv blocks -> pool -> FC -> softmax.
// The FC carries base weights ("<id>/base"): the conv trunk is the shared
// prefix and the FC head is what transfer learning retrains.
func buildConvNet(id, task string, spec convNetSpec) *Model {
	layers := []Layer{{
		Name: "input", Kind: Input,
		ActBytes:  224 * 224 * 3,
		WeightsID: "",
	}}
	for i := 0; i < spec.blocks; i++ {
		layers = append(layers, Layer{
			Name:       fmt.Sprintf("conv_block%d", i),
			Kind:       Conv,
			FLOPs:      int64(spec.blockFLOPs),
			ParamBytes: int64(spec.blockParams) * 4,
			ActBytes:   256 * 1024,
			WeightsID:  fmt.Sprintf("%s/conv#%d", id, i),
		})
	}
	layers = append(layers,
		Layer{
			Name: "global_pool", Kind: Pool,
			FLOPs:    spec.fcUnits * 49,
			ActBytes: spec.fcUnits * 4,
		},
		Layer{
			Name:       "fc",
			Kind:       FC,
			FLOPs:      2 * spec.fcUnits * spec.classes,
			ParamBytes: spec.fcUnits * spec.classes * 4,
			ActBytes:   spec.classes * 4,
			WeightsID:  id + "/fc",
		},
		Layer{
			Name: "softmax", Kind: Softmax,
			FLOPs:    spec.classes * 3,
			ActBytes: spec.classes * 4,
		},
	)
	return MustNew(id, task, layers)
}

// buildDetector produces a detector: conv trunk plus multi-scale detection
// heads instead of a classifier.
func buildDetector(id, task string, blocks int, blockFLOPs, blockParams float64) *Model {
	layers := []Layer{{Name: "input", Kind: Input, ActBytes: 512 * 512 * 3}}
	for i := 0; i < blocks; i++ {
		layers = append(layers, Layer{
			Name:       fmt.Sprintf("conv_block%d", i),
			Kind:       Conv,
			FLOPs:      int64(blockFLOPs),
			ParamBytes: int64(blockParams) * 4,
			ActBytes:   512 * 1024,
			WeightsID:  fmt.Sprintf("%s/conv#%d", id, i),
		})
	}
	layers = append(layers, Layer{
		Name:       "detect_heads",
		Kind:       Detect,
		FLOPs:      int64(blockFLOPs / 2),
		ParamBytes: int64(blockParams) * 4,
		ActBytes:   64 * 1024,
		WeightsID:  id + "/detect",
	})
	return MustNew(id, task, layers)
}

// SpecializeFamily builds n specialized variants of base (retraining the
// last `retrain` layers), registers them in db, and returns their IDs.
// Variant IDs are "<base>-v<k>".
func SpecializeFamily(db *DB, base string, n, retrain int) ([]string, error) {
	bm, err := db.Get(base)
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, n)
	for k := 0; k < n; k++ {
		id := fmt.Sprintf("%s-v%d", base, k)
		v, err := Specialize(bm, id, retrain)
		if err != nil {
			return nil, err
		}
		if err := db.Register(v); err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}
