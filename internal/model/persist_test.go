package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestDBSaveLoadRoundTrip(t *testing.T) {
	db := Catalog()
	if _, err := SpecializeFamily(db, ResNet50, 2, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDB(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("loaded %d models, want %d", loaded.Len(), db.Len())
	}
	// Structural identity: prefix hashes survive the round trip, so prefix
	// groups are preserved.
	a := db.MustGet("resnet50-v0")
	b := loaded.MustGet("resnet50-v0")
	if a.PrefixHash(a.NumLayers()) != b.PrefixHash(b.NumLayers()) {
		t.Fatal("prefix hash changed across persistence")
	}
	base := loaded.MustGet(ResNet50)
	if got := CommonPrefixLen(base, b); got != base.NumLayers()-1 {
		t.Fatalf("shared prefix after reload = %d", got)
	}
}

func TestLoadDBRejectsInvalid(t *testing.T) {
	bad := `{"models":[{"id":"m","layers":[{"Kind":"conv"}]}]}`
	if _, err := LoadDB(strings.NewReader(bad)); err == nil {
		t.Fatal("model without input layer accepted")
	}
	if _, err := LoadDB(strings.NewReader(`{"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	dup := `{"models":[
	  {"id":"m","layers":[{"Kind":"input"}]},
	  {"id":"m","layers":[{"Kind":"input"}]}]}`
	if _, err := LoadDB(strings.NewReader(dup)); err == nil {
		t.Fatal("duplicate ids accepted")
	}
}
