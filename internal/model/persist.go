package model

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// dbDocument is the JSON persistence format of a model database — the
// management plane's durable model store (§5 "Models are stored in a model
// database").
type dbDocument struct {
	Models []modelDocument `json:"models"`
}

type modelDocument struct {
	ID     string  `json:"id"`
	Task   string  `json:"task,omitempty"`
	Layers []Layer `json:"layers"`
}

// MarshalJSON is implemented on Layer via struct tags below; Layer is
// already a flat value type, so the default encoding suffices.

// Save writes the database as JSON, models sorted by ID for stable diffs.
func (db *DB) Save(w io.Writer) error {
	doc := dbDocument{}
	ids := db.IDs()
	sort.Strings(ids)
	for _, id := range ids {
		m := db.models[id]
		doc.Models = append(doc.Models, modelDocument{ID: m.ID, Task: m.Task, Layers: m.Layers})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadDB reads a database saved by Save, validating every model.
func LoadDB(r io.Reader) (*DB, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc dbDocument
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("model: loading db: %w", err)
	}
	db := NewDB()
	for _, md := range doc.Models {
		m, err := New(md.ID, md.Task, md.Layers)
		if err != nil {
			return nil, fmt.Errorf("model: loading db: %w", err)
		}
		if err := db.Register(m); err != nil {
			return nil, err
		}
	}
	return db, nil
}
