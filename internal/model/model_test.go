package model

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func simpleModel(t *testing.T, id string, n int) *Model {
	t.Helper()
	layers := []Layer{{Name: "input", Kind: Input, ActBytes: 100}}
	for i := 1; i < n; i++ {
		layers = append(layers, Layer{
			Name: fmt.Sprintf("l%d", i), Kind: Conv,
			FLOPs: int64(i) * 1000, ParamBytes: int64(i) * 400, ActBytes: 64,
			WeightsID: fmt.Sprintf("%s/w%d", "shared", i),
		})
	}
	m, err := New(id, "test", layers)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", "t", []Layer{{Kind: Input}}); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := New("m", "t", nil); err == nil {
		t.Error("no layers accepted")
	}
	if _, err := New("m", "t", []Layer{{Kind: Conv}}); err == nil {
		t.Error("non-input first layer accepted")
	}
	if _, err := New("m", "t", []Layer{{Kind: Input}, {Kind: Conv, FLOPs: -1}}); err == nil {
		t.Error("negative FLOPs accepted")
	}
}

func TestAggregates(t *testing.T) {
	m := simpleModel(t, "m", 4) // layers 0..3, FLOPs 0,1000,2000,3000
	if m.FLOPs() != 6000 {
		t.Fatalf("FLOPs = %d, want 6000", m.FLOPs())
	}
	if m.ParamBytes() != 2400 {
		t.Fatalf("ParamBytes = %d, want 2400", m.ParamBytes())
	}
	if m.SuffixFLOPs(2) != 5000 {
		t.Fatalf("SuffixFLOPs(2) = %d, want 5000", m.SuffixFLOPs(2))
	}
	if m.SuffixParamBytes(3) != 1200 {
		t.Fatalf("SuffixParamBytes(3) = %d", m.SuffixParamBytes(3))
	}
}

func TestPrefixHashDeterministicAndDistinct(t *testing.T) {
	a := simpleModel(t, "a", 5)
	b := simpleModel(t, "b", 5)
	for k := 1; k <= 5; k++ {
		if a.PrefixHash(k) != b.PrefixHash(k) {
			t.Fatalf("identical structures differ at prefix %d", k)
		}
	}
	if a.PrefixHash(2) == a.PrefixHash(3) {
		t.Fatal("different prefix lengths hash equal")
	}
}

func TestPrefixHashOutOfRangePanics(t *testing.T) {
	m := simpleModel(t, "m", 3)
	for _, k := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PrefixHash(%d) did not panic", k)
				}
			}()
			m.PrefixHash(k)
		}()
	}
}

func TestHashIgnoresLayerName(t *testing.T) {
	a := simpleModel(t, "a", 3)
	b := simpleModel(t, "b", 3)
	b.Layers[2].Name = "renamed"
	if CommonPrefixLen(a, b) != 3 {
		t.Fatal("renaming a layer broke prefix sharing")
	}
}

func TestHashSensitiveToWeights(t *testing.T) {
	a := simpleModel(t, "a", 3)
	b := simpleModel(t, "b", 3)
	b.Layers[2].WeightsID = "different"
	if got := CommonPrefixLen(a, b); got != 2 {
		t.Fatalf("CommonPrefixLen = %d, want 2", got)
	}
}

func TestSpecialize(t *testing.T) {
	base := simpleModel(t, "base", 10)
	v, err := Specialize(base, "v1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumLayers() != base.NumLayers() {
		t.Fatal("specialization changed depth")
	}
	if got := CommonPrefixLen(base, v); got != 8 {
		t.Fatalf("CommonPrefixLen = %d, want 8", got)
	}
	// Two variants share the same prefix but not each other's suffix.
	v2, _ := Specialize(base, "v2", 2)
	if got := CommonPrefixLen(v, v2); got != 8 {
		t.Fatalf("variant-variant CommonPrefixLen = %d, want 8", got)
	}
	// Base must be untouched.
	if !strings.HasPrefix(base.Layers[9].WeightsID, "shared/") {
		t.Fatal("Specialize mutated the base model")
	}
}

func TestSpecializeValidation(t *testing.T) {
	base := simpleModel(t, "base", 4)
	if _, err := Specialize(base, "v", 0); err == nil {
		t.Error("retrain=0 accepted")
	}
	if _, err := Specialize(base, "v", 4); err == nil {
		t.Error("retrain=depth accepted")
	}
}

func TestAppendFC(t *testing.T) {
	base := simpleModel(t, "base", 4)
	v := AppendFC(base, "v", 2, 128)
	if v.NumLayers() != 6 {
		t.Fatalf("NumLayers = %d, want 6", v.NumLayers())
	}
	if got := CommonPrefixLen(base, v); got != 4 {
		t.Fatalf("CommonPrefixLen = %d, want 4", got)
	}
	wantParams := base.ParamBytes() + 2*128*128*4
	if v.ParamBytes() != wantParams {
		t.Fatalf("ParamBytes = %d, want %d", v.ParamBytes(), wantParams)
	}
}

func TestDB(t *testing.T) {
	db := NewDB()
	m := simpleModel(t, "m", 3)
	if err := db.Register(m); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(m); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := db.Get("missing"); err == nil {
		t.Fatal("Get of missing model succeeded")
	}
	got, err := db.Get("m")
	if err != nil || got != m {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestPrefixGroups(t *testing.T) {
	db := NewDB()
	base := simpleModel(t, "base", 10)
	db.MustRegister(base)
	ids, err := SpecializeFamily(db, "base", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := simpleModel(t, "other", 10)
	other.Layers[1].WeightsID = "unrelated"
	db.MustRegister(other)

	all := append([]string{"base", "other"}, ids...)
	groups, err := db.PrefixGroups(all, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(groups), groups)
	}
	var fam, single *PrefixGroup
	for i := range groups {
		if len(groups[i].ModelIDs) > 1 {
			fam = &groups[i]
		} else {
			single = &groups[i]
		}
	}
	if fam == nil || single == nil {
		t.Fatalf("unexpected grouping: %+v", groups)
	}
	if fam.PrefixLen != 9 {
		t.Fatalf("family PrefixLen = %d, want 9 (all but retrained fc)", fam.PrefixLen)
	}
	if len(fam.ModelIDs) != 4 {
		t.Fatalf("family size = %d, want 4", len(fam.ModelIDs))
	}
	if single.ModelIDs[0] != "other" {
		t.Fatalf("singleton = %v, want other", single.ModelIDs)
	}
}

func TestPrefixGroupsUnknownModel(t *testing.T) {
	db := NewDB()
	if _, err := db.PrefixGroups([]string{"ghost"}, 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestCatalog(t *testing.T) {
	db := Catalog()
	for _, id := range CatalogIDs() {
		m, err := db.Get(id)
		if err != nil {
			t.Fatalf("catalog missing %s: %v", id, err)
		}
		if m.FLOPs() <= 0 || m.ParamBytes() <= 0 {
			t.Errorf("%s has non-positive sizes", id)
		}
	}
	// Sanity: relative compute ordering should match the paper's Table 1.
	flops := func(id string) int64 { return db.MustGet(id).FLOPs() }
	if !(flops(LeNet5) < flops(VGG7) && flops(VGG7) < flops(ResNet50) &&
		flops(ResNet50) < flops(Inception4) && flops(Inception4) < flops(Darknet53)) {
		t.Error("catalog FLOPs ordering does not match Table 1")
	}
}

func TestCatalogSpecializationShares(t *testing.T) {
	db := Catalog()
	ids, err := SpecializeFamily(db, ResNet50, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := db.MustGet(ids[0]), db.MustGet(ids[1])
	want := a.NumLayers() - 2
	if got := CommonPrefixLen(a, b); got != want {
		t.Fatalf("variants share %d layers, want %d", got, want)
	}
}

// Property: CommonPrefixLen(a,b) equals a linear scan comparison, for random
// divergence points.
func TestPropertyCommonPrefix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		layers := func(div int, tag string) []Layer {
			ls := []Layer{{Kind: Input, ActBytes: 1}}
			for i := 1; i < n; i++ {
				w := fmt.Sprintf("w%d", i)
				if i >= div {
					w = tag + w
				}
				ls = append(ls, Layer{Kind: Conv, FLOPs: 10, WeightsID: w})
			}
			return ls
		}
		div := rng.Intn(n-1) + 1                 // diverge at layer index div (>=1)
		a := MustNew("a", "t", layers(n, ""))    // never diverges
		b := MustNew("b", "t", layers(div, "x")) // diverges at div
		return CommonPrefixLen(a, b) == div
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: specialization preserves FLOPs and depth, and keeps exactly
// depth-retrain shared layers.
func TestPropertySpecialize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 3
		layers := []Layer{{Kind: Input, ActBytes: 1}}
		for i := 1; i < n; i++ {
			layers = append(layers, Layer{Kind: Conv, FLOPs: int64(rng.Intn(100) + 1), WeightsID: fmt.Sprintf("w%d", i)})
		}
		base := MustNew("base", "t", layers)
		retrain := rng.Intn(n-1) + 1
		v, err := Specialize(base, "v", retrain)
		if err != nil {
			return false
		}
		return v.FLOPs() == base.FLOPs() &&
			v.NumLayers() == base.NumLayers() &&
			CommonPrefixLen(base, v) == n-retrain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
