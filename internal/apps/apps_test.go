package apps

import (
	"testing"
	"time"

	"nexus/internal/cluster"
	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/queryopt"
)

// queryDepth returns the number of stages on the longest root-leaf path.
func queryDepth(n *queryopt.Node) int {
	max := 0
	for _, e := range n.Edges {
		if d := queryDepth(e.Child); d > max {
			max = d
		}
	}
	return max + 1
}

func newDeployment(t *testing.T, gpus int) *cluster.Deployment {
	t.Helper()
	d, err := cluster.New(cluster.Config{
		System: cluster.Nexus, Features: cluster.AllFeatures(),
		GPUs: gpus, Seed: 1, Epoch: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGameBuilder(t *testing.T) {
	mdb := model.Catalog()
	spec, err := Game(4, 100)(mdb)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Sessions) != 8 {
		t.Fatalf("game sessions = %d, want 8 (digits+icon per game)", len(spec.Sessions))
	}
	// Variants must be registered and resolvable to base calibrations.
	for _, s := range spec.Sessions {
		if _, err := mdb.Get(s.Spec.ModelID); err != nil {
			t.Fatalf("model %s not registered", s.Spec.ModelID)
		}
		base := profiler.BaseOf(s.Spec.ModelID)
		if base != model.LeNet5 && base != model.ResNet50 {
			t.Fatalf("unexpected base %s for %s", base, s.Spec.ModelID)
		}
	}
	// Zipf rates: first game busier than last.
	if spec.Sessions[0].Spec.ExpectedRate <= spec.Sessions[len(spec.Sessions)-2].Spec.ExpectedRate {
		t.Fatal("Zipf rate split not decreasing")
	}
}

func TestGameVariantsShareWithBase(t *testing.T) {
	mdb := model.Catalog()
	if _, err := Game(3, 100)(mdb); err != nil {
		t.Fatal(err)
	}
	a := mdb.MustGet("lenet5-v100")
	b := mdb.MustGet("lenet5-v101")
	want := a.NumLayers() - 1
	if got := model.CommonPrefixLen(a, b); got != want {
		t.Fatalf("game digit variants share %d layers, want %d", got, want)
	}
}

func TestBuildersRegisterIdempotently(t *testing.T) {
	mdb := model.Catalog()
	if _, err := Game(3, 100)(mdb); err != nil {
		t.Fatal(err)
	}
	if _, err := Game(3, 100)(mdb); err != nil {
		t.Fatalf("second build failed: %v", err)
	}
}

func TestAllBuildersDeploy(t *testing.T) {
	d := newDeployment(t, 64)
	for _, b := range All(0.2) {
		if _, err := Deploy(d, b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Pool.InUse() == 0 {
		t.Fatal("no GPUs in use after deploying all apps")
	}
}

func TestTrafficRushHourRaisesGamma(t *testing.T) {
	mdb := model.Catalog()
	calm, err := Traffic(10, 2, false)(mdb)
	if err != nil {
		t.Fatal(err)
	}
	rush, err := Traffic(10, 2, true)(mdb)
	if err != nil {
		t.Fatal(err)
	}
	gc := calm.Queries[0].Spec.Query.Root.Edges[0].Gamma
	gr := rush.Queries[0].Spec.Query.Root.Edges[0].Gamma
	if gr <= gc {
		t.Fatalf("rush-hour gamma %v not above non-rush %v", gr, gc)
	}
}

func TestWithPoisson(t *testing.T) {
	mdb := model.Catalog()
	spec, err := Game(2, 50)(mdb)
	if err != nil {
		t.Fatal(err)
	}
	p := WithPoisson(spec)
	for _, s := range p.Sessions {
		if s.Proc == nil {
			t.Fatal("Poisson proc not set")
		}
	}
}

func TestQueriesValidate(t *testing.T) {
	mdb := model.Catalog()
	builders := map[string]Builder{
		"traffic": Traffic(5, 2, false),
		"dance":   Dance(10),
		"bb":      Billboard(10),
		"bike":    Bike(10),
		"amber":   Amber(10),
		"logo":    Logo(10),
	}
	for name, b := range builders {
		spec, err := b(mdb)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, q := range spec.Queries {
			if err := q.Spec.Query.Validate(); err != nil {
				t.Fatalf("%s query invalid: %v", name, err)
			}
		}
	}
	if len(Names()) != 7 {
		t.Fatal("Names should list 7 apps")
	}
}

func TestQueryStageCounts(t *testing.T) {
	// Table 4's QA-k stage counts.
	mdb := model.Catalog()
	depth := func(b Builder) int {
		spec, err := b(mdb)
		if err != nil {
			t.Fatal(err)
		}
		return queryDepth(spec.Queries[0].Spec.Query.Root)
	}
	cases := map[string]struct {
		b    Builder
		want int
	}{
		"traffic": {Traffic(1, 1, false), 2},
		"dance":   {Dance(1), 2},
		"bb":      {Billboard(1), 3},
		"bike":    {Bike(1), 4},
		"amber":   {Amber(1), 4},
		"logo":    {Logo(1), 5},
	}
	for name, c := range cases {
		if got := depth(c.b); got != c.want {
			t.Errorf("%s depth = %d, want %d", name, got, c.want)
		}
	}
}

func TestGameSLOVariant(t *testing.T) {
	mdb := model.Catalog()
	spec, err := GameSLO(2, 50, 120*time.Millisecond)(mdb)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range spec.Sessions {
		if s.Spec.SLO != 120*time.Millisecond {
			t.Fatalf("session %s SLO = %v", s.Spec.ID, s.Spec.SLO)
		}
	}
}

func TestAllUsesRelaxedGameSLO(t *testing.T) {
	mdb := model.Catalog()
	builders := All(0.1)
	spec, err := builders[0](mdb)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "game" {
		t.Fatalf("first app = %s", spec.Name)
	}
	// The large-scale mix runs on K80s; game sessions carry 100ms there.
	if got := spec.Sessions[0].Spec.SLO; got != 100*time.Millisecond {
		t.Fatalf("large-deployment game SLO = %v, want 100ms", got)
	}
}

func TestVariantNamespacesDisjoint(t *testing.T) {
	mdb := model.Catalog()
	// game and logo both specialize LeNet; their variant IDs must differ.
	if _, err := Game(2, 10)(mdb); err != nil {
		t.Fatal(err)
	}
	if _, err := Logo(5)(mdb); err != nil {
		t.Fatal(err)
	}
	gameLenet := mdb.MustGet("lenet5-v100")
	logoLenet := mdb.MustGet("lenet5-v500")
	if gameLenet == logoLenet {
		t.Fatal("apps share a variant instance")
	}
	// Both still share the base prefix (one family).
	if got := model.CommonPrefixLen(gameLenet, logoLenet); got != gameLenet.NumLayers()-1 {
		t.Fatalf("cross-app variants share %d layers", got)
	}
}
