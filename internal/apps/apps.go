// Package apps defines the seven video-analysis applications of the
// paper's evaluation (Table 4): game, traffic, dance, bb (billboard), bike,
// amber, and logo. Each is expressed as session and query specs over the
// model catalog, with specialized model families where the paper marks the
// app as prefix-batchable (PB) and k-stage queries where it marks QA-k.
package apps

import (
	"fmt"
	"time"

	"nexus/internal/cluster"
	"nexus/internal/globalsched"
	"nexus/internal/model"
	"nexus/internal/queryopt"
	"nexus/internal/workload"
)

// SessionLoad is a standalone session plus its arrival process (nil =
// uniform at the expected rate).
type SessionLoad struct {
	Spec globalsched.SessionSpec
	Proc workload.Process
}

// QueryLoad is a complex query plus its arrival process.
type QueryLoad struct {
	Spec globalsched.QuerySpec
	Proc workload.Process
}

// Spec is one application's workload.
type Spec struct {
	Name     string
	Sessions []SessionLoad
	Queries  []QueryLoad
}

// Builder constructs an app spec, registering any specialized model
// variants it needs into the model DB.
type Builder func(mdb *model.DB) (*Spec, error)

// Deploy builds an app against the deployment's model DB, refreshes
// profiles, and installs the app's loads.
func Deploy(d *cluster.Deployment, build Builder) (*Spec, error) {
	spec, err := build(d.ModelDB())
	if err != nil {
		return nil, err
	}
	if err := d.RefreshProfiles(); err != nil {
		return nil, err
	}
	for _, s := range spec.Sessions {
		if err := d.AddSession(s.Spec, s.Proc); err != nil {
			return nil, fmt.Errorf("apps: deploying %s: %w", spec.Name, err)
		}
	}
	for _, q := range spec.Queries {
		if err := d.AddQuery(q.Spec, q.Proc); err != nil {
			return nil, fmt.Errorf("apps: deploying %s: %w", spec.Name, err)
		}
	}
	return spec, nil
}

// WithPoisson returns a copy of the spec with Poisson arrival processes at
// each load's expected rate (the Figure 13 deployment uses Poisson
// arrivals).
func WithPoisson(spec *Spec) *Spec {
	out := &Spec{Name: spec.Name}
	for _, s := range spec.Sessions {
		s.Proc = workload.Poisson{Rate: s.Spec.ExpectedRate}
		out.Sessions = append(out.Sessions, s)
	}
	for _, q := range spec.Queries {
		q.Proc = workload.Poisson{Rate: q.Spec.ExpectedRate}
		out.Queries = append(out.Queries, q)
	}
	return out
}

// variant registers (or reuses) a specialized variant of base. Each app
// gets a disjoint numeric namespace so variant IDs stay parseable by the
// profiler's BaseOf ("<base>-v<appIdx*100+k>").
func variant(mdb *model.DB, base string, appIdx, k, retrain int) (string, error) {
	id := fmt.Sprintf("%s-v%d", base, appIdx*100+k)
	if _, err := mdb.Get(id); err == nil {
		return id, nil
	}
	bm, err := mdb.Get(base)
	if err != nil {
		return "", err
	}
	v, err := model.Specialize(bm, id, retrain)
	if err != nil {
		return "", err
	}
	if err := mdb.Register(v); err != nil {
		return "", err
	}
	return id, nil
}

// App namespaces for variant IDs.
const (
	gameIdx = iota + 1
	bbIdx
	bikeIdx
	amberIdx
	logoIdx
)

// Game is the game-stream analysis app (§7.3.1): per game, six specialized
// LeNet digit recognizers batched by prefix, plus a specialized ResNet-50
// icon recognizer; SLO 50 ms; request rates across games follow Zipf(0.9).
func Game(games int, totalRate float64) Builder {
	return GameSLO(games, totalRate, 50*time.Millisecond)
}

// GameSLO is Game with an explicit SLO. The large-scale deployment on K80s
// uses 100 ms: a K80 runs ResNet-50 ~3.2x slower than the GTX 1080Ti the
// 50 ms case study assumes, leaving no batching room under 50 ms.
func GameSLO(games int, totalRate float64, slo time.Duration) Builder {
	return func(mdb *model.DB) (*Spec, error) {
		if games < 1 {
			return nil, fmt.Errorf("apps: game needs >= 1 stream")
		}
		spec := &Spec{Name: "game"}
		rates := workload.SplitRate(totalRate, games, 0.9)
		for g := 0; g < games; g++ {
			digitID, err := variant(mdb, model.LeNet5, gameIdx, g, 1)
			if err != nil {
				return nil, err
			}
			iconID, err := variant(mdb, model.ResNet50, gameIdx, g, 1)
			if err != nil {
				return nil, err
			}
			// Six digit crops and one icon per sampled frame.
			spec.Sessions = append(spec.Sessions,
				SessionLoad{Spec: globalsched.SessionSpec{
					ID: fmt.Sprintf("game/digits-%d", g), ModelID: digitID,
					SLO: slo, ExpectedRate: rates[g] * 6,
				}},
				SessionLoad{Spec: globalsched.SessionSpec{
					ID: fmt.Sprintf("game/icon-%d", g), ModelID: iconID,
					SLO: slo, ExpectedRate: rates[g],
				}},
			)
		}
		return spec, nil
	}
}

// Traffic is the street-surveillance app (Figure 8): SSD object detection
// feeding car make/model and face recognition, whole-query SLO 400 ms.
// rushHour raises the per-frame object fan-out (§7.3.2).
func Traffic(cameras int, ratePerCamera float64, rushHour bool) Builder {
	return func(mdb *model.DB) (*Spec, error) {
		gammaCar, gammaFace := 1.5, 0.5
		if rushHour {
			gammaCar, gammaFace = 4.0, 1.5
		}
		q := &queryopt.Query{
			Name: "traffic", SLO: 400 * time.Millisecond,
			Root: &queryopt.Node{Name: "det", ModelID: model.SSD, Edges: []queryopt.Edge{
				{Gamma: gammaCar, Child: &queryopt.Node{Name: "car", ModelID: model.GoogLeNetCar}},
				{Gamma: gammaFace, Child: &queryopt.Node{Name: "face", ModelID: model.VGGFace}},
			}},
		}
		return &Spec{Name: "traffic", Queries: []QueryLoad{{
			Spec: globalsched.QuerySpec{Query: q, ExpectedRate: float64(cameras) * ratePerCamera},
		}}}, nil
	}
}

// Dance rates dance performances: person detection then pose recognition
// (QA-2). Dance footage is rated after the fact, so its SLO is generous
// enough to remain feasible even on the slower K80s of the large
// deployment (600 ms).
func Dance(rate float64) Builder {
	return func(mdb *model.DB) (*Spec, error) {
		q := &queryopt.Query{
			Name: "dance", SLO: 600 * time.Millisecond,
			Root: &queryopt.Node{Name: "person", ModelID: model.SSD, Edges: []queryopt.Edge{
				{Gamma: 1.2, Child: &queryopt.Node{Name: "pose", ModelID: model.OpenPose}},
			}},
		}
		return &Spec{Name: "dance", Queries: []QueryLoad{{
			Spec: globalsched.QuerySpec{Query: q, ExpectedRate: rate},
		}}}, nil
	}
}

// Billboard ("bb") gauges audience response: person+face detection, then
// gaze, age and sex recognition (QA-3, PB via specialized VGG-Face heads),
// SLO 500 ms.
func Billboard(rate float64) Builder {
	return func(mdb *model.DB) (*Spec, error) {
		age, err := variant(mdb, model.VGGFace, bbIdx, 0, 1)
		if err != nil {
			return nil, err
		}
		sex, err := variant(mdb, model.VGGFace, bbIdx, 1, 1)
		if err != nil {
			return nil, err
		}
		q := &queryopt.Query{
			Name: "bb", SLO: 500 * time.Millisecond,
			Root: &queryopt.Node{Name: "det", ModelID: model.SSD, Edges: []queryopt.Edge{
				{Gamma: 2, Child: &queryopt.Node{Name: "gaze", ModelID: model.GazeNet, Edges: []queryopt.Edge{
					{Gamma: 0.6, Child: &queryopt.Node{Name: "age", ModelID: age}},
				}}},
				{Gamma: 1.2, Child: &queryopt.Node{Name: "sex", ModelID: sex}},
			}},
		}
		return &Spec{Name: "bb", Queries: []QueryLoad{{
			Spec: globalsched.QuerySpec{Query: q, ExpectedRate: rate},
		}}}, nil
	}
}

// Bike finds bike-rack occupancy on buses: object detection, crop
// classification, text detection and text recognition (QA-4, PB), SLO 600 ms.
func Bike(rate float64) Builder {
	return func(mdb *model.DB) (*Spec, error) {
		textRec, err := variant(mdb, model.TextCRNN, bikeIdx, 0, 1)
		if err != nil {
			return nil, err
		}
		q := &queryopt.Query{
			Name: "bike", SLO: 600 * time.Millisecond,
			Root: &queryopt.Node{Name: "det", ModelID: model.SSD, Edges: []queryopt.Edge{
				{Gamma: 0.8, Child: &queryopt.Node{Name: "rack", ModelID: model.InceptionV3, Edges: []queryopt.Edge{
					{Gamma: 0.5, Child: &queryopt.Node{Name: "textdet", ModelID: model.TextCRNN, Edges: []queryopt.Edge{
						{Gamma: 1.5, Child: &queryopt.Node{Name: "textrec", ModelID: textRec}},
					}}},
				}}},
			}},
		}
		return &Spec{Name: "bike", Queries: []QueryLoad{{
			Spec: globalsched.QuerySpec{Query: q, ExpectedRate: rate},
		}}}, nil
	}
}

// Amber matches vehicles to "Amber Alert" descriptions: detection, car
// make/model, text detection/recognition (QA-4, PB), SLO 600 ms.
func Amber(rate float64) Builder {
	return func(mdb *model.DB) (*Spec, error) {
		plateRec, err := variant(mdb, model.TextCRNN, amberIdx, 0, 1)
		if err != nil {
			return nil, err
		}
		carVariant, err := variant(mdb, model.GoogLeNetCar, amberIdx, 0, 1)
		if err != nil {
			return nil, err
		}
		q := &queryopt.Query{
			Name: "amber", SLO: 600 * time.Millisecond,
			Root: &queryopt.Node{Name: "det", ModelID: model.SSD, Edges: []queryopt.Edge{
				{Gamma: 2.5, Child: &queryopt.Node{Name: "makemodel", ModelID: carVariant, Edges: []queryopt.Edge{
					{Gamma: 0.4, Child: &queryopt.Node{Name: "platedet", ModelID: model.TextCRNN, Edges: []queryopt.Edge{
						{Gamma: 1, Child: &queryopt.Node{Name: "platerec", ModelID: plateRec}},
					}}},
				}}},
			}},
		}
		return &Spec{Name: "amber", Queries: []QueryLoad{{
			Spec: globalsched.QuerySpec{Query: q, ExpectedRate: rate},
		}}}, nil
	}
}

// Logo audits corporate logo placement in sports footage: person
// detection, pose, logo detection, number detection and recognition
// (QA-5, PB), SLO 1 s.
func Logo(rate float64) Builder {
	return func(mdb *model.DB) (*Spec, error) {
		numberRec, err := variant(mdb, model.LeNet5, logoIdx, 0, 1)
		if err != nil {
			return nil, err
		}
		logoDet, err := variant(mdb, model.InceptionV3, logoIdx, 0, 1)
		if err != nil {
			return nil, err
		}
		q := &queryopt.Query{
			Name: "logo", SLO: time.Second,
			Root: &queryopt.Node{Name: "person", ModelID: model.SSD, Edges: []queryopt.Edge{
				{Gamma: 3, Child: &queryopt.Node{Name: "pose", ModelID: model.OpenPose, Edges: []queryopt.Edge{
					{Gamma: 0.7, Child: &queryopt.Node{Name: "logodet", ModelID: logoDet, Edges: []queryopt.Edge{
						{Gamma: 0.5, Child: &queryopt.Node{Name: "numdet", ModelID: model.TextCRNN, Edges: []queryopt.Edge{
							{Gamma: 1, Child: &queryopt.Node{Name: "numrec", ModelID: numberRec}},
						}}},
					}}},
				}}},
			}},
		}
		return &Spec{Name: "logo", Queries: []QueryLoad{{
			Spec: globalsched.QuerySpec{Query: q, ExpectedRate: rate},
		}}}, nil
	}
}

// All returns the full seven-application mix of the large-scale deployment
// (§7.4), scaled by the given factor (scale 1 targets a ~100 K80 cluster).
func All(scale float64) []Builder {
	return []Builder{
		GameSLO(20, 300*scale, 100*time.Millisecond),
		Traffic(20, 20*scale, false),
		Dance(80 * scale),
		Billboard(60 * scale),
		Bike(50 * scale),
		Amber(40 * scale),
		Logo(30 * scale),
	}
}

// Names lists the Table 4 application names in order.
func Names() []string {
	return []string{"game", "traffic", "dance", "bb", "bike", "amber", "logo"}
}
