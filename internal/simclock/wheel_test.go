package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// The timer wheel must be observationally identical to the binary heap it
// replaced: events fire in exact (timestamp, schedule-order) sequence. The
// tests in this file check that contract against a mirror model — every
// scheduled event is also recorded in a plain slice, and the expected fire
// order is the mirror sorted by (at, seq), which is trivially correct.

type mirrorEvent struct {
	id        int
	at        time.Duration
	seq       int
	cancelled bool
	timer     Timer
}

type mirror struct {
	clock  *Clock
	events []*mirrorEvent
	fired  []int
	nextID int
	nextSq int
}

// schedule registers fn-less bookkeeping alongside a real clock.At call.
// The mirror's seq counter advances in lockstep with the clock's because
// every At in the test goes through here.
func (m *mirror) schedule(at time.Duration) *mirrorEvent {
	ev := &mirrorEvent{id: m.nextID, at: at, seq: m.nextSq}
	m.nextID++
	m.nextSq++
	ev.timer = m.clock.At(at, func() {
		m.fired = append(m.fired, ev.id)
	})
	m.events = append(m.events, ev)
	return ev
}

// expected returns the IDs of uncancelled events in (at, seq) order.
func (m *mirror) expected() []int {
	live := make([]*mirrorEvent, 0, len(m.events))
	for _, ev := range m.events {
		if !ev.cancelled {
			live = append(live, ev)
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].at != live[j].at {
			return live[i].at < live[j].at
		}
		return live[i].seq < live[j].seq
	})
	ids := make([]int, len(live))
	for i, ev := range live {
		ids[i] = ev.id
	}
	return ids
}

func checkOrder(t *testing.T, seed int64, m *mirror) {
	t.Helper()
	want := m.expected()
	if len(m.fired) != len(want) {
		t.Fatalf("seed %d: fired %d events, want %d", seed, len(m.fired), len(want))
	}
	for i := range want {
		if m.fired[i] != want[i] {
			t.Fatalf("seed %d: fire order diverges at %d: got id %d, want %d",
				seed, i, m.fired[i], want[i])
		}
	}
}

// randomOffset spans every wheel tier: sub-bucket (same-tick collisions),
// level 0, level 1, and the far overflow including multi-hour gaps.
func randomOffset(rng *rand.Rand) time.Duration {
	switch rng.Intn(6) {
	case 0:
		return time.Duration(rng.Intn(3)) // sub-granule, often identical ticks
	case 1:
		return time.Duration(rng.Intn(1 << granuleBits)) // same level-0 bucket span
	case 2:
		return time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
	case 3:
		return time.Duration(rng.Int63n(int64(3 * time.Second)))
	case 4:
		return time.Duration(rng.Int63n(int64(2 * time.Minute)))
	default:
		return time.Duration(rng.Int63n(int64(5 * time.Hour)))
	}
}

// TestWheelMatchesHeapOrder schedules randomized batches across all wheel
// tiers, cancels a random subset before running, and requires the fire
// order to equal the sorted mirror.
func TestWheelMatchesHeapOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		m := &mirror{clock: c}
		for i := 0; i < 300; i++ {
			m.schedule(randomOffset(rng))
		}
		// Stop a random subset; Stop's report must agree with the mirror.
		for _, ev := range m.events {
			if rng.Intn(4) == 0 {
				if !ev.timer.Stop() {
					t.Fatalf("seed %d: Stop on pending event %d reported false", seed, ev.id)
				}
				ev.cancelled = true
				if ev.timer.Stop() {
					t.Fatalf("seed %d: double Stop on event %d reported true", seed, ev.id)
				}
			}
		}
		c.Run()
		checkOrder(t, seed, m)
		if c.Pending() != 0 {
			t.Fatalf("seed %d: %d events pending after Run", seed, c.Pending())
		}
	}
}

// TestWheelReentrantScheduling mixes callbacks that schedule more events —
// including at the current instant and far in the future — with callbacks
// that stop not-yet-fired timers, the races the dispatch loop produces
// (batch completions cancelling duty-cycle ticks and vice versa).
func TestWheelReentrantScheduling(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		c := New()
		m := &mirror{clock: c}
		var scheduleReactive func(ev *mirrorEvent)
		scheduleReactive = func(ev *mirrorEvent) {
			// Wrap the mirror callback: on fire, maybe spawn or stop.
			ev.timer.Stop() // detach the plain recorder…
			ev.timer = c.At(ev.at, func() { // …and rebind with reactions
				m.fired = append(m.fired, ev.id)
				if len(m.events) < 600 && rng.Intn(3) == 0 {
					child := m.schedule(c.Now() + randomOffset(rng))
					if rng.Intn(2) == 0 {
						scheduleReactive(child)
					}
				}
				if rng.Intn(4) == 0 {
					// Stop a random still-pending event.
					victim := m.events[rng.Intn(len(m.events))]
					if victim.timer.Stop() {
						victim.cancelled = true
					}
				}
			})
			ev.seq = m.nextSq // rebinding consumed a fresh clock seq
			m.nextSq++
		}
		for i := 0; i < 100; i++ {
			ev := m.schedule(randomOffset(rng))
			if rng.Intn(2) == 0 {
				scheduleReactive(ev)
			}
		}
		c.Run()
		// Reactive stops may race with fires in ways the mirror resolves
		// identically: a victim picked after it fired reports Stop()==false
		// and stays in the fired log. Expected order is still sort order.
		checkOrder(t, seed, m)
	}
}

// TestWheelRunUntilBoundaries pins RunUntil against the mirror at random
// cut points: exactly the events with at <= t fire, in order, and Now
// lands exactly on t.
func TestWheelRunUntilBoundaries(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		c := New()
		m := &mirror{clock: c}
		for i := 0; i < 200; i++ {
			m.schedule(randomOffset(rng))
		}
		cut := time.Duration(rng.Int63n(int64(time.Hour)))
		c.RunUntil(cut)
		if c.Now() != cut {
			t.Fatalf("seed %d: Now = %v after RunUntil(%v)", seed, c.Now(), cut)
		}
		want := 0
		for _, id := range m.expected() {
			if m.events[id].at <= cut {
				if want >= len(m.fired) || m.fired[want] != id {
					t.Fatalf("seed %d: event %d (at %v) missing or out of order at cut %v",
						seed, id, m.events[id].at, cut)
				}
				want++
			}
		}
		if len(m.fired) != want {
			t.Fatalf("seed %d: fired %d events, want %d before cut %v", seed, len(m.fired), want, cut)
		}
		c.Run()
		checkOrder(t, seed, m)
	}
}

// TestWheelCursorJumpThenNearInsert pins the sparse-schedule fast path: a
// peek (via RunUntil) may park the cursor next to a far-future event, and
// an insert between now and the cursor must still fire first.
func TestWheelCursorJumpThenNearInsert(t *testing.T) {
	c := New()
	var order []string
	c.At(3*time.Hour, func() { order = append(order, "far") })
	// RunUntil peeks, which is allowed to advance the cursor toward the
	// 3h event even though virtual time stays at 1s.
	c.RunUntil(time.Second)
	c.At(2*time.Second, func() { order = append(order, "near") })
	c.At(time.Second, func() { order = append(order, "now") })
	c.Run()
	if len(order) != 3 || order[0] != "now" || order[1] != "near" || order[2] != "far" {
		t.Fatalf("fire order = %v, want [now near far]", order)
	}
}
