package simclock

import (
	"testing"
	"time"
)

// BenchmarkSimclockTimers measures steady-state schedule/fire churn with
// the horizon mix a Nexus deployment produces: mostly sub-millisecond and
// millisecond timers (network hops, batch completions, duty-cycle ticks)
// with occasional multi-second and far-future ones (epochs, leases), plus
// a cancelled timer every few fires for the Stop path.
func BenchmarkSimclockTimers(b *testing.B) {
	offsets := make([]time.Duration, 1024)
	for i := range offsets {
		switch i % 8 {
		case 0:
			offsets[i] = 0 // same-tick cascade
		case 1, 2:
			offsets[i] = time.Duration(i%7) * 100 * time.Microsecond
		case 3, 4, 5:
			offsets[i] = time.Duration(i%13+1) * time.Millisecond
		case 6:
			offsets[i] = time.Duration(i%5+1) * time.Second
		default:
			offsets[i] = time.Duration(i%3+1) * time.Minute // far overflow
		}
	}
	c := New()
	k := 0
	var fn func()
	fn = func() {
		c.After(offsets[k&1023], fn)
		if k%4 == 0 { // cancellation churn
			c.After(offsets[(k+1)&1023], func() {}).Stop()
		}
		k++
	}
	for i := 0; i < 512; i++ {
		c.After(offsets[k&1023], fn)
		k++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Step() {
			b.Fatal("clock drained")
		}
	}
}
