package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyClock(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("new clock Now = %v, want 0", c.Now())
	}
	if c.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	c.RunUntil(5 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("RunUntil advanced to %v, want 5s", c.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	c := New()
	var got []int
	c.At(30*time.Millisecond, func() { got = append(got, 3) })
	c.At(10*time.Millisecond, func() { got = append(got, 1) })
	c.At(20*time.Millisecond, func() { got = append(got, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Now() != 30*time.Millisecond {
		t.Fatalf("final time %v, want 30ms", c.Now())
	}
}

func TestFIFOAtSameTimestamp(t *testing.T) {
	c := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(time.Millisecond, func() { got = append(got, i) })
	}
	c.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-timestamp events out of FIFO order: %v", got)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	c := New()
	var fired []time.Duration
	c.After(10*time.Millisecond, func() {
		fired = append(fired, c.Now())
		c.After(5*time.Millisecond, func() {
			fired = append(fired, c.Now())
		})
	})
	c.Run()
	if len(fired) != 2 || fired[0] != 10*time.Millisecond || fired[1] != 15*time.Millisecond {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := New()
	c.At(10*time.Millisecond, func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	c.At(5*time.Millisecond, func() {})
}

func TestNegativeAfterClamped(t *testing.T) {
	c := New()
	c.At(10*time.Millisecond, func() {
		c.After(-time.Second, func() {})
	})
	c.Run() // must not panic
}

func TestTimerStop(t *testing.T) {
	c := New()
	fired := false
	timer := c.After(10*time.Millisecond, func() { fired = true })
	if !timer.Stop() {
		t.Fatal("first Stop returned false")
	}
	if timer.Stop() {
		t.Fatal("second Stop returned true")
	}
	c.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	c := New()
	timer := c.After(time.Millisecond, func() {})
	c.Run()
	if timer.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestRunUntilBoundary(t *testing.T) {
	c := New()
	var fired []int
	c.At(10*time.Millisecond, func() { fired = append(fired, 1) })
	c.At(20*time.Millisecond, func() { fired = append(fired, 2) })
	c.At(30*time.Millisecond, func() { fired = append(fired, 3) })
	c.RunUntil(20 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10ms and 20ms only", fired)
	}
	if c.Now() != 20*time.Millisecond {
		t.Fatalf("Now = %v, want 20ms", c.Now())
	}
	c.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining event did not fire: %v", fired)
	}
}

func TestRunUntilExecutesEventsScheduledAtBoundary(t *testing.T) {
	c := New()
	var fired []string
	c.At(10*time.Millisecond, func() {
		fired = append(fired, "a")
		c.At(10*time.Millisecond, func() { fired = append(fired, "b") })
	})
	c.RunUntil(10 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want both events at the boundary", fired)
	}
}

func TestTicker(t *testing.T) {
	c := New()
	var ticks []time.Duration
	tk := c.StartTicker(10*time.Millisecond, func() {
		ticks = append(ticks, c.Now())
	})
	c.RunUntil(25 * time.Millisecond)
	tk.Stop()
	c.RunUntil(100 * time.Millisecond)
	if len(ticks) != 2 || ticks[0] != 10*time.Millisecond || ticks[1] != 20*time.Millisecond {
		t.Fatalf("got ticks %v, want [10ms 20ms]", ticks)
	}
}

func TestStartTickerAt(t *testing.T) {
	c := New()
	var ticks []time.Duration
	tk := c.StartTickerAt(35*time.Millisecond, 10*time.Millisecond, func() {
		ticks = append(ticks, c.Now())
	})
	c.RunUntil(60 * time.Millisecond)
	tk.Stop()
	c.RunUntil(100 * time.Millisecond)
	want := []time.Duration{35 * time.Millisecond, 45 * time.Millisecond, 55 * time.Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("got ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("got ticks %v, want %v", ticks, want)
		}
	}
}

func TestStartTickerAtPastFirstFiresNow(t *testing.T) {
	c := New()
	c.At(50*time.Millisecond, func() {})
	c.RunUntil(50 * time.Millisecond)
	var ticks []time.Duration
	// A first time already in the past clamps to now instead of panicking
	// or silently never firing.
	tk := c.StartTickerAt(10*time.Millisecond, 20*time.Millisecond, func() {
		ticks = append(ticks, c.Now())
	})
	c.RunUntil(90 * time.Millisecond)
	tk.Stop()
	if len(ticks) != 3 || ticks[0] != 50*time.Millisecond || ticks[2] != 90*time.Millisecond {
		t.Fatalf("got ticks %v, want [50ms 70ms 90ms]", ticks)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	c := New()
	count := 0
	var tk *Ticker
	tk = c.StartTicker(time.Millisecond, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	c.RunUntil(time.Second)
	if count != 3 {
		t.Fatalf("ticker fired %d times after self-stop, want 3", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-period ticker did not panic")
		}
	}()
	c.StartTicker(0, func() {})
}

func TestEventLimit(t *testing.T) {
	c := New()
	c.SetEventLimit(10)
	var reschedule func()
	reschedule = func() { c.After(time.Millisecond, reschedule) }
	c.After(time.Millisecond, reschedule)
	defer func() {
		if recover() == nil {
			t.Fatal("event limit exceeded did not panic")
		}
	}()
	c.Run()
}

func TestExecutedCount(t *testing.T) {
	c := New()
	for i := 0; i < 5; i++ {
		c.After(time.Duration(i)*time.Millisecond, func() {})
	}
	c.Run()
	if c.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", c.Executed())
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	c := New()
	c.After(time.Millisecond, func() {})
	tm := c.After(2*time.Millisecond, func() {})
	tm.Stop()
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", c.Pending())
	}
}

// Property: events always fire in non-decreasing timestamp order, and ties
// fire in scheduling order, for any random schedule.
func TestPropertyOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		count := int(n%64) + 1
		type rec struct {
			at  time.Duration
			seq int
		}
		var fired []rec
		for i := 0; i < count; i++ {
			at := time.Duration(rng.Intn(50)) * time.Millisecond
			i := i
			c.At(at, func() {
				fired = append(fired, rec{c.Now(), i})
			})
		}
		c.Run()
		if len(fired) != count {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := New()
		for j := 0; j < 1000; j++ {
			c.After(time.Duration(j%97)*time.Millisecond, func() {})
		}
		c.Run()
	}
}

func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	c := New()
	stale := c.After(time.Millisecond, func() {})
	c.Run() // fires; the event struct returns to the free list
	fired := false
	c.After(time.Millisecond, func() { fired = true }) // reuses the struct
	if stale.Stop() {
		t.Fatal("Stop on a fired timer returned true after recycling")
	}
	c.Run()
	if !fired {
		t.Fatal("stale timer handle cancelled a recycled event")
	}
}

func TestZeroTimerStop(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero Timer Stop returned true")
	}
}

func TestPendingCountsLiveEvents(t *testing.T) {
	c := New()
	timers := make([]Timer, 0, 10)
	for i := 0; i < 10; i++ {
		timers = append(timers, c.After(time.Duration(i+1)*time.Millisecond, func() {}))
	}
	if c.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", c.Pending())
	}
	timers[3].Stop()
	timers[7].Stop()
	if c.Pending() != 8 {
		t.Fatalf("Pending after two cancels = %d, want 8", c.Pending())
	}
	timers[3].Stop() // double-stop must not double-decrement
	if c.Pending() != 8 {
		t.Fatalf("Pending after double-stop = %d, want 8", c.Pending())
	}
	c.Step()
	if c.Pending() != 7 {
		t.Fatalf("Pending after one fire = %d, want 7", c.Pending())
	}
	c.Run()
	if c.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", c.Pending())
	}
}

func TestEventStructsAreReused(t *testing.T) {
	c := New()
	// Drive a self-rescheduling event: steady state should cycle one event
	// struct through the free list instead of allocating per step.
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < 1000 {
			c.After(time.Microsecond, fn)
		}
	}
	c.After(time.Microsecond, fn)
	allocs := testing.AllocsPerRun(1, func() { c.Run() })
	if n != 1000 {
		t.Fatalf("ran %d events, want 1000", n)
	}
	// The whole 999-step run should allocate a handful of objects at most
	// (closure captures), not one per event.
	if allocs > 50 {
		t.Fatalf("steady-state run allocated %.0f objects; events are not being reused", allocs)
	}
}

// BenchmarkSteadyStateChurn measures the recurring schedule->fire cycle a
// long simulation spends its time in (allocs/op should be ~0).
func BenchmarkSteadyStateChurn(b *testing.B) {
	c := New()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			c.After(time.Microsecond, fn)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	c.After(time.Microsecond, fn)
	c.Run()
}
