// Package simclock provides a deterministic discrete-event simulation engine.
//
// All Nexus components (GPU devices, backends, frontends, the global
// scheduler, and workload generators) are driven by a single Clock. Events
// are executed in timestamp order; events with equal timestamps run in the
// order they were scheduled, which makes every simulation fully
// deterministic and lets thousand-second deployments replay in milliseconds
// of wall time.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a discrete-event simulation clock. The zero value is not usable;
// call New.
type Clock struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
	// stepped counts executed events, for diagnostics and runaway detection.
	stepped uint64
	// limit aborts Run after this many events when non-zero.
	limit uint64
}

// Timer is a handle to a scheduled event. It can be cancelled before firing.
type Timer struct {
	event *event
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing (false if it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.event == nil || t.event.cancelled || t.event.fired {
		return false
	}
	t.event.cancelled = true
	return true
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	index     int // heap index
}

// New returns a clock starting at time zero with an empty event queue.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Pending returns the number of scheduled, uncancelled events.
func (c *Clock) Pending() int {
	n := 0
	for _, e := range c.queue {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// Executed returns the total number of events that have fired.
func (c *Clock) Executed() uint64 { return c.stepped }

// SetEventLimit aborts Run/RunUntil with a panic after n events (0 disables).
// It is a guard against runaway simulations in tests.
func (c *Clock) SetEventLimit(n uint64) { c.limit = n }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: a discrete-event simulation must never travel backwards, and a
// past timestamp always indicates a bug in the caller.
func (c *Clock) At(t time.Duration, fn func()) *Timer {
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling at %v, before now %v", t, c.now))
	}
	e := &event{at: t, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.queue, e)
	return &Timer{event: e}
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (c *Clock) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return c.At(c.now+d, fn)
}

// Step executes the next event, advancing the clock to its timestamp.
// It reports whether an event was executed (false when the queue is empty).
func (c *Clock) Step() bool {
	for len(c.queue) > 0 {
		e := heap.Pop(&c.queue).(*event)
		if e.cancelled {
			continue
		}
		c.now = e.at
		e.fired = true
		c.stepped++
		if c.limit != 0 && c.stepped > c.limit {
			panic(fmt.Sprintf("simclock: event limit %d exceeded at t=%v", c.limit, c.now))
		}
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled at t by events that run at t are executed.
func (c *Clock) RunUntil(t time.Duration) {
	for {
		e := c.peek()
		if e == nil || e.at > t {
			break
		}
		c.Step()
	}
	if t > c.now {
		c.now = t
	}
}

func (c *Clock) peek() *event {
	for len(c.queue) > 0 {
		if c.queue[0].cancelled {
			heap.Pop(&c.queue)
			continue
		}
		return c.queue[0]
	}
	return nil
}

// Ticker invokes fn every period until stopped. The first invocation is one
// period from the time StartTicker is called.
type Ticker struct {
	clock   *Clock
	period  time.Duration
	fn      func()
	timer   *Timer
	stopped bool
}

// StartTicker schedules fn to run every period of virtual time.
// It panics if period is not positive.
func (c *Clock) StartTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("simclock: ticker period must be positive")
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.timer = t.clock.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
