// Package simclock provides a deterministic discrete-event simulation engine.
//
// All Nexus components (GPU devices, backends, frontends, the global
// scheduler, and workload generators) are driven by a single Clock. Events
// are executed in timestamp order; events with equal timestamps run in the
// order they were scheduled, which makes every simulation fully
// deterministic and lets thousand-second deployments replay in milliseconds
// of wall time.
//
// A Clock is single-threaded by design: it has no locks, and all events of
// one simulation run on the goroutine that calls Run/RunUntil/Step.
// Concurrency in the experiment engine comes from running many independent
// Clocks (one per cluster.Deployment) on different goroutines, which is
// safe precisely because clocks share no state.
//
// The scheduling hot path is allocation-light: fired and cancelled events
// are recycled through a per-clock free list, Timer handles are plain
// values (a generation counter makes stale handles inert when their event
// is reused), and the event heap is pre-sized.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// initialQueueCap pre-sizes the event heap and free list; busy deployments
// hold hundreds of in-flight events (one per queued request plus control
// timers), so this avoids the early growth reallocations on every probe.
const initialQueueCap = 256

// Clock is a discrete-event simulation clock. The zero value is not usable;
// call New.
type Clock struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
	// stepped counts executed events, for diagnostics and runaway detection.
	stepped uint64
	// limit aborts Run after this many events when non-zero.
	limit uint64
	// live counts scheduled, uncancelled events so Pending is O(1).
	live int
	// free recycles event structs; each reuse bumps the event's generation
	// so stale Timer handles cannot touch the new occupant.
	free []*event
}

// Timer is a handle to a scheduled event. It can be cancelled before
// firing. Timers are small values: copying one copies the handle, and the
// zero Timer is valid and inert (Stop reports false).
type Timer struct {
	clock *Clock
	ev    *event
	gen   uint64
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing (false if it already fired or was already stopped).
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	t.clock.live--
	return true
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	// gen increments every time the struct is recycled; Timer handles
	// capture the generation they were issued for.
	gen uint64
}

// New returns a clock starting at time zero with an empty event queue.
func New() *Clock {
	return &Clock{queue: make(eventQueue, 0, initialQueueCap)}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Pending returns the number of scheduled, uncancelled events.
func (c *Clock) Pending() int { return c.live }

// Executed returns the total number of events that have fired.
func (c *Clock) Executed() uint64 { return c.stepped }

// SetEventLimit aborts Run/RunUntil with a panic after n events (0 disables).
// It is a guard against runaway simulations in tests.
func (c *Clock) SetEventLimit(n uint64) { c.limit = n }

// alloc takes an event from the free list or allocates a fresh one.
func (c *Clock) alloc() *event {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return e
	}
	return &event{}
}

// recycle returns an event to the free list, invalidating outstanding
// Timer handles and releasing the callback closure.
func (c *Clock) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.cancelled = false
	c.free = append(c.free, e)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: a discrete-event simulation must never travel backwards, and a
// past timestamp always indicates a bug in the caller.
func (c *Clock) At(t time.Duration, fn func()) Timer {
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling at %v, before now %v", t, c.now))
	}
	e := c.alloc()
	e.at, e.seq, e.fn = t, c.seq, fn
	c.seq++
	c.live++
	heap.Push(&c.queue, e)
	return Timer{clock: c, ev: e, gen: e.gen}
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (c *Clock) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return c.At(c.now+d, fn)
}

// Step executes the next event, advancing the clock to its timestamp.
// It reports whether an event was executed (false when the queue is empty).
func (c *Clock) Step() bool {
	for len(c.queue) > 0 {
		e := heap.Pop(&c.queue).(*event)
		if e.cancelled {
			c.recycle(e)
			continue
		}
		c.now = e.at
		c.stepped++
		c.live--
		fn := e.fn
		// Recycle before running fn: the event is off the heap and fn may
		// legitimately schedule new events that reuse the struct.
		c.recycle(e)
		if c.limit != 0 && c.stepped > c.limit {
			panic(fmt.Sprintf("simclock: event limit %d exceeded at t=%v", c.limit, c.now))
		}
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled at t by events that run at t are executed.
func (c *Clock) RunUntil(t time.Duration) {
	for {
		e := c.peek()
		if e == nil || e.at > t {
			break
		}
		c.Step()
	}
	if t > c.now {
		c.now = t
	}
}

func (c *Clock) peek() *event {
	for len(c.queue) > 0 {
		if c.queue[0].cancelled {
			c.recycle(heap.Pop(&c.queue).(*event))
			continue
		}
		return c.queue[0]
	}
	return nil
}

// Ticker invokes fn every period until stopped. The first invocation is one
// period from the time StartTicker is called.
type Ticker struct {
	clock   *Clock
	period  time.Duration
	fn      func()
	timer   Timer
	stopped bool
}

// StartTicker schedules fn to run every period of virtual time.
// It panics if period is not positive.
func (c *Clock) StartTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("simclock: ticker period must be positive")
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.timer = t.clock.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.timer.Stop()
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
}

func (q *eventQueue) Push(x any) {
	*q = append(*q, x.(*event))
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
