// Package simclock provides a deterministic discrete-event simulation engine.
//
// All Nexus components (GPU devices, backends, frontends, the global
// scheduler, and workload generators) are driven by a single Clock. Events
// are executed in timestamp order; events with equal timestamps run in the
// order they were scheduled, which makes every simulation fully
// deterministic and lets thousand-second deployments replay in milliseconds
// of wall time.
//
// A Clock is single-threaded by design: it has no locks, and all events of
// one simulation run on the goroutine that calls Run/RunUntil/Step.
// Concurrency in the experiment engine comes from running many independent
// Clocks (one per cluster.Deployment) on different goroutines, which is
// safe precisely because clocks share no state.
//
// The scheduling hot path is allocation-light and mostly O(1): timers live
// in a two-level hierarchical timer wheel (dense short-horizon timers —
// request hops, batch completions, duty-cycle ticks — append to level-0
// buckets in constant time) with a binary heap only as overflow for
// far-future events. A small heap orders the current bucket, so events
// still fire in exact (timestamp, schedule-order) sequence. Fired and
// cancelled events are recycled through a per-clock free list, and Timer
// handles are plain values (a generation counter makes stale handles inert
// when their event is reused).
package simclock

import (
	"fmt"
	"time"
)

// Wheel geometry. Level-0 buckets are 2^granuleBits ns wide (~65.5µs), so
// bucket indices are shifts, not divisions. Each level has 2^slotBits
// buckets: level 0 spans ~16.8ms, level 1 spans ~4.3s, and everything
// farther out sits in the overflow heap until its level-1 region opens.
const (
	granuleBits = 16
	slotBits    = 8
	numSlots    = 1 << slotBits
	slotMask    = numSlots - 1
)

// Clock is a discrete-event simulation clock. The zero value is not usable;
// call New.
type Clock struct {
	now time.Duration
	seq uint64
	// stepped counts executed events, for diagnostics and runaway detection.
	stepped uint64
	// limit aborts Run after this many events when non-zero.
	limit uint64
	// live counts scheduled, uncancelled events so Pending is O(1).
	live int
	// free recycles event structs; each reuse bumps the event's generation
	// so stale Timer handles cannot touch the new occupant.
	free []*event

	// cur is the absolute level-0 bucket index the cursor has reached:
	// every live event in a bucket at or before cur is in curHeap, and
	// level-0 buckets are only populated within (cur, cur+numSlots).
	cur int64
	// curHeap holds the events at the cursor, ordered by (at, seq); the
	// next event to fire is always its top.
	curHeap eventHeap
	// level0/level1 are the wheel levels: unsorted buckets indexed by the
	// (masked) absolute bucket index at that level's granularity.
	level0 [numSlots][]*event
	level1 [numSlots][]*event
	// n0/n1 count events (including cancelled ones) resident in each
	// level, so the cursor can skip empty spans without scanning.
	n0, n1 int
	// far is the overflow heap for events beyond level 1's span.
	far eventHeap
}

// Timer is a handle to a scheduled event. It can be cancelled before
// firing. Timers are small values: copying one copies the handle, and the
// zero Timer is valid and inert (Stop reports false).
type Timer struct {
	clock *Clock
	ev    *event
	gen   uint64
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing (false if it already fired or was already stopped).
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	t.clock.live--
	return true
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	// gen increments every time the struct is recycled; Timer handles
	// capture the generation they were issued for.
	gen uint64
}

// bucketPrealloc is the per-bucket capacity New carves from one contiguous
// arena: first-touch appends on wheel buckets otherwise allocate piecemeal
// for the first wrap of each level, which shows up as a slow allocation
// drip in steady-state measurements. Buckets that outgrow it fall back to
// normal append growth and keep the larger capacity on reuse.
const bucketPrealloc = 4

// New returns a clock starting at time zero with an empty event queue.
func New() *Clock {
	c := &Clock{}
	arena := make([]*event, 2*numSlots*bucketPrealloc)
	for i := range c.level0 {
		c.level0[i] = arena[:0:bucketPrealloc]
		arena = arena[bucketPrealloc:]
		c.level1[i] = arena[:0:bucketPrealloc]
		arena = arena[bucketPrealloc:]
	}
	return c
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Pending returns the number of scheduled, uncancelled events.
func (c *Clock) Pending() int { return c.live }

// Executed returns the total number of events that have fired.
func (c *Clock) Executed() uint64 { return c.stepped }

// SetEventLimit aborts Run/RunUntil with a panic after n events (0 disables).
// It is a guard against runaway simulations in tests.
func (c *Clock) SetEventLimit(n uint64) { c.limit = n }

// alloc takes an event from the free list or allocates a fresh one.
func (c *Clock) alloc() *event {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return e
	}
	return &event{}
}

// recycle returns an event to the free list, invalidating outstanding
// Timer handles and releasing the callback closure.
func (c *Clock) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.cancelled = false
	c.free = append(c.free, e)
}

// bucketOf returns the absolute level-0 bucket index of a timestamp.
func bucketOf(at time.Duration) int64 { return int64(at) >> granuleBits }

// insert places an event into the wheel tier that covers its timestamp.
//
// Level 0 accepts d in [1, numSlots]: bucket cur itself is never stored
// (those events live in curHeap), so all numSlots positions are distinct.
// The inclusive upper bound matters for enterRegion — with the cursor
// parked on the bucket before region r, the region's last bucket is
// exactly numSlots away and must land in level 0, not back in the level-1
// bucket being scattered.
func (c *Clock) insert(e *event) {
	b0 := bucketOf(e.at)
	switch d := b0 - c.cur; {
	case d <= 0:
		c.curHeap.push(e)
	case d <= numSlots:
		c.level0[b0&slotMask] = append(c.level0[b0&slotMask], e)
		c.n0++
	default:
		b1 := b0 >> slotBits
		if b1-(c.cur>>slotBits) < numSlots {
			c.level1[b1&slotMask] = append(c.level1[b1&slotMask], e)
			c.n1++
		} else {
			c.far.push(e)
		}
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: a discrete-event simulation must never travel backwards, and a
// past timestamp always indicates a bug in the caller.
func (c *Clock) At(t time.Duration, fn func()) Timer {
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling at %v, before now %v", t, c.now))
	}
	e := c.alloc()
	e.at, e.seq, e.fn = t, c.seq, fn
	c.seq++
	c.live++
	c.insert(e)
	return Timer{clock: c, ev: e, gen: e.gen}
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (c *Clock) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return c.At(c.now+d, fn)
}

// loadBucket moves one level-0 bucket's events into curHeap, recycling
// cancelled ones on the way.
func (c *Clock) loadBucket(idx int64) {
	bucket := c.level0[idx&slotMask]
	if len(bucket) == 0 {
		return
	}
	c.n0 -= len(bucket)
	for i, e := range bucket {
		bucket[i] = nil
		if e.cancelled {
			c.recycle(e)
			continue
		}
		c.curHeap.push(e)
	}
	c.level0[idx&slotMask] = bucket[:0]
}

// enterRegion opens level-1 region r: overflow events that now fall within
// the wheel's span are pulled in, and the region's level-1 bucket is
// scattered into level-0 buckets. Must be called with the cursor parked on
// the last bucket before the region (cur == r*numSlots - 1).
func (c *Clock) enterRegion(r int64) {
	for c.far.len() > 0 {
		if c.far.top().cancelled {
			c.recycle(c.far.pop())
			continue
		}
		if bucketOf(c.far.topAt())>>slotBits > r {
			break
		}
		c.insert(c.far.pop())
	}
	bucket := c.level1[r&slotMask]
	if len(bucket) == 0 {
		return
	}
	c.n1 -= len(bucket)
	for i, e := range bucket {
		bucket[i] = nil
		if e.cancelled {
			c.recycle(e)
			continue
		}
		c.insert(e)
	}
	c.level1[r&slotMask] = bucket[:0]
}

// advance walks the cursor to the next non-empty bucket, loading it into
// curHeap. It reports false when no live events remain anywhere.
func (c *Clock) advance() bool {
	for {
		if c.n0 == 0 && c.n1 == 0 {
			// Only the overflow heap can hold work: jump the cursor next
			// to its earliest event instead of sweeping empty buckets.
			for c.far.len() > 0 && c.far.top().cancelled {
				c.recycle(c.far.pop())
			}
			if c.far.len() == 0 {
				return false
			}
			e := c.far.pop()
			if b0 := bucketOf(e.at) - 1; b0 > c.cur {
				c.cur = b0
			}
			c.insert(e)
		}
		start := c.cur + 1
		if start&slotMask == 0 {
			c.enterRegion(start >> slotBits)
		}
		regionEnd := (start>>slotBits + 1) << slotBits
		if c.n0 > 0 {
			for s := start; s < regionEnd; s++ {
				if len(c.level0[s&slotMask]) == 0 {
					continue
				}
				c.cur = s
				c.loadBucket(s)
				if c.curHeap.len() > 0 {
					return true
				}
			}
		}
		c.cur = regionEnd - 1
	}
}

// peek returns the next live event without firing it, or nil. It may move
// the wheel cursor forward, which never changes firing order.
func (c *Clock) peek() *event {
	for {
		for c.curHeap.len() > 0 {
			e := c.curHeap.top()
			if !e.cancelled {
				return e
			}
			c.recycle(c.curHeap.pop())
		}
		if !c.advance() {
			return nil
		}
	}
}

// Step executes the next event, advancing the clock to its timestamp.
// It reports whether an event was executed (false when the queue is empty).
func (c *Clock) Step() bool {
	e := c.peek()
	if e == nil {
		return false
	}
	c.curHeap.pop()
	c.now = e.at
	c.stepped++
	c.live--
	fn := e.fn
	// Recycle before running fn: the event is out of the wheel and fn may
	// legitimately schedule new events that reuse the struct.
	c.recycle(e)
	if c.limit != 0 && c.stepped > c.limit {
		panic(fmt.Sprintf("simclock: event limit %d exceeded at t=%v", c.limit, c.now))
	}
	fn()
	return true
}

// Run executes events until the queue is empty.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled at t by events that run at t are executed.
func (c *Clock) RunUntil(t time.Duration) {
	for {
		e := c.peek()
		if e == nil || e.at > t {
			break
		}
		c.Step()
	}
	if t > c.now {
		c.now = t
	}
}

// Ticker invokes fn every period until stopped. The first invocation is one
// period from the time StartTicker is called.
type Ticker struct {
	clock   *Clock
	period  time.Duration
	fn      func()
	timer   Timer
	stopped bool
}

// StartTicker schedules fn to run every period of virtual time.
// It panics if period is not positive.
func (c *Clock) StartTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("simclock: ticker period must be positive")
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.schedule()
	return t
}

// StartTickerAt schedules fn to first run at absolute virtual time first
// (clamped to now when already past), then every period after that. It
// lets periodic samplers align their ticks to an external boundary — e.g.
// telemetry sampling aligned to the end of warmup — instead of to the
// moment the ticker was created. It panics if period is not positive.
func (c *Clock) StartTickerAt(first, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("simclock: ticker period must be positive")
	}
	if first < c.now {
		first = c.now
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.timer = c.At(first, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
	return t
}

func (t *Ticker) schedule() {
	t.timer = t.clock.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.timer.Stop()
}

// eventHeap is a hand-rolled min-heap ordered by (at, seq). It backs the
// cursor bucket and the far-future overflow; manual sifting avoids the
// interface boxing of container/heap on the hot path.
//
// The layout is struct-of-arrays: the sort keys (at, seq) live in their own
// dense slices, with the event pointers in a parallel slice. Heap sifts are
// compare-heavy, and in SoA form every comparison reads two hot, contiguous
// key arrays instead of dereferencing two event pointers scattered across
// the free-list — the keys for an entire sift path usually share a couple
// of cache lines.
type eventHeap struct {
	at  []time.Duration
	seq []uint64
	ev  []*event
}

func (h *eventHeap) len() int { return len(h.ev) }

// top returns the minimum event without removing it. Callers check len.
func (h *eventHeap) top() *event { return h.ev[0] }

// topAt returns the minimum event's timestamp straight from the key array.
func (h *eventHeap) topAt() time.Duration { return h.at[0] }

func (h *eventHeap) less(i, j int) bool {
	if h.at[i] != h.at[j] {
		return h.at[i] < h.at[j]
	}
	return h.seq[i] < h.seq[j]
}

func (h *eventHeap) swap(i, j int) {
	h.at[i], h.at[j] = h.at[j], h.at[i]
	h.seq[i], h.seq[j] = h.seq[j], h.seq[i]
	h.ev[i], h.ev[j] = h.ev[j], h.ev[i]
}

func (h *eventHeap) push(e *event) {
	h.at = append(h.at, e.at)
	h.seq = append(h.seq, e.seq)
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	n := len(h.ev) - 1
	top := h.ev[0]
	h.swap(0, n)
	h.ev[n] = nil
	h.at, h.seq, h.ev = h.at[:n], h.seq[:n], h.ev[:n]
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && h.less(l, small) {
			small = l
		}
		if r := 2*i + 2; r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.swap(i, small)
		i = small
	}
	return top
}
