package profiler

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// profileDocument is the JSON persistence format of a batching profile —
// what the management plane stores alongside a model after profiling it
// (§5 "may be accompanied by ... a batching profile").
type profileDocument struct {
	Model      string  `json:"model"`
	GPU        GPUType `json:"gpu"`
	AlphaUS    int64   `json:"alpha_us"`
	BetaUS     int64   `json:"beta_us"`
	MaxBatch   int     `json:"max_batch"`
	PreprocUS  int64   `json:"preproc_us,omitempty"`
	PostprocUS int64   `json:"postproc_us,omitempty"`
	MemBase    int64   `json:"mem_base,omitempty"`
	MemPerItem int64   `json:"mem_per_item,omitempty"`
	PointsUS   []int64 `json:"points_us,omitempty"`
}

// dbDocument is a list of profiles.
type dbDocument struct {
	Profiles []profileDocument `json:"profiles"`
}

func toDocument(p *Profile) profileDocument {
	doc := profileDocument{
		Model:      p.ModelID,
		GPU:        p.GPU,
		AlphaUS:    int64(p.Alpha / time.Microsecond),
		BetaUS:     int64(p.Beta / time.Microsecond),
		MaxBatch:   p.MaxBatch,
		PreprocUS:  int64(p.PreprocCPU / time.Microsecond),
		PostprocUS: int64(p.PostprocCPU / time.Microsecond),
		MemBase:    p.MemBase,
		MemPerItem: p.MemPerItem,
	}
	for _, pt := range p.points {
		doc.PointsUS = append(doc.PointsUS, int64(pt/time.Microsecond))
	}
	return doc
}

func fromDocument(doc profileDocument) (*Profile, error) {
	p := &Profile{
		ModelID:     doc.Model,
		GPU:         doc.GPU,
		Alpha:       time.Duration(doc.AlphaUS) * time.Microsecond,
		Beta:        time.Duration(doc.BetaUS) * time.Microsecond,
		MaxBatch:    doc.MaxBatch,
		PreprocCPU:  time.Duration(doc.PreprocUS) * time.Microsecond,
		PostprocCPU: time.Duration(doc.PostprocUS) * time.Microsecond,
		MemBase:     doc.MemBase,
		MemPerItem:  doc.MemPerItem,
	}
	if len(doc.PointsUS) > 0 {
		pts := make([]time.Duration, len(doc.PointsUS))
		for i, us := range doc.PointsUS {
			pts[i] = time.Duration(us) * time.Microsecond
		}
		p = p.WithPoints(pts)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Save writes every profile in the database as JSON, in key order.
func (db *DB) Save(w io.Writer) error {
	var doc dbDocument
	for _, k := range db.Keys() {
		doc.Profiles = append(doc.Profiles, toDocument(db.profiles[k]))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadDB reads a profile database saved by Save, validating every entry.
func LoadDB(r io.Reader) (*DB, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc dbDocument
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("profiler: loading db: %w", err)
	}
	db := NewDB()
	for _, pd := range doc.Profiles {
		p, err := fromDocument(pd)
		if err != nil {
			return nil, fmt.Errorf("profiler: loading db: %w", err)
		}
		if err := db.Put(p); err != nil {
			return nil, err
		}
	}
	return db, nil
}
