// Package profiler implements Nexus batching profiles (§2.2, Eq. 1).
//
// A profile describes how a model executes on a GPU type: batched execution
// latency ℓ(b) (either a measured point table or the paper's linear model
// ℓ(b) = αb + β), CPU pre/post-processing cost per item, and memory
// footprint. The management plane derives a profile when a model is
// uploaded (§5); here profiles come from a calibration table matching the
// latencies the paper reports, or from a linear fit of measured points.
package profiler

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// GPUType names a device model.
type GPUType string

// GPU types used in the paper's evaluation.
const (
	GTX1080Ti GPUType = "gtx1080ti"
	K80       GPUType = "k80"
	V100      GPUType = "v100"
	CPUAVX512 GPUType = "cpu_avx512" // c5.large-class CPU, Table 1 baseline
	TPUv2     GPUType = "tpu_v2"     // Table 1 cost comparison only
)

// GPUSpec carries the device characteristics used by the cost model
// (Table 1) and the memory/packing constraints.
type GPUSpec struct {
	Type       GPUType
	PeakTFLOPS float64
	MemBytes   int64
	HourlyUSD  float64 // on-demand cloud price for the host instance
}

// Specs returns the built-in device table.
func Specs() map[GPUType]GPUSpec {
	return map[GPUType]GPUSpec{
		GTX1080Ti: {Type: GTX1080Ti, PeakTFLOPS: 11.3, MemBytes: 11 << 30, HourlyUSD: 0.60},
		K80:       {Type: K80, PeakTFLOPS: 4.1, MemBytes: 12 << 30, HourlyUSD: 0.90},
		V100:      {Type: V100, PeakTFLOPS: 125, MemBytes: 16 << 30, HourlyUSD: 3.06},
		CPUAVX512: {Type: CPUAVX512, PeakTFLOPS: 0.1, MemBytes: 4 << 30, HourlyUSD: 0.085},
		TPUv2:     {Type: TPUv2, PeakTFLOPS: 180, MemBytes: 64 << 30, HourlyUSD: 4.50},
	}
}

// Spec returns the spec for a GPU type.
func Spec(t GPUType) (GPUSpec, error) {
	s, ok := Specs()[t]
	if !ok {
		return GPUSpec{}, fmt.Errorf("profiler: unknown GPU type %q", t)
	}
	return s, nil
}

// Profile is the batching profile of one model on one GPU type.
type Profile struct {
	ModelID string
	GPU     GPUType

	// Linear batching model (Eq. 1): BatchLatency(b) = Alpha*b + Beta.
	Alpha time.Duration // marginal cost per batched item
	Beta  time.Duration // fixed invocation cost

	// MaxBatch bounds the batch size (memory / framework limit).
	MaxBatch int

	// CPU-side work per item, overlappable with GPU execution (§6.3 OL).
	PreprocCPU  time.Duration
	PostprocCPU time.Duration

	// Memory accounting for placement: MemBase is weights + workspace;
	// MemPerItem is per-batch-slot activation memory.
	MemBase    int64
	MemPerItem int64

	// SMSaturation is the fraction of the GPU's compute the model actually
	// keeps busy at its operating batch sizes (0..1]. Small models launch
	// kernels that cannot fill every SM, so a fractional compute slice
	// barely slows them — the regime where spatial sharing beats temporal
	// duty cycles (D-STACK / ParvaGPU). Zero means "unknown": treated as 1
	// (the model saturates the GPU), which makes spatial planning maximally
	// conservative and keeps zero-value profiles behaving exactly as before.
	SMSaturation float64

	// points, when non-empty, overrides the linear model for b <= len:
	// points[b-1] is the measured latency at batch size b.
	points []time.Duration

	// lat is the dense memo table built by memoize: lat[b-1] = ℓ(b) for
	// b in 1..MaxBatch. Dispatch, drop policies, and squishy packing call
	// BatchLatency/MaxBatchWithin per request and per session per epoch;
	// the table turns those lookups into array reads. It is built once
	// (Validate and every profile-deriving constructor) and read-only
	// afterwards, so profiles stay safe to share across concurrent sweep
	// cells. Hand-built literals that never validate keep lat nil and fall
	// back to computing.
	lat []time.Duration
}

// memoize (re)builds the dense latency table from the underlying model.
// Callers that mutate Alpha/Beta/points after memoizing must call it again.
func (p *Profile) memoize() {
	if p.MaxBatch < 1 || p.MaxBatch > maxMemoBatch {
		p.lat = nil
		return
	}
	lat := make([]time.Duration, p.MaxBatch)
	for b := 1; b <= p.MaxBatch; b++ {
		l := p.rawBatchLatency(b)
		// Isotonic smoothing: the binary search in MaxBatchWithin assumes
		// ℓ(b) is monotone non-decreasing, but a noisy measured point table
		// can dip below an earlier entry and make the search land on a
		// batch size that misses the SLO. Running max is the identity on
		// monotone tables (goldens unaffected) and the tightest monotone
		// upper envelope otherwise.
		if b > 1 && l < lat[b-2] {
			l = lat[b-2]
		}
		lat[b-1] = l
	}
	p.lat = lat
}

// maxMemoBatch bounds the memo table so absurd MaxBatch values cannot
// balloon memory; beyond it every lookup computes directly, as before.
const maxMemoBatch = 1 << 16

// Validate checks profile invariants: positive costs, a usable batch range,
// and the monotonicity assumptions §6.1 relies on (latency non-decreasing
// in b; per-item latency ℓ(b)/b non-increasing).
func (p *Profile) Validate() error {
	if p.ModelID == "" {
		return fmt.Errorf("profiler: profile with empty model id")
	}
	if p.MaxBatch < 1 {
		return fmt.Errorf("profile %s/%s: MaxBatch %d < 1", p.ModelID, p.GPU, p.MaxBatch)
	}
	if p.Alpha <= 0 && len(p.points) == 0 {
		return fmt.Errorf("profile %s/%s: non-positive alpha", p.ModelID, p.GPU)
	}
	if p.Beta < 0 {
		return fmt.Errorf("profile %s/%s: negative beta", p.ModelID, p.GPU)
	}
	// The memo table is the isotonic (running-max) envelope of the raw
	// model, so the loop below can no longer observe a dip; a measured
	// table that decreases is still a profiling error worth rejecting
	// loudly here rather than silently flattening.
	for i := 1; i < len(p.points); i++ {
		if p.points[i] < p.points[i-1] {
			return fmt.Errorf("profile %s/%s: latency decreases at b=%d", p.ModelID, p.GPU, i+1)
		}
	}
	p.memoize()
	prev := time.Duration(0)
	prevPerItem := math.Inf(1)
	for b := 1; b <= p.MaxBatch; b++ {
		l := p.BatchLatency(b)
		if l <= 0 {
			return fmt.Errorf("profile %s/%s: non-positive latency at b=%d", p.ModelID, p.GPU, b)
		}
		if l < prev {
			return fmt.Errorf("profile %s/%s: latency decreases at b=%d", p.ModelID, p.GPU, b)
		}
		perItem := float64(l) / float64(b)
		if perItem > prevPerItem*(1+1e-9) {
			return fmt.Errorf("profile %s/%s: per-item latency increases at b=%d", p.ModelID, p.GPU, b)
		}
		prev, prevPerItem = l, perItem
	}
	return nil
}

// MemoBatches returns how many batch sizes the dense latency memo table
// covers: the table length once Validate has memoized, otherwise MaxBatch
// clamped to the memo bound (minimum 1). It is the natural arena-sizing
// figure for batch-shaped pools — no executed batch is ever larger.
func (p *Profile) MemoBatches() int {
	if n := len(p.lat); n > 0 {
		return n
	}
	n := p.MaxBatch
	if n > maxMemoBatch {
		n = maxMemoBatch
	}
	if n < 1 {
		n = 1
	}
	return n
}

// BatchLatency returns ℓ(b), the GPU execution latency of a batch of b.
// It panics for b < 1; b beyond MaxBatch extrapolates linearly (callers
// should clamp, but extrapolation keeps analysis code total).
func (p *Profile) BatchLatency(b int) time.Duration {
	if b < 1 {
		panic(fmt.Sprintf("profile %s: BatchLatency(%d)", p.ModelID, b))
	}
	if b <= len(p.lat) {
		return p.lat[b-1]
	}
	return p.rawBatchLatency(b)
}

// rawBatchLatency computes ℓ(b) from the point table or the linear model,
// bypassing the memo table (which it is also used to build).
func (p *Profile) rawBatchLatency(b int) time.Duration {
	if n := len(p.points); n > 0 {
		if b <= n {
			return p.points[b-1]
		}
		// Extrapolate from the tail slope of the measured points.
		var slope time.Duration
		if n >= 2 {
			slope = p.points[n-1] - p.points[n-2]
		} else {
			slope = p.points[0]
		}
		return p.points[n-1] + time.Duration(b-n)*slope
	}
	return time.Duration(b)*p.Alpha + p.Beta
}

// Throughput returns requests/second at batch size b.
func (p *Profile) Throughput(b int) float64 {
	return float64(b) / p.BatchLatency(b).Seconds()
}

// MaxBatchWithin returns the largest batch size (capped at MaxBatch) whose
// batch latency is at most lat, or 0 if even b=1 exceeds lat.
func (p *Profile) MaxBatchWithin(lat time.Duration) int {
	if p.BatchLatency(1) > lat {
		return 0
	}
	lo, hi := 1, p.MaxBatch
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.BatchLatency(mid) <= lat {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// SaturateBatch returns B_i = argmax{b : 2ℓ(b) <= slo} — the batch size a
// session saturating whole GPUs runs at (§4.1, §6.1), and the resulting
// per-GPU throughput T_i. Returns (0, 0) when no batch size is feasible.
func (p *Profile) SaturateBatch(slo time.Duration) (int, float64) {
	b := p.MaxBatchWithin(slo / 2)
	if b == 0 {
		return 0, 0
	}
	return b, p.Throughput(b)
}

// Spatial sharing model (ROADMAP item 3). A compute slice holding fraction
// f of the device's SMs runs a model slower by SpatialSlowdown(f, sat): a
// model that only saturates fraction sat of the GPU loses nothing until its
// slice shrinks below sat, then slows proportionally (the D-STACK knee).
// Co-resident partitions additionally contend for memory bandwidth and L2;
// each concurrently-executing co-resident inflates latency by
// SpatialInterference.

// SpatialInterference is the fractional latency inflation per active
// co-resident partition sharing a device.
const SpatialInterference = 0.05

// SpatialSlowdown returns the latency multiplier for running on a compute
// slice of fraction frac a model with SM saturation sat. sat outside (0, 1]
// means "unknown / saturates the whole GPU". frac <= 0 returns +Inf.
func SpatialSlowdown(frac, sat float64) float64 {
	if sat <= 0 || sat > 1 {
		sat = 1
	}
	if frac >= 1 {
		return 1
	}
	if frac <= 0 {
		return math.Inf(1)
	}
	if m := sat / frac; m > 1 {
		return m
	}
	return 1
}

// InterferenceFactor returns the latency multiplier from coResidents other
// active partitions executing concurrently on the same device.
func InterferenceFactor(coResidents int) float64 {
	if coResidents <= 0 {
		return 1
	}
	return 1 + SpatialInterference*float64(coResidents)
}

// SliceProfile returns a profile with every GPU latency scaled for execution
// on a compute slice of fraction frac alongside coResidents other active
// partitions. A full slice with no co-residents returns p itself (profiles
// are read-only once validated, so sharing is safe).
func (p *Profile) SliceProfile(frac float64, coResidents int) *Profile {
	m := SpatialSlowdown(frac, p.SMSaturation) * InterferenceFactor(coResidents)
	if m <= 1 {
		return p
	}
	if math.IsInf(m, 1) {
		panic(fmt.Sprintf("profile %s: SliceProfile(frac=%v)", p.ModelID, frac))
	}
	q := *p
	q.Alpha = time.Duration(float64(p.Alpha) * m)
	q.Beta = time.Duration(float64(p.Beta) * m)
	if len(p.points) > 0 {
		q.points = make([]time.Duration, len(p.points))
		for i, v := range p.points {
			q.points[i] = time.Duration(float64(v) * m)
		}
	}
	q.memoize()
	return &q
}

// WithPoints returns a copy of p that uses the given measured latency table
// (points[b-1] = ℓ(b)).
func (p *Profile) WithPoints(points []time.Duration) *Profile {
	q := *p
	q.points = append([]time.Duration(nil), points...)
	if len(q.points) > 0 {
		q.MaxBatch = len(q.points)
	}
	q.memoize()
	return &q
}

// Points returns the measured table (nil when the linear model is in use).
func (p *Profile) Points() []time.Duration {
	return append([]time.Duration(nil), p.points...)
}

// Split divides the profile into a prefix part and a suffix part for prefix
// batching (§6.3). flopFrac is the fraction of the model's compute in the
// prefix. Alpha splits proportionally to compute; Beta splits with the same
// fraction but the suffix keeps at least a minimal invocation cost, since a
// suffix still launches kernels.
func (p *Profile) Split(flopFrac float64) (prefix, suffix Profile) {
	if flopFrac < 0 {
		flopFrac = 0
	}
	if flopFrac > 1 {
		flopFrac = 1
	}
	// A suffix is a few tiny layers: its invocation cost is kernel-launch
	// overhead, a small fraction of the full model's fixed cost.
	minBeta := p.Beta / 100
	prefix = *p
	suffix = *p
	prefix.points, suffix.points = nil, nil
	prefix.ModelID = p.ModelID + "#prefix"
	suffix.ModelID = p.ModelID + "#suffix"
	prefix.Alpha = time.Duration(float64(p.Alpha) * flopFrac)
	suffix.Alpha = p.Alpha - prefix.Alpha
	suffix.Beta = time.Duration(float64(p.Beta) * (1 - flopFrac))
	if suffix.Beta < minBeta {
		suffix.Beta = minBeta
	}
	prefix.Beta = p.Beta - suffix.Beta
	if prefix.Beta < 0 {
		prefix.Beta = 0
	}
	if prefix.Alpha < time.Nanosecond {
		prefix.Alpha = time.Nanosecond
	}
	if suffix.Alpha < time.Nanosecond {
		suffix.Alpha = time.Nanosecond
	}
	// CPU work stays with the whole request path: preproc before the
	// prefix, postproc after the suffix.
	prefix.PostprocCPU = 0
	suffix.PreprocCPU = 0
	prefix.memoize()
	suffix.memoize()
	return prefix, suffix
}

// WithCPUOverhead returns a copy whose batch latency includes an extra
// per-item CPU cost. The control plane plans with such adjusted profiles so
// that CPU work the pipeline cannot hide (postprocessing always; pre-
// processing too when overlap is disabled) is charged against the SLO.
func (p *Profile) WithCPUOverhead(perItem time.Duration) *Profile {
	if perItem <= 0 {
		return p
	}
	q := *p
	q.Alpha += perItem
	if len(p.points) > 0 {
		q.points = make([]time.Duration, len(p.points))
		for i, v := range p.points {
			q.points[i] = v + time.Duration(i+1)*perItem
		}
	}
	q.memoize()
	return &q
}

// FitLinear least-squares fits ℓ(b) = αb + β to a measured table
// (points[b-1] = ℓ(b)). It needs at least two points.
func FitLinear(points []time.Duration) (alpha, beta time.Duration, err error) {
	n := len(points)
	if n < 2 {
		return 0, 0, fmt.Errorf("profiler: FitLinear needs >= 2 points, got %d", n)
	}
	var sx, sy, sxx, sxy float64
	for i, p := range points {
		x := float64(i + 1)
		y := float64(p)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fn := float64(n)
	denom := fn*sxx - sx*sx
	a := (fn*sxy - sx*sy) / denom
	b := (sy - a*sx) / fn
	if b < 0 {
		b = 0
	}
	return time.Duration(a), time.Duration(b), nil
}

// DB stores profiles keyed by (model, GPU type).
type DB struct {
	profiles map[string]*Profile
}

func key(modelID string, gpu GPUType) string { return modelID + "@" + string(gpu) }

// NewDB returns an empty profile database.
func NewDB() *DB {
	return &DB{profiles: make(map[string]*Profile)}
}

// Put validates and stores a profile, replacing any existing entry.
func (db *DB) Put(p *Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	db.profiles[key(p.ModelID, p.GPU)] = p
	return nil
}

// MustPut is Put but panics on error.
func (db *DB) MustPut(p *Profile) {
	if err := db.Put(p); err != nil {
		panic(err)
	}
}

// Get returns the profile for (modelID, gpu).
func (db *DB) Get(modelID string, gpu GPUType) (*Profile, error) {
	p, ok := db.profiles[key(modelID, gpu)]
	if !ok {
		return nil, fmt.Errorf("profiler: no profile for %s on %s", modelID, gpu)
	}
	return p, nil
}

// MustGet is Get but panics on error.
func (db *DB) MustGet(modelID string, gpu GPUType) *Profile {
	p, err := db.Get(modelID, gpu)
	if err != nil {
		panic(err)
	}
	return p
}

// Keys returns "model@gpu" keys in sorted order.
func (db *DB) Keys() []string {
	ks := make([]string, 0, len(db.profiles))
	for k := range db.profiles {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
