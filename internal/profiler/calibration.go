package profiler

import (
	"fmt"
	"time"

	"nexus/internal/model"
)

// calibration pins batch-1 GPU latency (GTX 1080Ti) and the fixed-cost
// fraction β/ℓ(1) for each catalog model. Batch-1 latencies follow the
// numbers the paper reports where it reports them (ResNet-50 6.2 ms,
// Inception 7.0 ms, Darknet-53 26.3 ms, SSD 47 ms, GoogLeNet-car 4.2 ms,
// LeNet < 0.1 ms, VGG7 < 1 ms); the rest are set proportionally to model
// FLOPs. fixedFrac ~0.75–0.9 reproduces the paper's observed 4.7–13.3×
// batching speedup at b=32.
type calibration struct {
	lat1080Ti time.Duration // ℓ(1) on GTX 1080Ti
	fixedFrac float64       // β / ℓ(1)
	preproc   time.Duration // CPU per item
	postproc  time.Duration // CPU per item
	maxBatch  int
	cpuLat    time.Duration // batch-1 latency on the CPU baseline (Table 1)
}

var calibrations = map[string]calibration{
	model.LeNet5:       {80 * time.Microsecond, 0.85, 2 * time.Millisecond, 200 * time.Microsecond, 256, 6 * time.Millisecond},
	model.VGG7:         {900 * time.Microsecond, 0.80, 3 * time.Millisecond, 300 * time.Microsecond, 128, 44 * time.Millisecond},
	model.ResNet50:     {6200 * time.Microsecond, 0.88, 8 * time.Millisecond, 500 * time.Microsecond, 64, 1130 * time.Millisecond},
	model.Inception4:   {7 * time.Millisecond, 0.88, 8 * time.Millisecond, 500 * time.Microsecond, 64, 2110 * time.Millisecond},
	model.InceptionV3:  {7500 * time.Microsecond, 0.88, 8 * time.Millisecond, 500 * time.Microsecond, 64, 1600 * time.Millisecond},
	model.Darknet53:    {26300 * time.Microsecond, 0.80, 10 * time.Millisecond, 1 * time.Millisecond, 32, 7210 * time.Millisecond},
	model.SSD:          {47 * time.Millisecond, 0.75, 10 * time.Millisecond, 2 * time.Millisecond, 32, 9 * time.Second},
	model.VGGFace:      {14 * time.Millisecond, 0.82, 6 * time.Millisecond, 500 * time.Microsecond, 48, 3200 * time.Millisecond},
	model.GoogLeNetCar: {4200 * time.Microsecond, 0.86, 5 * time.Millisecond, 400 * time.Microsecond, 64, 760 * time.Millisecond},
	model.OpenPose:     {21 * time.Millisecond, 0.78, 10 * time.Millisecond, 2 * time.Millisecond, 32, 5200 * time.Millisecond},
	model.GazeNet:      {2 * time.Millisecond, 0.85, 3 * time.Millisecond, 300 * time.Microsecond, 128, 310 * time.Millisecond},
	model.TextCRNN:     {3 * time.Millisecond, 0.84, 3 * time.Millisecond, 400 * time.Microsecond, 128, 520 * time.Millisecond},
}

// gpuScale is the execution-time multiplier of each GPU type relative to
// the GTX 1080Ti reference.
var gpuScale = map[GPUType]float64{
	GTX1080Ti: 1.0,
	K80:       3.2,
	V100:      0.55,
}

// workspaceBytes is the fixed per-model GPU workspace (cuDNN scratch,
// framework state) charged on top of parameter memory.
const workspaceBytes = 500 << 20

// CatalogProfiles builds profiles for every model in mdb that has a
// calibration entry, on every GPU type in gpuScale. Specialized variants
// ("<base>-vN" and other clones) inherit the base model's calibration when
// given explicitly via BaseOf.
func CatalogProfiles(mdb *model.DB) (*DB, error) {
	db := NewDB()
	for _, id := range mdb.IDs() {
		cal, ok := calibrations[BaseOf(id)]
		if !ok {
			continue
		}
		m := mdb.MustGet(id)
		for gpu, scale := range gpuScale {
			p, err := buildProfile(m, cal, gpu, scale)
			if err != nil {
				return nil, err
			}
			if err := db.Put(p); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// BaseOf maps a specialized variant ID ("resnet50-v3") to its base catalog
// ID ("resnet50"). IDs without the "-v" suffix map to themselves.
func BaseOf(id string) string {
	for i := len(id) - 1; i > 0; i-- {
		if id[i] == '-' {
			if i+1 < len(id) && id[i+1] == 'v' && allDigits(id[i+2:]) {
				return id[:i]
			}
			return id
		}
	}
	return id
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func buildProfile(m *model.Model, cal calibration, gpu GPUType, scale float64) (*Profile, error) {
	l1 := time.Duration(float64(cal.lat1080Ti) * scale)
	beta := time.Duration(float64(l1) * cal.fixedFrac)
	alpha := l1 - beta
	if alpha < time.Microsecond {
		alpha = time.Microsecond
	}
	memPerItem := 16 * m.Layers[0].ActBytes
	if memPerItem < 1<<20 {
		memPerItem = 1 << 20
	}
	// SM saturation: the marginal item runs m.FLOPs() of compute in α
	// seconds; the ratio of that achieved rate to the device's peak is how
	// much of the GPU the model can actually keep busy. Small models (LeNet,
	// VGG7) land near the floor — the spatial-sharing sweet spot — while
	// heavy CNNs push toward 1 and gain nothing from a fractional slice.
	sat := 1.0
	if spec, ok := Specs()[gpu]; ok && spec.PeakTFLOPS > 0 && alpha > 0 {
		achieved := float64(m.FLOPs()) / alpha.Seconds()
		sat = achieved / (spec.PeakTFLOPS * 1e12)
		if sat < 0.05 {
			sat = 0.05
		}
		if sat > 1 {
			sat = 1
		}
	}
	p := &Profile{
		ModelID:      m.ID,
		GPU:          gpu,
		Alpha:        alpha,
		Beta:         beta,
		MaxBatch:     cal.maxBatch,
		PreprocCPU:   cal.preproc,
		PostprocCPU:  cal.postproc,
		MemBase:      m.ParamBytes() + workspaceBytes,
		MemPerItem:   memPerItem,
		SMSaturation: sat,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("calibrating %s on %s: %w", m.ID, gpu, err)
	}
	return p, nil
}

// CPULatency returns the Table 1 CPU batch-1 latency for a catalog model,
// or an error if uncalibrated.
func CPULatency(modelID string) (time.Duration, error) {
	cal, ok := calibrations[BaseOf(modelID)]
	if !ok {
		return 0, fmt.Errorf("profiler: no CPU calibration for %q", modelID)
	}
	return cal.cpuLat, nil
}

// CostPer1000 estimates the Table 1 dollar cost of 1000 invocations on a
// device running the model back-to-back at its best batch size (batch 1 on
// CPU). For the TPU column, which we do not profile, the GPU profile's
// compute is rescaled by peak-FLOPS ratio.
func CostPer1000(p *Profile, spec GPUSpec) float64 {
	var perInvocation time.Duration
	switch spec.Type {
	case CPUAVX512:
		lat, err := CPULatency(p.ModelID)
		if err != nil {
			// Fall back to scaling GPU time by peak-FLOPS ratio.
			lat = scaleByPeak(p, spec)
		}
		perInvocation = lat
	case TPUv2:
		perInvocation = scaleByPeak(p, spec)
	default:
		b := p.MaxBatch
		perInvocation = time.Duration(float64(p.BatchLatency(b)) / float64(b))
	}
	return 1000 * perInvocation.Hours() * spec.HourlyUSD
}

func scaleByPeak(p *Profile, spec GPUSpec) time.Duration {
	ref := Specs()[p.GPU]
	b := p.MaxBatch
	perInv := float64(p.BatchLatency(b)) / float64(b)
	return time.Duration(perInv * ref.PeakTFLOPS / spec.PeakTFLOPS)
}
