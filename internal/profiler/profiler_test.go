package profiler

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/model"
)

func testProfile() *Profile {
	return &Profile{
		ModelID:     "m",
		GPU:         GTX1080Ti,
		Alpha:       time.Millisecond,
		Beta:        10 * time.Millisecond,
		MaxBatch:    64,
		PreprocCPU:  2 * time.Millisecond,
		PostprocCPU: 500 * time.Microsecond,
		MemBase:     1 << 30,
		MemPerItem:  4 << 20,
	}
}

func TestBatchLatencyLinear(t *testing.T) {
	p := testProfile()
	if got := p.BatchLatency(1); got != 11*time.Millisecond {
		t.Fatalf("l(1) = %v", got)
	}
	if got := p.BatchLatency(10); got != 20*time.Millisecond {
		t.Fatalf("l(10) = %v", got)
	}
}

func TestBatchLatencyPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for b=0")
		}
	}()
	testProfile().BatchLatency(0)
}

func TestThroughputIncreasesWithBatch(t *testing.T) {
	p := testProfile()
	prev := 0.0
	for b := 1; b <= p.MaxBatch; b++ {
		tp := p.Throughput(b)
		if tp <= prev {
			t.Fatalf("throughput not increasing at b=%d: %v <= %v", b, tp, prev)
		}
		prev = tp
	}
}

func TestMaxBatchWithin(t *testing.T) {
	p := testProfile() // l(b) = b+10 ms
	cases := []struct {
		lat  time.Duration
		want int
	}{
		{5 * time.Millisecond, 0},   // infeasible
		{11 * time.Millisecond, 1},  // exactly b=1
		{20 * time.Millisecond, 10}, // exactly b=10
		{25500 * time.Microsecond, 15},
		{10 * time.Second, 64}, // capped at MaxBatch
	}
	for _, c := range cases {
		if got := p.MaxBatchWithin(c.lat); got != c.want {
			t.Errorf("MaxBatchWithin(%v) = %d, want %d", c.lat, got, c.want)
		}
	}
}

func TestSaturateBatch(t *testing.T) {
	p := testProfile() // l(b)=b+10ms; 2l(b)<=100ms => l(b)<=50 => b=40
	b, tp := p.SaturateBatch(100 * time.Millisecond)
	if b != 40 {
		t.Fatalf("saturate batch = %d, want 40", b)
	}
	want := 40.0 / 0.050
	if math.Abs(tp-want) > 1 {
		t.Fatalf("saturate throughput = %v, want %v", tp, want)
	}
	if b, tp := p.SaturateBatch(time.Millisecond); b != 0 || tp != 0 {
		t.Fatal("infeasible SLO should return zeros")
	}
}

func TestWithPoints(t *testing.T) {
	p := testProfile()
	pts := []time.Duration{50 * time.Millisecond, 75 * time.Millisecond, 100 * time.Millisecond}
	q := p.WithPoints(pts)
	if q.BatchLatency(2) != 75*time.Millisecond {
		t.Fatalf("points lookup wrong: %v", q.BatchLatency(2))
	}
	if q.MaxBatch != 3 {
		t.Fatalf("MaxBatch = %d, want 3", q.MaxBatch)
	}
	// Extrapolation beyond the table uses tail slope (25ms/step).
	if got := q.BatchLatency(5); got != 150*time.Millisecond {
		t.Fatalf("extrapolated l(5) = %v, want 150ms", got)
	}
	// Original profile is untouched.
	if p.BatchLatency(2) != 12*time.Millisecond {
		t.Fatal("WithPoints mutated the receiver")
	}
}

func TestValidate(t *testing.T) {
	good := testProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := testProfile()
	bad.MaxBatch = 0
	if bad.Validate() == nil {
		t.Error("MaxBatch=0 accepted")
	}
	bad = testProfile()
	bad.Alpha = -time.Millisecond
	if bad.Validate() == nil {
		t.Error("negative alpha accepted")
	}
	// Decreasing measured latencies must be rejected.
	dec := testProfile().WithPoints([]time.Duration{20 * time.Millisecond, 10 * time.Millisecond})
	if dec.Validate() == nil {
		t.Error("decreasing point table accepted")
	}
	// Increasing per-item latency must be rejected (throughput drop).
	inc := testProfile().WithPoints([]time.Duration{10 * time.Millisecond, 30 * time.Millisecond})
	if inc.Validate() == nil {
		t.Error("super-linear point table accepted")
	}
}

func TestFitLinear(t *testing.T) {
	alpha, beta := 1500*time.Microsecond, 12*time.Millisecond
	pts := make([]time.Duration, 32)
	for b := 1; b <= 32; b++ {
		pts[b-1] = time.Duration(b)*alpha + beta
	}
	a, bt, err := FitLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(a-alpha)) > float64(50*time.Microsecond) {
		t.Fatalf("alpha = %v, want %v", a, alpha)
	}
	if math.Abs(float64(bt-beta)) > float64(200*time.Microsecond) {
		t.Fatalf("beta = %v, want %v", bt, beta)
	}
	if _, _, err := FitLinear(pts[:1]); err == nil {
		t.Fatal("FitLinear with one point accepted")
	}
}

// Property: FitLinear recovers alpha/beta from noiseless linear tables.
func TestPropertyFitLinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := time.Duration(rng.Intn(5000)+100) * time.Microsecond
		beta := time.Duration(rng.Intn(50)) * time.Millisecond
		n := rng.Intn(30) + 2
		pts := make([]time.Duration, n)
		for b := 1; b <= n; b++ {
			pts[b-1] = time.Duration(b)*alpha + beta
		}
		a, bt, err := FitLinear(pts)
		if err != nil {
			return false
		}
		return math.Abs(float64(a-alpha)) < float64(alpha)/100+1000 &&
			math.Abs(float64(bt-beta)) < float64(beta)/100+float64(time.Millisecond)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSplit(t *testing.T) {
	p := testProfile()
	pre, suf := p.Split(0.9)
	if pre.Alpha+suf.Alpha < p.Alpha-time.Microsecond || pre.Alpha+suf.Alpha > p.Alpha+time.Microsecond {
		t.Fatalf("alpha not conserved: %v + %v != %v", pre.Alpha, suf.Alpha, p.Alpha)
	}
	if pre.Beta+suf.Beta > p.Beta+time.Microsecond {
		t.Fatalf("beta grew on split: %v + %v > %v", pre.Beta, suf.Beta, p.Beta)
	}
	if pre.Alpha < suf.Alpha {
		t.Fatal("90% prefix should carry most alpha")
	}
	if pre.PostprocCPU != 0 || suf.PreprocCPU != 0 {
		t.Fatal("CPU work should not be duplicated across the split")
	}
	// Degenerate fractions clamp.
	pre, suf = p.Split(-1)
	if pre.Alpha > suf.Alpha {
		t.Fatal("Split(-1) should put compute in suffix")
	}
	pre, _ = p.Split(2)
	if pre.Alpha < p.Alpha-time.Microsecond {
		t.Fatal("Split(2) should put compute in prefix")
	}
}

func TestProfileDB(t *testing.T) {
	db := NewDB()
	p := testProfile()
	if err := db.Put(p); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get("m", GTX1080Ti)
	if err != nil || got != p {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := db.Get("m", V100); err == nil {
		t.Fatal("missing GPU type accepted")
	}
	bad := testProfile()
	bad.MaxBatch = 0
	if db.Put(bad) == nil {
		t.Fatal("invalid profile stored")
	}
}

func TestBaseOf(t *testing.T) {
	cases := map[string]string{
		"resnet50":      "resnet50",
		"resnet50-v0":   "resnet50",
		"resnet50-v12":  "resnet50",
		"googlenet_car": "googlenet_car",
		"ssd-variant":   "ssd-variant", // not a -vN suffix
		"lenet5-v3":     "lenet5",
		"x-v":           "x-v", // no digits
	}
	for in, want := range cases {
		if got := BaseOf(in); got != want {
			t.Errorf("BaseOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCatalogProfiles(t *testing.T) {
	mdb := model.Catalog()
	if _, err := model.SpecializeFamily(mdb, model.ResNet50, 2, 1); err != nil {
		t.Fatal(err)
	}
	db, err := CatalogProfiles(mdb)
	if err != nil {
		t.Fatal(err)
	}
	// Paper-reported batch-1 latencies must be honoured on the 1080Ti.
	cases := map[string]time.Duration{
		model.ResNet50:     6200 * time.Microsecond,
		model.Inception4:   7 * time.Millisecond,
		model.Darknet53:    26300 * time.Microsecond,
		model.SSD:          47 * time.Millisecond,
		model.GoogLeNetCar: 4200 * time.Microsecond,
	}
	for id, want := range cases {
		p := db.MustGet(id, GTX1080Ti)
		got := p.BatchLatency(1)
		if math.Abs(float64(got-want)) > float64(10*time.Microsecond) {
			t.Errorf("%s l(1) = %v, want %v", id, got, want)
		}
	}
	// Batching speedup at b=32 must be in the paper's observed range for
	// the classification models.
	for _, id := range []string{model.ResNet50, model.Inception4, model.VGG7} {
		p := db.MustGet(id, GTX1080Ti)
		gain := p.Throughput(32) / p.Throughput(1)
		if gain < 4 || gain > 16 {
			t.Errorf("%s b=32 speedup %.1fx outside [4,16]", id, gain)
		}
	}
	// Variants inherit the base calibration.
	v := db.MustGet("resnet50-v0", GTX1080Ti)
	b := db.MustGet(model.ResNet50, GTX1080Ti)
	if v.Alpha != b.Alpha || v.Beta != b.Beta {
		t.Error("specialized variant profile differs from base")
	}
	// K80 slower than 1080Ti; V100 faster.
	if db.MustGet(model.ResNet50, K80).BatchLatency(1) <= b.BatchLatency(1) {
		t.Error("K80 not slower than 1080Ti")
	}
	if db.MustGet(model.ResNet50, V100).BatchLatency(1) >= b.BatchLatency(1) {
		t.Error("V100 not faster than 1080Ti")
	}
}

func TestCostPer1000(t *testing.T) {
	mdb := model.Catalog()
	db, err := CatalogProfiles(mdb)
	if err != nil {
		t.Fatal(err)
	}
	specs := Specs()
	p := db.MustGet(model.ResNet50, V100)
	gpuCost := CostPer1000(p, specs[V100])
	cpuCost := CostPer1000(p, specs[CPUAVX512])
	tpuCost := CostPer1000(p, specs[TPUv2])
	if gpuCost <= 0 || cpuCost <= 0 || tpuCost <= 0 {
		t.Fatal("costs must be positive")
	}
	// Table 1's headline: accelerators are far cheaper per invocation.
	if cpuCost < 5*gpuCost {
		t.Errorf("CPU cost %.4f not >> GPU cost %.4f", cpuCost, gpuCost)
	}
}

func TestCPULatency(t *testing.T) {
	lat, err := CPULatency(model.ResNet50)
	if err != nil || lat != 1130*time.Millisecond {
		t.Fatalf("CPULatency = %v, %v", lat, err)
	}
	if _, err := CPULatency("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestSpecLookup(t *testing.T) {
	if _, err := Spec(GTX1080Ti); err != nil {
		t.Fatal(err)
	}
	if _, err := Spec("imaginary"); err == nil {
		t.Fatal("unknown spec accepted")
	}
}
