package profiler

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestProfileDBSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	p := testProfile()
	db.MustPut(p)
	withPoints := testProfile().WithPoints([]time.Duration{
		20 * time.Millisecond, 21 * time.Millisecond, 22 * time.Millisecond,
	})
	withPoints.ModelID = "pts"
	db.MustPut(withPoints)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDB(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.MustGet("m", GTX1080Ti)
	if got.Alpha != p.Alpha || got.Beta != p.Beta || got.MaxBatch != p.MaxBatch {
		t.Fatalf("linear profile changed: %+v", got)
	}
	if got.BatchLatency(5) != p.BatchLatency(5) {
		t.Fatal("latency model changed across persistence")
	}
	gp := loaded.MustGet("pts", GTX1080Ti)
	if gp.BatchLatency(2) != 21*time.Millisecond {
		t.Fatalf("points lost: l(2) = %v", gp.BatchLatency(2))
	}
	if gp.MaxBatch != 3 {
		t.Fatalf("points MaxBatch = %d", gp.MaxBatch)
	}
}

func TestLoadProfileDBRejectsInvalid(t *testing.T) {
	if _, err := LoadDB(strings.NewReader(`{"profiles":[{"model":"m","gpu":"gtx1080ti","alpha_us":0,"beta_us":0,"max_batch":0}]}`)); err == nil {
		t.Fatal("invalid profile accepted")
	}
	if _, err := LoadDB(strings.NewReader(`{"nope":[]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
