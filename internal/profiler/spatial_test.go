package profiler

import (
	"testing"
	"time"

	"nexus/internal/model"
)

// A noisy measured point table can dip: ℓ(3) < ℓ(2) here. Without isotonic
// smoothing the MaxBatchWithin binary search probes ℓ(3)=12ms <= 15ms and
// returns 3 — a batch whose true predecessor ℓ(2)=30ms already misses the
// budget and whose envelope therefore cannot be trusted. The memo table's
// running-max envelope makes the search honest: only b=1 fits 15ms.
func TestMaxBatchWithinNonMonotonePoints(t *testing.T) {
	base := &Profile{ModelID: "noisy", GPU: GTX1080Ti, Alpha: time.Millisecond, MaxBatch: 4}
	p := base.WithPoints([]time.Duration{
		10 * time.Millisecond,
		30 * time.Millisecond,
		12 * time.Millisecond, // dips below ℓ(2)
		40 * time.Millisecond,
	})
	if got := p.MaxBatchWithin(15 * time.Millisecond); got != 1 {
		t.Fatalf("MaxBatchWithin(15ms) = %d, want 1 (isotonic envelope)", got)
	}
	// The memoized envelope must be monotone non-decreasing.
	prev := time.Duration(0)
	for b := 1; b <= p.MaxBatch; b++ {
		l := p.BatchLatency(b)
		if l < prev {
			t.Fatalf("BatchLatency(%d) = %v < BatchLatency(%d) = %v", b, l, b-1, prev)
		}
		prev = l
	}
	// ℓ(3) is lifted to the envelope of ℓ(2); monotone entries unchanged.
	if got := p.BatchLatency(3); got != 30*time.Millisecond {
		t.Fatalf("BatchLatency(3) = %v, want 30ms (lifted)", got)
	}
	if got := p.BatchLatency(4); got != 40*time.Millisecond {
		t.Fatalf("BatchLatency(4) = %v, want 40ms (unchanged)", got)
	}
}

// Smoothing must be the identity on monotone tables so every existing
// profile — and therefore every experiment golden — is unaffected.
func TestIsotonicIdentityOnMonotone(t *testing.T) {
	pts := []time.Duration{10 * time.Millisecond, 18 * time.Millisecond, 26 * time.Millisecond}
	base := &Profile{ModelID: "mono", GPU: GTX1080Ti, Alpha: time.Millisecond, MaxBatch: 3}
	p := base.WithPoints(pts)
	for b := 1; b <= 3; b++ {
		if got := p.BatchLatency(b); got != pts[b-1] {
			t.Fatalf("BatchLatency(%d) = %v, want %v", b, got, pts[b-1])
		}
	}
}

func TestSpatialSlowdown(t *testing.T) {
	cases := []struct {
		frac, sat, want float64
	}{
		{1.0, 0.5, 1.0},  // full slice: never slower
		{0.5, 0.5, 1.0},  // slice matches saturation: knee point
		{0.25, 0.5, 2.0}, // half the needed SMs: 2x
		{0.5, 0, 2.0},    // sat 0 = unknown = saturates whole GPU
		{0.125, 0.05, 1}, // tiny model fits tiny slice
		{1.5, 0.9, 1.0},  // frac clamped at 1
		{0.5, 1.5, 2.0},  // sat clamped at 1
	}
	for _, c := range cases {
		if got := SpatialSlowdown(c.frac, c.sat); got != c.want {
			t.Errorf("SpatialSlowdown(%v, %v) = %v, want %v", c.frac, c.sat, got, c.want)
		}
	}
	if got := SpatialSlowdown(0, 0.5); !isInf(got) {
		t.Errorf("SpatialSlowdown(0, .) = %v, want +Inf", got)
	}
}

func isInf(f float64) bool { return f > 1e300 }

func TestSliceProfileScaling(t *testing.T) {
	p := &Profile{
		ModelID:      "m",
		GPU:          GTX1080Ti,
		Alpha:        time.Millisecond,
		Beta:         4 * time.Millisecond,
		MaxBatch:     8,
		SMSaturation: 0.5,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Slice >= saturation, no co-residents: the same profile comes back.
	if q := p.SliceProfile(0.5, 0); q != p {
		t.Fatal("SliceProfile at the knee should return the receiver")
	}
	// Quarter slice: 2x slowdown on every latency.
	q := p.SliceProfile(0.25, 0)
	if q.Alpha != 2*time.Millisecond || q.Beta != 8*time.Millisecond {
		t.Fatalf("quarter slice: alpha=%v beta=%v, want 2ms/8ms", q.Alpha, q.Beta)
	}
	if got, want := q.BatchLatency(4), 2*p.BatchLatency(4); got != want {
		t.Fatalf("BatchLatency(4) on quarter slice = %v, want %v", got, want)
	}
	// Co-residency interference compounds multiplicatively.
	r := p.SliceProfile(0.25, 2)
	wantAlpha := time.Duration(float64(p.Alpha) * 2 * (1 + 2*SpatialInterference))
	if r.Alpha != wantAlpha {
		t.Fatalf("interfered alpha = %v, want %v", r.Alpha, wantAlpha)
	}
	// The receiver is untouched.
	if p.Alpha != time.Millisecond {
		t.Fatal("SliceProfile mutated the receiver")
	}
}

// Catalog profiles must carry plausible SM saturations: small models near
// the floor (spatial-sharing candidates), heavy models well above them.
func TestCatalogSMSaturation(t *testing.T) {
	db, err := CatalogProfiles(model.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	lenet := db.MustGet(model.LeNet5, GTX1080Ti)
	resnet := db.MustGet(model.ResNet50, GTX1080Ti)
	if lenet.SMSaturation <= 0 || lenet.SMSaturation > 1 {
		t.Fatalf("LeNet5 saturation %v out of (0,1]", lenet.SMSaturation)
	}
	if resnet.SMSaturation <= 0 || resnet.SMSaturation > 1 {
		t.Fatalf("ResNet50 saturation %v out of (0,1]", resnet.SMSaturation)
	}
	if lenet.SMSaturation >= resnet.SMSaturation {
		t.Fatalf("LeNet5 saturation %v should be below ResNet50's %v",
			lenet.SMSaturation, resnet.SMSaturation)
	}
}
