package profiler

import (
	"fmt"
	"time"
)

// CombinedProfile builds the batching profile of a prefix group (§6.3):
// k specialized variants of a base model that share all compute except a
// suffix holding suffixFLOPFrac of the FLOPs. A combined batch of size b
// executes the shared prefix once at batch b, then up to min(k, b) suffixes
// sequentially at batch ceil(b / active).
//
// The resulting point table is smoothed to restore the two monotonicity
// invariants scheduling relies on (latency non-decreasing, per-item latency
// non-increasing); smoothing only ever raises latencies, so plans built on
// the combined profile remain SLO-safe.
func CombinedProfile(base *Profile, suffixFLOPFrac float64, k int) (*Profile, error) {
	if k < 1 {
		return nil, fmt.Errorf("profiler: CombinedProfile with k=%d", k)
	}
	if suffixFLOPFrac < 0 || suffixFLOPFrac >= 1 {
		return nil, fmt.Errorf("profiler: suffix FLOP fraction %v out of [0,1)", suffixFLOPFrac)
	}
	prefix, suffix := base.Split(1 - suffixFLOPFrac)
	maxBatch := base.MaxBatch
	pts := make([]time.Duration, maxBatch)
	for b := 1; b <= maxBatch; b++ {
		active := k
		if b < k {
			active = b
		}
		per := (b + active - 1) / active
		pts[b-1] = prefix.BatchLatency(b) + time.Duration(active)*suffix.BatchLatency(per)
	}
	smoothMonotone(pts)
	combined := &Profile{
		ModelID:     fmt.Sprintf("%s+%dvariants", base.ModelID, k),
		GPU:         base.GPU,
		Alpha:       base.Alpha, // fallback beyond the table
		Beta:        base.Beta,
		MaxBatch:    maxBatch,
		PreprocCPU:  base.PreprocCPU,
		PostprocCPU: base.PostprocCPU,
		// One resident prefix plus k small suffixes (Figure 15b).
		MemBase:    base.MemBase + int64(float64(base.MemBase-workspaceBytes)*suffixFLOPFrac)*int64(k-1),
		MemPerItem: base.MemPerItem,
	}
	out := combined.WithPoints(pts)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("profiler: combined profile invalid: %w", err)
	}
	return out, nil
}

// smoothMonotone raises points as needed so that latency is non-decreasing
// in b and per-item latency non-increasing. Backward pass first (per-item),
// then forward (latency); both only increase values.
func smoothMonotone(pts []time.Duration) {
	n := len(pts)
	for b := n - 1; b >= 1; b-- {
		// per-item(b) >= per-item(b+1):  pts[b-1]/b >= pts[b]/(b+1).
		// Exact integer ceil division; float truncation here could
		// undershoot by a nanosecond and break validation.
		minLat := (pts[b]*time.Duration(b) + time.Duration(b)) / time.Duration(b+1)
		if pts[b-1] < minLat {
			pts[b-1] = minLat
		}
	}
	for b := 1; b < n; b++ {
		if pts[b] < pts[b-1] {
			pts[b] = pts[b-1]
		}
	}
}

// SeparateVariantsProfile models the Figure 15 baseline: k variants served
// WITHOUT prefix batching on one GPU must run k separate sub-batches, so a
// "combined" batch of b costs k full invocations of batch ceil(b/k), and
// memory grows with k full model replicas.
func SeparateVariantsProfile(base *Profile, k int) (*Profile, error) {
	if k < 1 {
		return nil, fmt.Errorf("profiler: SeparateVariantsProfile with k=%d", k)
	}
	maxBatch := base.MaxBatch
	pts := make([]time.Duration, maxBatch)
	for b := 1; b <= maxBatch; b++ {
		active := k
		if b < k {
			active = b
		}
		per := (b + active - 1) / active
		pts[b-1] = time.Duration(active) * base.BatchLatency(per)
	}
	smoothMonotone(pts)
	sep := &Profile{
		ModelID:     fmt.Sprintf("%s*%dseparate", base.ModelID, k),
		GPU:         base.GPU,
		Alpha:       base.Alpha,
		Beta:        base.Beta,
		MaxBatch:    maxBatch,
		PreprocCPU:  base.PreprocCPU,
		PostprocCPU: base.PostprocCPU,
		MemBase:     base.MemBase * int64(k),
		MemPerItem:  base.MemPerItem,
	}
	out := sep.WithPoints(pts)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("profiler: separate-variants profile invalid: %w", err)
	}
	return out, nil
}
