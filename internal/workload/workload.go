// Package workload generates request arrival processes for the evaluation:
// uniform and Poisson arrivals (§7.1 "we sample inter-arrival time between
// frames uniformly", §7.4 "varying Poisson arrival rates"), Zipf-distributed
// popularity across streams (§7.3.1), and piecewise rate schedules for
// diurnal / bursty experiments (Figure 13, rush hour in Figure 12).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"nexus/internal/simclock"
)

// Request is one inference request of a session.
type Request struct {
	ID       uint64
	Session  string
	Arrival  time.Duration // virtual time the request entered the frontend
	Deadline time.Duration // Arrival + session SLO
}

// Process produces inter-arrival times.
type Process interface {
	// Interarrival returns the time until the next request, given the
	// current virtual time (processes may be time-varying).
	Interarrival(now time.Duration, rng *rand.Rand) time.Duration
}

// Uniform produces near-regular arrivals: inter-arrival times drawn
// uniformly from [0.5, 1.5]/rate, mean 1/rate.
type Uniform struct{ Rate float64 }

// Interarrival implements Process.
func (u Uniform) Interarrival(_ time.Duration, rng *rand.Rand) time.Duration {
	if u.Rate <= 0 {
		return time.Hour
	}
	frac := 0.5 + rng.Float64()
	return time.Duration(frac / u.Rate * float64(time.Second))
}

// Poisson produces memoryless arrivals with exponential inter-arrival times.
type Poisson struct{ Rate float64 }

// Interarrival implements Process.
func (p Poisson) Interarrival(_ time.Duration, rng *rand.Rand) time.Duration {
	if p.Rate <= 0 {
		return time.Hour
	}
	return time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Second))
}

// Modulated is a Poisson process whose rate varies over time according to
// RateAt. It drives the Figure 13 workload swings.
type Modulated struct {
	RateAt func(time.Duration) float64
}

// Interarrival implements Process using the rate at the current instant.
// Rates are assumed piecewise-constant at the resolution of arrivals.
func (m Modulated) Interarrival(now time.Duration, rng *rand.Rand) time.Duration {
	r := m.RateAt(now)
	if r <= 0 {
		// Probe again shortly; the schedule may turn back on.
		return time.Second
	}
	return time.Duration(rng.ExpFloat64() / r * float64(time.Second))
}

// Generator emits the requests of one session into a sink.
type Generator struct {
	Session string
	SLO     time.Duration
	Proc    Process

	clock  *simclock.Clock
	rng    *rand.Rand
	sink   func(Request)
	until  time.Duration
	nextID uint64
	sent   uint64
	// mult scales the offered rate (0 or 1 = nominal): inter-arrival gaps
	// divide by it from the next arrival on. Fault injection uses it to
	// script traffic surges; the rng draw sequence is untouched, so a
	// surged run stays deterministic.
	mult float64
	// emitFn is g.emit bound once, so scheduling an arrival does not
	// allocate a closure per request.
	emitFn func()
}

// Start begins emitting requests for session until the given virtual time
// (inclusive of arrivals strictly before it). sink is called at each
// arrival instant.
func Start(clock *simclock.Clock, rng *rand.Rand, session string, slo time.Duration,
	proc Process, until time.Duration, sink func(Request)) *Generator {
	if slo <= 0 {
		panic(fmt.Sprintf("workload: session %s has non-positive SLO", session))
	}
	g := &Generator{
		Session: session, SLO: slo, Proc: proc,
		clock: clock, rng: rng, sink: sink, until: until,
	}
	g.emitFn = g.emit
	g.schedule()
	return g
}

// Sent returns how many requests have been emitted.
func (g *Generator) Sent() uint64 { return g.sent }

// SetRateMultiplier scales the generator's offered rate from the next
// arrival on: factor 2 halves inter-arrival gaps, factor 1 (or 0) restores
// the nominal process. Negative factors are clamped to nominal.
func (g *Generator) SetRateMultiplier(factor float64) {
	if factor <= 0 {
		factor = 1
	}
	g.mult = factor
}

func (g *Generator) schedule() {
	gap := g.Proc.Interarrival(g.clock.Now(), g.rng)
	if g.mult > 0 && g.mult != 1 {
		gap = time.Duration(float64(gap) / g.mult)
	}
	if gap < time.Microsecond {
		gap = time.Microsecond // forbid zero-gap infinite loops
	}
	at := g.clock.Now() + gap
	if at >= g.until {
		return
	}
	g.clock.At(at, g.emitFn)
}

func (g *Generator) emit() {
	req := Request{
		ID:       g.nextID,
		Session:  g.Session,
		Arrival:  g.clock.Now(),
		Deadline: g.clock.Now() + g.SLO,
	}
	g.nextID++
	g.sent++
	g.sink(req)
	g.schedule()
}

// ZipfWeights returns n weights following a Zipf distribution with exponent
// s, normalized to sum to 1. Rank 0 is the most popular.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// SplitRate distributes a total request rate across n streams with Zipf(s)
// popularity.
func SplitRate(total float64, n int, s float64) []float64 {
	w := ZipfWeights(n, s)
	rates := make([]float64, n)
	for i := range w {
		rates[i] = total * w[i]
	}
	return rates
}

// Segment is one piece of a piecewise-constant rate schedule.
type Segment struct {
	Until time.Duration // segment applies to t < Until
	Rate  float64
}

// Schedule is a piecewise-constant rate function. Segments must be ordered
// by Until; times past the last segment use the last rate.
type Schedule []Segment

// RateAt returns the scheduled rate at time t.
func (s Schedule) RateAt(t time.Duration) float64 {
	for _, seg := range s {
		if t < seg.Until {
			return seg.Rate
		}
	}
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].Rate
}

// Validate checks segment ordering.
func (s Schedule) Validate() error {
	for i := 1; i < len(s); i++ {
		if s[i].Until <= s[i-1].Until {
			return fmt.Errorf("workload: schedule segment %d not increasing", i)
		}
	}
	for i, seg := range s {
		if seg.Rate < 0 {
			return fmt.Errorf("workload: schedule segment %d has negative rate", i)
		}
	}
	return nil
}

// Burst builds the Figure 13 style schedule: a base rate, a burst window
// [from, to) at burst rate, then back to base.
func Burst(base, burst float64, from, to time.Duration) Schedule {
	return Schedule{
		{Until: from, Rate: base},
		{Until: to, Rate: burst},
		{Until: to + 365*24*time.Hour, Rate: base},
	}
}
