package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/simclock"
)

func TestUniformMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Uniform{Rate: 100}
	var sum time.Duration
	const n = 10000
	for i := 0; i < n; i++ {
		d := p.Interarrival(0, rng)
		if d < 5*time.Millisecond || d > 15*time.Millisecond {
			t.Fatalf("uniform interarrival %v outside [5ms,15ms]", d)
		}
		sum += d
	}
	mean := sum / n
	if math.Abs(float64(mean-10*time.Millisecond)) > float64(200*time.Microsecond) {
		t.Fatalf("mean interarrival %v, want ~10ms", mean)
	}
}

func TestPoissonMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Poisson{Rate: 200}
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += p.Interarrival(0, rng)
	}
	mean := sum / n
	if math.Abs(float64(mean-5*time.Millisecond)) > float64(150*time.Microsecond) {
		t.Fatalf("mean interarrival %v, want ~5ms", mean)
	}
}

func TestZeroRateDoesNotDivide(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if d := (Uniform{}).Interarrival(0, rng); d <= 0 {
		t.Fatal("zero-rate uniform returned non-positive gap")
	}
	if d := (Poisson{}).Interarrival(0, rng); d <= 0 {
		t.Fatal("zero-rate poisson returned non-positive gap")
	}
}

func TestModulatedFollowsSchedule(t *testing.T) {
	sched := Burst(100, 1000, 10*time.Second, 20*time.Second)
	m := Modulated{RateAt: sched.RateAt}
	rng := rand.New(rand.NewSource(4))
	meanAt := func(now time.Duration) time.Duration {
		var sum time.Duration
		const n = 5000
		for i := 0; i < n; i++ {
			sum += m.Interarrival(now, rng)
		}
		return sum / n
	}
	base := meanAt(time.Second)
	burst := meanAt(15 * time.Second)
	if base < 9*time.Millisecond || base > 11*time.Millisecond {
		t.Fatalf("base mean %v, want ~10ms", base)
	}
	if burst < 900*time.Microsecond || burst > 1100*time.Microsecond {
		t.Fatalf("burst mean %v, want ~1ms", burst)
	}
}

func TestModulatedZeroRateProbes(t *testing.T) {
	m := Modulated{RateAt: func(time.Duration) float64 { return 0 }}
	if d := m.Interarrival(0, rand.New(rand.NewSource(1))); d != time.Second {
		t.Fatalf("zero-rate probe gap = %v, want 1s", d)
	}
}

func TestGenerator(t *testing.T) {
	clock := simclock.New()
	rng := rand.New(rand.NewSource(7))
	var reqs []Request
	g := Start(clock, rng, "s1", 100*time.Millisecond, Uniform{Rate: 100},
		10*time.Second, func(r Request) { reqs = append(reqs, r) })
	clock.Run()
	// ~1000 requests in 10s at 100 r/s.
	if len(reqs) < 900 || len(reqs) > 1100 {
		t.Fatalf("generated %d requests, want ~1000", len(reqs))
	}
	if g.Sent() != uint64(len(reqs)) {
		t.Fatalf("Sent = %d, emitted %d", g.Sent(), len(reqs))
	}
	var prev time.Duration = -1
	for i, r := range reqs {
		if r.Arrival <= prev {
			t.Fatal("arrivals not strictly increasing")
		}
		if r.Arrival >= 10*time.Second {
			t.Fatal("arrival past until bound")
		}
		if r.Deadline != r.Arrival+100*time.Millisecond {
			t.Fatal("deadline != arrival + SLO")
		}
		if r.ID != uint64(i) {
			t.Fatal("IDs not sequential")
		}
		if r.Session != "s1" {
			t.Fatal("wrong session")
		}
		prev = r.Arrival
	}
}

func TestGeneratorInvalidSLO(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive SLO accepted")
		}
	}()
	Start(simclock.New(), rand.New(rand.NewSource(1)), "s", 0, Uniform{Rate: 1}, time.Second, func(Request) {})
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(10, 0.9)
	if len(w) != 10 {
		t.Fatalf("len = %d", len(w))
	}
	var sum float64
	for i, x := range w {
		sum += x
		if i > 0 && x > w[i-1] {
			t.Fatal("weights not decreasing")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	if ZipfWeights(0, 1) != nil {
		t.Fatal("n=0 should return nil")
	}
	// s=0 means uniform.
	u := ZipfWeights(4, 0)
	for _, x := range u {
		if math.Abs(x-0.25) > 1e-9 {
			t.Fatalf("s=0 weights not uniform: %v", u)
		}
	}
}

func TestSplitRate(t *testing.T) {
	rates := SplitRate(1000, 5, 0.9)
	var sum float64
	for _, r := range rates {
		sum += r
	}
	if math.Abs(sum-1000) > 1e-6 {
		t.Fatalf("split rates sum to %v", sum)
	}
	if rates[0] <= rates[4] {
		t.Fatal("Zipf head not larger than tail")
	}
}

func TestScheduleValidate(t *testing.T) {
	good := Schedule{{Until: time.Second, Rate: 1}, {Until: 2 * time.Second, Rate: 2}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Schedule{{Until: 2 * time.Second, Rate: 1}, {Until: time.Second, Rate: 2}}
	if bad.Validate() == nil {
		t.Fatal("unordered schedule accepted")
	}
	neg := Schedule{{Until: time.Second, Rate: -1}}
	if neg.Validate() == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestScheduleRateAt(t *testing.T) {
	s := Burst(100, 500, 10*time.Second, 20*time.Second)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 100},
		{9 * time.Second, 100},
		{10 * time.Second, 500},
		{19 * time.Second, 500},
		{20 * time.Second, 100},
		{time.Hour, 100},
	}
	for _, c := range cases {
		if got := s.RateAt(c.t); got != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	var empty Schedule
	if empty.RateAt(0) != 0 {
		t.Fatal("empty schedule rate should be 0")
	}
}

// Property: generator emits approximately rate*duration requests for both
// process kinds, and never past the horizon.
func TestPropertyGeneratorRate(t *testing.T) {
	f := func(seed int64, usePoisson bool) bool {
		rng := rand.New(rand.NewSource(seed))
		rate := float64(rng.Intn(400) + 50)
		var proc Process
		if usePoisson {
			proc = Poisson{Rate: rate}
		} else {
			proc = Uniform{Rate: rate}
		}
		clock := simclock.New()
		n := 0
		horizon := 5 * time.Second
		Start(clock, rng, "s", 50*time.Millisecond, proc, horizon, func(r Request) {
			if r.Arrival >= horizon {
				n = -1 << 30
			}
			n++
		})
		clock.Run()
		want := rate * horizon.Seconds()
		return math.Abs(float64(n)-want) < want*0.2+20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorStopsAtHorizonEdge(t *testing.T) {
	clock := simclock.New()
	rng := rand.New(rand.NewSource(9))
	var last time.Duration
	Start(clock, rng, "s", time.Second, Uniform{Rate: 1000}, 2*time.Second, func(r Request) {
		last = r.Arrival
	})
	clock.Run()
	if last >= 2*time.Second {
		t.Fatalf("arrival at %v, past the horizon", last)
	}
}

func TestModulatedRespondsToScheduleMidStream(t *testing.T) {
	clock := simclock.New()
	rng := rand.New(rand.NewSource(10))
	sched := Burst(50, 1000, 5*time.Second, 10*time.Second)
	perSecond := map[int]int{}
	Start(clock, rng, "s", time.Second, Modulated{RateAt: sched.RateAt}, 15*time.Second, func(r Request) {
		perSecond[int(r.Arrival/time.Second)]++
	})
	clock.Run()
	base := perSecond[2] + perSecond[3]
	burst := perSecond[6] + perSecond[7]
	if burst < 10*base {
		t.Fatalf("burst window %d arrivals vs base %d: modulation too weak", burst, base)
	}
}

func TestMinInterarrivalGuard(t *testing.T) {
	// A process returning zero gaps must not hang the generator.
	clock := simclock.New()
	rng := rand.New(rand.NewSource(11))
	n := 0
	Start(clock, rng, "s", time.Second, zeroGap{}, 10*time.Millisecond, func(Request) { n++ })
	clock.SetEventLimit(100000)
	clock.Run()
	if n == 0 {
		t.Fatal("no requests")
	}
	// 10ms at the 1µs floor = at most ~10k arrivals.
	if n > 10001 {
		t.Fatalf("gap floor not applied: %d arrivals", n)
	}
}

type zeroGap struct{}

func (zeroGap) Interarrival(time.Duration, *rand.Rand) time.Duration { return 0 }
