// Package frontend implements the Nexus data-plane frontend (§5): it holds
// the routing table published by the global scheduler, dispatches each
// request to a backend hosting its session (weighted by the plan's rate
// shares), and maintains the per-session request-rate statistics the
// control plane uses for epoch scheduling.
package frontend

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"nexus/internal/backend"
	"nexus/internal/simclock"
	"nexus/internal/trace"
	"nexus/internal/workload"
)

// Route is one backend placement of a session.
type Route struct {
	BackendID string
	UnitID    string
	Weight    float64 // proportional share of the session's traffic
}

// RoutingTable maps session IDs to their routes.
type RoutingTable map[string][]Route

// Validate checks weights: every route must carry a positive, finite
// weight (NaN and ±Inf would silently corrupt the smooth-WRR accumulator)
// and name both a backend and a unit.
func (rt RoutingTable) Validate() error {
	for sid, routes := range rt {
		if len(routes) == 0 {
			return fmt.Errorf("frontend: session %s has no routes", sid)
		}
		for _, r := range routes {
			if math.IsNaN(r.Weight) || math.IsInf(r.Weight, 0) || r.Weight <= 0 {
				return fmt.Errorf("frontend: session %s route to %s has weight %v", sid, r.BackendID, r.Weight)
			}
			if r.BackendID == "" || r.UnitID == "" {
				return fmt.Errorf("frontend: session %s has incomplete route", sid)
			}
		}
	}
	return nil
}

// DropFunc observes every request the frontend loses, with the reason:
// DropUnroutable (no route for the session), DropOverload (target queue
// full), DropReconfig (unit vanished in a reconfiguration race, retry
// exhausted) or DropFailure (target backend dead, retry exhausted).
type DropFunc func(req workload.Request, reason backend.Outcome)

// resolvedRoute is a Route with its backend pointer resolved at table-push
// time, so the per-request send path does not look the backend up by ID.
type resolvedRoute struct {
	Route
	be *backend.Backend
}

// sessionState is the per-session dispatch state: resolved routes, the
// smooth-WRR accumulator, and the rate counter. Collapsing these into one
// struct makes Dispatch a single map lookup per request.
type sessionState struct {
	routes []resolvedRoute
	wrr    []float64
	count  uint64
}

// Frontend dispatches requests to backends.
type Frontend struct {
	clock    *simclock.Clock
	backends map[string]*backend.Backend
	netDelay time.Duration
	// extraDelay models an injected network-delay spike on every hop.
	extraDelay time.Duration
	// retry enables the deadline-checked retry-once path on dead targets.
	retry bool

	table RoutingTable
	// tableVersion counts routing-table changes (control-plane pushes and
	// failure repairs), for telemetry.
	tableVersion uint64
	// dispatches and retries count routed requests and retry-once re-sends
	// over the frontend's lifetime, for telemetry.
	dispatches uint64
	retries    uint64
	// sessions is the resolved dispatch state, rebuilt whenever the table
	// changes (SetTable, RemoveBackend). Route repair and resource release
	// happen in the same simulation event, so a resolved backend pointer is
	// never observed stale by a dispatch.
	sessions map[string]*sessionState

	// onDrop observes requests the frontend loses, with the reason.
	onDrop DropFunc

	// tracer, when set, records Route (backend picked) and Enqueue (request
	// entered the target unit's queue after the network hop) span events.
	tracer *trace.Tracer

	// Rate observation for the control plane. Live sessions count in their
	// sessionState; residual holds counts of sessions whose routes were
	// removed mid-window, so their traffic still shows in ObservedRates.
	residual   map[string]uint64
	windowFrom time.Duration

	// sendPool recycles in-flight send state (and its bound delivery
	// callback) so the per-request network hop allocates nothing.
	sendPool []*pendingSend
}

// pendingSend is one request in flight across the frontend->backend network
// delay. Pooled on the frontend; deliver copies its fields out and releases
// the object before acting, so a nested retry may safely reuse it.
type pendingSend struct {
	f        *Frontend
	req      workload.Request
	r        resolvedRoute
	firstTry bool
	fire     func() // bound deliver
}

func (p *pendingSend) deliver() {
	f, req, r, firstTry := p.f, p.req, p.r, p.firstTry
	p.req, p.r = workload.Request{}, resolvedRoute{}
	f.sendPool = append(f.sendPool, p)

	var err error
	if r.be == nil {
		err = backend.ErrBackendDown
	} else {
		err = r.be.Enqueue(r.UnitID, req)
	}
	switch {
	case err == nil:
		if f.tracer != nil {
			now := f.clock.Now()
			f.tracer.Record(trace.Event{
				At: now, Kind: trace.Enqueue, ReqID: req.ID,
				Session: req.Session, Backend: r.BackendID, Unit: r.UnitID,
				Dur: now - req.Arrival,
			})
		}
	case errors.Is(err, backend.ErrQueueFull):
		// Overload is the drop policy's job, not the retry path's:
		// bouncing the request to another replica would just smear the
		// hotspot.
		f.drop(req, backend.DropOverload)
	default:
		reason := backend.DropFailure
		if errors.Is(err, backend.ErrUnitRemoved) {
			reason = backend.DropReconfig
		}
		if f.retry && firstTry {
			if alt, ok := f.altRoute(req.Session, r.BackendID); ok &&
				req.Deadline-f.clock.Now() > f.netDelay+f.extraDelay {
				f.retries++
				f.send(req, alt, false)
				return
			}
		}
		f.drop(req, reason)
	}
}

// DefaultNetDelay is the one-way frontend<->backend dispatch latency.
const DefaultNetDelay = 500 * time.Microsecond

// New creates a frontend over the given backends. netDelay < 0 uses the
// default; 0 is allowed (ideal network).
func New(clock *simclock.Clock, backends map[string]*backend.Backend, netDelay time.Duration,
	onDrop DropFunc) *Frontend {
	if netDelay < 0 {
		netDelay = DefaultNetDelay
	}
	return &Frontend{
		clock:    clock,
		backends: backends,
		netDelay: netDelay,
		table:    RoutingTable{},
		sessions: make(map[string]*sessionState),
		onDrop:   onDrop,
		residual: make(map[string]uint64),
	}
}

// NetDelay returns the configured one-way dispatch latency.
func (f *Frontend) NetDelay() time.Duration { return f.netDelay }

// EnableRetry turns on the retry-once path: a dispatch that fails because
// its target crashed or lost the unit is re-sent to a surviving replica,
// provided the request's deadline still has room for another network hop.
func (f *Frontend) EnableRetry() { f.retry = true }

// SetTracer attaches a span tracer; nil detaches it.
func (f *Frontend) SetTracer(t *trace.Tracer) { f.tracer = t }

// SetExtraDelay injects a network-delay spike of d on top of the base
// dispatch latency for every subsequent hop; d ≤ 0 clears it.
func (f *Frontend) SetExtraDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	f.extraDelay = d
}

// SetTable installs a new routing table (control plane push, §5).
func (f *Frontend) SetTable(rt RoutingTable) error {
	if err := rt.Validate(); err != nil {
		return err
	}
	for _, routes := range rt {
		for _, r := range routes {
			if _, ok := f.backends[r.BackendID]; !ok {
				return fmt.Errorf("frontend: route to unknown backend %s", r.BackendID)
			}
		}
	}
	f.table = rt
	f.tableVersion++
	sessions := make(map[string]*sessionState, len(rt))
	for sid, routes := range rt {
		st := &sessionState{routes: f.resolve(routes), wrr: make([]float64, len(routes))}
		// Rate counts survive table pushes: the count is keyed by session,
		// not by its routes.
		if old, ok := f.sessions[sid]; ok {
			st.count = old.count
		} else if n, ok := f.residual[sid]; ok {
			st.count = n
			delete(f.residual, sid)
		}
		sessions[sid] = st
	}
	// Sessions dropped from the table keep their window counts.
	for sid, st := range f.sessions {
		if _, ok := sessions[sid]; !ok && st.count > 0 {
			f.residual[sid] += st.count
		}
	}
	f.sessions = sessions
	return nil
}

// resolve caches the backend pointer of each route. Callers have already
// validated that every target exists.
func (f *Frontend) resolve(routes []Route) []resolvedRoute {
	out := make([]resolvedRoute, len(routes))
	for i, r := range routes {
		out[i] = resolvedRoute{Route: r, be: f.backends[r.BackendID]}
	}
	return out
}

// Dispatch routes a request to a backend. Requests for sessions without a
// route are reported unroutable (the admission-control drop path).
func (f *Frontend) Dispatch(req workload.Request) {
	st, ok := f.sessions[req.Session]
	if !ok || len(st.routes) == 0 {
		f.drop(req, backend.DropUnroutable)
		return
	}
	st.count++
	f.dispatches++
	r := st.pick()
	if f.tracer != nil {
		f.tracer.Record(trace.Event{
			At: f.clock.Now(), Kind: trace.Route, ReqID: req.ID,
			Session: req.Session, Backend: r.BackendID, Unit: r.UnitID,
		})
	}
	f.send(req, r, true)
}

// send delivers req to route r after the network delay, classifying any
// enqueue failure. When the target is dead or lost the unit mid-flight and
// retries are enabled, a first-try request is re-sent once to a surviving
// replica — but only if its deadline still has room for another hop.
func (f *Frontend) send(req workload.Request, r resolvedRoute, firstTry bool) {
	var p *pendingSend
	if n := len(f.sendPool); n > 0 {
		p = f.sendPool[n-1]
		f.sendPool = f.sendPool[:n-1]
	} else {
		p = &pendingSend{f: f}
		p.fire = p.deliver
	}
	p.req, p.r, p.firstTry = req, r, firstTry
	f.clock.After(f.netDelay+f.extraDelay, p.fire)
}

// altRoute returns the session's first route to a live backend other than
// the one that just failed.
func (f *Frontend) altRoute(session, exclude string) (resolvedRoute, bool) {
	if st, ok := f.sessions[session]; ok {
		for _, r := range st.routes {
			if r.BackendID == exclude {
				continue
			}
			if r.be != nil && r.be.Alive() {
				return r, true
			}
		}
	}
	return resolvedRoute{}, false
}

func (f *Frontend) drop(req workload.Request, reason backend.Outcome) {
	if f.onDrop != nil {
		f.onDrop(req, reason)
	}
}

// RemoveBackend repairs the routing table after a backend is declared
// dead: every route to it is deleted. The table object may be shared with
// other frontend replicas (each receives its own repair call), so the
// repair is copy-on-write. Smooth-WRR weights are proportional, which
// redistributes the dead replica's share across the survivors of each
// session automatically; the session's WRR accumulator is reset so stale
// credit cannot skew the new split. Sessions whose last replica died
// become unroutable until the control plane re-plans. Returns the number
// of sessions whose routes changed.
func (f *Frontend) RemoveBackend(beID string) int {
	affected := 0
	var repaired RoutingTable
	for sid, routes := range f.table {
		keep := routes[:0:0]
		for _, r := range routes {
			if r.BackendID != beID {
				keep = append(keep, r)
			}
		}
		if len(keep) == len(routes) {
			continue
		}
		if repaired == nil {
			repaired = make(RoutingTable, len(f.table))
			for s, rs := range f.table {
				repaired[s] = rs
			}
		}
		affected++
		st := f.sessions[sid]
		if len(keep) == 0 {
			delete(repaired, sid)
			if st != nil {
				if st.count > 0 {
					f.residual[sid] += st.count
				}
				delete(f.sessions, sid)
			}
		} else {
			repaired[sid] = keep
			fresh := &sessionState{routes: f.resolve(keep), wrr: make([]float64, len(keep))}
			if st != nil {
				fresh.count = st.count
			}
			f.sessions[sid] = fresh
		}
	}
	if repaired != nil {
		f.table = repaired
		f.tableVersion++
	}
	return affected
}

// TableVersion returns how many times the routing table has changed
// (control-plane pushes plus failure repairs).
func (f *Frontend) TableVersion() uint64 { return f.tableVersion }

// Dispatches returns how many requests this frontend has routed (excludes
// unroutable admission drops, which never reached a backend).
func (f *Frontend) Dispatches() uint64 { return f.dispatches }

// Retries returns how many dispatches took the retry-once path after
// hitting a dead backend or a reconfiguration race.
func (f *Frontend) Retries() uint64 { return f.retries }

// pick implements smooth weighted round-robin, which spreads a session's
// requests across its replicas proportionally and deterministically.
func (st *sessionState) pick() resolvedRoute {
	state := st.wrr
	var total float64
	best := 0
	for i := range st.routes {
		w := st.routes[i].Weight
		state[i] += w
		total += w
		if state[i] > state[best] {
			best = i
		}
	}
	state[best] -= total
	return st.routes[best]
}

// ObservedRates returns each session's request rate (req/s) since the last
// call, then resets the window. This feeds epoch scheduling ("load
// statistics from the runtime", §5).
func (f *Frontend) ObservedRates() map[string]float64 {
	elapsed := (f.clock.Now() - f.windowFrom).Seconds()
	rates := make(map[string]float64, len(f.sessions)+len(f.residual))
	if elapsed > 0 {
		for sid, st := range f.sessions {
			if st.count > 0 {
				rates[sid] = float64(st.count) / elapsed
			}
		}
		for sid, n := range f.residual {
			rates[sid] = float64(n) / elapsed
		}
	}
	for _, st := range f.sessions {
		st.count = 0
	}
	f.residual = make(map[string]uint64)
	f.windowFrom = f.clock.Now()
	return rates
}

// Sessions returns the sessions currently routable, sorted.
func (f *Frontend) Sessions() []string {
	out := make([]string, 0, len(f.table))
	for sid := range f.table {
		out = append(out, sid)
	}
	sort.Strings(out)
	return out
}
