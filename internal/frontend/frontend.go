// Package frontend implements the Nexus data-plane frontend (§5): it holds
// the routing table published by the global scheduler, dispatches each
// request to a backend hosting its session (weighted by the plan's rate
// shares), and maintains the per-session request-rate statistics the
// control plane uses for epoch scheduling.
package frontend

import (
	"fmt"
	"sort"
	"time"

	"nexus/internal/backend"
	"nexus/internal/simclock"
	"nexus/internal/workload"
)

// Route is one backend placement of a session.
type Route struct {
	BackendID string
	UnitID    string
	Weight    float64 // proportional share of the session's traffic
}

// RoutingTable maps session IDs to their routes.
type RoutingTable map[string][]Route

// Validate checks weights.
func (rt RoutingTable) Validate() error {
	for sid, routes := range rt {
		if len(routes) == 0 {
			return fmt.Errorf("frontend: session %s has no routes", sid)
		}
		for _, r := range routes {
			if r.Weight <= 0 {
				return fmt.Errorf("frontend: session %s route to %s has weight %v", sid, r.BackendID, r.Weight)
			}
			if r.BackendID == "" || r.UnitID == "" {
				return fmt.Errorf("frontend: session %s has incomplete route", sid)
			}
		}
	}
	return nil
}

// Frontend dispatches requests to backends.
type Frontend struct {
	clock    *simclock.Clock
	backends map[string]*backend.Backend
	netDelay time.Duration

	table RoutingTable
	wrr   map[string][]float64 // smooth weighted round-robin state per session

	// onUnroutable observes requests with no route (counted as drops).
	onUnroutable func(req workload.Request)

	// Rate observation for the control plane.
	counts     map[string]uint64
	windowFrom time.Duration
}

// DefaultNetDelay is the one-way frontend<->backend dispatch latency.
const DefaultNetDelay = 500 * time.Microsecond

// New creates a frontend over the given backends. netDelay < 0 uses the
// default; 0 is allowed (ideal network).
func New(clock *simclock.Clock, backends map[string]*backend.Backend, netDelay time.Duration,
	onUnroutable func(req workload.Request)) *Frontend {
	if netDelay < 0 {
		netDelay = DefaultNetDelay
	}
	return &Frontend{
		clock:        clock,
		backends:     backends,
		netDelay:     netDelay,
		table:        RoutingTable{},
		wrr:          make(map[string][]float64),
		onUnroutable: onUnroutable,
		counts:       make(map[string]uint64),
	}
}

// NetDelay returns the configured one-way dispatch latency.
func (f *Frontend) NetDelay() time.Duration { return f.netDelay }

// SetTable installs a new routing table (control plane push, §5).
func (f *Frontend) SetTable(rt RoutingTable) error {
	if err := rt.Validate(); err != nil {
		return err
	}
	for _, routes := range rt {
		for _, r := range routes {
			if _, ok := f.backends[r.BackendID]; !ok {
				return fmt.Errorf("frontend: route to unknown backend %s", r.BackendID)
			}
		}
	}
	f.table = rt
	f.wrr = make(map[string][]float64)
	return nil
}

// Dispatch routes a request to a backend. Requests for sessions without a
// route are reported unroutable (the admission-control drop path).
func (f *Frontend) Dispatch(req workload.Request) {
	routes, ok := f.table[req.Session]
	if !ok || len(routes) == 0 {
		if f.onUnroutable != nil {
			f.onUnroutable(req)
		}
		return
	}
	f.counts[req.Session]++
	r := f.pick(req.Session, routes)
	be := f.backends[r.BackendID]
	unitID := r.UnitID
	f.clock.After(f.netDelay, func() {
		if err := be.Enqueue(unitID, req); err != nil {
			// The unit was removed by a reconfiguration in flight; count
			// the request as unroutable.
			if f.onUnroutable != nil {
				f.onUnroutable(req)
			}
		}
	})
}

// pick implements smooth weighted round-robin, which spreads a session's
// requests across its replicas proportionally and deterministically.
func (f *Frontend) pick(session string, routes []Route) Route {
	state, ok := f.wrr[session]
	if !ok || len(state) != len(routes) {
		state = make([]float64, len(routes))
		f.wrr[session] = state
	}
	var total float64
	best := 0
	for i, r := range routes {
		state[i] += r.Weight
		total += r.Weight
		if state[i] > state[best] {
			best = i
		}
	}
	state[best] -= total
	return routes[best]
}

// ObservedRates returns each session's request rate (req/s) since the last
// call, then resets the window. This feeds epoch scheduling ("load
// statistics from the runtime", §5).
func (f *Frontend) ObservedRates() map[string]float64 {
	elapsed := (f.clock.Now() - f.windowFrom).Seconds()
	rates := make(map[string]float64, len(f.counts))
	if elapsed > 0 {
		for sid, n := range f.counts {
			rates[sid] = float64(n) / elapsed
		}
	}
	f.counts = make(map[string]uint64)
	f.windowFrom = f.clock.Now()
	return rates
}

// Sessions returns the sessions currently routable, sorted.
func (f *Frontend) Sessions() []string {
	out := make([]string, 0, len(f.table))
	for sid := range f.table {
		out = append(out, sid)
	}
	sort.Strings(out)
	return out
}
