// Package frontend implements the Nexus data-plane frontend (§5): it holds
// the routing table published by the global scheduler, dispatches each
// request to a backend hosting its session (weighted by the plan's rate
// shares), and maintains the per-session request-rate statistics the
// control plane uses for epoch scheduling.
package frontend

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/backend"
	"nexus/internal/ring"
	"nexus/internal/simclock"
	"nexus/internal/trace"
	"nexus/internal/workload"
)

// Route is one backend placement of a session.
type Route struct {
	BackendID string
	UnitID    string
	Weight    float64 // proportional share of the session's traffic
}

// RoutingTable maps session IDs to their routes.
type RoutingTable map[string][]Route

// Validate checks weights: every route must carry a positive, finite
// weight (NaN and ±Inf would silently corrupt the smooth-WRR accumulator)
// and name both a backend and a unit.
func (rt RoutingTable) Validate() error {
	for sid, routes := range rt {
		if len(routes) == 0 {
			return fmt.Errorf("frontend: session %s has no routes", sid)
		}
		for _, r := range routes {
			if math.IsNaN(r.Weight) || math.IsInf(r.Weight, 0) || r.Weight <= 0 {
				return fmt.Errorf("frontend: session %s route to %s has weight %v", sid, r.BackendID, r.Weight)
			}
			if r.BackendID == "" || r.UnitID == "" {
				return fmt.Errorf("frontend: session %s has incomplete route", sid)
			}
		}
	}
	return nil
}

// TableDelta is an incremental routing update: the control plane sends only
// the sessions whose routes changed since the generation it last pushed,
// instead of replacing the whole table. FromGen names the generation the
// delta applies on top of; a frontend holding any other generation (it
// missed a push, or repaired routes locally after a backend death) rejects
// the delta with ErrStaleDelta so the control plane falls back to a full
// SetTableGen resync.
type TableDelta struct {
	FromGen uint64
	Gen     uint64
	// Set installs (or replaces) the routes of each listed session.
	Set map[string][]Route
	// Remove deletes each listed session's routes (applied before Set).
	Remove []string
}

// ErrStaleDelta reports a generation mismatch between a delta and the
// frontend's routing state; the sender must full-resync.
var ErrStaleDelta = errors.New("frontend: delta generation mismatch, full resync required")

// DropFunc observes every request the frontend loses, with the reason:
// DropUnroutable (no route for the session, or route lease expired),
// DropOverload (target queue full), DropReconfig (unit vanished in a
// reconfiguration race, retry exhausted), DropFailure (target backend
// dead or unreachable, retry exhausted) or DropAdmission (shed by
// token-bucket admission control before routing).
type DropFunc func(req workload.Request, reason backend.Outcome)

// resolvedRoute is a Route with its backend pointer resolved at table-push
// time, so the per-request send path does not look the backend up by ID.
type resolvedRoute struct {
	Route
	be *backend.Backend
}

// sessionState is the per-session dispatch state: resolved routes, the
// smooth-WRR accumulator, and the rate counter. Collapsing these into one
// struct makes Dispatch a single map lookup per request, and holding the
// mutable parts per session shards dispatch state: concurrent Dispatch
// calls for different sessions touch disjoint cache lines and never
// contend. The count is atomic so a table mutation can carry it over while
// a dispatch is in flight; routes are written only when the state is
// created; the wrr accumulator is guarded by spin, a per-session CAS flag
// held for the handful of float ops one pick needs (uncontended it costs
// two uncontended atomic ops — there is no mutex anywhere on this path).
type sessionState struct {
	routes []resolvedRoute
	wrr    []float64
	spin   atomic.Uint32
	count  atomic.Uint64
}

// lock acquires the session's WRR guard. Contention only occurs between
// concurrent dispatchers of the same session, and the critical section is
// a short float scan, so spinning beats parking; Gosched keeps a stalled
// owner from starving its waiters.
func (st *sessionState) lock() {
	for i := 0; !st.spin.CompareAndSwap(0, 1); i++ {
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}

func (st *sessionState) unlock() { st.spin.Store(0) }

// tableState is the immutable routing snapshot the dispatch path reads:
// the table, its resolved per-session dispatch state, and the control-plane
// generation it corresponds to. Mutations (SetTable, ApplyDelta,
// RemoveBackend) build a fresh snapshot and swap the pointer, so Dispatch
// never observes a half-applied update.
type tableState struct {
	table    RoutingTable
	sessions map[string]*sessionState
	gen      uint64
}

// Frontend dispatches requests to backends.
type Frontend struct {
	clock    *simclock.Clock
	backends map[string]*backend.Backend
	netDelay time.Duration
	// extraDelay models an injected network-delay spike on every hop.
	extraDelay time.Duration
	// retry enables the deadline-checked retry-once path on dead targets.
	retry bool

	// state is the current routing snapshot; the dispatch hot path loads it
	// once per request and never takes a lock. Table mutations are
	// serialized by mu — a control-plane-rate lock only — and swap in a
	// fresh snapshot, so any number of concurrent Dispatch calls interleave
	// safely with pushes, deltas, and failure repairs.
	state atomic.Pointer[tableState]
	mu    sync.Mutex
	// tableVersion counts routing-table changes (control-plane pushes and
	// failure repairs), for telemetry.
	tableVersion atomic.Uint64
	// dispatches and retries count routed requests and retry re-sends over
	// the frontend's lifetime, for telemetry. Atomic: Dispatch may run on
	// many goroutines at once.
	dispatches atomic.Uint64
	retries    atomic.Uint64

	// ingress is the lock-free MPSC ring carrying picked (request, route)
	// pairs from Dispatch callers to the frontend→backend network hop, and
	// pumping is the CAS flag electing exactly one of them to drain it
	// (the hop schedules simulation-clock events, and the clock is
	// single-threaded). With one dispatcher the ring is strict FIFO and the
	// pump runs inline, so simulation behaviour is byte-identical to
	// calling send directly.
	ingress *ring.MPSC[pendingDispatch]
	pumping atomic.Uint32

	// onDrop observes requests the frontend loses, with the reason.
	onDrop DropFunc

	// tracer, when set, records Route (backend picked) and Enqueue (request
	// entered the target unit's queue after the network hop) span events.
	tracer *trace.Tracer

	// Rate observation for the control plane (guarded by mu). Live sessions
	// count in their sessionState; residual holds counts of sessions whose
	// routes were removed mid-window, so their traffic still shows in
	// ObservedRates.
	residual   map[string]uint64
	windowFrom time.Duration

	// sendPool recycles in-flight send state (and its bound delivery
	// callback) so the per-request network hop allocates nothing. It is
	// touched only by the elected pump owner and by delivery events on the
	// clock goroutine, so it needs no lock; New seeds it from a contiguous
	// arena so a fresh frontend reaches steady state without growing it.
	sendPool []*pendingSend
	// arenaHits/arenaGrows count sendPool reuses vs. fresh allocations, for
	// self-observability: a healthy steady state is all hits, and a growing
	// grow count means in-flight sends outrun the arena. Atomic only to be
	// race-detector-clean against a telemetry scrape; both are updated on
	// the pump/clock side.
	arenaHits  atomic.Uint64
	arenaGrows atomic.Uint64

	// Degraded-mode survival state (see degraded.go). All nil/zero when the
	// layer is off, so the hot path pays one nil check per feature.
	// retryBudget/retryBase replace the retry-once path when budget > 0.
	retryBudget int
	retryBase   time.Duration
	// leaseTTL > 0 arms routing-table leases: lastPush (unix nanos of the
	// newest control-plane push, atomic because Dispatch reads it without
	// mu) ages against it, and expired tables either serve stale (counted)
	// or stop routing.
	leaseTTL    time.Duration
	serveStale  bool
	lastPush    atomic.Int64
	staleServed atomic.Uint64
	// breakers holds per-backend circuit state. The map is built once at
	// EnableBreakers (one breaker per known backend) and read-only after,
	// so concurrent dispatchers index it freely; each breaker's fields are
	// atomic because pick-side probes race with delivery-side outcomes.
	breakers           map[string]*breaker
	breakerThreshold   int32
	breakerCooloff     time.Duration
	breakerTransitions atomic.Uint64
	onBreaker          BreakerObserver
	// linkDown marks backends behind a severed frontend<->backend link
	// (data partition): alive from the scheduler's view, unreachable here.
	linkDown map[string]bool
	// admission holds per-session token buckets; reserve is the shared
	// priority pool. The map is read-only after setup; each bucket carries
	// its own CAS guard. admissionSheds counts DropAdmission outcomes.
	admission      map[string]*tokenBucket
	reserve        *tokenBucket
	admissionSheds atomic.Uint64
}

// pendingDispatch is one picked (request, route) pair queued on the
// ingress ring between a Dispatch caller and the network hop.
type pendingDispatch struct {
	req     workload.Request
	r       resolvedRoute
	attempt int
}

// pendingSend is one request in flight across the frontend->backend network
// delay. Pooled on the frontend; deliver copies its fields out and releases
// the object before acting, so a nested retry may safely reuse it.
type pendingSend struct {
	f       *Frontend
	req     workload.Request
	r       resolvedRoute
	attempt int    // 1 on the first try
	fire    func() // bound deliver
}

func (p *pendingSend) deliver() {
	f, req, r, attempt := p.f, p.req, p.r, p.attempt
	p.req, p.r = workload.Request{}, resolvedRoute{}
	f.sendPool = append(f.sendPool, p)

	var err error
	switch {
	case r.be == nil:
		err = backend.ErrBackendDown
	case f.linkDown != nil && f.linkDown[r.BackendID]:
		// A severed frontend<->backend link looks exactly like a dead node
		// from this side: the dispatch is lost.
		err = backend.ErrBackendDown
	default:
		err = r.be.Enqueue(r.UnitID, req)
	}
	switch {
	case err == nil:
		if f.breakers != nil {
			f.breakerSuccess(r.BackendID)
		}
		if f.tracer != nil {
			now := f.clock.Now()
			f.tracer.Record(trace.Event{
				At: now, Kind: trace.Enqueue, ReqID: req.ID,
				Session: req.Session, Backend: r.BackendID, Unit: r.UnitID,
				Dur: now - req.Arrival,
			})
		}
	case errors.Is(err, backend.ErrQueueFull):
		// Overload is the drop policy's job, not the retry path's:
		// bouncing the request to another replica would just smear the
		// hotspot. It is not a breaker signal either — the node is healthy.
		f.drop(req, backend.DropOverload)
	default:
		reason := backend.DropFailure
		if errors.Is(err, backend.ErrUnitRemoved) {
			reason = backend.DropReconfig
		}
		if f.breakers != nil {
			f.breakerFailure(r.BackendID)
		}
		if f.retryBudget > 0 {
			// Exponential-backoff retry budget: re-send to a surviving
			// replica after base<<(attempt-1), as long as the budget and
			// the request's deadline both have room.
			if attempt <= f.retryBudget {
				backoff := f.retryBase << (attempt - 1)
				if alt, ok := f.altRoute(req.Session, r.BackendID); ok &&
					req.Deadline-f.clock.Now() > backoff+f.netDelay+f.extraDelay {
					f.retries.Add(1)
					next := attempt + 1
					f.clock.After(backoff, func() { f.send(req, alt, next) })
					return
				}
			}
		} else if f.retry && attempt == 1 {
			if alt, ok := f.altRoute(req.Session, r.BackendID); ok &&
				req.Deadline-f.clock.Now() > f.netDelay+f.extraDelay {
				f.retries.Add(1)
				f.send(req, alt, 2)
				return
			}
		}
		f.drop(req, reason)
	}
}

// DefaultNetDelay is the one-way frontend<->backend dispatch latency.
const DefaultNetDelay = 500 * time.Microsecond

// ingressCap bounds the in-flight picked-but-not-yet-sent requests on the
// ingress ring; a full ring makes the pushing dispatcher drain it itself.
const ingressCap = 1024

// sendArenaSize is how many pendingSend objects New pre-allocates as one
// contiguous block. It caps the common in-flight count of a single
// network-delay window; past it the pool grows one object at a time.
const sendArenaSize = 64

// New creates a frontend over the given backends. netDelay < 0 uses the
// default; 0 is allowed (ideal network).
func New(clock *simclock.Clock, backends map[string]*backend.Backend, netDelay time.Duration,
	onDrop DropFunc) *Frontend {
	if netDelay < 0 {
		netDelay = DefaultNetDelay
	}
	f := &Frontend{
		clock:    clock,
		backends: backends,
		netDelay: netDelay,
		onDrop:   onDrop,
		residual: make(map[string]uint64),
		ingress:  ring.NewMPSC[pendingDispatch](ingressCap),
	}
	f.state.Store(&tableState{table: RoutingTable{}, sessions: make(map[string]*sessionState)})
	// Request-callback arena: one block, bound callbacks included, so the
	// network hop never allocates while the in-flight window stays within
	// the arena.
	arena := make([]pendingSend, sendArenaSize)
	f.sendPool = make([]*pendingSend, 0, sendArenaSize)
	for i := range arena {
		p := &arena[i]
		p.f = f
		p.fire = p.deliver
		f.sendPool = append(f.sendPool, p)
	}
	return f
}

// NetDelay returns the configured one-way dispatch latency.
func (f *Frontend) NetDelay() time.Duration { return f.netDelay }

// EnableRetry turns on the retry-once path: a dispatch that fails because
// its target crashed or lost the unit is re-sent to a surviving replica,
// provided the request's deadline still has room for another network hop.
func (f *Frontend) EnableRetry() { f.retry = true }

// SetTracer attaches a span tracer; nil detaches it.
func (f *Frontend) SetTracer(t *trace.Tracer) { f.tracer = t }

// SetExtraDelay injects a network-delay spike of d on top of the base
// dispatch latency for every subsequent hop; d ≤ 0 clears it.
func (f *Frontend) SetExtraDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	f.extraDelay = d
}

// SetTable installs a new routing table (control plane push, §5).
func (f *Frontend) SetTable(rt RoutingTable) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.setTableLocked(rt, f.state.Load().gen+1)
}

// SetTableGen installs a full routing table stamped with the control
// plane's generation: the initial push and the resync path of delta
// routing, after which subsequent deltas from that generation apply.
func (f *Frontend) SetTableGen(rt RoutingTable, gen uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.setTableLocked(rt, gen)
}

func (f *Frontend) setTableLocked(rt RoutingTable, gen uint64) error {
	if err := rt.Validate(); err != nil {
		return err
	}
	for _, routes := range rt {
		for _, r := range routes {
			if _, ok := f.backends[r.BackendID]; !ok {
				return fmt.Errorf("frontend: route to unknown backend %s", r.BackendID)
			}
		}
	}
	cur := f.state.Load()
	sessions := make(map[string]*sessionState, len(rt))
	for sid, routes := range rt {
		st := &sessionState{routes: f.resolve(routes), wrr: make([]float64, len(routes))}
		// Rate counts survive table pushes: the count is keyed by session,
		// not by its routes.
		if old, ok := cur.sessions[sid]; ok {
			st.count.Store(old.count.Load())
		} else if n, ok := f.residual[sid]; ok {
			st.count.Store(n)
			delete(f.residual, sid)
		}
		sessions[sid] = st
	}
	// Sessions dropped from the table keep their window counts.
	for sid, st := range cur.sessions {
		if _, ok := sessions[sid]; !ok {
			if n := st.count.Load(); n > 0 {
				f.residual[sid] += n
			}
		}
	}
	f.state.Store(&tableState{table: rt, sessions: sessions, gen: gen})
	f.tableVersion.Add(1)
	f.renewLeaseLocked()
	return nil
}

// ApplyDelta applies an incremental routing update on top of the current
// table. Sessions untouched by the delta keep their dispatch state —
// including the smooth-WRR accumulator, so an unchanged session's replica
// split is not perturbed by other sessions' route changes. Changed sessions
// get fresh state with their rate count carried over; removed sessions move
// their count to the residual window. A generation mismatch (missed push,
// or local route repair after a backend death) returns ErrStaleDelta
// without touching anything; the caller resyncs with SetTableGen.
func (f *Frontend) ApplyDelta(d TableDelta) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.state.Load()
	if cur.gen != d.FromGen {
		return fmt.Errorf("%w (have generation %d, delta from %d)", ErrStaleDelta, cur.gen, d.FromGen)
	}
	if err := RoutingTable(d.Set).Validate(); err != nil {
		return err
	}
	for _, routes := range d.Set {
		for _, r := range routes {
			if _, ok := f.backends[r.BackendID]; !ok {
				return fmt.Errorf("frontend: route to unknown backend %s", r.BackendID)
			}
		}
	}
	table := make(RoutingTable, len(cur.table)+len(d.Set))
	for sid, routes := range cur.table {
		table[sid] = routes
	}
	sessions := make(map[string]*sessionState, len(cur.sessions)+len(d.Set))
	for sid, st := range cur.sessions {
		sessions[sid] = st
	}
	for _, sid := range d.Remove {
		delete(table, sid)
		if st, ok := sessions[sid]; ok {
			if n := st.count.Load(); n > 0 {
				f.residual[sid] += n
			}
			delete(sessions, sid)
		}
	}
	for sid, routes := range d.Set {
		table[sid] = routes
		st := &sessionState{routes: f.resolve(routes), wrr: make([]float64, len(routes))}
		if old, ok := sessions[sid]; ok {
			st.count.Store(old.count.Load())
		} else if n, ok := f.residual[sid]; ok {
			st.count.Store(n)
			delete(f.residual, sid)
		}
		sessions[sid] = st
	}
	f.state.Store(&tableState{table: table, sessions: sessions, gen: d.Gen})
	f.tableVersion.Add(1)
	f.renewLeaseLocked()
	return nil
}

// Generation returns the control-plane generation of the routing state the
// frontend currently holds. Local route repairs bump it off the control
// plane's sequence, which is what makes the next delta detectably stale.
func (f *Frontend) Generation() uint64 { return f.state.Load().gen }

// resolve caches the backend pointer of each route. Callers have already
// validated that every target exists.
func (f *Frontend) resolve(routes []Route) []resolvedRoute {
	out := make([]resolvedRoute, len(routes))
	for i, r := range routes {
		out[i] = resolvedRoute{Route: r, be: f.backends[r.BackendID]}
	}
	return out
}

// Dispatch routes a request to a backend. Requests for sessions without a
// route are reported unroutable; token-bucket admission (when configured)
// sheds before routing with DropAdmission; an expired route lease either
// serves stale or stops routing.
//
// Dispatch is lock-free and safe for any number of concurrent callers:
// routing reads an atomic snapshot, counters are atomic, per-session WRR
// state is CAS-guarded, and the hand-off to the network hop goes through
// the ingress ring. Concurrent callers may not overlap with the clock
// goroutine executing events (the simulation clock is single-threaded);
// join dispatchers before running the clock, as live mode's pump tick
// does. With concurrent dispatchers, onDrop and the tracer must be
// concurrency-safe too.
func (f *Frontend) Dispatch(req workload.Request) {
	if f.admission != nil && !f.admit(req.Session) {
		f.admissionSheds.Add(1)
		f.drop(req, backend.DropAdmission)
		return
	}
	st, ok := f.state.Load().sessions[req.Session]
	if !ok || len(st.routes) == 0 {
		f.drop(req, backend.DropUnroutable)
		return
	}
	if f.leaseTTL > 0 && f.clock.Now()-time.Duration(f.lastPush.Load()) > f.leaseTTL {
		if !f.serveStale {
			// Lease expired and stale serving is off: the table can no
			// longer be trusted, so the request is unroutable.
			f.drop(req, backend.DropUnroutable)
			return
		}
		f.staleServed.Add(1)
	}
	var r resolvedRoute
	if f.breakers != nil {
		var ok bool
		if r, ok = f.pickAvoiding(st); !ok {
			// Every replica's breaker is open: fail fast instead of
			// burning a network hop on a known-bad target.
			f.drop(req, backend.DropFailure)
			return
		}
	} else {
		r = st.pick()
	}
	st.count.Add(1)
	f.dispatches.Add(1)
	if f.tracer != nil {
		f.tracer.Record(trace.Event{
			At: f.clock.Now(), Kind: trace.Route, ReqID: req.ID,
			Session: req.Session, Backend: r.BackendID, Unit: r.UnitID,
		})
	}
	f.enqueueHop(req, r)
}

// enqueueHop hands a picked request to the frontend→backend network hop
// through the lock-free ingress ring, then pumps. A full ring means the
// pump owner is behind; the pusher helps by pumping (or spinning until the
// owner frees a slot).
func (f *Frontend) enqueueHop(req workload.Request, r resolvedRoute) {
	pd := pendingDispatch{req: req, r: r, attempt: 1}
	for i := 0; !f.ingress.Push(pd); i++ {
		f.pump()
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
	f.pump()
}

// pump elects this goroutine (CAS on pumping) to drain the ingress ring
// into send, which schedules the delivery event on the simulation clock.
// Losing the election is fine — the winner drains everything published —
// but the loser re-checks after the owner releases the flag so an item
// pushed during the hand-off window is never stranded.
func (f *Frontend) pump() {
	for {
		if !f.pumping.CompareAndSwap(0, 1) {
			return
		}
		for {
			pd, ok := f.ingress.Pop()
			if !ok {
				break
			}
			f.send(pd.req, pd.r, pd.attempt)
		}
		f.pumping.Store(0)
		if f.ingress.Empty() {
			return
		}
	}
}

// send delivers req to route r after the network delay, classifying any
// enqueue failure. attempt is 1 on the first try; deliver consults the
// retry policy (backoff budget, or legacy retry-once) on failure.
func (f *Frontend) send(req workload.Request, r resolvedRoute, attempt int) {
	var p *pendingSend
	if n := len(f.sendPool); n > 0 {
		p = f.sendPool[n-1]
		f.sendPool = f.sendPool[:n-1]
		f.arenaHits.Add(1)
	} else {
		p = &pendingSend{f: f}
		p.fire = p.deliver
		f.arenaGrows.Add(1)
	}
	p.req, p.r, p.attempt = req, r, attempt
	f.clock.After(f.netDelay+f.extraDelay, p.fire)
}

// altRoute returns the session's first route to a reachable backend other
// than the one that just failed: alive, not behind a cut data link, and
// (when breakers are on) not breaker-open.
func (f *Frontend) altRoute(session, exclude string) (resolvedRoute, bool) {
	if st, ok := f.state.Load().sessions[session]; ok {
		for _, r := range st.routes {
			if r.BackendID == exclude {
				continue
			}
			if r.be == nil || !r.be.Alive() {
				continue
			}
			if f.linkDown != nil && f.linkDown[r.BackendID] {
				continue
			}
			if f.breakers != nil {
				if !f.routeAllowed(r.BackendID) {
					continue
				}
				f.markProbe(r.BackendID)
			}
			return r, true
		}
	}
	return resolvedRoute{}, false
}

func (f *Frontend) drop(req workload.Request, reason backend.Outcome) {
	if f.onDrop != nil {
		f.onDrop(req, reason)
	}
}

// RemoveBackend repairs the routing table after a backend is declared
// dead: every route to it is deleted. The table object may be shared with
// other frontend replicas (each receives its own repair call), so the
// repair is copy-on-write. Smooth-WRR weights are proportional, which
// redistributes the dead replica's share across the survivors of each
// session automatically; the session's WRR accumulator is reset so stale
// credit cannot skew the new split. Sessions whose last replica died
// become unroutable until the control plane re-plans. Returns the number
// of sessions whose routes changed. A repair advances the generation off
// the control plane's sequence, so the next routing delta is rejected and
// the control plane resyncs in full.
func (f *Frontend) RemoveBackend(beID string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.state.Load()
	affected := 0
	var repaired RoutingTable
	sessions := cur.sessions
	for sid, routes := range cur.table {
		keep := routes[:0:0]
		for _, r := range routes {
			if r.BackendID != beID {
				keep = append(keep, r)
			}
		}
		if len(keep) == len(routes) {
			continue
		}
		if repaired == nil {
			repaired = make(RoutingTable, len(cur.table))
			for s, rs := range cur.table {
				repaired[s] = rs
			}
			sessions = make(map[string]*sessionState, len(cur.sessions))
			for s, st := range cur.sessions {
				sessions[s] = st
			}
		}
		affected++
		st := sessions[sid]
		if len(keep) == 0 {
			delete(repaired, sid)
			if st != nil {
				if n := st.count.Load(); n > 0 {
					f.residual[sid] += n
				}
				delete(sessions, sid)
			}
		} else {
			repaired[sid] = keep
			fresh := &sessionState{routes: f.resolve(keep), wrr: make([]float64, len(keep))}
			if st != nil {
				fresh.count.Store(st.count.Load())
			}
			sessions[sid] = fresh
		}
	}
	if repaired != nil {
		f.state.Store(&tableState{table: repaired, sessions: sessions, gen: cur.gen + 1})
		f.tableVersion.Add(1)
	}
	return affected
}

// TableVersion returns how many times the routing table has changed
// (control-plane pushes plus failure repairs).
func (f *Frontend) TableVersion() uint64 { return f.tableVersion.Load() }

// Dispatches returns how many requests this frontend has routed (excludes
// unroutable admission drops, which never reached a backend).
func (f *Frontend) Dispatches() uint64 { return f.dispatches.Load() }

// Retries returns how many dispatches took the retry-once path after
// hitting a dead backend or a reconfiguration race.
func (f *Frontend) Retries() uint64 { return f.retries.Load() }

// IngressDepth approximates the ingress ring's current occupancy, for
// self-observability gauges. Racy by nature; see ring.MPSC.Len.
func (f *Frontend) IngressDepth() int { return f.ingress.Len() }

// IngressCap returns the ingress ring's capacity.
func (f *Frontend) IngressCap() int { return f.ingress.Cap() }

// ArenaStats returns the send-arena reuse counters: pool hits (recycled
// send state) and grows (fresh allocations after the arena ran dry).
func (f *Frontend) ArenaStats() (hits, grows uint64) {
	return f.arenaHits.Load(), f.arenaGrows.Load()
}

// pick implements smooth weighted round-robin, which spreads a session's
// requests across its replicas proportionally and deterministically. The
// accumulator scan runs under the session's CAS guard so concurrent
// dispatchers of one session stay correct; the pick sequence itself is
// unchanged from the unguarded version.
func (st *sessionState) pick() resolvedRoute {
	st.lock()
	state := st.wrr
	var total float64
	best := 0
	for i := range st.routes {
		w := st.routes[i].Weight
		state[i] += w
		total += w
		if state[i] > state[best] {
			best = i
		}
	}
	state[best] -= total
	r := st.routes[best]
	st.unlock()
	return r
}

// ObservedRates returns each session's request rate (req/s) since the last
// call, then resets the window. This feeds epoch scheduling ("load
// statistics from the runtime", §5).
func (f *Frontend) ObservedRates() map[string]float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.state.Load()
	elapsed := (f.clock.Now() - f.windowFrom).Seconds()
	rates := make(map[string]float64, len(cur.sessions)+len(f.residual))
	for sid, st := range cur.sessions {
		if n := st.count.Swap(0); n > 0 && elapsed > 0 {
			rates[sid] = float64(n) / elapsed
		}
	}
	if elapsed > 0 {
		for sid, n := range f.residual {
			rates[sid] = float64(n) / elapsed
		}
	}
	f.residual = make(map[string]uint64)
	f.windowFrom = f.clock.Now()
	return rates
}

// Sessions returns the sessions currently routable, sorted.
func (f *Frontend) Sessions() []string {
	table := f.state.Load().table
	out := make([]string, 0, len(table))
	for sid := range table {
		out = append(out, sid)
	}
	sort.Strings(out)
	return out
}

// TableSnapshot returns a deep copy of the current routing table, for
// tests and tools that compare routing state across runs.
func (f *Frontend) TableSnapshot() RoutingTable {
	table := f.state.Load().table
	out := make(RoutingTable, len(table))
	for sid, routes := range table {
		out[sid] = append([]Route(nil), routes...)
	}
	return out
}
