package frontend

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nexus/internal/backend"
	"nexus/internal/simclock"
	"nexus/internal/workload"
)

// dropSetup is setup plus a per-reason drop tally.
func dropSetup(t *testing.T, nBackends int) (clock *simclock.Clock, backends map[string]*backend.Backend, fe *Frontend, drops map[backend.Outcome]int) {
	t.Helper()
	c, bes, _, _ := setup(t, nBackends)
	drops = make(map[backend.Outcome]int)
	fe = New(c, bes, 0, func(req workload.Request, reason backend.Outcome) { drops[reason]++ })
	return c, bes, fe, drops
}

func TestRouteLeaseExpiryDropsWithoutServeStale(t *testing.T) {
	clock, _, fe, drops := dropSetup(t, 1)
	fe.EnableRouteLease(5*time.Second, false)
	if err := fe.SetTable(RoutingTable{"s": {{BackendID: "a", UnitID: "u", Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	fe.Dispatch(workload.Request{Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	clock.RunUntil(10 * time.Second) // lease (refreshed at the push) expires
	if fe.RouteStaleness() < 9*time.Second || !fe.LeaseExpired() {
		t.Fatalf("staleness = %v, expired = %v", fe.RouteStaleness(), fe.LeaseExpired())
	}
	fe.Dispatch(workload.Request{Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	clock.Run()
	if drops[backend.DropUnroutable] != 1 {
		t.Fatalf("unroutable drops = %d, want 1 (only the post-expiry dispatch)", drops[backend.DropUnroutable])
	}
	if fe.StaleServed() != 0 {
		t.Fatalf("staleServed = %d with serve-stale off", fe.StaleServed())
	}
}

func TestRouteLeaseServeStaleCountsAndRenews(t *testing.T) {
	clock, _, fe, drops := dropSetup(t, 1)
	fe.EnableRouteLease(5*time.Second, true)
	if err := fe.SetTable(RoutingTable{"s": {{BackendID: "a", UnitID: "u", Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(10 * time.Second)
	fe.Dispatch(workload.Request{Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	if fe.StaleServed() != 1 {
		t.Fatalf("staleServed = %d, want 1", fe.StaleServed())
	}
	fe.RenewRouteLease()
	if fe.LeaseExpired() || fe.RouteStaleness() != 0 {
		t.Fatalf("lease not renewed: staleness = %v", fe.RouteStaleness())
	}
	fe.Dispatch(workload.Request{Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	clock.Run()
	if fe.StaleServed() != 1 {
		t.Fatalf("staleServed = %d after renewal, want still 1", fe.StaleServed())
	}
	if drops[backend.DropUnroutable] != 0 {
		t.Fatalf("unroutable drops = %d with serve-stale on", drops[backend.DropUnroutable])
	}
}

func TestBreakerOpensAndRoutesAround(t *testing.T) {
	clock, backends, fe, drops := dropSetup(t, 2)
	fe.EnableBreakers(2, time.Hour)
	fe.EnableBackoffRetry(2, time.Millisecond)
	var transitions []string
	fe.SetBreakerObserver(func(at time.Duration, beID, from, to string) {
		transitions = append(transitions, beID+":"+from+"->"+to)
	})
	if err := fe.SetTable(RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 1},
		{BackendID: "b", UnitID: "u", Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	backends["a"].Fail()
	for i := 0; i < 10; i++ {
		fe.Dispatch(workload.Request{ID: uint64(i), Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
		clock.RunUntil(clock.Now() + 100*time.Millisecond)
	}
	clock.Run()
	if drops[backend.DropFailure] != 0 {
		t.Fatalf("failure drops = %d, want retries + breaker to save every request", drops[backend.DropFailure])
	}
	if fe.OpenBreakers() != 1 {
		t.Fatalf("open breakers = %d, want 1 (backend a)", fe.OpenBreakers())
	}
	if len(transitions) != 1 || transitions[0] != "a:closed->open" {
		t.Fatalf("transitions = %v, want exactly one open on a", transitions)
	}
	// With a's breaker open, new dispatches never touch it: exactly as many
	// retries as it took to open the breaker (threshold = 2).
	if fe.Retries() != 2 {
		t.Fatalf("retries = %d, want 2 (one per pre-open failure)", fe.Retries())
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	clock, backends, fe, _ := dropSetup(t, 2)
	fe.EnableBreakers(1, 5*time.Second)
	fe.EnableBackoffRetry(2, time.Millisecond)
	if err := fe.SetTable(RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 1},
		{BackendID: "b", UnitID: "u", Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	backends["a"].Fail()
	fe.Dispatch(workload.Request{Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	clock.RunUntil(2 * time.Second)
	if fe.OpenBreakers() != 1 {
		t.Fatalf("open breakers = %d, want 1", fe.OpenBreakers())
	}
	backends["a"].Restart()
	// A restarted node comes back empty; give it its unit back, as the
	// control plane's repair would.
	if err := backends["a"].Configure([]backend.Unit{{ID: "u", Profile: testProfile(), TargetBatch: 8}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(10 * time.Second) // past cooloff: next pick may probe
	for i := 0; i < 4; i++ {
		fe.Dispatch(workload.Request{ID: uint64(i + 1), Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
		clock.RunUntil(clock.Now() + 100*time.Millisecond)
	}
	clock.Run()
	if fe.OpenBreakers() != 0 {
		t.Fatalf("open breakers = %d after successful probe, want 0", fe.OpenBreakers())
	}
	// closed->open, open->half-open, half-open->closed.
	if fe.BreakerTransitions() != 3 {
		t.Fatalf("transitions = %d, want 3", fe.BreakerTransitions())
	}
}

func TestBackoffRetryBudgetExhausts(t *testing.T) {
	clock, backends, fe, drops := dropSetup(t, 2)
	fe.EnableBackoffRetry(3, time.Millisecond)
	if err := fe.SetTable(RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 1},
		{BackendID: "b", UnitID: "u", Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	backends["a"].Fail()
	backends["b"].Fail()
	fe.Dispatch(workload.Request{Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	clock.Run()
	// Both replicas dead: altRoute finds nothing alive, so the request
	// drops without burning the budget on known-dead targets.
	if drops[backend.DropFailure] != 1 {
		t.Fatalf("failure drops = %d, want 1", drops[backend.DropFailure])
	}
}

func TestBackoffRetrySavesAfterTransientFailures(t *testing.T) {
	clock, backends, fe, drops := dropSetup(t, 3)
	fe.EnableBackoffRetry(3, time.Millisecond)
	if err := fe.SetTable(RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 1},
		{BackendID: "b", UnitID: "u", Weight: 1},
		{BackendID: "c", UnitID: "u", Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	backends["a"].Fail()
	backends["b"].Fail()
	for i := 0; i < 9; i++ {
		fe.Dispatch(workload.Request{ID: uint64(i), Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	clock.Run()
	if total := drops[backend.DropFailure] + drops[backend.DropReconfig]; total != 0 {
		t.Fatalf("drops = %d, want the budget to save every request via c", total)
	}
	if fe.Retries() == 0 {
		t.Fatal("no retries recorded despite two dead replicas")
	}
}

func TestLinkDownFailsDispatchAndRetryReroutes(t *testing.T) {
	clock, backends, fe, drops := dropSetup(t, 2)
	fe.EnableBackoffRetry(2, time.Millisecond)
	if err := fe.SetTable(RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 1},
		{BackendID: "b", UnitID: "u", Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	if !fe.SetLinkDown("a", true) {
		t.Fatal("SetLinkDown reported no change")
	}
	if fe.SetLinkDown("a", true) {
		t.Fatal("repeated SetLinkDown reported a change")
	}
	for i := 0; i < 4; i++ {
		fe.Dispatch(workload.Request{ID: uint64(i), Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	clock.Run()
	// a is alive but unreachable: dispatches to it fail and must reroute
	// to b (altRoute skips the cut link), so nothing drops.
	if drops[backend.DropFailure] != 0 {
		t.Fatalf("failure drops = %d, want 0", drops[backend.DropFailure])
	}
	if backends["a"].Device().BusyTime() != 0 {
		t.Fatal("partitioned backend executed work")
	}
	if !fe.SetLinkDown("a", false) {
		t.Fatal("heal reported no change")
	}
}

func TestAdmissionShedsLowPriorityFirst(t *testing.T) {
	clock, _, fe, drops := dropSetup(t, 1)
	if err := fe.SetTable(RoutingTable{
		"hi": {{BackendID: "a", UnitID: "u", Weight: 1}},
		"lo": {{BackendID: "a", UnitID: "u", Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	fe.SetAdmission("hi", AdmissionConfig{Rate: 10, Burst: 5, Priority: 1})
	fe.SetAdmission("lo", AdmissionConfig{Rate: 10, Burst: 5, Priority: 0})
	fe.SetAdmissionReserve(5, 10)
	// Burst of 12 to each session in the same instant: lo admits its 5
	// bucketed requests and sheds 7; hi admits 5 + up to 10 from reserve.
	for i := 0; i < 12; i++ {
		fe.Dispatch(workload.Request{ID: uint64(i), Session: "lo", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	loSheds := fe.AdmissionSheds()
	for i := 0; i < 12; i++ {
		fe.Dispatch(workload.Request{ID: uint64(100 + i), Session: "hi", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	clock.Run()
	if loSheds != 7 {
		t.Fatalf("lo sheds = %d, want 7", loSheds)
	}
	if hiSheds := fe.AdmissionSheds() - loSheds; hiSheds != 0 {
		t.Fatalf("hi sheds = %d, want 0 (reserve absorbs its burst)", hiSheds)
	}
	if drops[backend.DropAdmission] != 7 {
		t.Fatalf("DropAdmission = %d, want 7", drops[backend.DropAdmission])
	}
}

func TestAdmissionRefillsByVirtualTime(t *testing.T) {
	clock, _, fe, drops := dropSetup(t, 1)
	if err := fe.SetTable(RoutingTable{"s": {{BackendID: "a", UnitID: "u", Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	fe.SetAdmission("s", AdmissionConfig{Rate: 2, Burst: 1})
	fe.Dispatch(workload.Request{Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour}) // drains the bucket
	fe.Dispatch(workload.Request{ID: 1, Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	if drops[backend.DropAdmission] != 1 {
		t.Fatalf("immediate second dispatch: sheds = %d, want 1", drops[backend.DropAdmission])
	}
	clock.RunUntil(2 * time.Second) // 1s at 2 tokens/s refills past 1
	fe.Dispatch(workload.Request{ID: 2, Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	clock.Run()
	if drops[backend.DropAdmission] != 1 {
		t.Fatalf("post-refill dispatch shed: sheds = %d, want still 1", drops[backend.DropAdmission])
	}
}

// TestConcurrentApplyDeltaDuringBackoffRetry drives the clock (delivering
// backoff retries) on one goroutine while the control plane churns deltas
// on another: retries read immutable snapshots while ApplyDelta swaps them
// in. Meaningful under -race. The delta stream keeps a route to the only
// live backend at all times, so every retried request must survive.
func TestConcurrentApplyDeltaDuringBackoffRetry(t *testing.T) {
	clock, backends, fe, drops := dropSetup(t, 3)
	fe.EnableBackoffRetry(4, time.Millisecond)
	rt := RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 1},
		{BackendID: "b", UnitID: "u", Weight: 1},
		{BackendID: "c", UnitID: "u", Weight: 1},
	}}
	if err := fe.SetTableGen(rt, 1); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	backends["a"].Fail()
	backends["b"].Fail()
	const n = 2000
	for i := 0; i < n; i++ {
		fe.Dispatch(workload.Request{ID: uint64(i), Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := uint64(1)
		for i := 0; i < 500; i++ {
			w := float64(1 + i%3)
			d := TableDelta{
				FromGen: gen, Gen: gen + 1,
				Set: map[string][]Route{"s": {
					{BackendID: "b", UnitID: "u", Weight: 1},
					{BackendID: "c", UnitID: "u", Weight: w},
				}},
			}
			if err := fe.ApplyDelta(d); err != nil {
				t.Error(err)
				return
			}
			gen++
		}
	}()
	clock.Run() // backoff retries fire while deltas swap tables
	wg.Wait()
	clock.Run() // drain retries scheduled near the end
	if got := drops[backend.DropFailure] + drops[backend.DropReconfig]; got != 0 {
		t.Fatalf("drops = %d, want every request retried onto the live backend", got)
	}
	if backends["c"].Device().BusyTime() == 0 {
		t.Fatal("live backend saw no work")
	}
}

// TestBreakerOpenSurvivesStaleDeltaResync pins the ordering between local
// breaker knowledge and control-plane resyncs: a local RemoveBackend
// repair bumps the generation, the next delta is rejected ErrStaleDelta,
// and the full SetTableGen resync — which may reinstall routes to the
// still-dead backend — must not reset the open breaker. Run under -race:
// the resync happens on another goroutine while the clock delivers.
func TestBreakerOpenSurvivesStaleDeltaResync(t *testing.T) {
	clock, backends, fe, drops := dropSetup(t, 2)
	fe.EnableBreakers(1, time.Hour)
	fe.EnableBackoffRetry(2, time.Millisecond)
	rt := RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 1},
		{BackendID: "b", UnitID: "u", Weight: 1},
	}}
	if err := fe.SetTableGen(rt, 1); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	backends["a"].Fail()
	// One failed dispatch opens a's breaker (threshold 1).
	fe.Dispatch(workload.Request{Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	clock.RunUntil(2 * time.Second)
	if fe.OpenBreakers() != 1 {
		t.Fatalf("open breakers = %d, want 1", fe.OpenBreakers())
	}
	// Local repair: routes to a removed, generation bumped off the
	// control plane's sequence.
	fe.RemoveBackend("a")
	staleGen := uint64(1)
	for i := 0; i < 50; i++ {
		fe.Dispatch(workload.Request{ID: uint64(i + 1), Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The control plane, unaware of the repair, pushes a delta built
		// on the pre-repair generation: it must be rejected stale.
		d := TableDelta{
			FromGen: staleGen, Gen: staleGen + 1,
			Set: map[string][]Route{"s": {{BackendID: "a", UnitID: "u", Weight: 1}}},
		}
		if err := fe.ApplyDelta(d); !errors.Is(err, ErrStaleDelta) {
			t.Errorf("ApplyDelta after local repair = %v, want ErrStaleDelta", err)
			return
		}
		// Full resync reinstalls routes to the still-dead a.
		if err := fe.SetTableGen(rt, 10); err != nil {
			t.Error(err)
		}
	}()
	clock.Run()
	wg.Wait()
	if fe.Generation() != 10 {
		t.Fatalf("generation = %d, want 10 after resync", fe.Generation())
	}
	if fe.OpenBreakers() != 1 {
		t.Fatalf("open breakers after resync = %d, want a's breaker to survive", fe.OpenBreakers())
	}
	// Post-resync traffic must still route around a via its open breaker.
	for i := 0; i < 20; i++ {
		fe.Dispatch(workload.Request{ID: uint64(100 + i), Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	clock.Run()
	if drops[backend.DropFailure] != 0 {
		t.Fatalf("failure drops = %d, want 0 (breaker routes around dead a)", drops[backend.DropFailure])
	}
}
