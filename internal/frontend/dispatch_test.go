package frontend

import (
	"testing"
	"time"

	"nexus/internal/workload"
)

func TestDispatchAfterTableSwap(t *testing.T) {
	clock, backends, fe, unroutable := setup(t, 2)
	if err := fe.SetTable(RoutingTable{"s": {{BackendID: "a", UnitID: "u", Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	fe.Dispatch(workload.Request{ID: 1, Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	// Swap the table to backend b; subsequent requests go there.
	if err := fe.SetTable(RoutingTable{"s": {{BackendID: "b", UnitID: "u", Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	fe.Dispatch(workload.Request{ID: 2, Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	clock.Run()
	if backends["a"].Device().BusyTime() == 0 || backends["b"].Device().BusyTime() == 0 {
		t.Fatal("both backends should have served one request across the swap")
	}
	if *unroutable != 0 {
		t.Fatalf("unroutable = %d", *unroutable)
	}
}

func TestDispatchToRemovedUnitCountsReconfigDrop(t *testing.T) {
	clock, backends, fe, dropped := setup(t, 1)
	if err := fe.SetTable(RoutingTable{"s": {{BackendID: "a", UnitID: "u", Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	// Remove the unit between routing and enqueue: the in-flight dispatch
	// must surface as a reconfiguration drop rather than vanish. (With no
	// surviving replica, even the retry path has nowhere to send it.)
	if err := backends["a"].Configure(nil); err != nil {
		t.Fatal(err)
	}
	fe.Dispatch(workload.Request{ID: 1, Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	clock.Run()
	if *dropped != 1 {
		t.Fatalf("dropped = %d, want 1", *dropped)
	}
}

func TestObservedRatesMultipleSessions(t *testing.T) {
	clock, _, fe, _ := setup(t, 1)
	if err := fe.SetTable(RoutingTable{
		"x": {{BackendID: "a", UnitID: "u", Weight: 1}},
		"y": {{BackendID: "a", UnitID: "u", Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	fe.ObservedRates()
	for i := 0; i < 20; i++ {
		fe.Dispatch(workload.Request{ID: uint64(i), Session: "x", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	for i := 0; i < 10; i++ {
		fe.Dispatch(workload.Request{ID: uint64(100 + i), Session: "y", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	clock.RunUntil(clock.Now() + 2*time.Second)
	rates := fe.ObservedRates()
	if rates["x"] != 10 || rates["y"] != 5 {
		t.Fatalf("rates = %v, want x:10 y:5", rates)
	}
}

func TestNegativeNetDelayUsesDefault(t *testing.T) {
	_, _, _, _ = setup(t, 1) // ensure helpers compile
	fe := New(nil, nil, -1, nil)
	if fe.NetDelay() != DefaultNetDelay {
		t.Fatalf("NetDelay = %v, want default", fe.NetDelay())
	}
}
