package frontend

import (
	"math"
	"testing"
	"time"

	"nexus/internal/backend"
	"nexus/internal/gpusim"
	"nexus/internal/profiler"
	"nexus/internal/simclock"
	"nexus/internal/workload"
)

func testProfile() *profiler.Profile {
	return &profiler.Profile{
		ModelID: "m", GPU: profiler.GTX1080Ti,
		Alpha: time.Millisecond, Beta: 5 * time.Millisecond, MaxBatch: 32,
		MemBase: 1 << 28, MemPerItem: 1 << 20,
	}
}

func setup(t *testing.T, nBackends int) (*simclock.Clock, map[string]*backend.Backend, *Frontend, *int) {
	t.Helper()
	clock := simclock.New()
	backends := make(map[string]*backend.Backend)
	for i := 0; i < nBackends; i++ {
		id := string(rune('a' + i))
		dev := gpusim.New(clock, "gpu-"+id, profiler.GTX1080Ti, gpusim.Exclusive)
		be := backend.New(id, clock, dev, backend.Config{Overlap: true}, nil)
		if err := be.Configure([]backend.Unit{{ID: "u", Profile: testProfile(), TargetBatch: 8}}); err != nil {
			t.Fatal(err)
		}
		backends[id] = be
	}
	dropped := 0
	fe := New(clock, backends, 0, func(req workload.Request, reason backend.Outcome) { dropped++ })
	return clock, backends, fe, &dropped
}

func TestRoutingTableValidate(t *testing.T) {
	bad := []RoutingTable{
		{"s": {}},
		{"s": {{BackendID: "a", UnitID: "u", Weight: 0}}},
		{"s": {{BackendID: "", UnitID: "u", Weight: 1}}},
		{"s": {{BackendID: "a", UnitID: "", Weight: 1}}},
	}
	for i, rt := range bad {
		if rt.Validate() == nil {
			t.Errorf("case %d: invalid table accepted", i)
		}
	}
	good := RoutingTable{"s": {{BackendID: "a", UnitID: "u", Weight: 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetTableUnknownBackend(t *testing.T) {
	_, _, fe, _ := setup(t, 1)
	rt := RoutingTable{"s": {{BackendID: "zz", UnitID: "u", Weight: 1}}}
	if err := fe.SetTable(rt); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestDispatchUnroutable(t *testing.T) {
	clock, _, fe, unroutable := setup(t, 1)
	fe.Dispatch(workload.Request{Session: "ghost", Deadline: time.Second})
	clock.Run()
	if *unroutable != 1 {
		t.Fatalf("unroutable = %d, want 1", *unroutable)
	}
}

func TestDispatchReachesBackend(t *testing.T) {
	clock, backends, fe, _ := setup(t, 1)
	if err := fe.SetTable(RoutingTable{"s": {{BackendID: "a", UnitID: "u", Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second) // let the model load
	fe.Dispatch(workload.Request{Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	clock.Run()
	if backends["a"].AvgBatchSize() == 0 {
		t.Fatal("request never executed on backend")
	}
}

func TestWeightedSpread(t *testing.T) {
	clock, backends, fe, _ := setup(t, 2)
	if err := fe.SetTable(RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 3},
		{BackendID: "b", UnitID: "u", Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	for i := 0; i < 400; i++ {
		fe.Dispatch(workload.Request{ID: uint64(i), Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	clock.Run()
	// The weight-3 backend should do roughly 3x the GPU work.
	busyA := backends["a"].Device().BusyTime()
	busyB := backends["b"].Device().BusyTime()
	if busyA <= busyB {
		t.Fatalf("weight-3 backend busy %v <= weight-1 backend busy %v", busyA, busyB)
	}
}

func TestSmoothWRRExactProportions(t *testing.T) {
	_, _, fe, _ := setup(t, 2)
	if err := fe.SetTable(RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 3},
		{BackendID: "b", UnitID: "u", Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		r := fe.state.Load().sessions["s"].pick()
		counts[r.BackendID]++
	}
	if counts["a"] != 300 || counts["b"] != 100 {
		t.Fatalf("WRR counts = %v, want a:300 b:100", counts)
	}
}

func TestObservedRates(t *testing.T) {
	clock, _, fe, _ := setup(t, 1)
	if err := fe.SetTable(RoutingTable{"s": {{BackendID: "a", UnitID: "u", Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	fe.ObservedRates() // reset window
	for i := 0; i < 50; i++ {
		fe.Dispatch(workload.Request{ID: uint64(i), Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	clock.RunUntil(clock.Now() + 5*time.Second)
	rates := fe.ObservedRates()
	if math.Abs(rates["s"]-10) > 0.5 {
		t.Fatalf("observed rate %v, want ~10 r/s", rates["s"])
	}
	// Window reset: immediately asking again gives empty.
	clock.RunUntil(clock.Now() + time.Second)
	rates = fe.ObservedRates()
	if rates["s"] != 0 {
		t.Fatalf("rate after reset = %v, want 0", rates["s"])
	}
}

func TestSessions(t *testing.T) {
	_, _, fe, _ := setup(t, 1)
	if err := fe.SetTable(RoutingTable{
		"s2": {{BackendID: "a", UnitID: "u", Weight: 1}},
		"s1": {{BackendID: "a", UnitID: "u", Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	got := fe.Sessions()
	if len(got) != 2 || got[0] != "s1" || got[1] != "s2" {
		t.Fatalf("Sessions = %v", got)
	}
}
