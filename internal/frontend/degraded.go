// Degraded-mode survival layer: routing-table leases, per-backend circuit
// breakers with an exponential-backoff retry budget, priority-aware
// token-bucket admission control, and data-link partition awareness. Every
// feature is opt-in and nil/zero when off, so a deployment that never
// enables it runs the exact same instruction stream as before (goldens
// stay byte-identical).
//
// Threading: the pieces Dispatch touches (lease stamp, breaker state,
// admission buckets, shed/stale counters) are atomic or CAS-guarded, so
// they stay correct under concurrent dispatchers on the lock-free path.
// Configuration (EnableBreakers, SetAdmission, SetLinkDown, ...) and the
// delivery-side outcome hooks still run on the simulation-clock goroutine.
package frontend

import (
	"runtime"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------
// Routing-table leases.

// EnableRouteLease arms a TTL on the routing table: if no control-plane
// push (full table, delta, or explicit renewal) lands within ttl, the
// table is stale. With serveStale the frontend keeps routing on the stale
// table and counts every such dispatch; without it, stale dispatches are
// dropped unroutable — the "lease-expiry-without-repair" posture that
// collapses under a scheduler outage.
func (f *Frontend) EnableRouteLease(ttl time.Duration, serveStale bool) {
	f.leaseTTL = ttl
	f.serveStale = serveStale
	f.lastPush.Store(int64(f.clock.Now()))
}

// RenewRouteLease marks the routing table fresh without changing it: the
// control plane calls it on epochs whose delta was empty, so an idle but
// healthy scheduler keeps the lease alive.
func (f *Frontend) RenewRouteLease() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.renewLeaseLocked()
}

// renewLeaseLocked stamps the lease under mu. The clock read is guarded by
// the feature flag: with leases off nothing reads the clock here, and with
// them on every push site runs on the clock goroutine.
func (f *Frontend) renewLeaseLocked() {
	if f.leaseTTL > 0 {
		f.lastPush.Store(int64(f.clock.Now()))
	}
}

// RouteStaleness returns the age of the routing table: time since the last
// control-plane push or renewal (0 when leases are off).
func (f *Frontend) RouteStaleness() time.Duration {
	if f.leaseTTL <= 0 {
		return 0
	}
	return f.clock.Now() - time.Duration(f.lastPush.Load())
}

// LeaseExpired reports whether the routing table has outlived its TTL.
func (f *Frontend) LeaseExpired() bool {
	return f.leaseTTL > 0 && f.RouteStaleness() > f.leaseTTL
}

// StaleServed returns how many requests were routed on an expired lease.
func (f *Frontend) StaleServed() uint64 { return f.staleServed.Load() }

// ---------------------------------------------------------------------
// Per-backend circuit breakers.

// Breaker states. A breaker is created closed on a backend's first
// failure; threshold consecutive failures open it; after cooloff one probe
// is let through half-open, and its outcome closes or re-opens it.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateName names a breaker state for observers and telemetry.
func breakerStateName(s int32) string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is one backend's circuit state. All fields are atomic: the
// pick side (routeAllowed/markProbe, any dispatcher goroutine) races with
// the delivery side (breakerFailure/breakerSuccess, clock goroutine), and
// state changes go through CAS so each transition happens exactly once.
type breaker struct {
	state atomic.Int32
	fails atomic.Int32 // consecutive failures while closed
	until atomic.Int64 // virtual time an open breaker may probe (ns)
}

// BreakerObserver sees every breaker state transition, for the chaos
// timeline (audit plane).
type BreakerObserver func(at time.Duration, backendID, from, to string)

// EnableBreakers arms per-backend circuit breakers: threshold consecutive
// dispatch failures open a backend's breaker, routing around it until a
// half-open probe succeeds after cooloff. The breaker map is populated for
// every known backend up front and never mutated again, so the lock-free
// dispatch path reads it without coordination.
func (f *Frontend) EnableBreakers(threshold int, cooloff time.Duration) {
	if threshold < 1 {
		threshold = 1
	}
	f.breakers = make(map[string]*breaker, len(f.backends))
	for beID := range f.backends {
		f.breakers[beID] = &breaker{}
	}
	f.breakerThreshold = int32(threshold)
	f.breakerCooloff = cooloff
}

// SetBreakerObserver attaches a transition observer; nil detaches it.
func (f *Frontend) SetBreakerObserver(obs BreakerObserver) { f.onBreaker = obs }

// transition moves a breaker from one state to another with a CAS,
// counting and observing it. It reports whether this caller won the
// transition (racing dispatchers resolve to exactly one winner).
func (f *Frontend) transition(beID string, b *breaker, from, to int32) bool {
	if from == to || !b.state.CompareAndSwap(from, to) {
		return false
	}
	f.breakerTransitions.Add(1)
	if f.onBreaker != nil {
		f.onBreaker(f.clock.Now(), beID, breakerStateName(from), breakerStateName(to))
	}
	return true
}

// breakerFailure records a dispatch failure against a backend (delivery
// side, clock goroutine).
func (f *Frontend) breakerFailure(beID string) {
	b, ok := f.breakers[beID]
	if !ok {
		return
	}
	switch b.state.Load() {
	case breakerHalfOpen:
		// The probe failed: straight back to open for another cooloff.
		b.until.Store(int64(f.clock.Now() + f.breakerCooloff))
		f.transition(beID, b, breakerHalfOpen, breakerOpen)
	case breakerClosed:
		if b.fails.Add(1) >= f.breakerThreshold {
			b.until.Store(int64(f.clock.Now() + f.breakerCooloff))
			f.transition(beID, b, breakerClosed, breakerOpen)
		}
	}
}

// breakerSuccess records a successful enqueue on a backend (delivery side,
// clock goroutine).
func (f *Frontend) breakerSuccess(beID string) {
	b, ok := f.breakers[beID]
	if !ok {
		return
	}
	b.fails.Store(0)
	switch s := b.state.Load(); s {
	case breakerOpen, breakerHalfOpen:
		f.transition(beID, b, s, breakerClosed)
	}
}

// routeAllowed reports whether a backend may receive traffic right now:
// breaker closed, or open but past its cooloff (eligible for a probe).
// Half-open means a probe is already in flight, so keep avoiding it.
func (f *Frontend) routeAllowed(beID string) bool {
	b, ok := f.breakers[beID]
	if !ok {
		return true
	}
	switch b.state.Load() {
	case breakerClosed:
		return true
	case breakerOpen:
		return f.clock.Now() >= time.Duration(b.until.Load())
	default: // half-open
		return false
	}
}

// markProbe flips a cooled-off open breaker to half-open when its backend
// is actually picked — not merely considered — so exactly one probe is in
// flight and a pick that lands elsewhere doesn't wedge the breaker. The
// open→half-open CAS means racing dispatchers send exactly one probe's
// worth of transitions.
func (f *Frontend) markProbe(beID string) {
	if b, ok := f.breakers[beID]; ok && b.state.Load() == breakerOpen &&
		f.clock.Now() >= time.Duration(b.until.Load()) {
		f.transition(beID, b, breakerOpen, breakerHalfOpen)
	}
}

// pickAvoiding is smooth weighted round-robin restricted to routes whose
// breakers admit traffic. A cut data link is deliberately NOT consulted
// here: the frontend has no oracle for link state and must discover a
// partition the way a real one does — failed dispatches trip the breaker,
// which then routes around the backend. Skipped routes neither accumulate
// credit nor count in the rotation total, so a recovered replica rejoins
// without a burst of banked credit. Returns false when no replica is
// currently allowed.
func (f *Frontend) pickAvoiding(st *sessionState) (resolvedRoute, bool) {
	st.lock()
	defer st.unlock()
	state := st.wrr
	var total float64
	best := -1
	for i := range st.routes {
		beID := st.routes[i].BackendID
		if !f.routeAllowed(beID) {
			continue
		}
		w := st.routes[i].Weight
		state[i] += w
		total += w
		if best < 0 || state[i] > state[best] {
			best = i
		}
	}
	if best < 0 {
		return resolvedRoute{}, false
	}
	state[best] -= total
	f.markProbe(st.routes[best].BackendID)
	return st.routes[best], true
}

// BreakerTransitions returns the lifetime count of breaker state changes.
func (f *Frontend) BreakerTransitions() uint64 { return f.breakerTransitions.Load() }

// OpenBreakers returns how many backends are currently open or half-open
// (i.e. being routed around).
func (f *Frontend) OpenBreakers() int {
	n := 0
	for _, b := range f.breakers {
		if b.state.Load() != breakerClosed {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------
// Retry budget.

// EnableBackoffRetry replaces the retry-once path with an exponential-
// backoff budget: a failed dispatch is re-sent to a surviving replica up
// to budget times, waiting base<<(attempt-1) before each re-send, as long
// as the request's deadline still has room for the wait plus a network
// hop.
func (f *Frontend) EnableBackoffRetry(budget int, base time.Duration) {
	if budget < 0 {
		budget = 0
	}
	f.retryBudget = budget
	f.retryBase = base
}

// ---------------------------------------------------------------------
// Data-link partitions.

// SetLinkDown severs (down=true) or heals the frontend<->backend data
// link to one backend: dispatches to it fail as if the node were dead,
// while the scheduler — whose control link is separate — still sees its
// heartbeats. Reports whether the link state changed.
func (f *Frontend) SetLinkDown(beID string, down bool) bool {
	if f.linkDown == nil {
		if !down {
			return false
		}
		f.linkDown = make(map[string]bool)
	}
	if f.linkDown[beID] == down {
		return false
	}
	if down {
		f.linkDown[beID] = true
	} else {
		delete(f.linkDown, beID)
	}
	return true
}

// ---------------------------------------------------------------------
// Priority-aware admission control.

// AdmissionConfig is one session's token-bucket admission policy. Rate is
// the sustained admit rate (req/s) and Burst the bucket depth; Priority
// > 0 entitles the session to draw from the shared reserve (see
// SetAdmissionReserve) when its own bucket is empty, so overload sheds
// the lowest-value sessions first.
type AdmissionConfig struct {
	Rate     float64
	Burst    float64
	Priority int
}

// tokenBucket refills by elapsed virtual time, which keeps admission
// decisions deterministic: same arrival sequence, same sheds. The spin
// guard shards admission contention per session the same way sessionState
// does for WRR: concurrent dispatchers for different sessions never touch
// the same bucket, and same-session races serialize on two atomic ops.
type tokenBucket struct {
	rate     float64
	burst    float64
	tokens   float64
	last     time.Duration
	priority int
	spin     atomic.Uint32
}

func (tb *tokenBucket) lock() {
	for i := 0; !tb.spin.CompareAndSwap(0, 1); i++ {
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}

func (tb *tokenBucket) unlock() { tb.spin.Store(0) }

func (tb *tokenBucket) refill(now time.Duration) {
	if now > tb.last {
		tb.tokens += tb.rate * (now - tb.last).Seconds()
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
}

// SetAdmission installs (or replaces) a session's admission policy. The
// bucket starts full. Call before the run starts, or from the clock
// goroutine: the bucket map is dispatch-path state.
func (f *Frontend) SetAdmission(session string, cfg AdmissionConfig) {
	if f.admission == nil {
		f.admission = make(map[string]*tokenBucket)
	}
	f.admission[session] = &tokenBucket{
		rate:     cfg.Rate,
		burst:    cfg.Burst,
		tokens:   cfg.Burst,
		last:     f.clock.Now(),
		priority: cfg.Priority,
	}
}

// SetAdmissionReserve installs the shared reserve bucket that priority
// sessions may draw from when their own bucket runs dry.
func (f *Frontend) SetAdmissionReserve(rate, burst float64) {
	f.reserve = &tokenBucket{rate: rate, burst: burst, tokens: burst, last: f.clock.Now()}
}

// admit charges one request against the session's bucket (or, for
// priority sessions, the shared reserve). Sessions without a policy are
// always admitted.
func (f *Frontend) admit(session string) bool {
	tb, ok := f.admission[session]
	if !ok {
		return true
	}
	now := f.clock.Now()
	tb.lock()
	tb.refill(now)
	if tb.tokens >= 1 {
		tb.tokens--
		tb.unlock()
		return true
	}
	tb.unlock()
	if tb.priority > 0 && f.reserve != nil {
		rb := f.reserve
		rb.lock()
		rb.refill(now)
		if rb.tokens >= 1 {
			rb.tokens--
			rb.unlock()
			return true
		}
		rb.unlock()
	}
	return false
}

// AdmissionSheds returns how many requests admission control dropped.
func (f *Frontend) AdmissionSheds() uint64 { return f.admissionSheds.Load() }
