package frontend

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/backend"
	"nexus/internal/gpusim"
	"nexus/internal/profiler"
	"nexus/internal/simclock"
	"nexus/internal/trace"
	"nexus/internal/workload"
)

// These tests exercise the lock-free dispatch path's concurrency contract
// under -race: any number of Dispatch goroutines may run against
// control-plane mutations (ApplyDelta, SetTableGen, RemoveBackend) and
// breaker state flips, as long as none of them overlaps clock event
// execution. Dispatchers are always joined before clock.Run().

// raceTable builds a table of n sessions, each routed across every backend.
func raceTable(backends map[string]*backend.Backend, n int) RoutingTable {
	rt := make(RoutingTable, n)
	for i := 0; i < n; i++ {
		var routes []Route
		for beID := range backends {
			routes = append(routes, Route{BackendID: beID, UnitID: "u", Weight: 1})
		}
		rt[fmt.Sprintf("s%02d", i)] = routes
	}
	return rt
}

// TestConcurrentDispatchAgainstControlPlane drives Dispatch from many
// goroutines while the control plane pushes deltas, full resyncs, and
// backend-death repairs. Every dispatch must be accounted for: routed or
// observed as a drop, never lost or double-counted.
func TestConcurrentDispatchAgainstControlPlane(t *testing.T) {
	const (
		dispatchers = 8
		perPhase    = 400
		phases      = 6
		sessions    = 16
	)
	clock, backends, _, _ := setup(t, 3)
	var drops atomic.Uint64
	fe := New(clock, backends, 0, func(req workload.Request, reason backend.Outcome) { drops.Add(1) })
	clock.RunUntil(5 * time.Second) // model loads
	if err := fe.SetTableGen(raceTable(backends, sessions), 1); err != nil {
		t.Fatal(err)
	}

	var sent atomic.Uint64
	gen := uint64(1)
	for phase := 0; phase < phases; phase++ {
		var wg sync.WaitGroup
		// Control-plane churn racing the dispatchers: a delta that rewrites
		// half the sessions, a full-table resync, and a backend repair.
		wg.Add(1)
		go func(phase int) {
			defer wg.Done()
			set := make(map[string][]Route, sessions/2)
			for i := 0; i < sessions/2; i++ {
				set[fmt.Sprintf("s%02d", i)] = []Route{
					{BackendID: "a", UnitID: "u", Weight: 1},
					{BackendID: "b", UnitID: "u", Weight: 2},
				}
			}
			if err := fe.ApplyDelta(TableDelta{FromGen: gen, Gen: gen + 1, Set: set}); err != nil {
				t.Error(err)
				return
			}
			gen++
			if phase%2 == 1 {
				fe.RemoveBackend("c")
				if err := fe.SetTableGen(raceTable(fe.backendsView(), sessions), gen+1); err != nil {
					t.Error(err)
					return
				}
				gen++
			}
		}(phase)
		now := clock.Now()
		for d := 0; d < dispatchers; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				for i := 0; i < perPhase; i++ {
					fe.Dispatch(workload.Request{
						ID: uint64(d*perPhase + i), Session: fmt.Sprintf("s%02d", i%sessions),
						Arrival: now, Deadline: now + time.Second,
					})
					sent.Add(1)
				}
			}(d)
		}
		wg.Wait()
		clock.Run()
	}
	if got := fe.Dispatches() + drops.Load(); got != sent.Load() {
		t.Fatalf("routed %d + dropped %d != sent %d", fe.Dispatches(), drops.Load(), sent.Load())
	}
}

// backendsView exposes the backend map for table rebuilding in tests.
func (f *Frontend) backendsView() map[string]*backend.Backend { return f.backends }

// TestConcurrentDispatchAgainstBreakerFlips races dispatchers against
// breaker state transitions. The flipper drives the same CAS transitions
// the delivery path uses, so pick-side routeAllowed/markProbe reads race
// real state changes.
func TestConcurrentDispatchAgainstBreakerFlips(t *testing.T) {
	const dispatchers = 8
	clock, backends, _, _ := setup(t, 3)
	var drops atomic.Uint64
	fe := New(clock, backends, 0, func(req workload.Request, reason backend.Outcome) { drops.Add(1) })
	clock.RunUntil(5 * time.Second)
	fe.EnableBreakers(2, 100*time.Millisecond)
	if err := fe.SetTableGen(raceTable(backends, 4), 1); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	flipperDone := make(chan struct{})
	go func() {
		defer close(flipperDone)
		b := fe.breakers["a"]
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				b.until.Store(int64(clock.Now() + 50*time.Millisecond))
				fe.transition("a", b, breakerClosed, breakerOpen)
			case 1:
				fe.transition("a", b, breakerOpen, breakerHalfOpen)
			default:
				fe.transition("a", b, breakerHalfOpen, breakerClosed)
			}
		}
	}()
	now := clock.Now()
	var sent atomic.Uint64
	for d := 0; d < dispatchers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				fe.Dispatch(workload.Request{
					ID: uint64(d*1000 + i), Session: fmt.Sprintf("s%02d", i%4),
					Arrival: now, Deadline: now + time.Second,
				})
				sent.Add(1)
			}
		}(d)
	}
	// Join dispatchers first so flips race dispatches for the whole run,
	// then stop the flipper and drain the clock.
	wg.Wait()
	close(stop)
	<-flipperDone
	clock.Run()
	if got := fe.Dispatches() + drops.Load(); got != sent.Load() {
		t.Fatalf("routed %d + dropped %d != sent %d", fe.Dispatches(), drops.Load(), sent.Load())
	}
}

// TestZeroAllocSteadyState asserts the end-to-end per-request path —
// admission, snapshot routing, WRR pick, ring hop, network-delay send,
// enqueue, batch assembly, execution, completion — allocates nothing once
// the arenas and free lists are warm.
func TestZeroAllocSteadyState(t *testing.T) {
	// A fast profile keeps every scheduled horizon (preprocess, batch
	// execution, postprocess) inside the timer wheel's level-0 span, so
	// the wheel reaches its steady capacity during warmup instead of
	// touching fresh far-horizon buckets every step.
	prof := &profiler.Profile{
		ModelID: "m", GPU: profiler.GTX1080Ti,
		Alpha: 50 * time.Microsecond, Beta: 100 * time.Microsecond, MaxBatch: 8,
		PreprocCPU: 20 * time.Microsecond, PostprocCPU: 10 * time.Microsecond,
		MemBase: 1 << 28, MemPerItem: 1 << 20,
	}
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	clock := simclock.New()
	backends := make(map[string]*backend.Backend)
	for _, id := range []string{"a", "b"} {
		dev := gpusim.New(clock, "gpu-"+id, profiler.GTX1080Ti, gpusim.Exclusive)
		be := backend.New(id, clock, dev, backend.Config{Overlap: true}, nil)
		if err := be.Configure([]backend.Unit{{ID: "u", Profile: prof, TargetBatch: 8}}); err != nil {
			t.Fatal(err)
		}
		backends[id] = be
	}
	fe := New(clock, backends, 0, nil)
	clock.RunUntil(5 * time.Second)
	if err := fe.SetTable(RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 1},
		{BackendID: "b", UnitID: "u", Weight: 2},
	}}); err != nil {
		t.Fatal(err)
	}

	var id uint64
	step := func() {
		now := clock.Now()
		for i := 0; i < 16; i++ {
			fe.Dispatch(workload.Request{ID: id, Session: "s", Arrival: now, Deadline: now + time.Second})
			id++
		}
		clock.Run()
	}
	// Warm every pool: event free list, wheel buckets, send arena, queue
	// rings, batch and run arenas.
	for i := 0; i < 50; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("steady-state dispatch allocates %.1f times per 16-request step, want 0", avg)
	}

	// With the flight recorder's span source attached the same path must
	// stay allocation-free: Route and Enqueue events land in the tracer's
	// preallocated ring, so always-on capture never costs the hot path an
	// allocation.
	fe.SetTracer(trace.New(1 << 14))
	for i := 0; i < 50; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("traced steady-state dispatch allocates %.1f times per 16-request step, want 0", avg)
	}
}
