package frontend

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"nexus/internal/workload"
)

func TestApplyDeltaSetRemove(t *testing.T) {
	_, _, fe, _ := setup(t, 2)
	rt := RoutingTable{
		"s1": {{BackendID: "a", UnitID: "u", Weight: 1}},
		"s2": {{BackendID: "a", UnitID: "u", Weight: 1}},
	}
	if err := fe.SetTableGen(rt, 1); err != nil {
		t.Fatal(err)
	}
	err := fe.ApplyDelta(TableDelta{
		FromGen: 1, Gen: 2,
		Set:    map[string][]Route{"s3": {{BackendID: "b", UnitID: "u", Weight: 1}}},
		Remove: []string{"s2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fe.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", fe.Generation())
	}
	got := fe.Sessions()
	if len(got) != 2 || got[0] != "s1" || got[1] != "s3" {
		t.Fatalf("sessions after delta = %v, want [s1 s3]", got)
	}
}

// TestApplyDeltaCarriesCounts extends the SetTable/RemoveBackend carry-over
// contract to deltas: in-window request counts survive both a route change
// (Set) and a removal (residual window), so ObservedRates never loses
// traffic across an incremental push.
func TestApplyDeltaCarriesCounts(t *testing.T) {
	clock, _, fe, _ := setup(t, 2)
	rt := RoutingTable{
		"s1": {{BackendID: "a", UnitID: "u", Weight: 1}},
		"s2": {{BackendID: "a", UnitID: "u", Weight: 1}},
	}
	if err := fe.SetTableGen(rt, 1); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	fe.ObservedRates() // reset window
	for i := 0; i < 40; i++ {
		fe.Dispatch(workload.Request{ID: uint64(i), Session: "s1", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
		fe.Dispatch(workload.Request{ID: uint64(100 + i), Session: "s2", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	// Mid-window delta: s1's routes change, s2 is removed entirely.
	err := fe.ApplyDelta(TableDelta{
		FromGen: 1, Gen: 2,
		Set:    map[string][]Route{"s1": {{BackendID: "b", UnitID: "u", Weight: 1}}},
		Remove: []string{"s2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		fe.Dispatch(workload.Request{ID: uint64(200 + i), Session: "s1", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	clock.RunUntil(clock.Now() + 5*time.Second)
	rates := fe.ObservedRates()
	if got := rates["s1"] * 5; got < 49.9 || got > 50.1 {
		t.Fatalf("s1 window count = %.1f, want 50 (carried across Set)", got)
	}
	if got := rates["s2"] * 5; got < 39.9 || got > 40.1 {
		t.Fatalf("s2 window count = %.1f, want 40 (residual after Remove)", got)
	}
}

// TestApplyDeltaPreservesUntouchedWRR: a session the delta does not mention
// keeps its dispatch state object, so its smooth-WRR replica split continues
// exactly where it left off.
func TestApplyDeltaPreservesUntouchedWRR(t *testing.T) {
	_, _, fe, _ := setup(t, 2)
	rt := RoutingTable{
		"s1": {
			{BackendID: "a", UnitID: "u", Weight: 3},
			{BackendID: "b", UnitID: "u", Weight: 1},
		},
		"s2": {{BackendID: "a", UnitID: "u", Weight: 1}},
	}
	if err := fe.SetTableGen(rt, 1); err != nil {
		t.Fatal(err)
	}
	before := fe.state.Load().sessions["s1"]
	counts := map[string]int{}
	for i := 0; i < 2; i++ { // mid-cycle: accumulator holds credit
		counts[before.pick().BackendID]++
	}
	err := fe.ApplyDelta(TableDelta{
		FromGen: 1, Gen: 2,
		Set: map[string][]Route{"s2": {{BackendID: "b", UnitID: "u", Weight: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	after := fe.state.Load().sessions["s1"]
	if after != before {
		t.Fatal("untouched session's dispatch state was rebuilt by the delta")
	}
	for i := 0; i < 398; i++ {
		counts[after.pick().BackendID]++
	}
	if counts["a"] != 300 || counts["b"] != 100 {
		t.Fatalf("WRR counts after delta = %v, want a:300 b:100", counts)
	}
}

func TestApplyDeltaStaleGeneration(t *testing.T) {
	_, _, fe, _ := setup(t, 1)
	rt := RoutingTable{"s1": {{BackendID: "a", UnitID: "u", Weight: 1}}}
	if err := fe.SetTableGen(rt, 5); err != nil {
		t.Fatal(err)
	}
	err := fe.ApplyDelta(TableDelta{
		FromGen: 4, Gen: 6,
		Set: map[string][]Route{"s2": {{BackendID: "a", UnitID: "u", Weight: 1}}},
	})
	if !errors.Is(err, ErrStaleDelta) {
		t.Fatalf("stale delta error = %v, want ErrStaleDelta", err)
	}
	if fe.Generation() != 5 || len(fe.Sessions()) != 1 {
		t.Fatal("rejected delta mutated routing state")
	}
}

// TestRemoveBackendInvalidatesDeltas: a local failure repair moves the
// frontend off the control plane's generation sequence, so the next delta is
// detectably stale and a SetTableGen resync restores delta routing.
func TestRemoveBackendInvalidatesDeltas(t *testing.T) {
	_, _, fe, _ := setup(t, 2)
	rt := RoutingTable{"s1": {
		{BackendID: "a", UnitID: "u", Weight: 1},
		{BackendID: "b", UnitID: "u", Weight: 1},
	}}
	if err := fe.SetTableGen(rt, 1); err != nil {
		t.Fatal(err)
	}
	if n := fe.RemoveBackend("b"); n != 1 {
		t.Fatalf("RemoveBackend repaired %d sessions, want 1", n)
	}
	// The control plane still believes generation 1; its delta must bounce.
	err := fe.ApplyDelta(TableDelta{
		FromGen: 1, Gen: 2,
		Set: map[string][]Route{"s2": {{BackendID: "a", UnitID: "u", Weight: 1}}},
	})
	if !errors.Is(err, ErrStaleDelta) {
		t.Fatalf("delta after local repair = %v, want ErrStaleDelta", err)
	}
	// Resync: a stamped full table re-aligns generations, deltas flow again.
	resync := RoutingTable{"s1": {{BackendID: "a", UnitID: "u", Weight: 1}}}
	if err := fe.SetTableGen(resync, 2); err != nil {
		t.Fatal(err)
	}
	err = fe.ApplyDelta(TableDelta{
		FromGen: 2, Gen: 3,
		Set: map[string][]Route{"s2": {{BackendID: "a", UnitID: "u", Weight: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fe.Generation() != 3 {
		t.Fatalf("generation after resync+delta = %d, want 3", fe.Generation())
	}
}

func TestApplyDeltaRejectsBadRoutes(t *testing.T) {
	_, _, fe, _ := setup(t, 1)
	rt := RoutingTable{"s1": {{BackendID: "a", UnitID: "u", Weight: 1}}}
	if err := fe.SetTableGen(rt, 1); err != nil {
		t.Fatal(err)
	}
	bad := []TableDelta{
		{FromGen: 1, Gen: 2, Set: map[string][]Route{"s2": {{BackendID: "zz", UnitID: "u", Weight: 1}}}},
		{FromGen: 1, Gen: 2, Set: map[string][]Route{"s2": {{BackendID: "a", UnitID: "u", Weight: 0}}}},
		{FromGen: 1, Gen: 2, Set: map[string][]Route{"s2": {}}},
	}
	for i, d := range bad {
		if err := fe.ApplyDelta(d); err == nil {
			t.Errorf("case %d: invalid delta accepted", i)
		}
	}
	if fe.Generation() != 1 || len(fe.Sessions()) != 1 {
		t.Fatal("rejected delta mutated routing state")
	}
}

// TestConcurrentDispatchDuringDelta drives the dispatcher and the control
// plane from different goroutines: Dispatch reads immutable snapshots while
// ApplyDelta swaps them in, which the race detector verifies (this test is
// meaningful under -race). The simulated clock itself is single-threaded, so
// all Dispatch calls stay on the dispatcher goroutine and the clock only
// runs after both sides join.
func TestConcurrentDispatchDuringDelta(t *testing.T) {
	clock, _, fe, _ := setup(t, 2)
	rt := RoutingTable{
		"s0": {{BackendID: "a", UnitID: "u", Weight: 1}},
		"s1": {{BackendID: "a", UnitID: "u", Weight: 1}},
	}
	if err := fe.SetTableGen(rt, 1); err != nil {
		t.Fatal(err)
	}
	const dispatches = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < dispatches; i++ {
			fe.Dispatch(workload.Request{
				ID: uint64(i), Session: fmt.Sprintf("s%d", i%2),
				Arrival: clock.Now(), Deadline: clock.Now() + time.Hour,
			})
		}
	}()
	// Control plane: flip s1's routes back and forth and churn a third
	// session in and out while dispatches are in flight.
	gen := uint64(1)
	for i := 0; i < 500; i++ {
		be := "a"
		if i%2 == 0 {
			be = "b"
		}
		d := TableDelta{
			FromGen: gen, Gen: gen + 1,
			Set: map[string][]Route{
				"s1": {{BackendID: be, UnitID: "u", Weight: 1}},
				"s2": {{BackendID: "a", UnitID: "u", Weight: 1}},
			},
		}
		if i%3 == 0 {
			d.Set = map[string][]Route{"s1": {{BackendID: be, UnitID: "u", Weight: 1}}}
			d.Remove = []string{"s2"}
		}
		if err := fe.ApplyDelta(d); err != nil {
			t.Error(err)
			break
		}
		gen++
	}
	wg.Wait()
	clock.Run()
	// Every dispatch was routed or counted: the two live sessions' window
	// counts must sum to all dispatched requests (none dropped: both target
	// sessions stay routable throughout).
	clock.RunUntil(clock.Now() + time.Second)
	rates := fe.ObservedRates()
	var total float64
	for _, r := range rates {
		total += r
	}
	if fe.Dispatches() != dispatches {
		t.Fatalf("dispatches = %d, want %d", fe.Dispatches(), dispatches)
	}
	if total <= 0 {
		t.Fatal("no observed traffic after concurrent deltas")
	}
}
