package frontend

import (
	"math"
	"testing"
	"time"

	"nexus/internal/workload"
)

func TestValidateRejectsNonFiniteWeights(t *testing.T) {
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		rt := RoutingTable{"s": {{BackendID: "a", UnitID: "u", Weight: w}}}
		if rt.Validate() == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
}

// TestWRRResetOnTableUpdate pins that a table swap clears the smooth-WRR
// accumulator: credit earned under the old weights must not skew the split
// under the new ones (the route count is unchanged, so only an explicit
// reset protects the new proportions).
func TestWRRResetOnTableUpdate(t *testing.T) {
	_, _, fe, _ := setup(t, 2)
	if err := fe.SetTable(RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 5},
		{BackendID: "b", UnitID: "u", Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	// Park the accumulator mid-cycle so backend b holds stale credit.
	for i := 0; i < 3; i++ {
		fe.state.Load().sessions["s"].pick()
	}
	if err := fe.SetTable(RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 1},
		{BackendID: "b", UnitID: "u", Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 100; i++ {
		counts[fe.state.Load().sessions["s"].pick().BackendID]++
	}
	if counts["a"] != 50 || counts["b"] != 50 {
		t.Fatalf("picks after table swap = %v, want an exact 50/50 split", counts)
	}
}

func TestRemoveBackendRepairsRoutes(t *testing.T) {
	_, _, fe, _ := setup(t, 3)
	if err := fe.SetTable(RoutingTable{
		"both":   {{BackendID: "a", UnitID: "u", Weight: 2}, {BackendID: "b", UnitID: "u", Weight: 1}},
		"only-a": {{BackendID: "a", UnitID: "u", Weight: 1}},
		"only-c": {{BackendID: "c", UnitID: "u", Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if n := fe.RemoveBackend("a"); n != 2 {
		t.Fatalf("affected = %d, want 2", n)
	}
	if got := fe.Sessions(); len(got) != 2 || got[0] != "both" || got[1] != "only-c" {
		t.Fatalf("sessions after repair = %v", got)
	}
	routes := fe.state.Load().table["both"]
	if len(routes) != 1 || routes[0].BackendID != "b" {
		t.Fatalf("surviving routes = %v", routes)
	}
	if n := fe.RemoveBackend("a"); n != 0 {
		t.Fatalf("second removal affected %d sessions", n)
	}
}

// TestRemoveBackendCopyOnWrite pins that route repair never mutates the
// table object in place: replicas sharing the published table each repair
// their own copy.
func TestRemoveBackendCopyOnWrite(t *testing.T) {
	_, backends, fe1, _ := setup(t, 2)
	shared := RoutingTable{
		"s": {{BackendID: "a", UnitID: "u", Weight: 1}, {BackendID: "b", UnitID: "u", Weight: 1}},
	}
	fe2 := New(nil, backends, 0, nil)
	if err := fe1.SetTable(shared); err != nil {
		t.Fatal(err)
	}
	if err := fe2.SetTable(shared); err != nil {
		t.Fatal(err)
	}
	fe1.RemoveBackend("a")
	if len(shared["s"]) != 2 {
		t.Fatal("repair mutated the shared table in place")
	}
	if len(fe2.state.Load().table["s"]) != 2 {
		t.Fatal("repair leaked into the replica's table")
	}
	if len(fe1.state.Load().table["s"]) != 1 {
		t.Fatal("repair missing from the repaired frontend")
	}
}

func TestRetryReroutesAroundDeadBackend(t *testing.T) {
	clock, backends, fe, dropped := setup(t, 2)
	fe.EnableRetry()
	if err := fe.SetTable(RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 1},
		{BackendID: "b", UnitID: "u", Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	// Crash a after routing decisions are made: the request bound for it
	// finds it dead at enqueue and must fail over to b.
	backends["a"].Fail()
	for i := 0; i < 2; i++ {
		fe.Dispatch(workload.Request{ID: uint64(i), Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	}
	clock.Run()
	if *dropped != 0 {
		t.Fatalf("dropped = %d, want retry to save both requests", *dropped)
	}
	if backends["b"].Device().BusyTime() == 0 {
		t.Fatal("surviving backend served nothing")
	}
}

func TestRetryRespectsDeadline(t *testing.T) {
	clock, backends, fe, dropped := setup(t, 2)
	fe.EnableRetry()
	if err := fe.SetTable(RoutingTable{"s": {
		{BackendID: "a", UnitID: "u", Weight: 1},
		{BackendID: "b", UnitID: "u", Weight: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(time.Second)
	backends["a"].Fail()
	backends["b"].Fail()
	// Both replicas dead: the retry path has no live alternative, so each
	// dispatch is dropped exactly once (no retry ping-pong).
	fe.Dispatch(workload.Request{ID: 1, Session: "s", Arrival: clock.Now(), Deadline: clock.Now() + time.Hour})
	// A request with no deadline room must not be retried even when a live
	// replica exists.
	backends["b"].Restart()
	fe.Dispatch(workload.Request{ID: 2, Session: "s", Arrival: clock.Now(), Deadline: clock.Now()})
	clock.Run()
	if *dropped != 2 {
		t.Fatalf("dropped = %d, want 2", *dropped)
	}
}
