package runner

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got := MapN(workers, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := MapN(4, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("MapN(_, 0) = %v, want nil", got)
	}
}

func TestMapBoundsWorkers(t *testing.T) {
	var active, peak atomic.Int64
	MapN(3, 64, func(i int) struct{} {
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		// Busy-wait a little so workers overlap.
		for j := 0; j < 1000; j++ {
			_ = j
		}
		active.Add(-1)
		return struct{}{}
	})
	if peak.Load() > 3 {
		t.Fatalf("observed %d concurrent workers, bound is 3", peak.Load())
	}
}

func TestMapSequentialMatchesParallel(t *testing.T) {
	fn := func(i int) string { return fmt.Sprintf("cell-%d", i*7%13) }
	seq := MapN(1, 50, fn)
	par := MapN(8, 50, fn)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: sequential %q != parallel %q", i, seq[i], par[i])
		}
	}
}

func TestMapErrFirstIndexWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	_, err := MapErr(20, func(i int) (int, error) {
		switch i {
		case 17:
			return 0, errHigh
		case 3:
			return 0, errLow
		}
		return i, nil
	})
	if err != errLow {
		t.Fatalf("MapErr returned %v, want lowest-index error %v", err, errLow)
	}
	out, err := MapErr(5, func(i int) (int, error) { return i * 2, nil })
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2)
		}
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	prev := SetDefaultWorkers(3)
	defer SetDefaultWorkers(prev)
	if DefaultWorkers() != 3 {
		t.Fatalf("DefaultWorkers() = %d, want 3", DefaultWorkers())
	}
	SetDefaultWorkers(0)
	if DefaultWorkers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers() = %d, want GOMAXPROCS %d", DefaultWorkers(), runtime.GOMAXPROCS(0))
	}
}

// TestNestedMap exercises the nesting pattern the experiment engine uses
// (experiments x cells x probes) under the race detector.
func TestNestedMap(t *testing.T) {
	total := MapN(4, 6, func(i int) int {
		inner := MapN(4, 8, func(j int) int { return i*8 + j })
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum
	})
	want := 0
	for i := 0; i < 48; i++ {
		want += i
	}
	got := 0
	for _, v := range total {
		got += v
	}
	if got != want {
		t.Fatalf("nested sum = %d, want %d", got, want)
	}
}

// TestMapNamedLabels asserts that MapNamed workers run under pprof labels.
// Goroutine labels are not directly readable from inside the goroutine, so
// each worker snapshots the labeled goroutine profile (debug=1 includes a
// "labels:" line per stack) while it is running and checks its own sweep
// label appears.
func TestMapNamedLabels(t *testing.T) {
	dumpHasLabel := func(sweep string) bool {
		var buf bytes.Buffer
		if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
			t.Error(err)
			return false
		}
		return strings.Contains(buf.String(), `"sweep":"`+sweep+`"`) &&
			strings.Contains(buf.String(), `"worker":"`)
	}
	SetDefaultWorkers(4)
	defer SetDefaultWorkers(0)
	got := MapNamed("unit-test-sweep", 8, func(i int) bool {
		return dumpHasLabel("unit-test-sweep")
	})
	for i, labeled := range got {
		if !labeled {
			t.Fatalf("item %d ran without sweep/worker labels", i)
		}
	}
	// The sequential path (workers=1) must label too: profiles from
	// -parallel 1 runs should attribute the same way.
	SetDefaultWorkers(1)
	seq := MapNamed("unit-test-seq", 2, func(i int) bool {
		return dumpHasLabel("unit-test-seq")
	})
	for i, labeled := range seq {
		if !labeled {
			t.Fatalf("sequential item %d ran without sweep label", i)
		}
	}
}
