// Package runner provides a bounded fork-join worker pool for the
// experiment engine. Every sweep in internal/experiments fans independent
// cells (system x SLO x gamma x feature x model-count) through Map, and the
// speculative goodput search (metrics.MaxGoodputK) uses it to probe several
// candidate rates per round.
//
// Determinism contract: results are always returned in input-index order,
// and item i's result depends only on fn(i) — never on scheduling. A run
// with Workers=1 therefore produces byte-identical experiment tables to a
// run with Workers=N; the determinism test in internal/experiments asserts
// exactly that.
//
// The worker bound is per Map call (nested calls each apply their own
// bound rather than sharing a global semaphore, which would deadlock when
// an outer task blocks on an inner Map). Nesting depth in this repo is at
// most three — experiments x sweep cells x goodput probes — so transient
// oversubscription stays small and the Go scheduler absorbs it.
package runner

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the pool size used by Map/MapErr when the caller does
// not specify one. <= 0 means runtime.GOMAXPROCS(0).
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the default parallelism for Map and MapErr.
// n <= 0 resets to GOMAXPROCS. It returns the previous setting.
// nexus-bench wires its -parallel flag here; 1 forces fully sequential
// execution.
func SetDefaultWorkers(n int) int {
	return int(defaultWorkers.Swap(int64(n)))
}

// DefaultWorkers returns the current default parallelism.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0..n-1) on up to DefaultWorkers() goroutines and returns the
// results in index order. fn must be safe for concurrent invocation.
func Map[T any](n int, fn func(i int) T) []T {
	return mapN("", DefaultWorkers(), n, fn)
}

// MapNamed is Map with a pprof label: every worker (and the sequential
// fallback) runs under labels {sweep=name, worker=W}, so -cpuprofile and
// -memprofile samples attribute to the experiment that produced them
// (`go tool pprof -tagfocus sweep=figure10 ...`). Labels do not affect
// execution order, so the determinism contract is unchanged.
func MapNamed[T any](name string, n int, fn func(i int) T) []T {
	return mapN(name, DefaultWorkers(), n, fn)
}

// MapN is Map with an explicit worker bound (<= 0 means GOMAXPROCS).
func MapN[T any](workers, n int, fn func(i int) T) []T {
	return mapN("", workers, n, fn)
}

// mapN is the shared fork-join core. A non-empty label wraps each worker
// body in pprof.Do so profile samples carry sweep/worker tags.
func mapN[T any](label string, workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]T, n)
	if workers == 1 || n == 1 {
		run := func() {
			for i := 0; i < n; i++ {
				out[i] = fn(i)
			}
		}
		if label == "" {
			run()
		} else {
			pprof.Do(context.Background(), pprof.Labels("sweep", label, "worker", "0"),
				func(context.Context) { run() })
		}
		return out
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			body := func() {
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					out[i] = fn(i)
				}
			}
			if label == "" {
				body()
				return
			}
			pprof.Do(context.Background(), pprof.Labels("sweep", label, "worker", strconv.Itoa(w)),
				func(context.Context) { body() })
		}(w)
	}
	wg.Wait()
	return out
}

// MapErr runs fn(0..n-1) concurrently like Map. If any invocation returns
// an error, MapErr reports the error with the lowest index (deterministic
// regardless of completion order) alongside the partial results; result i
// is valid iff fn(i) returned nil.
func MapErr[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	type slot struct {
		v   T
		err error
	}
	slots := MapN(DefaultWorkers(), n, func(i int) slot {
		v, err := fn(i)
		return slot{v, err}
	})
	out := make([]T, n)
	var firstErr error
	for i, s := range slots {
		out[i] = s.v
		if s.err != nil && firstErr == nil {
			firstErr = s.err
		}
	}
	return out, firstErr
}
