package globalsched

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"math/rand"

	"nexus/internal/model"
	"nexus/internal/scheduler"
	"nexus/internal/trace"
	"nexus/internal/workload"
)

// addMixedSessions registers a workload big enough to spread across shards.
func addMixedSessions(t *testing.T, e *env, n int) {
	t.Helper()
	models := []string{model.ResNet50, model.Darknet53, model.GoogLeNetCar}
	for i := 0; i < n; i++ {
		if err := e.sched.AddSession(SessionSpec{
			ID:           fmt.Sprintf("s%02d", i),
			ModelID:      models[i%len(models)],
			SLO:          time.Duration(150+50*(i%3)) * time.Millisecond,
			ExpectedRate: 40 + 20*float64(i%4),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func planJSON(t *testing.T, p *scheduler.Plan) string {
	t.Helper()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestShardsOneMatchesMonolithic: Shards=1 runs the sharded machinery but
// must produce byte-identical plans and routing tables to the monolithic
// planner — the property that keeps every pre-sharding golden valid.
func TestShardsOneMatchesMonolithic(t *testing.T) {
	mono := newEnv(t, nexusConfig(), 32)
	addMixedSessions(t, mono, 9)
	cfg := nexusConfig()
	cfg.Shards = 1
	sharded := newEnv(t, cfg, 32)
	addMixedSessions(t, sharded, 9)
	for i := 0; i < 3; i++ {
		if err := mono.sched.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		if err := sharded.sched.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		if a, b := planJSON(t, mono.sched.Plan()), planJSON(t, sharded.sched.Plan()); a != b {
			t.Fatalf("epoch %d: Shards=1 plan differs from monolithic:\n%s\nvs\n%s", i, b, a)
		}
		mono.clock.RunUntil(mono.clock.Now() + 10*time.Second)
		sharded.clock.RunUntil(sharded.clock.Now() + 10*time.Second)
	}
}

// TestShardedEpochServesTraffic: the full sharded + hysteresis + delta
// routing control plane serves a mixed workload end to end.
func TestShardedEpochServesTraffic(t *testing.T) {
	cfg := nexusConfig()
	cfg.Shards = 4
	cfg.PlanHysteresis = 0.05
	cfg.DeltaRouting = true
	e := newEnv(t, cfg, 64)
	addMixedSessions(t, e, 12)
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	stats := e.sched.LastShardStats()
	if stats.Shards != 4 || stats.Replanned != 4 {
		t.Fatalf("first epoch shard stats = %+v", stats)
	}
	e.clock.RunUntil(2 * time.Second)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		sid := fmt.Sprintf("s%02d", i)
		workload.Start(e.clock, rng, sid, 200*time.Millisecond, workload.Uniform{Rate: 50},
			e.clock.Now()+10*time.Second, func(r workload.Request) { e.fe.Dispatch(r) })
	}
	e.clock.RunUntil(8 * time.Second)
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	e.clock.Run()
	total := e.good + e.missed + e.dropped
	if total < 5000 {
		t.Fatalf("completed %d requests", total)
	}
	if bad := float64(e.missed+e.dropped) / float64(total); bad > 0.02 {
		t.Fatalf("bad rate %.3f under sharded control plane", bad)
	}
	// Placements must carry shard attribution.
	for _, g := range e.sched.Plan().GPUs {
		if _, ok := scheduler.NodeShard(g.ID); !ok {
			t.Fatalf("plan node %q lacks shard prefix", g.ID)
		}
	}
	for _, a := range e.sched.Explain().Allocs {
		if a.Shard == "" {
			t.Fatalf("explain alloc for %s lacks shard tag", a.Session)
		}
	}
}

// TestShardedHysteresisSkipsQuietEpochs: with stable observed rates, later
// epochs skip every shard and re-use the committed plans.
func TestShardedHysteresisSkipsQuietEpochs(t *testing.T) {
	cfg := nexusConfig()
	cfg.Shards = 2
	cfg.PlanHysteresis = 0.05
	e := newEnv(t, cfg, 32)
	addMixedSessions(t, e, 8)
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	// Quiet epochs: no traffic at all, so EWMA rates only decay; after the
	// first decay settles inside the band, shards stop re-planning.
	skipped := false
	for i := 0; i < 6; i++ {
		e.clock.RunUntil(e.clock.Now() + 10*time.Second)
		if err := e.sched.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		if s := e.sched.LastShardStats(); s.Skipped == 2 && s.Replanned == 0 {
			skipped = true
			break
		}
	}
	if !skipped {
		t.Fatalf("no quiet epoch skipped all shards: %+v", e.sched.LastShardStats())
	}
	_, skippedTotal, _ := e.sched.ShardTotals()
	if skippedTotal == 0 {
		t.Fatal("cumulative skip counter never advanced")
	}
}

// TestDeltaRoutingSteadyState: an epoch that does not change the routing
// table pushes nothing at all, and route-changing epochs go out as deltas,
// not full tables.
func TestDeltaRoutingSteadyState(t *testing.T) {
	cfg := nexusConfig()
	cfg.Shards = 2
	cfg.PlanHysteresis = 0.05
	cfg.DeltaRouting = true
	e := newEnv(t, cfg, 32)
	addMixedSessions(t, e, 8)
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	deltas0, fulls0, _ := e.sched.RoutePushStats()
	if fulls0 != 1 || deltas0 != 0 {
		t.Fatalf("first publish: deltas=%d fulls=%d, want 0/1", deltas0, fulls0)
	}
	ver := e.fe.TableVersion()
	// Find a steady-state epoch: table unchanged -> no push at all.
	settled := false
	for i := 0; i < 6; i++ {
		e.clock.RunUntil(e.clock.Now() + 10*time.Second)
		before := e.fe.TableVersion()
		if err := e.sched.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		if e.fe.TableVersion() == before {
			settled = true
			break
		}
	}
	if !settled {
		t.Fatalf("no steady-state epoch skipped the push (version %d -> %d)", ver, e.fe.TableVersion())
	}
	// The frontend's routing table still matches the scheduler's plan view.
	if len(e.fe.Sessions()) != 8 {
		t.Fatalf("routable sessions = %v", e.fe.Sessions())
	}
}

// TestDeltaRoutingResyncAfterLocalRepair: a frontend that repaired routes
// locally (backend death) diverges from the publish generation; the next
// epoch's delta bounces and the control plane full-resyncs it.
func TestDeltaRoutingResyncAfterLocalRepair(t *testing.T) {
	cfg := nexusConfig()
	cfg.DeltaRouting = true
	e := newEnv(t, cfg, 32)
	addMixedSessions(t, e, 6)
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	genBefore := e.fe.Generation()
	// Simulate a local repair: the frontend deletes a backend's routes on
	// its own and moves off the control plane's generation sequence.
	// Pick the lexicographically smallest in-use backend: iterating the map
	// directly made the victim — and therefore whether the repaired routes
	// intersect the next epoch's plan — vary run to run.
	var victim string
	for beID := range e.pool.inUse {
		if victim == "" || beID < victim {
			victim = beID
		}
	}
	if e.fe.RemoveBackend(victim) == 0 {
		t.Fatalf("backend %s had no routes to repair", victim)
	}
	if e.fe.Generation() == genBefore {
		t.Fatal("local repair did not move the generation")
	}
	// Drive real traffic so the next epoch re-plans with changed rates and
	// must push an update.
	e.clock.RunUntil(2 * time.Second)
	rng := rand.New(rand.NewSource(3))
	workload.Start(e.clock, rng, "s00", 200*time.Millisecond, workload.Uniform{Rate: 400},
		e.clock.Now()+6*time.Second, func(r workload.Request) { e.fe.Dispatch(r) })
	e.clock.RunUntil(9 * time.Second)
	_, fullsBefore, _ := e.sched.RoutePushStats()
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	_, fullsAfter, _ := e.sched.RoutePushStats()
	if fullsAfter != fullsBefore+1 {
		t.Fatalf("diverged frontend was not full-resynced: fulls %d -> %d", fullsBefore, fullsAfter)
	}
	// After the resync, generations re-align and the frontend serves the
	// scheduler's full session set again.
	if len(e.fe.Sessions()) != 6 {
		t.Fatalf("routable sessions after resync = %v", e.fe.Sessions())
	}
	e.clock.Run()
}

// TestShardedAuditRecordsShard: audit placements carry the shard tag when
// sharding is on, and stay untagged on the monolithic planner.
func TestShardedAuditRecordsShard(t *testing.T) {
	run := func(shards int) *env {
		cfg := nexusConfig()
		cfg.Shards = shards
		e := newEnv(t, cfg, 32)
		e.sched.cfg.Audit = trace.NewAudit()
		addMixedSessions(t, e, 6)
		if err := e.sched.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	sharded := run(2)
	for _, p := range sharded.sched.cfg.Audit.Placements() {
		if p.Shard == "" {
			t.Fatalf("sharded placement %s lacks shard tag", p.Node)
		}
	}
	mono := run(0)
	for _, p := range mono.sched.cfg.Audit.Placements() {
		if p.Shard != "" {
			t.Fatalf("monolithic placement %s carries shard tag %q", p.Node, p.Shard)
		}
	}
}
