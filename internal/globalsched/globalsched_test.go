package globalsched

import (
	"fmt"
	"testing"
	"time"

	"math/rand"

	"nexus/internal/backend"
	"nexus/internal/frontend"
	"nexus/internal/gpusim"
	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/queryopt"
	"nexus/internal/simclock"
	"nexus/internal/workload"
)

// fakePool is a fixed-size backend pool for tests.
type fakePool struct {
	clock    *simclock.Clock
	capacity int
	next     int
	inUse    map[string]*backend.Backend
	free     []*backend.Backend
	cfg      backend.Config
	onDone   backend.CompletionFunc
}

func newFakePool(clock *simclock.Clock, capacity int, cfg backend.Config, onDone backend.CompletionFunc) *fakePool {
	return &fakePool{clock: clock, capacity: capacity, inUse: make(map[string]*backend.Backend), cfg: cfg, onDone: onDone}
}

func (p *fakePool) Acquire() (string, *backend.Backend, error) {
	if len(p.free) > 0 {
		be := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.inUse[be.ID] = be
		return be.ID, be, nil
	}
	if len(p.inUse) >= p.capacity {
		return "", nil, fmt.Errorf("pool exhausted (%d in use)", len(p.inUse))
	}
	id := fmt.Sprintf("be%d", p.next)
	p.next++
	dev := gpusim.New(p.clock, "gpu-"+id, profiler.GTX1080Ti, gpusim.Exclusive)
	be := backend.New(id, p.clock, dev, p.cfg, p.onDone)
	p.inUse[id] = be
	return id, be, nil
}

func (p *fakePool) Release(id string) {
	if be, ok := p.inUse[id]; ok {
		delete(p.inUse, id)
		if be.Alive() {
			p.free = append(p.free, be)
		} else {
			// Dead backends are parked outside the grantable pool, like
			// the real cluster pool's down set.
			p.capacity--
		}
	}
}

func (p *fakePool) Get(id string) *backend.Backend { return p.inUse[id] }
func (p *fakePool) InUse() int                     { return len(p.inUse) }
func (p *fakePool) Capacity() int                  { return p.capacity }

type env struct {
	clock   *simclock.Clock
	pool    *fakePool
	fe      *frontend.Frontend
	sched   *Scheduler
	mdb     *model.DB
	good    int
	missed  int
	dropped int
}

func newEnv(t *testing.T, cfg Config, poolSize int) *env {
	t.Helper()
	e := &env{clock: simclock.New()}
	onDone := func(req backend.Request, outcome backend.Outcome, at time.Duration) {
		switch {
		case outcome.Bad():
			e.dropped++
		case at > req.Deadline:
			e.missed++
		default:
			e.good++
		}
	}
	e.pool = newFakePool(e.clock, poolSize, backend.Config{Overlap: true}, onDone)
	e.mdb = model.Catalog()
	if _, err := model.SpecializeFamily(e.mdb, model.ResNet50, 4, 1); err != nil {
		t.Fatal(err)
	}
	pdb, err := profiler.CatalogProfiles(e.mdb)
	if err != nil {
		t.Fatal(err)
	}
	profiles := make(map[string]*profiler.Profile)
	for _, id := range e.mdb.IDs() {
		if p, err := pdb.Get(id, profiler.GTX1080Ti); err == nil {
			profiles[id] = p
		}
	}
	// Backends map is filled lazily by the pool; the frontend needs a live
	// view, so share the pool's inUse map.
	e.fe = frontend.New(e.clock, poolBackends(e.pool), 0,
		func(req workload.Request, reason backend.Outcome) { e.dropped++ })
	e.sched = New(e.clock, e.pool, []*frontend.Frontend{e.fe}, e.mdb, profiles, cfg)
	return e
}

// poolBackends returns the live map the frontend dereferences.
func poolBackends(p *fakePool) map[string]*backend.Backend { return p.inUse }

func nexusConfig() Config {
	return Config{
		Epoch:         10 * time.Second,
		QueryAnalysis: true,
		PrefixBatch:   true,
		Squishy:       true,
		Incremental:   true,
	}
}

func TestAddSessionValidation(t *testing.T) {
	e := newEnv(t, nexusConfig(), 4)
	if err := e.sched.AddSession(SessionSpec{ID: "", ModelID: model.ResNet50, SLO: time.Second}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := e.sched.AddSession(SessionSpec{ID: "s", ModelID: "ghost", SLO: time.Second}); err == nil {
		t.Error("unknown model accepted")
	}
	if err := e.sched.AddSession(SessionSpec{ID: "s", ModelID: model.ResNet50, SLO: 0}); err == nil {
		t.Error("zero SLO accepted")
	}
}

func TestEpochDeploysSession(t *testing.T) {
	e := newEnv(t, nexusConfig(), 4)
	if err := e.sched.AddSession(SessionSpec{
		ID: "s", ModelID: model.ResNet50, SLO: 100 * time.Millisecond, ExpectedRate: 100,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if e.pool.InUse() == 0 {
		t.Fatal("no backends acquired")
	}
	if got := e.fe.Sessions(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("routable sessions = %v", got)
	}
	// Serve traffic end to end.
	e.clock.RunUntil(2 * time.Second) // model load
	rng := rand.New(rand.NewSource(1))
	workload.Start(e.clock, rng, "s", 100*time.Millisecond, workload.Uniform{Rate: 100},
		e.clock.Now()+10*time.Second, func(r workload.Request) { e.fe.Dispatch(r) })
	e.clock.Run()
	total := e.good + e.missed + e.dropped
	if total < 900 {
		t.Fatalf("completed %d requests", total)
	}
	if bad := float64(e.missed+e.dropped) / float64(total); bad > 0.01 {
		t.Fatalf("bad rate %.3f", bad)
	}
}

func TestPrefixGroupingReducesGPUs(t *testing.T) {
	// Four ResNet-50 variants with the same SLO: with prefix batching they
	// share units; without, they are packed separately.
	addVariants := func(e *env) {
		for i := 0; i < 4; i++ {
			if err := e.sched.AddSession(SessionSpec{
				ID:      fmt.Sprintf("s%d", i),
				ModelID: fmt.Sprintf("%s-v%d", model.ResNet50, i),
				SLO:     150 * time.Millisecond, ExpectedRate: 150,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	withPB := newEnv(t, nexusConfig(), 16)
	addVariants(withPB)
	if err := withPB.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	noPB := nexusConfig()
	noPB.PrefixBatch = false
	withoutPB := newEnv(t, noPB, 16)
	addVariants(withoutPB)
	if err := withoutPB.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if withPB.pool.InUse() > withoutPB.pool.InUse() {
		t.Fatalf("prefix batching used %d GPUs, without %d", withPB.pool.InUse(), withoutPB.pool.InUse())
	}
	// The grouped plan should contain a pg/ unit.
	found := false
	for _, g := range withPB.sched.Plan().GPUs {
		for _, a := range g.Allocs {
			if len(a.SessionID) > 3 && a.SessionID[:3] == "pg/" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no prefix group in plan")
	}
}

func TestQueryDeployment(t *testing.T) {
	e := newEnv(t, nexusConfig(), 16)
	q := &queryopt.Query{
		Name: "traffic", SLO: 400 * time.Millisecond,
		Root: &queryopt.Node{Name: "det", ModelID: model.SSD, Edges: []queryopt.Edge{
			{Gamma: 1, Child: &queryopt.Node{Name: "car", ModelID: model.GoogLeNetCar}},
		}},
	}
	if err := e.sched.AddQuery(QuerySpec{Query: q, ExpectedRate: 50}); err != nil {
		t.Fatal(err)
	}
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	sessions := e.fe.Sessions()
	if len(sessions) != 2 {
		t.Fatalf("routable sessions = %v, want traffic/det and traffic/car", sessions)
	}
	// The DP should give the heavyweight SSD most of the 400ms budget.
	var detSLO, carSLO time.Duration
	specs, _, err := e.sched.buildSessions()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		switch s.ID {
		case "traffic/det":
			detSLO = s.SLO
		case "traffic/car":
			carSLO = s.SLO
		}
	}
	if detSLO <= carSLO {
		t.Fatalf("SSD budget %v <= GoogLeNet budget %v; QA should favour the slow stage", detSLO, carSLO)
	}
	if detSLO+carSLO > 400*time.Millisecond {
		t.Fatalf("split %v+%v exceeds query SLO", detSLO, carSLO)
	}
}

func TestObliviousModeRequiresGPUCount(t *testing.T) {
	cfg := nexusConfig()
	cfg.Squishy = false
	e := newEnv(t, cfg, 4)
	if err := e.sched.AddSession(SessionSpec{ID: "s", ModelID: model.ResNet50, SLO: 100 * time.Millisecond, ExpectedRate: 10}); err != nil {
		t.Fatal(err)
	}
	if err := e.sched.RunEpoch(); err == nil {
		t.Fatal("oblivious mode without GPU count accepted")
	}
	cfg.ObliviousGPUs = 2
	e2 := newEnv(t, cfg, 4)
	if err := e2.sched.AddSession(SessionSpec{ID: "s", ModelID: model.ResNet50, SLO: 100 * time.Millisecond, ExpectedRate: 10}); err != nil {
		t.Fatal(err)
	}
	if err := e2.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if e2.pool.InUse() == 0 {
		t.Fatal("no backends acquired in oblivious mode")
	}
}

func TestEpochAdaptsToObservedLoad(t *testing.T) {
	e := newEnv(t, nexusConfig(), 32)
	if err := e.sched.AddSession(SessionSpec{
		ID: "s", ModelID: model.ResNet50, SLO: 100 * time.Millisecond, ExpectedRate: 50,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	initial := e.pool.InUse()
	// Offer much more traffic than expected, then re-run the epoch.
	e.clock.RunUntil(2 * time.Second)
	rng := rand.New(rand.NewSource(2))
	workload.Start(e.clock, rng, "s", 100*time.Millisecond, workload.Uniform{Rate: 3000},
		e.clock.Now()+10*time.Second, func(r workload.Request) { e.fe.Dispatch(r) })
	e.clock.RunUntil(7 * time.Second)
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if e.pool.InUse() <= initial {
		t.Fatalf("scheduler did not scale up: %d -> %d GPUs", initial, e.pool.InUse())
	}
	// Let traffic stop; rates decay and the cluster shrinks.
	e.clock.Run()
	for i := 0; i < 12; i++ {
		e.clock.RunUntil(e.clock.Now() + 10*time.Second)
		if err := e.sched.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if e.pool.InUse() > initial+1 {
		t.Fatalf("scheduler did not scale down: still %d GPUs", e.pool.InUse())
	}
}

func TestPoolExhaustionDegradesGracefully(t *testing.T) {
	// Demand far above pool capacity: planning-time admission control
	// provisions the largest fraction that fits instead of failing, and
	// the runtime drop policy sheds the rest (§5).
	e := newEnv(t, nexusConfig(), 1)
	for i := 0; i < 4; i++ {
		if err := e.sched.AddSession(SessionSpec{
			ID:      fmt.Sprintf("s%d", i),
			ModelID: model.Darknet53,
			SLO:     200 * time.Millisecond, ExpectedRate: 500,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatalf("overload epoch failed instead of degrading: %v", err)
	}
	if e.pool.InUse() != 1 {
		t.Fatalf("in use = %d, want the whole 1-GPU pool", e.pool.InUse())
	}
	// The plan serves less than demanded (admission control at work).
	var planned float64
	for i := 0; i < 4; i++ {
		planned += e.sched.Plan().SessionRate(fmt.Sprintf("s%d", i))
	}
	if planned >= 2000 {
		t.Fatalf("planned %v r/s, expected scaled-down admission", planned)
	}
	if planned <= 0 {
		t.Fatal("nothing planned at all")
	}
}
