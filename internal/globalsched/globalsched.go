// Package globalsched implements the Nexus control plane (§5): the global
// scheduler that, every epoch, (1) re-derives latency splits for complex
// queries from observed workload statistics, (2) combines specialized
// models that share a prefix and SLO into prefix-batched units, (3) runs
// profile-guided squishy bin packing (or the batch-oblivious baseline), and
// (4) applies the plan — acquiring and releasing backends, loading models,
// and publishing routing tables to the frontends.
package globalsched

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"nexus/internal/backend"
	"nexus/internal/frontend"
	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/queryopt"
	"nexus/internal/scheduler"
	"nexus/internal/simclock"
	"nexus/internal/telemetry"
	"nexus/internal/trace"
)

// Pool grants and reclaims backend GPUs (the cluster resource manager the
// global scheduler talks to, §5).
type Pool interface {
	// Acquire returns a ready backend or an error when at capacity.
	Acquire() (string, *backend.Backend, error)
	// Release returns a backend to the pool.
	Release(id string)
	// Get returns an acquired backend by ID.
	Get(id string) *backend.Backend
	// InUse returns the number of acquired backends.
	InUse() int
	// Capacity returns the total number of grantable backends.
	Capacity() int
}

// SessionSpec declares a standalone session (model + SLO).
type SessionSpec struct {
	ID           string
	ModelID      string
	SLO          time.Duration
	ExpectedRate float64 // used until real traffic is observed
}

// QuerySpec declares a complex query with an expected root request rate.
type QuerySpec struct {
	Query        *queryopt.Query
	ExpectedRate float64
}

// Config selects control-plane behaviour; the booleans are the §7.3
// ablation switches.
type Config struct {
	Epoch         time.Duration // epoch length; 0 = 30s (§5)
	QueryAnalysis bool          // QA: DP latency splits vs even split
	PrefixBatch   bool          // PB: combine shared-prefix sessions
	Squishy       bool          // SS: squishy packing vs batch-oblivious
	Incremental   bool          // reuse the previous plan across epochs
	// ObliviousGPUs fixes the cluster size for the batch-oblivious
	// baseline (which cannot size itself). Required when !Squishy.
	ObliviousGPUs int
	// Headroom over-provisions for observed rates (default 1.1).
	Headroom float64
	// RateSmoothing is the EWMA weight of the newest observation (0..1,
	// default 0.7).
	RateSmoothing float64
	// MinPrefixLayers is the smallest shared prefix worth combining
	// (default: half the model depth).
	MinPrefixLayers int
	Sched           scheduler.Config
	// Epsilon for the query-split DP (0 = queryopt.DefaultEpsilon).
	Epsilon time.Duration
	// Overlap mirrors the runtime's CPU/GPU overlap setting: when false,
	// preprocessing is charged against the SLO during planning too.
	Overlap bool
	// CPUWorkers is the runtime's preprocessing pool size (default 5).
	CPUWorkers int
	// PlanningSlack is subtracted from every SLO before planning to cover
	// costs the batching profile does not capture (network hops, dispatch
	// granularity). Default 3ms.
	PlanningSlack time.Duration
	// StageHeadroom over-provisions non-root query stages (default 1.25):
	// their arrivals are batch-correlated bursts from upstream stages, not
	// smooth processes, so rate-proportional provisioning under-serves them.
	StageHeadroom float64
	// OnEpoch, when set, observes every completed epoch (for telemetry).
	OnEpoch func(epoch int, stats scheduler.MoveStats, gpusInUse int)
	// SpreadReplicas replicates plan nodes onto spare pool capacity so a
	// fixed-size cluster runs at full width. Leave false for elastic
	// deployments, where GPUs-in-use should track load (Figure 13).
	SpreadReplicas bool
	// Heartbeat enables failure detection: every acquired backend emits a
	// liveness beat at this period and the scheduler declares it dead after
	// LeaseMisses missed beats, repairing routes and acquiring a
	// replacement immediately (off-epoch). 0 disables detection — a dead
	// backend is then noticed only at the epoch boundary.
	Heartbeat time.Duration
	// LeaseMisses is how many consecutive beats may be missed before a
	// backend is declared dead (default 3).
	LeaseMisses int
	// OnFailure, when set, observes every declared backend failure.
	OnFailure func(backendID string, at time.Duration)
	// Audit, when set, receives per-epoch placement records and query
	// budget splits (the control-plane audit log).
	Audit *trace.Audit
	// PlanWallClock measures each epoch's real (wall-clock) planning time,
	// surfaced via LastPlanWall and the telemetry health report. Off by
	// default: wall time is nondeterministic, and determinism tests require
	// identical telemetry streams across runs.
	PlanWallClock bool
	// Shards >= 1 routes squishy planning through the sharded planner:
	// sessions partition deterministically across Shards concurrent
	// planners, with a cross-shard rebalance step. 0 (the default) keeps
	// the monolithic single-pass planner; Shards == 1 runs the sharded
	// machinery degenerately and produces byte-identical plans to it.
	Shards int
	// PlanHysteresis is the relative rate band within which a shard skips
	// re-packing and carries its plan forward (requires Shards >= 1;
	// 0 disables skipping). This is the splitHysteresis idiom applied to
	// arrival rates: small workload noise must not re-pack the cluster.
	PlanHysteresis float64
	// DeltaRouting pushes routing updates to frontends as per-session
	// deltas instead of full SetTable replacements. Frontends verify a
	// generation number and any mismatch (e.g. a local route repair after
	// a backend death) triggers a full resync push.
	DeltaRouting bool
	// RecoveryMaxRouteChanges rate-limits the first post-outage publish:
	// at most this many per-session route changes go out per push, the
	// remainder following in staged flushes, so the repair wave cannot
	// thrash every route at once. Requires DeltaRouting (the cap rides on
	// the delta diff); 0 disables the limit.
	RecoveryMaxRouteChanges int
}

// DefaultPlanningSlack covers round-trip dispatch latency plus margin.
const DefaultPlanningSlack = 3 * time.Millisecond

// DefaultEpoch matches the paper's epoch granularity.
const DefaultEpoch = 30 * time.Second

// Scheduler is the global scheduler.
type Scheduler struct {
	clock     *simclock.Clock
	pool      Pool
	frontends []*frontend.Frontend
	modelDB   *model.DB
	profiles  map[string]*profiler.Profile // base profiles by model ID
	cfg       Config

	sessions []SessionSpec
	queries  []QuerySpec

	rates       map[string]float64 // smoothed observed per session
	everyRates  bool               // true once real observations exist
	prevPlan    *scheduler.Plan
	nodeBackend map[string][]string // plan node ID -> replica backend IDs
	// combined holds this epoch's synthetic prefix-group profiles.
	combined map[string]*profiler.Profile
	// groups maps group session ID -> member session IDs.
	groups map[string][]string
	// groupParts holds each group's prefix/suffix execution profiles.
	groupParts map[string][2]*profiler.Profile

	epochs     int
	lastStats  scheduler.MoveStats
	ticker     *simclock.Ticker
	sessionSLO map[string]time.Duration // user-facing session -> current SLO

	// gammaEst smooths per-edge fan-out observations across epochs so the
	// latency-split DP does not chase workload noise.
	gammaEst map[string]float64
	// prevSplit provides hysteresis: a query keeps its split unless a new
	// one is meaningfully cheaper, avoiding oscillating reconfigurations
	// (the paper bounds reconfiguration frequency for the same reason, §5).
	prevSplit map[string]*queryopt.Split
	// adjBase caches the planning (CPU-adjusted) view of base profiles.
	adjBase map[string]*profiler.Profile
	// totalMoved accumulates SessionsMoved across incremental epochs.
	totalMoved int
	// lastDemand is the GPU count the last plan asked for before any
	// capacity-driven rate scaling (what the workload wanted, not what the
	// pool could grant).
	lastDemand int
	// lastPlanWall is the last epoch's wall-clock planning time (zero
	// unless Config.PlanWallClock).
	lastPlanWall time.Duration
	// lastPlannedRates remembers the rates the last batch-oblivious plan
	// was computed for (stability guard).
	lastPlannedRates map[string]float64

	// Sharded-planner state (Config.Shards >= 1).
	shardPlanner   *scheduler.ShardPlanner
	lastShardStats scheduler.ShardStats
	// Cumulative shard counters for telemetry.
	shardsReplanned int
	shardsSkipped   int
	crossShardMoves int

	// Delta-routing state (Config.DeltaRouting): the generation and table
	// of the last successful publish, plus push counters for telemetry.
	pubGen        uint64
	lastTable     frontend.RoutingTable
	deltaPushes   uint64
	fullPushes    uint64
	deltaSessions uint64

	// Failure detection state.
	lastBeat map[string]time.Duration // backend ID -> last heartbeat time
	monitor  *simclock.Ticker
	failures int

	// Plan-diff forensics state: the placement records of the last audited
	// epoch (nil until the first audit) and the failure count at that point,
	// so the next epoch's diff can be tagged with a recovery cause.
	lastAudited       []trace.PlacementRecord
	lastAuditFailures int
	// lastMemberUnit remembers the latest epoch's member session -> unit
	// mapping so emergency repairs can republish routes between epochs.
	lastMemberUnit map[string]string

	// Degraded-mode state (see degraded.go). down freezes planning, route
	// pushes, and lease monitoring (a scheduler outage); cutCtrl drops
	// beats from control-partitioned backends; lastInc records each
	// adopted backend's incarnation so outage recovery and partition heals
	// can reject stale echoes of instances that crashed in between.
	down    bool
	cutCtrl map[string]bool
	lastInc map[string]uint64
	// recoveryPending arms the rate-limited publish for the first
	// post-outage plan; recoveryTarget is the full table the staged
	// flushes converge to, and recoveryFlushArmed dedups flush timers.
	recoveryPending    bool
	recoveryTarget     frontend.RoutingTable
	recoveryFlushArmed bool
	// Degraded counters for telemetry.
	recoveries   int
	staleEchoes  int
	reregistered int
	cappedPushes int
}

// splitHysteresis is the relative improvement a new latency split must
// offer before replacing the current one.
const splitHysteresis = 0.05

// New creates a global scheduler.
func New(clock *simclock.Clock, pool Pool, frontends []*frontend.Frontend,
	modelDB *model.DB, profiles map[string]*profiler.Profile, cfg Config) *Scheduler {
	if cfg.Epoch <= 0 {
		cfg.Epoch = DefaultEpoch
	}
	if cfg.Headroom <= 0 {
		cfg.Headroom = 1.1
	}
	if cfg.RateSmoothing <= 0 || cfg.RateSmoothing > 1 {
		cfg.RateSmoothing = 0.7
	}
	return &Scheduler{
		clock: clock, pool: pool, frontends: frontends,
		modelDB: modelDB, profiles: profiles, cfg: cfg,
		rates:       make(map[string]float64),
		nodeBackend: make(map[string][]string),
		gammaEst:    make(map[string]float64),
		prevSplit:   make(map[string]*queryopt.Split),
		lastBeat:    make(map[string]time.Duration),
		cutCtrl:     make(map[string]bool),
		lastInc:     make(map[string]uint64),
	}
}

// Failures returns how many backends have been declared dead so far.
func (s *Scheduler) Failures() int { return s.failures }

// AddSession declares a standalone session.
func (s *Scheduler) AddSession(spec SessionSpec) error {
	if spec.ID == "" || spec.ModelID == "" || spec.SLO <= 0 {
		return fmt.Errorf("globalsched: invalid session spec %+v", spec)
	}
	if _, ok := s.profiles[spec.ModelID]; !ok {
		return fmt.Errorf("globalsched: no profile for model %s", spec.ModelID)
	}
	s.sessions = append(s.sessions, spec)
	return nil
}

// AddQuery declares a complex query.
func (s *Scheduler) AddQuery(spec QuerySpec) error {
	if err := spec.Query.Validate(); err != nil {
		return err
	}
	for _, n := range spec.Query.Nodes() {
		if _, ok := s.profiles[n.ModelID]; !ok {
			return fmt.Errorf("globalsched: no profile for model %s (query %s)", n.ModelID, spec.Query.Name)
		}
	}
	s.queries = append(s.queries, spec)
	return nil
}

// Epochs returns how many epochs have run.
func (s *Scheduler) Epochs() int { return s.epochs }

// LastMoveStats returns the disturbance of the latest incremental epoch.
func (s *Scheduler) LastMoveStats() scheduler.MoveStats { return s.lastStats }

// TotalMoved returns cumulative session movements across epochs.
func (s *Scheduler) TotalMoved() int { return s.totalMoved }

// Plan returns the current cluster plan (nil before the first epoch).
func (s *Scheduler) Plan() *scheduler.Plan { return s.prevPlan }

// Assignments returns the current node -> replica backend IDs mapping.
func (s *Scheduler) Assignments() map[string][]string {
	out := make(map[string][]string, len(s.nodeBackend))
	for k, v := range s.nodeBackend {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// SessionSLO returns the current latency budget of a user-facing session
// (for query stages, the adaptive per-stage split of the latest epoch).
func (s *Scheduler) SessionSLO(id string) (time.Duration, bool) {
	slo, ok := s.sessionSLO[id]
	return slo, ok
}

// Start schedules RunEpoch every epoch period and, when failure detection
// is enabled, the lease monitor every heartbeat period. The first epoch
// must be run explicitly (deployments call RunEpoch once before offering
// traffic).
func (s *Scheduler) Start() {
	s.ticker = s.clock.StartTicker(s.cfg.Epoch, func() {
		// Epoch failures (e.g. pool exhausted during a burst) leave the
		// previous plan serving; the next epoch retries.
		_ = s.RunEpoch()
	})
	if s.cfg.Heartbeat > 0 {
		s.monitor = s.clock.StartTicker(s.cfg.Heartbeat, s.checkLeases)
	}
}

// Stop halts epoch scheduling, lease monitoring, and the backends'
// heartbeat tickers (otherwise a drain of the event queue after the run
// would never terminate).
func (s *Scheduler) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
	}
	if s.monitor != nil {
		s.monitor.Stop()
	}
	beIDs := make([]string, 0, len(s.lastBeat))
	for beID := range s.lastBeat {
		beIDs = append(beIDs, beID)
	}
	sort.Strings(beIDs)
	for _, beID := range beIDs {
		if be := s.pool.Get(beID); be != nil {
			be.StopHeartbeat()
		}
	}
}

func (s *Scheduler) leaseMisses() int {
	if s.cfg.LeaseMisses > 0 {
		return s.cfg.LeaseMisses
	}
	return 3
}

// adopt starts liveness monitoring on a newly acquired backend: the beat
// timestamp is seeded with the acquisition time (a grace period covering
// model loads) and the backend begins heartbeating into the scheduler. The
// backend's incarnation is recorded regardless of heartbeating, so outage
// recovery can tell a surviving instance from a stale echo that crashed
// and restarted in between.
func (s *Scheduler) adopt(beID string) {
	be := s.pool.Get(beID)
	if be == nil {
		return
	}
	s.lastInc[beID] = be.Incarnation()
	if s.cfg.Heartbeat <= 0 {
		return
	}
	s.lastBeat[beID] = s.clock.Now()
	be.StartHeartbeat(s.cfg.Heartbeat, s.beat)
}

// beat receives one backend liveness beat. Beats are lost while the
// scheduler is down (an outage drops them on the floor) and while the
// backend's control link is cut (an asymmetric partition: the node keeps
// serving, but the scheduler can't hear it).
func (s *Scheduler) beat(beID string) {
	if s.down || s.cutCtrl[beID] {
		return
	}
	s.lastBeat[beID] = s.clock.Now()
}

// checkLeases runs every heartbeat period: any assigned backend whose last
// beat is older than the lease (LeaseMisses beats) is declared dead and
// repaired around immediately, without waiting for the epoch boundary.
func (s *Scheduler) checkLeases() {
	if s.down {
		return
	}
	lease := time.Duration(s.leaseMisses()) * s.cfg.Heartbeat
	now := s.clock.Now()
	nodeIDs := make([]string, 0, len(s.nodeBackend))
	for nodeID := range s.nodeBackend {
		nodeIDs = append(nodeIDs, nodeID)
	}
	sort.Strings(nodeIDs)
	for _, nodeID := range nodeIDs {
		for _, beID := range append([]string(nil), s.nodeBackend[nodeID]...) {
			last, ok := s.lastBeat[beID]
			if !ok || now-last <= lease {
				continue
			}
			s.handleFailure(nodeID, beID)
		}
	}
}

// handleFailure is the emergency recovery path for one dead backend:
// (a) every frontend's routing table is repaired immediately, shifting the
// dead replica's traffic share onto survivors; (b) a replacement GPU is
// acquired from the pool, configured with the dead node's plan units, and
// adopted; (c) repaired routes are republished. Requests already queued or
// in flight on the dead node were accounted as failures when it crashed.
func (s *Scheduler) handleFailure(nodeID, beID string) {
	s.failures++
	delete(s.lastBeat, beID)
	delete(s.lastInc, beID)
	beIDs := s.nodeBackend[nodeID]
	kept := beIDs[:0:0]
	for _, id := range beIDs {
		if id != beID {
			kept = append(kept, id)
		}
	}
	s.nodeBackend[nodeID] = kept
	s.pool.Release(beID) // parks the dead node outside the free list
	for _, fe := range s.frontends {
		fe.RemoveBackend(beID)
	}
	if s.prevPlan != nil {
		if g := s.planNode(nodeID); g != nil {
			s.replaceReplica(nodeID, g)
		}
		_ = s.publishRoutes(s.prevPlan)
	}
	if s.cfg.Audit != nil {
		// Off-epoch forensics edge: what the emergency path changed, without
		// waiting for the next epoch's full placement diff.
		changes := []trace.PlanChange{{Kind: "replica-removed", Node: nodeID, From: beID}}
		for _, id := range s.nodeBackend[nodeID] {
			found := false
			for _, old := range kept {
				if old == id {
					found = true
					break
				}
			}
			if !found {
				changes = append(changes, trace.PlanChange{Kind: "replica-added", Node: nodeID, To: id})
			}
		}
		s.cfg.Audit.RecordPlanDiff(trace.PlanDiffRecord{
			Epoch: s.epochs, AtMS: trace.MS(s.clock.Now()),
			Cause: "recovery", Changes: changes,
		})
	}
	if s.cfg.OnFailure != nil {
		s.cfg.OnFailure(beID, s.clock.Now())
	}
}

// planNode returns the current plan's node by ID (nil if gone).
func (s *Scheduler) planNode(nodeID string) *scheduler.GPUPlan {
	if s.prevPlan == nil {
		return nil
	}
	for i := range s.prevPlan.GPUs {
		if s.prevPlan.GPUs[i].ID == nodeID {
			return &s.prevPlan.GPUs[i]
		}
	}
	return nil
}

// replaceReplica acquires and configures a replacement backend for a plan
// node (best effort: an exhausted pool leaves the node to the survivors
// until the next epoch).
func (s *Scheduler) replaceReplica(nodeID string, g *scheduler.GPUPlan) {
	newID, be, err := s.pool.Acquire()
	if err != nil {
		return
	}
	units, uerr := s.unitsFor(g)
	if uerr != nil || be.Configure(units) != nil {
		s.pool.Release(newID)
		return
	}
	s.nodeBackend[nodeID] = append(s.nodeBackend[nodeID], newID)
	s.adopt(newID)
}

// RunEpoch performs one control-plane cycle. During a scheduler outage it
// is a no-op: the data plane keeps serving on its last routing table.
func (s *Scheduler) RunEpoch() error {
	if s.down {
		return nil
	}
	var wallStart time.Time
	if s.cfg.PlanWallClock {
		wallStart = time.Now()
	}
	s.epochs++
	s.lastStats = scheduler.MoveStats{}
	// Shed replicas that died since the last epoch before planning, so the
	// packer sees the shrunken grantable capacity and the assignment loops
	// below replace the dead nodes.
	s.sweepDead()
	s.observeRates()
	sessions, routingMembers, err := s.buildSessions()
	if err != nil {
		return err
	}
	plan, err := s.plan(sessions)
	if err != nil {
		return err
	}
	if err := s.apply(plan, routingMembers); err != nil {
		return err
	}
	s.prevPlan = plan
	if s.cfg.PlanWallClock {
		s.lastPlanWall = time.Since(wallStart)
	}
	s.auditEpoch(plan)
	if s.cfg.OnEpoch != nil {
		s.cfg.OnEpoch(s.epochs, s.lastStats, s.pool.InUse())
	}
	return nil
}

// auditEpoch records the applied plan's placements in the audit log: one
// record per plan node with its duty cycle, occupancy, replica backends,
// and the per-session allocations (including merged-duty-cycle membership
// for prefix groups).
func (s *Scheduler) auditEpoch(plan *scheduler.Plan) {
	if s.cfg.Audit == nil {
		return
	}
	now := trace.MS(s.clock.Now())
	profiles := s.planProfiles()
	recs := make([]trace.PlacementRecord, 0, len(plan.GPUs))
	for _, g := range plan.GPUs {
		rec := trace.PlacementRecord{
			Epoch: s.epochs, AtMS: now, Node: g.ID,
			Backends:  append([]string(nil), s.nodeBackend[g.ID]...),
			DutyMS:    trace.MS(g.Duty),
			Saturated: g.Saturated,
			Spatial:   g.Spatial,
			Shard:     shardTag(g.ID),
		}
		if occ, err := g.Occupancy(profiles); err == nil {
			rec.Occupancy = occ
		}
		for _, a := range g.Allocs {
			rec.Units = append(rec.Units, trace.PlacedUnit{
				Unit: a.SessionID, Session: a.SessionID, Batch: a.Batch, Rate: a.Rate,
				Slice:   a.Slice,
				Members: append([]string(nil), s.groups[a.SessionID]...),
			})
		}
		s.cfg.Audit.RecordPlacement(rec)
		recs = append(recs, rec)
	}
	s.auditPlanDiff(now, recs)
}

// GPUsDemanded returns the GPU count the last plan wanted before any
// capacity-driven rate scaling.
func (s *Scheduler) GPUsDemanded() int { return s.lastDemand }

// LastPlanWall returns the last epoch's wall-clock planning time (zero
// unless Config.PlanWallClock).
func (s *Scheduler) LastPlanWall() time.Duration { return s.lastPlanWall }

// Explain builds the per-epoch scheduler health report: one entry per
// (session, node) allocation of the current plan with its batch, rate
// share, node occupancy/headroom, and a rendered reason; plus the
// demanded-vs-allocated GPU counts and move stats. The telemetry collector
// stamps it with the alerts firing at plan time.
func (s *Scheduler) Explain() telemetry.HealthReport {
	now := s.clock.Now()
	rep := telemetry.HealthReport{
		Epoch: s.epochs, At: now, AtMS: telemetry.MS(now),
		GPUsDemanded:    s.lastDemand,
		GPUsAllocated:   s.pool.InUse(),
		GPUsCapacity:    s.pool.Capacity(),
		SessionsMoved:   s.lastStats.SessionsMoved,
		PlanWallMS:      telemetry.MS(s.lastPlanWall),
		ShardsReplanned: s.lastShardStats.Replanned,
		ShardsSkipped:   s.lastShardStats.Skipped,
		CrossShardMoves: s.lastShardStats.CrossShardMoves,
	}
	if s.prevPlan == nil {
		return rep
	}
	profiles := s.planProfiles()
	for _, g := range s.prevPlan.GPUs {
		occ, occErr := g.Occupancy(profiles)
		replicas := len(s.nodeBackend[g.ID])
		for _, a := range g.Allocs {
			reason := fmt.Sprintf("%.1f r/s at batch %d on %s (duty %.1fms, occupancy %.0f%%, headroom %.0f%%, %d replica(s))",
				a.Rate, a.Batch, g.ID, telemetry.MS(g.Duty), 100*occ, 100*(1-occ), replicas)
			if occErr != nil {
				reason = fmt.Sprintf("%.1f r/s at batch %d on %s (%d replica(s))", a.Rate, a.Batch, g.ID, replicas)
			}
			if a.Slice > 0 {
				reason += fmt.Sprintf(", pinned to a %.0f%% compute slice", 100*a.Slice)
			}
			if members := s.groups[a.SessionID]; len(members) > 0 {
				reason += fmt.Sprintf(", prefix group of %d", len(members))
			}
			rep.Allocs = append(rep.Allocs, telemetry.SessionAlloc{
				Session: a.SessionID, Node: g.ID, Replicas: replicas,
				Batch: a.Batch, Rate: a.Rate, DutyMS: telemetry.MS(g.Duty),
				Occupancy: occ, Headroom: 1 - occ, Reason: reason,
				Shard: shardTag(g.ID),
			})
		}
	}
	sort.Slice(rep.Allocs, func(i, j int) bool {
		if rep.Allocs[i].Session != rep.Allocs[j].Session {
			return rep.Allocs[i].Session < rep.Allocs[j].Session
		}
		return rep.Allocs[i].Node < rep.Allocs[j].Node
	})
	return rep
}

// observeRates folds the frontends' observed rates into the EWMA state.
func (s *Scheduler) observeRates() {
	merged := make(map[string]float64)
	for _, fe := range s.frontends {
		for sid, r := range fe.ObservedRates() {
			merged[sid] += r
		}
	}
	var total float64
	for _, r := range merged {
		total += r
	}
	a := s.cfg.RateSmoothing
	if total == 0 {
		if s.everyRates {
			// Traffic stopped entirely: decay every estimate so the
			// cluster can shrink.
			for sid := range s.rates {
				s.rates[sid] *= 1 - a
			}
		}
		return // before any observation: keep expected rates
	}
	s.everyRates = true
	for sid, r := range merged {
		if _, seen := s.rates[sid]; !seen {
			// Seed the EWMA with the first observation; starting from zero
			// would underprovision the next epoch by (1-a).
			s.rates[sid] = r
			continue
		}
		s.rates[sid] = a*r + (1-a)*s.rates[sid]
	}
	// Decay sessions that received no traffic this epoch.
	for sid := range s.rates {
		if _, ok := merged[sid]; !ok {
			s.rates[sid] *= 1 - a
		}
	}
}

// minSessionRate keeps declared sessions deployed even when observations
// dip to zero: a session scheduled at rate 0 would vanish from the routing
// table and its next request would be unroutable.
const minSessionRate = 0.1

// rateOf returns the planning rate for a user-facing session.
func (s *Scheduler) rateOf(sid string, expected float64) float64 {
	r := expected
	if s.everyRates {
		r = s.rates[sid]
	}
	r *= s.cfg.Headroom
	if r < minSessionRate {
		r = minSessionRate
	}
	return r
}

// buildSessions produces the scheduler sessions for this epoch and the
// member map for routing: member session ID -> unit (group or self) ID.
func (s *Scheduler) buildSessions() ([]scheduler.Session, map[string]string, error) {
	var out []scheduler.Session
	slack := s.slack()
	for _, spec := range s.sessions {
		slo := spec.SLO - slack
		if slo < spec.SLO/2 {
			slo = spec.SLO / 2
		}
		out = append(out, scheduler.Session{
			ID:      spec.ID,
			ModelID: spec.ModelID,
			SLO:     slo,
			Rate:    s.rateOf(spec.ID, spec.ExpectedRate),
		})
	}
	for _, qs := range s.queries {
		qSessions, err := s.querySessions(qs)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, qSessions...)
	}
	// Record user-facing session SLOs (stage budgets for queries) before
	// grouping; the data plane derives per-request deadlines from these.
	s.sessionSLO = make(map[string]time.Duration, len(out))
	for _, sess := range out {
		s.sessionSLO[sess.ID] = sess.SLO
	}
	// Prefix grouping.
	s.combined = make(map[string]*profiler.Profile)
	s.groups = make(map[string][]string)
	s.groupParts = make(map[string][2]*profiler.Profile)
	memberUnit := make(map[string]string)
	for _, sess := range out {
		memberUnit[sess.ID] = sess.ID
	}
	if !s.cfg.PrefixBatch {
		return out, memberUnit, nil
	}
	grouped, err := s.groupPrefixes(out, memberUnit)
	if err != nil {
		return nil, nil, err
	}
	return grouped, memberUnit, nil
}

// querySessions derives per-stage sessions for a query, adapting gamma
// estimates and the latency split to the observed workload (§6.2).
func (s *Scheduler) querySessions(qs QuerySpec) ([]scheduler.Session, error) {
	q := qs.Query
	rootID := q.Name + "/" + q.Root.Name
	rootRate := s.rateOf(rootID, qs.ExpectedRate)
	if rootRate <= 0 {
		rootRate = 0.001 // keep the query deployed at negligible cost
	}
	// Adapt per-edge gammas from observed stage rates, and plan against
	// the slack-reduced SLO with CPU-adjusted profiles.
	adapted := s.adaptGammas(q)
	if slack := s.slack(); adapted.SLO > 2*slack {
		adapted.SLO -= slack
	}
	planProf := s.basePlanProfiles()
	var split *queryopt.Split
	var err error
	if s.cfg.QueryAnalysis {
		split, err = queryopt.Optimize(adapted, rootRate, planProf, s.cfg.Epsilon, s.cfg.Sched)
		if err != nil {
			return nil, err
		}
		// Hysteresis: keep the previous split unless the new one is
		// meaningfully cheaper at current rates, so small workload noise
		// does not trigger cluster-wide reconfigurations.
		if prev := s.prevSplit[q.Name]; prev != nil {
			prevCost, cerr := queryopt.SplitCost(adapted, rootRate, prev, planProf, s.cfg.Sched)
			newCost, nerr := queryopt.SplitCost(adapted, rootRate, split, planProf, s.cfg.Sched)
			if cerr == nil && nerr == nil && prevCost < (1+splitHysteresis)*newCost {
				split = prev
			}
		}
		s.prevSplit[q.Name] = split
	} else {
		split, err = queryopt.EvenSplit(adapted)
		if err != nil {
			return nil, err
		}
	}
	if s.cfg.Audit != nil {
		method := "even"
		if s.cfg.QueryAnalysis {
			method = "dp"
		}
		budgets := make(map[string]float64, len(split.Budgets))
		for stage, b := range split.Budgets {
			budgets[stage] = trace.MS(b)
		}
		s.cfg.Audit.RecordSplit(trace.SplitRecord{
			Epoch: s.epochs, Query: q.Name, Method: method,
			GPUs: split.GPUs, Budgets: budgets,
		})
	}
	sessions, serr := queryopt.Sessions(adapted, rootRate, split)
	if serr != nil {
		return nil, serr
	}
	// Non-root stages receive their work in bursts aligned with upstream
	// batch completions; provision extra headroom for them.
	stageHeadroom := s.cfg.StageHeadroom
	if stageHeadroom <= 0 {
		stageHeadroom = 1.25
	}
	for i := range sessions {
		if sessions[i].ID != rootID { // rootID declared at the top of querySessions
			sessions[i].Rate *= stageHeadroom
		}
	}
	return sessions, nil
}

// adaptGammas rebuilds the query tree with gammas estimated from observed
// stage rates where available.
func (s *Scheduler) adaptGammas(q *queryopt.Query) *queryopt.Query {
	if !s.everyRates {
		return q
	}
	var cloneNode func(n *queryopt.Node) *queryopt.Node
	cloneNode = func(n *queryopt.Node) *queryopt.Node {
		nn := &queryopt.Node{Name: n.Name, ModelID: n.ModelID}
		parentRate := s.rates[q.Name+"/"+n.Name]
		for _, e := range n.Edges {
			gamma := e.Gamma
			key := q.Name + "/" + n.Name + ">" + e.Child.Name
			childRate := s.rates[q.Name+"/"+e.Child.Name]
			if parentRate > 0.5 && childRate > 0 {
				obs := childRate / parentRate
				// Smooth across epochs so the DP sees a stable estimate.
				if prev, ok := s.gammaEst[key]; ok {
					obs = 0.3*obs + 0.7*prev
				}
				s.gammaEst[key] = obs
				gamma = obs
			}
			nn.Edges = append(nn.Edges, queryopt.Edge{Gamma: gamma, Child: cloneNode(e.Child)})
		}
		return nn
	}
	return &queryopt.Query{Name: q.Name, SLO: q.SLO, Root: cloneNode(q.Root)}
}

// groupPrefixes combines sessions of specialized sibling models with equal
// SLOs into prefix-batched group sessions (§6.3).
func (s *Scheduler) groupPrefixes(sessions []scheduler.Session, memberUnit map[string]string) ([]scheduler.Session, error) {
	// Bucket by (SLO, base family).
	type bucketKey struct {
		slo  time.Duration
		base string
	}
	buckets := make(map[bucketKey][]scheduler.Session)
	var order []bucketKey
	for _, sess := range sessions {
		key := bucketKey{sess.SLO, profiler.BaseOf(sess.ModelID)}
		if _, ok := buckets[key]; !ok {
			order = append(order, key)
		}
		buckets[key] = append(buckets[key], sess)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].base != order[j].base {
			return order[i].base < order[j].base
		}
		return order[i].slo < order[j].slo
	})
	var out []scheduler.Session
	for _, key := range order {
		members := buckets[key]
		if len(members) < 2 {
			out = append(out, members...)
			continue
		}
		// Confirm a real shared prefix via the model DB.
		ids := make([]string, len(members))
		for i, m := range members {
			ids[i] = m.ModelID
		}
		minShared := s.cfg.MinPrefixLayers
		baseModel, err := s.modelDB.Get(key.base)
		if err != nil {
			// Models not in the DB (synthetic tests): skip grouping.
			out = append(out, members...)
			continue
		}
		if minShared <= 0 {
			minShared = baseModel.NumLayers() / 2
		}
		pgs, err := s.modelDB.PrefixGroups(dedup(ids), minShared)
		if err != nil {
			return nil, err
		}
		// Only group when all members share one prefix group (the common
		// case: one specialized family per application).
		if len(pgs) != 1 || len(pgs[0].ModelIDs) < 2 {
			out = append(out, members...)
			continue
		}
		prefixLen := pgs[0].PrefixLen
		suffixFrac := float64(baseModel.SuffixFLOPs(prefixLen)) / float64(baseModel.FLOPs())
		baseProfile, ok := s.profiles[key.base]
		if !ok {
			baseProfile = s.profiles[members[0].ModelID]
		}
		comb, err := profiler.CombinedProfile(baseProfile, suffixFrac, len(members))
		if err != nil {
			return nil, err
		}
		groupID := fmt.Sprintf("pg/%s/%dms", key.base, key.slo.Milliseconds())
		comb.ModelID = groupID
		s.combined[groupID] = comb
		pre, suf := baseProfile.Split(1 - suffixFrac)
		s.groupParts[groupID] = [2]*profiler.Profile{&pre, &suf}
		var rate float64
		var memberIDs []string
		for _, m := range members {
			rate += m.Rate
			memberIDs = append(memberIDs, m.ID)
			memberUnit[m.ID] = groupID
		}
		s.groups[groupID] = memberIDs
		out = append(out, scheduler.Session{
			ID: groupID, ModelID: groupID, SLO: key.slo, Rate: rate,
		})
	}
	return out, nil
}

func dedup(ids []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// profileOf resolves a model ID against combined and base profiles,
// returning the RAW profile (actual execution costs) for the runtime.
func (s *Scheduler) profileOf(modelID string) (*profiler.Profile, error) {
	if p, ok := s.combined[modelID]; ok {
		return p, nil
	}
	if p, ok := s.profiles[modelID]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("globalsched: no profile for %s", modelID)
}

// slack returns the planning slack subtracted from SLOs.
func (s *Scheduler) slack() time.Duration {
	switch {
	case s.cfg.PlanningSlack < 0:
		return 0
	case s.cfg.PlanningSlack == 0:
		return DefaultPlanningSlack
	default:
		return s.cfg.PlanningSlack
	}
}

// cpuOverhead is the per-item CPU cost the pipeline cannot hide from the
// SLO: postprocessing always; preprocessing too without overlap (§6.3).
func (s *Scheduler) cpuOverhead(p *profiler.Profile) time.Duration {
	w := s.cfg.CPUWorkers
	if w <= 0 {
		w = 5
	}
	oh := p.PostprocCPU / time.Duration(w)
	if !s.cfg.Overlap {
		oh += p.PreprocCPU / time.Duration(w)
	}
	return oh
}

// planProfile returns the planning view of a profile: batch latencies
// inflated by unhideable CPU work, so plans hold up at runtime.
func (s *Scheduler) planProfile(p *profiler.Profile) *profiler.Profile {
	return p.WithCPUOverhead(s.cpuOverhead(p))
}

// basePlanProfiles returns (and caches) the adjusted base-profile map used
// by the latency-split DP.
func (s *Scheduler) basePlanProfiles() map[string]*profiler.Profile {
	if s.adjBase == nil {
		s.adjBase = make(map[string]*profiler.Profile, len(s.profiles))
		for k, v := range s.profiles {
			s.adjBase[k] = s.planProfile(v)
		}
	}
	return s.adjBase
}

// planProfiles builds the adjusted profile map (base + this epoch's
// combined prefix groups) for the packer.
func (s *Scheduler) planProfiles() map[string]*profiler.Profile {
	m := make(map[string]*profiler.Profile, len(s.profiles)+len(s.combined))
	for k, v := range s.basePlanProfiles() {
		m[k] = v
	}
	for k, v := range s.combined {
		m[k] = s.planProfile(v)
	}
	return m
}

// plan runs the packing algorithm selected by the config.
func (s *Scheduler) plan(sessions []scheduler.Session) (*scheduler.Plan, error) {
	profiles := s.planProfiles()
	if !s.cfg.Squishy {
		if s.cfg.ObliviousGPUs < 1 {
			return nil, fmt.Errorf("globalsched: batch-oblivious mode needs ObliviousGPUs")
		}
		// Stability: container placements only move when the workload has
		// changed materially. Rate noise must not reshuffle containers —
		// every move reloads models and drops queued requests.
		if s.prevPlan != nil && !ratesChangedMaterially(s.lastPlannedRates, sessions) {
			s.lastDemand = s.prevPlan.GPUCount()
			return s.prevPlan, nil
		}
		plan, err := scheduler.BatchOblivious(sessions, profiles, s.cfg.ObliviousGPUs, s.cfg.Sched)
		if err != nil {
			return nil, err
		}
		for i := range plan.GPUs {
			plan.GPUs[i].ID = fmt.Sprintf("n%d", i)
		}
		s.lastDemand = plan.GPUCount()
		s.lastPlannedRates = make(map[string]float64, len(sessions))
		for _, sess := range sessions {
			s.lastPlannedRates[sess.ID] = sess.Rate
		}
		return plan, nil
	}
	if s.cfg.Shards >= 1 {
		return s.planSharded(sessions, profiles)
	}
	// Admission control at planning time: when demand exceeds the pool,
	// provision for the largest rate fraction that fits and let the
	// runtime's drop policy shed the excess (§5 "Nexus relies on admission
	// control that drops excessive requests").
	capacity := s.pool.Capacity()
	scaled := sessions
	for iter := 0; ; iter++ {
		plan, err := s.packOnce(scaled, profiles)
		if err != nil {
			return nil, err
		}
		if iter == 0 {
			// Demand is what the unscaled workload asked for, recorded
			// before admission control shrinks rates to fit the pool.
			s.lastDemand = plan.GPUCount()
		}
		if capacity <= 0 || plan.GPUCount() <= capacity {
			return plan, nil
		}
		if iter >= 20 {
			return nil, fmt.Errorf("globalsched: demand needs %d GPUs, pool has %d", plan.GPUCount(), capacity)
		}
		shrink := 0.97 * float64(capacity) / float64(plan.GPUCount())
		next := make([]scheduler.Session, len(scaled))
		copy(next, scaled)
		for i := range next {
			next[i].Rate *= shrink
		}
		scaled = next
	}
}

// planSharded is the sharded counterpart of the admission-control loop:
// each pass partitions the (possibly rate-scaled) sessions across the
// shard planners; re-iterations force every shard dirty, since globally
// scaled rates must reach shards the hysteresis band would otherwise skip.
// Only the accepted pass is committed as the next epoch's baseline.
func (s *Scheduler) planSharded(sessions []scheduler.Session, profiles map[string]*profiler.Profile) (*scheduler.Plan, error) {
	if s.shardPlanner == nil || s.shardPlanner.Shards() != s.cfg.Shards {
		s.shardPlanner = scheduler.NewShardPlanner(s.cfg.Shards)
	}
	capacity := s.pool.Capacity()
	scaled := sessions
	for iter := 0; ; iter++ {
		res, err := s.shardPlanner.Plan(scaled, profiles, s.cfg.Sched, scheduler.ShardOpts{
			// As in packOnce: incremental reuse is temporal-only.
			Incremental: s.cfg.Incremental && s.cfg.Sched.Placement == scheduler.PlaceTemporal,
			Hysteresis:  s.cfg.PlanHysteresis,
			Force:       iter > 0,
			WallClock:   s.cfg.PlanWallClock,
		})
		if err != nil {
			return nil, err
		}
		s.lastStats = res.Stats.MoveStats
		s.totalMoved += res.Stats.SessionsMoved
		if iter == 0 {
			s.lastDemand = res.Plan.GPUCount()
		}
		if capacity <= 0 || res.Plan.GPUCount() <= capacity {
			s.shardPlanner.Commit(res)
			s.lastShardStats = res.Stats
			s.shardsReplanned += res.Stats.Replanned
			s.shardsSkipped += res.Stats.Skipped
			s.crossShardMoves += res.Stats.CrossShardMoves
			return res.Plan, nil
		}
		if iter >= 20 {
			return nil, fmt.Errorf("globalsched: demand needs %d GPUs, pool has %d", res.Plan.GPUCount(), capacity)
		}
		shrink := 0.97 * float64(capacity) / float64(res.Plan.GPUCount())
		next := make([]scheduler.Session, len(scaled))
		copy(next, scaled)
		for i := range next {
			next[i].Rate *= shrink
		}
		scaled = next
	}
}

// LastShardStats returns the accepted sharded pass of the latest epoch
// (zero value when Config.Shards == 0).
func (s *Scheduler) LastShardStats() scheduler.ShardStats { return s.lastShardStats }

// ShardTotals returns cumulative shard-planner counters: shards replanned,
// shards skipped by the hysteresis band, and sessions migrated across
// shards by the rebalance step.
func (s *Scheduler) ShardTotals() (replanned, skipped, crossMoves int) {
	return s.shardsReplanned, s.shardsSkipped, s.crossShardMoves
}

// RoutePushStats returns cumulative routing-publish counters: delta pushes
// applied, full-table pushes (initial publishes and generation-mismatch
// resyncs), and the total per-session entries carried by deltas.
func (s *Scheduler) RoutePushStats() (delta, full, sessions uint64) {
	return s.deltaPushes, s.fullPushes, s.deltaSessions
}

func (s *Scheduler) packOnce(sessions []scheduler.Session, profiles map[string]*profiler.Profile) (*scheduler.Plan, error) {
	// Incremental planning reuses prior shared nodes and does not understand
	// slice-pinned placements; spatial and hybrid configs always full-pack.
	if s.cfg.Incremental && s.prevPlan != nil && s.cfg.Sched.Placement == scheduler.PlaceTemporal {
		plan, stats, err := scheduler.Incremental(s.prevPlan, sessions, profiles, s.cfg.Sched)
		if err != nil {
			return nil, err
		}
		s.lastStats = stats
		s.totalMoved += stats.SessionsMoved
		return plan, nil
	}
	return scheduler.Pack(sessions, profiles, s.cfg.Sched)
}

// unitsFor builds the backend units for one plan node.
func (s *Scheduler) unitsFor(g *scheduler.GPUPlan) ([]backend.Unit, error) {
	var units []backend.Unit
	for _, a := range g.Allocs {
		p, err := s.profileOf(a.ModelID)
		if err != nil {
			return nil, err
		}
		unit := backend.Unit{
			ID:          a.SessionID,
			Profile:     p,
			TargetBatch: a.Batch,
			Members:     s.groups[a.SessionID],
		}
		if a.Slice > 0 {
			// Spatial placement: the unit runs pinned to a compute slice.
			// Scale the profile for the slice alone (co-residency slowdown
			// is charged dynamically by the device as co-residents run).
			unit.Slice = a.Slice
			unit.Profile = p.SliceProfile(a.Slice, 0)
		}
		if parts, ok := s.groupParts[a.SessionID]; ok {
			unit.Prefix, unit.Suffix = parts[0], parts[1]
		}
		units = append(units, unit)
	}
	return units, nil
}

// publishRoutes derives the routing table from the plan and the current
// node -> backend assignment and pushes it to every frontend. Each unit's
// traffic splits evenly across its node's replica backends.
func (s *Scheduler) publishRoutes(plan *scheduler.Plan) error {
	unitWeights := make(map[string][]frontend.Route)
	for _, g := range plan.GPUs {
		beIDs := s.nodeBackend[g.ID]
		for _, beID := range beIDs {
			for _, a := range g.Allocs {
				unitWeights[a.SessionID] = append(unitWeights[a.SessionID], frontend.Route{
					BackendID: beID, UnitID: a.SessionID,
					Weight: a.Rate/float64(len(beIDs)) + 1e-9,
				})
			}
		}
	}
	table := frontend.RoutingTable{}
	for member, unit := range s.lastMemberUnit {
		if routes := unitWeights[unit]; len(routes) > 0 {
			table[member] = routes
		}
	}
	if !s.cfg.DeltaRouting {
		for _, fe := range s.frontends {
			if err := fe.SetTable(table); err != nil {
				return err
			}
		}
		return nil
	}
	return s.publishDelta(table)
}

// publishDelta pushes the new routing table as a per-session delta against
// the last published generation. Frontends that diverged (a local route
// repair after a backend death bumps their generation) reject the delta
// and receive a full resync at the new generation. An empty delta means
// every frontend already holds exactly this table — the common steady-state
// epoch — and nothing is pushed at all; route leases are still renewed, so
// an idle but healthy scheduler keeps the data plane's leases alive.
func (s *Scheduler) publishDelta(table frontend.RoutingTable) error {
	set, remove := tableDiff(s.lastTable, table)
	if s.lastTable != nil && len(set) == 0 && len(remove) == 0 {
		s.lastTable = table
		s.recoveryPending = false
		s.renewLeases()
		return nil
	}
	if limit := s.cfg.RecoveryMaxRouteChanges; s.recoveryPending && limit > 0 && len(set)+len(remove) > limit {
		// First post-outage publish: stage the repair wave instead of
		// thrashing every route at once. A capped subset goes out now;
		// the rest follows in flushes until the diff converges.
		table, set, remove = s.capRecovery(table, set, remove, limit)
	} else {
		s.recoveryPending = false
	}
	gen := s.pubGen + 1
	delta := frontend.TableDelta{FromGen: s.pubGen, Gen: gen, Set: set, Remove: remove}
	for _, fe := range s.frontends {
		if s.lastTable == nil {
			// First publish: no baseline to delta against.
			if err := fe.SetTableGen(table, gen); err != nil {
				return err
			}
			s.fullPushes++
			continue
		}
		err := fe.ApplyDelta(delta)
		switch {
		case err == nil:
			s.deltaPushes++
			s.deltaSessions += uint64(len(set) + len(remove))
		case errors.Is(err, frontend.ErrStaleDelta):
			if err := fe.SetTableGen(table, gen); err != nil {
				return err
			}
			s.fullPushes++
		default:
			return err
		}
	}
	s.pubGen = gen
	s.lastTable = table
	return nil
}

// tableDiff computes the per-session delta from prev to next: sessions
// whose routes changed or appeared go in set, vanished sessions in remove
// (sorted for determinism).
func tableDiff(prev, next frontend.RoutingTable) (set map[string][]frontend.Route, remove []string) {
	set = make(map[string][]frontend.Route)
	for sid, routes := range next {
		if old, ok := prev[sid]; !ok || !routesEqual(old, routes) {
			set[sid] = routes
		}
	}
	for sid := range prev {
		if _, ok := next[sid]; !ok {
			remove = append(remove, sid)
		}
	}
	sort.Strings(remove)
	return set, remove
}

func routesEqual(a, b []frontend.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sweepDead drops dead replicas from the node assignment and parks them in
// the pool. With heartbeats enabled the lease monitor normally does this
// first; without them, the epoch boundary is where a deployment notices
// its crashed backends — epoch-granularity recovery, the baseline the
// chaos experiments compare against.
func (s *Scheduler) sweepDead() {
	nodeIDs := make([]string, 0, len(s.nodeBackend))
	for nodeID := range s.nodeBackend {
		nodeIDs = append(nodeIDs, nodeID)
	}
	sort.Strings(nodeIDs)
	for _, nodeID := range nodeIDs {
		beIDs := s.nodeBackend[nodeID]
		kept := beIDs[:0:0]
		for _, beID := range beIDs {
			be := s.pool.Get(beID)
			if be != nil && be.Alive() {
				kept = append(kept, beID)
				continue
			}
			delete(s.lastBeat, beID)
			delete(s.lastInc, beID)
			s.pool.Release(beID)
			for _, fe := range s.frontends {
				fe.RemoveBackend(beID)
			}
		}
		s.nodeBackend[nodeID] = kept
	}
}

// apply maps plan nodes onto pool backends, configures them, and publishes
// the routing table.
func (s *Scheduler) apply(plan *scheduler.Plan, memberUnit map[string]string) error {
	// Decide per-node replica counts: spare pool capacity is spread onto
	// the busiest nodes so a fixed cluster runs at full width instead of
	// leaving paid-for GPUs idle ("it is critical to sustain high
	// utilization", §2.1). Replication halves per-backend arrival rates,
	// absorbing bursts; the node's duty cycle and batches are unchanged so
	// SLO guarantees carry over.
	replicas := s.replicaCounts(plan)

	// Assign backends to node replicas, reusing previous assignments.
	// Two passes: every node gets its mandatory backend before any node
	// receives spare replicas, so spreading can never starve a node.
	newMapping := make(map[string][]string, len(plan.GPUs))
	for _, g := range plan.GPUs {
		want := replicas[g.ID]
		prev := s.nodeBackend[g.ID]
		if len(prev) > want {
			// Shrink: release the extras.
			for _, beID := range prev[want:] {
				if be := s.pool.Get(beID); be != nil {
					_ = be.Configure(nil)
				}
				delete(s.lastInc, beID)
				s.pool.Release(beID)
			}
			prev = prev[:want]
		}
		newMapping[g.ID] = append([]string(nil), prev...)
	}
	for _, g := range plan.GPUs {
		if len(newMapping[g.ID]) > 0 {
			continue
		}
		beID, _, err := s.pool.Acquire()
		if err != nil {
			return fmt.Errorf("globalsched: acquiring backend for node %s: %w", g.ID, err)
		}
		newMapping[g.ID] = []string{beID}
		s.adopt(beID)
	}
	for _, g := range plan.GPUs {
		for len(newMapping[g.ID]) < replicas[g.ID] {
			beID, _, err := s.pool.Acquire()
			if err != nil {
				break // spares ran out; serve with fewer replicas
			}
			newMapping[g.ID] = append(newMapping[g.ID], beID)
			s.adopt(beID)
		}
	}
	// Release backends whose nodes vanished (sorted for a deterministic
	// free-list order).
	var vanished []string
	for nodeID := range s.nodeBackend {
		if _, ok := newMapping[nodeID]; !ok {
			vanished = append(vanished, nodeID)
		}
	}
	sort.Strings(vanished)
	for _, nodeID := range vanished {
		for _, beID := range s.nodeBackend[nodeID] {
			if be := s.pool.Get(beID); be != nil {
				_ = be.Configure(nil)
			}
			delete(s.lastBeat, beID)
			delete(s.lastInc, beID)
			s.pool.Release(beID)
		}
	}
	s.nodeBackend = newMapping

	// Configure every replica backend with its node's units.
	for _, g := range plan.GPUs {
		units, err := s.unitsFor(&g)
		if err != nil {
			return err
		}
		for _, beID := range newMapping[g.ID] {
			be := s.pool.Get(beID)
			if be == nil {
				return fmt.Errorf("globalsched: pool lost backend %s", beID)
			}
			if err := be.Configure(units); err != nil {
				return err
			}
		}
	}

	// Routing: each user-facing session routes to its unit's replicas.
	s.lastMemberUnit = memberUnit
	return s.publishRoutes(plan)
}

// replicaCounts spreads spare pool capacity across plan nodes, most loaded
// first (by per-replica occupancy). Nodes that already hold extra replicas
// keep them (stability): dropping a replica discards its queue and
// reloading models elsewhere costs hundreds of milliseconds, so replica
// sets only shrink when the pool actually runs out.
func (s *Scheduler) replicaCounts(plan *scheduler.Plan) map[string]int {
	counts := make(map[string]int, len(plan.GPUs))
	for _, g := range plan.GPUs {
		counts[g.ID] = 1
	}
	spare := s.pool.Capacity() - plan.GPUCount()
	if !s.cfg.SpreadReplicas || !s.cfg.Squishy || spare <= 0 || len(plan.GPUs) == 0 {
		return counts
	}
	// Honor previous extra replicas first.
	for _, g := range plan.GPUs {
		extra := len(s.nodeBackend[g.ID]) - 1
		if extra <= 0 {
			continue
		}
		if extra > spare {
			extra = spare
		}
		counts[g.ID] += extra
		spare -= extra
		if spare == 0 {
			return counts
		}
	}
	profiles := s.planProfiles()
	occ := make(map[string]float64, len(plan.GPUs))
	for _, g := range plan.GPUs {
		if o, err := g.Occupancy(profiles); err == nil {
			occ[g.ID] = o
		} else {
			occ[g.ID] = 1
		}
	}
	for ; spare > 0; spare-- {
		best := ""
		bestLoad := -1.0
		for _, g := range plan.GPUs {
			load := occ[g.ID] / float64(counts[g.ID])
			if load > bestLoad {
				best, bestLoad = g.ID, load
			}
		}
		counts[best]++
	}
	return counts
}

// shardTag renders the shard of a merged-plan node ID for audit and health
// records ("s3/n7" -> "s3"); monolithic node IDs yield "", which JSON
// omitempty drops, keeping unsharded goldens byte-identical.
func shardTag(nodeID string) string {
	k, ok := scheduler.NodeShard(nodeID)
	if !ok {
		return ""
	}
	return fmt.Sprintf("s%d", k)
}

// ratesChangedMaterially reports whether any session's rate moved more
// than 25% (or appeared/disappeared) since the last oblivious plan.
func ratesChangedMaterially(prev map[string]float64, sessions []scheduler.Session) bool {
	if len(prev) != len(sessions) {
		return true
	}
	for _, sess := range sessions {
		old, ok := prev[sess.ID]
		if !ok {
			return true
		}
		// Material = both a meaningful relative change and a meaningful
		// absolute one; sub-2 r/s wobbles on tiny sessions do not justify
		// reshuffling containers.
		diff := sess.Rate - old
		if diff < 0 {
			diff = -diff
		}
		if diff > 2 && diff > 0.25*old {
			return true
		}
	}
	return false
}
