package globalsched

import (
	"testing"
	"time"

	"nexus/internal/model"
	"nexus/internal/queryopt"
	"nexus/internal/scheduler"
)

func TestRatesChangedMaterially(t *testing.T) {
	prev := map[string]float64{"a": 100, "b": 1}
	cases := []struct {
		name     string
		sessions []scheduler.Session
		want     bool
	}{
		{"unchanged", []scheduler.Session{{ID: "a", Rate: 100}, {ID: "b", Rate: 1}}, false},
		{"small relative wobble", []scheduler.Session{{ID: "a", Rate: 110}, {ID: "b", Rate: 1}}, false},
		{"tiny session doubled", []scheduler.Session{{ID: "a", Rate: 100}, {ID: "b", Rate: 2.5}}, false},
		{"big jump", []scheduler.Session{{ID: "a", Rate: 160}, {ID: "b", Rate: 1}}, true},
		{"session added", []scheduler.Session{{ID: "a", Rate: 100}, {ID: "b", Rate: 1}, {ID: "c", Rate: 5}}, true},
		{"session renamed", []scheduler.Session{{ID: "a", Rate: 100}, {ID: "z", Rate: 1}}, true},
	}
	for _, c := range cases {
		if got := ratesChangedMaterially(prev, c.sessions); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSpreadReplicasUsesSpares(t *testing.T) {
	cfg := nexusConfig()
	cfg.SpreadReplicas = true
	e := newEnv(t, cfg, 8)
	if err := e.sched.AddSession(SessionSpec{
		ID: "s", ModelID: model.InceptionV3, SLO: 100 * time.Millisecond, ExpectedRate: 500,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	// One plan node, but the whole fixed pool should be in use.
	if e.sched.Plan().GPUCount() >= 8 {
		t.Fatalf("plan used %d nodes; the workload should need fewer", e.sched.Plan().GPUCount())
	}
	if e.pool.InUse() != 8 {
		t.Fatalf("spreading left GPUs idle: %d of 8 in use", e.pool.InUse())
	}
	// Replica assignments cover the pool and stay stable across epochs.
	before := e.sched.Assignments()
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	after := e.sched.Assignments()
	for node, bes := range before {
		if len(after[node]) != len(bes) {
			t.Fatalf("replica count for %s changed %d -> %d without load change", node, len(bes), len(after[node]))
		}
	}
}

func TestNoSpreadingWhenElastic(t *testing.T) {
	cfg := nexusConfig() // SpreadReplicas false
	e := newEnv(t, cfg, 8)
	if err := e.sched.AddSession(SessionSpec{
		ID: "s", ModelID: model.InceptionV3, SLO: 100 * time.Millisecond, ExpectedRate: 500,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if e.pool.InUse() >= 8 {
		t.Fatalf("elastic deployment grabbed the whole pool: %d", e.pool.InUse())
	}
}

func TestStageHeadroomAppliedToChildren(t *testing.T) {
	e := newEnv(t, nexusConfig(), 16)
	q := trafficQuery()
	if err := e.sched.AddQuery(QuerySpec{Query: q, ExpectedRate: 50}); err != nil {
		t.Fatal(err)
	}
	sessions, _, err := e.sched.buildSessions()
	if err != nil {
		t.Fatal(err)
	}
	var rootRate, childRate float64
	for _, s := range sessions {
		switch s.ID {
		case "traffic/det":
			rootRate = s.Rate
		case "traffic/car":
			childRate = s.Rate
		}
	}
	// Root: 50 * 1.1 headroom. Child: root * gamma(1) * 1.25 stage headroom.
	if rootRate < 54 || rootRate > 56 {
		t.Fatalf("root rate %v, want ~55", rootRate)
	}
	wantChild := rootRate * 1.25
	if childRate < wantChild*0.99 || childRate > wantChild*1.01 {
		t.Fatalf("child rate %v, want ~%v (stage headroom)", childRate, wantChild)
	}
}

func TestSessionSLOExposed(t *testing.T) {
	e := newEnv(t, nexusConfig(), 16)
	if err := e.sched.AddSession(SessionSpec{
		ID: "s", ModelID: model.ResNet50, SLO: 100 * time.Millisecond, ExpectedRate: 10,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	slo, ok := e.sched.SessionSLO("s")
	if !ok {
		t.Fatal("session SLO not exposed")
	}
	// The planning SLO is the user SLO minus slack.
	if slo <= 0 || slo > 100*time.Millisecond {
		t.Fatalf("SLO = %v", slo)
	}
	if _, ok := e.sched.SessionSLO("ghost"); ok {
		t.Fatal("unknown session has an SLO")
	}
}

func TestObliviousPlanStableAcrossQuietEpochs(t *testing.T) {
	cfg := nexusConfig()
	cfg.Squishy = false
	cfg.ObliviousGPUs = 4
	e := newEnv(t, cfg, 4)
	if err := e.sched.AddSession(SessionSpec{
		ID: "s", ModelID: model.ResNet50, SLO: 100 * time.Millisecond, ExpectedRate: 100,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	first := e.sched.Plan()
	// No traffic observed: repeated epochs must keep the identical plan
	// object (the stability guard short-circuits re-packing).
	for i := 0; i < 3; i++ {
		if err := e.sched.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if e.sched.Plan() != first {
		t.Fatal("oblivious plan replaced without a material rate change")
	}
}

func trafficQuery() *queryopt.Query {
	return &queryopt.Query{
		Name: "traffic", SLO: 400 * time.Millisecond,
		Root: &queryopt.Node{Name: "det", ModelID: model.SSD, Edges: []queryopt.Edge{
			{Gamma: 1, Child: &queryopt.Node{Name: "car", ModelID: model.GoogLeNetCar}},
		}},
	}
}
