package globalsched

import (
	"sort"
	"testing"
	"time"

	"nexus/internal/model"
)

// degradedConfig is the control-plane config the outage/partition tests
// share: heartbeat failure detection plus delta routing (the recovery
// rate-limit rides on the delta diff).
func degradedConfig() Config {
	cfg := nexusConfig()
	cfg.Heartbeat = 100 * time.Millisecond
	cfg.LeaseMisses = 3
	cfg.DeltaRouting = true
	return cfg
}

// bootDegraded builds an env with one deployed session and beats flowing.
func bootDegraded(t *testing.T, cfg Config, poolSize int) *env {
	t.Helper()
	e := newEnv(t, cfg, poolSize)
	if err := e.sched.AddSession(SessionSpec{
		ID: "s", ModelID: model.ResNet50, SLO: 100 * time.Millisecond, ExpectedRate: 100,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	e.clock.RunUntil(e.clock.Now() + time.Second) // let beats flow
	return e
}

// assignedBackends returns every assigned backend ID, sorted.
func assignedBackends(e *env) []string {
	var ids []string
	for _, beIDs := range e.sched.Assignments() {
		ids = append(ids, beIDs...)
	}
	sort.Strings(ids)
	return ids
}

// TestOutageFreezesControlPlane: while the scheduler is down, epochs are
// no-ops, lease checks do not fire (beats are lost, but nobody is declared
// dead by a dead scheduler), and recovery re-adopts every survivor.
func TestOutageFreezesControlPlane(t *testing.T) {
	e := bootDegraded(t, degradedConfig(), 4)
	before := assignedBackends(e)
	if len(before) == 0 {
		t.Fatal("no backends assigned")
	}

	if !e.sched.SetOutage(true) {
		t.Fatal("SetOutage(true) reported no change")
	}
	if e.sched.SetOutage(true) {
		t.Fatal("repeated SetOutage(true) reported a change")
	}
	if !e.sched.Down() {
		t.Fatal("scheduler not down")
	}
	epochs := e.sched.Epochs()
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatalf("down-mode RunEpoch errored: %v", err)
	}
	if e.sched.Epochs() != epochs {
		t.Fatal("epoch ran while the scheduler was down")
	}

	// Beats are dropped while down: run far past the lease, then check.
	e.clock.RunUntil(e.clock.Now() + 2*time.Second)
	e.sched.checkLeases()
	if e.sched.Failures() != 0 {
		t.Fatalf("down scheduler declared %d failures", e.sched.Failures())
	}

	if !e.sched.SetOutage(false) {
		t.Fatal("SetOutage(false) reported no change")
	}
	if e.sched.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", e.sched.Recoveries())
	}
	if got := e.sched.Reregistered(); got != len(before) {
		t.Fatalf("reregistered = %d, want %d", got, len(before))
	}
	if e.sched.StaleEchoes() != 0 {
		t.Fatalf("stale echoes = %d, want 0", e.sched.StaleEchoes())
	}
	if got := assignedBackends(e); len(got) != len(before) {
		t.Fatalf("assignments changed across clean recovery: %v -> %v", before, got)
	}
	// The frozen pre-outage beat timestamps were refreshed: the lease
	// monitor must not kill survivors for beats lost to the outage.
	e.sched.checkLeases()
	if e.sched.Failures() != 0 {
		t.Fatalf("recovery left survivors lease-expired: %d failures", e.sched.Failures())
	}
}

// TestRecoverRejectsStaleEcho: a backend that crashed AND restarted during
// the outage echoes a matching ID with the wrong incarnation; recovery
// rejects it and replaces its routes.
func TestRecoverRejectsStaleEcho(t *testing.T) {
	e := bootDegraded(t, degradedConfig(), 4)
	before := assignedBackends(e)
	victim := before[0]

	e.sched.SetOutage(true)
	be := e.pool.Get(victim)
	be.Fail()
	be.Restart() // crashed and came back empty, incarnation bumped

	e.sched.SetOutage(false)
	if e.sched.StaleEchoes() != 1 {
		t.Fatalf("stale echoes = %d, want 1", e.sched.StaleEchoes())
	}
	if got := e.sched.Reregistered(); got != len(before)-1 {
		t.Fatalf("reregistered = %d, want %d", got, len(before)-1)
	}
	// The recovery epoch replaced the rejected replica; the session is
	// still routable (the restarted node may well be re-acquired as fresh
	// capacity, but only after a full re-Configure by the plan).
	if got := e.fe.Sessions(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("routable sessions after recovery = %v", got)
	}
	if len(assignedBackends(e)) == 0 {
		t.Fatal("no backends assigned after recovery")
	}
}

// TestRecoverReleasesDeadBackend: a backend that died during the outage
// never re-registers; recovery drops it without counting a false stale
// echo and replans around the shrunken pool.
func TestRecoverReleasesDeadBackend(t *testing.T) {
	e := bootDegraded(t, degradedConfig(), 4)
	before := assignedBackends(e)
	victim := before[0]

	e.sched.SetOutage(true)
	e.pool.Get(victim).Fail() // stays dead through recovery
	e.sched.SetOutage(false)

	if e.sched.StaleEchoes() != 0 {
		t.Fatalf("dead backend counted as stale echo: %d", e.sched.StaleEchoes())
	}
	if got := e.sched.Reregistered(); got != len(before)-1 {
		t.Fatalf("reregistered = %d, want %d", got, len(before)-1)
	}
	for _, beID := range assignedBackends(e) {
		if beID == victim {
			t.Fatalf("dead backend %s still assigned after recovery", victim)
		}
	}
	if got := e.fe.Sessions(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("routable sessions after recovery = %v", got)
	}
}

// TestCutControlFalsePositive: severing one backend's control link stops
// its beats while it keeps serving, so the lease monitor declares it dead
// — the false positive the heal handshake must reconcile.
func TestCutControlFalsePositive(t *testing.T) {
	e := bootDegraded(t, degradedConfig(), 4)
	victim := assignedBackends(e)[0]

	if !e.sched.CutControl(victim, true) {
		t.Fatal("CutControl(cut) reported no change")
	}
	if e.sched.CutControl(victim, true) {
		t.Fatal("repeated CutControl(cut) reported a change")
	}
	e.clock.RunUntil(e.clock.Now() + time.Second) // beats now dropped
	e.sched.checkLeases()
	if e.sched.Failures() != 1 {
		t.Fatalf("failures = %d, want 1 false positive", e.sched.Failures())
	}
	if !e.pool.Get(victim).Alive() && e.pool.Get(victim) != nil {
		t.Fatal("false-positive victim actually died")
	}
	if !e.sched.CutControl(victim, false) {
		t.Fatal("CutControl(heal) reported no change")
	}
}

// TestReregisterHandshake covers the partition-heal accept and reject
// paths: matching incarnation refreshes the lease; a restarted instance or
// an unassigned node is a stale echo.
func TestReregisterHandshake(t *testing.T) {
	e := bootDegraded(t, degradedConfig(), 4)
	victim := assignedBackends(e)[0]
	inc := e.pool.Get(victim).Incarnation()

	// Cut the link but heal before the lease expires: accepted.
	e.sched.CutControl(victim, true)
	e.clock.RunUntil(e.clock.Now() + 200*time.Millisecond)
	e.sched.CutControl(victim, false)
	if !e.sched.Reregister(victim, inc) {
		t.Fatal("matching re-registration rejected")
	}
	if e.sched.Reregistered() != 1 {
		t.Fatalf("reregistered = %d, want 1", e.sched.Reregistered())
	}
	e.sched.checkLeases()
	if e.sched.Failures() != 0 {
		t.Fatalf("healed backend still declared dead: %d failures", e.sched.Failures())
	}

	// Wrong incarnation (restarted behind the partition): rejected.
	if e.sched.Reregister(victim, inc+1) {
		t.Fatal("wrong-incarnation re-registration accepted")
	}
	// Never-assigned node: rejected.
	if e.sched.Reregister("ghost", 0) {
		t.Fatal("unassigned re-registration accepted")
	}
	if e.sched.StaleEchoes() != 2 {
		t.Fatalf("stale echoes = %d, want 2", e.sched.StaleEchoes())
	}
}

// TestRecoveryCappedPublish: the first post-outage publish is rate-limited
// to RecoveryMaxRouteChanges session changes; staged flushes converge the
// frontends onto the full recovery table.
func TestRecoveryCappedPublish(t *testing.T) {
	cfg := degradedConfig()
	cfg.Heartbeat = 0 // no beats: isolate the publish path
	cfg.RecoveryMaxRouteChanges = 1
	e := newEnv(t, cfg, 8)
	sessions := []string{"s0", "s1", "s2"}
	models := []string{model.ResNet50, model.InceptionV3, model.Darknet53}
	for i, sid := range sessions {
		if err := e.sched.AddSession(SessionSpec{
			ID: sid, ModelID: models[i], SLO: 150 * time.Millisecond, ExpectedRate: 100,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.sched.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	e.clock.RunUntil(time.Second)

	// Outage: every backend crashes and restarts, so recovery rejects all
	// echoes and must republish routes for every session.
	e.sched.SetOutage(true)
	for _, beID := range assignedBackends(e) {
		be := e.pool.Get(beID)
		be.Fail()
		be.Restart()
	}
	e.sched.SetOutage(false)

	if e.sched.CappedPushes() == 0 {
		t.Fatal("recovery publish was not rate-limited")
	}
	if !e.sched.recoveryPending {
		t.Fatal("capped recovery cleared recoveryPending before converging")
	}
	// Staged flushes land every recoveryFlushDelay until the diff drains.
	e.clock.RunUntil(e.clock.Now() + 10*recoveryFlushDelay)
	if e.sched.recoveryPending {
		t.Fatal("staged flushes never converged")
	}
	got := e.fe.Sessions()
	if len(got) != len(sessions) {
		t.Fatalf("routable sessions after convergence = %v, want %v", got, sessions)
	}
	// The frontend's table matches the scheduler's published view.
	for sid, routes := range e.sched.lastTable {
		if len(routes) == 0 {
			t.Fatalf("session %s converged with no routes", sid)
		}
	}
}

// TestEmptyDeltaEpochRenewsLease: an epoch whose routing delta is empty
// pushes nothing but still renews the frontends' route leases, so a
// healthy idle scheduler never lets a lease lapse.
func TestEmptyDeltaEpochRenewsLease(t *testing.T) {
	cfg := degradedConfig()
	cfg.Heartbeat = 0
	e := bootDegraded(t, cfg, 4)
	e.fe.EnableRouteLease(30*time.Second, false)

	// Find a steady-state epoch (quiet rates settle after the first decay).
	renewed := false
	for i := 0; i < 6; i++ {
		e.clock.RunUntil(e.clock.Now() + 10*time.Second)
		before := e.fe.TableVersion()
		if err := e.sched.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		if e.fe.TableVersion() == before {
			if e.fe.RouteStaleness() != 0 {
				t.Fatalf("empty-delta epoch left staleness %v", e.fe.RouteStaleness())
			}
			renewed = true
			break
		}
	}
	if !renewed {
		t.Fatal("no steady-state epoch exercised the renew path")
	}
}
