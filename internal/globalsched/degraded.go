// Degraded-mode control plane: scheduler outages with re-registration
// recovery, control-link partitions with incarnation-checked split-brain
// reconciliation, and rate-limited post-outage route repair. Everything
// here is a no-op for deployments that never inject these faults, so
// fault-free runs keep byte-identical outputs.
package globalsched

import (
	"sort"
	"time"

	"nexus/internal/frontend"
)

// recoveryFlushDelay spaces the staged flushes of a rate-limited
// post-outage repair wave: each flush pushes at most
// RecoveryMaxRouteChanges more session changes until the routing state
// converges on the recovery plan.
const recoveryFlushDelay = time.Second

// Down reports whether the scheduler is currently in an outage.
func (s *Scheduler) Down() bool { return s.down }

// Recoveries returns how many outage recoveries have run.
func (s *Scheduler) Recoveries() int { return s.recoveries }

// StaleEchoes returns how many re-registrations were rejected because the
// backend's incarnation no longer matched the adopted instance (it crashed
// and restarted behind the scheduler's back).
func (s *Scheduler) StaleEchoes() int { return s.staleEchoes }

// Reregistered returns how many backends re-registered successfully across
// outage recoveries and partition heals.
func (s *Scheduler) Reregistered() int { return s.reregistered }

// CappedPushes returns how many route publishes were rate-limited by
// RecoveryMaxRouteChanges.
func (s *Scheduler) CappedPushes() int { return s.cappedPushes }

// SetOutage takes the scheduler down (true) or brings it back up (false).
// While down, epoch planning, route publishing, lease monitoring, and
// heartbeat intake all stop — the data plane keeps serving on its last
// routing table. Coming back up runs recovery: state is reconstructed from
// backend re-registration, stale echoes are rejected, and the first
// post-outage plan publishes rate-limited. Reports whether the state
// changed.
func (s *Scheduler) SetOutage(down bool) bool {
	if s.down == down {
		return false
	}
	s.down = down
	if !down {
		s.recover()
	}
	return true
}

// recover is the restart path: the scheduler's liveness view is rebuilt
// from what each assigned backend reports at re-registration — its ID and
// incarnation. A backend that died during the outage is released; one that
// crashed AND restarted is alive but empty, so its matching-ID echo is
// stale (wrong incarnation) and rejected back to the free pool; a
// surviving instance is re-adopted with a fresh lease grace period. Then
// the first post-outage epoch runs immediately, its publish rate-limited.
func (s *Scheduler) recover() {
	s.recoveries++
	now := s.clock.Now()
	dropped := 0
	nodeIDs := make([]string, 0, len(s.nodeBackend))
	for nodeID := range s.nodeBackend {
		nodeIDs = append(nodeIDs, nodeID)
	}
	sort.Strings(nodeIDs)
	for _, nodeID := range nodeIDs {
		for _, beID := range append([]string(nil), s.nodeBackend[nodeID]...) {
			be := s.pool.Get(beID)
			inc, known := s.lastInc[beID]
			switch {
			case be == nil || !be.Alive():
				// Died during the outage: nothing re-registers.
				s.dropReplica(nodeID, beID)
				dropped++
			case known && be.Incarnation() != inc:
				// Alive, but not the instance this scheduler configured:
				// it crashed and restarted mid-outage and now serves
				// nothing. Reject the stale echo; the node rejoins the
				// pool as fresh capacity and the recovery plan replaces it.
				s.staleEchoes++
				s.dropReplica(nodeID, beID)
				dropped++
			default:
				s.reregistered++
				if s.cfg.Heartbeat > 0 {
					// Fresh grace period: the frozen pre-outage beat
					// timestamp must not count as missed beats.
					s.lastBeat[beID] = now
				}
			}
		}
	}
	if dropped > 0 {
		// dropReplica surgically repaired the frontends' tables behind the
		// delta stream's back, and the recovery plan may re-acquire the very
		// same backend IDs — an empty diff against lastTable would then skip
		// the push and leave the frontends routeless. Forget the baseline so
		// the first post-outage publish is a full resync.
		s.lastTable = nil
	}
	s.recoveryPending = true
	_ = s.RunEpoch()
}

// dropReplica removes one backend from its node assignment, releases it,
// and repairs every frontend's routes around it.
func (s *Scheduler) dropReplica(nodeID, beID string) {
	kept := s.nodeBackend[nodeID][:0:0]
	for _, id := range s.nodeBackend[nodeID] {
		if id != beID {
			kept = append(kept, id)
		}
	}
	s.nodeBackend[nodeID] = kept
	delete(s.lastBeat, beID)
	delete(s.lastInc, beID)
	s.pool.Release(beID)
	for _, fe := range s.frontends {
		fe.RemoveBackend(beID)
	}
}

// CutControl severs (cut) or restores the scheduler<->backend control link
// for one backend: its beats stop arriving while it keeps serving, so the
// lease monitor eventually declares it dead — a false positive the heal
// path reconciles via Reregister. Reports whether the state changed.
func (s *Scheduler) CutControl(beID string, cut bool) bool {
	if s.cutCtrl[beID] == cut {
		return false
	}
	if cut {
		s.cutCtrl[beID] = true
	} else {
		delete(s.cutCtrl, beID)
	}
	return true
}

// Reregister is the partition-heal handshake: a backend whose control link
// just healed reports (id, incarnation). If the scheduler still has it
// assigned and the incarnation matches the adopted instance, it is
// re-adopted (lease refreshed) and true is returned. Otherwise — it was
// declared dead and replaced, or it restarted behind the partition — the
// echo is stale: the scheduler rejects it and the caller returns the node
// to the pool as fresh capacity.
func (s *Scheduler) Reregister(beID string, inc uint64) bool {
	assigned := false
	for _, beIDs := range s.nodeBackend {
		for _, id := range beIDs {
			if id == beID {
				assigned = true
			}
		}
	}
	want, known := s.lastInc[beID]
	if !assigned || !known || want != inc {
		s.staleEchoes++
		return false
	}
	s.reregistered++
	if s.cfg.Heartbeat > 0 {
		s.lastBeat[beID] = s.clock.Now()
	}
	return true
}

// renewLeases refreshes every frontend's routing-table lease without
// pushing anything: called on empty-delta epochs, so a healthy scheduler
// with a stable plan never lets leases lapse. No-op on frontends without
// leases enabled.
func (s *Scheduler) renewLeases() {
	for _, fe := range s.frontends {
		fe.RenewRouteLease()
	}
}

// capRecovery bounds a post-outage publish to at most limit per-session
// changes: removes first (they never point traffic at a wrong replica),
// then sets, both in sorted session order for determinism. The returned
// table is the partial state the frontends will actually hold, so the
// next diff picks up exactly where this push stopped; the remainder is
// flushed on a timer until the routing state converges on the full
// recovery target.
func (s *Scheduler) capRecovery(target frontend.RoutingTable, set map[string][]frontend.Route,
	remove []string, limit int) (frontend.RoutingTable, map[string][]frontend.Route, []string) {
	s.cappedPushes++
	s.recoveryTarget = target

	partial := make(frontend.RoutingTable, len(s.lastTable))
	for sid, routes := range s.lastTable {
		partial[sid] = routes
	}
	budget := limit
	cappedRemove := remove
	if len(cappedRemove) > budget {
		cappedRemove = cappedRemove[:budget]
	}
	for _, sid := range cappedRemove {
		delete(partial, sid)
	}
	budget -= len(cappedRemove)
	setIDs := make([]string, 0, len(set))
	for sid := range set {
		setIDs = append(setIDs, sid)
	}
	sort.Strings(setIDs)
	if len(setIDs) > budget {
		setIDs = setIDs[:budget]
	}
	cappedSet := make(map[string][]frontend.Route, len(setIDs))
	for _, sid := range setIDs {
		cappedSet[sid] = set[sid]
		partial[sid] = set[sid]
	}
	if !s.recoveryFlushArmed {
		s.recoveryFlushArmed = true
		s.clock.After(recoveryFlushDelay, s.flushRecovery)
	}
	return partial, cappedSet, cappedRemove
}

// flushRecovery publishes the next staged slice of a rate-limited repair
// wave. Each slice is itself capped, so a large wave converges over
// several flushes; an epoch that lands in between simply replaces the
// recovery target with its newer table.
func (s *Scheduler) flushRecovery() {
	s.recoveryFlushArmed = false
	if s.down || !s.recoveryPending || s.recoveryTarget == nil {
		return
	}
	_ = s.publishDelta(s.recoveryTarget)
}
