package globalsched

import (
	"testing"

	"nexus/internal/trace"
)

// rec builds one plan-node placement record.
func rec(node string, backends []string, units ...trace.PlacedUnit) trace.PlacementRecord {
	return trace.PlacementRecord{Node: node, Backends: backends, Units: units}
}

func unit(session, unit string, batch int, rate, slice float64) trace.PlacedUnit {
	return trace.PlacedUnit{Unit: unit, Session: session, Batch: batch, Rate: rate, Slice: slice}
}

func kinds(changes []trace.PlanChange) map[string]int {
	out := map[string]int{}
	for _, c := range changes {
		out[c.Kind]++
	}
	return out
}

func TestDiffPlacementsInitial(t *testing.T) {
	cur := []trace.PlacementRecord{
		rec("plan-0", []string{"be0"}, unit("s1", "m1", 8, 100, 0)),
		rec("plan-1", []string{"be1"}, unit("s2", "m2", 4, 50, 0)),
	}
	changes := DiffPlacements(nil, cur)
	if len(changes) != 2 {
		t.Fatalf("got %d changes, want 2: %+v", len(changes), changes)
	}
	for _, c := range changes {
		if c.Kind != "unit-added" {
			t.Errorf("initial diff produced %q, want unit-added", c.Kind)
		}
	}
	// Sorted by session.
	if changes[0].Session != "s1" || changes[1].Session != "s2" {
		t.Errorf("changes not session-sorted: %+v", changes)
	}
}

func TestDiffPlacementsNoChange(t *testing.T) {
	a := []trace.PlacementRecord{rec("plan-0", []string{"be0"}, unit("s1", "m1", 8, 100, 0))}
	b := []trace.PlacementRecord{rec("plan-0", []string{"be0"}, unit("s1", "m1", 8, 100, 0))}
	if changes := DiffPlacements(a, b); len(changes) != 0 {
		t.Fatalf("identical plans diffed: %+v", changes)
	}
}

func TestDiffPlacementsDropAndMove(t *testing.T) {
	prev := []trace.PlacementRecord{
		rec("plan-0", []string{"be0"}, unit("s1", "m1", 8, 100, 0)),
		rec("plan-1", []string{"be1"}, unit("s2", "m2", 4, 50, 0)),
	}
	cur := []trace.PlacementRecord{
		// s1 moved nodes; s2 disappeared.
		rec("plan-2", []string{"be2"}, unit("s1", "m1", 8, 100, 0)),
	}
	changes := DiffPlacements(prev, cur)
	k := kinds(changes)
	if k["session-moved"] != 1 || k["unit-dropped"] != 1 || len(changes) != 2 {
		t.Fatalf("got %+v, want one session-moved and one unit-dropped", changes)
	}
	for _, c := range changes {
		if c.Kind == "session-moved" && (c.From != "plan-0" || c.To != "plan-2") {
			t.Errorf("move edge %s->%s, want plan-0->plan-2", c.From, c.To)
		}
	}
}

func TestDiffPlacementsInPlaceChanges(t *testing.T) {
	prev := []trace.PlacementRecord{
		rec("plan-0", []string{"be0", "be1"}, unit("s1", "m1", 8, 100, 0.5)),
	}
	cur := []trace.PlacementRecord{
		rec("plan-0", []string{"be0", "be2"}, unit("s1", "m1", 16, 130, 0.75)),
	}
	changes := DiffPlacements(prev, cur)
	k := kinds(changes)
	for _, want := range []string{"batch-changed", "slice-changed", "rate-changed", "replicas-changed"} {
		if k[want] != 1 {
			t.Errorf("missing %s in %+v", want, changes)
		}
	}
	if len(changes) != 4 {
		t.Fatalf("got %d changes, want 4: %+v", len(changes), changes)
	}
}

// TestDiffPlacementsRateHysteresis: rate drift inside the threshold is
// EWMA noise, not a plan change.
func TestDiffPlacementsRateHysteresis(t *testing.T) {
	prev := []trace.PlacementRecord{rec("plan-0", []string{"be0"}, unit("s1", "m1", 8, 100, 0))}
	within := []trace.PlacementRecord{rec("plan-0", []string{"be0"}, unit("s1", "m1", 8, 105, 0))}
	if changes := DiffPlacements(prev, within); len(changes) != 0 {
		t.Fatalf("5%% rate drift logged: %+v", changes)
	}
	beyond := []trace.PlacementRecord{rec("plan-0", []string{"be0"}, unit("s1", "m1", 8, 120, 0))}
	changes := DiffPlacements(prev, beyond)
	if len(changes) != 1 || changes[0].Kind != "rate-changed" {
		t.Fatalf("20%% rate drift: got %+v, want one rate-changed", changes)
	}
}

func TestRelDelta(t *testing.T) {
	for _, tc := range []struct {
		a, b, want float64
	}{
		{0, 0, 0}, {100, 100, 0}, {100, 110, 0.1 / 1.1}, {0, 50, 1}, {50, 0, 1},
	} {
		if got := relDelta(tc.a, tc.b); got < tc.want-1e-9 || got > tc.want+1e-9 {
			t.Errorf("relDelta(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
