package globalsched

import (
	"fmt"
	"sort"
	"strings"

	"nexus/internal/trace"
)

// rateChangeThreshold is the relative rate-share delta below which a
// retained allocation's rate drift is noise, not a plan change: the EWMA
// rate estimator moves every epoch, and logging every wiggle would bury the
// structural changes the diff exists to surface.
const rateChangeThreshold = 0.10

// placedAlloc is one session's allocation flattened out of a placement
// record for diffing.
type placedAlloc struct {
	node     string
	unit     string
	batch    int
	rate     float64
	slice    float64
	backends string // sorted, comma-joined replica set
}

// flattenPlacements indexes an epoch's placement records by session. A
// session packed onto several nodes yields several allocs, sorted by node.
func flattenPlacements(recs []trace.PlacementRecord) map[string][]placedAlloc {
	out := map[string][]placedAlloc{}
	for _, r := range recs {
		backends := append([]string(nil), r.Backends...)
		sort.Strings(backends)
		joined := strings.Join(backends, ",")
		for _, u := range r.Units {
			out[u.Session] = append(out[u.Session], placedAlloc{
				node: r.Node, unit: u.Unit, batch: u.Batch,
				rate: u.Rate, slice: u.Slice, backends: joined,
			})
		}
	}
	for sid := range out {
		sort.Slice(out[sid], func(i, j int) bool { return out[sid][i].node < out[sid][j].node })
	}
	return out
}

// DiffPlacements computes the structured change log between two consecutive
// epochs' placement records: sessions whose units appeared, disappeared, or
// moved between plan nodes, and retained allocations whose batch size,
// compute slice, rate share, or replica set changed. The result is sorted
// by (session, kind, node) so serialized diffs are deterministic.
func DiffPlacements(prev, cur []trace.PlacementRecord) []trace.PlanChange {
	pv, cv := flattenPlacements(prev), flattenPlacements(cur)
	sessions := make([]string, 0, len(pv)+len(cv))
	seen := map[string]bool{}
	for sid := range pv {
		sessions = append(sessions, sid)
		seen[sid] = true
	}
	for sid := range cv {
		if !seen[sid] {
			sessions = append(sessions, sid)
		}
	}
	sort.Strings(sessions)

	var changes []trace.PlanChange
	for _, sid := range sessions {
		pa, ca := pv[sid], cv[sid]
		switch {
		case len(pa) == 0:
			for _, a := range ca {
				changes = append(changes, trace.PlanChange{
					Kind: "unit-added", Session: sid, Unit: a.unit, Node: a.node,
					Detail: fmt.Sprintf("batch=%d rate=%.1f", a.batch, a.rate),
				})
			}
		case len(ca) == 0:
			for _, a := range pa {
				changes = append(changes, trace.PlanChange{
					Kind: "unit-dropped", Session: sid, Unit: a.unit, Node: a.node,
				})
			}
		default:
			changes = append(changes, diffSession(sid, pa, ca)...)
		}
	}
	sort.Slice(changes, func(i, j int) bool {
		a, b := changes[i], changes[j]
		if a.Session != b.Session {
			return a.Session < b.Session
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Node < b.Node
	})
	return changes
}

// diffSession compares one session's allocations across epochs.
func diffSession(sid string, pa, ca []placedAlloc) []trace.PlanChange {
	nodeSet := func(as []placedAlloc) string {
		nodes := make([]string, len(as))
		for i, a := range as {
			nodes[i] = a.node
		}
		return strings.Join(nodes, ",")
	}
	var changes []trace.PlanChange
	pn, cn := nodeSet(pa), nodeSet(ca)
	if pn != cn {
		changes = append(changes, trace.PlanChange{
			Kind: "session-moved", Session: sid, Unit: ca[0].unit,
			From: pn, To: cn,
		})
		return changes
	}
	// Same node set: compare each retained allocation in place.
	for i := range ca {
		p, c := pa[i], ca[i]
		if p.batch != c.batch {
			changes = append(changes, trace.PlanChange{
				Kind: "batch-changed", Session: sid, Unit: c.unit, Node: c.node,
				From: fmt.Sprintf("%d", p.batch), To: fmt.Sprintf("%d", c.batch),
			})
		}
		if p.slice != c.slice {
			changes = append(changes, trace.PlanChange{
				Kind: "slice-changed", Session: sid, Unit: c.unit, Node: c.node,
				From: fmt.Sprintf("%.3f", p.slice), To: fmt.Sprintf("%.3f", c.slice),
			})
		}
		if rel := relDelta(p.rate, c.rate); rel > rateChangeThreshold {
			changes = append(changes, trace.PlanChange{
				Kind: "rate-changed", Session: sid, Unit: c.unit, Node: c.node,
				From: fmt.Sprintf("%.1f", p.rate), To: fmt.Sprintf("%.1f", c.rate),
			})
		}
		if p.backends != c.backends {
			changes = append(changes, trace.PlanChange{
				Kind: "replicas-changed", Session: sid, Unit: c.unit, Node: c.node,
				From: p.backends, To: c.backends,
			})
		}
	}
	return changes
}

// relDelta is |a-b| relative to the larger magnitude (0 when both zero).
func relDelta(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m <= 0 {
		return 0
	}
	return d / m
}

// auditPlanDiff records the structured diff between the last audited
// placement and this epoch's, with its cause: the first audited epoch is
// "initial", an epoch following emergency repairs is "recovery", everything
// else is "periodic".
func (s *Scheduler) auditPlanDiff(nowMS float64, recs []trace.PlacementRecord) {
	cause := "periodic"
	switch {
	case s.lastAudited == nil:
		cause = "initial"
	case s.failures > s.lastAuditFailures:
		cause = "recovery"
	}
	rec := trace.PlanDiffRecord{
		Epoch: s.epochs, AtMS: nowMS, Cause: cause,
		SessionsMoved: s.lastStats.SessionsMoved,
		Changes:       DiffPlacements(s.lastAudited, recs),
	}
	// Shard counts only carry signal under hysteresis (skips cannot happen
	// without it). Gating them there also keeps the degenerate single-shard
	// planner's audit byte-identical to the monolithic planner's, per the
	// shard determinism contract.
	if s.cfg.PlanHysteresis > 0 {
		rec.ShardsReplan = s.lastShardStats.Replanned
		rec.ShardsSkipped = s.lastShardStats.Skipped
	}
	s.cfg.Audit.RecordPlanDiff(rec)
	s.lastAudited = recs
	s.lastAuditFailures = s.failures
}
