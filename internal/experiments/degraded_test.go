package experiments

import (
	"strconv"
	"testing"

	"nexus/internal/runner"
)

// runDegraded runs the degraded sweep at a fixed worker count and returns
// the rendered table plus the simulated event count.
func runDegraded(t *testing.T, workers int) (string, uint64) {
	t.Helper()
	prev := runner.SetDefaultWorkers(workers)
	defer runner.SetDefaultWorkers(prev)
	e, err := Get("degraded")
	if err != nil {
		t.Fatal(err)
	}
	rc := NewRunContext(true)
	tab, err := e.Run(rc)
	if err != nil {
		t.Fatalf("degraded (workers=%d): %v", workers, err)
	}
	return tab.String(), rc.Events()
}

// TestDegradedDeterminism pins the degraded sweep to the engine's
// determinism contract: byte-identical tables and identical event counts
// at 1 and 8 workers, because every cell simulates its faults on an
// isolated seeded clock.
func TestDegradedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice")
	}
	seq, seqEvents := runDegraded(t, 1)
	par, parEvents := runDegraded(t, 8)
	if seq != par {
		t.Fatalf("degraded sweep diverged across worker counts:\nworkers=1:\n%s\nworkers=8:\n%s", seq, par)
	}
	if seqEvents != parEvents {
		t.Fatalf("event counts diverged: %d vs %d", seqEvents, parEvents)
	}
}

// TestDegradedSurvivalClaims checks the sweep's headline numbers: the full
// degraded-mode stack rides out a long scheduler outage within a few
// points of its fault-free goodput, while leases without a repair path
// collapse; and a surge is shed from the low-priority session while the
// high-priority one stays at its nominal attainment.
func TestDegradedSurvivalClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full sweep")
	}
	e, err := Get("degraded")
	if err != nil {
		t.Fatal(err)
	}
	rc := NewRunContext(true)
	table, err := e.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(scenario, system, col string) float64 {
		for _, row := range table.Rows {
			if row[0] != scenario || row[1] != system {
				continue
			}
			for i, h := range table.Header {
				if h == col {
					v, err := strconv.ParseFloat(row[i], 64)
					if err != nil {
						t.Fatalf("cell (%s,%s,%s) = %q: %v", scenario, system, col, row[i], err)
					}
					return v
				}
			}
		}
		t.Fatalf("no row (%s, %s)", scenario, system)
		return 0
	}
	baseline := cell("none", "full-FT", "good %")
	outage := cell("outage", "full-FT", "good %")
	if baseline-outage > 10 {
		t.Fatalf("full-FT outage goodput %.1f%% vs fault-free %.1f%%, want within 10 points", outage, baseline)
	}
	collapsed := cell("outage", "lease-only", "good %")
	if baseline-collapsed < 20 {
		t.Fatalf("lease-only outage goodput %.1f%%, want a collapse (>= 20 points below %.1f%%)", collapsed, baseline)
	}
	if shed := cell("surge", "full-FT", "shed"); shed == 0 {
		t.Fatal("surge under full-FT shed nothing")
	}
	hiNominal := cell("none", "full-FT", "hi good %")
	hiSurge := cell("surge", "full-FT", "hi good %")
	if hiNominal-hiSurge > 5 {
		t.Fatalf("high-priority goodput %.1f%% under surge vs %.1f%% nominal, want within 5 points", hiSurge, hiNominal)
	}
}
