package experiments

import (
	"fmt"
	"time"

	"nexus/internal/backend"
	"nexus/internal/cluster"
	"nexus/internal/globalsched"
	"nexus/internal/metrics"
	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/queryopt"
	"nexus/internal/runner"
	"nexus/internal/scheduler"
	"nexus/internal/workload"
)

func init() {
	register(Experiment{ID: "abl-slofactor", Description: "Ablation: worst-case SLO factor vs GPUs required (§4.1's factor-2 rule)", Run: ablationSLOFactor})
	register(Experiment{ID: "abl-epsilon", Description: "Ablation: latency-split DP discretization vs plan quality (§6.2)", Run: ablationEpsilon})
	register(Experiment{ID: "abl-slack", Description: "Ablation: planning slack vs bad rate and GPU usage", Run: ablationSlack})
	register(Experiment{ID: "abl-window", Description: "Ablation: early-drop window size vs goodput (§6.3)", Run: ablationWindow})
	register(Experiment{ID: "abl-defer", Description: "Extension: drop vs defer-at-low-priority service models (§5)", Run: ablationDefer})
}

// ablationSLOFactor sweeps the worst-case multiplier of §4.1. Factor 2 is
// the paper's rule (one batch of waiting plus one of execution); larger
// factors are more conservative and cost GPUs.
func ablationSLOFactor(*RunContext) (*Table, error) {
	mdb := model.Catalog()
	pdb, err := profiler.CatalogProfiles(mdb)
	if err != nil {
		return nil, err
	}
	profiles := map[string]*profiler.Profile{
		model.ResNet50: pdb.MustGet(model.ResNet50, profiler.GTX1080Ti),
	}
	sessions := []scheduler.Session{
		{ID: "s", ModelID: model.ResNet50, SLO: 100 * time.Millisecond, Rate: 5000},
	}
	t := &Table{
		ID:     "abl-slofactor",
		Title:  "SLO factor vs GPUs for ResNet-50 @ 5000 r/s, SLO 100ms",
		Header: []string{"factor", "batch B", "per-GPU r/s", "GPUs"},
		Notes:  []string{"factor 2 is the paper's worst-case rule; below 2 is unsafe (a missed batch waits a full batch time)"},
	}
	for _, factor := range []float64{2, 2.5, 3, 4} {
		cfg := scheduler.Config{SLOFactor: factor}
		plan, err := scheduler.Pack(sessions, profiles, cfg)
		if err != nil {
			return nil, err
		}
		if err := scheduler.Validate(plan, sessions, profiles, cfg); err != nil {
			return nil, err
		}
		p := profiles[model.ResNet50]
		b := p.MaxBatchWithin(time.Duration(float64(100*time.Millisecond) / factor))
		t.AddRow(fmt.Sprintf("%.1f", factor),
			fmt.Sprint(b),
			fmt.Sprintf("%.0f", p.Throughput(b)),
			fmt.Sprint(plan.GPUCount()))
	}
	return t, nil
}

// ablationEpsilon sweeps the DP's budget discretization on the traffic
// query: coarser grids run faster but find worse splits.
func ablationEpsilon(*RunContext) (*Table, error) {
	mdb := model.Catalog()
	pdb, err := profiler.CatalogProfiles(mdb)
	if err != nil {
		return nil, err
	}
	profiles := make(map[string]*profiler.Profile)
	for _, id := range []string{model.SSD, model.GoogLeNetCar, model.VGGFace} {
		profiles[id] = pdb.MustGet(id, profiler.GTX1080Ti)
	}
	q := &queryopt.Query{
		Name: "traffic", SLO: 400 * time.Millisecond,
		Root: &queryopt.Node{Name: "det", ModelID: model.SSD, Edges: []queryopt.Edge{
			{Gamma: 1.5, Child: &queryopt.Node{Name: "car", ModelID: model.GoogLeNetCar}},
			{Gamma: 0.5, Child: &queryopt.Node{Name: "face", ModelID: model.VGGFace}},
		}},
	}
	t := &Table{
		ID:     "abl-epsilon",
		Title:  "latency-split DP discretization on the traffic query (80 q/s)",
		Header: []string{"epsilon", "det budget", "est. GPUs"},
		Notes:  []string{"state space is SLO/epsilon; 5ms (the default) already sits on the quality plateau"},
	}
	for _, eps := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond} {
		split, err := queryopt.Optimize(q, 80, profiles, eps, scheduler.Config{})
		if err != nil {
			return nil, err
		}
		t.AddRow(eps.String(), split.Budgets["det"].String(), fmt.Sprintf("%.3f", split.GPUs))
	}
	return t, nil
}

// ablationSlack sweeps the control plane's planning slack: too little and
// runtime costs the profile does not capture blow the SLO; too much wastes
// GPUs.
func ablationSlack(rc *RunContext) (*Table, error) {
	horizon := 30 * time.Second
	if rc.Short {
		horizon = 10 * time.Second
	}
	t := &Table{
		ID:     "abl-slack",
		Title:  "planning slack vs bad rate (ResNet-50 @ 2500 r/s, SLO 50ms, 4 GPUs)",
		Header: []string{"slack", "bad %", "GPUs used"},
		Notes:  []string{"zero slack under-provisions (planner believes the raw profile); the adaptive runtime hides most of the SLO damage at this load, but the safety margin is gone at the frontier"},
	}
	slacks := []time.Duration{-1, 3 * time.Millisecond, 10 * time.Millisecond}
	type result struct {
		bad  float64
		gpus float64
		err  error
	}
	results := runner.MapNamed("ablation-slack", len(slacks), func(i int) result {
		d, err := cluster.New(cluster.Config{
			System: cluster.Nexus, Features: cluster.AllFeatures(),
			GPUs: 4, Seed: 5, Epoch: 10 * time.Second, PlanningSlack: slacks[i],
		})
		if err != nil {
			return result{err: err}
		}
		if err := d.AddSession(globalsched.SessionSpec{
			ID: "s", ModelID: model.ResNet50, SLO: 50 * time.Millisecond, ExpectedRate: 2500,
		}, workload.Poisson{Rate: 2500}); err != nil {
			return result{err: err}
		}
		bad, err := d.Run(horizon)
		rc.AddEvents(d.Clock.Executed())
		if err != nil {
			return result{err: err}
		}
		return result{bad: bad, gpus: d.AvgGPUsUsed()}
	})
	for i, slack := range slacks {
		if results[i].err != nil {
			return nil, results[i].err
		}
		label := slack.String()
		if slack < 0 {
			label = "none"
		}
		t.AddRow(label, fmt.Sprintf("%.2f", 100*results[i].bad), fmt.Sprintf("%.1f", results[i].gpus))
	}
	return t, nil
}

// ablationWindow sweeps the early-drop window (the scheduler-assigned
// batch size) on the Figure 5 synthetic workload: small windows forgo
// batching efficiency, oversized windows over-drop.
func ablationWindow(rc *RunContext) (*Table, error) {
	horizon := 30 * time.Second
	tol := 0.02
	if rc.Short {
		horizon, tol = 10*time.Second, 0.05
	}
	p := fig5Profile(1.2)
	t := &Table{
		ID:     "abl-window",
		Title:  "early-drop window size vs max goodput (alpha=1.2ms synthetic, SLO 100ms)",
		Header: []string{"window", "goodput (req/s)"},
		Notes:  []string{"the scheduler-assigned batch (25) maximizes goodput; §6.3's window choice is not arbitrary"},
	}
	windows := []int{5, 10, 25, 40, 64}
	tputs := runner.MapNamed("ablation-window", len(windows), func(i int) float64 {
		return metrics.MaxGoodputK(50, 520, metrics.GoodputTarget, tol, goodputProbes, func(rate float64) float64 {
			return dropPolicyBadRateWindow(rc, p, rate, windows[i], horizon)
		})
	})
	for i, window := range windows {
		t.AddRow(fmt.Sprint(window), fmt.Sprintf("%.0f", tputs[i]))
	}
	return t, nil
}

// dropPolicyBadRateWindow is dropPolicyBadRate with an explicit target
// batch (window) instead of the profile-derived one.
func dropPolicyBadRateWindow(rc *RunContext, p *profiler.Profile, rate float64, window int, horizon time.Duration) float64 {
	return dropPolicyBadRateTarget(rc, backend.EarlyDrop{}, p, workload.Poisson{Rate: rate}, horizon, 3, window)
}

// ablationDefer contrasts the paper's two service models (§5): drop
// excess requests vs defer them to low priority. A transient burst beyond
// capacity is the interesting case — deferral completes the excess late,
// once the burst subsides, instead of discarding it.
func ablationDefer(rc *RunContext) (*Table, error) {
	horizon := 40 * time.Second
	if rc.Short {
		horizon = 25 * time.Second
	}
	t := &Table{
		ID:     "abl-defer",
		Title:  "drop vs defer service model across a 2x burst (Inception @ SLO 100ms, 1 GPU)",
		Header: []string{"mode", "on-time %", "served late %", "lost %"},
		Notes:  []string{"§5: \"we could configure our system to simply delay the execution of requests that miss their deadlines\""},
	}
	type result struct {
		st  *metrics.SessionStats
		err error
	}
	modes := []bool{false, true}
	results := runner.MapNamed("ablation-defer", len(modes), func(i int) result {
		d, err := cluster.New(cluster.Config{
			System: cluster.Nexus, Features: cluster.AllFeatures(),
			GPUs: 1, Seed: 9, Epoch: 10 * time.Second, DeferDropped: modes[i],
		})
		if err != nil {
			return result{err: err}
		}
		// Base load within capacity; a 5s burst at ~2x capacity.
		sched := workload.Burst(600, 2000, 12*time.Second, 17*time.Second)
		if err := d.AddSession(globalsched.SessionSpec{
			ID: "s", ModelID: model.InceptionV3, SLO: 100 * time.Millisecond, ExpectedRate: 600,
		}, workload.Modulated{RateAt: sched.RateAt}); err != nil {
			return result{err: err}
		}
		if _, err := d.Run(horizon); err != nil {
			return result{err: err}
		}
		rc.AddEvents(d.Clock.Executed())
		return result{st: d.Recorder.Session("s")}
	})
	for i, deferMode := range modes {
		if results[i].err != nil {
			return nil, results[i].err
		}
		st := results[i].st
		total := float64(st.Sent)
		mode := "drop (default)"
		if deferMode {
			mode = "defer"
		}
		t.AddRow(mode,
			fmt.Sprintf("%.1f", 100*float64(st.Good())/total),
			fmt.Sprintf("%.1f", 100*float64(st.Missed)/total),
			fmt.Sprintf("%.1f", 100*float64(st.Dropped)/total))
	}
	return t, nil
}
