package experiments

import (
	"fmt"
	"time"

	"nexus/internal/cluster"
	"nexus/internal/faults"
	"nexus/internal/globalsched"
	"nexus/internal/metrics"
	"nexus/internal/model"
	"nexus/internal/runner"
	"nexus/internal/workload"
)

func init() {
	register(Experiment{ID: "chaos", Description: "Fault injection: crashes, stragglers, surges vs detection mode", Run: chaosSweep})
}

// chaosScenario is one fault script applied to a running deployment.
type chaosScenario struct {
	name   string
	script faults.Script
	// surge doubles the offered rate for the fault window instead of (or in
	// addition to) injecting faults.
	surge bool
}

// chaosSystem is one detection/recovery configuration under test.
type chaosSystem struct {
	name string
	// mutate specializes the base deployment config.
	mutate func(*cluster.Config)
}

// chaosSweep crosses fault scenarios with recovery configurations: full
// Nexus with heartbeat failure detection and retry, against a lazy-drop
// baseline that only notices failures at epoch boundaries. Each cell is an
// isolated deployment with its own clock and seeded injector, so the sweep
// is deterministic at any worker count. Recovery time is measured from the
// fault instant to the first second where goodput regains 95% of its
// pre-fault mean (metrics.RecoveryTime).
func chaosSweep(rc *RunContext) (*Table, error) {
	const (
		gpus     = 8
		rate     = 3000.0
		slo      = 100 * time.Millisecond
		epoch    = 10 * time.Second
		faultAt  = 12 * time.Second // absolute sim time: warmup (2s) + 10s
		faultLen = 15 * time.Second
	)
	duration := 60 * time.Second
	if rc.Short {
		duration = 30 * time.Second
	}
	// "be0" is the first backend the planner acquires, so it always carries
	// a full replica share — crashing it produces a visible goodput dip
	// (a seeded random pick can land on a residual low-weight replica).
	scenarios := []chaosScenario{
		{name: "crash", script: faults.Script{
			{At: faultAt, Kind: faults.Crash, Backend: "be0"},
		}},
		{name: "transient", script: faults.Script{
			{At: faultAt, Kind: faults.Crash, Backend: "be0", Duration: faultLen},
		}},
		{name: "straggler", script: faults.Script{
			{At: faultAt, Kind: faults.Straggler, Backend: "be0", Factor: 4, Duration: faultLen},
		}},
		{name: "netspike", script: faults.Script{
			{At: faultAt, Kind: faults.NetDelay, Delay: 5 * time.Millisecond, Duration: faultLen},
		}},
		{name: "surge", surge: true},
	}
	systems := []chaosSystem{
		{name: "Nexus-FT", mutate: func(cfg *cluster.Config) {
			cfg.Heartbeat = 100 * time.Millisecond
			cfg.LeaseMisses = 3
			cfg.RetryFailures = true
		}},
		{name: "epoch-only", mutate: func(cfg *cluster.Config) {}},
		{name: "lazy-drop", mutate: func(cfg *cluster.Config) {
			cfg.Features.EarlyDrop = false
		}},
	}
	type cell struct {
		sc  chaosScenario
		sys chaosSystem
	}
	var cells []cell
	for _, sc := range scenarios {
		for _, sys := range systems {
			cells = append(cells, cell{sc, sys})
		}
	}
	type result struct {
		good       float64
		failed     uint64
		unroutable uint64
		detected   int
		recovery   time.Duration
		recovered  bool
		err        error
	}
	results := runner.MapNamed("chaos", len(cells), func(i int) result {
		c := cells[i]
		cfg := cluster.Config{
			System: cluster.Nexus, Features: cluster.AllFeatures(),
			GPUs: gpus, Seed: 23, Epoch: epoch,
			SessionTimelines: true,
		}
		c.sys.mutate(&cfg)
		d, err := cluster.New(cfg)
		if err != nil {
			return result{err: err}
		}
		// Uniform arrivals keep both systems healthy pre-fault (lazy drop
		// collapses under Poisson bursts even fault-free, Figure 5), so the
		// table isolates the fault response. The surge scenario is the
		// exception: its fault IS a Poisson overload wave.
		var proc workload.Process = workload.Uniform{Rate: rate}
		if c.sc.surge {
			sched := workload.Schedule{
				{Until: faultAt, Rate: rate},
				{Until: faultAt + faultLen, Rate: 2 * rate},
				{Until: 10 * time.Hour, Rate: rate},
			}
			proc = workload.Modulated{RateAt: sched.RateAt}
		}
		if err := d.AddSession(globalsched.SessionSpec{
			ID: "s", ModelID: model.ResNet50, SLO: slo, ExpectedRate: rate,
		}, proc); err != nil {
			return result{err: err}
		}
		in := faults.New(d.Clock, d, 23)
		if err := in.Schedule(c.sc.script); err != nil {
			return result{err: err}
		}
		bad, err := d.Run(duration)
		rc.AddEvents(d.Clock.Executed())
		if err != nil {
			return result{err: err}
		}
		s := d.Recorder.Session("s")
		rec, ok := metrics.RecoveryTime(d.GoodEvts, faultAt, 5*time.Second, 0.95)
		return result{
			good:       100 * (1 - bad),
			failed:     s.Failed,
			unroutable: s.Unroutable,
			detected:   d.Failures(),
			recovery:   rec,
			recovered:  ok,
		}
	})
	t := &Table{
		ID:     "chaos",
		Title:  fmt.Sprintf("fault injection on ResNet-50 @ %.0f r/s (SLO %v, %d GPUs, fault at t=%v)", rate, slo, gpus, faultAt),
		Header: []string{"Scenario", "System", "good %", "failed", "unroutable", "detected", "recovery"},
		Notes: []string{
			"Nexus-FT: 100ms heartbeat, lease = 3 missed beats, retry-once; epoch-only: same runtime, failures noticed at 10s epoch boundaries",
			"lazy-drop: epoch-only detection without early drop; it is past its capacity frontier at this load even fault-free (Figure 10's -ED)",
			"recovery: time from the fault instant until goodput regains 95% of its pre-fault mean",
		},
	}
	for i, c := range cells {
		r := results[i]
		if r.err != nil {
			return nil, r.err
		}
		rec := "-"
		if r.recovered {
			rec = r.recovery.Round(time.Millisecond).String()
		}
		t.AddRow(c.sc.name, c.sys.name,
			fmt.Sprintf("%.1f", r.good),
			fmt.Sprintf("%d", r.failed),
			fmt.Sprintf("%d", r.unroutable),
			fmt.Sprintf("%d", r.detected),
			rec)
	}
	return t, nil
}
