package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"nexus/internal/backend"
	"nexus/internal/gpusim"
	"nexus/internal/metrics"
	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/queryopt"
	"nexus/internal/runner"
	"nexus/internal/scheduler"
	"nexus/internal/simclock"
	"nexus/internal/workload"
)

func init() {
	register(Experiment{ID: "table1", Description: "DNN execution latency and cost per 1000 invocations (Table 1)", Run: table1})
	register(Experiment{ID: "table2", Description: "Squishy bin packing worked example (Table 2 / Figure 2)", Run: table2})
	register(Experiment{ID: "fig4", Description: "Latency split plans vs fan-out gamma (Figures 3-4)", Run: figure4})
	register(Experiment{ID: "fig5", Description: "Lazy dropping bad rate vs alpha (Figure 5)", Run: figure5})
	register(Experiment{ID: "fig9", Description: "Early vs lazy drop max throughput vs alpha (Figure 9)", Run: figure9})
	register(Experiment{ID: "fig15", Description: "Prefix batching throughput and memory (Figure 15)", Run: figure15})
}

// --- Table 1 -------------------------------------------------------------

func table1(*RunContext) (*Table, error) {
	mdb := model.Catalog()
	pdb, err := profiler.CatalogProfiles(mdb)
	if err != nil {
		return nil, err
	}
	specs := profiler.Specs()
	t := &Table{
		ID:     "table1",
		Title:  "DNN execution latencies and estimated costs per 1000 invocations",
		Header: []string{"Model", "CPU lat", "GPU lat (V100)", "CPU cost ($)", "TPU cost ($)", "GPU cost ($)"},
		Notes:  []string{"costs assume back-to-back execution at the device's best batch size (Table 1's peak-rate lower bound)"},
	}
	for _, id := range []string{model.LeNet5, model.VGG7, model.ResNet50, model.Inception4, model.Darknet53} {
		cpuLat, err := profiler.CPULatency(id)
		if err != nil {
			return nil, err
		}
		p := pdb.MustGet(id, profiler.V100)
		t.AddRow(id,
			cpuLat.String(),
			p.BatchLatency(1).String(),
			fmt.Sprintf("%.4f", profiler.CostPer1000(p, specs[profiler.CPUAVX512])),
			fmt.Sprintf("%.4f", profiler.CostPer1000(p, specs[profiler.TPUv2])),
			fmt.Sprintf("%.4f", profiler.CostPer1000(p, specs[profiler.V100])),
		)
	}
	return t, nil
}

// --- Table 2 / Figure 2 --------------------------------------------------

// PointsFromKnots builds a measured latency table by linear interpolation
// between (batch, latency) knots, anchored at a pseudo-knot (0, beta0).
func PointsFromKnots(beta0 time.Duration, knots map[int]time.Duration, max int) []time.Duration {
	pts := make([]time.Duration, max)
	prevB, prevL := 0, beta0
	for b := 1; b <= max; b++ {
		nextB, nextL := -1, time.Duration(0)
		for kb, kl := range knots {
			if kb >= b && (nextB == -1 || kb < nextB) {
				nextB, nextL = kb, kl
			}
		}
		if nextB == -1 {
			pts[b-1] = pts[b-2] + (pts[b-2] - pts[b-3])
			continue
		}
		if l, ok := knots[b]; ok {
			pts[b-1] = l
			prevB, prevL = b, l
			continue
		}
		frac := float64(b-prevB) / float64(nextB-prevB)
		pts[b-1] = prevL + time.Duration(frac*float64(nextL-prevL))
	}
	return pts
}

// Table2Profiles returns the batching profiles of the paper's Table 2.
func Table2Profiles() (map[string]*profiler.Profile, error) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	base := func(id string) *profiler.Profile {
		return &profiler.Profile{ModelID: id, GPU: profiler.GTX1080Ti, Alpha: time.Millisecond, Beta: time.Millisecond, MaxBatch: 16}
	}
	out := map[string]*profiler.Profile{
		"A": base("A").WithPoints(PointsFromKnots(ms(40), map[int]time.Duration{4: ms(50), 8: ms(75), 16: ms(100)}, 16)),
		"B": base("B").WithPoints(PointsFromKnots(ms(30), map[int]time.Duration{4: ms(50), 8: ms(90), 16: ms(125)}, 16)),
		"C": base("C").WithPoints(PointsFromKnots(ms(40), map[int]time.Duration{4: ms(60), 8: ms(95), 16: ms(125)}, 16)),
	}
	for _, p := range out {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func table2(*RunContext) (*Table, error) {
	profiles, err := Table2Profiles()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table2",
		Title:  "squishy bin packing on the Table 2 example (SLOs 200/250/250 ms)",
		Header: []string{"Scenario", "Rates (A,B,C)", "GPUs", "Assignment"},
	}
	scenarios := []struct {
		name       string
		ra, rb, rc float64
	}{
		{"saturate", 480, 256, 128},
		{"residual", 64, 32, 32},
	}
	for _, sc := range scenarios {
		sessions := []scheduler.Session{
			{ID: "sA", ModelID: "A", SLO: 200 * time.Millisecond, Rate: sc.ra},
			{ID: "sB", ModelID: "B", SLO: 250 * time.Millisecond, Rate: sc.rb},
			{ID: "sC", ModelID: "C", SLO: 250 * time.Millisecond, Rate: sc.rc},
		}
		plan, err := scheduler.Pack(sessions, profiles, scheduler.Config{})
		if err != nil {
			return nil, err
		}
		if err := scheduler.Validate(plan, sessions, profiles, scheduler.Config{}); err != nil {
			return nil, err
		}
		var desc []string
		for _, g := range plan.GPUs {
			var parts []string
			for _, a := range g.Allocs {
				parts = append(parts, fmt.Sprintf("%s@b%d", a.ModelID, a.Batch))
			}
			kind := "shared"
			if g.Saturated {
				kind = "dedicated"
			}
			desc = append(desc, fmt.Sprintf("[%s %s duty=%v]", kind, joinComma(parts), g.Duty))
		}
		t.AddRow(sc.name,
			fmt.Sprintf("%.0f,%.0f,%.0f", sc.ra, sc.rb, sc.rc),
			fmt.Sprintf("%d", plan.GPUCount()),
			joinComma(desc))
	}
	t.Notes = append(t.Notes, "paper: residual workload packs A(b=8)+B(b=4) on one GPU at 125ms duty; C alone")
	return t, nil
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// --- Figure 3/4 -----------------------------------------------------------

func figure4(*RunContext) (*Table, error) {
	tputX := map[int]float64{40: 200, 50: 250, 60: 300}
	tputY := map[int]float64{40: 300, 50: 400, 60: 500}
	t := &Table{
		ID:     "fig4",
		Title:  "average pipeline throughput for three latency splits of a 100ms budget",
		Header: []string{"Split (X,Y) ms", "gamma=0.1", "gamma=1", "gamma=10"},
		Notes:  []string{"paper Figure 4: 192.3/142.9/40.0; 235.3/153.8/34.5; 272.7/150.0/27.3 — no universal best split"},
	}
	for _, split := range [][2]int{{40, 60}, {50, 50}, {60, 40}} {
		row := []string{fmt.Sprintf("%d,%d", split[0], split[1])}
		for _, gamma := range []float64{0.1, 1, 10} {
			avg := queryopt.PipelineAvgThroughput(tputX[split[0]], tputY[split[1]], gamma)
			row = append(row, fmt.Sprintf("%.1f", avg))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// --- Figure 5 / Figure 9 ---------------------------------------------------

// fig5Profile builds the §4.3 synthetic profile: SLO 100ms, optimal
// single-GPU throughput 500 r/s at batch 25 (2ℓ(25)=100ms), so
// β = 50ms - 25α.
func fig5Profile(alphaMs float64) *profiler.Profile {
	alpha := time.Duration(alphaMs * float64(time.Millisecond))
	beta := 50*time.Millisecond - 25*alpha
	return &profiler.Profile{
		ModelID: fmt.Sprintf("synthetic-a%.1f", alphaMs), GPU: profiler.GTX1080Ti,
		Alpha: alpha, Beta: beta, MaxBatch: 64,
		MemBase: 1 << 30, MemPerItem: 1 << 20,
	}
}

// dropPolicyBadRate offers `rate` r/s to one GPU running the fig5 profile
// under the given policy and returns the bad rate.
func dropPolicyBadRate(rc *RunContext, policy backend.DropPolicy, p *profiler.Profile, proc workload.Process,
	horizon time.Duration, seed int64) float64 {
	return dropPolicyBadRateTarget(rc, policy, p, proc, horizon, seed, 25)
}

// dropPolicyBadRateTarget is dropPolicyBadRate with an explicit
// scheduler-assigned batch size (early drop's window). Each call builds an
// isolated clock/device/backend, so cells invoke it concurrently.
func dropPolicyBadRateTarget(rc *RunContext, policy backend.DropPolicy, p *profiler.Profile, proc workload.Process,
	horizon time.Duration, seed int64, target int) float64 {
	clock := simclock.New()
	dev := gpusim.New(clock, "g", profiler.GTX1080Ti, gpusim.Exclusive)
	var good, miss, drop int
	be := backend.New("b", clock, dev, backend.Config{Policy: policy, Overlap: true},
		func(r backend.Request, outcome backend.Outcome, at time.Duration) {
			switch {
			case outcome.Bad():
				drop++
			case at > r.Deadline:
				miss++
			default:
				good++
			}
		})
	if err := be.Configure([]backend.Unit{{ID: "u", Profile: p, TargetBatch: target}}); err != nil {
		panic(err)
	}
	clock.RunUntil(2 * time.Second) // model load
	rng := rand.New(rand.NewSource(seed))
	workload.Start(clock, rng, "s", 100*time.Millisecond, proc, clock.Now()+horizon,
		func(r workload.Request) { _ = be.Enqueue("u", r) })
	clock.Run()
	rc.AddEvents(clock.Executed())
	total := good + miss + drop
	if total == 0 {
		return 0
	}
	return float64(miss+drop) / float64(total)
}

func figure5(rc *RunContext) (*Table, error) {
	horizon := 60 * time.Second
	if rc.Short {
		horizon = 15 * time.Second
	}
	t := &Table{
		ID:     "fig5",
		Title:  "lazy dropping bad rate at 90% load (SLO 100ms, optimal 500 r/s)",
		Header: []string{"alpha (ms)", "uniform bad %", "poisson bad %"},
		Notes:  []string{"paper Figure 5: poisson bad rate ~35% at alpha=1.0 falling toward ~10% at 1.8; uniform near zero"},
	}
	alphas := []float64{1.0, 1.2, 1.4, 1.6, 1.8}
	// Cells: alpha x {uniform, poisson}.
	bads := runner.MapNamed("figure5", len(alphas)*2, func(i int) float64 {
		p := fig5Profile(alphas[i/2])
		if i%2 == 0 {
			return dropPolicyBadRate(rc, backend.LazyDrop{}, p, workload.Uniform{Rate: 450}, horizon, 1)
		}
		return dropPolicyBadRate(rc, backend.LazyDrop{}, p, workload.Poisson{Rate: 450}, horizon, 2)
	})
	for i, alpha := range alphas {
		t.AddRow(fmt.Sprintf("%.1f", alpha),
			fmt.Sprintf("%.1f", 100*bads[2*i]),
			fmt.Sprintf("%.1f", 100*bads[2*i+1]))
	}
	return t, nil
}

func figure9(rc *RunContext) (*Table, error) {
	horizon := 30 * time.Second
	tol := 0.02
	if rc.Short {
		horizon = 10 * time.Second
		tol = 0.05
	}
	t := &Table{
		ID:     "fig9",
		Title:  "max throughput at 99% within SLO: lazy vs early drop (Poisson arrivals)",
		Header: []string{"alpha (ms)", "lazy (req/s)", "early (req/s)", "early gain %", "optimal"},
		Notes:  []string{"paper Figure 9: early drop up to ~25% higher than lazy; optimal is 500"},
	}
	alphas := []float64{1.0, 1.2, 1.4, 1.6, 1.8}
	// Cells: alpha x {lazy, early}; each cell is a full k-probe search.
	tputs := runner.MapNamed("figure9", len(alphas)*2, func(i int) float64 {
		p := fig5Profile(alphas[i/2])
		var policy backend.DropPolicy = backend.LazyDrop{}
		if i%2 == 1 {
			policy = backend.EarlyDrop{}
		}
		return metrics.MaxGoodputK(50, 520, metrics.GoodputTarget, tol, goodputProbes, func(rate float64) float64 {
			return dropPolicyBadRate(rc, policy, p, workload.Poisson{Rate: rate}, horizon, 3)
		})
	})
	for i, alpha := range alphas {
		lazy, early := tputs[2*i], tputs[2*i+1]
		t.AddRow(fmt.Sprintf("%.1f", alpha),
			fmt.Sprintf("%.0f", lazy),
			fmt.Sprintf("%.0f", early),
			fmt.Sprintf("%.0f", 100*(early/lazy-1)),
			"500")
	}
	return t, nil
}

// --- Figure 15 -------------------------------------------------------------

func figure15(*RunContext) (*Table, error) {
	mdb := model.Catalog()
	pdb, err := profiler.CatalogProfiles(mdb)
	if err != nil {
		return nil, err
	}
	base := pdb.MustGet(model.ResNet50, profiler.GTX1080Ti)
	bm := mdb.MustGet(model.ResNet50)
	suffixFrac := float64(bm.SuffixFLOPs(bm.NumLayers()-2)) / float64(bm.FLOPs())
	slo := 100 * time.Millisecond
	t := &Table{
		ID:    "fig15",
		Title: "prefix batching: throughput and memory vs number of ResNet-50 variants (1 GPU, SLO 100ms)",
		Header: []string{"variants", "w/o prefix r/s", "w/ prefix r/s", "gain",
			"mem w/o", "mem 1FC", "mem 2FC", "mem 3FC"},
		Notes: []string{"paper Figure 15: prefix batching sustains up to ~110% higher throughput; memory stays near-flat with shared prefixes"},
	}
	for _, k := range []int{2, 4, 6, 8, 10} {
		sep, err := profiler.SeparateVariantsProfile(base, k)
		if err != nil {
			return nil, err
		}
		comb, err := profiler.CombinedProfile(base, suffixFrac, k)
		if err != nil {
			return nil, err
		}
		_, sepT := sep.SaturateBatch(slo)
		_, combT := comb.SaturateBatch(slo)
		row := []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.0f", sepT),
			fmt.Sprintf("%.0f", combT),
			fmt.Sprintf("%.2fx", combT/sepT),
			fmtGB(sep.MemBase),
		}
		for fc := 1; fc <= 3; fc++ {
			c, err := profiler.CombinedProfile(base, suffixFrac*float64(fc), k)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtGB(c.MemBase))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func fmtGB(b int64) string {
	return fmt.Sprintf("%.2fGB", float64(b)/float64(1<<30))
}
