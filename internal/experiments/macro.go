package experiments

import (
	"fmt"
	"time"

	"nexus/internal/apps"
	"nexus/internal/cluster"
	"nexus/internal/globalsched"
	"nexus/internal/metrics"
	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/queryopt"
	"nexus/internal/runner"
	"nexus/internal/workload"
)

func init() {
	register(Experiment{ID: "fig10", Description: "Game analysis: systems + cumulative ablation (Figure 10)", Run: figure10})
	register(Experiment{ID: "fig11", Description: "Traffic analysis: systems + cumulative ablation (Figure 11)", Run: figure11})
	register(Experiment{ID: "fig12", Description: "Traffic rush vs non-rush hour (Figure 12)", Run: figure12})
	register(Experiment{ID: "fig13", Description: "Large-scale multi-application deployment window (Figure 13)", Run: figure13})
	register(Experiment{ID: "fig14", Description: "GPU multiplexing: models and SLOs on one GPU (Figure 14)", Run: figure14})
	register(Experiment{ID: "fig16", Description: "Squishy vs batch-oblivious scheduling mixes (Figure 16)", Run: figure16})
	register(Experiment{ID: "fig17", Description: "Query analysis vs even split (Figure 17)", Run: figure17})
	register(Experiment{ID: "sec7.4", Description: "GPU efficiency vs theoretical lower bound (Section 7.4)", Run: section74})
}

// deployCfg carries common knobs for deployment-based experiments.
type deployCfg struct {
	system   cluster.System
	features cluster.Features
	gpus     int
	seed     int64
}

// goodputProbes is the number of candidate rates the speculative goodput
// search evaluates concurrently per round (metrics.MaxGoodputK). It is a
// fixed constant — never derived from the worker count — so search results
// are identical in sequential and parallel runs.
const goodputProbes = 4

// searchGoodput finds the max rate served with >=99% goodness using the
// speculative k-probe search; build deploys the workload for an offered
// rate. Each probe builds an isolated deployment (own clock, own rng), so
// probes run concurrently; executed events are accumulated into rc.
func searchGoodput(rc *RunContext, lo, hi float64, horizon time.Duration, tol float64,
	build func(rate float64) (*cluster.Deployment, error)) float64 {
	eval := func(rate float64) float64 {
		d, err := build(rate)
		if err != nil {
			return 1
		}
		bad, err := d.Run(horizon)
		rc.AddEvents(d.Clock.Executed())
		if err != nil {
			return 1
		}
		return bad
	}
	return metrics.MaxGoodputK(lo, hi, metrics.GoodputTarget, tol, goodputProbes, eval)
}

// finishDeployment folds a sequential (non-sweep) deployment's event count
// into the run context.
func finishDeployment(rc *RunContext, d *cluster.Deployment) {
	rc.AddEvents(d.Clock.Executed())
}

// systemCell is one (row, system, features) sweep cell.
type systemCell struct {
	name string
	sys  cluster.System
	f    cluster.Features
}

// cumulativeAblation materializes the feature configs of a cumulative
// ablation up front, so the resulting cells are independent and can run
// concurrently.
func cumulativeAblation(steps []struct {
	name   string
	mutate func(*cluster.Features)
}) []systemCell {
	f := cluster.AllFeatures()
	cells := make([]systemCell, 0, len(steps))
	for _, s := range steps {
		s.mutate(&f)
		cells = append(cells, systemCell{s.name, cluster.Nexus, f})
	}
	return cells
}

// --- Figure 10: game analysis ---------------------------------------------

func gameBuilder(cfg deployCfg, horizonEpoch time.Duration) func(rate float64) (*cluster.Deployment, error) {
	return func(rate float64) (*cluster.Deployment, error) {
		d, err := cluster.New(cluster.Config{
			System: cfg.system, Features: cfg.features,
			GPUs: cfg.gpus, Seed: cfg.seed, Epoch: horizonEpoch,
			FixedCluster: true,
		})
		if err != nil {
			return nil, err
		}
		if _, err := apps.Deploy(d, apps.Game(20, rate/7)); err != nil {
			return nil, err
		}
		return d, nil
	}
}

func figure10(rc *RunContext) (*Table, error) {
	horizon, tol := 20*time.Second, 0.02
	if rc.Short {
		horizon, tol = 8*time.Second, 0.06
	}
	t := &Table{
		ID:     "fig10",
		Title:  "game analysis max request rate (20 games, SLO 50ms, 16 GPUs); ablation is cumulative",
		Header: []string{"System", "req/s", "vs Nexus"},
		Notes: []string{
			"paper Figure 10: TF 440, Clipper 324, Nexus 4120, -PB 3628, -SS 2489, -ED 2413, -OL 325",
			"absolute rates differ (simulated GPUs); compare ratios and ordering",
		},
	}
	cells := []systemCell{
		{"TF Serving", cluster.TFServing, cluster.Features{}},
		{"Clipper", cluster.Clipper, cluster.Features{}},
		{"Nexus", cluster.Nexus, cluster.AllFeatures()},
	}
	cells = append(cells, cumulativeAblation([]struct {
		name   string
		mutate func(*cluster.Features)
	}{
		{"-PB", func(f *cluster.Features) { f.PrefixBatch = false }},
		{"-SS", func(f *cluster.Features) { f.Squishy = false }},
		{"-ED", func(f *cluster.Features) { f.EarlyDrop = false }},
		{"-OL", func(f *cluster.Features) { f.Overlap = false }},
	})...)
	tputs := runner.MapNamed("figure10", len(cells), func(i int) float64 {
		return searchGoodput(rc, 20, 150000, horizon, tol,
			gameBuilder(deployCfg{cells[i].sys, cells[i].f, 16, 11}, 10*time.Second))
	})
	nexusTput := tputs[2]
	for i, c := range cells {
		t.AddRow(c.name, fmt.Sprintf("%.0f", tputs[i]), fmt.Sprintf("%.2f", tputs[i]/nexusTput))
	}
	return t, nil
}

// --- Figure 11 / 12: traffic analysis ---------------------------------------

func trafficBuilder(cfg deployCfg, rush bool) func(rate float64) (*cluster.Deployment, error) {
	return func(rate float64) (*cluster.Deployment, error) {
		d, err := cluster.New(cluster.Config{
			System: cfg.system, Features: cfg.features,
			GPUs: cfg.gpus, Seed: cfg.seed, Epoch: 10 * time.Second,
			FixedCluster: true,
		})
		if err != nil {
			return nil, err
		}
		if _, err := apps.Deploy(d, apps.Traffic(20, rate/20, rush)); err != nil {
			return nil, err
		}
		return d, nil
	}
}

func figure11(rc *RunContext) (*Table, error) {
	horizon, tol := 20*time.Second, 0.02
	if rc.Short {
		horizon, tol = 8*time.Second, 0.06
	}
	t := &Table{
		ID:     "fig11",
		Title:  "traffic analysis max query rate (20 cameras, SLO 400ms, 16 GPUs, non-rush); ablation is cumulative",
		Header: []string{"System", "q/s", "vs Nexus"},
		Notes: []string{
			"paper Figure 11: TF 297, Clipper 227, Nexus 534, -QA 433, -SS 337, -ED 326, -OL 216",
		},
	}
	cells := []systemCell{
		{"TF Serving", cluster.TFServing, cluster.Features{}},
		{"Clipper", cluster.Clipper, cluster.Features{}},
		{"Nexus", cluster.Nexus, cluster.AllFeatures()},
	}
	cells = append(cells, cumulativeAblation([]struct {
		name   string
		mutate func(*cluster.Features)
	}{
		{"-QA", func(f *cluster.Features) { f.QueryAnalysis = false }},
		{"-SS", func(f *cluster.Features) { f.Squishy = false }},
		{"-ED", func(f *cluster.Features) { f.EarlyDrop = false }},
		{"-OL", func(f *cluster.Features) { f.Overlap = false }},
	})...)
	tputs := runner.MapNamed("figure11", len(cells), func(i int) float64 {
		return searchGoodput(rc, 5, 3000, horizon, tol,
			trafficBuilder(deployCfg{cells[i].sys, cells[i].f, 16, 7}, false))
	})
	nexusTput := tputs[2]
	t.AddRow("TF Serving", fmt.Sprintf("%.0f", tputs[0]), "")
	t.AddRow("Clipper", fmt.Sprintf("%.0f", tputs[1]), "")
	t.AddRow("Nexus", fmt.Sprintf("%.0f", nexusTput), "1.00")
	for i := 3; i < len(cells); i++ {
		t.AddRow(cells[i].name, fmt.Sprintf("%.0f", tputs[i]), fmt.Sprintf("%.2f", tputs[i]/nexusTput))
	}
	return t, nil
}

func figure12(rc *RunContext) (*Table, error) {
	horizon, tol := 20*time.Second, 0.02
	if rc.Short {
		horizon, tol = 8*time.Second, 0.06
	}
	t := &Table{
		ID:     "fig12",
		Title:  "diurnal throughput variation for traffic analysis (16 GPUs)",
		Header: []string{"System", "rush hour q/s", "non-rush q/s"},
		Notes: []string{
			"paper Figure 12: rush/non-rush — TF 146/227, Clipper 61/297, Nexus w/o QA 254/433, Nexus 264/534",
		},
	}
	noQA := cluster.AllFeatures()
	noQA.QueryAnalysis = false
	systems := []systemCell{
		{"TF Serving", cluster.TFServing, cluster.Features{}},
		{"Clipper", cluster.Clipper, cluster.Features{}},
		{"Nexus w/o QA", cluster.Nexus, noQA},
		{"Nexus", cluster.Nexus, cluster.AllFeatures()},
	}
	// Cells: system x {rush, non-rush}.
	tputs := runner.MapNamed("figure12", len(systems)*2, func(i int) float64 {
		s := systems[i/2]
		rush := i%2 == 0
		return searchGoodput(rc, 5, 3000, horizon, tol,
			trafficBuilder(deployCfg{s.sys, s.f, 16, 7}, rush))
	})
	for i, s := range systems {
		t.AddRow(s.name, fmt.Sprintf("%.0f", tputs[2*i]), fmt.Sprintf("%.0f", tputs[2*i+1]))
	}
	return t, nil
}

// --- Figure 13: large-scale deployment --------------------------------------

func figure13(rc *RunContext) (*Table, error) {
	// 100 K80s serve roughly half the nominal workload unit (K80s are
	// ~3.2x slower than the 1080Ti the unit was sized for).
	gpus, scale := 100, 0.5
	window := 1000 * time.Second
	sample := 100 * time.Second
	gpuType := profiler.K80
	if rc.Short {
		gpus, scale = 24, 0.2
		window = 200 * time.Second
		sample = 25 * time.Second
		gpuType = profiler.GTX1080Ti
	}
	d, err := cluster.New(cluster.Config{
		System: cluster.Nexus, Features: cluster.AllFeatures(),
		GPUs: gpus, GPU: gpuType, Seed: 13,
		Epoch: 30 * time.Second, Warmup: 10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	// Seven applications with Poisson arrivals.
	for _, b := range apps.All(scale) {
		if _, err := apps.Deploy(d, func(mdb *model.DB) (*apps.Spec, error) {
			s, err := b(mdb)
			if err != nil {
				return nil, err
			}
			return apps.WithPoisson(s), nil
		}); err != nil {
			return nil, err
		}
	}
	// A mid-window surge of SSD-heavy traffic (the Figure 13 workload
	// swing): a second camera feed comes online for the middle third.
	surgeSpec, err := apps.Traffic(10, 16*scale, false)(d.ModelDB())
	if err != nil {
		return nil, err
	}
	surgeQuery := surgeSpec.Queries[0].Spec
	surgeQuery.Query.Name = "traffic-surge"
	surgeSched := workload.Schedule{
		{Until: window / 3, Rate: 0},
		{Until: 2 * window / 3, Rate: surgeQuery.ExpectedRate},
		{Until: window * 10, Rate: 0},
	}
	surgeQuery.ExpectedRate = 0.1
	if err := d.AddQuery(surgeQuery, workload.Modulated{RateAt: surgeSched.RateAt}); err != nil {
		return nil, err
	}
	if _, err := d.Run(window); err != nil {
		return nil, err
	}
	finishDeployment(rc, d)
	t := &Table{
		ID:     "fig13",
		Title:  fmt.Sprintf("deployment window: 7 apps on %d %s GPUs, Poisson arrivals with a mid-window surge", gpus, gpuType),
		Header: []string{"t", "offered req/s", "GPUs in use", "bad %"},
		Notes: []string{
			"paper Figure 13: GPU usage tracks the workload; SLO violations 0.27% overall with sporadic spikes at reconfigurations",
		},
	}
	buckets := int(window / sample)
	perSample := int(sample / time.Second)
	for i := 0; i < buckets; i++ {
		var offered, bad, good, gpusUsed float64
		for j := i * perSample; j < (i+1)*perSample; j++ {
			offered += d.Arrivals.Sum(j)
			bad += d.BadEvts.Sum(j)
			good += d.GoodEvts.Sum(j)
			gpusUsed += d.GPUsUsed.Mean(j)
		}
		badPct := 0.0
		if bad+good > 0 {
			badPct = 100 * bad / (bad + good)
		}
		t.AddRow(
			fmt.Sprintf("%ds", (i+1)*int(sample/time.Second)),
			fmt.Sprintf("%.0f", offered/sample.Seconds()),
			fmt.Sprintf("%.1f", gpusUsed/float64(perSample)),
			fmt.Sprintf("%.2f", badPct),
		)
	}
	t.AddRow("overall", "", fmt.Sprintf("%.1f", d.AvgGPUsUsed()), fmt.Sprintf("%.2f", 100*d.BadRate()))
	return t, nil
}

// --- Figure 14: GPU multiplexing ---------------------------------------------

func multiplexBuilder(system cluster.System, f cluster.Features, nModels int, slo time.Duration, seed int64) func(rate float64) (*cluster.Deployment, error) {
	return func(rate float64) (*cluster.Deployment, error) {
		d, err := cluster.New(cluster.Config{
			System: system, Features: f, GPUs: 1, Seed: seed, Epoch: 10 * time.Second,
			FixedCluster: true,
		})
		if err != nil {
			return nil, err
		}
		// n independent copies of the Inception model (distinct weights, so
		// no prefix sharing applies), equal shares of the offered rate.
		mdb := d.ModelDB()
		for i := 0; i < nModels; i++ {
			id := fmt.Sprintf("%s-v%d", model.InceptionV3, 900+i)
			if _, err := mdb.Get(id); err != nil {
				base := mdb.MustGet(model.InceptionV3)
				v, err := model.Specialize(base, id, base.NumLayers()-1)
				if err != nil {
					return nil, err
				}
				if err := mdb.Register(v); err != nil {
					return nil, err
				}
			}
		}
		if err := d.RefreshProfiles(); err != nil {
			return nil, err
		}
		for i := 0; i < nModels; i++ {
			if err := d.AddSession(globalsched.SessionSpec{
				ID:      fmt.Sprintf("copy%d", i),
				ModelID: fmt.Sprintf("%s-v%d", model.InceptionV3, 900+i),
				SLO:     slo, ExpectedRate: rate / float64(nModels),
			}, nil); err != nil {
				return nil, err
			}
		}
		return d, nil
	}
}

func figure14(rc *RunContext) (*Table, error) {
	horizon, tol := 20*time.Second, 0.02
	if rc.Short {
		horizon, tol = 8*time.Second, 0.06
	}
	systems := []systemCell{
		{"Clipper", cluster.Clipper, cluster.Features{}},
		{"TF Serving", cluster.TFServing, cluster.Features{}},
		{"Nexus-parallel", cluster.NexusParallel, cluster.AllFeatures()},
		{"Nexus", cluster.Nexus, cluster.AllFeatures()},
	}
	t := &Table{
		ID:     "fig14",
		Title:  "GPU multiplexing on a single GPU: Inception copies (SLO 100ms), then SLO sweep (3 copies)",
		Header: []string{"Config", "Clipper", "TF Serving", "Nexus-parallel", "Nexus"},
		Notes: []string{
			"paper Figure 14: Nexus 1.4-2.1x TF Serving and 1.9-9.8x Clipper; Nexus-parallel in between",
		},
	}
	// Rows: four model counts at 100ms, then four SLOs at 3 copies. Every
	// (row, system) pair is an independent cell.
	type rowSpec struct {
		label string
		n     int
		slo   time.Duration
		seed  int64
	}
	var rows []rowSpec
	for _, n := range []int{2, 3, 4, 5} {
		rows = append(rows, rowSpec{fmt.Sprintf("%d models @100ms", n), n, 100 * time.Millisecond, 21})
	}
	for _, slo := range []time.Duration{50, 100, 150, 200} {
		rows = append(rows, rowSpec{fmt.Sprintf("3 models @%dms", slo), 3, slo * time.Millisecond, 22})
	}
	nSys := len(systems)
	tputs := runner.MapNamed("figure14", len(rows)*nSys, func(i int) float64 {
		r, s := rows[i/nSys], systems[i%nSys]
		return searchGoodput(rc, 10, 3000, horizon, tol,
			multiplexBuilder(s.sys, s.f, r.n, r.slo, r.seed))
	})
	for ri, r := range rows {
		row := []string{r.label}
		for si := range systems {
			row = append(row, fmt.Sprintf("%.0f", tputs[ri*nSys+si]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// --- Figure 16: squishy scheduling mixes --------------------------------------

func figure16(rc *RunContext) (*Table, error) {
	horizon, tol := 20*time.Second, 0.02
	if rc.Short {
		horizon, tol = 8*time.Second, 0.06
	}
	t := &Table{
		ID:     "fig16",
		Title:  "squishy vs batch-oblivious scheduling: 16 sessions on 8 GPUs across workload mixes",
		Header: []string{"Mix", "oblivious req/s", "squishy req/s", "gain %"},
		Notes: []string{
			"paper Figure 16: squishy outperforms across all mixes, up to 64% on mixed rates, ~11% lowest",
		},
	}
	type mix struct {
		name     string
		sessions func(rate float64) []globalsched.SessionSpec
	}
	slos := []time.Duration{50, 100, 150, 200}
	// Eight architectures; all have 2*l(1) within the tighter 50ms SLO.
	models8 := []string{
		model.InceptionV3, model.ResNet50, model.GoogLeNetCar, model.VGG7,
		model.Inception4, model.VGGFace, model.TextCRNN, model.GazeNet,
	}
	mixes := []mix{
		{"mixed SLOs (Inception)", func(rate float64) []globalsched.SessionSpec {
			var out []globalsched.SessionSpec
			for i := 0; i < 16; i++ {
				out = append(out, globalsched.SessionSpec{
					ID: fmt.Sprintf("s%d", i), ModelID: model.InceptionV3,
					SLO: slos[i%4] * time.Millisecond, ExpectedRate: rate / 16,
				})
			}
			return out
		}},
		{"mixed SLOs (ResNet)", func(rate float64) []globalsched.SessionSpec {
			var out []globalsched.SessionSpec
			for i := 0; i < 16; i++ {
				out = append(out, globalsched.SessionSpec{
					ID: fmt.Sprintf("s%d", i), ModelID: model.ResNet50,
					SLO: slos[i%4] * time.Millisecond, ExpectedRate: rate / 16,
				})
			}
			return out
		}},
		{"mixed rates (Inception)", func(rate float64) []globalsched.SessionSpec {
			rates := workload.SplitRate(rate, 16, 0.9)
			var out []globalsched.SessionSpec
			for i := 0; i < 16; i++ {
				out = append(out, globalsched.SessionSpec{
					ID: fmt.Sprintf("s%d", i), ModelID: model.InceptionV3,
					SLO: 100 * time.Millisecond, ExpectedRate: rates[i],
				})
			}
			return out
		}},
		{"mixed rates (ResNet)", func(rate float64) []globalsched.SessionSpec {
			rates := workload.SplitRate(rate, 16, 0.9)
			var out []globalsched.SessionSpec
			for i := 0; i < 16; i++ {
				out = append(out, globalsched.SessionSpec{
					ID: fmt.Sprintf("s%d", i), ModelID: model.ResNet50,
					SLO: 100 * time.Millisecond, ExpectedRate: rates[i],
				})
			}
			return out
		}},
		{"mixed models & SLOs", func(rate float64) []globalsched.SessionSpec {
			var out []globalsched.SessionSpec
			for i := 0; i < 16; i++ {
				slo := 50 * time.Millisecond
				if i%2 == 1 {
					slo = 100 * time.Millisecond
				}
				out = append(out, globalsched.SessionSpec{
					ID: fmt.Sprintf("s%d", i), ModelID: models8[i/2],
					SLO: slo, ExpectedRate: rate / 16,
				})
			}
			return out
		}},
	}
	run := func(m mix, squishy bool) float64 {
		return searchGoodput(rc, 16, 60000, horizon, tol, func(rate float64) (*cluster.Deployment, error) {
			f := cluster.AllFeatures()
			f.Squishy = squishy
			f.PrefixBatch = false // isolate the scheduling effect
			d, err := cluster.New(cluster.Config{
				System: cluster.Nexus, Features: f, GPUs: 8, Seed: 31, Epoch: 10 * time.Second,
				FixedCluster: true,
			})
			if err != nil {
				return nil, err
			}
			for _, spec := range m.sessions(rate) {
				// Poisson arrivals: mixes are evaluated under bursty load,
				// where scheduling quality matters most.
				if err := d.AddSession(spec, workload.Poisson{Rate: spec.ExpectedRate}); err != nil {
					return nil, err
				}
			}
			return d, nil
		})
	}
	// Cells: mix x {oblivious, squishy}.
	tputs := runner.MapNamed("figure16", len(mixes)*2, func(i int) float64 {
		return run(mixes[i/2], i%2 == 1)
	})
	for i, m := range mixes {
		obl, sq := tputs[2*i], tputs[2*i+1]
		t.AddRow(m.name, fmt.Sprintf("%.0f", obl), fmt.Sprintf("%.0f", sq),
			fmt.Sprintf("%.0f", 100*(sq/obl-1)))
	}
	return t, nil
}

// --- Figure 17: query analysis -------------------------------------------------

func figure17(rc *RunContext) (*Table, error) {
	horizon, tol := 20*time.Second, 0.02
	if rc.Short {
		horizon, tol = 8*time.Second, 0.06
	}
	t := &Table{
		ID:     "fig17",
		Title:  "query analysis vs even split: SSD -> gamma x Inception on 8 GPUs",
		Header: []string{"SLO", "gamma", "even split q/s", "query analysis q/s", "gain %"},
		Notes: []string{
			"paper Figure 17: query analysis achieves 13-55% higher throughput than even splitting",
		},
	}
	build := func(slo time.Duration, gamma float64, qa bool) func(rate float64) (*cluster.Deployment, error) {
		return func(rate float64) (*cluster.Deployment, error) {
			f := cluster.AllFeatures()
			f.QueryAnalysis = qa
			d, err := cluster.New(cluster.Config{
				System: cluster.Nexus, Features: f, GPUs: 8, Seed: 17, Epoch: 10 * time.Second,
				FixedCluster: true,
			})
			if err != nil {
				return nil, err
			}
			q := &queryopt.Query{
				Name: "q", SLO: slo,
				Root: &queryopt.Node{Name: "det", ModelID: model.SSD, Edges: []queryopt.Edge{
					{Gamma: gamma, Child: &queryopt.Node{Name: "rec", ModelID: model.InceptionV3}},
				}},
			}
			if err := d.AddQuery(globalsched.QuerySpec{Query: q, ExpectedRate: rate}, nil); err != nil {
				return nil, err
			}
			return d, nil
		}
	}
	type combo struct {
		slo   time.Duration
		gamma float64
	}
	var combos []combo
	for _, slo := range []time.Duration{300, 400, 500} {
		for _, gamma := range []float64{0.1, 1, 10} {
			combos = append(combos, combo{slo, gamma})
		}
	}
	// Cells: (SLO, gamma) x {even split, query analysis}.
	tputs := runner.MapNamed("figure17", len(combos)*2, func(i int) float64 {
		c := combos[i/2]
		return searchGoodput(rc, 2, 2000, horizon, tol,
			build(c.slo*time.Millisecond, c.gamma, i%2 == 1))
	})
	for i, c := range combos {
		even, qa := tputs[2*i], tputs[2*i+1]
		t.AddRow(fmt.Sprintf("%dms", c.slo), fmt.Sprintf("%g", c.gamma),
			fmt.Sprintf("%.0f", even), fmt.Sprintf("%.0f", qa),
			fmt.Sprintf("%.0f", 100*(qa/even-1)))
	}
	return t, nil
}

// --- Section 7.4: utilization vs lower bound ------------------------------------

func section74(rc *RunContext) (*Table, error) {
	horizon := 120 * time.Second
	if rc.Short {
		horizon = 30 * time.Second
	}
	d, err := cluster.New(cluster.Config{
		System: cluster.Nexus, Features: cluster.AllFeatures(),
		GPUs: 16, Seed: 41, Epoch: 10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	// A controlled uniform workload of standalone sessions.
	specs := []globalsched.SessionSpec{
		{ID: "u0", ModelID: model.InceptionV3, SLO: 100 * time.Millisecond, ExpectedRate: 2500},
		{ID: "u1", ModelID: model.ResNet50, SLO: 100 * time.Millisecond, ExpectedRate: 2500},
		{ID: "u2", ModelID: model.GoogLeNetCar, SLO: 80 * time.Millisecond, ExpectedRate: 2000},
		{ID: "u3", ModelID: model.VGGFace, SLO: 200 * time.Millisecond, ExpectedRate: 600},
		{ID: "u4", ModelID: model.Darknet53, SLO: 300 * time.Millisecond, ExpectedRate: 250},
		{ID: "u5", ModelID: model.VGG7, SLO: 60 * time.Millisecond, ExpectedRate: 3000},
	}
	for _, s := range specs {
		if err := d.AddSession(s, nil); err != nil {
			return nil, err
		}
	}
	bad, err := d.Run(horizon)
	if err != nil {
		return nil, err
	}
	finishDeployment(rc, d)
	// Theoretical lower bound: GPUs = sum R_i / T_i with T_i the best
	// fully-batched throughput under the SLO (§7.4's optimal assumes full
	// batching and back-to-back execution).
	mdb := model.Catalog()
	pdb, err := profiler.CatalogProfiles(mdb)
	if err != nil {
		return nil, err
	}
	var lower float64
	for _, s := range specs {
		p := pdb.MustGet(s.ModelID, profiler.GTX1080Ti)
		_, tput := p.SaturateBatch(s.SLO)
		lower += s.ExpectedRate / tput
	}
	used := d.AvgGPUsUsed()
	t := &Table{
		ID:     "sec7.4",
		Title:  "GPU efficiency vs theoretical lower bound (uniform workload, 16 GPUs)",
		Header: []string{"Metric", "Value"},
		Notes: []string{
			"paper §7.4: Nexus used 11.7 GPUs vs a 9.8-GPU lower bound (84% efficiency) with bad rate < 1%",
		},
	}
	t.AddRow("bad rate", fmt.Sprintf("%.2f%%", 100*bad))
	t.AddRow("GPUs used (avg)", fmt.Sprintf("%.1f", used))
	t.AddRow("lower bound", fmt.Sprintf("%.1f", lower))
	t.AddRow("efficiency", fmt.Sprintf("%.0f%%", 100*lower/used))
	return t, nil
}
