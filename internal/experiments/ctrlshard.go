package experiments

import (
	"fmt"
	"time"

	"nexus/internal/apps"
	"nexus/internal/cluster"
	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/runner"
	"nexus/internal/workload"
)

func init() {
	register(Experiment{
		ID:          "ctrl-shard",
		Description: "Sharded control plane vs monolithic: goodput parity on the Figure 13 workload",
		Run:         ctrlShard,
	})
}

// ctrlShardVariant is one control-plane configuration of the ablation.
type ctrlShardVariant struct {
	name       string
	shards     int
	hysteresis float64
	delta      bool
}

// ctrlShardResult carries one variant's deployment outcome plus the
// control-plane counters the sharded path exposes.
type ctrlShardResult struct {
	badPct    float64
	goodput   float64
	gpus      float64
	replanned int
	skipped   int
	moves     int
	deltas    int
	fulls     int
}

// ctrlShardDeploy runs the Figure 13 deployment window (seven applications
// with Poisson arrivals and a mid-window traffic surge) under a given
// control-plane configuration. The workload, seed, and horizon are identical
// across variants, so any goodput difference is attributable to the planner.
func ctrlShardDeploy(rc *RunContext, v ctrlShardVariant) (ctrlShardResult, error) {
	gpus, scale := 100, 0.5
	window := 1000 * time.Second
	gpuType := profiler.K80
	if rc.Short {
		gpus, scale = 24, 0.2
		window = 200 * time.Second
		gpuType = profiler.GTX1080Ti
	}
	d, err := cluster.New(cluster.Config{
		System: cluster.Nexus, Features: cluster.AllFeatures(),
		GPUs: gpus, GPU: gpuType, Seed: 13,
		Epoch: 30 * time.Second, Warmup: 10 * time.Second,
		PlannerShards: v.shards, PlanHysteresis: v.hysteresis, DeltaRouting: v.delta,
	})
	if err != nil {
		return ctrlShardResult{}, err
	}
	for _, b := range apps.All(scale) {
		if _, err := apps.Deploy(d, func(mdb *model.DB) (*apps.Spec, error) {
			s, err := b(mdb)
			if err != nil {
				return nil, err
			}
			return apps.WithPoisson(s), nil
		}); err != nil {
			return ctrlShardResult{}, err
		}
	}
	surgeSpec, err := apps.Traffic(10, 16*scale, false)(d.ModelDB())
	if err != nil {
		return ctrlShardResult{}, err
	}
	surgeQuery := surgeSpec.Queries[0].Spec
	surgeQuery.Query.Name = "traffic-surge"
	surgeSched := workload.Schedule{
		{Until: window / 3, Rate: 0},
		{Until: 2 * window / 3, Rate: surgeQuery.ExpectedRate},
		{Until: window * 10, Rate: 0},
	}
	surgeQuery.ExpectedRate = 0.1
	if err := d.AddQuery(surgeQuery, workload.Modulated{RateAt: surgeSched.RateAt}); err != nil {
		return ctrlShardResult{}, err
	}
	if _, err := d.Run(window); err != nil {
		return ctrlShardResult{}, err
	}
	finishDeployment(rc, d)
	res := ctrlShardResult{
		badPct:  100 * d.BadRate(),
		goodput: 100 * (1 - d.BadRate()),
		gpus:    d.AvgGPUsUsed(),
	}
	if v.shards >= 1 {
		res.replanned, res.skipped, res.moves = d.Sched.ShardTotals()
	}
	if v.delta {
		deltas, fulls, _ := d.Sched.RoutePushStats()
		res.deltas, res.fulls = int(deltas), int(fulls)
	}
	return res, nil
}

// ctrlShard compares the monolithic epoch planner against the sharded,
// incremental control plane on the Figure 13 deployment window. The
// headline acceptance bar is the goodput delta: partitioned planning with
// hysteresis and delta routing must stay within 1% of the monolithic
// baseline while cutting plan latency (the latter is measured by
// BenchmarkPack10kGPU, not here).
func ctrlShard(rc *RunContext) (*Table, error) {
	variants := []ctrlShardVariant{
		{name: "monolithic", shards: 0},
		{name: "sharded-1", shards: 1},
		{name: "sharded-4", shards: 4, hysteresis: 0.05, delta: true},
		{name: "sharded-8", shards: 8, hysteresis: 0.05, delta: true},
	}
	type cell struct {
		res ctrlShardResult
		err error
	}
	cells := runner.MapNamed("ctrlshard", len(variants), func(i int) cell {
		res, err := ctrlShardDeploy(rc, variants[i])
		return cell{res, err}
	})
	t := &Table{
		ID:     "ctrl-shard",
		Title:  "control-plane sharding ablation on the Figure 13 deployment window",
		Header: []string{"planner", "goodput %", "bad %", "GPUs in use", "shards replanned", "shards skipped", "cross-shard moves", "delta pushes", "full pushes", "goodput delta"},
		Notes: []string{
			"sharded planning must hold goodput within 1% of the monolithic planner on the same workload and seed",
			"sharded-1 exercises the shard machinery at n=1 and plans byte-identically to the monolithic path",
			"sharded-4/8 add plan hysteresis (5% band) and delta routing-table pushes",
		},
	}
	var mono ctrlShardResult
	for i, v := range variants {
		if cells[i].err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, cells[i].err)
		}
		res := cells[i].res
		if i == 0 {
			mono = res
		}
		dash := func(n int, on bool) string {
			if !on {
				return "-"
			}
			return fmt.Sprintf("%d", n)
		}
		t.AddRow(v.name,
			fmt.Sprintf("%.2f", res.goodput),
			fmt.Sprintf("%.2f", res.badPct),
			fmt.Sprintf("%.1f", res.gpus),
			dash(res.replanned, v.shards >= 1),
			dash(res.skipped, v.shards >= 1),
			dash(res.moves, v.shards >= 1),
			dash(res.deltas, v.delta),
			dash(res.fulls, v.delta),
			fmt.Sprintf("%+.2f%%", res.goodput-mono.goodput),
		)
	}
	return t, nil
}
