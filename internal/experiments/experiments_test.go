package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRegistry(t *testing.T) {
	all := List()
	if len(all) != 24 {
		t.Fatalf("registry has %d experiments, want 24", len(all))
	}
	// Sorted by ID.
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("List not sorted")
		}
	}
	for _, e := range all {
		if e.Description == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if e, err := Get("table1"); err != nil || e.ID != "table1" {
		t.Fatalf("Get(table1) = %+v, %v", e, err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.Notes = append(tab.Notes, "hello")
	out := tab.String()
	for _, want := range []string{"== x: demo ==", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if got := tab.Cell("333", "bb"); got != "4" {
		t.Fatalf("Cell = %q, want 4", got)
	}
	if tab.Cell("zz", "bb") != "" || tab.Cell("1", "zz") != "" {
		t.Fatal("missing cells should be empty")
	}
}

func mustRun(t *testing.T, id string) *Table {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(NewRunContext(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return tab
}

func cellFloat(t *testing.T, tab *Table, row, col string) float64 {
	t.Helper()
	raw := tab.Cell(row, col)
	raw = strings.TrimSuffix(strings.TrimSuffix(raw, "x"), "%")
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		t.Fatalf("cell (%s,%s) = %q not numeric: %v", row, col, tab.Cell(row, col), err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab := mustRun(t, "table1")
	// Table 1's claim: accelerators are dramatically cheaper per invocation.
	cpu := cellFloat(t, tab, "resnet50", "CPU cost ($)")
	gpu := cellFloat(t, tab, "resnet50", "GPU cost ($)")
	if cpu < 10*gpu {
		t.Fatalf("CPU cost %.4f not >> GPU cost %.4f", cpu, gpu)
	}
}

func TestTable2Shape(t *testing.T) {
	tab := mustRun(t, "table2")
	if got := tab.Cell("residual", "GPUs"); got != "2" {
		t.Fatalf("residual scenario used %s GPUs, want 2", got)
	}
	if got := tab.Cell("saturate", "GPUs"); got != "6" {
		t.Fatalf("saturate scenario used %s GPUs, want 6", got)
	}
	assignment := tab.Cell("residual", "Assignment")
	if !strings.Contains(assignment, "A@b8") || !strings.Contains(assignment, "B@b4") {
		t.Fatalf("residual assignment %q should colocate A@b8 with B@b4", assignment)
	}
}

func TestFigure4ExactPaperNumbers(t *testing.T) {
	tab := mustRun(t, "fig4")
	want := map[string][3]string{
		"40,60": {"192.3", "142.9", "40.0"},
		"50,50": {"235.3", "153.8", "34.5"},
		"60,40": {"272.7", "150.0", "27.3"},
	}
	cols := []string{"gamma=0.1", "gamma=1", "gamma=10"}
	for row, vals := range want {
		for i, col := range cols {
			if got := tab.Cell(row, col); got != vals[i] {
				t.Errorf("split %s %s = %s, want %s", row, col, got, vals[i])
			}
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	tab := mustRun(t, "fig5")
	// Uniform arrivals: near-zero bad rate at every alpha. Poisson: high
	// at small alpha, lower at large alpha (fixed cost amortization).
	firstPoisson := cellFloat(t, tab, "1.0", "poisson bad %")
	lastPoisson := cellFloat(t, tab, "1.8", "poisson bad %")
	if firstPoisson < 10 {
		t.Errorf("poisson bad at alpha=1.0 is %.1f%%, expected substantial", firstPoisson)
	}
	if lastPoisson >= firstPoisson {
		t.Errorf("poisson bad should fall with alpha: %.1f -> %.1f", firstPoisson, lastPoisson)
	}
	for _, alpha := range []string{"1.0", "1.4", "1.8"} {
		if u := cellFloat(t, tab, alpha, "uniform bad %"); u > 2 {
			t.Errorf("uniform bad at alpha=%s is %.1f%%, expected near zero", alpha, u)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	tab := mustRun(t, "fig9")
	for _, alpha := range []string{"1.0", "1.4", "1.8"} {
		lazy := cellFloat(t, tab, alpha, "lazy (req/s)")
		early := cellFloat(t, tab, alpha, "early (req/s)")
		if early < lazy {
			t.Errorf("alpha=%s: early %v < lazy %v", alpha, early, lazy)
		}
		if early > 505 {
			t.Errorf("alpha=%s: early %v above the 500 r/s optimum", alpha, early)
		}
	}
	// The gain shrinks as alpha grows (fixed cost matters less).
	gainLow := cellFloat(t, tab, "1.0", "early gain %")
	gainHigh := cellFloat(t, tab, "1.8", "early gain %")
	if gainLow <= gainHigh {
		t.Errorf("early-drop gain should shrink with alpha: %v -> %v", gainLow, gainHigh)
	}
}

func TestFigure15Shape(t *testing.T) {
	tab := mustRun(t, "fig15")
	// Prefix batching's advantage grows with the number of variants.
	gain2 := cellFloat(t, tab, "2", "gain")
	gain10 := cellFloat(t, tab, "10", "gain")
	if gain2 < 1 {
		t.Errorf("gain at 2 variants %.2f < 1", gain2)
	}
	if gain10 <= gain2 {
		t.Errorf("gain should grow with variants: %.2f -> %.2f", gain2, gain10)
	}
}

func TestPointsFromKnotsInterpolation(t *testing.T) {
	pts := PointsFromKnots(40*time.Millisecond,
		map[int]time.Duration{4: 50 * time.Millisecond, 8: 90 * time.Millisecond}, 8)
	if pts[3] != 50*time.Millisecond || pts[7] != 90*time.Millisecond {
		t.Fatalf("knots not honoured: %v", pts)
	}
	if pts[5] != 70*time.Millisecond { // midpoint of 50..90 over 4..8
		t.Fatalf("interpolation at b=6 = %v, want 70ms", pts[5])
	}
	// b=1..3 interpolate from the (0, 40ms) anchor.
	if pts[0] != 42500*time.Microsecond {
		t.Fatalf("b=1 = %v, want 42.5ms", pts[0])
	}
}

func TestTable2ProfilesValid(t *testing.T) {
	profiles, err := Table2Profiles()
	if err != nil {
		t.Fatal(err)
	}
	// Table 2's stated throughputs: A@16 = 160 r/s, B@16 = C@16 = 128 r/s.
	if got := profiles["A"].Throughput(16); got < 159 || got > 161 {
		t.Errorf("A@16 throughput %.1f, want 160", got)
	}
	if got := profiles["B"].Throughput(16); got < 127 || got > 129 {
		t.Errorf("B@16 throughput %.1f, want 128", got)
	}
}

// TestSection74ShortRun exercises the §7.4 efficiency experiment.
func TestSection74ShortRun(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	tab := mustRun(t, "sec7.4")
	eff := cellFloat(t, tab, "efficiency", "Value")
	if eff < 50 || eff > 101 {
		t.Fatalf("efficiency %.0f%% implausible", eff)
	}
	bad := cellFloat(t, tab, "bad rate", "Value")
	if bad > 1 {
		t.Fatalf("bad rate %.2f%% above target", bad)
	}
}

// TestFigure13ShortRun exercises the deployment-window experiment.
func TestFigure13ShortRun(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	tab := mustRun(t, "fig13")
	bad := cellFloat(t, tab, "overall", "bad %")
	if bad > 2 {
		t.Fatalf("overall bad %.2f%%, want well under 2%%", bad)
	}
}
