package experiments

import (
	"fmt"
	"time"

	"nexus/internal/cluster"
	"nexus/internal/globalsched"
	"nexus/internal/model"
	"nexus/internal/runner"
	"nexus/internal/scheduler"
	"nexus/internal/workload"
)

func init() {
	register(Experiment{
		ID:          "spatial",
		Description: "Temporal vs spatial vs hybrid GPU multiplexing on a small-model tight-SLO fleet",
		Run:         spatialSweep,
	})
}

// spatialVariant is one placement policy of the sweep.
type spatialVariant struct {
	name      string
	placement scheduler.Placement
}

// spatialResult carries one variant's deployment outcome.
type spatialResult struct {
	goodput      float64 // good completions per second
	badPct       float64
	gpus         float64 // mean GPUs in use
	goodPerGPU   float64
	spatialNodes int // spatial plan nodes in the final epoch
}

// spatialDeploy runs the camera-fleet workload under one placement policy.
// The fleet is the spatial sweet spot: many low-rate sessions of a small
// model under an SLO tight enough that temporal packing cannot merge their
// duty cycles — each session's batch execution alone nearly fills the
// SLO-clamped cycle, so the temporal planner dedicates a node per session
// at single-digit occupancy. A heavier recognition backbone rides along to
// show saturated placements are untouched by the policy.
func spatialDeploy(rc *RunContext, v spatialVariant) (spatialResult, error) {
	cams := 16
	window := 60 * time.Second
	if rc.Short {
		cams = 8
		window = 20 * time.Second
	}
	d, err := cluster.New(cluster.Config{
		System: cluster.Nexus, Features: cluster.AllFeatures(),
		GPUs: 24, Seed: 21,
		Epoch: 10 * time.Second, Audit: true,
		Placement:        v.placement,
		SliceGranularity: 4,
	})
	if err != nil {
		return spatialResult{}, err
	}
	for i := 0; i < cams; i++ {
		if err := d.AddSession(globalsched.SessionSpec{
			ID:      fmt.Sprintf("cam-%02d", i),
			ModelID: model.GoogLeNetCar,
			SLO:     13 * time.Millisecond, ExpectedRate: 30,
		}, workload.Poisson{Rate: 30}); err != nil {
			return spatialResult{}, err
		}
	}
	if err := d.AddSession(globalsched.SessionSpec{
		ID:      "backbone",
		ModelID: model.ResNet50,
		SLO:     50 * time.Millisecond, ExpectedRate: 600,
	}, workload.Poisson{Rate: 600}); err != nil {
		return spatialResult{}, err
	}
	if _, err := d.Run(window); err != nil {
		return spatialResult{}, err
	}
	finishDeployment(rc, d)
	res := spatialResult{
		goodput: d.Goodput(window),
		badPct:  100 * d.BadRate(),
		gpus:    d.AvgGPUsUsed(),
	}
	if res.gpus > 0 {
		res.goodPerGPU = res.goodput / res.gpus
	}
	placements := d.Audit().Placements()
	lastEpoch := 0
	for _, p := range placements {
		if p.Epoch > lastEpoch {
			lastEpoch = p.Epoch
		}
	}
	for _, p := range placements {
		if p.Epoch == lastEpoch && p.Spatial {
			res.spatialNodes++
		}
	}
	return res, nil
}

// spatialSweep compares the three multiplexing policies on the same
// workload and seed. The headline is goodput per GPU: spatial slices serve
// the camera fleet on a fraction of the devices temporal duty cycles
// dedicate to it, at equal goodput.
func spatialSweep(rc *RunContext) (*Table, error) {
	variants := []spatialVariant{
		{name: "temporal", placement: scheduler.PlaceTemporal},
		{name: "spatial", placement: scheduler.PlaceSpatial},
		{name: "hybrid", placement: scheduler.PlaceHybrid},
	}
	type cell struct {
		res spatialResult
		err error
	}
	cells := runner.MapNamed("spatial", len(variants), func(i int) cell {
		res, err := spatialDeploy(rc, variants[i])
		return cell{res, err}
	})
	t := &Table{
		ID:     "spatial",
		Title:  "GPU multiplexing policy on a 13ms-SLO camera fleet plus a ResNet-50 backbone",
		Header: []string{"placement", "goodput (r/s)", "bad %", "GPUs in use", "goodput/GPU", "spatial nodes"},
		Notes: []string{
			"each camera session's batch latency nearly fills its SLO-clamped duty cycle, so temporal packing dedicates a near-idle GPU per camera",
			"spatial placement pins each camera to a quarter-GPU compute slice; co-resident slices run concurrently under the profiler's interference model",
			"hybrid chooses per session: slices where cheaper, duty cycles (and saturation) elsewhere — it must never use more GPUs than temporal",
		},
	}
	var temporal spatialResult
	for i, v := range variants {
		if cells[i].err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, cells[i].err)
		}
		res := cells[i].res
		if i == 0 {
			temporal = res
		}
		t.AddRow(v.name,
			fmt.Sprintf("%.0f", res.goodput),
			fmt.Sprintf("%.2f", res.badPct),
			fmt.Sprintf("%.1f", res.gpus),
			fmt.Sprintf("%.0f", res.goodPerGPU),
			fmt.Sprintf("%d", res.spatialNodes),
		)
	}
	_ = temporal
	return t, nil
}
