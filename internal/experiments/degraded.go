package experiments

import (
	"fmt"
	"time"

	"nexus/internal/cluster"
	"nexus/internal/faults"
	"nexus/internal/frontend"
	"nexus/internal/globalsched"
	"nexus/internal/metrics"
	"nexus/internal/model"
	"nexus/internal/runner"
	"nexus/internal/workload"
)

func init() {
	register(Experiment{ID: "degraded", Description: "Degraded-mode survival: scheduler outage, partitions, surge vs fault-tolerance posture", Run: degradedSweep})
}

// degradedScenario is one degraded-mode fault script.
type degradedScenario struct {
	name   string
	script func(faultAt, faultLen time.Duration) faults.Script
}

// degradedSystem is one fault-tolerance posture under test.
type degradedSystem struct {
	name   string
	mutate func(*cluster.Config)
}

// degradedSweep crosses degraded-mode faults — a long scheduler outage, a
// split control/data partition, and a low-priority demand surge — with
// three survival postures: the full degraded-mode stack (stale-serving
// leases, backoff retries, circuit breakers, priority admission, capped
// recovery), leases alone (routes expire with no repair path), and the
// full stack minus breakers. Two sessions share the cluster, one entitled
// to the high-priority admission reserve. Each cell is an isolated
// deployment with its own clock and seeded injector, so the sweep is
// byte-identical at any worker count.
func degradedSweep(rc *RunContext) (*Table, error) {
	const (
		gpus    = 4
		rate    = 1200.0 // per session; two sessions share the cluster
		slo     = 100 * time.Millisecond
		epoch   = 5 * time.Second
		faultAt = 12 * time.Second // absolute sim time: warmup (2s) + 10s
	)
	duration := 60 * time.Second
	faultLen := 30 * time.Second
	if rc.Short {
		duration = 36 * time.Second
		faultLen = 15 * time.Second
	}
	admission := func(cfg *cluster.Config) {
		cfg.Admission = map[string]frontend.AdmissionConfig{
			"hi": {Rate: 1.25 * rate, Burst: 150, Priority: 1},
			"lo": {Rate: 1.25 * rate, Burst: 150, Priority: 0},
		}
		cfg.AdmissionReserveRate = 200
		cfg.AdmissionReserveBurst = 200
	}
	scenarios := []degradedScenario{
		{name: "none", script: func(_, _ time.Duration) faults.Script { return nil }},
		{name: "outage", script: func(at, l time.Duration) faults.Script {
			return faults.Script{{At: at, Kind: faults.SchedulerOutage, Duration: l}}
		}},
		// Control cut to be0: a false-positive failover plus a lost node to
		// reconcile at heal. Data cut to be1: dispatches fail while the
		// scheduler still sees a healthy replica, so only the frontend's own
		// machinery can route around it.
		{name: "partition", script: func(at, l time.Duration) faults.Script {
			return faults.Script{
				{At: at, Kind: faults.Partition, Link: faults.ControlLink, Backend: "be0", Duration: l / 2},
				{At: at, Kind: faults.Partition, Link: faults.DataLink, Backend: "be1", Duration: l / 2},
			}
		}},
		{name: "surge", script: func(at, l time.Duration) faults.Script {
			return faults.Script{{At: at, Kind: faults.Surge, Session: "lo", Factor: 10, Duration: l}}
		}},
	}
	systems := []degradedSystem{
		{name: "full-FT", mutate: func(cfg *cluster.Config) {
			cfg.RouteLeaseTTL = 8 * time.Second
			cfg.ServeStale = true
			cfg.RetryBudget = 3
			cfg.RetryBackoff = time.Millisecond
			cfg.BreakerThreshold = 3
			cfg.BreakerCooloff = time.Second
			cfg.RecoveryMaxRouteChanges = 4
			admission(cfg)
		}},
		// Leases without any repair machinery: once the scheduler goes
		// quiet past the TTL, the frontend refuses its own table and every
		// request drops unroutable until the control plane returns.
		{name: "lease-only", mutate: func(cfg *cluster.Config) {
			cfg.RouteLeaseTTL = 8 * time.Second
		}},
		{name: "no-breaker", mutate: func(cfg *cluster.Config) {
			cfg.RouteLeaseTTL = 8 * time.Second
			cfg.ServeStale = true
			cfg.RetryBudget = 3
			cfg.RetryBackoff = time.Millisecond
			cfg.RecoveryMaxRouteChanges = 4
			admission(cfg)
		}},
	}
	type cell struct {
		sc  degradedScenario
		sys degradedSystem
	}
	var cells []cell
	for _, sc := range scenarios {
		for _, sys := range systems {
			cells = append(cells, cell{sc, sys})
		}
	}
	type result struct {
		good      float64
		hiGood    float64
		loGood    float64
		shed      uint64
		stale     uint64
		detected  int
		recovery  time.Duration
		recovered bool
		err       error
	}
	results := runner.MapNamed("degraded", len(cells), func(i int) result {
		c := cells[i]
		cfg := cluster.Config{
			System: cluster.Nexus, Features: cluster.AllFeatures(),
			GPUs: gpus, Seed: 23, Epoch: epoch,
			Heartbeat: 100 * time.Millisecond, LeaseMisses: 3,
			DeltaRouting: true,
		}
		c.sys.mutate(&cfg)
		d, err := cluster.New(cfg)
		if err != nil {
			return result{err: err}
		}
		for _, sid := range []string{"hi", "lo"} {
			if err := d.AddSession(globalsched.SessionSpec{
				ID: sid, ModelID: model.ResNet50, SLO: slo, ExpectedRate: rate,
			}, workload.Uniform{Rate: rate}); err != nil {
				return result{err: err}
			}
		}
		in := faults.New(d.Clock, d, 23)
		if err := in.Schedule(c.sc.script(faultAt, faultLen)); err != nil {
			return result{err: err}
		}
		bad, err := d.Run(duration)
		rc.AddEvents(d.Clock.Executed())
		if err != nil {
			return result{err: err}
		}
		hi, lo := d.Recorder.Session("hi"), d.Recorder.Session("lo")
		pct := func(s *metrics.SessionStats) float64 {
			if s.Sent == 0 {
				return 0
			}
			return 100 * float64(s.Good()) / float64(s.Sent)
		}
		rec, ok := metrics.RecoveryTime(d.GoodEvts, faultAt, 5*time.Second, 0.95)
		return result{
			good:      100 * (1 - bad),
			hiGood:    pct(hi),
			loGood:    pct(lo),
			shed:      hi.Admission + lo.Admission,
			stale:     d.Frontend.StaleServed(),
			detected:  d.Failures(),
			recovery:  rec,
			recovered: ok,
		}
	})
	t := &Table{
		ID:     "degraded",
		Title:  fmt.Sprintf("degraded-mode survival, 2x ResNet-50 @ %.0f r/s each (SLO %v, %d GPUs, fault at t=%v for %v)", rate, slo, gpus, faultAt, faultLen),
		Header: []string{"Scenario", "System", "good %", "hi good %", "lo good %", "shed", "stale", "detected", "recovery"},
		Notes: []string{
			"full-FT: 8s route leases served stale, 3-retry backoff budget, breakers (3 fails, 1s cooloff), priority admission with reserve, capped recovery publish",
			"lease-only: 8s leases with no stale serving, retries, breakers, or admission — expiry with no repair path",
			"outage: scheduler down for the fault window; partition: control cut to be0 (false-positive failover) + data cut to be1; surge: 10x offered rate on the low-priority session",
			"shed: requests dropped by admission control; stale: dispatches served past the route lease; recovery: time until goodput regains 95% of its pre-fault mean",
		},
	}
	for i, c := range cells {
		r := results[i]
		if r.err != nil {
			return nil, r.err
		}
		rec := "-"
		if r.recovered {
			rec = r.recovery.Round(time.Millisecond).String()
		}
		t.AddRow(c.sc.name, c.sys.name,
			fmt.Sprintf("%.1f", r.good),
			fmt.Sprintf("%.1f", r.hiGood),
			fmt.Sprintf("%.1f", r.loGood),
			fmt.Sprintf("%d", r.shed),
			fmt.Sprintf("%d", r.stale),
			fmt.Sprintf("%d", r.detected),
			rec)
	}
	return t, nil
}
