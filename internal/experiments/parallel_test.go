package experiments

import (
	"testing"

	"nexus/internal/runner"
)

// TestCellFirstMatchOnDuplicateHeaders pins the duplicate-column rule:
// when several header columns share a name, Cell reads the first. Figure
// 14's table repeats per-system columns, so last-match silently read the
// wrong system.
func TestCellFirstMatchOnDuplicateHeaders(t *testing.T) {
	tab := &Table{
		ID:     "dup",
		Header: []string{"row", "tput", "bad %", "tput", "bad %"},
	}
	tab.AddRow("a", "100", "0.5", "200", "1.5")
	if got := tab.Cell("a", "tput"); got != "100" {
		t.Fatalf("Cell(a, tput) = %q, want first-column 100", got)
	}
	if got := tab.Cell("a", "bad %"); got != "0.5" {
		t.Fatalf("Cell(a, bad %%) = %q, want first-column 0.5", got)
	}
	if got := tab.Cell("a", "missing"); got != "" {
		t.Fatalf("Cell(a, missing) = %q, want empty", got)
	}
}

// TestParallelMatchesSequential is the engine's determinism contract:
// every experiment must produce byte-identical tables and identical event
// counts at any worker count, because sweep cells simulate on isolated
// clocks and goodput probes depend only on the bracket.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments twice")
	}
	// A representative slice of the registry: plain sweeps (fig5), k-probe
	// goodput searches (fig9, abl-window), concurrent deployments
	// (abl-defer), the packing fan-out (ext-hetero), and the seeded
	// fault-injection sweep (chaos).
	ids := []string{"fig5", "fig9", "abl-window", "abl-defer", "ext-hetero", "chaos"}

	runAll := func(workers int) (map[string]string, map[string]uint64) {
		prev := runner.SetDefaultWorkers(workers)
		defer runner.SetDefaultWorkers(prev)
		tables := map[string]string{}
		events := map[string]uint64{}
		for _, id := range ids {
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			rc := NewRunContext(true)
			tab, err := e.Run(rc)
			if err != nil {
				t.Fatalf("%s (workers=%d): %v", id, workers, err)
			}
			tables[id] = tab.String()
			events[id] = rc.Events()
		}
		return tables, events
	}

	seqTables, seqEvents := runAll(1)
	parTables, parEvents := runAll(8)
	for _, id := range ids {
		if seqTables[id] != parTables[id] {
			t.Errorf("%s: parallel table differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
				id, seqTables[id], parTables[id])
		}
		if seqEvents[id] != parEvents[id] {
			t.Errorf("%s: parallel ran %d events, sequential %d", id, parEvents[id], seqEvents[id])
		}
	}
}
