package experiments

import (
	"fmt"
	"math"
	"time"

	"nexus/internal/hetero"
	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/runner"
	"nexus/internal/scheduler"
)

func init() {
	register(Experiment{
		ID:          "ext-hetero",
		Description: "Extension: cost-aware placement on a mixed K80/1080Ti/V100 fleet",
		Run:         extensionHetero,
	})
}

// extensionHetero packs a mixed workload onto a heterogeneous fleet and
// compares the hourly dollar cost with homogeneous alternatives — the
// placement question Table 1's cost argument implies.
func extensionHetero(*RunContext) (*Table, error) {
	mdb := model.Catalog()
	pdb, err := profiler.CatalogProfiles(mdb)
	if err != nil {
		return nil, err
	}
	profiles := hetero.TypedProfiles{}
	for _, gpu := range []profiler.GPUType{profiler.GTX1080Ti, profiler.K80, profiler.V100} {
		m := map[string]*profiler.Profile{}
		for _, id := range model.CatalogIDs() {
			if p, err := pdb.Get(id, gpu); err == nil {
				m[id] = p
			}
		}
		profiles[gpu] = m
	}
	sessions := []scheduler.Session{
		// Tight SLOs: infeasible on K80s.
		{ID: "game-icons", ModelID: model.ResNet50, SLO: 50 * time.Millisecond, Rate: 3000},
		{ID: "detect", ModelID: model.SSD, SLO: 150 * time.Millisecond, Rate: 100},
		// Bulk throughput: happy anywhere, should chase cheap capacity.
		{ID: "bulk-classify", ModelID: model.InceptionV3, SLO: 500 * time.Millisecond, Rate: 4000},
		{ID: "bulk-faces", ModelID: model.VGGFace, SLO: 800 * time.Millisecond, Rate: 800},
		{ID: "bulk-cars", ModelID: model.GoogLeNetCar, SLO: 600 * time.Millisecond, Rate: 3000},
	}
	// Only six consumer cards: the fleet cannot serve everything on its
	// cheapest-per-request type, so placement decisions matter.
	capacity := hetero.Capacity{profiler.GTX1080Ti: 6, profiler.K80: 64, profiler.V100: 16}
	mixed, err := hetero.Pack(sessions, profiles, capacity, scheduler.Config{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-hetero",
		Title:  "cost-aware placement on a mixed fleet vs homogeneous clusters",
		Header: []string{"Fleet", "GPUs", "$/hour"},
		Notes: []string{
			"extension beyond the paper (its clusters are homogeneous); tight-SLO sessions land on fast GPUs, bulk work on cheap ones",
		},
	}
	t.AddRow("mixed fleet (6x 1080Ti cap)", fmt.Sprint(mixed.GPUs()), fmt.Sprintf("%.2f", mixed.CostPerHour))
	// Each homogeneous alternative is an independent packing problem; fan
	// them out through the runner pool.
	gpuTypes := []profiler.GPUType{profiler.GTX1080Ti, profiler.K80, profiler.V100}
	type homo struct {
		gpus string
		cost string
		err  error
	}
	homos := runner.MapNamed("hetero", len(gpuTypes), func(i int) homo {
		gpu := gpuTypes[i]
		cost := hetero.HomogeneousCost(sessions, profiles, gpu, scheduler.Config{})
		if math.IsInf(cost, 1) {
			return homo{gpus: "-", cost: "infeasible"}
		}
		plan, err := scheduler.Pack(sessions, profiles[gpu], scheduler.Config{})
		if err != nil {
			return homo{err: err}
		}
		return homo{gpus: fmt.Sprint(plan.GPUCount()), cost: fmt.Sprintf("%.2f", cost)}
	})
	for i, gpu := range gpuTypes {
		if homos[i].err != nil {
			return nil, homos[i].err
		}
		t.AddRow("all-"+string(gpu)+" (uncapped)", homos[i].gpus, homos[i].cost)
	}
	// Per-session placement detail.
	for _, s := range sessions {
		t.AddRow("  "+s.ID+" ->", string(mixed.SessionType[s.ID]), "")
	}
	return t, nil
}
