// Package experiments regenerates every table and figure of the paper's
// evaluation (§2, §4, §7) on the simulated cluster. Each experiment
// produces a Table whose rows mirror what the paper reports; the bench
// harness (bench_test.go) and the nexus-bench CLI both dispatch into the
// registry here.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s", pad+2, c)
		}
		fmt.Fprintln(w, " ", strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// Cell finds the value at (row label, column name); the row label is the
// first cell. Returns "" when absent.
func (t *Table) Cell(rowLabel, col string) string {
	ci := -1
	for i, h := range t.Header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		return ""
	}
	for _, row := range t.Rows {
		if len(row) > ci && row[0] == rowLabel {
			return row[ci]
		}
	}
	return ""
}

// Experiment is one registry entry.
type Experiment struct {
	ID          string
	Description string
	// Run executes the experiment. short trades precision for speed
	// (shorter simulations, coarser goodput searches) and is what the
	// benchmark harness uses.
	Run func(short bool) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns an experiment by ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (try List)", id)
	}
	return e, nil
}

// List returns all experiments sorted by ID.
func List() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
