// Package experiments regenerates every table and figure of the paper's
// evaluation (§2, §4, §7) on the simulated cluster. Each experiment
// produces a Table whose rows mirror what the paper reports; the bench
// harness (bench_test.go) and the nexus-bench CLI both dispatch into the
// registry here.
//
// The engine is parallel: sweeps fan independent cells (system x SLO x
// gamma x feature x model-count) through the runner pool, and goodput
// searches speculate several candidate rates per round. Every cell builds
// its own cluster.Deployment with its own simclock.Clock, so cells share
// no mutable state and results are identical at any worker count —
// runner.SetDefaultWorkers(1) reproduces the sequential engine byte for
// byte.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s", pad+2, c)
		}
		fmt.Fprintln(w, " ", strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// Cell finds the value at (row label, column name); the row label is the
// first cell. When several header columns share a name, the first match
// wins. Returns "" when absent.
func (t *Table) Cell(rowLabel, col string) string {
	ci := -1
	for i, h := range t.Header {
		if h == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return ""
	}
	for _, row := range t.Rows {
		if len(row) > ci && row[0] == rowLabel {
			return row[ci]
		}
	}
	return ""
}

// RunContext carries per-run knobs and accumulators through one
// experiment. Concurrent sweep cells share it, so the accumulators are
// atomic.
type RunContext struct {
	// Short trades precision for speed (shorter simulations, coarser
	// goodput searches); the benchmark harness uses it.
	Short bool

	// events counts simulation events executed across every deployment and
	// clock the experiment ran; nexus-bench reports it per experiment so
	// the perf trajectory is comparable across PRs.
	events atomic.Uint64
}

// NewRunContext returns a context for one experiment run.
func NewRunContext(short bool) *RunContext {
	return &RunContext{Short: short}
}

// AddEvents accumulates executed simulation events (Clock.Executed() of a
// finished simulation). Safe for concurrent cells.
func (rc *RunContext) AddEvents(n uint64) {
	if rc != nil {
		rc.events.Add(n)
	}
}

// Events returns the simulation events accumulated so far.
func (rc *RunContext) Events() uint64 {
	if rc == nil {
		return 0
	}
	return rc.events.Load()
}

// Experiment is one registry entry.
type Experiment struct {
	ID          string
	Description string
	// Run executes the experiment. The context supplies the short/full
	// switch and collects event counts; Run implementations fan
	// independent sweep cells through the runner pool.
	Run func(rc *RunContext) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns an experiment by ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (try List)", id)
	}
	return e, nil
}

// List returns all experiments sorted by ID.
func List() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
