package experiments

import (
	"strconv"
	"strings"
	"testing"

	"nexus/internal/runner"
)

// TestSpatialDeterminism pins the spatial sweep's determinism contract:
// byte-identical tables and identical event counts at any worker count.
// The partition-execution path adds new event types to the simulation, so
// it gets its own worker-count check in the CI determinism matrix.
func TestSpatialDeterminism(t *testing.T) {
	run := func(workers int) (string, uint64) {
		prev := runner.SetDefaultWorkers(workers)
		defer runner.SetDefaultWorkers(prev)
		e, err := Get("spatial")
		if err != nil {
			t.Fatal(err)
		}
		rc := NewRunContext(true)
		tab, err := e.Run(rc)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tab.String(), rc.Events()
	}
	seqTable, seqEvents := run(1)
	parTable, parEvents := run(8)
	if seqTable != parTable {
		t.Errorf("parallel table differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
			seqTable, parTable)
	}
	if seqEvents != parEvents {
		t.Errorf("parallel ran %d events, sequential %d", parEvents, seqEvents)
	}
	// The sweep's reason to exist: the spatial and hybrid rows must beat
	// the temporal row's per-GPU goodput on this workload.
	var tab *Table
	{
		e, _ := Get("spatial")
		rc := NewRunContext(true)
		var err error
		tab, err = e.Run(rc)
		if err != nil {
			t.Fatal(err)
		}
	}
	perGPU := func(row string) string { return tab.Cell(row, "goodput/GPU") }
	if perGPU("spatial") == "" || perGPU("temporal") == "" {
		t.Fatalf("missing rows in table:\n%s", tab.String())
	}
	if !lessNumeric(perGPU("temporal"), perGPU("spatial")) {
		t.Errorf("spatial goodput/GPU %s does not beat temporal %s", perGPU("spatial"), perGPU("temporal"))
	}
	if !lessNumeric(perGPU("temporal"), perGPU("hybrid")) {
		t.Errorf("hybrid goodput/GPU %s does not beat temporal %s", perGPU("hybrid"), perGPU("temporal"))
	}
	if n := tab.Cell("spatial", "spatial nodes"); n == "0" || n == "" {
		t.Errorf("spatial variant placed no spatial nodes:\n%s", tab.String())
	}
	if n := tab.Cell("temporal", "spatial nodes"); n != "0" {
		t.Errorf("temporal variant placed spatial nodes:\n%s", tab.String())
	}
}

// lessNumeric compares two table cells as numbers (the cells are %.0f
// renderings, so string compare would mis-order across digit counts).
func lessNumeric(a, b string) bool {
	fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if errA != nil || errB != nil {
		return false
	}
	return fa < fb
}
