// Package metrics provides latency histograms, per-session serving
// statistics, interval time series, and the max-goodput search used by every
// evaluation in the paper ("the maximum rate of queries such that 99% of
// them are served within their latency SLOs", §7).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nexus/internal/runner"
)

// Histogram is a logarithmically-bucketed latency histogram with ~2%
// relative precision from 1µs to ~30s. The zero value is ready to use.
type Histogram struct {
	buckets  []uint64
	count    uint64
	sum      time.Duration
	min, max time.Duration
}

const (
	histBase   = float64(time.Microsecond)
	histGrowth = 1.02
)

var histLogGrowth = math.Log(histGrowth)

func bucketIndex(d time.Duration) int {
	if d < time.Microsecond {
		return 0
	}
	return 1 + int(math.Log(float64(d)/histBase)/histLogGrowth)
}

func bucketValue(idx int) time.Duration {
	if idx == 0 {
		return time.Microsecond / 2
	}
	// Geometric midpoint of the bucket.
	lo := histBase * math.Pow(histGrowth, float64(idx-1))
	return time.Duration(lo * math.Sqrt(histGrowth))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := bucketIndex(d)
	if idx >= len(h.buckets) {
		nb := make([]uint64, idx+16)
		copy(nb, h.buckets)
		h.buckets = nb
	}
	h.buckets[idx]++
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the q-quantile (0 <= q <= 1) with ~2% relative error.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.count))
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// FractionAbove returns the fraction of observations strictly greater
// than limit, up to bucket resolution.
func (h *Histogram) FractionAbove(limit time.Duration) float64 {
	if h.count == 0 {
		return 0
	}
	idx := bucketIndex(limit)
	var above uint64
	for i := idx + 1; i < len(h.buckets); i++ {
		above += h.buckets[i]
	}
	return float64(above) / float64(h.count)
}

// Reset clears all observations, keeping the bucket storage for reuse.
// This is what makes the histogram usable as a tumbling window: rotate by
// summarizing and resetting in place, no per-window allocation.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
}

// Merge adds all observations of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if len(other.buckets) > len(h.buckets) {
		nb := make([]uint64, len(other.buckets))
		copy(nb, h.buckets)
		h.buckets = nb
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// SessionStats accumulates the serving outcome of one session. A request is
// "bad" if it was lost before producing a response or completed after its
// deadline (§4.3). Losses are counted by reason, so admission-control drops
// are distinguishable from failures.
type SessionStats struct {
	Sent      uint64
	Dropped   uint64 // shed by the drop policy (deadline-based admission control)
	Completed uint64
	Missed    uint64 // completed but after the deadline
	// Loss reasons beyond the drop policy.
	Unroutable uint64 // no route existed at the frontend
	Reconfig   uint64 // lost to a control-plane reconfiguration race
	Overload   uint64 // rejected by a bounded backend queue
	Failed     uint64 // lost to a backend failure (queued or in flight)
	Admission  uint64 // shed by frontend token-bucket admission control
	Latency    Histogram
}

// Good returns the number of requests served within their deadline.
func (s *SessionStats) Good() uint64 { return s.Completed - s.Missed }

// Lost returns every request lost before producing a response, across all
// reasons.
func (s *SessionStats) Lost() uint64 {
	return s.Dropped + s.Unroutable + s.Reconfig + s.Overload + s.Failed + s.Admission
}

// Bad returns the number of requests that count against SLO attainment:
// lost for any reason, or completed late.
func (s *SessionStats) Bad() uint64 { return s.Lost() + s.Missed }

// BadRate returns the fraction of sent requests that were lost or late.
// Requests still in flight count as neither.
func (s *SessionStats) BadRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Bad()) / float64(s.Sent)
}

// GoodRate is 1 - BadRate measured over finished requests only.
func (s *SessionStats) GoodRate() float64 { return 1 - s.BadRate() }

// Merge accumulates other into s.
func (s *SessionStats) Merge(other *SessionStats) {
	s.Sent += other.Sent
	s.Dropped += other.Dropped
	s.Completed += other.Completed
	s.Missed += other.Missed
	s.Unroutable += other.Unroutable
	s.Reconfig += other.Reconfig
	s.Overload += other.Overload
	s.Failed += other.Failed
	s.Admission += other.Admission
	s.Latency.Merge(&other.Latency)
}

// Recorder aggregates SessionStats by session ID.
type Recorder struct {
	sessions map[string]*SessionStats
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{sessions: make(map[string]*SessionStats)}
}

// Session returns (creating if needed) the stats for a session ID.
func (r *Recorder) Session(id string) *SessionStats {
	s, ok := r.sessions[id]
	if !ok {
		s = &SessionStats{}
		r.sessions[id] = s
	}
	return s
}

// SessionIDs returns the known session IDs in sorted order.
func (r *Recorder) SessionIDs() []string {
	ids := make([]string, 0, len(r.sessions))
	for id := range r.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Total returns stats merged across all sessions.
func (r *Recorder) Total() *SessionStats {
	t := &SessionStats{}
	for _, s := range r.sessions {
		t.Merge(s)
	}
	return t
}

// TimeSeries buckets scalar samples into fixed intervals of virtual time,
// used for the Figure 13 style load / usage / bad-rate panels.
type TimeSeries struct {
	Interval time.Duration
	sums     []float64
	counts   []uint64
}

// NewTimeSeries returns a series with the given bucket interval.
// It panics if interval is not positive.
func NewTimeSeries(interval time.Duration) *TimeSeries {
	if interval <= 0 {
		panic("metrics: time series interval must be positive")
	}
	return &TimeSeries{Interval: interval}
}

// Add records value at virtual time t.
func (ts *TimeSeries) Add(t time.Duration, value float64) {
	idx := int(t / ts.Interval)
	for idx >= len(ts.sums) {
		ts.sums = append(ts.sums, 0)
		ts.counts = append(ts.counts, 0)
	}
	ts.sums[idx] += value
	ts.counts[idx]++
}

// Len returns the number of buckets touched so far.
func (ts *TimeSeries) Len() int { return len(ts.sums) }

// Sum returns the total of values in bucket i.
func (ts *TimeSeries) Sum(i int) float64 {
	if i < 0 || i >= len(ts.sums) {
		return 0
	}
	return ts.sums[i]
}

// Mean returns the mean value in bucket i (0 when empty).
func (ts *TimeSeries) Mean(i int) float64 {
	if i < 0 || i >= len(ts.sums) || ts.counts[i] == 0 {
		return 0
	}
	return ts.sums[i] / float64(ts.counts[i])
}

// Rate returns bucket i's sum divided by the interval in seconds — i.e. a
// per-second rate when Add records unit counts.
func (ts *TimeSeries) Rate(i int) float64 {
	return ts.Sum(i) / ts.Interval.Seconds()
}

// RecoveryTime measures how long a disturbed deployment took to regain
// frac (e.g. 0.95) of its pre-fault goodput. good is a per-interval
// goodput timeline, faultAt the injection time, and preWindow how much
// history before the fault defines the baseline rate (at least one
// bucket). It returns the duration from faultAt to the end of the first
// post-fault bucket whose rate reaches frac times the baseline, and false
// if the timeline never recovers.
func RecoveryTime(good *TimeSeries, faultAt, preWindow time.Duration, frac float64) (time.Duration, bool) {
	if good == nil || good.Interval <= 0 {
		return 0, false
	}
	fb := int(faultAt / good.Interval)
	w := int(preWindow / good.Interval)
	if w < 1 {
		w = 1
	}
	lo := fb - w
	if lo < 0 {
		lo = 0
	}
	if fb <= lo {
		return 0, false
	}
	var pre float64
	for i := lo; i < fb; i++ {
		pre += good.Rate(i)
	}
	pre /= float64(fb - lo)
	if pre <= 0 {
		return 0, true // nothing to recover
	}
	for i := fb + 1; i < good.Len(); i++ {
		if good.Rate(i) >= frac*pre {
			return time.Duration(i+1)*good.Interval - faultAt, true
		}
	}
	return 0, false
}

// Attainment returns the per-bucket SLO attainment timeline
// good/(good+bad), with 1 for buckets that saw no completions. The two
// series must share an interval; the result spans the longer one.
func Attainment(good, bad *TimeSeries) []float64 {
	n := good.Len()
	if bad.Len() > n {
		n = bad.Len()
	}
	out := make([]float64, n)
	for i := range out {
		g, b := good.Sum(i), bad.Sum(i)
		if g+b == 0 {
			out[i] = 1
			continue
		}
		out[i] = g / (g + b)
	}
	return out
}

// GoodputTarget is the goodness criterion used throughout the paper's
// evaluation: at least 99% of requests within the latency SLO.
const GoodputTarget = 0.99

// MaxGoodput finds the maximum request rate (req/s) at which eval reports a
// bad rate of at most 1-target. eval must be monotone in rate to within
// noise; the search brackets by doubling from lo and then bisects until the
// bracket is within tol (relative). It returns 0 if even lo fails.
func MaxGoodput(lo, hi float64, target float64, tol float64, eval func(rate float64) (badRate float64)) float64 {
	if lo <= 0 {
		lo = 1
	}
	if tol <= 0 {
		tol = 0.02
	}
	maxBad := 1 - target
	if eval(lo) > maxBad {
		return 0
	}
	good := lo
	bad := hi
	if eval(hi) <= maxBad {
		return hi
	}
	for bad-good > tol*bad {
		mid := (good + bad) / 2
		if eval(mid) <= maxBad {
			good = mid
		} else {
			bad = mid
		}
	}
	return good
}

// MaxGoodputK is the speculative variant of MaxGoodput: each round it
// evaluates k evenly spaced candidate rates inside the bracket
// concurrently (bounded by the runner pool), then uses eval's monotonicity
// to collapse the bracket onto the interval between the highest passing
// and lowest failing probe — a shrink factor of 1/(k+1) per round instead
// of binary search's 1/2.
//
// The probe rates depend only on (lo, hi, k), never on worker count or
// completion order, so the result is identical whether the probes run on
// one goroutine or many. eval must be safe for concurrent invocation: each
// call must build its own isolated simulation (its own clock, rng, and
// deployment), which every builder in internal/experiments does.
//
// k <= 1 degenerates to the sequential bisection of MaxGoodput.
func MaxGoodputK(lo, hi float64, target float64, tol float64, k int, eval func(rate float64) (badRate float64)) float64 {
	if k <= 1 {
		return MaxGoodput(lo, hi, target, tol, eval)
	}
	if lo <= 0 {
		lo = 1
	}
	if tol <= 0 {
		tol = 0.02
	}
	maxBad := 1 - target
	// Probe the endpoints together: one concurrent round instead of two
	// sequential full simulations.
	ends := runner.Map(2, func(i int) float64 {
		if i == 0 {
			return eval(lo)
		}
		return eval(hi)
	})
	if ends[0] > maxBad {
		return 0
	}
	if ends[1] <= maxBad {
		return hi
	}
	good, bad := lo, hi
	for bad-good > tol*bad {
		width := bad - good
		rates := make([]float64, k)
		for i := range rates {
			rates[i] = good + width*float64(i+1)/float64(k+1)
		}
		results := runner.Map(k, func(i int) float64 { return eval(rates[i]) })
		// Monotone collapse: the highest passing probe raises good, the
		// lowest failing probe lowers bad. Probes between them would be
		// contradictory under strict monotonicity; trusting the
		// highest-pass/lowest-fail pair keeps the bracket valid even when
		// simulation noise perturbs a middle probe.
		newGood, newBad := good, bad
		for i := k - 1; i >= 0; i-- {
			if results[i] <= maxBad {
				newGood = rates[i]
				break
			}
		}
		for i := 0; i < k; i++ {
			if results[i] > maxBad {
				newBad = rates[i]
				break
			}
		}
		if newBad <= newGood {
			// Noise inverted the bracket; settle on the passing probe.
			return newGood
		}
		good, bad = newGood, newBad
	}
	return good
}

// FormatRate renders a request rate for table output.
func FormatRate(r float64) string {
	return fmt.Sprintf("%.1f", r)
}
