package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/runner"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.FractionAbove(time.Millisecond) != 0 {
		t.Fatal("empty histogram FractionAbove should be 0")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(10 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 10*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	q := h.Quantile(0.5)
	if relErr(q, 10*time.Millisecond) > 0.03 {
		t.Fatalf("median = %v, want ~10ms", q)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Millisecond)
	if h.Min() != 0 {
		t.Fatalf("negative values should clamp to 0, got min %v", h.Min())
	}
}

func relErr(a, b time.Duration) float64 {
	return math.Abs(float64(a)-float64(b)) / float64(b)
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 ms uniformly.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Millisecond},
		{0.9, 900 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if relErr(got, c.want) > 0.05 {
			t.Errorf("q%.2f = %v, want ~%v", c.q, got, c.want)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Error("extreme quantiles should return min/max")
	}
}

func TestHistogramFractionAbove(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(10 * time.Millisecond)
	}
	for i := 0; i < 25; i++ {
		h.Record(500 * time.Millisecond)
	}
	got := h.FractionAbove(100 * time.Millisecond)
	if math.Abs(got-0.2) > 0.01 {
		t.Fatalf("FractionAbove(100ms) = %v, want 0.2", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 50; i++ {
		a.Record(time.Millisecond)
		b.Record(time.Second)
	}
	a.Merge(&b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != time.Millisecond || relErr(a.Max(), time.Second) > 0.001 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty) // must be a no-op
	if a.Count() != 100 {
		t.Fatal("merging empty histogram changed count")
	}
}

// Property: histogram quantiles approximate exact quantiles within 5%
// relative error for random positive data.
func TestPropertyQuantileAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		n := 500
		vals := make([]time.Duration, n)
		for i := range vals {
			vals[i] = time.Duration(rng.Intn(1000000)+100) * time.Microsecond
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
			exact := vals[int(q*float64(n))]
			got := h.Quantile(q)
			if relErr(got, exact) > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSessionStats(t *testing.T) {
	s := &SessionStats{Sent: 100, Dropped: 2, Completed: 95, Missed: 1}
	if s.Good() != 94 {
		t.Fatalf("Good = %d", s.Good())
	}
	if math.Abs(s.BadRate()-0.03) > 1e-9 {
		t.Fatalf("BadRate = %v", s.BadRate())
	}
	var zero SessionStats
	if zero.BadRate() != 0 {
		t.Fatal("zero stats BadRate should be 0")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Session("b").Sent = 5
	r.Session("a").Sent = 3
	r.Session("a").Dropped = 1
	ids := r.SessionIDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("ids = %v", ids)
	}
	tot := r.Total()
	if tot.Sent != 8 || tot.Dropped != 1 {
		t.Fatalf("total = %+v", tot)
	}
	// Session must return the same pointer on repeat calls.
	if r.Session("a") != r.Session("a") {
		t.Fatal("Session not stable")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Add(100*time.Millisecond, 1)
	ts.Add(900*time.Millisecond, 1)
	ts.Add(1500*time.Millisecond, 4)
	if ts.Len() != 2 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if ts.Sum(0) != 2 || ts.Sum(1) != 4 {
		t.Fatalf("sums = %v, %v", ts.Sum(0), ts.Sum(1))
	}
	if ts.Rate(0) != 2 {
		t.Fatalf("rate(0) = %v", ts.Rate(0))
	}
	if ts.Mean(1) != 4 {
		t.Fatalf("mean(1) = %v", ts.Mean(1))
	}
	if ts.Sum(10) != 0 || ts.Mean(-1) != 0 {
		t.Fatal("out-of-range buckets should read 0")
	}
}

func TestTimeSeriesInvalidInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	NewTimeSeries(0)
}

func TestMaxGoodputBasic(t *testing.T) {
	// A system with true capacity 500 r/s: bad rate 0 below, 0.5 above.
	eval := func(rate float64) float64 {
		if rate <= 500 {
			return 0
		}
		return 0.5
	}
	got := MaxGoodput(1, 10000, GoodputTarget, 0.01, eval)
	if math.Abs(got-500) > 10 {
		t.Fatalf("MaxGoodput = %v, want ~500", got)
	}
}

func TestMaxGoodputAllBad(t *testing.T) {
	got := MaxGoodput(1, 1000, GoodputTarget, 0.01, func(float64) float64 { return 1 })
	if got != 0 {
		t.Fatalf("MaxGoodput = %v, want 0", got)
	}
}

func TestMaxGoodputAllGood(t *testing.T) {
	got := MaxGoodput(1, 1000, GoodputTarget, 0.01, func(float64) float64 { return 0 })
	if got != 1000 {
		t.Fatalf("MaxGoodput = %v, want hi bound 1000", got)
	}
}

// Property: MaxGoodput lands within tolerance of a random true capacity.
func TestPropertyMaxGoodput(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 50 + rng.Float64()*5000
		eval := func(rate float64) float64 {
			if rate <= capacity {
				return 0.002
			}
			return 0.2
		}
		got := MaxGoodput(1, 10000, GoodputTarget, 0.01, eval)
		return got <= capacity && got >= capacity*0.97
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxGoodputNonMonotoneEval(t *testing.T) {
	// Real systems occasionally pass at a higher rate than one they failed
	// (placement effects). The search must still terminate and return a
	// rate that actually passed.
	calls := map[float64]float64{}
	eval := func(rate float64) float64 {
		// Fail in a narrow band, pass elsewhere below 800.
		bad := 0.0
		if rate > 400 && rate < 500 {
			bad = 0.2
		}
		if rate >= 800 {
			bad = 0.5
		}
		calls[rate] = bad
		return bad
	}
	got := MaxGoodput(10, 2000, GoodputTarget, 0.02, eval)
	if got <= 0 || got >= 800 {
		t.Fatalf("MaxGoodput = %v", got)
	}
	if calls[got] > 1-GoodputTarget {
		t.Fatalf("returned a failing rate %v (bad %v)", got, calls[got])
	}
}

func TestHistogramQuantileBracketedByMinMax(t *testing.T) {
	var h Histogram
	h.Record(3 * time.Millisecond)
	h.Record(7 * time.Millisecond)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		v := h.Quantile(q)
		if v < h.Min() || v > h.Max() {
			t.Fatalf("q%.1f = %v outside [min,max]", q, v)
		}
	}
}

func TestTimeSeriesSparseBuckets(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Add(10*time.Second, 5)
	if ts.Len() != 11 {
		t.Fatalf("Len = %d, want 11 (buckets 0..10 allocated)", ts.Len())
	}
	if ts.Sum(5) != 0 || ts.Sum(10) != 5 {
		t.Fatal("sparse bucket accounting wrong")
	}
}

func TestMaxGoodputKMatchesCapacity(t *testing.T) {
	eval := func(rate float64) float64 {
		if rate <= 500 {
			return 0
		}
		return 0.5
	}
	for _, k := range []int{2, 3, 4, 8} {
		got := MaxGoodputK(1, 10000, GoodputTarget, 0.01, k, eval)
		if math.Abs(got-500) > 10 {
			t.Fatalf("k=%d: MaxGoodputK = %v, want ~500", k, got)
		}
	}
}

func TestMaxGoodputKEdges(t *testing.T) {
	if got := MaxGoodputK(1, 1000, GoodputTarget, 0.01, 4, func(float64) float64 { return 1 }); got != 0 {
		t.Fatalf("all-bad: got %v, want 0", got)
	}
	if got := MaxGoodputK(1, 1000, GoodputTarget, 0.01, 4, func(float64) float64 { return 0 }); got != 1000 {
		t.Fatalf("all-good: got %v, want hi bound 1000", got)
	}
	// k<=1 falls back to the sequential bisection.
	seq := MaxGoodput(1, 1000, GoodputTarget, 0.01, func(r float64) float64 {
		if r <= 300 {
			return 0
		}
		return 1
	})
	k1 := MaxGoodputK(1, 1000, GoodputTarget, 0.01, 1, func(r float64) float64 {
		if r <= 300 {
			return 0
		}
		return 1
	})
	if seq != k1 {
		t.Fatalf("k=1 fallback diverged: %v vs %v", k1, seq)
	}
}

// The k-probe search must be deterministic regardless of worker count:
// probe placement depends only on the bracket, and the monotone collapse
// depends only on probe results, not completion order.
func TestMaxGoodputKDeterministicAcrossWorkers(t *testing.T) {
	eval := func(rate float64) float64 {
		if rate <= 777 {
			return 0.004
		}
		return 0.3
	}
	prev := runner.SetDefaultWorkers(1)
	defer runner.SetDefaultWorkers(prev)
	seq := MaxGoodputK(1, 10000, GoodputTarget, 0.01, 4, eval)
	runner.SetDefaultWorkers(8)
	par := MaxGoodputK(1, 10000, GoodputTarget, 0.01, 4, eval)
	if seq != par {
		t.Fatalf("worker count changed the result: %v vs %v", seq, par)
	}
}

// Property: MaxGoodputK lands within tolerance of a random true capacity.
func TestPropertyMaxGoodputK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 50 + rng.Float64()*5000
		k := 2 + int(seed%5+4)%5
		eval := func(rate float64) float64 {
			if rate <= capacity {
				return 0.002
			}
			return 0.2
		}
		got := MaxGoodputK(1, 10000, GoodputTarget, 0.01, k, eval)
		return got <= capacity && got >= capacity*0.97
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
