package metrics

import (
	"testing"
	"time"
)

// TestHistogramMergeDisjointRanges merges histograms whose value ranges do
// not overlap, in both directions, checking the summary fields survive: a
// merge must behave exactly as if every observation had been recorded into
// one histogram.
func TestHistogramMergeDisjointRanges(t *testing.T) {
	low := &Histogram{}
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		low.Record(d)
	}
	high := &Histogram{}
	for _, d := range []time.Duration{time.Second, 2 * time.Second} {
		high.Record(d)
	}

	// low <- high: min stays, max extends (h.buckets must grow).
	a := &Histogram{}
	a.Merge(low)
	a.Merge(high)
	if a.Count() != 5 {
		t.Fatalf("count after merge: %d", a.Count())
	}
	if a.Min() != time.Millisecond {
		t.Errorf("min after low<-high: %v", a.Min())
	}
	if a.Max() != 2*time.Second {
		t.Errorf("max after low<-high: %v", a.Max())
	}

	// high <- low: min must move down, max stays.
	b := &Histogram{}
	b.Merge(high)
	b.Merge(low)
	if b.Min() != time.Millisecond || b.Max() != 2*time.Second {
		t.Errorf("min/max after high<-low: %v/%v", b.Min(), b.Max())
	}
	if a.Mean() != b.Mean() {
		t.Errorf("merge order changed the mean: %v vs %v", a.Mean(), b.Mean())
	}
	// Low quantiles come from the low range, high from the high range.
	if q := b.Quantile(0.2); q > 10*time.Millisecond {
		t.Errorf("q=0.2 of merged disjoint ranges: %v, want in the low range", q)
	}
	if q := b.Quantile(0.95); q < 500*time.Millisecond {
		t.Errorf("q=0.95 of merged disjoint ranges: %v, want in the high range", q)
	}

	// Merging an empty histogram is a no-op in both directions — in
	// particular it must not drag min down to zero.
	before := b.Min()
	b.Merge(&Histogram{})
	if b.Min() != before || b.Count() != 5 {
		t.Errorf("merging empty changed state: min %v count %d", b.Min(), b.Count())
	}
	empty := &Histogram{}
	empty.Merge(low)
	if empty.Min() != time.Millisecond || empty.Count() != 3 {
		t.Errorf("merge into empty: min %v count %d", empty.Min(), empty.Count())
	}
}

// TestHistogramQuantileEdges pins the boundary contract: q<=0 returns the
// exact recorded minimum and q>=1 the exact maximum (no bucket midpoint
// rounding at the edges), with out-of-range q clamped rather than
// extrapolated.
func TestHistogramQuantileEdges(t *testing.T) {
	h := &Histogram{}
	min := 1537 * time.Microsecond // deliberately off any bucket midpoint
	max := 977 * time.Millisecond
	h.Record(min)
	for i := 0; i < 100; i++ {
		h.Record(10 * time.Millisecond)
	}
	h.Record(max)

	if got := h.Quantile(0); got != min {
		t.Errorf("q=0: %v, want exact min %v", got, min)
	}
	if got := h.Quantile(1); got != max {
		t.Errorf("q=1: %v, want exact max %v", got, max)
	}
	if got := h.Quantile(-0.5); got != min {
		t.Errorf("q<0 must clamp to min: %v", got)
	}
	if got := h.Quantile(2); got != max {
		t.Errorf("q>1 must clamp to max: %v", got)
	}
	// Interior quantiles stay bracketed by the true extremes even when the
	// bucket midpoint falls outside [min, max].
	for _, q := range []float64{0.001, 0.01, 0.5, 0.99, 0.999} {
		if v := h.Quantile(q); v < min || v > max {
			t.Errorf("q=%v: %v outside [min=%v, max=%v]", q, v, min, max)
		}
	}
}

// TestHistogramQuantileSingleValue: every quantile of a one-observation
// histogram is that observation.
func TestHistogramQuantileSingleValue(t *testing.T) {
	h := &Histogram{}
	v := 42 * time.Millisecond
	h.Record(v)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != v {
			t.Errorf("q=%v of single value: %v, want %v", q, got, v)
		}
	}
}

// TestHistogramQuantileRankConvention documents the rank rule at exact
// bucket boundaries: rank = floor(q*n), return the first bucket whose
// cumulative count exceeds it. With two distinct values, q=0.5 of n=2
// therefore lands on the upper one — the conservative (pessimistic) choice
// for latency reporting.
func TestHistogramQuantileRankConvention(t *testing.T) {
	h := &Histogram{}
	h.Record(10 * time.Millisecond)
	h.Record(100 * time.Millisecond)
	q := h.Quantile(0.5)
	if q < 50*time.Millisecond {
		t.Errorf("q=0.5 of {10ms, 100ms} = %v, want the upper value per the rank convention", q)
	}
	if q > 100*time.Millisecond {
		t.Errorf("q=0.5 exceeded the max: %v", q)
	}
}

// TestHistogramReset covers the tumbling-window reuse path telemetry
// depends on: a reset histogram is indistinguishable from a fresh one and
// records cleanly again.
func TestHistogramReset(t *testing.T) {
	h := &Histogram{}
	h.Record(5 * time.Millisecond)
	h.Record(50 * time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("reset left state: count=%d mean=%v min=%v max=%v", h.Count(), h.Mean(), h.Min(), h.Max())
	}
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("quantile after reset: %v", got)
	}
	if got := h.FractionAbove(0); got != 0 {
		t.Errorf("FractionAbove after reset: %v", got)
	}
	h.Record(7 * time.Millisecond)
	if h.Count() != 1 || h.Min() != 7*time.Millisecond || h.Max() != 7*time.Millisecond {
		t.Errorf("record after reset: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
}
