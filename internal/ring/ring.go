// Package ring provides a bounded lock-free multi-producer ring buffer for
// cross-goroutine handoff on the data plane — the frontend↔backend enqueue
// hop uses it so concurrent Dispatch callers never contend on a mutex.
//
// The algorithm is the classic bounded MPMC queue of Dmitry Vyukov (the
// same idiom strand-protocol uses for its delivery rings): every slot
// carries a sequence number that encodes which "lap" of the ring it is on,
// so producers claim slots with one CAS on the tail cursor and publish with
// one release-store on the slot, never blocking each other. The consumer
// side here is single-consumer (the simulation-clock pump), which keeps
// Pop to plain loads/stores on the head cursor.
//
// Determinism: with a single producer the ring is strict FIFO, so routing a
// request through it adds no reordering — a single-threaded simulation
// behaves byte-identically to calling the consumer directly.
package ring

import "sync/atomic"

// slot is one ring cell. seq encodes the slot's state relative to the
// cursors: seq == index means free for the producer of lap 0, seq ==
// index+1 means a value is published and ready for the consumer, and each
// consume advances seq by the ring capacity (the next lap's "free" mark).
type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// MPSC is a bounded lock-free multi-producer, single-consumer ring.
// Producers may call Push concurrently; Pop must be serialized (one
// consumer at a time — the frontend serializes it with an atomic pump
// flag). The zero value is not usable; call NewMPSC.
type MPSC[T any] struct {
	mask  uint64
	slots []slot[T]
	// head is the consumer cursor (next slot to pop); tail is the producer
	// cursor (next slot to claim). Padded apart by field order — false
	// sharing between them costs little next to the CAS itself at the
	// contention levels a frontend sees, so we keep the layout simple.
	head atomic.Uint64
	tail atomic.Uint64
}

// NewMPSC returns a ring holding at least capacity items (rounded up to a
// power of two, minimum 2). capacity must be positive: a non-positive
// capacity panics rather than silently returning a 2-slot ring, since a
// caller computing capacity from a config value would otherwise ship a
// pathologically small ring that drops under the first burst.
func NewMPSC[T any](capacity int) *MPSC[T] {
	if capacity <= 0 {
		panic("ring: NewMPSC capacity must be positive")
	}
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &MPSC[T]{mask: uint64(n - 1), slots: make([]slot[T], n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring's capacity.
func (r *MPSC[T]) Cap() int { return len(r.slots) }

// Push publishes v. It reports false when the ring is full; it never
// blocks. Safe for any number of concurrent callers.
func (r *MPSC[T]) Push(v T) bool {
	for {
		tail := r.tail.Load()
		s := &r.slots[tail&r.mask]
		switch seq := s.seq.Load(); {
		case seq == tail:
			// Slot free on this lap: claim it. A failed CAS means another
			// producer took it first; reload and retry.
			if r.tail.CompareAndSwap(tail, tail+1) {
				s.val = v
				s.seq.Store(tail + 1) // publish (release)
				return true
			}
		case seq < tail:
			// The slot still holds last lap's value: ring full.
			return false
		default:
			// Another producer claimed this tail; reload.
		}
	}
}

// Pop removes the oldest published value. It reports false when no
// published value is ready (the ring is empty, or a producer has claimed a
// slot but not yet published it). Single consumer only.
func (r *MPSC[T]) Pop() (T, bool) {
	head := r.head.Load()
	s := &r.slots[head&r.mask]
	if s.seq.Load() != head+1 {
		var zero T
		return zero, false
	}
	v := s.val
	var zero T
	s.val = zero // release the payload; the slot may sit idle for a while
	s.seq.Store(head + r.mask + 1)
	r.head.Store(head + 1)
	return v, true
}

// Len approximates the number of published-but-unconsumed values from one
// racy read of each cursor. It is an observability hint (ring occupancy
// gauges), not a synchronization primitive: concurrent pushes and pops can
// skew it by a few items either way, and it clamps to [0, Cap].
func (r *MPSC[T]) Len() int {
	tail := r.tail.Load()
	head := r.head.Load()
	if tail <= head {
		return 0
	}
	n := tail - head
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	return int(n)
}

// Empty reports whether no published value is ready at the consumer
// cursor. Producers use it to re-check for stranded items after releasing
// the consumer role (the pump-flag handoff race).
//
// Single-consumer contract: Empty is only meaningful while the caller can
// rule out a concurrent Pop — either because it currently holds the
// consumer role, or (as in the pump-flag handoff) because it just released
// the role and will re-acquire it before acting on a false return. A "not
// empty" answer observed concurrently with an active consumer may be stale
// by the time the caller reacts; it is a hint to contend for the consumer
// role, never a license to Pop without it.
func (r *MPSC[T]) Empty() bool {
	head := r.head.Load()
	return r.slots[head&r.mask].seq.Load() != head+1
}
