package ring

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func TestCapacityRounding(t *testing.T) {
	// Rounding edges: 1 hits the minimum, exact powers of two stay put,
	// everything else rounds up to the next power.
	for _, tc := range []struct{ ask, want int }{
		{1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {16, 16}, {17, 32},
		{64, 64}, {1000, 1024}, {1024, 1024},
	} {
		if got := NewMPSC[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("NewMPSC(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestNonPositiveCapacityPanics(t *testing.T) {
	for _, capacity := range []int{0, -1, -1024} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMPSC(%d) did not panic", capacity)
				}
			}()
			NewMPSC[int](capacity)
		}()
	}
}

func TestFIFOSingleProducer(t *testing.T) {
	r := NewMPSC[int](8)
	if !r.Empty() {
		t.Fatal("fresh ring not empty")
	}
	// Interleave pushes and pops so the cursors wrap several laps; pops
	// must see 0,1,2,... in push order.
	want := 0
	for i := 0; i < 100; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
		if i%2 == 1 {
			for j := 0; j < 2; j++ {
				v, ok := r.Pop()
				if !ok {
					t.Fatalf("pop failed with items queued (i=%d)", i)
				}
				if v != want {
					t.Fatalf("pop = %d, want %d", v, want)
				}
				want++
			}
		}
	}
	if !r.Empty() {
		t.Fatal("ring should be drained")
	}
}

func TestStrictFIFOOrder(t *testing.T) {
	r := NewMPSC[int](4)
	next := 0
	popped := 0
	for lap := 0; lap < 10; lap++ {
		for r.Push(next) {
			next++
		}
		for {
			v, ok := r.Pop()
			if !ok {
				break
			}
			if v != popped {
				t.Fatalf("pop = %d, want %d", v, popped)
			}
			popped++
		}
	}
	if popped != next || popped == 0 {
		t.Fatalf("popped %d of %d pushed", popped, next)
	}
}

func TestFullRejects(t *testing.T) {
	r := NewMPSC[int](4)
	for i := 0; i < 4; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d rejected before full", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push succeeded on full ring")
	}
	if v, ok := r.Pop(); !ok || v != 0 {
		t.Fatalf("pop = %d,%v want 0,true", v, ok)
	}
	if !r.Push(99) {
		t.Fatal("push rejected after a pop freed a slot")
	}
}

// TestConcurrentProducers hammers Push from many goroutines while one
// consumer drains — the MPSC contract. Meaningful under -race. Every
// pushed value must be popped exactly once.
func TestConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 2000
	r := NewMPSC[uint64](256)
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := uint64(p*perProducer + i)
				for !r.Push(v) {
					runtime.Gosched() // full: the consumer will catch up
				}
			}
		}(p)
	}
	done := make(chan struct{})
	var sum uint64
	var count int
	go func() {
		defer close(done)
		for count < producers*perProducer {
			v, ok := r.Pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			sum += v
			count++
		}
	}()
	wg.Wait()
	<-done
	n := uint64(producers * perProducer)
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("sum of popped values = %d, want %d (lost or duplicated items)", sum, want)
	}
}

// TestPropertyMPSCNoLossNoDupPerProducerFIFO is the full MPSC correctness
// property, meaningful under -race: racing N producers against the single
// consumer, every pushed value arrives exactly once (no loss, no
// duplication) and values from any one producer arrive in that producer's
// push order (per-producer FIFO). Cross-producer interleaving is
// unconstrained. Small capacities force constant wrap-around and full-ring
// retries, the regime where a seq-lap bug would corrupt slots.
func TestPropertyMPSCNoLossNoDupPerProducerFIFO(t *testing.T) {
	type item struct{ producer, seq int }
	for _, capacity := range []int{1, 2, 64} {
		capacity := capacity
		t.Run(fmt.Sprintf("cap%d", capacity), func(t *testing.T) {
			const producers = 6
			perProducer := 3000
			if testing.Short() {
				perProducer = 500
			}
			r := NewMPSC[item](capacity)
			var wg sync.WaitGroup
			wg.Add(producers)
			for p := 0; p < producers; p++ {
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						for !r.Push(item{p, i}) {
							runtime.Gosched()
						}
					}
				}(p)
			}
			seen := make([][]int, producers) // per-producer sequence arrivals
			done := make(chan struct{})
			go func() {
				defer close(done)
				total := 0
				for total < producers*perProducer {
					v, ok := r.Pop()
					if !ok {
						runtime.Gosched()
						continue
					}
					seen[v.producer] = append(seen[v.producer], v.seq)
					total++
				}
			}()
			wg.Wait()
			<-done
			for p := 0; p < producers; p++ {
				if len(seen[p]) != perProducer {
					t.Fatalf("producer %d: %d of %d items arrived", p, len(seen[p]), perProducer)
				}
				for i, s := range seen[p] {
					if s != i {
						t.Fatalf("producer %d: arrival %d has seq %d (FIFO violated or item lost/duplicated)", p, i, s)
					}
				}
			}
		})
	}
}
