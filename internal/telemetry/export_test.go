package telemetry

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sampleCollector builds a collector with one tick of representative data.
func sampleCollector(t *testing.T) *Collector {
	t.Helper()
	c := NewCollector(Config{Interval: 500 * time.Millisecond, Rules: []Rule{}})
	r := c.Registry()
	r.Counter("session_good_total", "session", "s").Set(120)
	r.Gauge("backend_queue_depth", "backend", "be0").Set(7)
	r.Window("backend_exec_ms", "backend", "be0").Observe(25 * time.Millisecond)
	c.Tick(time.Second)
	return c
}

func TestSnapshotsJSONLRoundTrip(t *testing.T) {
	c := sampleCollector(t)
	c.Registry().Counter("session_good_total", "session", "s").Set(240)
	c.Tick(2 * time.Second)

	var buf bytes.Buffer
	if err := WriteSnapshotsJSONL(&buf, c.Snapshots()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip: %d snapshots, want 2", len(got))
	}
	if got[1].At != 2*time.Second {
		t.Errorf("At reconstructed from at_ms: %v", got[1].At)
	}
	if v, _ := got[1].Counter(Key("session_good_total", "session", "s")); v != 240 {
		t.Errorf("counter after round trip: %v", v)
	}
	if w := got[0].Windows[Key("backend_exec_ms", "backend", "be0")]; w.Count != 1 {
		t.Errorf("window after round trip: %+v", w)
	}
}

func TestSnapshotsJSONLDeterministic(t *testing.T) {
	write := func() []byte {
		c := sampleCollector(t)
		var buf bytes.Buffer
		if err := WriteSnapshotsJSONL(&buf, c.Snapshots()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(write(), write()) {
		t.Error("identical registries must serialize byte-identically")
	}
}

func TestAlertsJSONLRoundTrip(t *testing.T) {
	in := []Alert{
		{At: time.Second, AtMS: 1000, Rule: "slo-burn-rate", Target: "s", State: "firing", Value: 8.5, Detail: "x"},
		{At: 2 * time.Second, AtMS: 2000, Rule: "slo-burn-rate", Target: "s", State: "resolved"},
	}
	var buf bytes.Buffer
	if err := WriteAlertsJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAlertsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, in)
	}
}

func TestReadJSONLEmpty(t *testing.T) {
	snaps, err := ReadSnapshotsJSONL(strings.NewReader(""))
	if err != nil || len(snaps) != 0 {
		t.Errorf("empty stream: %v %v", snaps, err)
	}
	if _, err := ReadSnapshotsJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("malformed stream must error")
	}
}

func TestWritePrometheus(t *testing.T) {
	c := sampleCollector(t)
	s, ok := c.Latest()
	if !ok {
		t.Fatal("no snapshot")
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, &s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE nexus_session_good_total counter",
		`nexus_session_good_total{session="s"} 120`,
		"# TYPE nexus_backend_queue_depth gauge",
		`nexus_backend_queue_depth{backend="be0"} 7`,
		`nexus_backend_exec_ms_count{backend="be0"} 1`,
		`nexus_backend_exec_ms_p99{backend="be0"}`,
		"nexus_snapshot_at_ms 1000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Exactly one TYPE header per family.
	if n := strings.Count(out, "# TYPE nexus_session_good_total "); n != 1 {
		t.Errorf("want one TYPE header, got %d", n)
	}
}

func TestHandler(t *testing.T) {
	c := NewCollector(Config{})
	h := Handler(c)

	// Before any tick: /metrics is 503, not an empty 200 a scraper would
	// silently record as all-zeros.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 503 {
		t.Errorf("pre-tick /metrics: %d, want 503", rec.Code)
	}

	c.Registry().Gauge("sched_gpus_allocated").Set(3)
	c.Tick(time.Second)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type: %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "nexus_sched_gpus_allocated 3") {
		t.Errorf("/metrics body:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/alerts", nil))
	if rec.Code != 200 {
		t.Errorf("/alerts: %d", rec.Code)
	}

	c.AddHealth(HealthReport{Epoch: 1, AtMS: 5000, GPUsAllocated: 2, GPUsCapacity: 4})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/health", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "epoch 1") {
		t.Errorf("/health: %d %q", rec.Code, rec.Body.String())
	}
}

func TestCollectorLifecycle(t *testing.T) {
	var nilC *Collector
	nilC.Tick(time.Second) // all nil-safe
	if nilC.Registry() != nil || nilC.Snapshots() != nil || nilC.Alerts() != nil {
		t.Error("nil collector must return nils")
	}
	if _, ok := nilC.Latest(); ok {
		t.Error("nil collector has no latest")
	}
	nilC.AddHealth(HealthReport{})
	if nilC.Interval() != 0 || nilC.WallTimings() {
		t.Error("nil collector config accessors")
	}

	c := NewCollector(Config{})
	if c.Interval() != DefaultInterval {
		t.Errorf("default interval: %v", c.Interval())
	}
	c.Registry().Counter("x").Add(1)
	c.Tick(time.Second)
	c.Tick(time.Second)             // duplicate timestamp: dropped
	c.Tick(500 * time.Millisecond)  // regression: dropped
	c.Tick(1500 * time.Millisecond) // advances
	if n := len(c.Snapshots()); n != 2 {
		t.Errorf("duplicate ticks must be dropped: %d snapshots", n)
	}
	if s, ok := c.Latest(); !ok || s.At != 1500*time.Millisecond {
		t.Errorf("latest: %+v %v", s.At, ok)
	}
}

func TestCollectorHealthStampsFiring(t *testing.T) {
	c := NewCollector(Config{Rules: []Rule{QueueSaturation{Limit: 10, Consecutive: 1}}})
	c.Registry().Gauge("backend_queue_depth", "backend", "be0").Set(50)
	c.Tick(time.Second)
	if len(c.Firing()) != 1 {
		t.Fatalf("firing: %v", c.Firing())
	}
	c.AddHealth(HealthReport{Epoch: 2})
	hs := c.Health()
	if len(hs) != 1 || len(hs[0].FiringAlerts) != 1 || hs[0].FiringAlerts[0] != "queue-saturation(be0)" {
		t.Errorf("health must carry the firing set: %+v", hs)
	}

	var buf bytes.Buffer
	if err := c.WriteAlertsText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "queue-saturation(be0)") {
		t.Errorf("alert text: %q", buf.String())
	}
	buf.Reset()
	if err := c.WriteHealthText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "firing at plan time") {
		t.Errorf("health text: %q", buf.String())
	}
}

func TestHealthReportText(t *testing.T) {
	r := HealthReport{
		Epoch: 3, AtMS: 30000, GPUsDemanded: 5, GPUsAllocated: 4, GPUsCapacity: 8,
		SessionsMoved: 1, PlanWallMS: 0.42,
		Allocs: []SessionAlloc{{Session: "s", Node: "gpu0", Reason: "100.0 r/s at batch 8"}},
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"epoch 3 @ t=30.0s", "4/8 GPUs allocated (demand 5)", "planned in 0.42ms", "100.0 r/s at batch 8"} {
		if !strings.Contains(out, want) {
			t.Errorf("health text missing %q:\n%s", want, out)
		}
	}
}
