package telemetry

import "runtime"

// SampleRuntime exports the Go runtime's own health into the registry:
// goroutine count, live heap, and cumulative GC pause. These are the
// "watch the watcher" gauges — when the simulator itself degrades (a
// goroutine leak, GC thrash under a million sessions), the telemetry plane
// should say so rather than silently skew every other number. Callers gate
// this behind Config.SelfObserve: the values are nondeterministic, so they
// never belong in golden-compared snapshot streams.
func SampleRuntime(r *Registry) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("runtime_goroutines").Set(float64(runtime.NumGoroutine()))
	r.Gauge("runtime_heap_bytes").Set(float64(ms.HeapAlloc))
	r.Gauge("runtime_gc_pause_total_ms").Set(float64(ms.PauseTotalNs) / 1e6)
	r.Counter("runtime_gc_cycles_total").Set(float64(ms.NumGC))
}
