package telemetry

import (
	"testing"
	"time"
)

func TestKeyCanonicalization(t *testing.T) {
	if got := Key("queue_depth"); got != "queue_depth" {
		t.Errorf("unlabeled key: got %q", got)
	}
	if got := Key("queue_depth", "backend", "be0"); got != `queue_depth{backend="be0"}` {
		t.Errorf("single label: got %q", got)
	}
	// Labels sort by name regardless of argument order.
	a := Key("m", "zeta", "1", "alpha", "2")
	b := Key("m", "alpha", "2", "zeta", "1")
	if a != b || a != `m{alpha="2",zeta="1"}` {
		t.Errorf("label order must canonicalize: %q vs %q", a, b)
	}
}

func TestKeyOddLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list must panic")
		}
	}()
	Key("m", "only-a-name")
}

func TestFamilyAndLabelValue(t *testing.T) {
	k := Key("exec_ms", "backend", "be3", "unit", "u1")
	if Family(k) != "exec_ms" {
		t.Errorf("Family: got %q", Family(k))
	}
	if Family("plain") != "plain" {
		t.Errorf("Family of unlabeled key: got %q", Family("plain"))
	}
	if v := LabelValue(k, "backend"); v != "be3" {
		t.Errorf("LabelValue backend: got %q", v)
	}
	if v := LabelValue(k, "unit"); v != "u1" {
		t.Errorf("LabelValue unit: got %q", v)
	}
	if v := LabelValue(k, "missing"); v != "" {
		t.Errorf("missing label must be empty, got %q", v)
	}
	if v := LabelValue("plain", "backend"); v != "" {
		t.Errorf("unlabeled key must yield empty, got %q", v)
	}
}

func TestCounterSemantics(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(-1) // ignored: counters never decrease
	c.Add(0)  // ignored
	if c.Value() != 3 {
		t.Errorf("after adds: %v", c.Value())
	}
	c.Set(10) // pull-style raise
	c.Set(5)  // lower: ignored
	if c.Value() != 10 {
		t.Errorf("after sets: %v", c.Value())
	}
}

func TestGaugeSemantics(t *testing.T) {
	var g Gauge
	g.Set(4)
	g.Set(2) // gauges may fall
	if g.Value() != 2 {
		t.Errorf("gauge: %v", g.Value())
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var w *Window
	c.Add(1)
	c.Set(1)
	g.Set(1)
	w.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments must read zero")
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Window("x") != nil {
		t.Error("nil registry must hand out nil instruments")
	}
	s := r.Sample(time.Second)
	if len(s.Counters)+len(s.Gauges)+len(s.Windows) != 0 {
		t.Error("nil registry must sample empty")
	}
	if s.At != time.Second {
		t.Errorf("sample must still be stamped: %v", s.At)
	}
}

func TestRegistryIdentityAndSample(t *testing.T) {
	r := NewRegistry()
	if r.Counter("hits", "s", "a") != r.Counter("hits", "s", "a") {
		t.Error("same key must return the same counter")
	}
	r.Counter("hits", "s", "a").Add(7)
	r.Gauge("depth").Set(3)
	r.Window("exec_ms", "backend", "be0").Observe(20 * time.Millisecond)
	r.Window("exec_ms", "backend", "be0").Observe(40 * time.Millisecond)

	s := r.Sample(2 * time.Second)
	if v, ok := s.Counter(Key("hits", "s", "a")); !ok || v != 7 {
		t.Errorf("counter in snapshot: %v %v", v, ok)
	}
	if v, ok := s.Gauge("depth"); !ok || v != 3 {
		t.Errorf("gauge in snapshot: %v %v", v, ok)
	}
	ws, ok := s.Windows[Key("exec_ms", "backend", "be0")]
	if !ok || ws.Count != 2 {
		t.Fatalf("window in snapshot: %+v %v", ws, ok)
	}
	if ws.MeanMS < 25 || ws.MeanMS > 35 {
		t.Errorf("window mean: %v", ws.MeanMS)
	}
	if ws.MaxMS < 39 || ws.MaxMS > 45 {
		t.Errorf("window max: %v", ws.MaxMS)
	}

	// Sampling rotates the window: the next sample sees an empty one.
	s2 := r.Sample(3 * time.Second)
	if ws2 := s2.Windows[Key("exec_ms", "backend", "be0")]; ws2.Count != 0 {
		t.Errorf("window must reset on sample, got count %d", ws2.Count)
	}
	// Counters persist across samples.
	if v, _ := s2.Counter(Key("hits", "s", "a")); v != 7 {
		t.Errorf("counter must persist: %v", v)
	}
}

func TestSnapshotKeysScansAllStores(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "id", "b").Add(1)
	r.Gauge("m", "id", "a").Set(1)
	r.Window("m", "id", "c").Observe(time.Millisecond)
	r.Counter("other").Add(1)
	s := r.Sample(time.Second)
	keys := s.Keys("m")
	want := []string{Key("m", "id", "a"), Key("m", "id", "b"), Key("m", "id", "c")}
	if len(keys) != 3 {
		t.Fatalf("got %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("keys[%d] = %q, want %q (sorted across stores)", i, keys[i], want[i])
		}
	}
}
