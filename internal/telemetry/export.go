package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"
)

// WriteSnapshotsJSONL writes snapshots one JSON object per line — the
// stream format nexus-top tails. Go's JSON encoder emits map keys sorted,
// so output is byte-deterministic.
func WriteSnapshotsJSONL(w io.Writer, snaps []Snapshot) error {
	enc := json.NewEncoder(w)
	for i := range snaps {
		if err := enc.Encode(&snaps[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSnapshotsJSONL reads a snapshot stream, reconstructing virtual
// timestamps from at_ms.
func ReadSnapshotsJSONL(r io.Reader) ([]Snapshot, error) {
	var out []Snapshot
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var s Snapshot
		if err := dec.Decode(&s); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("telemetry: parsing snapshot JSONL: %w", err)
		}
		s.At = time.Duration(s.AtMS * float64(time.Millisecond))
		out = append(out, s)
	}
}

// WriteAlertsJSONL writes the alert log one JSON object per line.
func WriteAlertsJSONL(w io.Writer, alerts []Alert) error {
	enc := json.NewEncoder(w)
	for i := range alerts {
		if err := enc.Encode(&alerts[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadAlertsJSONL reads an alert log written by WriteAlertsJSONL.
func ReadAlertsJSONL(r io.Reader) ([]Alert, error) {
	var out []Alert
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var a Alert
		if err := dec.Decode(&a); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("telemetry: parsing alert JSONL: %w", err)
		}
		a.At = time.Duration(a.AtMS * float64(time.Millisecond))
		out = append(out, a)
	}
}

// promPrefix namespaces every exported metric.
const promPrefix = "nexus_"

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). Windows export as per-window _count/_mean/_p50/
// _p99 gauges in milliseconds.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	writeFamilies(bw, s.Counters, "counter", "")
	writeFamilies(bw, s.Gauges, "gauge", "")
	if len(s.Windows) > 0 {
		flat := make(map[string]float64, 4*len(s.Windows))
		for k, ws := range s.Windows {
			fam, labels := splitKey(k)
			flat[fam+"_count"+labels] = float64(ws.Count)
			flat[fam+"_mean"+labels] = ws.MeanMS
			flat[fam+"_p50"+labels] = ws.P50MS
			flat[fam+"_p99"+labels] = ws.P99MS
		}
		writeFamilies(bw, flat, "gauge", "")
	}
	fmt.Fprintf(bw, "# HELP %ssnapshot_at_ms virtual time of this snapshot\n", promPrefix)
	fmt.Fprintf(bw, "# TYPE %ssnapshot_at_ms gauge\n", promPrefix)
	fmt.Fprintf(bw, "%ssnapshot_at_ms %s\n", promPrefix, formatValue(s.AtMS))
	return bw.Flush()
}

// splitKey separates a canonical key into its family and label block
// (label block includes braces, or "" when unlabeled).
func splitKey(key string) (family, labels string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '{' {
			return key[:i], key[i:]
		}
	}
	return key, ""
}

// writeFamilies emits one # TYPE header per metric family, then its
// samples, all sorted.
func writeFamilies(w io.Writer, values map[string]float64, typ, help string) {
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lastFam := ""
	for _, k := range keys {
		fam, labels := splitKey(k)
		if fam != lastFam {
			if help != "" {
				fmt.Fprintf(w, "# HELP %s%s %s\n", promPrefix, fam, help)
			}
			fmt.Fprintf(w, "# TYPE %s%s %s\n", promPrefix, fam, typ)
			lastFam = fam
		}
		fmt.Fprintf(w, "%s%s%s %s\n", promPrefix, fam, labels, formatValue(values[k]))
	}
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the collector over HTTP for live runs:
//
//	/metrics       — latest snapshot, Prometheus text format
//	/alerts        — alert log, plain text
//	/health        — per-epoch scheduler health reports, plain text
//	/debug/pprof/  — Go runtime profiles (CPU, heap, goroutines, ...)
//
// /metrics reads only the mutex-published latest snapshot, so scraping a
// running simulation is race-free; /alerts and /health are intended for
// after the run (they read the logs without synchronization with the
// simulation goroutine). The pprof routes profile the simulator process
// itself — the self-observability counterpart to the gauges SampleRuntime
// exports.
func Handler(c *Collector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s, ok := c.Latest()
		if !ok {
			http.Error(w, "no snapshot yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, &s)
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = c.WriteAlertsText(w)
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = c.WriteHealthText(w)
	})
	return mux
}
