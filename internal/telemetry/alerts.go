package telemetry

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nexus/internal/metrics"
)

// Alert is one transition in the alert log: a rule target starting to fire
// or resolving. Timestamps are virtual time, so the log is deterministic
// and chaos experiments can assert on exact alert placement relative to an
// injected fault.
type Alert struct {
	At     time.Duration `json:"-"`
	AtMS   float64       `json:"at_ms"`
	Rule   string        `json:"rule"`
	Target string        `json:"target"`
	State  string        `json:"state"` // "firing" | "resolved"
	Value  float64       `json:"value"`
	Detail string        `json:"detail,omitempty"`
}

// Violation is one target a rule currently finds in violation.
type Violation struct {
	Target string
	Value  float64
	Detail string
}

// Rule is a declarative alerting rule evaluated against the snapshot
// history after every sample.
type Rule interface {
	// Name identifies the rule in the alert log.
	Name() string
	// Window is how much snapshot history the rule needs retained.
	Window() time.Duration
	// Check returns the targets currently in violation.
	Check(h *History) []Violation
}

// History is the retained snapshot stream rules evaluate against,
// chronological, most recent last.
type History struct {
	snaps []Snapshot
}

// Latest returns the most recent snapshot (nil when empty).
func (h *History) Latest() *Snapshot {
	if len(h.snaps) == 0 {
		return nil
	}
	return &h.snaps[len(h.snaps)-1]
}

// Snapshots returns the retained stream.
func (h *History) Snapshots() []Snapshot { return h.snaps }

// before returns the newest snapshot at least `window` older than the
// latest one, or nil when history does not reach back that far. Using the
// newest qualifying snapshot makes deltas cover as close to `window` as
// the sampling interval allows.
func (h *History) before(window time.Duration) *Snapshot {
	if len(h.snaps) == 0 {
		return nil
	}
	cutoff := h.snaps[len(h.snaps)-1].At - window
	for i := len(h.snaps) - 2; i >= 0; i-- {
		if h.snaps[i].At <= cutoff {
			return &h.snaps[i]
		}
	}
	return nil
}

// CounterDelta returns how much a counter grew over the trailing window.
// ok is false when history does not span the window yet.
func (h *History) CounterDelta(key string, window time.Duration) (float64, bool) {
	last := h.Latest()
	old := h.before(window)
	if last == nil || old == nil {
		return 0, false
	}
	cur, okc := last.Counter(key)
	prev := 0.0
	if v, ok := old.Counter(key); ok {
		prev = v
	}
	if !okc {
		return 0, false
	}
	d := cur - prev
	if d < 0 {
		d = 0
	}
	return d, true
}

// Transitions counts how many times a gauge changed value across the
// snapshots of the trailing window (missing samples are bridged with the
// last seen value, so a target that disappears and returns does not
// manufacture extra flips).
func (h *History) Transitions(key string, window time.Duration) int {
	if len(h.snaps) == 0 {
		return 0
	}
	cutoff := h.snaps[len(h.snaps)-1].At - window
	n := 0
	var prev float64
	seen := false
	for i := range h.snaps {
		if h.snaps[i].At < cutoff {
			// Still establish the pre-window baseline so a change right at
			// the window edge counts.
			if v, ok := h.snaps[i].Gauge(key); ok {
				prev, seen = v, true
			}
			continue
		}
		v, ok := h.snaps[i].Gauge(key)
		if !ok {
			continue
		}
		if seen && v != prev {
			n++
		}
		prev, seen = v, true
	}
	return n
}

// Engine evaluates rules over the snapshot stream and maintains the
// deterministic alert log. The nil Engine accepts every call and does
// nothing.
type Engine struct {
	rules  []Rule
	keep   time.Duration
	hist   History
	firing map[string]bool // rule+"\x00"+target currently firing
	log    []Alert
}

// NewEngine builds an engine over the given rules (nil or empty = no
// alerting, snapshots are still retained for the longest default window).
func NewEngine(rules []Rule) *Engine {
	e := &Engine{rules: rules, firing: make(map[string]bool)}
	for _, r := range rules {
		if w := r.Window(); w > e.keep {
			e.keep = w
		}
	}
	if e.keep < 10*time.Second {
		e.keep = 10 * time.Second
	}
	return e
}

// Observe appends a snapshot to the history and evaluates every rule,
// logging firing/resolved transitions stamped with the snapshot time.
func (e *Engine) Observe(s Snapshot) {
	if e == nil {
		return
	}
	e.hist.snaps = append(e.hist.snaps, s)
	// Trim history beyond the longest rule window (keep one extra sample so
	// window-edge deltas stay available).
	cutoff := s.At - e.keep
	drop := 0
	for drop < len(e.hist.snaps)-1 && e.hist.snaps[drop+1].At < cutoff {
		drop++
	}
	if drop > 0 {
		e.hist.snaps = append(e.hist.snaps[:0], e.hist.snaps[drop:]...)
	}
	for _, r := range e.rules {
		e.apply(r.Name(), s.At, r.Check(&e.hist))
	}
}

// apply reconciles one rule's current violations against its firing set.
func (e *Engine) apply(rule string, at time.Duration, violations []Violation) {
	sort.Slice(violations, func(i, j int) bool { return violations[i].Target < violations[j].Target })
	active := make(map[string]bool, len(violations))
	for _, v := range violations {
		key := rule + "\x00" + v.Target
		active[key] = true
		if e.firing[key] {
			continue
		}
		e.firing[key] = true
		e.log = append(e.log, Alert{
			At: at, AtMS: MS(at), Rule: rule, Target: v.Target,
			State: "firing", Value: v.Value, Detail: v.Detail,
		})
	}
	var resolved []string
	for key := range e.firing {
		if len(key) > len(rule) && key[:len(rule)] == rule && key[len(rule)] == 0 && !active[key] {
			resolved = append(resolved, key)
		}
	}
	sort.Strings(resolved)
	for _, key := range resolved {
		delete(e.firing, key)
		e.log = append(e.log, Alert{
			At: at, AtMS: MS(at), Rule: rule, Target: key[len(rule)+1:], State: "resolved",
		})
	}
}

// Alerts returns the full chronological alert log.
func (e *Engine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	return e.log
}

// Firing returns the names of currently firing rule/target pairs, sorted,
// formatted "rule(target)".
func (e *Engine) Firing() []string {
	if e == nil {
		return nil
	}
	out := make([]string, 0, len(e.firing))
	for key := range e.firing {
		for i := 0; i < len(key); i++ {
			if key[i] == 0 {
				out = append(out, key[:i]+"("+key[i+1:]+")")
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// BurnRate is the multi-window SLO burn-rate rule: a session fires when
// its bad-completion fraction, expressed as a multiple of the SLO error
// budget (1 - Target), exceeds Threshold over both the short and the long
// trailing window. Requiring both windows makes the alert fast on real
// incidents yet self-clearing once the short window recovers.
type BurnRate struct {
	Target    float64       // SLO attainment target; 0 = metrics.GoodputTarget
	Short     time.Duration // fast window; 0 = 1s
	Long      time.Duration // slow window; 0 = 5s
	Threshold float64       // burn multiple to fire at; 0 = 4
	MinSent   float64       // minimum finished requests in Long; 0 = 20
}

// Name implements Rule.
func (r BurnRate) Name() string { return "slo-burn-rate" }

// Window implements Rule.
func (r BurnRate) Window() time.Duration {
	if r.Long <= 0 {
		return 5 * time.Second
	}
	return r.Long
}

// Check implements Rule.
func (r BurnRate) Check(h *History) []Violation {
	target, short, long, thr, minSent := r.Target, r.Short, r.Long, r.Threshold, r.MinSent
	if target <= 0 {
		target = metrics.GoodputTarget
	}
	if short <= 0 {
		short = time.Second
	}
	if long <= 0 {
		long = 5 * time.Second
	}
	if thr <= 0 {
		thr = 4
	}
	if minSent <= 0 {
		minSent = 20
	}
	budget := 1 - target
	if budget <= 0 {
		return nil
	}
	last := h.Latest()
	if last == nil {
		return nil
	}
	var out []Violation
	for _, key := range last.Keys("session_good_total") {
		sid := LabelValue(key, "session")
		burn := func(w time.Duration) (float64, float64, bool) {
			good, ok1 := h.CounterDelta(Key("session_good_total", "session", sid), w)
			bad, ok2 := h.CounterDelta(Key("session_bad_total", "session", sid), w)
			if !ok1 || !ok2 || good+bad == 0 {
				return 0, 0, false
			}
			frac := bad / (good + bad)
			return frac / budget, good + bad, true
		}
		bs, _, oks := burn(short)
		bl, nl, okl := burn(long)
		if !oks || !okl || nl < minSent {
			continue
		}
		if bs >= thr && bl >= thr {
			out = append(out, Violation{
				Target: sid,
				Value:  bs,
				Detail: fmt.Sprintf("burn %.1fx budget over %v, %.1fx over %v (target %.2f%%)", bs, short, bl, long, 100*target),
			})
		}
	}
	return out
}

// QueueSaturation fires when a backend's queue depth sits at or above
// Limit for Consecutive successive samples.
type QueueSaturation struct {
	Limit       float64 // 0 = 256
	Consecutive int     // 0 = 2
}

// Name implements Rule.
func (r QueueSaturation) Name() string { return "queue-saturation" }

// Window implements Rule.
func (r QueueSaturation) Window() time.Duration { return 10 * time.Second }

// Check implements Rule.
func (r QueueSaturation) Check(h *History) []Violation {
	limit, consec := r.Limit, r.Consecutive
	if limit <= 0 {
		limit = 256
	}
	if consec <= 0 {
		consec = 2
	}
	snaps := h.Snapshots()
	if len(snaps) < consec {
		return nil
	}
	last := h.Latest()
	var out []Violation
	for _, key := range last.Keys("backend_queue_depth") {
		ok := true
		for i := 0; i < consec; i++ {
			v, present := snaps[len(snaps)-1-i].Gauge(key)
			if !present || v < limit {
				ok = false
				break
			}
		}
		if ok {
			v, _ := last.Gauge(key)
			out = append(out, Violation{
				Target: LabelValue(key, "backend"),
				Value:  v,
				Detail: fmt.Sprintf("queue depth %.0f >= %.0f for %d samples", v, limit, consec),
			})
		}
	}
	return out
}

// Straggler flags a GPU whose mean execute latency in the last window is a
// z-score outlier against the fleet. The Ratio guard keeps near-zero
// fleet variance from amplifying noise into alerts.
type Straggler struct {
	ZScore   float64 // 0 = 1.5 (note: max attainable z among 4 peers is ~1.73)
	Ratio    float64 // also require mean >= Ratio × fleet mean; 0 = 1.5
	MinPeers int     // 0 = 3
	MinCount uint64  // min batches in the window per considered GPU; 0 = 3
}

// Name implements Rule.
func (r Straggler) Name() string { return "gpu-straggler" }

// Window implements Rule.
func (r Straggler) Window() time.Duration { return 5 * time.Second }

// Check implements Rule.
func (r Straggler) Check(h *History) []Violation {
	z, ratio, minPeers, minCount := r.ZScore, r.Ratio, r.MinPeers, r.MinCount
	if z <= 0 {
		z = 1.5
	}
	if ratio <= 0 {
		ratio = 1.5
	}
	if minPeers <= 0 {
		minPeers = 3
	}
	if minCount == 0 {
		minCount = 3
	}
	last := h.Latest()
	if last == nil {
		return nil
	}
	type peer struct {
		id   string
		mean float64
	}
	var peers []peer
	for _, key := range last.Keys("backend_exec_ms") {
		w, ok := last.Windows[key]
		if !ok || w.Count < minCount {
			continue
		}
		peers = append(peers, peer{id: LabelValue(key, "backend"), mean: w.MeanMS})
	}
	if len(peers) < minPeers {
		return nil
	}
	var sum float64
	for _, p := range peers {
		sum += p.mean
	}
	mu := sum / float64(len(peers))
	var varsum float64
	for _, p := range peers {
		varsum += (p.mean - mu) * (p.mean - mu)
	}
	sigma := math.Sqrt(varsum / float64(len(peers)))
	if sigma <= 1e-9 {
		return nil
	}
	var out []Violation
	for _, p := range peers {
		score := (p.mean - mu) / sigma
		if score >= z && p.mean >= ratio*mu {
			out = append(out, Violation{
				Target: p.id,
				Value:  score,
				Detail: fmt.Sprintf("exec mean %.2fms vs fleet %.2fms (z=%.2f over %d GPUs)", p.mean, mu, score, len(peers)),
			})
		}
	}
	return out
}

// BackendFlap fires when a backend's up/down state changes at least
// Transitions times within the trailing window — a crash/restart loop the
// scheduler keeps chasing.
type BackendFlap struct {
	Win         time.Duration // 0 = 10s
	Transitions int           // 0 = 3
}

// Name implements Rule.
func (r BackendFlap) Name() string { return "backend-flap" }

// Window implements Rule.
func (r BackendFlap) Window() time.Duration {
	if r.Win <= 0 {
		return 10 * time.Second
	}
	return r.Win
}

// Check implements Rule.
func (r BackendFlap) Check(h *History) []Violation {
	win, min := r.Win, r.Transitions
	if win <= 0 {
		win = 10 * time.Second
	}
	if min <= 0 {
		min = 3
	}
	last := h.Latest()
	if last == nil {
		return nil
	}
	var out []Violation
	for _, key := range last.Keys("backend_up") {
		if n := h.Transitions(key, win); n >= min {
			out = append(out, Violation{
				Target: LabelValue(key, "backend"),
				Value:  float64(n),
				Detail: fmt.Sprintf("%d up/down transitions in %v", n, win),
			})
		}
	}
	return out
}

// DefaultRules returns the standard rule set with default thresholds.
func DefaultRules() []Rule {
	return []Rule{BurnRate{}, QueueSaturation{}, Straggler{}, BackendFlap{}}
}
