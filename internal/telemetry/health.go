package telemetry

import (
	"fmt"
	"io"
	"time"
)

// SessionAlloc explains one session's placement on one plan node of an
// epoch: what batch and rate share it was given, how occupied the node is,
// and a human-readable reason string.
type SessionAlloc struct {
	Session   string  `json:"session"`
	Node      string  `json:"node"`
	Replicas  int     `json:"replicas"`
	Batch     int     `json:"batch"`
	Rate      float64 `json:"rate"`
	DutyMS    float64 `json:"duty_ms"`
	Occupancy float64 `json:"occupancy"`
	Headroom  float64 `json:"headroom"`
	Reason    string  `json:"reason"`
	Shard     string  `json:"shard,omitempty"`
}

// HealthReport is the global scheduler's per-epoch "explain" output: where
// the plan put every session and why, how demand compared to what the pool
// could grant, and which alerts were firing when the plan was applied.
type HealthReport struct {
	Epoch         int           `json:"epoch"`
	At            time.Duration `json:"-"`
	AtMS          float64       `json:"at_ms"`
	GPUsDemanded  int           `json:"gpus_demanded"`
	GPUsAllocated int           `json:"gpus_allocated"`
	GPUsCapacity  int           `json:"gpus_capacity"`
	SessionsMoved int           `json:"sessions_moved"`
	PlanWallMS    float64       `json:"plan_wall_ms,omitempty"`
	// Sharded-planner counters (PR 6); zero and omitted for the
	// monolithic planner so unsharded goldens are unchanged.
	ShardsReplanned int            `json:"shards_replanned,omitempty"`
	ShardsSkipped   int            `json:"shards_skipped,omitempty"`
	CrossShardMoves int            `json:"cross_shard_moves,omitempty"`
	Allocs          []SessionAlloc `json:"allocs"`
	FiringAlerts    []string       `json:"firing_alerts,omitempty"`
}

// WriteText renders the report for terminals.
func (r *HealthReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "epoch %d @ t=%.1fs: %d/%d GPUs allocated (demand %d), %d session move(s)",
		r.Epoch, r.AtMS/1000, r.GPUsAllocated, r.GPUsCapacity, r.GPUsDemanded, r.SessionsMoved); err != nil {
		return err
	}
	if r.PlanWallMS > 0 {
		if _, err := fmt.Fprintf(w, ", planned in %.2fms", r.PlanWallMS); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, a := range r.Allocs {
		if _, err := fmt.Fprintf(w, "  %-24s %s\n", a.Session, a.Reason); err != nil {
			return err
		}
	}
	if len(r.FiringAlerts) > 0 {
		if _, err := fmt.Fprintf(w, "  firing at plan time: %v\n", r.FiringAlerts); err != nil {
			return err
		}
	}
	return nil
}
