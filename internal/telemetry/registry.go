// Package telemetry is the live observability plane: a streaming metrics
// registry every layer publishes into (frontends, backends, the global
// scheduler), sampled on the simulation clock into deterministic
// snapshots; an alerting engine evaluating declarative rules over the
// snapshot stream (SLO burn rate, queue saturation, stragglers, backend
// flaps); per-epoch scheduler health reports ("explain" output); and
// exporters — Prometheus text format for live HTTP scraping and JSONL for
// offline diffing and `nexus-top`.
//
// Like the lifecycle Tracer, the whole plane follows the nil-no-op
// discipline: a nil Collector/Registry/instrument accepts every call and
// does nothing, so deployments without telemetry pay nothing and stay
// byte-identical to their goldens. Sampling is pull-based — the cluster
// reads counters the simulation already maintains — so even enabled
// telemetry never perturbs data-plane event order.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nexus/internal/metrics"
)

// MS converts a virtual-time duration to export milliseconds.
func MS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Key builds the canonical instrument key from a metric name and
// alternating label name/value pairs, with labels sorted by name:
//
//	Key("queue_depth", "backend", "be0") == `queue_depth{backend="be0"}`
//
// Canonical keys make snapshot maps, JSONL output, and Prometheus
// exposition all agree on identity without a parsing layer.
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list for %s", name))
	}
	n := len(labels) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return labels[2*idx[a]] < labels[2*idx[b]] })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, j := range idx {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[2*j])
		b.WriteString(`="`)
		b.WriteString(labels[2*j+1])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// Family returns the metric name of a key, i.e. everything before the
// label block.
func Family(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// LabelValue extracts one label's value from a canonical key, or "" when
// the label is absent.
func LabelValue(key, label string) string {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return ""
	}
	rest := key[i+1 : len(key)-1]
	for _, pair := range strings.Split(rest, ",") {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			continue
		}
		if pair[:eq] == label {
			return strings.Trim(pair[eq+1:], `"`)
		}
	}
	return ""
}

// Counter is a monotonically non-decreasing instrument. The nil Counter
// accepts every call and does nothing.
type Counter struct{ v float64 }

// Add increments the counter by d (negative d is ignored).
func (c *Counter) Add(d float64) {
	if c == nil || d <= 0 {
		return
	}
	c.v += d
}

// Set raises the counter to v if v is larger — the pull-based idiom for
// mirroring a cumulative count the simulation already maintains.
func (c *Counter) Set(v float64) {
	if c == nil || v <= c.v {
		return
	}
	c.v = v
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instrument whose value can move both ways. The nil Gauge
// accepts every call and does nothing.
type Gauge struct{ v float64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Window is a tumbling-window latency histogram reusing the log-bucketed
// metrics.Histogram: observations accumulate until the next registry
// sample, which summarizes and clears them. The nil Window accepts every
// call and does nothing.
type Window struct {
	h metrics.Histogram
	// Exemplar state: the request ID behind the window's max observation,
	// only populated via ObserveExemplar (forensics wiring) so plain
	// deployments keep byte-identical snapshot streams.
	exMax time.Duration
	exID  uint64
	exSet bool
}

// Observe records one duration into the current window.
func (w *Window) Observe(d time.Duration) {
	if w == nil {
		return
	}
	w.h.Record(d)
}

// ObserveExemplar records one duration and tags it with the request ID it
// came from; the window's summary then carries the ID of its worst
// observation, linking a hot histogram cell to a concrete trace span.
func (w *Window) ObserveExemplar(d time.Duration, reqID uint64) {
	if w == nil {
		return
	}
	w.h.Record(d)
	if !w.exSet || d > w.exMax {
		w.exMax, w.exID, w.exSet = d, reqID, true
	}
}

// take summarizes and resets the current window.
func (w *Window) take() WindowStats {
	s := WindowStats{
		Count:  w.h.Count(),
		MeanMS: MS(w.h.Mean()),
		P50MS:  MS(w.h.Quantile(0.5)),
		P99MS:  MS(w.h.Quantile(0.99)),
		MaxMS:  MS(w.h.Max()),
	}
	if w.exSet {
		s.ExemplarID = w.exID
		w.exMax, w.exID, w.exSet = 0, 0, false
	}
	w.h.Reset()
	return s
}

// WindowStats is one window's summary, in export milliseconds. ExemplarID,
// when present, is the request ID of the window's max observation.
type WindowStats struct {
	Count      uint64  `json:"count"`
	MeanMS     float64 `json:"mean_ms"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
	ExemplarID uint64  `json:"exemplar_req,omitempty"`
}

// Registry holds the live instruments, keyed canonically. Instruments are
// created on first use and persist for the run, so snapshot key sets are
// stable. The nil Registry hands out nil instruments, which no-op.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	windows  map[string]*Window
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		windows:  make(map[string]*Window),
	}
}

// Counter returns (creating if needed) the counter for name+labels.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Window returns (creating if needed) the windowed histogram for
// name+labels.
func (r *Registry) Window(name string, labels ...string) *Window {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	w, ok := r.windows[k]
	if !ok {
		w = &Window{}
		r.windows[k] = w
	}
	return w
}

// Sample captures every instrument's current value into a Snapshot stamped
// at virtual time `at`, rotating all windows. A nil registry samples to an
// empty snapshot.
func (r *Registry) Sample(at time.Duration) Snapshot {
	s := Snapshot{
		At:       at,
		AtMS:     MS(at),
		Counters: map[string]float64{},
		Gauges:   map[string]float64{},
		Windows:  map[string]WindowStats{},
	}
	if r == nil {
		return s
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, w := range r.windows {
		s.Windows[k] = w.take()
	}
	return s
}

// Snapshot is one sampled state of the registry. Map keys serialize
// sorted, so encoded snapshots are deterministic.
type Snapshot struct {
	At       time.Duration          `json:"-"`
	AtMS     float64                `json:"at_ms"`
	Counters map[string]float64     `json:"counters,omitempty"`
	Gauges   map[string]float64     `json:"gauges,omitempty"`
	Windows  map[string]WindowStats `json:"windows,omitempty"`
}

// Counter returns a counter's value in the snapshot.
func (s *Snapshot) Counter(key string) (float64, bool) {
	v, ok := s.Counters[key]
	return v, ok
}

// Gauge returns a gauge's value in the snapshot.
func (s *Snapshot) Gauge(key string) (float64, bool) {
	v, ok := s.Gauges[key]
	return v, ok
}

// Keys returns the snapshot's keys of one metric family, sorted. It scans
// counters, gauges, and windows.
func (s *Snapshot) Keys(family string) []string {
	var out []string
	for k := range s.Counters {
		if Family(k) == family {
			out = append(out, k)
		}
	}
	for k := range s.Gauges {
		if Family(k) == family {
			out = append(out, k)
		}
	}
	for k := range s.Windows {
		if Family(k) == family {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
