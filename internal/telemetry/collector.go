package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultInterval is the sampling period used when Config.Interval is 0.
const DefaultInterval = 500 * time.Millisecond

// Config enables the telemetry plane on a deployment.
type Config struct {
	// Interval is the virtual-time sampling period (0 = DefaultInterval).
	Interval time.Duration
	// Rules is the alerting rule set; nil = DefaultRules(). An explicit
	// empty slice disables alerting while keeping snapshots.
	Rules []Rule
	// WallTimings additionally measures real (wall-clock) control-plane
	// plan time. Off by default: wall time is nondeterministic, and leaving
	// it out keeps the snapshot stream byte-identical across runs.
	WallTimings bool
	// SelfObserve additionally exports runtime self-observability gauges
	// (goroutine count, heap bytes, cumulative GC pause, ingress ring
	// occupancy, send-arena reuse rate). Off by default: runtime state is
	// nondeterministic, like WallTimings, and leaving it out keeps the
	// snapshot stream byte-identical across runs and worker counts.
	SelfObserve bool
}

// Collector owns the registry, the snapshot stream, the alert engine, and
// the health-report log for one deployment. Sampling happens on the
// simulation goroutine; the latest snapshot is additionally published
// under a mutex so a live HTTP scrape handler can read it from another
// goroutine without racing the simulation. The nil Collector accepts every
// call and does nothing.
type Collector struct {
	cfg    Config
	reg    *Registry
	engine *Engine
	snaps  []Snapshot
	health []HealthReport

	mu     sync.Mutex
	latest Snapshot
	has    bool

	// Forensics hooks, both invoked on the simulation goroutine during
	// Tick: onSample sees every snapshot (the flight recorder's metric
	// feed), onAlert sees each new firing transition (its dump trigger).
	onSample func(Snapshot)
	onAlert  func(Alert)
}

// NewCollector builds a collector, resolving config defaults.
func NewCollector(cfg Config) *Collector {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	rules := cfg.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	return &Collector{cfg: cfg, reg: NewRegistry(), engine: NewEngine(rules)}
}

// Interval returns the resolved sampling period.
func (c *Collector) Interval() time.Duration {
	if c == nil {
		return 0
	}
	return c.cfg.Interval
}

// WallTimings reports whether real plan-time measurement was requested.
func (c *Collector) WallTimings() bool { return c != nil && c.cfg.WallTimings }

// SelfObserve reports whether runtime self-observability was requested.
func (c *Collector) SelfObserve() bool { return c != nil && c.cfg.SelfObserve }

// SetOnSample installs a hook that sees every sampled snapshot, invoked on
// the simulation goroutine before alert evaluation.
func (c *Collector) SetOnSample(fn func(Snapshot)) {
	if c == nil {
		return
	}
	c.onSample = fn
}

// SetOnAlert installs a hook that sees each new firing alert transition,
// invoked on the simulation goroutine during the tick that fired it.
// Resolved transitions are not delivered: the flight recorder dumps on
// anomaly onset, not on all-clear.
func (c *Collector) SetOnAlert(fn func(Alert)) {
	if c == nil {
		return
	}
	c.onAlert = fn
}

// Registry returns the live instrument registry (nil for a nil collector,
// whose instruments then no-op).
func (c *Collector) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Tick samples the registry at virtual time `at`, feeds the alert engine,
// appends to the snapshot stream, and publishes the snapshot for
// concurrent scrapes. Duplicate timestamps (e.g. a flush landing on a tick
// boundary) are dropped so the stream stays strictly increasing.
func (c *Collector) Tick(at time.Duration) {
	if c == nil {
		return
	}
	if n := len(c.snaps); n > 0 && c.snaps[n-1].At >= at {
		return
	}
	s := c.reg.Sample(at)
	if c.onSample != nil {
		c.onSample(s)
	}
	before := len(c.engine.Alerts())
	c.engine.Observe(s)
	if c.onAlert != nil {
		for _, a := range c.engine.Alerts()[before:] {
			if a.State == "firing" {
				c.onAlert(a)
			}
		}
	}
	c.snaps = append(c.snaps, s)
	c.mu.Lock()
	c.latest = s
	c.has = true
	c.mu.Unlock()
}

// Snapshots returns the full snapshot stream.
func (c *Collector) Snapshots() []Snapshot {
	if c == nil {
		return nil
	}
	return c.snaps
}

// Latest returns a copy of the most recent snapshot. Safe to call from any
// goroutine while the simulation runs.
func (c *Collector) Latest() (Snapshot, bool) {
	if c == nil {
		return Snapshot{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.latest, c.has
}

// Alerts returns the chronological alert log.
func (c *Collector) Alerts() []Alert {
	if c == nil {
		return nil
	}
	return c.engine.Alerts()
}

// Firing returns the currently firing rule(target) pairs, sorted.
func (c *Collector) Firing() []string {
	if c == nil {
		return nil
	}
	return c.engine.Firing()
}

// AddHealth appends a per-epoch health report, stamping it with the alerts
// firing at plan time.
func (c *Collector) AddHealth(h HealthReport) {
	if c == nil {
		return
	}
	h.FiringAlerts = c.engine.Firing()
	c.health = append(c.health, h)
}

// Health returns the per-epoch health reports.
func (c *Collector) Health() []HealthReport {
	if c == nil {
		return nil
	}
	return c.health
}

// WriteAlertsText renders the alert log for terminals.
func (c *Collector) WriteAlertsText(w io.Writer) error {
	for _, a := range c.Alerts() {
		line := fmt.Sprintf("t=%8.3fs  %-8s %s(%s)", a.AtMS/1000, a.State, a.Rule, a.Target)
		if a.State == "firing" {
			line += fmt.Sprintf("  value=%.2f  %s", a.Value, a.Detail)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// WriteHealthText renders every epoch's health report for terminals.
func (c *Collector) WriteHealthText(w io.Writer) error {
	for i := range c.Health() {
		if err := c.health[i].WriteText(w); err != nil {
			return err
		}
	}
	return nil
}
