package telemetry

import (
	"testing"
	"time"
)

// snapAt builds a synthetic snapshot for rule tests.
func snapAt(at time.Duration, counters, gauges map[string]float64, windows map[string]WindowStats) Snapshot {
	s := Snapshot{At: at, AtMS: MS(at), Counters: map[string]float64{}, Gauges: map[string]float64{}, Windows: map[string]WindowStats{}}
	for k, v := range counters {
		s.Counters[k] = v
	}
	for k, v := range gauges {
		s.Gauges[k] = v
	}
	for k, v := range windows {
		s.Windows[k] = v
	}
	return s
}

func TestHistoryCounterDelta(t *testing.T) {
	h := &History{}
	key := Key("session_good_total", "session", "s")
	for i := 0; i <= 5; i++ {
		h.snaps = append(h.snaps, snapAt(time.Duration(i)*time.Second,
			map[string]float64{key: float64(10 * i)}, nil, nil))
	}
	if d, ok := h.CounterDelta(key, 2*time.Second); !ok || d != 20 {
		t.Errorf("delta over 2s: %v %v", d, ok)
	}
	if _, ok := h.CounterDelta(key, time.Hour); ok {
		t.Error("window beyond history must report !ok")
	}
	if _, ok := h.CounterDelta("absent", 2*time.Second); ok {
		t.Error("absent counter must report !ok")
	}
}

func TestHistoryTransitions(t *testing.T) {
	h := &History{}
	key := Key("backend_up", "backend", "be0")
	ups := []float64{1, 0, 1, 0, 0}
	for i, v := range ups {
		h.snaps = append(h.snaps, snapAt(time.Duration(i)*time.Second, nil,
			map[string]float64{key: v}, nil))
	}
	if n := h.Transitions(key, 10*time.Second); n != 3 {
		t.Errorf("transitions over full history: %d, want 3", n)
	}
	// Narrow window: only the last flip (1→0 at t=3) is inside, with the
	// pre-window value as baseline.
	if n := h.Transitions(key, 1500*time.Millisecond); n != 1 {
		t.Errorf("transitions over 1.5s: %d, want 1", n)
	}
}

// burnSnaps drives a session through healthy → burning → recovered phases,
// one snapshot per second.
func burnSnaps(seconds int, badStart, badStop int) []Snapshot {
	good := Key("session_good_total", "session", "s")
	bad := Key("session_bad_total", "session", "s")
	var out []Snapshot
	g, b := 0.0, 0.0
	for i := 0; i <= seconds; i++ {
		if i > 0 {
			if i > badStart && i <= badStop {
				g += 40
				b += 20 // 33% bad ≫ 1% budget
			} else {
				g += 60
			}
		}
		out = append(out, snapAt(time.Duration(i)*time.Second,
			map[string]float64{good: g, bad: b}, nil, nil))
	}
	return out
}

func TestBurnRateFiresAndResolves(t *testing.T) {
	e := NewEngine([]Rule{BurnRate{Short: time.Second, Long: 3 * time.Second, Threshold: 4}})
	for _, s := range burnSnaps(20, 5, 10) {
		e.Observe(s)
	}
	alerts := e.Alerts()
	if len(alerts) < 2 {
		t.Fatalf("want a firing and a resolve, got %+v", alerts)
	}
	first := alerts[0]
	if first.Rule != "slo-burn-rate" || first.Target != "s" || first.State != "firing" {
		t.Fatalf("first alert: %+v", first)
	}
	// Burn starts after t=5s; both windows must agree, so firing lands in
	// (5s, 10s]; it must resolve after recovery.
	if first.At <= 5*time.Second || first.At > 10*time.Second {
		t.Errorf("firing at %v, want within the burn phase", first.At)
	}
	last := alerts[len(alerts)-1]
	if last.State != "resolved" || last.At <= first.At {
		t.Errorf("last alert must resolve later: %+v", last)
	}
	if len(e.Firing()) != 0 {
		t.Errorf("nothing should still fire: %v", e.Firing())
	}
}

func TestBurnRateHonorsMinSent(t *testing.T) {
	e := NewEngine([]Rule{BurnRate{Short: time.Second, Long: 3 * time.Second, Threshold: 4, MinSent: 1e6}})
	for _, s := range burnSnaps(20, 5, 10) {
		e.Observe(s)
	}
	if len(e.Alerts()) != 0 {
		t.Errorf("below MinSent nothing may fire: %+v", e.Alerts())
	}
}

func TestBurnRateNeedsBothWindows(t *testing.T) {
	// One bad second inside an otherwise healthy run: the short window
	// spikes but the long window stays under threshold.
	e := NewEngine([]Rule{BurnRate{Short: time.Second, Long: 10 * time.Second, Threshold: 30}})
	for _, s := range burnSnaps(20, 5, 6) {
		e.Observe(s)
	}
	for _, a := range e.Alerts() {
		t.Errorf("short-window blip must not fire alone: %+v", a)
	}
}

func TestQueueSaturation(t *testing.T) {
	key := Key("backend_queue_depth", "backend", "be0")
	e := NewEngine([]Rule{QueueSaturation{Limit: 100, Consecutive: 2}})
	depths := []float64{10, 150, 20, 150, 151, 0}
	for i, d := range depths {
		e.Observe(snapAt(time.Duration(i)*time.Second, nil, map[string]float64{key: d}, nil))
	}
	alerts := e.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("want fire+resolve, got %+v", alerts)
	}
	// A single saturated sample (t=1s) must not fire; two consecutive
	// (t=3s,4s) fire at t=4s; the drain at t=5s resolves.
	if alerts[0].At != 4*time.Second || alerts[0].State != "firing" || alerts[0].Target != "be0" {
		t.Errorf("firing: %+v", alerts[0])
	}
	if alerts[1].At != 5*time.Second || alerts[1].State != "resolved" {
		t.Errorf("resolved: %+v", alerts[1])
	}
}

func TestStraggler(t *testing.T) {
	e := NewEngine([]Rule{Straggler{}})
	mk := func(at time.Duration, slow float64) Snapshot {
		w := map[string]WindowStats{}
		for _, be := range []string{"be0", "be1", "be2"} {
			w[Key("backend_exec_ms", "backend", be)] = WindowStats{Count: 10, MeanMS: 10}
		}
		w[Key("backend_exec_ms", "backend", "be3")] = WindowStats{Count: 10, MeanMS: slow}
		return snapAt(at, nil, nil, w)
	}
	// Uniform fleet: no alert (zero variance is skipped, not divided by).
	e.Observe(mk(time.Second, 10))
	if len(e.Alerts()) != 0 {
		t.Fatalf("uniform fleet fired: %+v", e.Alerts())
	}
	// be3 at 30ms vs fleet 10ms: z = (30-15)/8.66 ≈ 1.73, ratio 2× fleet mean.
	e.Observe(mk(2*time.Second, 30))
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != "gpu-straggler" || alerts[0].Target != "be3" {
		t.Fatalf("want be3 straggler, got %+v", alerts)
	}
	// Back to uniform: resolves.
	e.Observe(mk(3*time.Second, 10))
	if got := e.Alerts(); got[len(got)-1].State != "resolved" {
		t.Errorf("want resolve, got %+v", got[len(got)-1])
	}
}

func TestStragglerIgnoresIdleGPUs(t *testing.T) {
	e := NewEngine([]Rule{Straggler{}})
	w := map[string]WindowStats{
		Key("backend_exec_ms", "backend", "be0"): {Count: 10, MeanMS: 10},
		Key("backend_exec_ms", "backend", "be1"): {Count: 10, MeanMS: 10},
		// Too few batches to be considered — also drops peers below MinPeers.
		Key("backend_exec_ms", "backend", "be2"): {Count: 1, MeanMS: 500},
	}
	e.Observe(snapAt(time.Second, nil, nil, w))
	if len(e.Alerts()) != 0 {
		t.Errorf("idle GPU must not count: %+v", e.Alerts())
	}
}

func TestBackendFlap(t *testing.T) {
	key := Key("backend_up", "backend", "be1")
	e := NewEngine([]Rule{BackendFlap{Win: 10 * time.Second, Transitions: 3}})
	ups := []float64{1, 0, 1, 0}
	var at time.Duration
	for i, v := range ups {
		at = time.Duration(i) * time.Second
		e.Observe(snapAt(at, nil, map[string]float64{key: v}, nil))
	}
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != "backend-flap" || alerts[0].Target != "be1" {
		t.Fatalf("want one flap alert, got %+v", alerts)
	}
	if alerts[0].At != at || alerts[0].Value != 3 {
		t.Errorf("flap alert detail: %+v", alerts[0])
	}
}

func TestEngineNilAndHistoryTrim(t *testing.T) {
	var nilEngine *Engine
	nilEngine.Observe(Snapshot{}) // must not panic
	if nilEngine.Alerts() != nil || nilEngine.Firing() != nil {
		t.Error("nil engine must return nil logs")
	}

	e := NewEngine(nil) // no rules: keep defaults to 10s
	for i := 0; i < 100; i++ {
		e.Observe(snapAt(time.Duration(i)*time.Second, nil, nil, nil))
	}
	if n := len(e.hist.snaps); n > 13 {
		t.Errorf("history must trim to the keep window, got %d snapshots", n)
	}
	latest := e.hist.Latest()
	if latest == nil || latest.At != 99*time.Second {
		t.Errorf("latest after trim: %+v", latest)
	}
}

func TestDefaultRules(t *testing.T) {
	rules := DefaultRules()
	if len(rules) != 4 {
		t.Fatalf("want 4 default rules, got %d", len(rules))
	}
	names := map[string]bool{}
	for _, r := range rules {
		names[r.Name()] = true
		if r.Window() <= 0 {
			t.Errorf("rule %s has no window", r.Name())
		}
	}
	for _, want := range []string{"slo-burn-rate", "queue-saturation", "gpu-straggler", "backend-flap"} {
		if !names[want] {
			t.Errorf("missing default rule %s", want)
		}
	}
}
