package cluster

import (
	"testing"
	"time"

	"nexus/internal/faults"
	"nexus/internal/frontend"
	"nexus/internal/globalsched"
	"nexus/internal/metrics"
	"nexus/internal/model"
	"nexus/internal/workload"
)

// fullFT is the full degraded-mode survival configuration: heartbeat
// failure detection, delta routing, route leases with stale serving,
// backoff retries, circuit breakers, and a rate-limited recovery publish.
func fullFT() Config {
	return Config{
		System: Nexus, Features: AllFeatures(), GPUs: 4, Seed: 7, Epoch: 5 * time.Second,
		Heartbeat: 100 * time.Millisecond, LeaseMisses: 3,
		DeltaRouting:            true,
		RouteLeaseTTL:           8 * time.Second,
		ServeStale:              true,
		RetryBudget:             3,
		RetryBackoff:            time.Millisecond,
		BreakerThreshold:        3,
		BreakerCooloff:          time.Second,
		RecoveryMaxRouteChanges: 4,
	}
}

// degradedDeployment adds one ResNet-50 session to a deployment config.
func degradedDeployment(t *testing.T, cfg Config) *Deployment {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddSession(globalsched.SessionSpec{
		ID: "s", ModelID: model.ResNet50, SLO: 100 * time.Millisecond, ExpectedRate: 1500,
	}, workload.Uniform{Rate: 1500}); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestOutageSurvivalServeStale: a 15s scheduler outage under the full-FT
// config barely dents goodput — the data plane keeps serving on its stale
// (but still valid) routing table, and recovery re-adopts every backend.
func TestOutageSurvivalServeStale(t *testing.T) {
	cfg := fullFT()
	cfg.Audit = true
	d := degradedDeployment(t, cfg)
	in := faults.New(d.Clock, d, 7)
	if err := in.Schedule(faults.Script{
		{At: chaosFaultAt, Kind: faults.SchedulerOutage, Duration: 15 * time.Second},
	}); err != nil {
		t.Fatal(err)
	}
	bad, err := d.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	log := in.Log()
	if len(log) != 1 || !log[0].Applied {
		t.Fatalf("injection log = %+v, want one applied outage", log)
	}
	if d.Sched.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", d.Sched.Recoveries())
	}
	if d.Sched.Reregistered() == 0 {
		t.Fatal("no backends re-registered after the outage")
	}
	if d.Sched.StaleEchoes() != 0 {
		t.Fatalf("stale echoes = %d, want 0 (nothing crashed)", d.Sched.StaleEchoes())
	}
	// The lease expired mid-outage (TTL 8s < 15s) but serve-stale kept
	// routing on the frozen table.
	if d.Frontend.StaleServed() == 0 {
		t.Fatal("no stale-served dispatches despite an outage longer than the lease")
	}
	if bad > 0.05 {
		t.Fatalf("bad rate %.3f under outage with serve-stale, want < 5%%", bad)
	}
	// The chaos timeline records the outage edges.
	var down, up bool
	for _, c := range d.Audit().Chaos() {
		if c.Kind == "outage" {
			down = down || c.To == "down"
			up = up || c.To == "up"
		}
	}
	if !down || !up {
		t.Fatalf("chaos timeline missing outage edges: %+v", d.Audit().Chaos())
	}
}

// TestOutageLeaseExpiryCollapses: the same outage without stale serving —
// once the lease lapses, the frontend stops trusting its table and every
// dispatch drops unroutable until the scheduler returns.
func TestOutageLeaseExpiryCollapses(t *testing.T) {
	cfg := fullFT()
	cfg.ServeStale = false
	cfg.RouteLeaseTTL = 5 * time.Second
	d := degradedDeployment(t, cfg)
	in := faults.New(d.Clock, d, 7)
	if err := in.Schedule(faults.Script{
		{At: chaosFaultAt, Kind: faults.SchedulerOutage, Duration: 15 * time.Second},
	}); err != nil {
		t.Fatal(err)
	}
	bad, err := d.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Recorder.Session("s")
	// ~10s of a 30s measured window is unroutable: attainment collapses.
	if s.Unroutable == 0 {
		t.Fatal("no unroutable drops despite lease expiry without stale serving")
	}
	if bad < 0.20 {
		t.Fatalf("bad rate %.3f, want the no-repair posture to collapse (>= 20%%)", bad)
	}
}

// TestControlPartitionFalsePositiveReconciles: severing one backend's
// control link makes the lease monitor declare it dead while it still
// serves (false positive); its replacement keeps the session routable, and
// at heal time the incarnation-checked handshake rejects the stale echo and
// reclaims the node as fresh capacity.
func TestControlPartitionFalsePositiveReconciles(t *testing.T) {
	cfg := fullFT()
	cfg.Audit = true
	d := degradedDeployment(t, cfg)
	in := faults.New(d.Clock, d, 7)
	if err := in.Schedule(faults.Script{
		{At: chaosFaultAt, Kind: faults.Partition, Link: faults.ControlLink, Backend: "be0", Duration: 6 * time.Second},
	}); err != nil {
		t.Fatal(err)
	}
	bad, err := d.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failures() != 1 {
		t.Fatalf("failures = %d, want exactly the one false positive", d.Failures())
	}
	if d.Sched.StaleEchoes() == 0 {
		t.Fatal("heal handshake never rejected the replaced node's echo")
	}
	if d.Pool.Lost("be0") {
		t.Fatal("be0 still in the lost set after the heal reclaimed it")
	}
	// The false positive costs a detection window, not the run: goodput
	// recovers once the replacement is configured.
	if _, ok := metrics.RecoveryTime(d.GoodEvts, chaosFaultAt, 3*time.Second, 0.95); !ok {
		t.Fatal("goodput never recovered from the false-positive failover")
	}
	if bad > 0.10 {
		t.Fatalf("bad rate %.3f across a control partition, want < 10%%", bad)
	}
}

// TestDataPartitionBreakersRouteAround: cutting the frontend<->backend
// link leaves the scheduler's view healthy, so nothing is replanned — the
// frontend's own retry budget and breakers must carry the load to the
// surviving replicas.
func TestDataPartitionBreakersRouteAround(t *testing.T) {
	d := degradedDeployment(t, fullFT())
	in := faults.New(d.Clock, d, 7)
	if err := in.Schedule(faults.Script{
		{At: chaosFaultAt, Kind: faults.Partition, Link: faults.DataLink, Backend: "be0", Duration: 6 * time.Second},
	}); err != nil {
		t.Fatal(err)
	}
	bad, err := d.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The scheduler heard every heartbeat: no false positive, no failover.
	if d.Failures() != 0 {
		t.Fatalf("failures = %d, want 0 (control plane saw a healthy node)", d.Failures())
	}
	if d.Frontend.Retries() == 0 {
		t.Fatal("no dispatch retries despite a cut data link")
	}
	s := d.Recorder.Session("s")
	// Retries + breakers route around the cut; only the first few
	// dispatches (before the breaker opens) may be lost.
	if s.Failed > 20 {
		t.Fatalf("failure drops = %d, want the breaker to cap the bleed", s.Failed)
	}
	if bad > 0.40 {
		t.Fatalf("bad rate %.3f across a data partition, want the surviving replicas to carry most load", bad)
	}
}

// TestSurgeShedsLowPriorityFirst: a 3x surge on the low-priority session
// is shed by its token bucket; the high-priority session, entitled to the
// reserve, stays within its nominal goodput.
func TestSurgeShedsLowPriorityFirst(t *testing.T) {
	cfg := fullFT()
	cfg.GPUs = 6
	cfg.Admission = map[string]frontend.AdmissionConfig{
		"hi": {Rate: 1000, Burst: 100, Priority: 1},
		"lo": {Rate: 1000, Burst: 100, Priority: 0},
	}
	cfg.AdmissionReserveRate = 200
	cfg.AdmissionReserveBurst = 200
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sid := range []string{"hi", "lo"} {
		if err := d.AddSession(globalsched.SessionSpec{
			ID: sid, ModelID: model.ResNet50, SLO: 100 * time.Millisecond, ExpectedRate: 800,
		}, workload.Uniform{Rate: 800}); err != nil {
			t.Fatal(err)
		}
	}
	in := faults.New(d.Clock, d, 7)
	if err := in.Schedule(faults.Script{
		{At: chaosFaultAt, Kind: faults.Surge, Session: "lo", Factor: 3, Duration: 10 * time.Second},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	lo, hi := d.Recorder.Session("lo"), d.Recorder.Session("hi")
	if lo.Admission == 0 {
		t.Fatal("surge produced no admission sheds on the low-priority session")
	}
	if hi.Admission != 0 {
		t.Fatalf("high-priority session shed %d requests, want 0", hi.Admission)
	}
	// hi's goodput is unaffected: its bad fraction stays nominal.
	hiBad := float64(hi.Bad()) / float64(hi.Sent)
	if hiBad > 0.05 {
		t.Fatalf("high-priority bad rate %.3f during the surge, want < 5%%", hiBad)
	}
	// lo's shed requests bound its queue damage: everything admitted is
	// within the bucket rate the cluster was sized for.
	loBad := float64(lo.Bad()) / float64(lo.Sent)
	if loBad <= hiBad {
		t.Fatal("surge shed nothing: lo should pay for its own overload")
	}
}

// TestDegradedChaosDeterministic pins the whole degraded stack (outage +
// partitions + surge in one script) to the repo-wide determinism contract.
func TestDegradedChaosDeterministic(t *testing.T) {
	script := faults.Script{
		{At: chaosFaultAt, Kind: faults.SchedulerOutage, Duration: 8 * time.Second},
		{At: chaosFaultAt + 2*time.Second, Kind: faults.Partition, Link: faults.DataLink, Backend: "be1", Duration: 4 * time.Second},
		{At: 20 * time.Second, Kind: faults.Partition, Link: faults.ControlLink, Backend: "be0", Duration: 3 * time.Second},
		{At: 21 * time.Second, Kind: faults.Surge, Factor: 2, Duration: 3 * time.Second},
	}
	run := func() (float64, uint64, int, int) {
		d := degradedDeployment(t, fullFT())
		in := faults.New(d.Clock, d, 7)
		if err := in.Schedule(script); err != nil {
			t.Fatal(err)
		}
		bad, err := d.Run(30 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return bad, d.Clock.Executed(), d.Failures(), d.Sched.StaleEchoes()
	}
	b1, e1, f1, s1 := run()
	b2, e2, f2, s2 := run()
	if b1 != b2 || e1 != e2 || f1 != f2 || s1 != s2 {
		t.Fatalf("degraded chaos diverged: (%.6f,%d,%d,%d) vs (%.6f,%d,%d,%d)",
			b1, e1, f1, s1, b2, e2, f2, s2)
	}
}
