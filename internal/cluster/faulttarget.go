package cluster

import (
	"sort"
	"time"
)

// This file is the deployment's fault-injection surface: the methods the
// faults.Injector drives to crash, restart, and degrade a running cluster.
// All of them execute on the simulation clock's thread (fault events are
// scheduled clock callbacks), so no synchronization is needed.

// BackendIDs returns the IDs of the backends currently in use, sorted, so
// seeded random target selection is deterministic.
func (d *Deployment) BackendIDs() []string {
	ids := make([]string, 0, len(d.Pool.backends))
	for id := range d.Pool.backends {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CrashBackend crashes a backend: queued and in-flight requests are lost
// as failures and the node serves nothing until restarted. Returns false
// when the ID is not an in-use, live backend.
func (d *Deployment) CrashBackend(id string) bool {
	be := d.Pool.Get(id)
	if be == nil || !be.Alive() {
		return false
	}
	be.Fail()
	return true
}

// RestartBackend revives a crashed backend (transient-failure model): it
// rejoins empty, either in place (crash not yet detected) or via the
// pool's free list (crash detected and parked). Returns false when the ID
// is unknown or the backend is not dead.
func (d *Deployment) RestartBackend(id string) bool {
	return d.Pool.Restart(id)
}

// SlowBackend makes a backend's GPU a straggler: work submitted from now
// on takes factor times as long (factor ≤ 1 restores nominal speed).
// Returns false when the ID is not an in-use backend.
func (d *Deployment) SlowBackend(id string, factor float64) bool {
	be := d.Pool.Get(id)
	if be == nil {
		return false
	}
	be.Device().SetSlowdown(factor)
	return true
}

// SetExtraNetDelay injects a network-delay spike on every frontend
// dispatch hop; d ≤ 0 clears it.
func (d *Deployment) SetExtraNetDelay(delay time.Duration) {
	for _, fe := range d.Frontends {
		fe.SetExtraDelay(delay)
	}
}

// Failures returns how many backends the control plane has declared dead.
func (d *Deployment) Failures() int { return d.Sched.Failures() }
