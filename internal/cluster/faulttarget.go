package cluster

import (
	"fmt"
	"sort"
	"time"

	"nexus/internal/faults"
	"nexus/internal/trace"
)

// This file is the deployment's fault-injection surface: the methods the
// faults.Injector drives to crash, restart, and degrade a running cluster.
// All of them execute on the simulation clock's thread (fault events are
// scheduled clock callbacks), so no synchronization is needed.

// BackendIDs returns the IDs of the backends currently in use, sorted, so
// seeded random target selection is deterministic.
func (d *Deployment) BackendIDs() []string {
	ids := make([]string, 0, len(d.Pool.backends))
	for id := range d.Pool.backends {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CrashBackend crashes a backend: queued and in-flight requests are lost
// as failures and the node serves nothing until restarted. Returns false
// when the ID is not an in-use, live backend.
func (d *Deployment) CrashBackend(id string) bool {
	be := d.Pool.Get(id)
	if be == nil || !be.Alive() {
		return false
	}
	be.Fail()
	d.chaos(trace.ChaosRecord{Kind: "outage", Backend: id, To: "down"})
	return true
}

// RestartBackend revives a crashed backend (transient-failure model): it
// rejoins empty, either in place (crash not yet detected) or via the
// pool's free list (crash detected and parked). Returns false when the ID
// is unknown or the backend is not dead.
func (d *Deployment) RestartBackend(id string) bool {
	if !d.Pool.Restart(id) {
		return false
	}
	d.chaos(trace.ChaosRecord{Kind: "outage", Backend: id, To: "up"})
	return true
}

// SlowBackend makes a backend's GPU a straggler: work submitted from now
// on takes factor times as long (factor ≤ 1 restores nominal speed).
// Returns false when the ID is not an in-use backend.
func (d *Deployment) SlowBackend(id string, factor float64) bool {
	be := d.Pool.Get(id)
	if be == nil {
		return false
	}
	be.Device().SetSlowdown(factor)
	d.chaos(trace.ChaosRecord{Kind: "straggler", Backend: id,
		To: fmt.Sprintf("x%g", factor)})
	return true
}

// SetExtraNetDelay injects a network-delay spike on every frontend
// dispatch hop; d ≤ 0 clears it.
func (d *Deployment) SetExtraNetDelay(delay time.Duration) {
	for _, fe := range d.Frontends {
		fe.SetExtraDelay(delay)
	}
}

// Failures returns how many backends the control plane has declared dead.
func (d *Deployment) Failures() int { return d.Sched.Failures() }

// ---------------------------------------------------------------------
// Degraded-mode fault surface (faults.DegradedTarget).

// chaos records one degraded-mode event on the audit plane's chaos
// timeline (no-op when auditing is off).
func (d *Deployment) chaos(r trace.ChaosRecord) {
	if d.audit == nil {
		return
	}
	r.AtMS = trace.MS(d.Clock.Now())
	d.audit.RecordChaos(r)
}

// SetSchedulerOutage takes the global scheduler down (true) or brings it
// back up (false, running re-registration recovery). Returns false when
// the scheduler was already in that state.
func (d *Deployment) SetSchedulerOutage(down bool) bool {
	changed := d.Sched.SetOutage(down)
	if changed {
		to := "up"
		if down {
			to = "down"
		}
		d.chaos(trace.ChaosRecord{Kind: "outage", To: to})
	}
	return changed
}

// CutLink severs (cut) or heals one link pair to a backend. ControlLink
// stops the backend's heartbeats from reaching the scheduler while the
// node keeps serving — and quarantines it in the pool, since the cluster
// manager cannot reach an unreachable node either. Healing runs the
// incarnation-checked re-registration handshake: a node the scheduler
// falsely declared dead and replaced is rejected as a stale echo and
// reclaimed as fresh capacity. DataLink makes frontend dispatches to the
// backend fail while its heartbeats still flow.
func (d *Deployment) CutLink(link faults.Link, beID string, cut bool) bool {
	switch link {
	case faults.ControlLink:
		changed := d.Sched.CutControl(beID, cut)
		if !changed {
			return false
		}
		d.Pool.Isolate(beID, cut)
		d.chaos(trace.ChaosRecord{Kind: "partition", Backend: beID,
			From: "control", To: linkEdge(cut)})
		if !cut {
			d.healControl(beID)
		}
		return true
	case faults.DataLink:
		changed := false
		for _, fe := range d.Frontends {
			changed = fe.SetLinkDown(beID, cut) || changed
		}
		if changed {
			d.chaos(trace.ChaosRecord{Kind: "partition", Backend: beID,
				From: "data", To: linkEdge(cut)})
		}
		return changed
	}
	return false
}

// linkEdge names a partition edge for the chaos timeline.
func linkEdge(cut bool) string {
	if cut {
		return "cut"
	}
	return "healed"
}

// healControl reconciles a backend whose control link just healed. A
// surviving adopted instance re-registers (lease refreshed); a stale echo
// — the scheduler declared it dead and replaced it, or it restarted
// behind the partition — is rejected, its split-brain state wiped, and
// the node reclaimed as fresh pool capacity.
func (d *Deployment) healControl(beID string) {
	be := d.Pool.Get(beID)
	if be != nil && be.Alive() {
		if d.Sched.Reregister(beID, be.Incarnation()) {
			return
		}
		// Still assigned in the data plane's map but rejected: restarted
		// behind the partition. Wipe its stale units; the next epoch will
		// reconfigure whatever the plan wants on it.
		_ = be.Configure(nil)
		return
	}
	// Not in the in-use map: the lease monitor declared it dead during the
	// partition and released it into the lost set. The echo is stale by
	// construction; reclaim the node as fresh capacity.
	if d.Pool.Lost(beID) {
		d.Sched.Reregister(beID, ^uint64(0)) // counted as a stale echo
		d.Pool.Reclaim(beID)
	}
}

// SetRateMultiplier scales the offered arrival rate of one session's
// generator (session "" scales every generator); factor 1 restores the
// nominal process. Returns false when no running generator matches —
// before Run starts, or for an unknown session.
func (d *Deployment) SetRateMultiplier(session string, factor float64) bool {
	applied := false
	for _, g := range d.gens {
		if session != "" && g.Session != session {
			continue
		}
		g.SetRateMultiplier(factor)
		applied = true
	}
	if applied {
		d.chaos(trace.ChaosRecord{Kind: "surge", Session: session,
			To: fmt.Sprintf("x%g", factor)})
	}
	return applied
}
