package cluster

import (
	"sync"
	"testing"
	"time"

	"nexus/internal/globalsched"
	"nexus/internal/model"
	"nexus/internal/workload"
)

// TestConcurrentDeploymentsAreIsolated is the engine's core concurrency
// contract under -race: deployments share no mutable state, so many of
// them can simulate on distinct goroutines at once, and a deployment's
// result depends only on its own config and seed — never on what runs
// beside it.
func TestConcurrentDeploymentsAreIsolated(t *testing.T) {
	const goroutines = 8
	run := func(seed int64) (float64, uint64) {
		d, err := New(Config{System: Nexus, Features: AllFeatures(), GPUs: 2, Seed: seed, Epoch: 5 * time.Second})
		if err != nil {
			t.Error(err)
			return 0, 0
		}
		if err := d.AddSession(globalsched.SessionSpec{
			ID: "s", ModelID: model.InceptionV3, SLO: 100 * time.Millisecond, ExpectedRate: 400,
		}, workload.Poisson{Rate: 400}); err != nil {
			t.Error(err)
			return 0, 0
		}
		bad, err := d.Run(8 * time.Second)
		if err != nil {
			t.Error(err)
			return 0, 0
		}
		return bad, d.Clock.Executed()
	}

	// Reference results, computed alone.
	wantBad := make([]float64, goroutines)
	wantEvents := make([]uint64, goroutines)
	for i := range wantBad {
		wantBad[i], wantEvents[i] = run(int64(i + 1))
	}

	// The same seeds again, all racing each other.
	gotBad := make([]float64, goroutines)
	gotEvents := make([]uint64, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gotBad[i], gotEvents[i] = run(int64(i + 1))
		}(i)
	}
	wg.Wait()

	for i := range wantBad {
		if gotBad[i] != wantBad[i] || gotEvents[i] != wantEvents[i] {
			t.Errorf("seed %d: concurrent run (bad=%v events=%d) differs from solo run (bad=%v events=%d)",
				i+1, gotBad[i], gotEvents[i], wantBad[i], wantEvents[i])
		}
	}
}
