package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"nexus/internal/faults"
	"nexus/internal/forensics"
	"nexus/internal/globalsched"
	"nexus/internal/model"
	"nexus/internal/runner"
	"nexus/internal/telemetry"
	"nexus/internal/trace"
	"nexus/internal/workload"
)

// forensicsChaosConfig is the TestChaosBurnRateAlert setup with the flight
// recorder switched on: a crash mid-run raises a burn-rate alert, and the
// alert must now also produce a correlated dump bundle.
func forensicsChaosConfig() Config {
	return Config{
		System: Nexus, Features: AllFeatures(), GPUs: 4, Seed: 7, Epoch: 5 * time.Second,
		Heartbeat: 100 * time.Millisecond, LeaseMisses: 3, RetryFailures: true,
		Telemetry: &telemetry.Config{
			Interval: 250 * time.Millisecond,
			Rules: []telemetry.Rule{
				telemetry.BurnRate{Short: 500 * time.Millisecond, Long: 2 * time.Second, Threshold: 2},
				telemetry.BackendFlap{},
			},
		},
		Forensics: &forensics.Config{},
	}
}

// TestForensicsChaosDump is the flight-recorder acceptance criterion: the
// burn-rate alert raised by a mid-run crash must trigger exactly one dump
// bundle whose capture window contains the injected outage edge, the spans
// of the requests that burned the SLO, and the metric samples around the
// incident — the post-mortem is assembled at detection time, not replayed.
func TestForensicsChaosDump(t *testing.T) {
	d := chaosDeployment(t, forensicsChaosConfig())
	in := faults.New(d.Clock, d, 7)
	if err := in.Schedule(faults.Script{{At: chaosFaultAt, Kind: faults.Crash, Backend: "be0"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	fr := d.Flight()
	if fr == nil {
		t.Fatal("flight recorder not enabled")
	}
	dumps := fr.Dumps()
	if len(dumps) == 0 {
		t.Fatalf("no dump captured; alerts: %+v", d.Telemetry().Alerts())
	}
	// The first dump is the paging alert itself.
	dump := dumps[0]
	if dump.Rule != "slo-burn-rate" {
		t.Fatalf("first dump triggered by %q, want slo-burn-rate", dump.Rule)
	}
	if at := time.Duration(dump.AtMS * float64(time.Millisecond)); at < chaosFaultAt {
		t.Fatalf("dump at %v predates the fault at %v", at, chaosFaultAt)
	}
	var sawOutage bool
	for _, c := range dump.Chaos {
		if c.Kind == "outage" && c.Backend == "be0" && c.To == "down" {
			sawOutage = true
		}
	}
	if !sawOutage {
		t.Fatalf("dump does not contain the injected be0 outage edge; chaos: %+v", dump.Chaos)
	}
	if len(dump.Spans) == 0 {
		t.Fatal("dump captured no trace spans")
	}
	if len(dump.Samples) == 0 {
		t.Fatal("dump captured no metric samples")
	}
	// Every captured record sits inside the declared window.
	from := dump.AtMS - dump.WindowMS
	for _, s := range dump.Samples {
		if s.AtMS < from || s.AtMS > dump.AtMS {
			t.Fatalf("sample at %vms outside dump window [%v, %v]", s.AtMS, from, dump.AtMS)
		}
	}
	for _, e := range dump.Spans {
		atMS := float64(e.At) / float64(time.Millisecond)
		if atMS < from || atMS > dump.AtMS {
			t.Fatalf("span at %vms outside dump window [%v, %v]", atMS, from, dump.AtMS)
		}
	}
}

// TestForensicsDeterminism asserts the whole forensics surface — dump
// bundles, exemplar-bearing snapshots, and plan-diff audit records — is
// byte-identical across runs and across runner parallelism. CI runs this
// under -race.
func TestForensicsDeterminism(t *testing.T) {
	runForensics := func(workers int) []byte {
		prev := runner.SetDefaultWorkers(workers)
		defer runner.SetDefaultWorkers(prev)
		d := chaosDeployment(t, forensicsChaosConfig())
		in := faults.New(d.Clock, d, 7)
		if err := in.Schedule(faults.Script{{At: chaosFaultAt, Kind: faults.Crash, Backend: "be0"}}); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		if len(d.Flight().Dumps()) == 0 {
			t.Fatal("no dump captured; determinism check is vacuous")
		}
		var buf bytes.Buffer
		if err := forensics.WriteDumpsJSONL(&buf, d.Flight().Dumps()); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WriteSnapshotsJSONL(&buf, d.Telemetry().Snapshots()); err != nil {
			t.Fatal(err)
		}
		if err := json.NewEncoder(&buf).Encode(d.Audit().PlanDiffs()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := runForensics(1)
	if again := runForensics(1); !bytes.Equal(serial, again) {
		t.Fatal("forensics output differs across identical serial runs")
	}
	if par := runForensics(8); !bytes.Equal(serial, par) {
		t.Fatal("forensics output differs between workers=1 and workers=8")
	}
}

// TestBlameReconcilesWithTrace drives an overloaded deployment and checks
// the critical-path decomposition against the trace's own ledger: every
// attributed request's stages sum exactly to its traced latency, and the
// session rollup preserves the invariant. The blame report is arithmetic
// on evidence, not an estimate.
func TestBlameReconcilesWithTrace(t *testing.T) {
	d, err := New(Config{
		System: Nexus, Features: AllFeatures(), GPUs: 1, Seed: 7,
		Epoch: 10 * time.Second, Warmup: -1, TraceCapacity: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddSession(globalsched.SessionSpec{
		ID: "hot", ModelID: model.GoogLeNetCar, SLO: 60 * time.Millisecond, ExpectedRate: 80,
	}, workload.Uniform{Rate: 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	tr := d.Tracer()
	events := tr.Events()
	if tr.Total() != uint64(len(events)) {
		t.Fatalf("ring evicted events (%d recorded, %d retained); enlarge TraceCapacity", tr.Total(), len(events))
	}
	blames := trace.AttributeBlame(events)
	if len(blames) == 0 {
		t.Fatal("no requests attributed; test is vacuous")
	}
	latency := tr.RequestLatency()
	for _, b := range blames {
		if sum := b.Admission + b.Dispatch + b.Stall + b.Queue + b.GPU; sum != b.Total {
			t.Fatalf("req %d: stages sum to %v, traced total %v", b.ReqID, sum, b.Total)
		}
		if b.Service+b.Interference != b.GPU {
			t.Fatalf("req %d: service %v + interference %v != gpu %v", b.ReqID, b.Service, b.Interference, b.GPU)
		}
		if want, ok := latency[b.ReqID]; ok && b.Total != want {
			t.Fatalf("req %d: blame total %v, tracer latency %v", b.ReqID, b.Total, want)
		}
	}
	sbs := trace.SessionBlames(blames)
	if len(sbs) != 1 || sbs[0].Session != "hot" {
		t.Fatalf("session blames: %+v, want one entry for hot", sbs)
	}
	sb := sbs[0]
	if sb.TailCount == 0 || sb.P99 <= 0 {
		t.Fatalf("degenerate tail rollup: %+v", sb)
	}
	if sum := sb.Tail.Admission + sb.Tail.Dispatch + sb.Tail.Stall + sb.Tail.Queue + sb.Tail.GPU; sum != sb.Tail.Total {
		t.Fatalf("tail stages sum to %v, total %v", sum, sb.Tail.Total)
	}
	if _, ok := latency[sb.Exemplar]; !ok {
		t.Fatalf("exemplar req %d is not a completed traced request", sb.Exemplar)
	}
}
