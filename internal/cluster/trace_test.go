package cluster

import (
	"bytes"
	"testing"
	"time"

	"nexus/internal/globalsched"
	"nexus/internal/model"
	"nexus/internal/runner"
	"nexus/internal/trace"
	"nexus/internal/workload"
)

func TestTracingCapturesLifecycle(t *testing.T) {
	d, err := New(Config{
		System: Nexus, Features: AllFeatures(), GPUs: 2, Seed: 1,
		Epoch: 10 * time.Second, TraceCapacity: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddSession(globalsched.SessionSpec{
		ID: "s", ModelID: model.GoogLeNetCar, SLO: 100 * time.Millisecond, ExpectedRate: 50,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	tr := d.Tracer()
	if tr == nil {
		t.Fatal("tracer not enabled")
	}
	sum := tr.Summary()
	if sum[trace.Arrive] == 0 || sum[trace.Execute] == 0 || sum[trace.Complete] == 0 {
		t.Fatalf("lifecycle events missing: %v", sum)
	}
	// Every completed request retained in the window has a positive latency.
	for id, lat := range tr.RequestLatency() {
		if lat <= 0 {
			t.Fatalf("request %d latency %v", id, lat)
		}
	}
}

// TestTraceMetricsAgreement drives an overloaded deployment and checks
// that the trace's per-cause drop counts and completion count reconcile
// exactly with the metrics recorder — the trace is evidence, not an
// estimate. Warmup is disabled so every request is on both ledgers, and
// the ring is sized so nothing is evicted.
func TestTraceMetricsAgreement(t *testing.T) {
	d, err := New(Config{
		System: Nexus, Features: AllFeatures(), GPUs: 1, Seed: 7,
		Epoch: 10 * time.Second, Warmup: -1, TraceCapacity: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Declared rate is a fraction of what the generator offers: the plan
	// under-provisions, forcing deadline/overload drops.
	if err := d.AddSession(globalsched.SessionSpec{
		ID: "hot", ModelID: model.GoogLeNetCar, SLO: 60 * time.Millisecond, ExpectedRate: 80,
	}, workload.Uniform{Rate: 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	tr := d.Tracer()
	events := tr.Events()
	if tr.Total() != uint64(len(events)) {
		t.Fatalf("ring evicted events (%d recorded, %d retained); enlarge TraceCapacity", tr.Total(), len(events))
	}

	var completes uint64
	byCause := make(map[string]uint64)
	for _, e := range events {
		switch e.Kind {
		case trace.Complete:
			completes++
		case trace.Drop:
			byCause[e.Cause]++
		}
	}
	s := d.Recorder.Session("hot")
	if s.Lost() == 0 {
		t.Fatal("overload run produced no drops; test is vacuous")
	}
	want := map[string]uint64{
		"deadline":   s.Dropped,
		"unroutable": s.Unroutable,
		"reconfig":   s.Reconfig,
		"overload":   s.Overload,
		"failure":    s.Failed,
	}
	for cause, n := range want {
		if byCause[cause] != n {
			t.Errorf("cause %q: trace has %d drops, metrics %d", cause, byCause[cause], n)
		}
	}
	for cause := range byCause {
		if _, ok := want[cause]; !ok {
			t.Errorf("trace drop cause %q unknown to the metrics taxonomy", cause)
		}
	}
	if completes != s.Completed {
		t.Errorf("trace has %d completes, metrics %d", completes, s.Completed)
	}
	// With warmup off, every sent request produced exactly one Arrive.
	if n := tr.Summary()[trace.Arrive]; n != int(s.Sent) {
		t.Errorf("trace has %d arrives, metrics sent %d", n, s.Sent)
	}
}

// TestTraceDeterminism asserts the serialized trace is byte-identical
// across runs and across runner parallelism settings: tracing must
// observe the simulation, never perturb it. CI runs this under -race.
func TestTraceDeterminism(t *testing.T) {
	runTraced := func(workers int) []byte {
		prev := runner.SetDefaultWorkers(workers)
		defer runner.SetDefaultWorkers(prev)
		d, err := New(Config{
			System: Nexus, Features: AllFeatures(), GPUs: 2, Seed: 42,
			Epoch: 10 * time.Second, TraceCapacity: 1 << 16, Audit: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.AddSession(globalsched.SessionSpec{
			ID: "s", ModelID: model.GoogLeNetCar, SLO: 100 * time.Millisecond, ExpectedRate: 120,
		}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(8 * time.Second); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.Tracer().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := d.Audit().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := runTraced(1)
	if again := runTraced(1); !bytes.Equal(serial, again) {
		t.Fatal("trace differs across identical serial runs")
	}
	if par := runTraced(8); !bytes.Equal(serial, par) {
		t.Fatal("trace differs between workers=1 and workers=8")
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	d, err := New(Config{System: Nexus, Features: AllFeatures(), GPUs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Tracer() != nil {
		t.Fatal("tracer should be nil unless enabled")
	}
}
