package cluster

import (
	"testing"
	"time"

	"nexus/internal/globalsched"
	"nexus/internal/model"
	"nexus/internal/trace"
)

func TestTracingCapturesLifecycle(t *testing.T) {
	d, err := New(Config{
		System: Nexus, Features: AllFeatures(), GPUs: 2, Seed: 1,
		Epoch: 10 * time.Second, TraceCapacity: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddSession(globalsched.SessionSpec{
		ID: "s", ModelID: model.GoogLeNetCar, SLO: 100 * time.Millisecond, ExpectedRate: 50,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	tr := d.Tracer()
	if tr == nil {
		t.Fatal("tracer not enabled")
	}
	sum := tr.Summary()
	if sum[trace.Arrive] == 0 || sum[trace.Execute] == 0 || sum[trace.Complete] == 0 {
		t.Fatalf("lifecycle events missing: %v", sum)
	}
	// Every completed request retained in the window has a positive latency.
	for id, lat := range tr.RequestLatency() {
		if lat <= 0 {
			t.Fatalf("request %d latency %v", id, lat)
		}
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	d, err := New(Config{System: Nexus, Features: AllFeatures(), GPUs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Tracer() != nil {
		t.Fatal("tracer should be nil unless enabled")
	}
}
