package cluster

import (
	"fmt"
	"testing"
	"time"

	"nexus/internal/globalsched"
	"nexus/internal/metrics"
	"nexus/internal/model"
	"nexus/internal/queryopt"
	"nexus/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{GPUs: 0}); err == nil {
		t.Fatal("zero GPUs accepted")
	}
}

func TestNexusServesSimpleSession(t *testing.T) {
	d, err := New(Config{System: Nexus, Features: AllFeatures(), GPUs: 4, Seed: 1, Epoch: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddSession(globalsched.SessionSpec{
		ID: "s", ModelID: model.ResNet50, SLO: 100 * time.Millisecond, ExpectedRate: 200,
	}, nil); err != nil {
		t.Fatal(err)
	}
	bad, err := d.Run(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0.01 {
		t.Fatalf("bad rate %.4f, want <= 1%%", bad)
	}
	st := d.Recorder.Session("s")
	if st.Sent < 3500 {
		t.Fatalf("sent %d requests, want ~4000", st.Sent)
	}
	// p99 latency within SLO.
	if p99 := st.Latency.Quantile(0.99); p99 > 100*time.Millisecond {
		t.Fatalf("p99 latency %v exceeds SLO", p99)
	}
}

func TestWarmupExcluded(t *testing.T) {
	d, err := New(Config{System: Nexus, Features: AllFeatures(), GPUs: 2, Seed: 1, Warmup: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddSession(globalsched.SessionSpec{
		ID: "s", ModelID: model.LeNet5, SLO: 50 * time.Millisecond, ExpectedRate: 100,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := d.Recorder.Session("s")
	// Only ~10s of traffic should be counted, not 15s.
	if st.Sent > 1150 {
		t.Fatalf("sent %d, warmup traffic leaked into stats", st.Sent)
	}
	if st.Sent < 850 {
		t.Fatalf("sent %d, measured window too small", st.Sent)
	}
}

func TestNexusBeatsBaselines(t *testing.T) {
	// Multiple model sessions driven well past what the baselines can
	// serve on 2 GPUs with tight SLOs: Nexus's coordinated runtime should
	// deliver more goodput than Clipper/TF.
	run := func(sys System) float64 {
		d, err := New(Config{System: sys, Features: AllFeatures(), GPUs: 2, Seed: 7,
			Epoch: 10 * time.Second, FixedCluster: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range []string{model.ResNet50, model.InceptionV3, model.GoogLeNetCar} {
			if err := d.AddSession(globalsched.SessionSpec{
				ID:      fmt.Sprintf("s%d", i),
				ModelID: m, SLO: 50 * time.Millisecond, ExpectedRate: 700,
			}, workload.Poisson{Rate: 700}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := d.Run(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		return d.Goodput(20 * time.Second)
	}
	nexus := run(Nexus)
	clipper := run(Clipper)
	tf := run(TFServing)
	if nexus <= clipper || nexus <= tf {
		t.Fatalf("goodput: nexus=%.0f clipper=%.0f tf=%.0f; nexus should win", nexus, clipper, tf)
	}
}

func TestQueryEndToEnd(t *testing.T) {
	d, err := New(Config{System: Nexus, Features: AllFeatures(), GPUs: 8, Seed: 3, Epoch: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	q := &queryopt.Query{
		Name: "traffic", SLO: 400 * time.Millisecond,
		Root: &queryopt.Node{Name: "det", ModelID: model.SSD, Edges: []queryopt.Edge{
			{Gamma: 2, Child: &queryopt.Node{Name: "car", ModelID: model.GoogLeNetCar}},
			{Gamma: 0.5, Child: &queryopt.Node{Name: "face", ModelID: model.VGGFace}},
		}},
	}
	if err := d.AddQuery(globalsched.QuerySpec{Query: q, ExpectedRate: 40}, nil); err != nil {
		t.Fatal(err)
	}
	bad, err := d.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	qs := d.QueryStats("traffic")
	if qs.Sent < 1000 {
		t.Fatalf("only %d queries sent", qs.Sent)
	}
	if bad > 0.02 {
		t.Fatalf("query bad rate %.4f", bad)
	}
	// Fan-out: car stage should see ~2x the root invocations, face ~0.5x.
	det := d.Recorder.Session("traffic/det").Sent
	car := d.Recorder.Session("traffic/car").Sent
	face := d.Recorder.Session("traffic/face").Sent
	if det == 0 {
		t.Fatal("no root stage invocations recorded")
	}
	carRatio := float64(car) / float64(det)
	faceRatio := float64(face) / float64(det)
	if carRatio < 1.8 || carRatio > 2.2 {
		t.Fatalf("car fan-out ratio %.2f, want ~2", carRatio)
	}
	if faceRatio < 0.4 || faceRatio > 0.6 {
		t.Fatalf("face fan-out ratio %.2f, want ~0.5", faceRatio)
	}
}

func TestElasticScalingOnBurst(t *testing.T) {
	// Figure 13 in miniature: a burst raises GPU usage; subsiding load
	// releases GPUs.
	d, err := New(Config{System: Nexus, Features: AllFeatures(), GPUs: 32, Seed: 5, Epoch: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// A ~3x burst, the magnitude of the paper's Figure 13 swings.
	sched := workload.Burst(800, 2400, 30*time.Second, 60*time.Second)
	if err := d.AddSession(globalsched.SessionSpec{
		ID: "s", ModelID: model.InceptionV3, SLO: 100 * time.Millisecond, ExpectedRate: 800,
	}, workload.Modulated{RateAt: sched.RateAt}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Average GPUs during the burst window must exceed the before/after
	// windows.
	avg := func(from, to int) float64 {
		var sum float64
		for i := from; i < to; i++ {
			sum += d.GPUsUsed.Mean(i)
		}
		return sum / float64(to-from)
	}
	before := avg(15, 30)
	during := avg(40, 60)
	after := avg(85, 100)
	if during <= before {
		t.Fatalf("no scale-up: before=%.1f during=%.1f", before, during)
	}
	if after >= during {
		t.Fatalf("no scale-down: during=%.1f after=%.1f", during, after)
	}
	// Overall bad rate should still be small (most intervals fine; the
	// epoch lag causes brief spikes, as in the paper).
	if bad := d.BadRate(); bad > 0.08 {
		t.Fatalf("bad rate %.4f too high across burst", bad)
	}
}

func TestMaxGoodputSearch(t *testing.T) {
	// Smoke-test the §7 methodology: binary search the max rate served
	// with 99% goodness.
	eval := func(rate float64) float64 {
		d, err := New(Config{System: Nexus, Features: AllFeatures(), GPUs: 1, Seed: 2, Epoch: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.AddSession(globalsched.SessionSpec{
			ID: "s", ModelID: model.InceptionV3, SLO: 100 * time.Millisecond, ExpectedRate: rate,
		}, nil); err != nil {
			t.Fatal(err)
		}
		bad, err := d.Run(10 * time.Second)
		if err != nil {
			// Pool exhausted: the offered rate exceeds the cluster.
			return 1
		}
		return bad
	}
	got := metrics.MaxGoodput(10, 4000, metrics.GoodputTarget, 0.05, eval)
	// One 1080Ti running InceptionV3 at batch ~45: ~600-1000 r/s.
	if got < 300 || got > 2000 {
		t.Fatalf("max goodput %.0f r/s outside plausible range", got)
	}
}

func TestGoodputAndBadRateMath(t *testing.T) {
	d, err := New(Config{System: Nexus, Features: AllFeatures(), GPUs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := d.Recorder.Session("x")
	s.Sent, s.Completed, s.Missed, s.Dropped = 100, 90, 5, 10
	qs := d.QueryStats("q")
	qs.Sent, qs.Completed, qs.Missed = 50, 50, 10
	wantBad := float64(10+5+10) / 150
	if got := d.BadRate(); got != wantBad {
		t.Fatalf("BadRate = %v, want %v", got, wantBad)
	}
	wantGood := float64(85+40) / 10
	if got := d.Goodput(10 * time.Second); got != wantGood {
		t.Fatalf("Goodput = %v, want %v", got, wantGood)
	}
}
