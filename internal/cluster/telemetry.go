package cluster

import (
	"sort"
	"strconv"
	"time"

	"nexus/internal/telemetry"
)

// telemetrySampler is the pull side of the telemetry plane: every sampling
// tick it reads counters the simulation already maintains — the metrics
// recorder, frontend dispatch state, backend queues and devices, the
// scheduler — into the registry, then hands the collector a snapshot. No
// hot-path instrumentation is needed beyond the batch-grain execute-
// latency hook, so an enabled plane still never perturbs event order.
type telemetrySampler struct {
	d *Deployment

	// prevBusy/prevBatches/prevItems are the per-backend cumulative values
	// at the previous sample, for windowed duty/batch-size gauges.
	prevBusy    map[string]time.Duration
	prevBatches map[string]uint64
	prevItems   map[string]uint64
	// seen tracks every backend ID ever sampled, so a released or parked
	// backend keeps exporting (zeroed) gauges instead of freezing at its
	// last value — stable key sets also keep flap detection bridged.
	seen map[string]bool
	// execWins caches per-backend execute-latency windows so the OnBatch
	// hook does not rebuild canonical keys per batch.
	execWins map[string]*telemetry.Window
	// prevSliceBusy/sliceSeen mirror prevBusy/seen for compute slices:
	// windowed per-slice occupancy, and stable key sets after a slice is
	// reconfigured away. Only populated under spatial placement.
	prevSliceBusy map[sliceKey]time.Duration
	sliceSeen     map[sliceKey]bool
	// lastAt is the previous sample's time, for irregular final samples.
	lastAt time.Duration
}

// sliceKey identifies one spatial unit's slice gauge set.
type sliceKey struct{ backend, unit string }

func newTelemetrySampler(d *Deployment) *telemetrySampler {
	return &telemetrySampler{
		d:             d,
		prevBusy:      make(map[string]time.Duration),
		prevBatches:   make(map[string]uint64),
		prevItems:     make(map[string]uint64),
		seen:          make(map[string]bool),
		execWins:      make(map[string]*telemetry.Window),
		prevSliceBusy: make(map[sliceKey]time.Duration),
		sliceSeen:     make(map[sliceKey]bool),
	}
}

// execWindow returns the cached execute-latency window for a backend.
func (ts *telemetrySampler) execWindow(beID string) *telemetry.Window {
	w, ok := ts.execWins[beID]
	if !ok {
		w = ts.d.telem.Registry().Window("backend_exec_ms", "backend", beID)
		ts.execWins[beID] = w
	}
	return w
}

// sample pulls every plane's state into the registry and ticks the
// collector. Runs on the simulation goroutine.
func (ts *telemetrySampler) sample() {
	d := ts.d
	now := d.Clock.Now()
	elapsed := now - ts.lastAt
	reg := d.telem.Registry()

	// Per-session outcome counters from the metrics recorder.
	for _, sid := range d.Recorder.SessionIDs() {
		s := d.Recorder.Session(sid)
		reg.Counter("session_sent_total", "session", sid).Set(float64(s.Sent))
		reg.Counter("session_good_total", "session", sid).Set(float64(s.Good()))
		reg.Counter("session_bad_total", "session", sid).Set(float64(s.Bad()))
		reg.Counter("session_drops_total", "session", sid, "cause", "deadline").Set(float64(s.Dropped))
		reg.Counter("session_drops_total", "session", sid, "cause", "unroutable").Set(float64(s.Unroutable))
		reg.Counter("session_drops_total", "session", sid, "cause", "reconfig").Set(float64(s.Reconfig))
		reg.Counter("session_drops_total", "session", sid, "cause", "overload").Set(float64(s.Overload))
		reg.Counter("session_drops_total", "session", sid, "cause", "failure").Set(float64(s.Failed))
		reg.Counter("session_late_total", "session", sid).Set(float64(s.Missed))
	}

	// Per-frontend dispatch state.
	for i, fe := range d.Frontends {
		l := strconv.Itoa(i)
		reg.Counter("frontend_dispatch_total", "frontend", l).Set(float64(fe.Dispatches()))
		reg.Counter("frontend_retries_total", "frontend", l).Set(float64(fe.Retries()))
		reg.Gauge("frontend_table_version", "frontend", l).Set(float64(fe.TableVersion()))
	}

	// Degraded-mode survival instruments, only when the layer is on: a
	// deployment without it keeps its exact pre-existing metric key set.
	if d.cfg.degraded() {
		for i, fe := range d.Frontends {
			l := strconv.Itoa(i)
			reg.Gauge("frontend_route_staleness_ms", "frontend", l).Set(telemetry.MS(fe.RouteStaleness()))
			reg.Counter("frontend_stale_served_total", "frontend", l).Set(float64(fe.StaleServed()))
			reg.Gauge("frontend_breakers_open", "frontend", l).Set(float64(fe.OpenBreakers()))
			reg.Counter("frontend_breaker_transitions_total", "frontend", l).Set(float64(fe.BreakerTransitions()))
			reg.Counter("frontend_admission_shed_total", "frontend", l).Set(float64(fe.AdmissionSheds()))
		}
		for _, sid := range d.Recorder.SessionIDs() {
			s := d.Recorder.Session(sid)
			reg.Counter("session_drops_total", "session", sid, "cause", "admission").Set(float64(s.Admission))
		}
		down := 0.0
		if d.Sched.Down() {
			down = 1
		}
		reg.Gauge("sched_down").Set(down)
		reg.Counter("sched_recoveries_total").Set(float64(d.Sched.Recoveries()))
		reg.Counter("sched_stale_echoes_total").Set(float64(d.Sched.StaleEchoes()))
		reg.Counter("sched_reregistered_total").Set(float64(d.Sched.Reregistered()))
		reg.Counter("sched_capped_pushes_total").Set(float64(d.Sched.CappedPushes()))
	}

	// Per-backend data-plane state. Live backends export real values;
	// backends that left the pool export zeros, keeping key sets stable.
	live := make(map[string]bool)
	sliceLive := make(map[sliceKey]bool)
	for _, beID := range d.BackendIDs() {
		live[beID] = true
		ts.seen[beID] = true
		be := d.Pool.Get(beID)
		reg.Gauge("backend_queue_depth", "backend", beID).Set(float64(be.QueuedTotal()))
		up := 0.0
		if be.Alive() {
			up = 1
		}
		reg.Gauge("backend_up", "backend", beID).Set(up)
		reg.Gauge("backend_incarnation", "backend", beID).Set(float64(be.Incarnation()))
		busy := be.Device().BusyTime()
		duty := 0.0
		if elapsed > 0 {
			duty = float64(busy-ts.prevBusy[beID]) / float64(elapsed)
			if duty < 0 {
				duty = 0
			}
			if duty > 1 {
				duty = 1
			}
		}
		ts.prevBusy[beID] = busy
		reg.Gauge("backend_duty", "backend", beID).Set(duty)
		batches, items := be.BatchStats()
		avg := 0.0
		if db := batches - ts.prevBatches[beID]; batches >= ts.prevBatches[beID] && db > 0 {
			avg = float64(items-ts.prevItems[beID]) / float64(db)
		}
		ts.prevBatches[beID], ts.prevItems[beID] = batches, items
		reg.Gauge("backend_batch_size", "backend", beID).Set(avg)
		// Per-slice occupancy, only under spatial placement: a temporal
		// deployment keeps its exact pre-existing metric key set.
		if d.cfg.Placement != 0 {
			for _, st := range be.SliceStats() {
				k := sliceKey{beID, st.UnitID}
				sliceLive[k] = true
				ts.sliceSeen[k] = true
				occ := 0.0
				if elapsed > 0 {
					occ = float64(st.Busy-ts.prevSliceBusy[k]) / float64(elapsed)
					if occ < 0 {
						occ = 0
					}
					if occ > 1 {
						occ = 1
					}
				}
				ts.prevSliceBusy[k] = st.Busy
				reg.Gauge("backend_slice_frac", "backend", beID, "unit", st.UnitID).Set(st.Frac)
				reg.Gauge("backend_slice_occupancy", "backend", beID, "unit", st.UnitID).Set(occ)
				reg.Gauge("backend_slice_queue_depth", "backend", beID, "unit", st.UnitID).Set(float64(st.Queued))
			}
		}
	}
	gone := make([]string, 0, len(ts.seen))
	for beID := range ts.seen {
		if !live[beID] {
			gone = append(gone, beID)
		}
	}
	sort.Strings(gone)
	for _, beID := range gone {
		reg.Gauge("backend_queue_depth", "backend", beID).Set(0)
		reg.Gauge("backend_up", "backend", beID).Set(0)
		reg.Gauge("backend_duty", "backend", beID).Set(0)
		reg.Gauge("backend_batch_size", "backend", beID).Set(0)
		delete(ts.prevBusy, beID)
		delete(ts.prevBatches, beID)
		delete(ts.prevItems, beID)
	}
	if d.cfg.Placement != 0 {
		goneSlices := make([]sliceKey, 0, len(ts.sliceSeen))
		for k := range ts.sliceSeen {
			if !sliceLive[k] {
				goneSlices = append(goneSlices, k)
			}
		}
		sort.Slice(goneSlices, func(i, j int) bool {
			if goneSlices[i].backend != goneSlices[j].backend {
				return goneSlices[i].backend < goneSlices[j].backend
			}
			return goneSlices[i].unit < goneSlices[j].unit
		})
		for _, k := range goneSlices {
			reg.Gauge("backend_slice_frac", "backend", k.backend, "unit", k.unit).Set(0)
			reg.Gauge("backend_slice_occupancy", "backend", k.backend, "unit", k.unit).Set(0)
			reg.Gauge("backend_slice_queue_depth", "backend", k.backend, "unit", k.unit).Set(0)
			delete(ts.prevSliceBusy, k)
		}
	}

	// Control plane.
	reg.Counter("sched_epochs_total").Set(float64(d.Sched.Epochs()))
	reg.Counter("sched_sessions_moved_total").Set(float64(d.Sched.TotalMoved()))
	reg.Gauge("sched_gpus_allocated").Set(float64(d.Pool.InUse()))
	reg.Gauge("sched_gpus_demanded").Set(float64(d.Sched.GPUsDemanded()))
	reg.Gauge("cluster_gpus_capacity").Set(float64(d.Pool.Capacity()))
	reg.Gauge("sched_plan_wall_ms").Set(telemetry.MS(d.Sched.LastPlanWall()))
	reg.Counter("cluster_unroutable_total").Set(float64(d.unroutable))

	// Sharded-planner and delta-routing counters, only when the features are
	// on: a monolithic full-table deployment keeps its exact golden key set.
	if d.cfg.PlannerShards >= 1 {
		replanned, skipped, crossMoves := d.Sched.ShardTotals()
		reg.Counter("sched_shards_replanned_total").Set(float64(replanned))
		reg.Counter("sched_shards_skipped_total").Set(float64(skipped))
		reg.Counter("sched_cross_shard_moves_total").Set(float64(crossMoves))
		for k, wall := range d.Sched.LastShardStats().ShardWall {
			reg.Gauge("sched_shard_plan_wall_ms", "shard", strconv.Itoa(k)).Set(telemetry.MS(wall))
		}
	}
	if d.cfg.DeltaRouting {
		deltas, fulls, sessions := d.Sched.RoutePushStats()
		reg.Counter("sched_delta_pushes_total").Set(float64(deltas))
		reg.Counter("sched_full_pushes_total").Set(float64(fulls))
		reg.Counter("sched_delta_sessions_total").Set(float64(sessions))
	}

	// Runtime self-observability, only on request: goroutines, heap, GC
	// pause, plus the simulator's own mechanisms — ingress ring occupancy
	// and send-arena reuse. Like WallTimings these are nondeterministic, so
	// they never appear in golden-compared streams.
	if d.telem.SelfObserve() {
		telemetry.SampleRuntime(reg)
		for i, fe := range d.Frontends {
			l := strconv.Itoa(i)
			reg.Gauge("frontend_ingress_depth", "frontend", l).Set(float64(fe.IngressDepth()))
			reg.Gauge("frontend_ingress_cap", "frontend", l).Set(float64(fe.IngressCap()))
			hits, grows := fe.ArenaStats()
			reg.Counter("frontend_arena_hits_total", "frontend", l).Set(float64(hits))
			reg.Counter("frontend_arena_grows_total", "frontend", l).Set(float64(grows))
			rate := 0.0
			if hits+grows > 0 {
				rate = float64(hits) / float64(hits+grows)
			}
			reg.Gauge("frontend_arena_reuse_rate", "frontend", l).Set(rate)
		}
	}

	ts.lastAt = now
	d.telem.Tick(now)
}
