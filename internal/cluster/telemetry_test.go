package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"nexus/internal/faults"
	"nexus/internal/globalsched"
	"nexus/internal/metrics"
	"nexus/internal/model"
	"nexus/internal/runner"
	"nexus/internal/telemetry"
)

func TestTelemetryDisabledByDefault(t *testing.T) {
	d, err := New(Config{System: Nexus, Features: AllFeatures(), GPUs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Telemetry() != nil {
		t.Fatal("telemetry should be nil unless enabled")
	}
}

// TestTelemetryCapturesClusterState checks the sampler against the
// simulation's own ledgers: final counters must agree exactly with the
// metrics recorder and scheduler, and every plane's gauges must be
// present.
func TestTelemetryCapturesClusterState(t *testing.T) {
	d, err := New(Config{
		System: Nexus, Features: AllFeatures(), GPUs: 2, Seed: 1,
		Epoch:     10 * time.Second,
		Telemetry: &telemetry.Config{Interval: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddSession(globalsched.SessionSpec{
		ID: "s", ModelID: model.GoogLeNetCar, SLO: 100 * time.Millisecond, ExpectedRate: 120,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := d.Telemetry()
	if c == nil {
		t.Fatal("telemetry not enabled")
	}
	snaps := c.Snapshots()
	if len(snaps) < 10 {
		t.Fatalf("got %d snapshots over an 8s run at 250ms", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].At <= snaps[i-1].At {
			t.Fatalf("snapshot times not strictly increasing: %v then %v", snaps[i-1].At, snaps[i].At)
		}
	}
	last := snaps[len(snaps)-1]

	// Session counters reconcile exactly with the recorder.
	s := d.Recorder.Session("s")
	checks := map[string]float64{
		telemetry.Key("session_sent_total", "session", "s"): float64(s.Sent),
		telemetry.Key("session_good_total", "session", "s"): float64(s.Good()),
		telemetry.Key("session_bad_total", "session", "s"):  float64(s.Bad()),
		"sched_epochs_total": float64(d.Sched.Epochs()),
	}
	for key, want := range checks {
		if got, ok := last.Counter(key); !ok || got != want {
			t.Errorf("%s = %v (present %v), want %v", key, got, ok, want)
		}
	}
	if s.Sent == 0 || s.Good() == 0 {
		t.Fatal("run served nothing; test is vacuous")
	}

	// Data-plane gauges and windows exist for every backend in the plan.
	if len(last.Keys("backend_up")) == 0 {
		t.Error("no backend_up gauges sampled")
	}
	for _, key := range last.Keys("backend_up") {
		if v, _ := last.Gauge(key); v != 1 {
			t.Errorf("%s = %v, want 1 (all backends healthy)", key, v)
		}
	}
	if len(last.Keys("backend_exec_ms")) == 0 {
		t.Error("no execute-latency windows observed")
	}
	if len(last.Keys("frontend_dispatch_total")) == 0 {
		t.Error("no frontend dispatch counters sampled")
	}
	if v, ok := last.Gauge("cluster_gpus_capacity"); !ok || v != 2 {
		t.Errorf("cluster_gpus_capacity = %v (present %v)", v, ok)
	}

	// The control plane produced per-epoch health reports with allocations.
	health := c.Health()
	if len(health) == 0 {
		t.Fatal("no scheduler health reports")
	}
	h := health[len(health)-1]
	if h.GPUsCapacity != 2 || len(h.Allocs) == 0 {
		t.Errorf("health report: %+v", h)
	}
	if h.Allocs[0].Session != "s" || h.Allocs[0].Reason == "" {
		t.Errorf("health alloc lacks an explanation: %+v", h.Allocs[0])
	}
	// Wall timings are off by default: the gauge must be exactly zero.
	if v, _ := last.Gauge("sched_plan_wall_ms"); v != 0 {
		t.Errorf("sched_plan_wall_ms = %v with WallTimings off", v)
	}
}

// TestTelemetryDeterminism asserts the full telemetry output — snapshot
// stream, alert log, and health reports — is byte-identical across runs
// and across runner parallelism, like the trace plane. CI runs this under
// -race.
func TestTelemetryDeterminism(t *testing.T) {
	runTelem := func(workers int) []byte {
		prev := runner.SetDefaultWorkers(workers)
		defer runner.SetDefaultWorkers(prev)
		d, err := New(Config{
			System: Nexus, Features: AllFeatures(), GPUs: 2, Seed: 42,
			Epoch:     10 * time.Second,
			Telemetry: &telemetry.Config{Interval: 500 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.AddSession(globalsched.SessionSpec{
			ID: "s", ModelID: model.GoogLeNetCar, SLO: 100 * time.Millisecond, ExpectedRate: 120,
		}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(8 * time.Second); err != nil {
			t.Fatal(err)
		}
		c := d.Telemetry()
		var buf bytes.Buffer
		if err := telemetry.WriteSnapshotsJSONL(&buf, c.Snapshots()); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WriteAlertsJSONL(&buf, c.Alerts()); err != nil {
			t.Fatal(err)
		}
		if err := json.NewEncoder(&buf).Encode(c.Health()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := runTelem(1)
	if again := runTelem(1); !bytes.Equal(serial, again) {
		t.Fatal("telemetry differs across identical serial runs")
	}
	if par := runTelem(8); !bytes.Equal(serial, par) {
		t.Fatal("telemetry differs between workers=1 and workers=8")
	}
}

// TestChaosBurnRateAlert is the acceptance criterion tying alerting to
// fault injection: crashing a backend mid-run must raise a burn-rate alert
// for the session, timestamped after the fault but before goodput has
// recovered — the alert would have paged before the cluster healed itself.
func TestChaosBurnRateAlert(t *testing.T) {
	epoch := 5 * time.Second
	d := chaosDeployment(t, Config{
		System: Nexus, Features: AllFeatures(), GPUs: 4, Seed: 7, Epoch: epoch,
		Heartbeat: 100 * time.Millisecond, LeaseMisses: 3, RetryFailures: true,
		Telemetry: &telemetry.Config{
			Interval: 250 * time.Millisecond,
			Rules: []telemetry.Rule{
				telemetry.BurnRate{Short: 500 * time.Millisecond, Long: 2 * time.Second, Threshold: 2},
				telemetry.BackendFlap{},
			},
		},
	})
	in := faults.New(d.Clock, d, 7)
	if err := in.Schedule(faults.Script{{At: chaosFaultAt, Kind: faults.Crash, Backend: "be0"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	rec, ok := metrics.RecoveryTime(d.GoodEvts, chaosFaultAt, 3*time.Second, 0.95)
	if !ok {
		t.Fatal("goodput never recovered; chaos baseline broken")
	}

	c := d.Telemetry()
	var burn *telemetry.Alert
	for i, a := range c.Alerts() {
		if a.Rule == "slo-burn-rate" && a.Target == "s" && a.State == "firing" {
			burn = &c.Alerts()[i]
			break
		}
	}
	if burn == nil {
		t.Fatalf("no burn-rate alert fired for the crash; alert log: %+v", c.Alerts())
	}
	if burn.At < chaosFaultAt {
		t.Fatalf("burn-rate alert at %v predates the fault at %v", burn.At, chaosFaultAt)
	}
	if recoveredAt := chaosFaultAt + rec; burn.At >= recoveredAt {
		t.Fatalf("burn-rate alert at %v only after recovery at %v — too slow to page",
			burn.At, recoveredAt)
	}
	// No alert may fire before the fault: the healthy phase is quiet.
	for _, a := range c.Alerts() {
		if a.At < chaosFaultAt {
			t.Fatalf("alert before the fault: %+v", a)
		}
	}
}
