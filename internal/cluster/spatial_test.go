package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"nexus/internal/globalsched"
	"nexus/internal/model"
	"nexus/internal/scheduler"
	"nexus/internal/telemetry"
)

// spatialFleet deploys the camera-fleet workload (small model, tight SLO,
// low per-session rate — the spatial sweet spot) under one placement.
func spatialFleet(t *testing.T, placement scheduler.Placement, telem *telemetry.Config) *Deployment {
	t.Helper()
	d, err := New(Config{
		System: Nexus, Features: AllFeatures(),
		GPUs: 12, Seed: 7, Epoch: 10 * time.Second,
		Audit:            true,
		Placement:        placement,
		SliceGranularity: 4,
		Telemetry:        telem,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := d.AddSession(globalsched.SessionSpec{
			ID:      fmt.Sprintf("cam-%d", i),
			ModelID: model.GoogLeNetCar,
			SLO:     13 * time.Millisecond, ExpectedRate: 30,
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestSpatialEndToEnd drives the full stack under spatial placement:
// planning must pin the fleet to slices on far fewer GPUs than temporal
// duty cycles would, the data plane must serve it within SLO on gpusim
// partitions, and the audit log must tag the spatial placements.
func TestSpatialEndToEnd(t *testing.T) {
	d := spatialFleet(t, scheduler.PlaceSpatial, nil)
	bad, err := d.Run(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0.02 {
		t.Fatalf("bad rate %.4f on slices; spatial serving misses SLOs", bad)
	}
	if gpus := d.AvgGPUsUsed(); gpus > 4.5 {
		t.Fatalf("spatial fleet used %.1f GPUs; temporal-like usage means slices were not planned", gpus)
	}
	spatialNodes, sliced := 0, 0
	for _, p := range d.Audit().Placements() {
		if !p.Spatial {
			continue
		}
		spatialNodes++
		for _, u := range p.Units {
			if u.Slice <= 0 || u.Slice > 1 {
				t.Fatalf("spatial node %s unit %s has slice %v", p.Node, u.Unit, u.Slice)
			}
			sliced++
		}
	}
	if spatialNodes == 0 || sliced == 0 {
		t.Fatal("audit log recorded no spatial placements")
	}
}

// TestSpatialTelemetryGauges checks the per-slice occupancy gauges appear
// (and only under spatial placement).
func TestSpatialTelemetryGauges(t *testing.T) {
	d := spatialFleet(t, scheduler.PlaceSpatial, &telemetry.Config{Interval: 500 * time.Millisecond})
	if _, err := d.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	snaps := d.Telemetry().Snapshots()
	if len(snaps) == 0 {
		t.Fatal("no telemetry snapshots")
	}
	last := snaps[len(snaps)-1]
	fracs := last.Keys("backend_slice_frac")
	if len(fracs) == 0 {
		t.Fatal("no backend_slice_frac gauges under spatial placement")
	}
	busy := false
	for _, key := range fracs {
		if v, _ := last.Gauge(key); v != 0.25 {
			t.Errorf("%s = %v, want quarter slices", key, v)
		}
		occKey := strings.Replace(key, "backend_slice_frac", "backend_slice_occupancy", 1)
		if v, ok := last.Gauge(occKey); !ok {
			t.Errorf("missing %s", occKey)
		} else if v > 0 {
			busy = true
		}
	}
	if !busy {
		t.Error("every slice occupancy gauge is zero over a served window")
	}

	// A temporal deployment must not grow the metric key set.
	dt := spatialFleet(t, scheduler.PlaceTemporal, &telemetry.Config{Interval: 500 * time.Millisecond})
	if _, err := dt.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	tsnaps := dt.Telemetry().Snapshots()
	tlast := tsnaps[len(tsnaps)-1]
	if keys := tlast.Keys("backend_slice_frac"); len(keys) != 0 {
		t.Fatalf("temporal deployment exported slice gauges: %v", keys)
	}
}

// TestTemporalAuditHasNoSpatialFields pins the no-op contract at the
// cluster level: a deployment with Placement left zero serializes an audit
// log byte-identical to one predating the feature (no spatial flags, no
// slice fields).
func TestTemporalAuditHasNoSpatialFields(t *testing.T) {
	d := spatialFleet(t, scheduler.PlaceTemporal, nil)
	if _, err := d.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := d.Audit().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "\"spatial\"") || strings.Contains(out, "\"slice\"") {
		t.Fatal("temporal audit log serialized spatial fields; goldens would change")
	}
}
