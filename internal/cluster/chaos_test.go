package cluster

import (
	"testing"
	"time"

	"nexus/internal/backend"
	"nexus/internal/faults"
	"nexus/internal/globalsched"
	"nexus/internal/gpusim"
	"nexus/internal/metrics"
	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/simclock"
	"nexus/internal/workload"
)

// chaosDeployment builds a small Nexus cluster with one ResNet-50 session
// and a scripted crash of a fully-loaded backend mid-run. It is sized to
// stay fast enough for -short CI runs under -race.
func chaosDeployment(t *testing.T, cfg Config) *Deployment {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddSession(globalsched.SessionSpec{
		ID: "s", ModelID: model.ResNet50, SLO: 100 * time.Millisecond, ExpectedRate: 1500,
	}, workload.Uniform{Rate: 1500}); err != nil {
		t.Fatal(err)
	}
	return d
}

const chaosFaultAt = 9 * time.Second // absolute sim time (2s warmup + 7s)

// TestCrashRecoveryWithinTwoEpochs is the headline robustness criterion:
// with heartbeat detection, crashing 1 of N backends mid-run restores at
// least 95% of the pre-fault goodput within two control-plane epochs.
func TestCrashRecoveryWithinTwoEpochs(t *testing.T) {
	epoch := 5 * time.Second
	d := chaosDeployment(t, Config{
		System: Nexus, Features: AllFeatures(), GPUs: 4, Seed: 7, Epoch: epoch,
		Heartbeat: 100 * time.Millisecond, LeaseMisses: 3, RetryFailures: true,
	})
	in := faults.New(d.Clock, d, 7)
	if err := in.Schedule(faults.Script{{At: chaosFaultAt, Kind: faults.Crash, Backend: "be0"}}); err != nil {
		t.Fatal(err)
	}
	bad, err := d.Run(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	log := in.Log()
	if len(log) != 1 || !log[0].Applied {
		t.Fatalf("injection log = %+v, want one applied crash", log)
	}
	if d.Failures() != 1 {
		t.Fatalf("detected failures = %d, want 1", d.Failures())
	}
	rec, ok := metrics.RecoveryTime(d.GoodEvts, chaosFaultAt, 3*time.Second, 0.95)
	if !ok {
		t.Fatal("goodput never regained 95% of its pre-fault mean")
	}
	if rec > 2*epoch {
		t.Fatalf("recovery took %v, want <= 2 epochs (%v)", rec, 2*epoch)
	}
	if bad > 0.05 {
		t.Fatalf("bad rate %.3f, want < 5%% end to end", bad)
	}
}

// TestCrashRecoveryDeterministic pins the chaos path to the repo-wide
// determinism contract: same seed, same script, same event count, same
// statistics on every run.
func TestCrashRecoveryDeterministic(t *testing.T) {
	run := func() (float64, uint64, int) {
		d := chaosDeployment(t, Config{
			System: Nexus, Features: AllFeatures(), GPUs: 4, Seed: 7, Epoch: 5 * time.Second,
			Heartbeat: 100 * time.Millisecond, LeaseMisses: 3, RetryFailures: true,
		})
		in := faults.New(d.Clock, d, 7)
		if err := in.Schedule(faults.Script{{At: chaosFaultAt, Kind: faults.Crash}}); err != nil {
			t.Fatal(err)
		}
		bad, err := d.Run(15 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return bad, d.Clock.Executed(), d.Failures()
	}
	bad1, evts1, fail1 := run()
	bad2, evts2, fail2 := run()
	if bad1 != bad2 || evts1 != evts2 || fail1 != fail2 {
		t.Fatalf("runs diverged: bad %v vs %v, events %d vs %d, failures %d vs %d",
			bad1, bad2, evts1, evts2, fail1, fail2)
	}
}

// TestEpochSweepRecoversWithoutHeartbeat covers the no-detection baseline:
// a crash is noticed only at the next epoch boundary, in-flight and routed
// requests are lost as failures, and the sweep still restores service.
func TestEpochSweepRecoversWithoutHeartbeat(t *testing.T) {
	epoch := 5 * time.Second
	d := chaosDeployment(t, Config{
		System: Nexus, Features: AllFeatures(), GPUs: 4, Seed: 7, Epoch: epoch,
	})
	in := faults.New(d.Clock, d, 7)
	if err := in.Schedule(faults.Script{{At: chaosFaultAt, Kind: faults.Crash, Backend: "be0"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Failures() != 0 {
		t.Fatalf("heartbeat-less deployment detected %d failures", d.Failures())
	}
	s := d.Recorder.Session("s")
	if s.Failed == 0 {
		t.Fatal("no requests accounted as failure-lost despite a dead backend")
	}
	rec, ok := metrics.RecoveryTime(d.GoodEvts, chaosFaultAt, 3*time.Second, 0.95)
	if !ok {
		t.Fatal("goodput never recovered after the epoch sweep")
	}
	// The fault lands 4s before an epoch boundary (t=10s); allow the sweep
	// epoch plus settling.
	if rec > epoch+3*time.Second {
		t.Fatalf("epoch-sweep recovery took %v", rec)
	}
}

// TestTransientRestartRejoinsPool covers the transient-failure model at
// the pool level: a crashed backend parked by Release is revived by
// Restart and becomes grantable again.
func TestTransientRestartRejoinsPool(t *testing.T) {
	clock := simclock.New()
	pool := NewPool(clock, 2, profiler.GTX1080Ti, gpusim.Exclusive, backend.Config{}, nil)
	id1, be1, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pool.Acquire(); err != nil {
		t.Fatal(err)
	}
	be1.Fail()
	pool.Release(id1)
	if pool.Capacity() != 1 {
		t.Fatalf("Capacity with a dead backend = %d, want 1", pool.Capacity())
	}
	if _, _, err := pool.Acquire(); err == nil {
		t.Fatal("dead backend handed out")
	}
	if !pool.Restart(id1) {
		t.Fatal("Restart refused a parked dead backend")
	}
	if pool.Capacity() != 2 {
		t.Fatalf("Capacity after restart = %d, want 2", pool.Capacity())
	}
	id3, be3, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id1 || !be3.Alive() {
		t.Fatalf("reacquired %s alive=%v, want revived %s", id3, be3.Alive(), id1)
	}
	// In-place restart: a crash not yet detected is revived without a
	// Release/Acquire cycle.
	be3.Fail()
	if !pool.Restart(id3) {
		t.Fatal("in-place Restart refused")
	}
	if !be3.Alive() {
		t.Fatal("backend still dead after in-place restart")
	}
}

// TestSessionTimelines covers the per-session SLO-attainment series: the
// crash second shows degraded attainment, steady state shows full.
func TestSessionTimelines(t *testing.T) {
	d := chaosDeployment(t, Config{
		System: Nexus, Features: AllFeatures(), GPUs: 4, Seed: 7, Epoch: 5 * time.Second,
		Heartbeat: 100 * time.Millisecond, LeaseMisses: 3,
		SessionTimelines: true,
	})
	in := faults.New(d.Clock, d, 7)
	if err := in.Schedule(faults.Script{{At: chaosFaultAt, Kind: faults.Crash, Backend: "be0"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	good, bad := d.SessionTimeline("s")
	if good == nil || bad == nil {
		t.Fatal("session timelines missing")
	}
	att := metrics.Attainment(good, bad)
	faultBucket := int(chaosFaultAt / time.Second)
	if att[faultBucket] >= 1 {
		t.Fatalf("attainment in the crash second = %v, want < 1", att[faultBucket])
	}
	last := att[len(att)-1]
	if last < 0.99 {
		t.Fatalf("steady-state attainment = %v, want ~1", last)
	}
}
