package cluster

import (
	"fmt"

	"nexus/internal/backend"
	"nexus/internal/gpusim"
	"nexus/internal/profiler"
	"nexus/internal/simclock"
)

// Pool is the cluster resource manager the global scheduler acquires
// backend GPUs from (standing in for Mesos / Azure Scale Sets, §5). It has
// a fixed capacity (the experiment's cluster size); released backends are
// recycled.
type Pool struct {
	clock    *simclock.Clock
	capacity int
	gpu      profiler.GPUType
	mode     gpusim.Mode
	beCfg    backend.Config
	onDone   backend.CompletionFunc

	next     int
	backends map[string]*backend.Backend // in use; shared with the frontend
	free     []*backend.Backend
}

// NewPool creates a pool of up to capacity GPUs of the given type.
func NewPool(clock *simclock.Clock, capacity int, gpu profiler.GPUType, mode gpusim.Mode,
	beCfg backend.Config, onDone backend.CompletionFunc) *Pool {
	return &Pool{
		clock: clock, capacity: capacity, gpu: gpu, mode: mode,
		beCfg: beCfg, onDone: onDone,
		backends: make(map[string]*backend.Backend),
	}
}

// Acquire implements globalsched.Pool.
func (p *Pool) Acquire() (string, *backend.Backend, error) {
	if len(p.free) > 0 {
		be := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.backends[be.ID] = be
		return be.ID, be, nil
	}
	if len(p.backends) >= p.capacity {
		return "", nil, fmt.Errorf("cluster: pool exhausted (%d/%d GPUs in use)", len(p.backends), p.capacity)
	}
	id := fmt.Sprintf("be%d", p.next)
	p.next++
	dev := gpusim.New(p.clock, "gpu-"+id, p.gpu, p.mode)
	be := backend.New(id, p.clock, dev, p.beCfg, p.onDone)
	p.backends[id] = be
	return id, be, nil
}

// Release implements globalsched.Pool.
func (p *Pool) Release(id string) {
	if be, ok := p.backends[id]; ok {
		delete(p.backends, id)
		p.free = append(p.free, be)
	}
}

// Get implements globalsched.Pool.
func (p *Pool) Get(id string) *backend.Backend { return p.backends[id] }

// InUse implements globalsched.Pool.
func (p *Pool) InUse() int { return len(p.backends) }

// Capacity returns the pool's GPU capacity.
func (p *Pool) Capacity() int { return p.capacity }

// TotalBusy sums busy time across in-use backends.
func (p *Pool) TotalBusy() (busy int64) {
	for _, be := range p.backends {
		busy += int64(be.Device().BusyTime())
	}
	return busy
}
