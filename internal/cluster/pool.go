package cluster

import (
	"fmt"

	"nexus/internal/backend"
	"nexus/internal/gpusim"
	"nexus/internal/profiler"
	"nexus/internal/simclock"
)

// Pool is the cluster resource manager the global scheduler acquires
// backend GPUs from (standing in for Mesos / Azure Scale Sets, §5). It has
// a fixed capacity (the experiment's cluster size); released backends are
// recycled.
type Pool struct {
	clock    *simclock.Clock
	capacity int
	gpu      profiler.GPUType
	mode     gpusim.Mode
	beCfg    backend.Config
	// onDone builds each backend's completion sink, closing over the
	// backend ID so completions and drops attribute to the node that
	// reported them.
	onDone func(beID string) backend.CompletionFunc

	next     int
	backends map[string]*backend.Backend // in use; shared with the frontend
	free     []*backend.Backend
	// down parks crashed backends: not grantable until Restart revives
	// them, so Capacity shrinks while they are dead.
	down []*backend.Backend
	// isolated marks backends behind a severed control link: the cluster
	// manager cannot reach them either, so a Release (e.g. a false-positive
	// failure declaration) parks them in lost — still serving, but not
	// grantable and NOT reset — until the link heals and Reclaim recycles
	// them.
	isolated map[string]bool
	lost     []*backend.Backend
}

// NewPool creates a pool of up to capacity GPUs of the given type.
func NewPool(clock *simclock.Clock, capacity int, gpu profiler.GPUType, mode gpusim.Mode,
	beCfg backend.Config, onDone func(beID string) backend.CompletionFunc) *Pool {
	return &Pool{
		clock: clock, capacity: capacity, gpu: gpu, mode: mode,
		beCfg: beCfg, onDone: onDone,
		backends: make(map[string]*backend.Backend),
	}
}

// Acquire implements globalsched.Pool.
func (p *Pool) Acquire() (string, *backend.Backend, error) {
	if len(p.free) > 0 {
		be := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.backends[be.ID] = be
		return be.ID, be, nil
	}
	// Dead parked nodes still occupy their physical slot: a crashed GPU's
	// capacity is gone until Restart revives it, never re-granted fresh.
	// Likewise lost nodes: a partitioned GPU is unreachable, not spare.
	if len(p.backends)+len(p.down)+len(p.lost) >= p.capacity {
		return "", nil, fmt.Errorf("cluster: pool exhausted (%d/%d GPUs grantable)", len(p.backends), p.Capacity())
	}
	id := fmt.Sprintf("be%d", p.next)
	p.next++
	dev := gpusim.New(p.clock, "gpu-"+id, p.gpu, p.mode)
	var done backend.CompletionFunc
	if p.onDone != nil {
		done = p.onDone(id)
	}
	be := backend.New(id, p.clock, dev, p.beCfg, done)
	p.backends[id] = be
	return id, be, nil
}

// Release implements globalsched.Pool. A live backend is drained and
// cleared (queues, resident models, duty-cycle state) before rejoining the
// free list, so a recycled GPU never serves a prior tenant's requests. A
// dead backend is parked instead: it is not grantable capacity until
// Restart revives it.
func (p *Pool) Release(id string) {
	be, ok := p.backends[id]
	if !ok {
		return
	}
	delete(p.backends, id)
	be.StopHeartbeat()
	if !be.Alive() {
		p.down = append(p.down, be)
		return
	}
	if p.isolated[id] {
		// Split brain: the scheduler declared an unreachable-but-alive node
		// dead. The cluster manager cannot reach it either, so it keeps its
		// queues and keeps serving in the dark; Reclaim recycles it once the
		// partition heals.
		p.lost = append(p.lost, be)
		return
	}
	be.Reset()
	p.free = append(p.free, be)
}

// Isolate marks (or unmarks) a backend as behind a severed control link.
// While isolated, releasing it parks it in the lost set instead of
// recycling it.
func (p *Pool) Isolate(id string, cut bool) {
	if p.isolated == nil {
		p.isolated = make(map[string]bool)
	}
	if cut {
		p.isolated[id] = true
	} else {
		delete(p.isolated, id)
	}
}

// Lost reports whether a backend is parked in the lost set (released while
// isolated).
func (p *Pool) Lost(id string) bool {
	for _, be := range p.lost {
		if be.ID == id {
			return true
		}
	}
	return false
}

// Reclaim recycles a lost node after its partition healed and its
// re-registration was rejected (the scheduler replaced it): its stale
// state is wiped and it rejoins the free list as fresh grantable capacity.
// Returns false if the ID is not in the lost set.
func (p *Pool) Reclaim(id string) bool {
	for i, be := range p.lost {
		if be.ID == id {
			p.lost = append(p.lost[:i], p.lost[i+1:]...)
			if be.Alive() {
				be.Reset()
				p.free = append(p.free, be)
			} else {
				// Died while lost: park it dead, like any crashed node.
				p.down = append(p.down, be)
			}
			return true
		}
	}
	return false
}

// Restart revives a crashed backend. A node still assigned restarts in
// place — empty, to be reconfigured by the control plane; a node that was
// detected and parked rejoins the free list as grantable capacity. Returns
// false if the ID is unknown or the backend is not dead.
func (p *Pool) Restart(id string) bool {
	if be, ok := p.backends[id]; ok {
		if be.Alive() {
			return false
		}
		be.Restart()
		return true
	}
	for i, be := range p.down {
		if be.ID == id {
			p.down = append(p.down[:i], p.down[i+1:]...)
			be.Restart()
			p.free = append(p.free, be)
			return true
		}
	}
	return false
}

// Get implements globalsched.Pool.
func (p *Pool) Get(id string) *backend.Backend { return p.backends[id] }

// InUse implements globalsched.Pool.
func (p *Pool) InUse() int { return len(p.backends) }

// Capacity returns the pool's grantable GPU capacity — the configured size
// minus nodes currently dead or lost behind a partition, so the packer
// never plans onto a GPU it cannot reach.
func (p *Pool) Capacity() int { return p.capacity - len(p.down) - len(p.lost) }

// TotalBusy sums busy time across in-use backends.
func (p *Pool) TotalBusy() (busy int64) {
	for _, be := range p.backends {
		busy += int64(be.Device().BusyTime())
	}
	return busy
}
