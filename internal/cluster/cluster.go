// Package cluster wires the full Nexus deployment together on the
// simulation clock: an elastic backend pool, a frontend, the global
// scheduler, workload generators, complex-query chaining, and metric
// collection. It also instantiates the comparison systems of §7.2 —
// Clipper-like and TF-Serving-like serving — and the "Nexus-parallel"
// ablation of Figure 14, all as configurations of the same runtime with
// different feature switches.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"nexus/internal/backend"
	"nexus/internal/forensics"
	"nexus/internal/frontend"
	"nexus/internal/globalsched"
	"nexus/internal/gpusim"
	"nexus/internal/metrics"
	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/queryopt"
	"nexus/internal/scheduler"
	"nexus/internal/simclock"
	"nexus/internal/telemetry"
	"nexus/internal/trace"
	"nexus/internal/workload"
)

// System identifies which serving system a deployment runs.
type System string

// The systems compared in §7.
const (
	Nexus         System = "nexus"
	NexusParallel System = "nexus-parallel" // Figure 14 ablation
	Clipper       System = "clipper"
	TFServing     System = "tfserving"
)

// Features are the Nexus ablation switches (§7.3). They are ignored for
// the baseline systems, whose behaviour is fixed.
type Features struct {
	PrefixBatch   bool // PB
	Squishy       bool // SS
	EarlyDrop     bool // ED
	Overlap       bool // OL
	QueryAnalysis bool // QA
}

// AllFeatures returns full Nexus.
func AllFeatures() Features {
	return Features{PrefixBatch: true, Squishy: true, EarlyDrop: true, Overlap: true, QueryAnalysis: true}
}

// Config describes a deployment.
type Config struct {
	System   System
	Features Features
	GPUs     int              // pool capacity
	GPU      profiler.GPUType // device type (default GTX1080Ti)
	Epoch    time.Duration    // control plane period (default 30s)
	NetDelay time.Duration    // one-way frontend<->backend latency (>=0; -1 = default)
	Seed     int64
	// Warmup excludes the initial interval from statistics (model loads,
	// pipeline fill). Default 2s; negative means no warmup at all (every
	// request is measured — useful for trace/metrics reconciliation).
	Warmup time.Duration
	// OnEpoch, when set, observes every control-plane epoch (telemetry).
	OnEpoch func(epoch int, stats scheduler.MoveStats, gpusInUse int)
	// FixedCluster treats the GPU pool as a fixed-size cluster whose spare
	// capacity should be spread across plan nodes (the §7.3/§7.5 fixed
	// 16-GPU experiments). Leave false for elastic deployments where GPU
	// usage should track load (Figure 13).
	FixedCluster bool
	// TraceCapacity, when positive, records the last N request lifecycle
	// events (arrivals, routes, enqueues, batch executions, completions,
	// drops); read them via Deployment.Tracer. Warmup requests are filtered
	// out so trace counts agree with the metrics recorder.
	TraceCapacity int
	// Audit, when true, keeps the control-plane audit log: per-epoch
	// placement records, query budget splits, and early-drop window
	// decisions; read it via Deployment.Audit.
	Audit bool
	// DeferDropped switches Nexus to the paper's alternative service model
	// (§5): requests that miss their deadline window run later at low
	// priority instead of being discarded.
	DeferDropped bool
	// PlanningSlack overrides the control plane's SLO slack (0 = derive
	// from the network delay; negative = no slack). For ablations.
	PlanningSlack time.Duration
	// Frontends is the number of data-plane frontend replicas requests are
	// load-balanced across (§5's "distributed frontend"; default 1).
	Frontends int
	// Heartbeat enables failure detection: backends beat at this period and
	// the control plane declares one dead after LeaseMisses missed beats,
	// repairing routes and acquiring a replacement immediately. 0 (the
	// default) disables detection — crashes are then noticed only at epoch
	// boundaries, and every pre-existing experiment stays bit-identical.
	Heartbeat time.Duration
	// LeaseMisses is how many beats may be missed before a backend is
	// declared dead (default 3).
	LeaseMisses int
	// RetryFailures enables the frontend's deadline-checked retry-once path
	// for dispatches that hit a dead backend or a reconfiguration race.
	RetryFailures bool
	// MaxQueue bounds each backend unit's queue; 0 = unbounded.
	MaxQueue int
	// SessionTimelines records per-session good/bad completion series
	// (per-second), read back via SessionTimeline.
	SessionTimelines bool
	// OnFailure, when set, observes every backend declared dead by the
	// control plane.
	OnFailure func(backendID string, at time.Duration)
	// PlannerShards routes epoch planning through the sharded planner with
	// this many concurrent shards (0, the default, keeps the monolithic
	// planner and all its goldens; 1 is the degenerate sharded planner,
	// byte-identical to monolithic).
	PlannerShards int
	// PlanHysteresis is the relative rate band within which a planner shard
	// skips re-packing and carries its plan forward (requires
	// PlannerShards >= 1; 0 disables skipping).
	PlanHysteresis float64
	// DeltaRouting pushes routing-table updates to frontends as per-session
	// deltas with generation checks instead of full-table replacements.
	DeltaRouting bool
	// Telemetry enables the live telemetry plane: a streaming metrics
	// registry sampled every Telemetry.Interval of virtual time, the
	// alerting engine, and per-epoch scheduler health reports; read them
	// via Deployment.Telemetry. nil (the default) disables the plane
	// entirely — no instruments, no sampling tick, goldens unchanged.
	Telemetry *telemetry.Config
	// Forensics enables the anomaly-triggered flight recorder: every new
	// firing alert freezes the last window of spans, audit records, chaos
	// edges, and metric samples into one dump bundle (read them via
	// Deployment.Flight). Setting it implies tracing (a large default ring
	// if TraceCapacity is unset), the audit log, and the telemetry plane
	// with default rules if Telemetry is nil. Exec-latency windows
	// additionally carry exemplar request IDs. nil (the default) changes
	// nothing — goldens stay byte-identical.
	Forensics *forensics.Config

	// Degraded-mode survival layer. Every knob below is off by default and
	// nil-no-op when off: a deployment that sets none of them runs the
	// exact pre-existing instruction stream (goldens stay byte-identical).

	// RouteLeaseTTL arms routing-table leases on every frontend: a table
	// that has not seen a control-plane push (full, delta, or empty-epoch
	// renewal) within the TTL is stale. With ServeStale the frontend keeps
	// routing on it (counting staleness); without, stale dispatches drop
	// unroutable — the lease-expiry-without-repair posture.
	RouteLeaseTTL time.Duration
	ServeStale    bool
	// RetryBudget replaces the retry-once path with an exponential-backoff
	// budget: up to RetryBudget re-sends per request, waiting
	// RetryBackoff<<(attempt-1) before each (default backoff 1ms).
	RetryBudget  int
	RetryBackoff time.Duration
	// BreakerThreshold arms per-backend circuit breakers on every
	// frontend: that many consecutive dispatch failures open a backend's
	// breaker and traffic routes around it until a half-open probe
	// succeeds after BreakerCooloff (default 1s).
	BreakerThreshold int
	BreakerCooloff   time.Duration
	// Admission installs priority-aware token-bucket admission control:
	// per-session sustained rate + burst, with Priority > 0 sessions
	// drawing from the shared reserve when their bucket runs dry, so
	// overload sheds the lowest-value sessions first (DropAdmission).
	Admission map[string]frontend.AdmissionConfig
	// AdmissionReserveRate/Burst size the shared priority reserve bucket.
	AdmissionReserveRate  float64
	AdmissionReserveBurst float64
	// RecoveryMaxRouteChanges rate-limits the first post-outage route
	// publish to this many per-session changes per push (requires
	// DeltaRouting); 0 disables the cap.
	RecoveryMaxRouteChanges int
	// Placement selects the packer's multiplexing axes: temporal duty
	// cycles only (the zero value — every pre-existing experiment is
	// unchanged), spatial compute slices, or the hybrid policy that picks
	// the cheaper of the two per session.
	Placement scheduler.Placement
	// SliceGranularity is the number of equal compute-slice steps a GPU can
	// be carved into for spatial placement (default 8; requires Placement).
	SliceGranularity int
}

// degraded reports whether any degraded-mode survival knob is set; the
// telemetry sampler keys its new instruments on it so pre-existing
// deployments keep their exact metric key sets.
func (c *Config) degraded() bool {
	return c.RouteLeaseTTL > 0 || c.RetryBudget > 0 || c.BreakerThreshold > 0 ||
		c.Admission != nil || c.RecoveryMaxRouteChanges > 0
}

// Deployment is a running simulated cluster.
type Deployment struct {
	Clock    *simclock.Clock
	Pool     *Pool
	Sched    *globalsched.Scheduler
	Recorder *metrics.Recorder

	// Frontend is the first data-plane frontend (always present);
	// Frontends holds every replica when Config.Frontends > 1.
	Frontend  *frontend.Frontend
	Frontends []*frontend.Frontend
	nextFE    int

	cfg      Config
	rng      *rand.Rand
	profiles map[string]*profiler.Profile
	mdb      *model.DB

	collecting bool
	seq        uint64
	queryTrack map[uint64]*queryInstance
	queryMeta  map[string]*stageMeta // stage session ID -> meta

	loads      []sessionLoad
	queryLoads []queryLoad
	// gens holds the running workload generators (filled by Run), so fault
	// injection can modulate offered rates mid-run (faults.Surge).
	gens []*workload.Generator

	// Interval series for Figure 13.
	Arrivals *metrics.TimeSeries
	BadEvts  *metrics.TimeSeries
	GoodEvts *metrics.TimeSeries
	GPUsUsed *metrics.TimeSeries

	// Query-level outcomes (end-to-end).
	queryStats map[string]*metrics.SessionStats

	// ignored marks in-flight requests issued during warmup so their
	// completions do not pollute statistics.
	ignored map[uint64]struct{}

	// stageSessions marks per-stage query sessions, which are excluded
	// from the end-to-end BadRate/Goodput (queries are counted once, as
	// whole-query outcomes).
	stageSessions map[string]bool

	// unroutable counts requests dropped because no route or unit existed
	// when they arrived (admission-control drops at the frontend).
	unroutable uint64

	// Per-session good/bad completion timelines (nil unless
	// Config.SessionTimelines).
	sessGood map[string]*metrics.TimeSeries
	sessBad  map[string]*metrics.TimeSeries

	// tracer records request lifecycle events when enabled (nil = off).
	tracer *trace.Tracer
	// audit holds the control-plane audit log when enabled (nil = off).
	audit *trace.Audit
	// telem is the live telemetry collector (nil = off); telemSample holds
	// the sampler's pull-side state.
	telem       *telemetry.Collector
	telemSample *telemetrySampler
	// flight is the anomaly-triggered dump recorder (nil = off).
	flight *forensics.Recorder
}

type sessionLoad struct {
	spec globalsched.SessionSpec
	proc workload.Process
}

type queryLoad struct {
	spec globalsched.QuerySpec
	proc workload.Process
}

type stageMeta struct {
	queryName string
	children  []stageChild
}

type stageChild struct {
	session string
	gamma   float64
	carry   float64 // fractional fan-out accumulator
}

type queryInstance struct {
	queryName   string
	deadline    time.Duration
	outstanding int
	bad         bool
}

// New creates a deployment.
func New(cfg Config) (*Deployment, error) {
	if cfg.GPUs < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 GPU")
	}
	if cfg.GPU == "" {
		cfg.GPU = profiler.GTX1080Ti
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = globalsched.DefaultEpoch
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 2 * time.Second
	} else if cfg.Warmup < 0 {
		cfg.Warmup = 0
	}
	if cfg.Forensics != nil {
		// The flight recorder needs all three planes: spans to dump, audit
		// records to correlate, and the alert engine to trigger on.
		if cfg.TraceCapacity <= 0 {
			cfg.TraceCapacity = 1 << 18
		}
		cfg.Audit = true
		if cfg.Telemetry == nil {
			cfg.Telemetry = &telemetry.Config{}
		}
	}
	mdb := model.Catalog()
	d := &Deployment{
		Clock:         simclock.New(),
		Recorder:      metrics.NewRecorder(),
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		mdb:           mdb,
		queryTrack:    make(map[uint64]*queryInstance),
		queryMeta:     make(map[string]*stageMeta),
		Arrivals:      metrics.NewTimeSeries(time.Second),
		BadEvts:       metrics.NewTimeSeries(time.Second),
		GoodEvts:      metrics.NewTimeSeries(time.Second),
		GPUsUsed:      metrics.NewTimeSeries(time.Second),
		queryStats:    make(map[string]*metrics.SessionStats),
		ignored:       make(map[uint64]struct{}),
		stageSessions: make(map[string]bool),
	}
	if cfg.TraceCapacity > 0 {
		d.tracer = trace.New(cfg.TraceCapacity)
		// Warmup traffic is excluded from metrics; filter it out of the
		// trace too, so per-cause event counts reconcile exactly with the
		// recorder. Standalone warmup requests sit in d.ignored while in
		// flight; warmup query stages are tracked with a blank query name.
		d.tracer.SetFilter(func(e trace.Event) bool {
			if _, warm := d.ignored[e.ReqID]; warm {
				return false
			}
			if qi, ok := d.queryTrack[e.ReqID]; ok && qi.queryName == "" {
				return false
			}
			return true
		})
	}
	if cfg.Audit {
		d.audit = trace.NewAudit()
	}
	if cfg.Telemetry != nil {
		d.telem = telemetry.NewCollector(*cfg.Telemetry)
		d.telemSample = newTelemetrySampler(d)
	}
	if cfg.Forensics != nil {
		d.flight = forensics.New(*cfg.Forensics)
		d.telem.SetOnSample(d.flight.ObserveSample)
		d.telem.SetOnAlert(func(a telemetry.Alert) {
			d.flight.Trigger(a.At, a, d.tracer, d.audit)
		})
	}
	if cfg.SessionTimelines {
		d.sessGood = make(map[string]*metrics.TimeSeries)
		d.sessBad = make(map[string]*metrics.TimeSeries)
	}
	if err := d.rebuildProfiles(); err != nil {
		return nil, err
	}
	beCfg, devMode := d.runtimeConfig()
	if d.tracer != nil {
		beCfg.OnBatch = func(backendID, unitID string, batch []backend.Request, inc uint64, gpuTime time.Duration) {
			at := d.Clock.Now()
			for _, r := range batch {
				d.tracer.Record(trace.Event{
					At: at, Kind: trace.Execute, ReqID: r.ID,
					Session: r.Session, Backend: backendID, Unit: unitID,
					Batch: len(batch), Dur: gpuTime, Inc: inc,
				})
			}
		}
	}
	if d.telem != nil {
		// Execute latency is the one push-style instrument: batch grain (not
		// request grain), composed with the tracer's hook when both are on.
		// Under forensics the window additionally carries the leading request
		// ID of its worst batch, so a hot p99 cell links back to a trace span;
		// without forensics the exemplar field never appears and the snapshot
		// stream stays byte-identical to its goldens.
		prevOnBatch := beCfg.OnBatch
		exemplars := cfg.Forensics != nil
		beCfg.OnBatch = func(backendID, unitID string, batch []backend.Request, inc uint64, gpuTime time.Duration) {
			if prevOnBatch != nil {
				prevOnBatch(backendID, unitID, batch, inc, gpuTime)
			}
			w := d.telemSample.execWindow(backendID)
			if exemplars && len(batch) > 0 {
				w.ObserveExemplar(gpuTime, batch[0].ID)
			} else {
				w.Observe(gpuTime)
			}
		}
	}
	if d.audit != nil {
		beCfg.OnDropWindow = func(backendID, unitID string, window, dropped int) {
			d.audit.RecordDropWindow(trace.DropWindowRecord{
				AtMS: trace.MS(d.Clock.Now()), Backend: backendID, Unit: unitID,
				Window: window, Dropped: dropped,
			})
		}
	}
	beCfg.MaxQueue = cfg.MaxQueue
	d.Pool = NewPool(d.Clock, cfg.GPUs, cfg.GPU, devMode, beCfg, func(beID string) backend.CompletionFunc {
		return func(req workload.Request, outcome backend.Outcome, at time.Duration) {
			d.requestDone(req, outcome, at, beID)
		}
	})
	nFE := cfg.Frontends
	if nFE < 1 {
		nFE = 1
	}
	for i := 0; i < nFE; i++ {
		fe := frontend.New(d.Clock, d.Pool.backends, cfg.NetDelay, func(req workload.Request, reason backend.Outcome) {
			if reason == backend.DropUnroutable {
				d.unroutable++
			}
			// Frontend drops never reached a backend; attribution stays
			// empty and the cause identifies the admission path.
			d.requestDone(req, reason, d.Clock.Now(), "")
		})
		fe.SetTracer(d.tracer)
		if cfg.RetryFailures {
			fe.EnableRetry()
		}
		if cfg.RouteLeaseTTL > 0 {
			fe.EnableRouteLease(cfg.RouteLeaseTTL, cfg.ServeStale)
		}
		if cfg.RetryBudget > 0 {
			base := cfg.RetryBackoff
			if base <= 0 {
				base = time.Millisecond
			}
			fe.EnableBackoffRetry(cfg.RetryBudget, base)
		}
		if cfg.BreakerThreshold > 0 {
			cooloff := cfg.BreakerCooloff
			if cooloff <= 0 {
				cooloff = time.Second
			}
			fe.EnableBreakers(cfg.BreakerThreshold, cooloff)
			if d.audit != nil {
				feLabel := fmt.Sprintf("%d", i)
				fe.SetBreakerObserver(func(at time.Duration, beID, from, to string) {
					d.audit.RecordChaos(trace.ChaosRecord{
						AtMS: trace.MS(at), Kind: "breaker",
						Frontend: feLabel, Backend: beID, From: from, To: to,
					})
				})
			}
		}
		if cfg.Admission != nil {
			sids := make([]string, 0, len(cfg.Admission))
			for sid := range cfg.Admission {
				sids = append(sids, sid)
			}
			sort.Strings(sids)
			for _, sid := range sids {
				fe.SetAdmission(sid, cfg.Admission[sid])
			}
			if cfg.AdmissionReserveRate > 0 || cfg.AdmissionReserveBurst > 0 {
				fe.SetAdmissionReserve(cfg.AdmissionReserveRate, cfg.AdmissionReserveBurst)
			}
		}
		d.Frontends = append(d.Frontends, fe)
	}
	d.Frontend = d.Frontends[0]
	d.Sched = globalsched.New(d.Clock, d.Pool, d.Frontends, d.mdb, d.profiles, d.controlConfig())
	return d, nil
}

// dispatch load-balances a request across the frontend replicas.
func (d *Deployment) dispatch(req workload.Request) {
	fe := d.Frontends[d.nextFE]
	d.nextFE = (d.nextFE + 1) % len(d.Frontends)
	fe.Dispatch(req)
}

// ModelDB exposes the deployment's model database, so callers can register
// specialized variants before adding sessions.
func (d *Deployment) ModelDB() *model.DB { return d.mdb }

// RefreshProfiles re-derives profiles after the caller registered new
// models (e.g. specialized families).
func (d *Deployment) RefreshProfiles() error { return d.rebuildProfiles() }

func (d *Deployment) rebuildProfiles() error {
	pdb, err := profiler.CatalogProfiles(d.mdb)
	if err != nil {
		return err
	}
	if d.profiles == nil {
		d.profiles = make(map[string]*profiler.Profile)
	}
	for _, id := range d.mdb.IDs() {
		if p, err := pdb.Get(id, d.cfg.GPU); err == nil {
			d.profiles[id] = p
		}
	}
	return nil
}

// Tracer returns the deployment's lifecycle tracer (nil unless enabled
// via Config.TraceCapacity).
func (d *Deployment) Tracer() *trace.Tracer { return d.tracer }

// Audit returns the control-plane audit log (nil unless enabled via
// Config.Audit).
func (d *Deployment) Audit() *trace.Audit { return d.audit }

// Telemetry returns the live telemetry collector (nil unless enabled via
// Config.Telemetry).
func (d *Deployment) Telemetry() *telemetry.Collector { return d.telem }

// Flight returns the anomaly-triggered flight recorder (nil unless enabled
// via Config.Forensics).
func (d *Deployment) Flight() *forensics.Recorder { return d.flight }

// runtimeConfig maps the system kind to backend behaviour (§7.2).
func (d *Deployment) runtimeConfig() (backend.Config, gpusim.Mode) {
	var policy backend.DropPolicy = backend.LazyDrop{}
	switch d.cfg.System {
	case Nexus, NexusParallel:
		if d.cfg.Features.EarlyDrop {
			policy = backend.EarlyDrop{}
		}
	}
	switch d.cfg.System {
	case Nexus:
		return backend.Config{
			Policy:       policy,
			Overlap:      d.cfg.Features.Overlap,
			Discipline:   backend.RoundRobin,
			DeferDropped: d.cfg.DeferDropped,
		}, gpusim.Exclusive
	case NexusParallel:
		return backend.Config{
			Policy:       policy,
			Overlap:      d.cfg.Features.Overlap,
			Discipline:   backend.Parallel,
			DeferDropped: d.cfg.DeferDropped,
		}, gpusim.Shared
	case Clipper:
		// Independent containers per model interleaving on the GPU.
		return backend.Config{
			Policy:     backend.LazyDrop{},
			Overlap:    false,
			Discipline: backend.Parallel,
		}, gpusim.Shared
	case TFServing:
		// One process executing models round-robin, no deadline awareness
		// beyond a safe max batch, serial pre/post-processing.
		return backend.Config{
			Policy:     backend.LazyDrop{},
			Overlap:    false,
			Discipline: backend.RoundRobin,
		}, gpusim.Exclusive
	default:
		return backend.Config{}, gpusim.Exclusive
	}
}

// controlConfig maps the system kind to control-plane behaviour.
func (d *Deployment) controlConfig() globalsched.Config {
	beCfg, _ := d.runtimeConfig()
	netDelay := d.cfg.NetDelay
	if netDelay < 0 {
		netDelay = frontend.DefaultNetDelay
	}
	spec, err := profiler.Spec(d.cfg.GPU)
	if err != nil {
		spec = profiler.Specs()[profiler.GTX1080Ti]
	}
	cfg := globalsched.Config{
		Epoch:       d.cfg.Epoch,
		Incremental: true,
		OnEpoch:     d.cfg.OnEpoch,
		Sched: scheduler.Config{
			GPUMemBytes:      spec.MemBytes,
			Placement:        d.cfg.Placement,
			SliceGranularity: d.cfg.SliceGranularity,
		},
		Overlap:        beCfg.Overlap,
		CPUWorkers:     beCfg.CPUWorkers,
		SpreadReplicas: d.cfg.FixedCluster,
		// Slack for the dispatch hop plus event-granularity margin.
		PlanningSlack: 2*netDelay + 2*time.Millisecond,
	}
	if d.cfg.PlanningSlack != 0 {
		cfg.PlanningSlack = d.cfg.PlanningSlack
	}
	switch d.cfg.System {
	case Nexus, NexusParallel:
		cfg.QueryAnalysis = d.cfg.Features.QueryAnalysis
		cfg.PrefixBatch = d.cfg.Features.PrefixBatch
		cfg.Squishy = d.cfg.Features.Squishy
		if !cfg.Squishy {
			cfg.ObliviousGPUs = d.cfg.GPUs
		}
	case Clipper, TFServing:
		// §7.2: batch-oblivious scheduler, even latency splits, whole-model
		// granularity.
		cfg.QueryAnalysis = false
		cfg.PrefixBatch = false
		cfg.Squishy = false
		cfg.ObliviousGPUs = d.cfg.GPUs
	}
	// Control-plane scaling knobs are orthogonal to the system kind.
	cfg.Shards = d.cfg.PlannerShards
	cfg.PlanHysteresis = d.cfg.PlanHysteresis
	cfg.DeltaRouting = d.cfg.DeltaRouting
	cfg.RecoveryMaxRouteChanges = d.cfg.RecoveryMaxRouteChanges
	// Failure detection is orthogonal to the system kind.
	cfg.Heartbeat = d.cfg.Heartbeat
	cfg.LeaseMisses = d.cfg.LeaseMisses
	cfg.OnFailure = d.cfg.OnFailure
	cfg.Audit = d.audit
	if d.telem != nil {
		cfg.PlanWallClock = d.telem.WallTimings()
		// Capture the per-epoch health report before handing the epoch to
		// the user's observer.
		userOnEpoch := cfg.OnEpoch
		cfg.OnEpoch = func(epoch int, stats scheduler.MoveStats, gpusInUse int) {
			d.telem.AddHealth(d.Sched.Explain())
			if userOnEpoch != nil {
				userOnEpoch(epoch, stats, gpusInUse)
			}
		}
	}
	return cfg
}

// AddSession adds a standalone session and its arrival process (nil proc =
// uniform arrivals at the expected rate).
func (d *Deployment) AddSession(spec globalsched.SessionSpec, proc workload.Process) error {
	if err := d.Sched.AddSession(spec); err != nil {
		return err
	}
	if proc == nil {
		proc = workload.Uniform{Rate: spec.ExpectedRate}
	}
	d.loads = append(d.loads, sessionLoad{spec: spec, proc: proc})
	return nil
}

// AddQuery adds a complex query load (nil proc = uniform arrivals at the
// expected root rate). Stage fan-out follows the query's gammas.
func (d *Deployment) AddQuery(spec globalsched.QuerySpec, proc workload.Process) error {
	if err := d.Sched.AddQuery(spec); err != nil {
		return err
	}
	if proc == nil {
		proc = workload.Uniform{Rate: spec.ExpectedRate}
	}
	d.queryLoads = append(d.queryLoads, queryLoad{spec: spec, proc: proc})
	d.indexQuery(spec)
	return nil
}

// indexQuery records stage metadata for completion-driven fan-out.
func (d *Deployment) indexQuery(spec globalsched.QuerySpec) {
	q := spec.Query
	var walk func(n *queryopt.Node)
	walk = func(n *queryopt.Node) {
		d.stageSessions[q.Name+"/"+n.Name] = true
		meta := &stageMeta{queryName: q.Name}
		for _, e := range n.Edges {
			meta.children = append(meta.children, stageChild{
				session: q.Name + "/" + e.Child.Name,
				gamma:   e.Gamma,
			})
			walk(e.Child)
		}
		d.queryMeta[q.Name+"/"+n.Name] = meta
	}
	walk(q.Root)
}

// Run executes the deployment for the given duration of virtual time
// (after warmup) and returns the end-to-end bad rate across standalone
// sessions and queries.
func (d *Deployment) Run(duration time.Duration) (float64, error) {
	if err := d.Sched.RunEpoch(); err != nil {
		return 0, err
	}
	d.Sched.Start()
	horizon := d.cfg.Warmup + duration
	// Statistics begin after warmup.
	d.Clock.At(d.cfg.Warmup, func() { d.collecting = true })
	// Start generators (kept so fault injection can modulate their rates).
	for _, l := range d.loads {
		l := l
		d.gens = append(d.gens, workload.Start(d.Clock, d.rng, l.spec.ID, l.spec.SLO, l.proc, horizon, func(r workload.Request) {
			d.dispatchStandalone(r)
		}))
	}
	for _, ql := range d.queryLoads {
		ql := ql
		// The generator's SLO field is the whole-query SLO; per-stage
		// deadlines are assigned at dispatch.
		d.gens = append(d.gens, workload.Start(d.Clock, d.rng, ql.spec.Query.Name, ql.spec.Query.SLO, ql.proc, horizon, func(r workload.Request) {
			d.startQuery(ql.spec, r)
		}))
	}
	// GPU usage sampling.
	sampler := d.Clock.StartTicker(time.Second, func() {
		d.GPUsUsed.Add(d.Clock.Now(), float64(d.Pool.InUse()))
	})
	// Telemetry sampling, aligned to the end of warmup so window deltas
	// never straddle the uncounted fill phase.
	var telemTicker *simclock.Ticker
	if d.telem != nil {
		iv := d.telem.Interval()
		telemTicker = d.Clock.StartTickerAt(d.cfg.Warmup+iv, iv, d.telemSample.sample)
	}
	d.Clock.RunUntil(horizon)
	sampler.Stop()
	if telemTicker != nil {
		telemTicker.Stop()
	}
	d.Sched.Stop()
	// Drain in-flight work so counts settle.
	d.Clock.Run()
	if d.telem != nil {
		// One final sample after the drain so the last snapshot carries the
		// settled totals.
		d.telemSample.sample()
	}
	return d.BadRate(), nil
}

// BadRate returns the overall fraction of finished work that was bad:
// standalone session requests plus whole-query outcomes. Query stage
// invocations are folded into their query outcome, not counted separately.
func (d *Deployment) BadRate() float64 {
	sent, bad := d.totals()
	if sent == 0 {
		return 0
	}
	return float64(bad) / float64(sent)
}

// Goodput returns good completions per second of measured time: standalone
// requests plus whole queries served within their SLOs.
func (d *Deployment) Goodput(measured time.Duration) float64 {
	sent, bad := d.totals()
	return float64(sent-bad) / measured.Seconds()
}

func (d *Deployment) totals() (sent, bad uint64) {
	for _, sid := range d.Recorder.SessionIDs() {
		if d.stageSessions[sid] {
			continue
		}
		s := d.Recorder.Session(sid)
		sent += s.Sent
		bad += s.Bad()
	}
	for _, qs := range d.queryStats {
		sent += qs.Sent
		bad += qs.Bad()
	}
	return sent, bad
}

// QueryStats returns end-to-end outcomes for a query by name.
func (d *Deployment) QueryStats(name string) *metrics.SessionStats {
	qs, ok := d.queryStats[name]
	if !ok {
		qs = &metrics.SessionStats{}
		d.queryStats[name] = qs
	}
	return qs
}

// Unroutable returns the number of frontend admission-control drops.
func (d *Deployment) Unroutable() uint64 { return d.unroutable }

// AvgGPUsUsed returns the mean sampled GPU usage.
func (d *Deployment) AvgGPUsUsed() float64 {
	n := d.GPUsUsed.Len()
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.GPUsUsed.Mean(i)
	}
	return sum / float64(n)
}

// nextID allocates a deployment-unique request ID.
func (d *Deployment) nextID() uint64 {
	d.seq++
	return d.seq
}

func (d *Deployment) dispatchStandalone(r workload.Request) {
	r.ID = d.nextID()
	if d.collecting {
		d.Recorder.Session(r.Session).Sent++
		d.Arrivals.Add(d.Clock.Now(), 1)
	} else {
		// Still count it as in-flight work but not in stats: mark by
		// tracking zero; simplest is to tag via map of ignored IDs. Marked
		// before recording, so the tracer's warmup filter sees it.
		d.ignored[r.ID] = struct{}{}
	}
	d.tracer.Record(trace.Event{At: d.Clock.Now(), Kind: trace.Arrive, ReqID: r.ID, Session: r.Session})
	d.dispatch(r)
}

// requestDone is the single completion sink for all backends and the
// frontend's drop path. beID names the backend that reported the outcome
// ("" for frontend-side drops that never reached one).
func (d *Deployment) requestDone(req workload.Request, outcome backend.Outcome, at time.Duration, beID string) {
	if _, skip := d.ignored[req.ID]; skip {
		delete(d.ignored, req.ID)
		return
	}
	if qi, ok := d.queryTrack[req.ID]; ok {
		delete(d.queryTrack, req.ID)
		d.stageDone(qi, req, outcome, at, beID)
		return
	}
	s := d.Recorder.Session(req.Session)
	d.traceDone(req, outcome, at, beID)
	bad := true
	switch {
	case outcome.Bad():
		d.countLoss(s, outcome)
		d.BadEvts.Add(at, 1)
	case at > req.Deadline:
		s.Missed++
		s.Completed++
		s.Latency.Record(at - req.Arrival)
		d.BadEvts.Add(at, 1)
	default:
		s.Completed++
		s.Latency.Record(at - req.Arrival)
		d.GoodEvts.Add(at, 1)
		bad = false
	}
	d.markTimeline(req.Session, bad, at)
}

// traceDone records a request's terminal trace event: a Drop carrying its
// cause (the outcome taxonomy name) and the backend that reported it, or a
// Complete. Dur is total time in system.
func (d *Deployment) traceDone(req workload.Request, outcome backend.Outcome, at time.Duration, beID string) {
	if d.tracer == nil {
		return
	}
	if outcome.Bad() {
		d.tracer.Record(trace.Event{At: at, Kind: trace.Drop, ReqID: req.ID, Session: req.Session,
			Backend: beID, Cause: outcome.String(), Dur: at - req.Arrival})
	} else {
		d.tracer.Record(trace.Event{At: at, Kind: trace.Complete, ReqID: req.ID, Session: req.Session,
			Backend: beID, Dur: at - req.Arrival})
	}
}

// countLoss increments the loss counter matching the outcome.
func (d *Deployment) countLoss(s *metrics.SessionStats, outcome backend.Outcome) {
	switch outcome {
	case backend.DropDeadline:
		s.Dropped++
	case backend.DropUnroutable:
		s.Unroutable++
	case backend.DropReconfig:
		s.Reconfig++
	case backend.DropOverload:
		s.Overload++
	case backend.DropFailure:
		s.Failed++
	case backend.DropAdmission:
		s.Admission++
	default:
		s.Dropped++
	}
}

// markTimeline records one completion on the session's good/bad series
// (no-op unless Config.SessionTimelines).
func (d *Deployment) markTimeline(session string, bad bool, at time.Duration) {
	if d.sessGood == nil {
		return
	}
	m := d.sessGood
	if bad {
		m = d.sessBad
	}
	ts, ok := m[session]
	if !ok {
		ts = metrics.NewTimeSeries(time.Second)
		m[session] = ts
	}
	ts.Add(at, 1)
}

// SessionTimeline returns a session's per-second good/bad completion
// series (nil unless Config.SessionTimelines; a series is nil until the
// session sees a completion of that kind).
func (d *Deployment) SessionTimeline(session string) (good, bad *metrics.TimeSeries) {
	return d.sessGood[session], d.sessBad[session]
}
