package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"nexus/internal/globalsched"
	"nexus/internal/model"
	"nexus/internal/runner"
)

// shardGolden runs a small mixed deployment under a given control-plane
// configuration and serializes everything the sharded planner could
// perturb: the final plan, every frontend routing table, and the audit
// placement log.
func shardGolden(t *testing.T, shards, workers int, hysteresis float64, delta bool) []byte {
	t.Helper()
	prev := runner.SetDefaultWorkers(workers)
	defer runner.SetDefaultWorkers(prev)
	d, err := New(Config{
		System: Nexus, Features: AllFeatures(), GPUs: 12, Seed: 42,
		Epoch: 10 * time.Second, Audit: true,
		PlannerShards: shards, PlanHysteresis: hysteresis, DeltaRouting: delta,
	})
	if err != nil {
		t.Fatal(err)
	}
	models := []string{model.ResNet50, model.GoogLeNetCar, model.Darknet53}
	for i := 0; i < 6; i++ {
		if err := d.AddSession(globalsched.SessionSpec{
			ID:           fmt.Sprintf("s%d", i),
			ModelID:      models[i%len(models)],
			SLO:          time.Duration(100+50*(i%3)) * time.Millisecond,
			ExpectedRate: 40 + 25*float64(i%4),
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Run(25 * time.Second); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(d.Sched.Plan()); err != nil {
		t.Fatal(err)
	}
	for _, fe := range d.Frontends {
		if err := enc.Encode(fe.TableSnapshot()); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Audit().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardDeterminism is the sharded control plane's golden contract,
// run under -race in CI:
//
//   - Shards=1 with incremental planning off is byte-identical to the
//     monolithic planner — plans, routing tables, and audit records —
//     so every pre-sharding golden stays valid.
//   - At any shard count, output is byte-identical across repeated runs
//     and across runner worker counts: parallelism must never leak into
//     what the planner decides.
func TestShardDeterminism(t *testing.T) {
	mono := shardGolden(t, 0, 1, 0, false)
	for _, workers := range []int{1, 8} {
		if got := shardGolden(t, 1, workers, 0, false); !bytes.Equal(got, mono) {
			t.Fatalf("shards=1 workers=%d diverges from the monolithic golden", workers)
		}
	}
	for _, shards := range []int{2, 8} {
		base := shardGolden(t, shards, 1, 0.05, true)
		if again := shardGolden(t, shards, 1, 0.05, true); !bytes.Equal(base, again) {
			t.Fatalf("shards=%d differs across identical serial runs", shards)
		}
		for _, workers := range []int{2, 8} {
			if par := shardGolden(t, shards, workers, 0.05, true); !bytes.Equal(base, par) {
				t.Fatalf("shards=%d differs between workers=1 and workers=%d", shards, workers)
			}
		}
	}
}
