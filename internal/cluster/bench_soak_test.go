package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"nexus/internal/backend"
	"nexus/internal/frontend"
	"nexus/internal/gpusim"
	"nexus/internal/profiler"
	"nexus/internal/simclock"
	"nexus/internal/workload"
)

// Soak geometry: one million sessions placed across a 64-node cluster,
// installed through sharded control-plane delta pushes and then driven one
// request each by concurrent producers on the lock-free dispatch path.
const (
	soakSessions  = 1 << 20
	soakBackends  = 64
	soakUnits     = 16 // execution units per backend; sessions share them
	soakPlanners  = 8  // parallel delta-building control-plane shards
	soakProducers = 8  // concurrent Dispatch goroutines per wave
	soakWave      = 1 << 16
)

func soakProfile() *profiler.Profile {
	p := &profiler.Profile{
		ModelID: "m", GPU: profiler.GTX1080Ti,
		Alpha: 500 * time.Microsecond, Beta: 5 * time.Millisecond,
		MaxBatch: 64, PreprocCPU: 2 * time.Millisecond, PostprocCPU: 500 * time.Microsecond,
		MemBase: 256 << 20, MemPerItem: 1 << 20,
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// soakSession maps session i onto its unit: backends round-robin first, so
// consecutive sessions land on distinct nodes.
func soakRoute(i int) (be, unit int) {
	return i % soakBackends, (i / soakBackends) % soakUnits
}

// BenchmarkSoakMillionSession soaks the full dispatch plane at
// control-plane scale. Each iteration builds a fresh 64-backend cluster,
// installs 2^20 sessions through generation-tracked TableDeltas — one
// shard per parallel planner, pushed in sequence like a sharded control
// plane's epoch output — and then routes one request per session through
// the lock-free Dispatch path, 8 producers at a time, draining the
// simulation clock between waves. Every request must complete (served or
// policy-dropped); anything lost fails the benchmark.
func BenchmarkSoakMillionSession(b *testing.B) {
	prof := soakProfile()

	// Session names and per-shard deltas reference the same route layout;
	// names are hoisted out of the timed region (string formatting is not
	// the system under test).
	names := make([]string, soakSessions)
	for i := range names {
		names[i] = fmt.Sprintf("s%07d", i)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		clock := simclock.New()
		completed := 0
		onDone := func(req backend.Request, outcome backend.Outcome, at time.Duration) { completed++ }

		backends := make(map[string]*backend.Backend, soakBackends)
		units := make([]backend.Unit, soakUnits)
		for u := range units {
			units[u] = backend.Unit{ID: fmt.Sprintf("u%02d", u), Profile: prof, TargetBatch: 32}
		}
		for n := 0; n < soakBackends; n++ {
			beID := fmt.Sprintf("b%02d", n)
			dev := gpusim.New(clock, "gpu-"+beID, profiler.GTX1080Ti, gpusim.Exclusive)
			be := backend.New(beID, clock, dev, backend.Config{Overlap: true, Discipline: backend.RoundRobin}, onDone)
			if err := be.Configure(units); err != nil {
				b.Fatal(err)
			}
			backends[beID] = be
		}
		fe := frontend.New(clock, backends, 500*time.Microsecond, nil)
		clock.RunUntil(30 * time.Second) // model loads

		// Control plane: planners build their session shards in parallel,
		// then push them as one generation-tracked delta each.
		deltas := make([]frontend.TableDelta, soakPlanners)
		var wg sync.WaitGroup
		for p := 0; p < soakPlanners; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				lo := p * soakSessions / soakPlanners
				hi := (p + 1) * soakSessions / soakPlanners
				set := make(map[string][]frontend.Route, hi-lo)
				for i := lo; i < hi; i++ {
					bn, un := soakRoute(i)
					set[names[i]] = []frontend.Route{{
						BackendID: fmt.Sprintf("b%02d", bn),
						UnitID:    fmt.Sprintf("u%02d", un),
						Weight:    1,
					}}
				}
				deltas[p] = frontend.TableDelta{FromGen: uint64(p), Gen: uint64(p + 1), Set: set}
			}(p)
		}
		wg.Wait()
		for _, d := range deltas {
			if err := fe.ApplyDelta(d); err != nil {
				b.Fatal(err)
			}
		}

		// Data plane: one request per session, soakProducers dispatching
		// concurrently, clock drained after each wave. Dispatchers never
		// overlap clock event execution — the contract Dispatch documents.
		var reqID uint64
		for base := 0; base < soakSessions; base += soakWave {
			end := base + soakWave
			if end > soakSessions {
				end = soakSessions
			}
			now := clock.Now()
			for p := 0; p < soakProducers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					lo := base + p*(end-base)/soakProducers
					hi := base + (p+1)*(end-base)/soakProducers
					for i := lo; i < hi; i++ {
						fe.Dispatch(workload.Request{
							ID: reqID + uint64(i-base), Session: names[i],
							Arrival: now, Deadline: now + 10*time.Second,
						})
					}
				}(p)
			}
			wg.Wait()
			reqID += uint64(end - base)
			clock.Run()
		}

		if got := fe.Dispatches(); got != soakSessions {
			b.Fatalf("dispatched %d of %d", got, soakSessions)
		}
		if completed != soakSessions {
			b.Fatalf("completed %d of %d requests", completed, soakSessions)
		}
	}
}
