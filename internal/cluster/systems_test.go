package cluster

import (
	"fmt"
	"testing"
	"time"

	"nexus/internal/backend"
	"nexus/internal/globalsched"
	"nexus/internal/gpusim"
	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/queryopt"
	"nexus/internal/simclock"
	"nexus/internal/workload"
)

// TestAllSystemsServe smoke-tests every system kind end to end at an easy
// load: all must serve with a low bad rate.
func TestAllSystemsServe(t *testing.T) {
	for _, sys := range []System{Nexus, NexusParallel, Clipper, TFServing} {
		sys := sys
		t.Run(string(sys), func(t *testing.T) {
			d, err := New(Config{System: sys, Features: AllFeatures(), GPUs: 4, Seed: 3, Epoch: 10 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.AddSession(globalsched.SessionSpec{
				ID: "s", ModelID: model.GoogLeNetCar, SLO: 100 * time.Millisecond, ExpectedRate: 100,
			}, nil); err != nil {
				t.Fatal(err)
			}
			bad, err := d.Run(10 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if bad > 0.02 {
				t.Fatalf("%s bad rate %.4f at easy load", sys, bad)
			}
			if d.Recorder.Session("s").Sent < 900 {
				t.Fatalf("%s served only %d requests", sys, d.Recorder.Session("s").Sent)
			}
		})
	}
}

// TestFixedClusterSpreadsAndImprovesBursts: with a fixed cluster, spreading
// spare GPUs absorbs Poisson bursts better than leaving them idle.
func TestFixedClusterSpreads(t *testing.T) {
	run := func(fixed bool) (float64, float64) {
		d, err := New(Config{
			System: Nexus, Features: AllFeatures(), GPUs: 8, Seed: 5,
			Epoch: 10 * time.Second, FixedCluster: fixed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.AddSession(globalsched.SessionSpec{
			ID: "s", ModelID: model.InceptionV3, SLO: 60 * time.Millisecond, ExpectedRate: 2500,
		}, workload.Poisson{Rate: 2500}); err != nil {
			t.Fatal(err)
		}
		bad, err := d.Run(15 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return bad, d.AvgGPUsUsed()
	}
	badElastic, gpusElastic := run(false)
	badFixed, gpusFixed := run(true)
	if gpusFixed <= gpusElastic {
		t.Fatalf("fixed cluster did not use more GPUs: %.1f vs %.1f", gpusFixed, gpusElastic)
	}
	if badFixed > badElastic+0.001 {
		t.Fatalf("spreading worsened bad rate: %.4f vs %.4f", badFixed, badElastic)
	}
}

// TestDeferDroppedDeployment: cluster-level defer mode turns burst drops
// into late completions.
func TestDeferDroppedDeployment(t *testing.T) {
	run := func(deferMode bool) (dropped, missed uint64) {
		d, err := New(Config{
			System: Nexus, Features: AllFeatures(), GPUs: 1, Seed: 9,
			Epoch: 10 * time.Second, DeferDropped: deferMode,
		})
		if err != nil {
			t.Fatal(err)
		}
		sched := workload.Burst(500, 1800, 8*time.Second, 12*time.Second)
		if err := d.AddSession(globalsched.SessionSpec{
			ID: "s", ModelID: model.InceptionV3, SLO: 100 * time.Millisecond, ExpectedRate: 500,
		}, workload.Modulated{RateAt: sched.RateAt}); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		st := d.Recorder.Session("s")
		return st.Dropped, st.Missed
	}
	drop0, _ := run(false)
	drop1, miss1 := run(true)
	if drop0 == 0 {
		t.Fatal("setup: burst should cause drops without defer")
	}
	if drop1 >= drop0 {
		t.Fatalf("defer did not reduce drops: %d vs %d", drop1, drop0)
	}
	if miss1 == 0 {
		t.Fatal("defer mode produced no late completions")
	}
}

// TestManySessionsManyModels drives a wide, mixed deployment end to end.
func TestManySessionsManyModels(t *testing.T) {
	d, err := New(Config{System: Nexus, Features: AllFeatures(), GPUs: 24, Seed: 11, Epoch: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	models := []string{
		model.LeNet5, model.VGG7, model.ResNet50, model.InceptionV3,
		model.GoogLeNetCar, model.VGGFace, model.TextCRNN, model.GazeNet,
	}
	slos := []time.Duration{60, 100, 150, 250}
	for i := 0; i < 24; i++ {
		if err := d.AddSession(globalsched.SessionSpec{
			ID:           fmt.Sprintf("s%02d", i),
			ModelID:      models[i%len(models)],
			SLO:          slos[i%len(slos)] * time.Millisecond,
			ExpectedRate: float64(20 + 10*i),
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	bad, err := d.Run(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0.01 {
		t.Fatalf("bad rate %.4f on the wide mix", bad)
	}
	for i := 0; i < 24; i++ {
		if d.Recorder.Session(fmt.Sprintf("s%02d", i)).Sent == 0 {
			t.Fatalf("session s%02d starved", i)
		}
	}
}

// TestDeepQueryChain runs the 5-stage logo-like chain end to end.
func TestDeepQueryChain(t *testing.T) {
	d, err := New(Config{System: Nexus, Features: AllFeatures(), GPUs: 16, Seed: 13, Epoch: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddQuery(globalsched.QuerySpec{
		Query:        logoLikeQuery(),
		ExpectedRate: 10,
	}, nil); err != nil {
		t.Fatal(err)
	}
	bad, err := d.Run(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0.05 {
		t.Fatalf("deep chain bad rate %.4f", bad)
	}
	qs := d.QueryStats("deep")
	if qs.Sent == 0 || qs.Completed != qs.Sent {
		t.Fatalf("query accounting off: %+v", qs)
	}
}

func logoLikeQuery() *queryopt.Query {
	return &queryopt.Query{
		Name: "deep", SLO: time.Second,
		Root: &queryopt.Node{Name: "s1", ModelID: model.SSD, Edges: []queryopt.Edge{
			{Gamma: 2, Child: &queryopt.Node{Name: "s2", ModelID: model.OpenPose, Edges: []queryopt.Edge{
				{Gamma: 0.8, Child: &queryopt.Node{Name: "s3", ModelID: model.InceptionV3, Edges: []queryopt.Edge{
					{Gamma: 0.5, Child: &queryopt.Node{Name: "s4", ModelID: model.TextCRNN, Edges: []queryopt.Edge{
						{Gamma: 1, Child: &queryopt.Node{Name: "s5", ModelID: model.LeNet5}},
					}}},
				}}},
			}}},
		}},
	}
}

// TestDistributedFrontends load-balances across multiple frontends; rate
// observation still aggregates correctly at the control plane.
func TestDistributedFrontends(t *testing.T) {
	d, err := New(Config{
		System: Nexus, Features: AllFeatures(), GPUs: 4, Seed: 3,
		Epoch: 10 * time.Second, Frontends: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Frontends) != 3 {
		t.Fatalf("frontends = %d", len(d.Frontends))
	}
	if err := d.AddSession(globalsched.SessionSpec{
		ID: "s", ModelID: model.ResNet50, SLO: 100 * time.Millisecond, ExpectedRate: 600,
	}, nil); err != nil {
		t.Fatal(err)
	}
	bad, err := d.Run(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0.01 {
		t.Fatalf("bad rate %.4f with 3 frontends", bad)
	}
	// The scale-up path (observed-rate aggregation across frontends) must
	// keep serving the full rate: p99 within SLO.
	st := d.Recorder.Session("s")
	if p99 := st.Latency.Quantile(0.99); p99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
}

// TestDeterminism: identical seeds reproduce identical statistics; a
// different seed produces a different trajectory. This is the property all
// experiment reproducibility rests on.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) (uint64, uint64, time.Duration) {
		d, err := New(Config{System: Nexus, Features: AllFeatures(), GPUs: 4, Seed: seed, Epoch: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.AddSession(globalsched.SessionSpec{
			ID: "s", ModelID: model.InceptionV3, SLO: 100 * time.Millisecond, ExpectedRate: 900,
		}, workload.Poisson{Rate: 900}); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		st := d.Recorder.Session("s")
		return st.Sent, st.Good(), st.Latency.Quantile(0.99)
	}
	s1, g1, p1 := run(42)
	s2, g2, p2 := run(42)
	if s1 != s2 || g1 != g2 || p1 != p2 {
		t.Fatalf("same seed diverged: (%d,%d,%v) vs (%d,%d,%v)", s1, g1, p1, s2, g2, p2)
	}
	s3, _, _ := run(43)
	if s3 == s1 {
		t.Fatal("different seeds produced identical arrival counts (suspicious)")
	}
}

func TestPoolRecyclesReleasedBackends(t *testing.T) {
	clock := simclock.New()
	pool := NewPool(clock, 2, profiler.GTX1080Ti, gpusim.Exclusive, backend.Config{}, nil)
	id1, _, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	id2, _, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pool.Acquire(); err == nil {
		t.Fatal("over-capacity acquire succeeded")
	}
	pool.Release(id1)
	if pool.InUse() != 1 {
		t.Fatalf("InUse = %d", pool.InUse())
	}
	id3, be3, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id1 {
		t.Fatalf("recycled id = %s, want %s", id3, id1)
	}
	if be3 == nil || pool.Get(id2) == nil {
		t.Fatal("backends lost")
	}
	if pool.Capacity() != 2 {
		t.Fatalf("Capacity = %d", pool.Capacity())
	}
}
