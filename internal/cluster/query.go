package cluster

import (
	"time"

	"nexus/internal/backend"
	"nexus/internal/globalsched"
	"nexus/internal/trace"
	"nexus/internal/workload"
)

// startQuery begins one end-to-end query: dispatch the root stage and
// track the instance until every spawned stage resolves.
func (d *Deployment) startQuery(spec globalsched.QuerySpec, arrival workload.Request) {
	q := spec.Query
	rootSession := q.Name + "/" + q.Root.Name
	qi := &queryInstance{
		queryName:   q.Name,
		deadline:    arrival.Arrival + q.SLO,
		outstanding: 0,
	}
	if d.collecting {
		d.QueryStats(q.Name).Sent++
		d.Arrivals.Add(d.Clock.Now(), 1)
	} else {
		qi.queryName = "" // warmup instance: not measured
	}
	d.dispatchStage(qi, rootSession)
}

// dispatchStage sends one stage invocation of a query instance. The
// request carries the whole-query deadline: per-stage latency budgets are
// a planning construct for provisioning (§6.2), while the data plane drops
// a stage invocation only when the query itself can no longer make it —
// slack left over by fast upstream stages absorbs the bursts that
// downstream stages see when a parent batch completes.
func (d *Deployment) dispatchStage(qi *queryInstance, session string) {
	req := workload.Request{
		ID:       d.nextID(),
		Session:  session,
		Arrival:  d.Clock.Now(),
		Deadline: qi.deadline,
	}
	// Track before recording: the tracer's warmup filter identifies warmup
	// query stages through the tracking entry.
	qi.outstanding++
	d.queryTrack[req.ID] = qi
	d.tracer.Record(trace.Event{At: d.Clock.Now(), Kind: trace.Arrive, ReqID: req.ID, Session: session})
	d.dispatch(req)
}

// stageDone handles completion of one stage invocation. beID names the
// backend that reported it ("" for frontend-side drops).
func (d *Deployment) stageDone(qi *queryInstance, req workload.Request, outcome backend.Outcome, at time.Duration, beID string) {
	qi.outstanding--
	lost := outcome.Bad()
	if qi.queryName != "" {
		// Warmup instances stay out of the trace, mirroring the metrics.
		d.traceDone(req, outcome, at, beID)
	}
	// Per-stage accounting (stage sessions also show up in the recorder).
	if qi.queryName != "" {
		s := d.Recorder.Session(req.Session)
		s.Sent++
		switch {
		case lost:
			d.countLoss(s, outcome)
		case at > req.Deadline:
			s.Missed++
			s.Completed++
			s.Latency.Record(at - req.Arrival)
		default:
			s.Completed++
			s.Latency.Record(at - req.Arrival)
		}
	}
	if lost {
		qi.bad = true
	} else {
		// Fan out to children; gamma is fractional, accumulated per stage
		// via a deterministic carry so long-run fan-out matches exactly.
		if meta, ok := d.queryMeta[req.Session]; ok {
			for ci := range meta.children {
				n := d.fanOut(req.Session, ci)
				for k := 0; k < n; k++ {
					d.dispatchStage(qi, meta.children[ci].session)
				}
			}
		}
		if at > qi.deadline {
			qi.bad = true
		}
	}
	if qi.outstanding == 0 {
		d.finishQuery(qi)
	}
}

// fanOut returns how many child invocations this completion spawns,
// carrying the fractional part forward deterministically.
func (d *Deployment) fanOut(session string, childIdx int) int {
	meta := d.queryMeta[session]
	c := &meta.children[childIdx]
	c.carry += c.gamma
	n := int(c.carry)
	c.carry -= float64(n)
	return n
}

// finishQuery records the end-to-end outcome.
func (d *Deployment) finishQuery(qi *queryInstance) {
	if qi.queryName == "" {
		return // warmup instance, not measured
	}
	qs := d.QueryStats(qi.queryName)
	qs.Completed++
	if qi.bad {
		qs.Missed++
		d.BadEvts.Add(d.Clock.Now(), 1)
	} else {
		d.GoodEvts.Add(d.Clock.Now(), 1)
	}
}
