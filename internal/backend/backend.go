package backend

import (
	"fmt"
	"time"

	"nexus/internal/gpusim"
	"nexus/internal/profiler"
	"nexus/internal/simclock"
)

// Discipline is how a backend arbitrates its units on the GPU.
type Discipline int

const (
	// RoundRobin cycles through units, one batch at a time — the Nexus GPU
	// scheduler (§6.3 "GPU Multiplexing") and our TF-Serving stand-in.
	RoundRobin Discipline = iota
	// Parallel lets every unit issue work independently — Clipper's
	// one-container-per-model behaviour and the "Nexus-parallel" ablation
	// of Figure 14. Pair with a Shared-mode device to model interference.
	Parallel
)

// Config selects the runtime features under test (the ablation switches of
// §7.3: ED = early drop, OL = overlapped processing).
type Config struct {
	Policy     DropPolicy // nil = EarlyDrop
	Overlap    bool       // overlap CPU pre/post-processing with GPU work
	CPUWorkers int        // preprocessing thread pool size; 0 = 5 (§6.3)
	Discipline Discipline
	// MaxQueue bounds each unit's queue; Enqueue returns ErrQueueFull at
	// capacity. 0 = unbounded (the default; the drop policy sheds load).
	MaxQueue int
	// OnBatch, when set, observes every batch assembled for the GPU, with
	// the backend's incarnation and the batch's planned GPU latency
	// (tracing hook; must not mutate the batch).
	OnBatch func(backendID, unitID string, batch []Request, inc uint64, gpuTime time.Duration)
	// OnDropWindow, when set, observes every drop-policy cull: the window
	// (target batch size) the policy was anchoring and how many queued
	// requests it shed (audit hook).
	OnDropWindow func(backendID, unitID string, window, dropped int)
	// DeferDropped enables the paper's alternative service model (§5):
	// requests that miss their deadline window are executed later at low
	// priority instead of being discarded — they complete late (counted
	// as missed, not dropped) whenever the GPU would otherwise idle.
	DeferDropped bool
}

// maxDeferred bounds each unit's low-priority queue; beyond it, deferred
// requests are really dropped.
const maxDeferred = 4096

// Unit is one schedulable entity on a backend: a session, or a prefix
// group of sessions batched together (§6.3 "Prefix Batching").
type Unit struct {
	ID          string
	Profile     *profiler.Profile
	TargetBatch int
	// Members lists the session IDs served by this unit (for stats); empty
	// means the unit serves the session named by ID.
	Members []string
	// Prefix/Suffix, when both set, make this a prefix-batched group
	// (§6.3): a batch executes the shared prefix once at full batch size,
	// then one suffix invocation per member session actually present in
	// the batch. Profile remains the conservative combined profile used
	// for dispatch estimates.
	Prefix *profiler.Profile
	Suffix *profiler.Profile
	// Slice, when positive, pins the unit to a fractional-SM compute
	// partition of that fraction instead of the shared round-robin round:
	// the unit batches independently and runs concurrently with the other
	// units. Profile should already be scaled for the slice
	// (profiler.SliceProfile); the device adds co-residency interference
	// dynamically.
	Slice float64
}

// CompletionFunc observes every finished or lost request with its outcome.
type CompletionFunc func(req Request, outcome Outcome, completedAt time.Duration)

// Backend is one GPU worker node.
type Backend struct {
	ID    string
	clock *simclock.Clock
	dev   *gpusim.Device
	cfg   Config

	units  []*unitState
	byID   map[string]*unitState
	onDone CompletionFunc

	rrIdx     int
	rrRunning bool

	lastGPUEnd time.Duration
	// batches/items track executed batch statistics.
	batches uint64
	items   uint64

	// partSeq names compute partitions uniquely across reconfigurations, so
	// a new slice for a unit never collides with its draining predecessor.
	partSeq uint64

	// failed marks a crashed node: it serves nothing, rejects enqueues,
	// and stops heartbeating until Restart.
	failed bool
	// inc is the incarnation counter, bumped on every crash; batch
	// completions from a previous incarnation report their requests as
	// failures instead of resuming the old execution chain.
	inc uint64

	hb       *simclock.Ticker
	hbPeriod time.Duration

	// rrStepFn is b.stepRR bound once, so the round-robin loop does not
	// materialize a fresh method value per executed batch.
	rrStepFn func()
	// runPool recycles batchRun state (and its bound callbacks) across
	// batches; the data plane allocates nothing per batch at steady state.
	runPool []*batchRun
	// memberCnt is gpuTime's per-session scratch, reused across batches.
	memberCnt map[string]int
}

type unitState struct {
	Unit
	queue    Queue
	deferred Queue // low-priority overflow when DeferDropped is on
	ready    bool
	running  bool // Parallel discipline or spatial slice: a batch is in flight
	// part is the compute partition a spatial unit (Slice > 0) executes
	// on; nil for temporal units.
	part *gpusim.Partition
	// est is the unit's batch-latency estimator, allocated once so the
	// dispatch loop does not rebuild a closure per Pick call.
	est func(int) time.Duration
	// resume restarts the unit's Parallel-discipline loop after a batch,
	// allocated once for the same reason.
	resume func()
}

// New creates a backend on the given device.
func New(id string, clock *simclock.Clock, dev *gpusim.Device, cfg Config, onDone CompletionFunc) *Backend {
	if cfg.Policy == nil {
		cfg.Policy = EarlyDrop{}
	}
	if cfg.CPUWorkers <= 0 {
		cfg.CPUWorkers = 5
	}
	b := &Backend{
		ID: id, clock: clock, dev: dev, cfg: cfg,
		byID:   make(map[string]*unitState),
		onDone: onDone,
	}
	b.rrStepFn = b.stepRR
	// Batch-run arena: one contiguous block with callbacks bound up front,
	// so the execution pipeline reaches steady state without growing the
	// pool one heap object at a time. runArenaSize covers the in-flight
	// batches of any discipline (RR has one; Parallel has one per unit up
	// to the CPU worker count).
	arena := make([]batchRun, runArenaSize)
	b.runPool = make([]*batchRun, 0, runArenaSize)
	for i := range arena {
		r := &arena[i]
		r.b = b
		r.preFn = r.submitGPU
		r.gpuFn = r.gpuDone
		r.postFn = r.afterPost
		b.runPool = append(b.runPool, r)
	}
	return b
}

// runArenaSize is how many batchRun objects New pre-allocates contiguously.
const runArenaSize = 8

// Device exposes the underlying simulated GPU (for utilization metrics).
func (b *Backend) Device() *gpusim.Device { return b.dev }

// AvgBatchSize returns the mean executed batch size so far.
func (b *Backend) AvgBatchSize() float64 {
	if b.batches == 0 {
		return 0
	}
	return float64(b.items) / float64(b.batches)
}

// UnitIDs returns the configured unit IDs.
func (b *Backend) UnitIDs() []string {
	out := make([]string, len(b.units))
	for i, u := range b.units {
		out[i] = u.ID
	}
	return out
}

// Incarnation returns the backend's crash incarnation counter.
func (b *Backend) Incarnation() uint64 { return b.inc }

// BatchStats returns the cumulative executed batch and item counts (reset
// when the backend is recycled to a new tenant).
func (b *Backend) BatchStats() (batches, items uint64) { return b.batches, b.items }

// QueuedTotal returns the total requests waiting across all unit queues,
// including deferred low-priority overflow.
func (b *Backend) QueuedTotal() int {
	n := 0
	for _, u := range b.units {
		n += u.queue.Len() + u.deferred.Len()
	}
	return n
}

// QueueLen returns the queued request count for a unit (0 if unknown).
func (b *Backend) QueueLen(unitID string) int {
	if u, ok := b.byID[unitID]; ok {
		return u.queue.Len()
	}
	return 0
}

// Configure installs a new unit set. Units whose ID persists keep their
// queue and resident model; new units begin loading their models (which
// takes real time — hundreds of ms, §2.2) and only serve once ready;
// removed units are unloaded and their queued requests dropped.
func (b *Backend) Configure(units []Unit) error {
	if b.failed {
		return fmt.Errorf("backend %s: %w", b.ID, ErrBackendDown)
	}
	newSet := make(map[string]bool, len(units))
	for _, u := range units {
		if u.Profile == nil {
			return fmt.Errorf("backend %s: unit %s has no profile", b.ID, u.ID)
		}
		if u.TargetBatch < 1 {
			return fmt.Errorf("backend %s: unit %s has target batch %d", b.ID, u.ID, u.TargetBatch)
		}
		newSet[u.ID] = true
	}
	// Remove vanished units first to free memory.
	var kept []*unitState
	for _, u := range b.units {
		if newSet[u.ID] {
			kept = append(kept, u)
			continue
		}
		for _, r := range u.queue.PopN(u.queue.Len()) {
			b.complete(r, DropReconfig)
		}
		for _, r := range u.deferred.PopN(u.deferred.Len()) {
			b.complete(r, DropReconfig)
		}
		b.releaseSlice(u)
		b.dev.Unload(u.ID)
		delete(b.byID, u.ID)
	}
	b.units = kept
	for _, nu := range units {
		if existing, ok := b.byID[nu.ID]; ok {
			// A changed slice fraction swaps partitions: the old one drains
			// out (in-flight batches complete on it) while new batches run
			// on the replacement.
			if existing.part != nil && existing.Slice != nu.Slice {
				b.releaseSlice(existing)
			}
			existing.Unit = nu
			if nu.Slice > 0 && existing.part == nil {
				if err := b.attachSlice(existing); err != nil {
					return err
				}
			}
			continue
		}
		us := &unitState{Unit: nu}
		us.est = func(n int) time.Duration { return b.estimate(us, n) }
		us.resume = func() {
			us.running = false
			b.stepUnit(us)
		}
		// Arena sizing from the profiler's dense memo table: no executed
		// batch exceeds MemoBatches, so pre-sizing the ring to two batches'
		// worth and priming two max-size batch slices puts a fresh unit at
		// alloc-free steady state from its first pick.
		memo := nu.Profile.MemoBatches()
		us.queue.Reserve(2 * memo)
		us.queue.PrimeBatches(2, memo)
		if nu.Slice > 0 {
			if err := b.attachSlice(us); err != nil {
				return err
			}
		}
		bytes := nu.Profile.MemBase + int64(nu.TargetBatch)*nu.Profile.MemPerItem
		if err := b.dev.Load(nu.ID, bytes, func() {
			us.ready = true
			b.wake(us)
		}); err != nil {
			return fmt.Errorf("backend %s: %w", b.ID, err)
		}
		b.byID[nu.ID] = us
		b.units = append(b.units, us)
	}
	b.rrIdx = 0
	return nil
}

// attachSlice carves the unit's compute partition out of the device.
func (b *Backend) attachSlice(u *unitState) error {
	b.partSeq++
	part, err := b.dev.Partition(fmt.Sprintf("%s#%d", u.ID, b.partSeq), u.Slice)
	if err != nil {
		return fmt.Errorf("backend %s: unit %s: %w", b.ID, u.ID, err)
	}
	u.part = part
	return nil
}

// releaseSlice hands the unit's partition back to the device; it merges in
// once any in-flight batch drains.
func (b *Backend) releaseSlice(u *unitState) {
	if u.part != nil {
		u.part.Release()
		u.part = nil
	}
}

// SliceStat is the live state of one spatial unit's compute slice, for
// telemetry's per-slice occupancy gauges.
type SliceStat struct {
	UnitID string
	Frac   float64
	Busy   time.Duration // accumulated slice busy time, in-flight included
	Queued int
}

// SliceStats reports every spatial unit's slice in unit order; empty when
// the backend hosts no spatial units.
func (b *Backend) SliceStats() []SliceStat {
	var out []SliceStat
	for _, u := range b.units {
		if u.part == nil {
			continue
		}
		out = append(out, SliceStat{
			UnitID: u.ID,
			Frac:   u.part.Frac,
			Busy:   u.part.BusyTime(),
			Queued: u.queue.Len(),
		})
	}
	return out
}

// Enqueue adds a request to a unit's queue. It fails with ErrBackendDown
// on a crashed node, ErrUnitRemoved when the unit does not exist here (a
// reconfiguration race), and ErrQueueFull at a bounded queue's capacity —
// all wrapped, so callers classify with errors.Is.
func (b *Backend) Enqueue(unitID string, req Request) error {
	if b.failed {
		return fmt.Errorf("backend %s: %w", b.ID, ErrBackendDown)
	}
	u, ok := b.byID[unitID]
	if !ok {
		return fmt.Errorf("backend %s: unit %s: %w", b.ID, unitID, ErrUnitRemoved)
	}
	if b.cfg.MaxQueue > 0 && u.queue.Len() >= b.cfg.MaxQueue {
		return fmt.Errorf("backend %s: unit %s: %w", b.ID, unitID, ErrQueueFull)
	}
	u.queue.Push(req)
	b.wake(u)
	return nil
}

func (b *Backend) complete(r Request, outcome Outcome) {
	if b.onDone != nil {
		b.onDone(r, outcome, b.clock.Now())
	}
}

// Alive reports whether the backend is serving (not crashed).
func (b *Backend) Alive() bool { return !b.failed }

// Fail crashes the backend: every queued and deferred request is lost as a
// failure, resident models are wiped (GPU memory does not survive a node
// crash), and in-flight batches — whose device timers still fire — report
// their requests as failures instead of completing. The node rejects all
// traffic until Restart.
func (b *Backend) Fail() {
	if b.failed {
		return
	}
	b.failed = true
	b.inc++
	for _, u := range b.units {
		for _, r := range u.queue.PopN(u.queue.Len()) {
			b.complete(r, DropFailure)
		}
		for _, r := range u.deferred.PopN(u.deferred.Len()) {
			b.complete(r, DropFailure)
		}
		b.releaseSlice(u)
		b.dev.Unload(u.ID)
	}
	b.units = nil
	b.byID = make(map[string]*unitState)
	b.rrIdx = 0
	b.rrRunning = false
}

// Restart returns a crashed backend to service as a fresh, empty node: no
// units, no resident models. Heartbeats (if started) resume on the next
// tick; the control plane must Configure it before it serves anything.
// A live backend is unchanged.
func (b *Backend) Restart() {
	if !b.failed {
		return
	}
	b.failed = false
	b.lastGPUEnd = 0
}

// Reset drains and clears a live backend before it is recycled to another
// tenant: queued and deferred requests complete as reconfiguration drops,
// units are removed and their models unloaded, and duty-cycle and batch
// statistics are cleared. In-flight batches still complete through their
// own callbacks.
func (b *Backend) Reset() {
	for _, u := range b.units {
		for _, r := range u.queue.PopN(u.queue.Len()) {
			b.complete(r, DropReconfig)
		}
		for _, r := range u.deferred.PopN(u.deferred.Len()) {
			b.complete(r, DropReconfig)
		}
		b.releaseSlice(u)
		b.dev.Unload(u.ID)
	}
	b.units = nil
	b.byID = make(map[string]*unitState)
	b.rrIdx = 0
	b.lastGPUEnd = 0
	b.batches, b.items = 0, 0
}

// StartHeartbeat begins emitting liveness beats every period on the
// simulation clock: sink receives the backend ID at each beat. Beats pause
// while the backend is failed and resume after Restart. Calling it again
// with the same period is a no-op; a different period restarts the ticker.
func (b *Backend) StartHeartbeat(period time.Duration, sink func(id string)) {
	if period <= 0 {
		return
	}
	if b.hb != nil {
		if b.hbPeriod == period {
			return
		}
		b.hb.Stop()
	}
	b.hbPeriod = period
	b.hb = b.clock.StartTicker(period, func() {
		if !b.failed {
			sink(b.ID)
		}
	})
}

// StopHeartbeat cancels heartbeats (no-op when none are running).
func (b *Backend) StopHeartbeat() {
	if b.hb != nil {
		b.hb.Stop()
		b.hb = nil
		b.hbPeriod = 0
	}
}

// estimate returns the predicted completion latency of a batch of size n
// for unit u, dispatched now.
func (b *Backend) estimate(u *unitState, n int) time.Duration {
	if n < 1 {
		n = 1
	}
	gpu := u.Profile.BatchLatency(n)
	pre := b.cpuTime(u.Profile.PreprocCPU, n)
	post := b.cpuTime(u.Profile.PostprocCPU, n)
	if b.cfg.Overlap {
		// Preprocessing is pipelined behind the previous batch when the
		// pipeline is warm; postprocessing happens off the critical path
		// but still delays the response.
		if b.pipelineWarm() {
			return gpu + post
		}
		return pre + gpu + post
	}
	return pre + gpu + post
}

func (b *Backend) cpuTime(perItem time.Duration, n int) time.Duration {
	workers := b.cfg.CPUWorkers
	if n < workers {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	total := time.Duration(n) * perItem
	return (total + time.Duration(workers) - 1) / time.Duration(workers)
}

// pipelineWarm reports whether the CPU workers had a previous batch to
// preprocess behind; we treat the pipeline as warm if the GPU finished
// work recently.
func (b *Backend) pipelineWarm() bool {
	return b.lastGPUEnd > 0 && b.clock.Now()-b.lastGPUEnd <= 5*time.Millisecond
}

// wake nudges the execution engine after an enqueue or model load. Spatial
// units always run their own loop: a pinned slice batches independently of
// the round-robin round regardless of discipline.
func (b *Backend) wake(u *unitState) {
	if u.part != nil {
		b.stepUnit(u)
		return
	}
	switch b.cfg.Discipline {
	case RoundRobin:
		if !b.rrRunning {
			b.rrRunning = true
			b.stepRR()
		}
	case Parallel:
		b.stepUnit(u)
	}
}

// dynamicTarget returns the batch-size target for a unit right now: the
// scheduler-assigned size, grown opportunistically under backlog while the
// head-of-line request's deadline still accommodates the bigger batch. The
// planned batch is a provisioning point, not a cap — draining a burst at a
// larger (more efficient) batch is how the runtime catches back up.
func (b *Backend) dynamicTarget(u *unitState) int {
	target := u.TargetBatch
	qlen := u.queue.Len()
	if qlen <= target {
		return target
	}
	head, ok := u.queue.Head()
	if !ok {
		return target
	}
	budget := head.Deadline - b.clock.Now()
	for target < qlen && target < u.Profile.MaxBatch && b.estimate(u, target+1) <= budget {
		target++
	}
	return target
}

// stepRR runs the round-robin GPU scheduler: find the next unit with work,
// execute one batch, repeat. Goes idle when no unit has work.
func (b *Backend) stepRR() {
	if b.failed {
		b.rrRunning = false
		return
	}
	for scanned := 0; scanned < len(b.units); scanned++ {
		u := b.units[b.rrIdx]
		b.rrIdx = (b.rrIdx + 1) % len(b.units)
		if u.part != nil || !u.ready || u.queue.Len() == 0 {
			continue
		}
		target := b.dynamicTarget(u)
		batch, dropped := b.cfg.Policy.Pick(&u.queue, b.clock.Now(), target, u.est)
		if len(dropped) > 0 && b.cfg.OnDropWindow != nil {
			b.cfg.OnDropWindow(b.ID, u.ID, target, len(dropped))
		}
		b.handleDropped(u, dropped)
		if len(batch) == 0 {
			continue
		}
		b.execute(u, batch, b.rrStepFn)
		return
	}
	// No unit has on-time work; serve deferred low-priority requests, if
	// any, before going idle.
	if b.cfg.DeferDropped {
		for scanned := 0; scanned < len(b.units); scanned++ {
			u := b.units[b.rrIdx]
			b.rrIdx = (b.rrIdx + 1) % len(b.units)
			if u.part != nil || !u.ready || u.deferred.Len() == 0 {
				continue
			}
			n := u.TargetBatch
			if l := u.deferred.Len(); l < n {
				n = l
			}
			b.execute(u, u.deferred.PopN(n), b.rrStepFn)
			return
		}
	}
	b.rrRunning = false
}

// handleDropped either reports drops or, in deferred mode, requeues them
// at low priority (dropping only past the deferred-queue bound). The
// dropped slice is consumed: it returns to the queue's batch free list.
func (b *Backend) handleDropped(u *unitState, dropped []Request) {
	for _, r := range dropped {
		if b.cfg.DeferDropped && u.deferred.Len() < maxDeferred {
			u.deferred.Push(r)
			continue
		}
		b.complete(r, DropDeadline)
	}
	u.queue.Recycle(dropped)
}

// stepUnit runs one unit's independent loop (Parallel discipline).
func (b *Backend) stepUnit(u *unitState) {
	if b.failed || u.running || !u.ready || u.queue.Len() == 0 {
		return
	}
	target := b.dynamicTarget(u)
	batch, dropped := b.cfg.Policy.Pick(&u.queue, b.clock.Now(), target, u.est)
	if len(dropped) > 0 && b.cfg.OnDropWindow != nil {
		b.cfg.OnDropWindow(b.ID, u.ID, target, len(dropped))
	}
	b.handleDropped(u, dropped)
	if len(batch) == 0 {
		if u.queue.Len() > 0 {
			// Policy made progress by dropping; try again.
			b.stepUnit(u)
			return
		}
		if b.cfg.DeferDropped && u.deferred.Len() > 0 {
			n := u.TargetBatch
			if l := u.deferred.Len(); l < n {
				n = l
			}
			b.execute(u, u.deferred.PopN(n), u.resume)
			u.running = true
		}
		return
	}
	u.running = true
	b.execute(u, batch, u.resume)
}

// gpuTime returns the GPU execution time of a batch. Plain units use the
// unit profile; prefix groups charge the shared prefix once at full batch
// size plus one suffix launch per member session present (§6.3) — cheaper
// than the planning estimate when a batch holds few distinct members.
func (b *Backend) gpuTime(u *unitState, batch []Request) time.Duration {
	n := len(batch)
	if u.Prefix == nil || u.Suffix == nil {
		return u.Profile.BatchLatency(n)
	}
	if b.memberCnt == nil {
		b.memberCnt = make(map[string]int, 8)
	}
	perMember := b.memberCnt
	clear(perMember)
	for _, r := range batch {
		perMember[r.Session]++
	}
	total := u.Prefix.BatchLatency(n)
	for _, count := range perMember {
		total += u.Suffix.BatchLatency(count)
	}
	// Never exceed the conservative combined estimate the scheduler and
	// drop policies used.
	if est := u.Profile.BatchLatency(n); total > est {
		total = est
	}
	return total
}

// batchRun is the in-flight state of one executing batch. Runs are pooled
// on the backend and carry their clock/device callbacks as method values
// bound once at construction, so steady-state execution allocates nothing
// per batch. A run returns to the pool at the end of afterPost — the last
// callback in its chain — and only then may be reused.
type batchRun struct {
	b       *Backend
	u       *unitState
	batch   []Request
	inc     uint64
	done    func()
	gpu     time.Duration
	post    time.Duration
	overlap bool
	// part routes the GPU submission to a compute partition (spatial
	// units); nil submits to the whole device.
	part *gpusim.Partition

	preFn  func() // bound submitGPU
	gpuFn  func() // bound gpuDone
	postFn func() // bound afterPost
}

func (b *Backend) newRun() *batchRun {
	if n := len(b.runPool); n > 0 {
		r := b.runPool[n-1]
		b.runPool = b.runPool[:n-1]
		return r
	}
	r := &batchRun{b: b}
	r.preFn = r.submitGPU
	r.gpuFn = r.gpuDone
	r.postFn = r.afterPost
	return r
}

func (r *batchRun) submitGPU() {
	if r.part != nil {
		r.part.Submit(r.gpu, r.gpuFn)
		return
	}
	r.b.dev.Submit(r.gpu, r.gpuFn)
}

func (r *batchRun) gpuDone() {
	b := r.b
	b.lastGPUEnd = b.clock.Now()
	// Postprocessing happens on the CPU pool; with Overlap it is off the
	// GPU's critical path and the next batch may start immediately.
	b.clock.After(r.post, r.postFn)
	if r.overlap && b.inc == r.inc {
		r.done()
	}
}

func (r *batchRun) afterPost() {
	b := r.b
	outcome := OK
	if b.inc != r.inc {
		// The node crashed while this batch was in flight: the results
		// are lost, and the requests complete as failures.
		outcome = DropFailure
	}
	for _, q := range r.batch {
		b.complete(q, outcome)
	}
	// The batch is fully reported; its slice can serve the next pick.
	r.u.queue.Recycle(r.batch)
	overlap, inc, done := r.overlap, r.inc, r.done
	// Release the run before resuming the loop: done may start the next
	// batch, which is free to reuse this object.
	r.u, r.batch, r.done, r.part = nil, nil, nil, nil
	b.runPool = append(b.runPool, r)
	if !overlap && b.inc == inc {
		done()
	}
}

// execute runs one batch: CPU preprocessing, GPU execution, CPU
// postprocessing. With Overlap, preprocessing hides behind the previous
// GPU batch (when warm) and postprocessing does not gate the next batch;
// without it, all three serialize and the GPU idles during CPU work (§6.3
// "Overlapping CPU and GPU computation").
func (b *Backend) execute(u *unitState, batch []Request, done func()) {
	n := len(batch)
	b.batches++
	b.items += uint64(n)
	r := b.newRun()
	r.u, r.batch, r.done = u, batch, done
	// Capture the incarnation: if the node crashes while this batch is in
	// flight, its device timers still fire, but the results are lost — the
	// requests complete as failures and the old execution chain halts
	// rather than resuming on the restarted node.
	r.inc = b.inc
	r.part = u.part
	r.gpu = b.gpuTime(u, batch)
	if b.cfg.OnBatch != nil {
		b.cfg.OnBatch(b.ID, u.ID, batch, r.inc, r.gpu)
	}
	r.post = b.cpuTime(u.Profile.PostprocCPU, n)
	r.overlap = b.cfg.Overlap
	pre := b.cpuTime(u.Profile.PreprocCPU, n)
	if r.overlap && b.pipelineWarm() {
		pre = 0
	}
	b.clock.After(pre, r.preFn)
}
