package backend

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/gpusim"
	"nexus/internal/profiler"
	"nexus/internal/simclock"
	"nexus/internal/workload"
)

func mkReq(id uint64, arrival, deadline time.Duration) Request {
	return Request{ID: id, Session: "s", Arrival: arrival, Deadline: deadline}
}

func TestQueuePushPop(t *testing.T) {
	var q Queue
	for i := 0; i < 5; i++ {
		q.Push(mkReq(uint64(i), 0, time.Second))
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	got := q.PopN(2)
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("PopN(2) = %v", got)
	}
	if q.Len() != 3 {
		t.Fatalf("Len after pop = %d", q.Len())
	}
	got = q.PopN(10)
	if len(got) != 3 || got[0].ID != 2 {
		t.Fatalf("PopN(10) = %v", got)
	}
}

func constEstimate(d time.Duration) func(int) time.Duration {
	return func(int) time.Duration { return d }
}

func linEstimate(alpha, beta time.Duration) func(int) time.Duration {
	return func(b int) time.Duration { return time.Duration(b)*alpha + beta }
}

func TestLazyDropExpired(t *testing.T) {
	var q Queue
	q.Push(mkReq(0, 0, 10*time.Millisecond)) // expired at now=20ms
	q.Push(mkReq(1, 0, 15*time.Millisecond)) // expired
	q.Push(mkReq(2, 0, 100*time.Millisecond))
	batch, dropped := LazyDrop{}.Pick(&q, 20*time.Millisecond, 8, constEstimate(10*time.Millisecond))
	if len(dropped) != 2 {
		t.Fatalf("dropped %d, want 2", len(dropped))
	}
	if len(batch) != 1 || batch[0].ID != 2 {
		t.Fatalf("batch = %v", batch)
	}
}

func TestLazyDropBatchSizedByHeadBudget(t *testing.T) {
	var q Queue
	// Head has 25ms budget; estimate(b) = b*10ms: only b=2 fits.
	for i := 0; i < 8; i++ {
		q.Push(mkReq(uint64(i), 0, 25*time.Millisecond))
	}
	batch, dropped := LazyDrop{}.Pick(&q, 0, 8, linEstimate(10*time.Millisecond, 0))
	if len(dropped) != 0 {
		t.Fatalf("dropped %d", len(dropped))
	}
	if len(batch) != 2 {
		t.Fatalf("batch size %d, want 2 (head budget limits)", len(batch))
	}
}

func TestEarlyDropSkipsDoomedPrefix(t *testing.T) {
	var q Queue
	// First two requests cannot anchor a full window (estimate(4)=40ms),
	// the third can.
	q.Push(mkReq(0, 0, 20*time.Millisecond))
	q.Push(mkReq(1, 0, 30*time.Millisecond))
	for i := 2; i < 8; i++ {
		q.Push(mkReq(uint64(i), 0, 100*time.Millisecond))
	}
	batch, dropped := EarlyDrop{}.Pick(&q, 0, 4, linEstimate(10*time.Millisecond, 0))
	if len(dropped) != 2 || dropped[0].ID != 0 || dropped[1].ID != 1 {
		t.Fatalf("dropped = %v, want requests 0,1", dropped)
	}
	if len(batch) != 4 || batch[0].ID != 2 {
		t.Fatalf("batch = %v, want 4 starting at ID 2", batch)
	}
}

func TestEarlyDropWindowShrinksAtQueueTail(t *testing.T) {
	var q Queue
	q.Push(mkReq(0, 0, 25*time.Millisecond))
	q.Push(mkReq(1, 0, 25*time.Millisecond))
	// Window target 8 but only 2 queued: estimate(2)=20ms fits the 25ms
	// deadline, so no drops.
	batch, dropped := EarlyDrop{}.Pick(&q, 0, 8, linEstimate(10*time.Millisecond, 0))
	if len(dropped) != 0 || len(batch) != 2 {
		t.Fatalf("batch=%d dropped=%d, want 2/0", len(batch), len(dropped))
	}
}

func TestEarlyDropFallsBackToLazy(t *testing.T) {
	var q Queue
	q.Push(mkReq(0, 0, 5*time.Millisecond))
	// No window fits (estimate(1)=50ms) and the head is hopeless: the lazy
	// fallback drops it, making progress.
	batch, dropped := EarlyDrop{}.Pick(&q, 0, 4, constEstimate(50*time.Millisecond))
	if len(batch) != 0 || len(dropped) != 1 {
		t.Fatalf("batch=%d dropped=%d, want 0/1", len(batch), len(dropped))
	}
}

func TestLazyDropHopelessHeadDropped(t *testing.T) {
	var q Queue
	q.Push(mkReq(0, 0, 5*time.Millisecond))  // cannot finish within 50ms estimate
	q.Push(mkReq(1, 0, 80*time.Millisecond)) // can
	batch, dropped := LazyDrop{}.Pick(&q, 0, 8, constEstimate(50*time.Millisecond))
	if len(dropped) != 1 || dropped[0].ID != 0 {
		t.Fatalf("dropped = %v, want the hopeless head", dropped)
	}
	if len(batch) != 1 || batch[0].ID != 1 {
		t.Fatalf("batch = %v", batch)
	}
}

// Property: both policies preserve requests — every queued request is
// eventually either batched or dropped, none duplicated or lost.
func TestPropertyPoliciesConserveRequests(t *testing.T) {
	f := func(seed int64, early bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		n := rng.Intn(30) + 1
		ids := make(map[uint64]int)
		for i := 0; i < n; i++ {
			r := mkReq(uint64(i), 0, time.Duration(rng.Intn(100))*time.Millisecond)
			q.Push(r)
			ids[r.ID] = 0
		}
		var policy DropPolicy = LazyDrop{}
		if early {
			policy = EarlyDrop{}
		}
		est := linEstimate(time.Duration(rng.Intn(5)+1)*time.Millisecond, 5*time.Millisecond)
		now := time.Duration(0)
		for iter := 0; q.Len() > 0 && iter < 1000; iter++ {
			batch, dropped := policy.Pick(&q, now, rng.Intn(8)+1, est)
			for _, r := range batch {
				ids[r.ID]++
			}
			for _, r := range dropped {
				ids[r.ID]++
			}
			if len(batch) == 0 && len(dropped) == 0 {
				return false // no progress
			}
			now += 10 * time.Millisecond
		}
		for _, count := range ids {
			if count != 1 {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- backend integration -------------------------------------------------

type harness struct {
	clock   *simclock.Clock
	dev     *gpusim.Device
	backend *Backend
	good    int
	missed  int
	dropped int
}

func newHarness(t *testing.T, cfg Config, mode gpusim.Mode) *harness {
	t.Helper()
	h := &harness{clock: simclock.New()}
	h.dev = gpusim.New(h.clock, "gpu0", profiler.GTX1080Ti, mode)
	h.backend = New("b0", h.clock, h.dev, cfg, func(req Request, outcome Outcome, at time.Duration) {
		switch {
		case outcome.Bad():
			h.dropped++
		case at > req.Deadline:
			h.missed++
		default:
			h.good++
		}
	})
	return h
}

func testUnitProfile() *profiler.Profile {
	return &profiler.Profile{
		ModelID: "m", GPU: profiler.GTX1080Ti,
		Alpha: 500 * time.Microsecond, Beta: 5 * time.Millisecond,
		MaxBatch: 64, PreprocCPU: 2 * time.Millisecond, PostprocCPU: 500 * time.Microsecond,
		MemBase: 1 << 30, MemPerItem: 4 << 20,
	}
}

func (h *harness) run(rate float64, slo, horizon time.Duration, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	workload.Start(h.clock, rng, "s", slo, workload.Uniform{Rate: rate}, horizon, func(r workload.Request) {
		if err := h.backend.Enqueue("u", r); err != nil {
			panic(err)
		}
	})
	h.clock.Run()
}

func TestBackendServesSteadyLoad(t *testing.T) {
	h := newHarness(t, Config{Overlap: true, Discipline: RoundRobin}, gpusim.Exclusive)
	if err := h.backend.Configure([]Unit{{ID: "u", Profile: testUnitProfile(), TargetBatch: 16}}); err != nil {
		t.Fatal(err)
	}
	// Let the model load finish before offering traffic; cold-start drops
	// are tested separately in TestModelLoadDelaysServing.
	h.clock.RunUntil(2 * time.Second)
	h.run(200, 100*time.Millisecond, 12*time.Second, 1)
	total := h.good + h.missed + h.dropped
	if total < 1900 {
		t.Fatalf("only %d requests completed", total)
	}
	badRate := float64(h.missed+h.dropped) / float64(total)
	if badRate > 0.01 {
		t.Fatalf("bad rate %.3f at comfortable load, want <= 1%%", badRate)
	}
	if h.backend.AvgBatchSize() < 1 {
		t.Fatal("no batches recorded")
	}
}

func TestBackendOverloadDropsButKeepsServing(t *testing.T) {
	h := newHarness(t, Config{Overlap: true, Discipline: RoundRobin}, gpusim.Exclusive)
	if err := h.backend.Configure([]Unit{{ID: "u", Profile: testUnitProfile(), TargetBatch: 8}}); err != nil {
		t.Fatal(err)
	}
	// Capacity with batch 8 is ~8/9ms ≈ 890 r/s; offer 3000.
	h.run(3000, 50*time.Millisecond, 5*time.Second, 2)
	if h.dropped == 0 {
		t.Fatal("overload produced no drops")
	}
	if h.good == 0 {
		t.Fatal("overload starved all requests")
	}
	// Early drop should keep served requests within deadline.
	if float64(h.missed) > 0.05*float64(h.good) {
		t.Fatalf("missed %d vs good %d: early drop should prevent late completions", h.missed, h.good)
	}
}

func TestOverlapBeatsSerialOnTightSLO(t *testing.T) {
	// Figure 10's headline: with tight SLOs and small models, overlapping
	// CPU and GPU work is critical.
	measure := func(overlap bool) int {
		h := newHarness(t, Config{Overlap: overlap, Discipline: RoundRobin}, gpusim.Exclusive)
		p := testUnitProfile()
		p.PreprocCPU = 10 * time.Millisecond // game-analysis-like preprocessing
		if err := h.backend.Configure([]Unit{{ID: "u", Profile: p, TargetBatch: 8}}); err != nil {
			panic(err)
		}
		h.run(800, 50*time.Millisecond, 5*time.Second, 3)
		return h.good
	}
	withOL := measure(true)
	withoutOL := measure(false)
	if float64(withOL) < 1.5*float64(withoutOL) {
		t.Fatalf("overlap good=%d vs serial good=%d; expected >=1.5x gain", withOL, withoutOL)
	}
}

func TestRoundRobinBeatsParallelInterference(t *testing.T) {
	// Figure 14's headline: coordinated round-robin on an exclusive device
	// outperforms uncoordinated parallel issue on a shared device.
	measure := func(disc Discipline, mode gpusim.Mode) int {
		cfg := Config{Overlap: true, Discipline: disc}
		h := newHarness(t, cfg, mode)
		var units []Unit
		for i := 0; i < 3; i++ {
			units = append(units, Unit{ID: fmt.Sprintf("u%d", i), Profile: testUnitProfile(), TargetBatch: 16})
		}
		if err := h.backend.Configure(units); err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 3; i++ {
			uid := fmt.Sprintf("u%d", i)
			workload.Start(h.clock, rng, uid, 100*time.Millisecond, workload.Uniform{Rate: 400}, 5*time.Second,
				func(r workload.Request) { _ = h.backend.Enqueue(uid, r) })
		}
		h.clock.Run()
		return h.good
	}
	rr := measure(RoundRobin, gpusim.Exclusive)
	par := measure(Parallel, gpusim.Shared)
	if rr <= par {
		t.Fatalf("round-robin good=%d vs parallel good=%d; expected round-robin to win", rr, par)
	}
}

func TestEarlyDropBeatsLazyUnderPoisson(t *testing.T) {
	// Figure 9's shape: under bursty arrivals near capacity, early drop
	// sustains more goodput than lazy drop.
	measure := func(policy DropPolicy, seed int64) int {
		h := newHarness(t, Config{Policy: policy, Overlap: true, Discipline: RoundRobin}, gpusim.Exclusive)
		p := testUnitProfile()
		p.Alpha = 100 * time.Microsecond
		p.Beta = 15 * time.Millisecond // high fixed cost: small batches hurt
		p.PreprocCPU = 0
		p.PostprocCPU = 0
		if err := h.backend.Configure([]Unit{{ID: "u", Profile: p, TargetBatch: 40}}); err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(seed))
		workload.Start(h.clock, rng, "s", 100*time.Millisecond, workload.Poisson{Rate: 1900}, 5*time.Second,
			func(r workload.Request) { _ = h.backend.Enqueue("u", r) })
		h.clock.Run()
		return h.good
	}
	var early, lazy int
	for seed := int64(0); seed < 3; seed++ {
		early += measure(EarlyDrop{}, seed)
		lazy += measure(LazyDrop{}, seed)
	}
	if early <= lazy {
		t.Fatalf("early good=%d vs lazy good=%d; expected early to win", early, lazy)
	}
}

func TestConfigureValidation(t *testing.T) {
	h := newHarness(t, Config{}, gpusim.Exclusive)
	if err := h.backend.Configure([]Unit{{ID: "u", TargetBatch: 4}}); err == nil {
		t.Error("nil profile accepted")
	}
	if err := h.backend.Configure([]Unit{{ID: "u", Profile: testUnitProfile(), TargetBatch: 0}}); err == nil {
		t.Error("zero batch accepted")
	}
	big := testUnitProfile()
	big.MemBase = 100 << 30
	if err := h.backend.Configure([]Unit{{ID: "u", Profile: big, TargetBatch: 1}}); err == nil {
		t.Error("over-memory unit accepted")
	}
}

func TestConfigureRemovalDropsQueued(t *testing.T) {
	h := newHarness(t, Config{Discipline: RoundRobin}, gpusim.Exclusive)
	if err := h.backend.Configure([]Unit{{ID: "u", Profile: testUnitProfile(), TargetBatch: 4}}); err != nil {
		t.Fatal(err)
	}
	// Enqueue before the model finishes loading, then remove the unit.
	_ = h.backend.Enqueue("u", mkReq(0, 0, time.Hour))
	if err := h.backend.Configure(nil); err != nil {
		t.Fatal(err)
	}
	h.clock.Run()
	if h.dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (queued request of removed unit)", h.dropped)
	}
	if h.dev.MemUsed() != 0 {
		t.Fatal("removed unit did not free memory")
	}
}

func TestConfigureKeepsExistingUnits(t *testing.T) {
	h := newHarness(t, Config{Discipline: RoundRobin}, gpusim.Exclusive)
	p := testUnitProfile()
	if err := h.backend.Configure([]Unit{{ID: "u", Profile: p, TargetBatch: 4}}); err != nil {
		t.Fatal(err)
	}
	h.clock.Run() // finish loading
	used := h.dev.MemUsed()
	// Reconfigure with a new batch target: no reload, memory unchanged.
	if err := h.backend.Configure([]Unit{{ID: "u", Profile: p, TargetBatch: 8}}); err != nil {
		t.Fatal(err)
	}
	if h.dev.MemUsed() != used {
		t.Fatal("reconfigure of existing unit reloaded the model")
	}
}

func TestEnqueueUnknownUnit(t *testing.T) {
	h := newHarness(t, Config{}, gpusim.Exclusive)
	if err := h.backend.Enqueue("ghost", mkReq(0, 0, time.Second)); err == nil {
		t.Fatal("unknown unit accepted")
	}
}

func TestModelLoadDelaysServing(t *testing.T) {
	h := newHarness(t, Config{Discipline: RoundRobin, Overlap: true}, gpusim.Exclusive)
	p := testUnitProfile()
	if err := h.backend.Configure([]Unit{{ID: "u", Profile: p, TargetBatch: 4}}); err != nil {
		t.Fatal(err)
	}
	var completedAt time.Duration
	h.backend.onDone = func(req Request, outcome Outcome, at time.Duration) {
		completedAt = at
	}
	_ = h.backend.Enqueue("u", mkReq(0, 0, time.Hour))
	h.clock.Run()
	loadTime := gpusim.LoadTime(p.MemBase + 4*p.MemPerItem)
	if completedAt < loadTime {
		t.Fatalf("request completed at %v, before model load finished (%v)", completedAt, loadTime)
	}
}

func TestDeferDroppedServesLate(t *testing.T) {
	// Overload a unit briefly; with DeferDropped, would-be drops complete
	// late instead of disappearing.
	run := func(deferOn bool) (good, missed, dropped int) {
		clock := simclock.New()
		dev := gpusim.New(clock, "g", profiler.GTX1080Ti, gpusim.Exclusive)
		be := New("b", clock, dev, Config{Overlap: true, DeferDropped: deferOn},
			func(r Request, outcome Outcome, at time.Duration) {
				switch {
				case outcome.Bad():
					dropped++
				case at > r.Deadline:
					missed++
				default:
					good++
				}
			})
		p := testUnitProfile()
		if err := be.Configure([]Unit{{ID: "u", Profile: p, TargetBatch: 8}}); err != nil {
			t.Fatal(err)
		}
		clock.RunUntil(2 * time.Second)
		// A burst far beyond what the 20ms SLO allows.
		now := clock.Now()
		for i := 0; i < 200; i++ {
			_ = be.Enqueue("u", Request{ID: uint64(i), Session: "s", Arrival: now, Deadline: now + 20*time.Millisecond})
		}
		clock.Run()
		return good, missed, dropped
	}
	g1, m1, d1 := run(false)
	g2, m2, d2 := run(true)
	if d1 == 0 {
		t.Fatalf("setup: burst should overflow without defer (good=%d missed=%d dropped=%d)", g1, m1, d1)
	}
	if d2 != 0 {
		t.Fatalf("defer mode still dropped %d", d2)
	}
	if g2+m2 != 200 {
		t.Fatalf("defer mode completed %d of 200", g2+m2)
	}
	if m2 == 0 {
		t.Fatal("deferred requests should complete late (missed)")
	}
}

func TestDeferredQueueBounded(t *testing.T) {
	clock := simclock.New()
	dev := gpusim.New(clock, "g", profiler.GTX1080Ti, gpusim.Exclusive)
	dropped := 0
	be := New("b", clock, dev, Config{Overlap: true, DeferDropped: true},
		func(r Request, outcome Outcome, at time.Duration) {
			if outcome.Bad() {
				dropped++
			}
		})
	if err := be.Configure([]Unit{{ID: "u", Profile: testUnitProfile(), TargetBatch: 8}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(2 * time.Second)
	now := clock.Now()
	// Far beyond the deferred bound: overflow must be really dropped.
	for i := 0; i < 3*maxDeferred; i++ {
		_ = be.Enqueue("u", Request{ID: uint64(i), Session: "s", Arrival: now, Deadline: now + time.Millisecond})
	}
	clock.Run()
	if dropped == 0 {
		t.Fatal("deferred queue bound not enforced")
	}
}

func TestConfigureRemovalDrainsDeferred(t *testing.T) {
	clock := simclock.New()
	dev := gpusim.New(clock, "g", profiler.GTX1080Ti, gpusim.Exclusive)
	dropped := 0
	be := New("b", clock, dev, Config{Overlap: true, DeferDropped: true},
		func(r Request, outcome Outcome, at time.Duration) {
			if outcome.Bad() {
				dropped++
			}
		})
	if err := be.Configure([]Unit{{ID: "u", Profile: testUnitProfile(), TargetBatch: 8}}); err != nil {
		t.Fatal(err)
	}
	// Not yet loaded: requests queue; hopeless deadlines will defer at pick
	// time once loading completes — but remove the unit first.
	_ = be.Enqueue("u", Request{ID: 1, Session: "s", Deadline: time.Millisecond})
	if err := be.Configure(nil); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	if dropped != 1 {
		t.Fatalf("removal dropped %d, want 1", dropped)
	}
}

func TestPrefixGroupPerMemberSuffixTiming(t *testing.T) {
	clock := simclock.New()
	dev := gpusim.New(clock, "g", profiler.GTX1080Ti, gpusim.Exclusive)
	var done int
	be := New("b", clock, dev, Config{Overlap: true}, func(Request, Outcome, time.Duration) { done++ })
	base := testUnitProfile()
	base.PreprocCPU, base.PostprocCPU = 0, 0
	pre, suf := base.Split(0.9)
	comb, err := profiler.CombinedProfile(base, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	comb.PreprocCPU, comb.PostprocCPU = 0, 0
	if err := be.Configure([]Unit{{
		ID: "g", Profile: comb, TargetBatch: 8,
		Members: []string{"m0", "m1", "m2", "m3"},
		Prefix:  &pre, Suffix: &suf,
	}}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(2 * time.Second)
	start := clock.Now()
	// Requests from only TWO distinct members (m0, m1). The first enqueue
	// executes alone (work-conserving); the remaining three form one batch
	// while the GPU is busy. Execution must charge the prefix at the batch
	// size plus one suffix per member PRESENT — not the planning profile's
	// min(k, b)-member assumption.
	for i := 0; i < 4; i++ {
		sess := "m0"
		if i%2 == 1 {
			sess = "m1"
		}
		_ = be.Enqueue("g", Request{ID: uint64(i), Session: sess, Arrival: start, Deadline: start + time.Second})
	}
	clock.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	elapsed := clock.Now() - start
	// Batch 1: [m0]. Batch 2: [m1, m0, m1] -> prefix(3) + suf(2) + suf(1).
	want := pre.BatchLatency(1) + suf.BatchLatency(1) +
		pre.BatchLatency(3) + suf.BatchLatency(2) + suf.BatchLatency(1)
	if elapsed != want {
		t.Fatalf("batches took %v, want %v (per-member suffixes)", elapsed, want)
	}
	// Against the combined planning profile, which would assume min(k,b)
	// members in the second batch (3 suffixes instead of 2).
	planned := comb.BatchLatency(1) + comb.BatchLatency(3)
	if elapsed >= planned {
		t.Fatalf("per-member accounting (%v) should beat the combined estimate (%v)", elapsed, planned)
	}
}
