package backend

import (
	"math/rand"
	"testing"
	"time"

	"nexus/internal/gpusim"
	"nexus/internal/profiler"
	"nexus/internal/simclock"
	"nexus/internal/trace"
	"nexus/internal/workload"
)

// BenchmarkDispatchHotPath measures the node data plane in steady state —
// enqueue, early-drop admission, ring-buffer batch assembly, simulated
// execution, completion — replaying one second of Uniform rate-2000
// overload per iteration. Setup (clock, device, model load) and the
// arrival schedule are hoisted out of the timed region and the pools are
// warmed first, so the numbers isolate the per-request path the ring
// queue, batch/run arenas, and memoized latency tables optimize; at
// steady state it must not allocate at all.
func BenchmarkDispatchHotPath(b *testing.B) {
	clock := simclock.New()
	dev := gpusim.New(clock, "gpu0", profiler.GTX1080Ti, gpusim.Exclusive)
	served := 0
	be := New("b0", clock, dev, Config{Overlap: true, Discipline: RoundRobin},
		func(req Request, outcome Outcome, at time.Duration) { served++ })
	if err := be.Configure([]Unit{{ID: "u", Profile: testUnitProfile(), TargetBatch: 16}}); err != nil {
		b.Fatal(err)
	}
	clock.RunUntil(2 * time.Second) // model load

	// Precompute the wave: the same one second of arrivals the original
	// per-iteration form generated live (seed 7, Uniform rate 2000).
	rng := rand.New(rand.NewSource(7))
	proc := workload.Uniform{Rate: 2000}
	var offsets []time.Duration
	for t := proc.Interarrival(0, rng); t < time.Second; t += proc.Interarrival(t, rng) {
		offsets = append(offsets, t)
	}

	// Self-rescheduling arrival pump: one pending timer walks the offset
	// schedule, so replaying a wave keeps exactly one generator event live
	// and reuses the closure across iterations.
	const slo = 100 * time.Millisecond
	var (
		start time.Duration
		idx   int
		id    uint64
		pump  func()
	)
	pump = func() {
		now := clock.Now()
		if err := be.Enqueue("u", Request{ID: id, Session: "s", Arrival: now, Deadline: now + slo}); err != nil {
			b.Fatal(err)
		}
		id++
		idx++
		if idx < len(offsets) {
			clock.At(start+offsets[idx], pump)
		}
	}
	wave := func() {
		idx = 0
		start = clock.Now()
		clock.At(start+offsets[0], pump)
		clock.Run()
	}
	// Warm every pool (event free list, wheel buckets, batch and run
	// arenas) so the timed region measures steady state.
	wave()
	wave()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wave()
	}
	b.StopTimer()
	if served == 0 {
		b.Fatal("no requests served")
	}
}

// BenchmarkDispatchHotPathTraced replays the same steady-state wave with
// the flight recorder's span sources attached — per-request Execute records
// from the OnBatch hook and Complete/Drop records in the completion sink,
// filled in place via the tracer's inlinable Reserve fast path — so the
// delta over BenchmarkDispatchHotPath is the full cost of always-on span
// capture (dominated by the 136-byte event writes themselves). The CI gate
// pins it to its recorded baseline and to zero allocations: capture cost
// regressions surface here, not in production tail latency.
func BenchmarkDispatchHotPathTraced(b *testing.B) {
	clock := simclock.New()
	dev := gpusim.New(clock, "gpu0", profiler.GTX1080Ti, gpusim.Exclusive)
	tr := trace.New(1 << 14)
	served := 0
	onBatch := func(backendID, unitID string, batch []Request, inc uint64, gpuTime time.Duration) {
		at := clock.Now()
		for i := range batch {
			*tr.Reserve() = trace.Event{At: at, Kind: trace.Execute,
				ReqID: batch[i].ID, Session: batch[i].Session,
				Backend: backendID, Unit: unitID,
				Batch: len(batch), Dur: gpuTime, Inc: inc}
		}
	}
	done := func(req Request, outcome Outcome, at time.Duration) {
		served++
		kind := trace.Complete
		cause := ""
		if outcome != OK {
			kind = trace.Drop
			cause = outcome.String()
		}
		*tr.Reserve() = trace.Event{At: at, Kind: kind, ReqID: req.ID,
			Session: req.Session, Dur: at - req.Arrival, Cause: cause}
	}
	be := New("b0", clock, dev,
		Config{Overlap: true, Discipline: RoundRobin, OnBatch: onBatch}, done)
	if err := be.Configure([]Unit{{ID: "u", Profile: testUnitProfile(), TargetBatch: 16}}); err != nil {
		b.Fatal(err)
	}
	clock.RunUntil(2 * time.Second) // model load

	rng := rand.New(rand.NewSource(7))
	proc := workload.Uniform{Rate: 2000}
	var offsets []time.Duration
	for t := proc.Interarrival(0, rng); t < time.Second; t += proc.Interarrival(t, rng) {
		offsets = append(offsets, t)
	}

	const slo = 100 * time.Millisecond
	var (
		start time.Duration
		idx   int
		id    uint64
		pump  func()
	)
	pump = func() {
		now := clock.Now()
		if err := be.Enqueue("u", Request{ID: id, Session: "s", Arrival: now, Deadline: now + slo}); err != nil {
			b.Fatal(err)
		}
		id++
		idx++
		if idx < len(offsets) {
			clock.At(start+offsets[idx], pump)
		}
	}
	wave := func() {
		idx = 0
		start = clock.Now()
		clock.At(start+offsets[0], pump)
		clock.Run()
	}
	wave()
	wave()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wave()
	}
	b.StopTimer()
	if served == 0 {
		b.Fatal("no requests served")
	}
	if tr.Total() == 0 {
		b.Fatal("no events traced")
	}
}
