package backend

import (
	"math/rand"
	"testing"
	"time"

	"nexus/internal/gpusim"
	"nexus/internal/profiler"
	"nexus/internal/simclock"
	"nexus/internal/workload"
)

// BenchmarkDispatchHotPath measures the full node data plane — enqueue,
// early-drop admission, ring-buffer batch assembly, simulated execution,
// completion — for three seconds of simulated overload per iteration. This
// is the loop the ring queue, batch recycling, and memoized latency tables
// optimize.
func BenchmarkDispatchHotPath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clock := simclock.New()
		dev := gpusim.New(clock, "gpu0", profiler.GTX1080Ti, gpusim.Exclusive)
		served := 0
		be := New("b0", clock, dev, Config{Overlap: true, Discipline: RoundRobin},
			func(req Request, outcome Outcome, at time.Duration) { served++ })
		if err := be.Configure([]Unit{{ID: "u", Profile: testUnitProfile(), TargetBatch: 16}}); err != nil {
			b.Fatal(err)
		}
		clock.RunUntil(2 * time.Second) // model load
		rng := rand.New(rand.NewSource(7))
		workload.Start(clock, rng, "s", 100*time.Millisecond, workload.Uniform{Rate: 2000},
			3*time.Second, func(r workload.Request) {
				if err := be.Enqueue("u", r); err != nil {
					b.Fatal(err)
				}
			})
		clock.Run()
		if served == 0 {
			b.Fatal("no requests served")
		}
	}
}
