package backend

import (
	"testing"
	"time"

	"nexus/internal/gpusim"
	"nexus/internal/profiler"
	"nexus/internal/simclock"
)

// sliceUnitProfile is a small model's profile already scaled for the slice
// it runs on, as globalsched hands it to the backend.
func sliceUnitProfile() *profiler.Profile {
	return &profiler.Profile{
		ModelID: "m", GPU: profiler.GTX1080Ti,
		Alpha: 1 * time.Millisecond, Beta: 4 * time.Millisecond,
		MaxBatch: 16,
		MemBase:  1 << 30, MemPerItem: 1 << 20,
	}
}

func TestSpatialUnitsRunConcurrently(t *testing.T) {
	// Two half-GPU units under RoundRobin discipline: spatial units bypass
	// the round-robin round and run on their partitions concurrently, so
	// simultaneous single-item batches overlap instead of serializing.
	clock := simclock.New()
	dev := gpusim.New(clock, "g", profiler.GTX1080Ti, gpusim.Exclusive)
	doneAt := map[string]time.Duration{}
	be := New("b", clock, dev, Config{Discipline: RoundRobin, Overlap: true},
		func(r Request, o Outcome, at time.Duration) { doneAt[r.Session] = at })
	units := []Unit{
		{ID: "u1", Profile: sliceUnitProfile(), TargetBatch: 1, Slice: 0.5},
		{ID: "u2", Profile: sliceUnitProfile(), TargetBatch: 1, Slice: 0.5},
	}
	if err := be.Configure(units); err != nil {
		t.Fatal(err)
	}
	if got := len(dev.Partitions()); got != 2 {
		t.Fatalf("device has %d partitions, want 2", got)
	}
	clock.RunUntil(2 * time.Second) // model loads
	now := clock.Now()
	_ = be.Enqueue("u1", Request{ID: 1, Session: "a", Arrival: now, Deadline: now + time.Second})
	_ = be.Enqueue("u2", Request{ID: 2, Session: "b", Arrival: now, Deadline: now + time.Second})
	clock.Run()
	if len(doneAt) != 2 {
		t.Fatalf("completed %d requests, want 2", len(doneAt))
	}
	// Serialized exclusive execution would finish the second batch at
	// ~2*(pre+gpu+post). Concurrent slices finish both within one batch
	// time plus the co-residency interference tax.
	batchTime := 5 * time.Millisecond * 105 / 100 // ℓ(1) * (1 + 0.05 interference)
	for s, at := range doneAt {
		if e := at - now; e > batchTime+8*time.Millisecond {
			t.Fatalf("session %s finished %v after enqueue; slices did not overlap", s, e)
		}
	}
}

func TestSpatialSliceStats(t *testing.T) {
	clock := simclock.New()
	dev := gpusim.New(clock, "g", profiler.GTX1080Ti, gpusim.Exclusive)
	be := New("b", clock, dev, Config{}, func(Request, Outcome, time.Duration) {})
	if err := be.Configure([]Unit{
		{ID: "u1", Profile: sliceUnitProfile(), TargetBatch: 1, Slice: 0.25},
		{ID: "u2", Profile: sliceUnitProfile(), TargetBatch: 1}, // temporal
	}); err != nil {
		t.Fatal(err)
	}
	stats := be.SliceStats()
	if len(stats) != 1 {
		t.Fatalf("SliceStats = %+v, want exactly the spatial unit", stats)
	}
	if stats[0].UnitID != "u1" || stats[0].Frac != 0.25 {
		t.Fatalf("SliceStats[0] = %+v", stats[0])
	}
}

func TestSpatialReconfigureSwapsPartition(t *testing.T) {
	clock := simclock.New()
	dev := gpusim.New(clock, "g", profiler.GTX1080Ti, gpusim.Exclusive)
	be := New("b", clock, dev, Config{}, func(Request, Outcome, time.Duration) {})
	p := sliceUnitProfile()
	if err := be.Configure([]Unit{{ID: "u", Profile: p, TargetBatch: 1, Slice: 0.5}}); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	// Grow the slice: the old partition is released, a fresh one attached.
	if err := be.Configure([]Unit{{ID: "u", Profile: p, TargetBatch: 1, Slice: 0.75}}); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	parts := dev.Partitions()
	if len(parts) != 1 {
		t.Fatalf("device has %d partitions after swap, want 1", len(parts))
	}
	if parts[0].Frac != 0.75 {
		t.Fatalf("partition frac = %v, want 0.75", parts[0].Frac)
	}
	// Back to temporal: the partition is handed back entirely.
	if err := be.Configure([]Unit{{ID: "u", Profile: p, TargetBatch: 1}}); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	if got := len(dev.Partitions()); got != 0 {
		t.Fatalf("device still holds %d partitions after temporal reconfigure", got)
	}
	if got := len(be.SliceStats()); got != 0 {
		t.Fatalf("SliceStats still reports %d slices", got)
	}
}

func TestSpatialUnitRemovalReleasesPartition(t *testing.T) {
	clock := simclock.New()
	dev := gpusim.New(clock, "g", profiler.GTX1080Ti, gpusim.Exclusive)
	be := New("b", clock, dev, Config{}, func(Request, Outcome, time.Duration) {})
	if err := be.Configure([]Unit{{ID: "u", Profile: sliceUnitProfile(), TargetBatch: 1, Slice: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := be.Configure(nil); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	if got := len(dev.Partitions()); got != 0 {
		t.Fatalf("device still holds %d partitions after removal", got)
	}
}

func TestSpatialFailReleasesPartitions(t *testing.T) {
	clock := simclock.New()
	dev := gpusim.New(clock, "g", profiler.GTX1080Ti, gpusim.Exclusive)
	be := New("b", clock, dev, Config{}, func(Request, Outcome, time.Duration) {})
	if err := be.Configure([]Unit{{ID: "u", Profile: sliceUnitProfile(), TargetBatch: 1, Slice: 0.5}}); err != nil {
		t.Fatal(err)
	}
	be.Fail()
	clock.Run()
	if got := len(dev.Partitions()); got != 0 {
		t.Fatalf("failed backend still holds %d partitions", got)
	}
}
