package backend

import "errors"

// Outcome classifies how a request left the system. OK means the response
// was delivered (possibly after its deadline — lateness is judged by the
// completion sink, which knows the deadline); every other outcome means
// the request was lost before producing a response. Distinguishing the
// loss reasons is what lets the control plane tell admission-control
// drops from reconfiguration races from genuine failures (§5).
type Outcome uint8

const (
	// OK: the response was delivered.
	OK Outcome = iota
	// DropDeadline: the drop policy shed the request because its deadline
	// could no longer be met (early or lazy drop, §4.3).
	DropDeadline
	// DropReconfig: the request was queued on a unit that a control-plane
	// reconfiguration removed before it executed.
	DropReconfig
	// DropOverload: the unit's bounded queue was full at enqueue time.
	DropOverload
	// DropUnroutable: the frontend had no route for the session.
	DropUnroutable
	// DropFailure: the request was lost to a backend failure — queued or
	// in flight on a node that crashed.
	DropFailure
	// DropAdmission: the frontend's priority-aware admission control shed
	// the request before routing — its session exceeded its token-bucket
	// rate during an overload, and its priority did not entitle it to the
	// shared reserve.
	DropAdmission
)

// Bad reports whether the outcome counts against SLO attainment.
func (o Outcome) Bad() bool { return o != OK }

// String names the outcome for traces and tables.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case DropDeadline:
		return "deadline"
	case DropReconfig:
		return "reconfig"
	case DropOverload:
		return "overload"
	case DropUnroutable:
		return "unroutable"
	case DropFailure:
		return "failure"
	case DropAdmission:
		return "admission"
	default:
		return "unknown"
	}
}

// Sentinel errors returned by Enqueue, so the frontend can distinguish a
// reconfiguration race (retryable on another replica) from overload
// (shed it) from a dead node (retry elsewhere, count as failure if not).
var (
	// ErrUnitRemoved: the target unit does not exist on this backend —
	// a reconfiguration removed it while the dispatch was in flight.
	ErrUnitRemoved = errors.New("unit removed")
	// ErrQueueFull: the unit's bounded queue is at capacity.
	ErrQueueFull = errors.New("queue full")
	// ErrBackendDown: the backend has crashed and serves nothing.
	ErrBackendDown = errors.New("backend down")
)
