// Package backend implements the Nexus node runtime (§6.3): per-session
// request queues, batch-aware dispatch with early-drop admission control,
// duty-cycle round-robin execution of multiple sessions on one GPU,
// overlapped CPU pre/post-processing, and prefix-batched execution of
// specialized model families. It also provides the Clipper-like and
// TF-Serving-like execution disciplines used as baselines in §7.
package backend

import (
	"time"

	"nexus/internal/workload"
)

// Request is an enqueued inference request.
type Request = workload.Request

// Queue is a FIFO of requests for one execution unit. Requests of a unit
// share an SLO, so deadlines are non-decreasing in arrival order.
type Queue struct {
	items []Request
}

// Push appends a request.
func (q *Queue) Push(r Request) { q.items = append(q.items, r) }

// Len returns the queue length.
func (q *Queue) Len() int { return len(q.items) }

// Head returns the oldest request without removing it.
func (q *Queue) Head() (Request, bool) {
	if len(q.items) == 0 {
		return Request{}, false
	}
	return q.items[0], true
}

// PopN removes and returns the first n requests.
func (q *Queue) PopN(n int) []Request {
	if n > len(q.items) {
		n = len(q.items)
	}
	out := make([]Request, n)
	copy(out, q.items[:n])
	q.items = q.items[:copy(q.items, q.items[n:])]
	return out
}

// DropPolicy selects which queued requests to execute and which to drop
// (§4.3, §6.3 "Adaptive Batching").
type DropPolicy interface {
	// Pick returns the batch to execute now and the requests dropped.
	// target is the scheduler-assigned batch size; estimate(b) is the
	// predicted completion latency of a batch of size b (queueing excluded).
	// When the queue is non-empty, Pick must make progress: return a
	// non-empty batch or drop at least one request.
	Pick(q *Queue, now time.Duration, target int, estimate func(int) time.Duration) (batch, dropped []Request)
	Name() string
}

// LazyDrop is the Clipper-style policy (§4.3): requests are dropped only
// once their deadline is hopeless — already past, or sooner than even a
// batch-of-one execution could finish — and the batch size is whatever the
// earliest remaining request's budget allows.
type LazyDrop struct{}

// Name implements DropPolicy.
func (LazyDrop) Name() string { return "lazy" }

// Pick implements DropPolicy.
func (LazyDrop) Pick(q *Queue, now time.Duration, target int, estimate func(int) time.Duration) (batch, dropped []Request) {
	// Drop requests whose deadline cannot be met even alone.
	minFinish := now + estimate(1)
	expired := 0
	for expired < len(q.items) && q.items[expired].Deadline < minFinish {
		expired++
	}
	if expired > 0 {
		dropped = q.PopN(expired)
	}
	if q.Len() == 0 {
		return nil, dropped
	}
	// Size the batch by the head-of-line request's remaining budget.
	budget := q.items[0].Deadline - now
	b := 1
	for b < target && b < q.Len() && estimate(b+1) <= budget {
		b++
	}
	return q.PopN(b), dropped
}

// EarlyDrop is the Nexus policy (§6.3): slide a window of the target batch
// size through the queue and drop the prefix of requests whose deadlines
// would force a sub-optimal batch. It falls back to lazy behaviour when no
// window fits, so it always makes progress.
type EarlyDrop struct{}

// Name implements DropPolicy.
func (EarlyDrop) Name() string { return "early" }

// Pick implements DropPolicy.
func (EarlyDrop) Pick(q *Queue, now time.Duration, target int, estimate func(int) time.Duration) (batch, dropped []Request) {
	if target < 1 {
		target = 1
	}
	for i := 0; i < q.Len(); i++ {
		w := target
		if rest := q.Len() - i; rest < w {
			w = rest
		}
		if q.items[i].Deadline >= now+estimate(w) {
			dropped = q.PopN(i)
			return q.PopN(w), dropped
		}
	}
	// No request can anchor a full window; behave lazily on what is left.
	lazyBatch, lazyDropped := LazyDrop{}.Pick(q, now, target, estimate)
	return lazyBatch, lazyDropped
}
