// Package backend implements the Nexus node runtime (§6.3): per-session
// request queues, batch-aware dispatch with early-drop admission control,
// duty-cycle round-robin execution of multiple sessions on one GPU,
// overlapped CPU pre/post-processing, and prefix-batched execution of
// specialized model families. It also provides the Clipper-like and
// TF-Serving-like execution disciplines used as baselines in §7.
package backend

import (
	"time"

	"nexus/internal/workload"
)

// Request is an enqueued inference request.
type Request = workload.Request

// Queue is a FIFO of requests for one execution unit. Requests of a unit
// share an SLO, so deadlines are non-decreasing in arrival order.
//
// It is a growable ring buffer: Push and PopN are amortized O(1) per
// request, and once the ring and the batch free list have grown to the
// workload's steady state, the dispatch loop runs without allocating.
// Vacated slots are zeroed so popped requests do not pin their payloads.
type Queue struct {
	buf  []Request // ring storage; len(buf) is a power of two (or 0)
	head int       // index of the oldest request
	n    int       // live request count
	// free recycles batch slices handed out by PopN: callers return them
	// via Recycle once the batch has fully completed.
	free [][]Request
}

// minQueueCap is the initial ring size on first Push.
const minQueueCap = 16

// maxFreeBatches bounds the per-queue batch free list; at most this many
// batches of one unit are ever in flight plus being dropped concurrently.
const maxFreeBatches = 8

// Push appends a request.
func (q *Queue) Push(r Request) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = r
	q.n++
}

// grow doubles the ring, unwrapping the live region to the front.
func (q *Queue) grow() {
	newCap := 2 * len(q.buf)
	if newCap < minQueueCap {
		newCap = minQueueCap
	}
	buf := make([]Request, newCap)
	q.copyOut(buf[:q.n])
	q.buf = buf
	q.head = 0
}

// copyOut copies the oldest len(dst) requests into dst in FIFO order.
func (q *Queue) copyOut(dst []Request) {
	if len(dst) == 0 {
		return
	}
	first := q.buf[q.head:]
	if len(first) > len(dst) {
		first = first[:len(dst)]
	}
	copy(dst, first)
	if rest := len(dst) - len(first); rest > 0 {
		copy(dst[len(first):], q.buf[:rest])
	}
}

// Len returns the queue length.
func (q *Queue) Len() int { return q.n }

// Head returns the oldest request without removing it.
func (q *Queue) Head() (Request, bool) {
	if q.n == 0 {
		return Request{}, false
	}
	return q.buf[q.head], true
}

// At returns the i-th oldest request without removing it. It panics when i
// is out of range, mirroring a slice index.
func (q *Queue) At(i int) Request {
	if i < 0 || i >= q.n {
		panic("backend: Queue.At out of range")
	}
	return q.buf[(q.head+i)&(len(q.buf)-1)]
}

// PopN removes and returns the first n requests (fewer when the queue is
// shorter). The returned slice comes from the queue's free list when one is
// available; callers that are done with a batch should hand it back with
// Recycle so steady-state dispatch does not allocate.
func (q *Queue) PopN(n int) []Request {
	if n > q.n {
		n = q.n
	}
	if n <= 0 {
		return nil
	}
	out := q.batchSlice(n)
	q.copyOut(out)
	// Zero the vacated region: a slice-based queue that only re-slices
	// would pin dropped requests (and their payloads) indefinitely.
	mask := len(q.buf) - 1
	for i := 0; i < n; i++ {
		q.buf[(q.head+i)&mask] = Request{}
	}
	q.head = (q.head + n) & mask
	q.n -= n
	return out
}

// batchSlice returns a length-n slice, reusing a recycled batch when able.
func (q *Queue) batchSlice(n int) []Request {
	for i := len(q.free) - 1; i >= 0; i-- {
		s := q.free[i]
		if cap(s) >= n {
			last := len(q.free) - 1
			q.free[i] = q.free[last]
			q.free[last] = nil
			q.free = q.free[:last]
			return s[:n]
		}
	}
	return make([]Request, n)
}

// Recycle returns a batch slice obtained from PopN to the queue's free
// list once every request in it has completed. The slice must not be used
// after the call. Recycling foreign slices is allowed (they join the pool);
// nil and zero-capacity slices are ignored.
func (q *Queue) Recycle(batch []Request) {
	if cap(batch) == 0 || len(q.free) >= maxFreeBatches {
		return
	}
	batch = batch[:cap(batch)]
	for i := range batch {
		batch[i] = Request{} // release request payloads held by the batch
	}
	q.free = append(q.free, batch[:0])
}

// Reserve pre-sizes the ring to hold at least n requests without growing
// (rounded up to a power of two). Configure calls it with an arena bound
// derived from the unit's profile so steady-state dispatch never regrows.
func (q *Queue) Reserve(n int) {
	if n <= len(q.buf) {
		return
	}
	c := minQueueCap
	for c < n {
		c <<= 1
	}
	buf := make([]Request, c)
	q.copyOut(buf[:q.n])
	q.buf = buf
	q.head = 0
}

// PrimeBatches seeds the batch free list up to k slices of capacity c each
// (bounded by the free-list cap), so the first picks of a fresh unit reuse
// arena batches instead of allocating their way to steady state.
func (q *Queue) PrimeBatches(k, c int) {
	if c < 1 {
		return
	}
	if k > maxFreeBatches {
		k = maxFreeBatches
	}
	for len(q.free) < k {
		q.free = append(q.free, make([]Request, 0, c))
	}
}

// DropPolicy selects which queued requests to execute and which to drop
// (§4.3, §6.3 "Adaptive Batching").
type DropPolicy interface {
	// Pick returns the batch to execute now and the requests dropped.
	// target is the scheduler-assigned batch size; estimate(b) is the
	// predicted completion latency of a batch of size b (queueing excluded).
	// When the queue is non-empty, Pick must make progress: return a
	// non-empty batch or drop at least one request.
	Pick(q *Queue, now time.Duration, target int, estimate func(int) time.Duration) (batch, dropped []Request)
	Name() string
}

// LazyDrop is the Clipper-style policy (§4.3): requests are dropped only
// once their deadline is hopeless — already past, or sooner than even a
// batch-of-one execution could finish — and the batch size is whatever the
// earliest remaining request's budget allows.
type LazyDrop struct{}

// Name implements DropPolicy.
func (LazyDrop) Name() string { return "lazy" }

// Pick implements DropPolicy.
func (LazyDrop) Pick(q *Queue, now time.Duration, target int, estimate func(int) time.Duration) (batch, dropped []Request) {
	return lazyPick(q, now, target, estimate, now+estimate(1))
}

// lazyPick is LazyDrop.Pick with the batch-of-one completion bound already
// computed, so EarlyDrop's fallback can reuse the estimate from its scan.
func lazyPick(q *Queue, now time.Duration, target int, estimate func(int) time.Duration, minFinish time.Duration) (batch, dropped []Request) {
	// Drop requests whose deadline cannot be met even alone.
	expired := 0
	for expired < q.n && q.At(expired).Deadline < minFinish {
		expired++
	}
	if expired > 0 {
		dropped = q.PopN(expired)
	}
	if q.n == 0 {
		return nil, dropped
	}
	// Size the batch by the head-of-line request's remaining budget.
	budget := q.buf[q.head].Deadline - now
	b := 1
	for b < target && b < q.n && estimate(b+1) <= budget {
		b++
	}
	return q.PopN(b), dropped
}

// EarlyDrop is the Nexus policy (§6.3): slide a window of the target batch
// size through the queue and drop the prefix of requests whose deadlines
// would force a sub-optimal batch. It falls back to lazy behaviour when no
// window fits, so it always makes progress.
type EarlyDrop struct{}

// Name implements DropPolicy.
func (EarlyDrop) Name() string { return "early" }

// Pick implements DropPolicy.
func (EarlyDrop) Pick(q *Queue, now time.Duration, target int, estimate func(int) time.Duration) (batch, dropped []Request) {
	if target < 1 {
		target = 1
	}
	n := q.Len()
	if n == 0 {
		return nil, nil
	}
	// While a full window remains, the anchor test compares against the
	// same now+estimate(target) at every position — hoist it instead of
	// re-walking the profile's latency lattice per position.
	if full := n - target; full >= 0 {
		threshold := now + estimate(target)
		for i := 0; i <= full; i++ {
			if q.At(i).Deadline >= threshold {
				dropped = q.PopN(i)
				return q.PopN(target), dropped
			}
		}
	}
	// Tail positions: the window shrinks one request per step, so each
	// estimate(w) here is computed exactly once.
	est1 := time.Duration(-1)
	start := n - target + 1
	if start < 0 {
		start = 0
	}
	for i := start; i < n; i++ {
		w := n - i
		est := estimate(w)
		if w == 1 {
			est1 = est
		}
		if q.At(i).Deadline >= now+est {
			dropped = q.PopN(i)
			return q.PopN(w), dropped
		}
	}
	// No request can anchor a window; behave lazily on what is left,
	// reusing the batch-of-one estimate the tail scan just computed.
	if est1 < 0 {
		est1 = estimate(1)
	}
	return lazyPick(q, now, target, estimate, now+est1)
}
