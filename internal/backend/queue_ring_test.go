package backend

import (
	"math/rand"
	"testing"
	"time"
)

// ringReq builds a request with an ID-derived deadline for ring tests.
func ringReq(id uint64, deadline time.Duration) Request {
	return Request{ID: id, Session: "s", Deadline: deadline}
}

// TestRingWraparound pins FIFO order across the ring seam: pops open space
// at the front, pushes wrap past the end, and At/Head/PopN must still see
// arrival order.
func TestRingWraparound(t *testing.T) {
	var q Queue
	id := uint64(0)
	push := func(k int) {
		for i := 0; i < k; i++ {
			q.Push(ringReq(id, time.Duration(id)))
			id++
		}
	}
	next := uint64(0)
	pop := func(k int) {
		batch := q.PopN(k)
		if len(batch) != k {
			t.Fatalf("PopN(%d) returned %d requests", k, len(batch))
		}
		for _, r := range batch {
			if r.ID != next {
				t.Fatalf("popped ID %d, want %d", r.ID, next)
			}
			next++
		}
	}
	// Fill to the initial capacity, then repeatedly pop a few and push a
	// few so the live region crosses the seam many times.
	push(minQueueCap)
	for round := 0; round < 10; round++ {
		pop(5)
		push(5)
		if q.Len() != minQueueCap {
			t.Fatalf("len = %d, want %d", q.Len(), minQueueCap)
		}
		for i := 0; i < q.Len(); i++ {
			if got := q.At(i).ID; got != next+uint64(i) {
				t.Fatalf("At(%d) = %d, want %d", i, got, next+uint64(i))
			}
		}
	}
}

// TestRingGrowWhileWrapped pins that growing a ring whose live region wraps
// the seam unwraps it correctly: no request lost, duplicated, or reordered.
func TestRingGrowWhileWrapped(t *testing.T) {
	var q Queue
	id := uint64(0)
	for i := 0; i < minQueueCap; i++ {
		q.Push(ringReq(id, 0))
		id++
	}
	// Advance head past the midpoint so subsequent pushes wrap.
	popped := q.PopN(minQueueCap - 3)
	q.Recycle(popped)
	for i := 0; i < minQueueCap - 3; i++ { // refill: live region now wraps
		q.Push(ringReq(id, 0))
		id++
	}
	// One more push forces grow() with a wrapped region.
	q.Push(ringReq(id, 0))
	id++
	want := uint64(minQueueCap - 3)
	if q.Len() != minQueueCap+1 {
		t.Fatalf("len after grow = %d, want %d", q.Len(), minQueueCap+1)
	}
	for i := 0; i < q.Len(); i++ {
		if got := q.At(i).ID; got != want+uint64(i) {
			t.Fatalf("At(%d) = %d after grow, want %d", i, got, want+uint64(i))
		}
	}
}

// TestPopNClampsAndZeroes pins PopN(n > Len) clamping and that vacated
// slots no longer pin request payloads.
func TestPopNClampsAndZeroes(t *testing.T) {
	var q Queue
	for i := 0; i < 5; i++ {
		q.Push(ringReq(uint64(i), time.Duration(i)))
	}
	if got := q.PopN(100); len(got) != 5 {
		t.Fatalf("PopN(100) returned %d requests, want 5", len(got))
	}
	if q.Len() != 0 {
		t.Fatalf("len after drain = %d, want 0", q.Len())
	}
	if got := q.PopN(3); got != nil {
		t.Fatalf("PopN on empty queue = %v, want nil", got)
	}
	if got := q.PopN(0); got != nil {
		t.Fatalf("PopN(0) = %v, want nil", got)
	}
	for i := range q.buf {
		if q.buf[i].ID != 0 || q.buf[i].Session != "" {
			t.Fatalf("vacated slot %d still holds %+v", i, q.buf[i])
		}
	}
}

// refQueue is the obviously-correct slice model the ring is checked against.
type refQueue struct{ items []Request }

func (r *refQueue) Push(req Request) { r.items = append(r.items, req) }
func (r *refQueue) Len() int         { return len(r.items) }
func (r *refQueue) At(i int) Request { return r.items[i] }
func (r *refQueue) PopN(n int) []Request {
	if n > len(r.items) {
		n = len(r.items)
	}
	if n <= 0 {
		return nil
	}
	out := append([]Request(nil), r.items[:n]...)
	r.items = r.items[n:]
	return out
}

// refEarlyPick is the pre-optimization EarlyDrop scan, kept verbatim as the
// behavioural reference: one sliding window, estimate(w) recomputed at
// every position, lazy fallback.
func refEarlyPick(q *refQueue, now time.Duration, target int, estimate func(int) time.Duration) (batch, dropped []Request) {
	if target < 1 {
		target = 1
	}
	n := q.Len()
	if n == 0 {
		return nil, nil
	}
	for i := 0; i < n; i++ {
		w := target
		if rest := n - i; rest < w {
			w = rest
		}
		if q.At(i).Deadline >= now+estimate(w) {
			dropped = q.PopN(i)
			return q.PopN(w), dropped
		}
	}
	return refLazyPick(q, now, target, estimate)
}

// refLazyPick is the pre-optimization LazyDrop scan.
func refLazyPick(q *refQueue, now time.Duration, target int, estimate func(int) time.Duration) (batch, dropped []Request) {
	minFinish := now + estimate(1)
	expired := 0
	for expired < q.Len() && q.At(expired).Deadline < minFinish {
		expired++
	}
	if expired > 0 {
		dropped = q.PopN(expired)
	}
	if q.Len() == 0 {
		return nil, dropped
	}
	budget := q.At(0).Deadline - now
	b := 1
	for b < target && b < q.Len() && estimate(b+1) <= budget {
		b++
	}
	return q.PopN(b), dropped
}

func sameIDs(t *testing.T, kind string, got, want []Request) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d requests, want %d", kind, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s[%d]: got ID %d, want %d", kind, i, got[i].ID, want[i].ID)
		}
	}
}

// TestDifferentialDropPolicies drives the optimized ring queue and drop
// policies against the reference model on randomized workloads: random
// pushes (including non-monotone deadlines, as the frontend retry path can
// produce), random targets, and a counting estimate so the optimized scan
// is also checked for not calling estimate more often than it must.
func TestDifferentialDropPolicies(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var ref refQueue
		var early EarlyDrop
		var lazy LazyDrop
		alpha := time.Duration(rng.Intn(5)+1) * time.Millisecond
		beta := time.Duration(rng.Intn(10)) * time.Millisecond
		estimate := func(b int) time.Duration { return alpha*time.Duration(b) + beta }
		now := time.Duration(0)
		id := uint64(0)
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 6: // push a burst
				for k := rng.Intn(4); k >= 0; k-- {
					// Deadlines scatter around now, occasionally in the
					// past and occasionally out of arrival order.
					dl := now + time.Duration(rng.Intn(120)-20)*time.Millisecond
					r := ringReq(id, dl)
					id++
					q.Push(r)
					ref.Push(r)
				}
			case op < 9: // early-drop pick
				target := rng.Intn(8)
				gotB, gotD := early.Pick(&q, now, target, estimate)
				wantB, wantD := refEarlyPick(&ref, now, target, estimate)
				sameIDs(t, "early batch", gotB, wantB)
				sameIDs(t, "early dropped", gotD, wantD)
				q.Recycle(gotB)
				q.Recycle(gotD)
			default: // lazy pick
				target := rng.Intn(8) + 1
				gotB, gotD := lazy.Pick(&q, now, target, estimate)
				wantB, wantD := refLazyPick(&ref, now, target, estimate)
				sameIDs(t, "lazy batch", gotB, wantB)
				sameIDs(t, "lazy dropped", gotD, wantD)
				q.Recycle(gotB)
				q.Recycle(gotD)
			}
			if q.Len() != ref.Len() {
				t.Fatalf("seed %d step %d: len %d vs ref %d", seed, step, q.Len(), ref.Len())
			}
			now += time.Duration(rng.Intn(20)) * time.Millisecond
		}
	}
}

// TestEstimateCallBudget pins the optimization itself: one EarlyDrop pick
// over a queue with a full window at every position must evaluate the
// latency model once, not once per scanned position.
func TestEstimateCallBudget(t *testing.T) {
	var q Queue
	for i := 0; i < 64; i++ {
		q.Push(ringReq(uint64(i), time.Hour)) // generous deadlines: window anchors at 0
	}
	calls := 0
	estimate := func(b int) time.Duration {
		calls++
		return time.Duration(b) * time.Millisecond
	}
	var early EarlyDrop
	batch, dropped := early.Pick(&q, 0, 8, estimate)
	if len(batch) != 8 || len(dropped) != 0 {
		t.Fatalf("pick = %d batch / %d dropped, want 8/0", len(batch), len(dropped))
	}
	if calls != 1 {
		t.Fatalf("estimate called %d times for a hoistable scan, want 1", calls)
	}
}
