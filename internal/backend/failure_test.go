package backend

import (
	"errors"
	"testing"
	"time"

	"nexus/internal/gpusim"
	"nexus/internal/profiler"
	"nexus/internal/simclock"
)

func configureUnit(t *testing.T, h *harness) {
	t.Helper()
	if err := h.backend.Configure([]Unit{{ID: "u", Profile: testUnitProfile(), TargetBatch: 8}}); err != nil {
		t.Fatal(err)
	}
	h.clock.RunUntil(time.Second) // model load
}

func TestEnqueueSentinelErrors(t *testing.T) {
	h := newHarness(t, Config{Overlap: true, MaxQueue: 2}, gpusim.Exclusive)
	configureUnit(t, h)
	deadline := h.clock.Now() + time.Hour
	if err := h.backend.Enqueue("ghost", Request{ID: 1, Deadline: deadline}); !errors.Is(err, ErrUnitRemoved) {
		t.Fatalf("unknown unit error = %v, want ErrUnitRemoved", err)
	}
	// Fill the bounded queue without letting the clock drain it (the first
	// request may go straight to the GPU, so push until the bound bites).
	var full error
	for i := 0; i < 10 && full == nil; i++ {
		full = h.backend.Enqueue("u", Request{ID: uint64(10 + i), Deadline: deadline})
	}
	if !errors.Is(full, ErrQueueFull) {
		t.Fatalf("full queue error = %v, want ErrQueueFull", full)
	}
	h.backend.Fail()
	if err := h.backend.Enqueue("u", Request{ID: 13, Deadline: deadline}); !errors.Is(err, ErrBackendDown) {
		t.Fatalf("dead backend error = %v, want ErrBackendDown", err)
	}
}

func TestFailDrainsQueueAsFailures(t *testing.T) {
	h := newHarness(t, Config{Overlap: true}, gpusim.Exclusive)
	configureUnit(t, h)
	deadline := h.clock.Now() + time.Hour
	for i := 0; i < 5; i++ {
		if err := h.backend.Enqueue("u", Request{ID: uint64(i), Deadline: deadline}); err != nil {
			t.Fatal(err)
		}
	}
	h.backend.Fail()
	h.clock.Run()
	if h.dropped != 5 {
		t.Fatalf("dropped = %d, want all 5 queued requests lost", h.dropped)
	}
	if h.backend.Alive() {
		t.Fatal("backend alive after Fail")
	}
	if err := h.backend.Configure([]Unit{{ID: "u2", Profile: testUnitProfile(), TargetBatch: 8}}); !errors.Is(err, ErrBackendDown) {
		t.Fatalf("Configure on dead backend = %v, want ErrBackendDown", err)
	}
}

func TestStaleIncarnationCompletionsAreFailures(t *testing.T) {
	h := newHarness(t, Config{Overlap: true}, gpusim.Exclusive)
	configureUnit(t, h)
	deadline := h.clock.Now() + time.Hour
	if err := h.backend.Enqueue("u", Request{ID: 1, Deadline: deadline}); err != nil {
		t.Fatal(err)
	}
	// Let the batch reach the GPU, then crash mid-execution: the completion
	// belongs to the old incarnation and must surface as a failure, not a
	// success on the restarted node.
	h.clock.RunUntil(h.clock.Now() + time.Millisecond)
	h.backend.Fail()
	h.backend.Restart()
	h.clock.Run()
	if h.good != 0 || h.dropped != 1 {
		t.Fatalf("good=%d dropped=%d, want the in-flight request lost", h.good, h.dropped)
	}
}

func TestRestartRejoinsEmpty(t *testing.T) {
	h := newHarness(t, Config{Overlap: true}, gpusim.Exclusive)
	configureUnit(t, h)
	h.backend.Fail()
	if h.backend.Restart(); !h.backend.Alive() {
		t.Fatal("backend dead after Restart")
	}
	// A restarted node lost its units; it serves again only after the
	// control plane reconfigures it.
	if err := h.backend.Enqueue("u", Request{ID: 1, Deadline: time.Hour}); !errors.Is(err, ErrUnitRemoved) {
		t.Fatalf("enqueue after restart = %v, want ErrUnitRemoved", err)
	}
	if err := h.backend.Configure([]Unit{{ID: "u", Profile: testUnitProfile(), TargetBatch: 8}}); err != nil {
		t.Fatal(err)
	}
	h.clock.RunUntil(h.clock.Now() + time.Second)
	if err := h.backend.Enqueue("u", Request{ID: 2, Arrival: h.clock.Now(), Deadline: h.clock.Now() + time.Hour}); err != nil {
		t.Fatal(err)
	}
	h.clock.Run()
	if h.good != 1 {
		t.Fatalf("good = %d, want the post-restart request served", h.good)
	}
}

func TestHeartbeatEmitsOnlyWhileAlive(t *testing.T) {
	clock := simclock.New()
	dev := gpusim.New(clock, "g", profiler.GTX1080Ti, gpusim.Exclusive)
	be := New("b", clock, dev, Config{}, nil)
	var beats []time.Duration
	be.StartHeartbeat(100*time.Millisecond, func(id string) {
		if id != "b" {
			t.Fatalf("beat from %q", id)
		}
		beats = append(beats, clock.Now())
	})
	clock.RunUntil(350 * time.Millisecond)
	if len(beats) != 3 {
		t.Fatalf("beats while alive = %d, want 3", len(beats))
	}
	be.Fail()
	clock.RunUntil(time.Second)
	if len(beats) != 3 {
		t.Fatalf("dead backend kept beating: %d beats", len(beats))
	}
	be.StopHeartbeat()
	clock.Run() // terminates only because the ticker is stopped
}

func TestOutcomeTaxonomy(t *testing.T) {
	if OK.Bad() {
		t.Fatal("OK classified bad")
	}
	for _, o := range []Outcome{DropDeadline, DropReconfig, DropOverload, DropUnroutable, DropFailure} {
		if !o.Bad() {
			t.Fatalf("%v classified good", o)
		}
	}
	if OK.String() != "ok" || DropFailure.String() != "failure" || DropOverload.String() != "overload" {
		t.Fatal("outcome names changed; traces and tables depend on them")
	}
}
