// Package trace records the lifecycle of requests moving through a Nexus
// deployment: arrival at the frontend, dispatch to a backend, batch
// execution, and completion or drop. Traces support debugging scheduling
// pathologies (which node dropped, after how long in queue, at what batch
// size) and power the nexus-sim CLI's --trace output.
//
// Tracing is allocation-conscious: events go into a fixed-capacity ring
// buffer, and a nil *Tracer is a valid no-op so the data plane never
// branches on configuration.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds, in lifecycle order.
const (
	Arrive   Kind = "arrive"   // request entered the frontend
	Dispatch Kind = "dispatch" // routed to a backend unit
	Execute  Kind = "execute"  // included in a batch submitted to the GPU
	Complete Kind = "complete" // response delivered
	Drop     Kind = "drop"     // dropped (admission control or deadline)
)

// Event is one lifecycle record.
type Event struct {
	At      time.Duration `json:"at"`
	Kind    Kind          `json:"kind"`
	ReqID   uint64        `json:"req"`
	Session string        `json:"session,omitempty"`
	Backend string        `json:"backend,omitempty"`
	Unit    string        `json:"unit,omitempty"`
	Batch   int           `json:"batch,omitempty"`
	Detail  string        `json:"detail,omitempty"`
}

// Tracer is a bounded in-memory event recorder. A nil Tracer discards
// events. Tracer is not safe for concurrent use; the simulation is
// single-threaded by design.
type Tracer struct {
	events []Event
	next   int
	filled bool
	total  uint64
	filter func(Event) bool
}

// New creates a tracer holding up to capacity events (older events are
// overwritten). Capacity below 1 panics.
func New(capacity int) *Tracer {
	if capacity < 1 {
		panic("trace: capacity must be >= 1")
	}
	return &Tracer{events: make([]Event, capacity)}
}

// SetFilter installs a predicate; events failing it are discarded.
// A nil predicate accepts everything.
func (t *Tracer) SetFilter(f func(Event) bool) {
	if t == nil {
		return
	}
	t.filter = f
}

// Record appends an event (no-op on a nil tracer).
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	if t.filter != nil && !t.filter(e) {
		return
	}
	t.events[t.next] = e
	t.next++
	t.total++
	if t.next == len(t.events) {
		t.next = 0
		t.filled = true
	}
}

// Total returns how many events were recorded (including overwritten ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.filled {
		out := make([]Event, t.next)
		copy(out, t.events[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// ByRequest groups retained events per request ID, each group in order.
func (t *Tracer) ByRequest() map[uint64][]Event {
	out := make(map[uint64][]Event)
	for _, e := range t.Events() {
		out[e.ReqID] = append(out[e.ReqID], e)
	}
	return out
}

// RequestLatency reconstructs, for every completed request retained in the
// buffer, the arrival-to-completion latency.
func (t *Tracer) RequestLatency() map[uint64]time.Duration {
	out := make(map[uint64]time.Duration)
	arrivals := make(map[uint64]time.Duration)
	for _, e := range t.Events() {
		switch e.Kind {
		case Arrive:
			arrivals[e.ReqID] = e.At
		case Complete:
			if at, ok := arrivals[e.ReqID]; ok {
				out[e.ReqID] = e.At - at
			}
		}
	}
	return out
}

// WriteJSON streams retained events as a JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.Events())
}

// WriteText renders retained events human-readably, one per line.
func (t *Tracer) WriteText(w io.Writer) error {
	for _, e := range t.Events() {
		var err error
		switch e.Kind {
		case Execute:
			_, err = fmt.Fprintf(w, "%-14v %-9s req=%-8d %s unit=%s batch=%d\n",
				e.At, e.Kind, e.ReqID, e.Backend, e.Unit, e.Batch)
		case Drop:
			_, err = fmt.Fprintf(w, "%-14v %-9s req=%-8d %s %s\n",
				e.At, e.Kind, e.ReqID, e.Session, e.Detail)
		default:
			_, err = fmt.Fprintf(w, "%-14v %-9s req=%-8d %s %s\n",
				e.At, e.Kind, e.ReqID, e.Session, e.Backend)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates retained events by kind.
func (t *Tracer) Summary() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range t.Events() {
		out[e.Kind]++
	}
	return out
}

// Sessions lists the distinct sessions seen in retained events, sorted.
func (t *Tracer) Sessions() []string {
	set := make(map[string]bool)
	for _, e := range t.Events() {
		if e.Session != "" {
			set[e.Session] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
