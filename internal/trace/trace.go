// Package trace is the cluster's observability layer. It records the
// lifecycle of requests moving through a Nexus deployment as span-structured
// events — frontend arrival, route decision, enqueue after the network hop,
// batch execution on the GPU, and completion or drop — and the control
// plane's per-epoch decisions as an audit log (squishy-bin-packing
// placements, query latency splits, early-drop window culls).
//
// Traces answer the questions the paper's design motivates: which duty
// cycle a session landed in (§6.1), how a complex query's SLO budget was
// split (§6.2), and which window early-drop culled (§4.3). Exporters
// include JSON (millisecond timestamps), Chrome trace-event format
// (chrome://tracing-loadable, see chrome.go), and per-stage latency
// breakdowns (analyze.go) consumed by the nexus-trace CLI.
//
// Tracing is allocation-conscious: events go into a fixed-capacity ring
// buffer, and a nil *Tracer is a valid no-op so the data plane never
// branches on configuration.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds, in lifecycle order.
const (
	Arrive   Kind = "arrive"   // request entered the frontend
	Route    Kind = "route"    // frontend picked a backend/unit (smooth WRR)
	Enqueue  Kind = "enqueue"  // entered the unit's queue after the network hop
	Execute  Kind = "execute"  // included in a batch submitted to the GPU
	Complete Kind = "complete" // response delivered
	Drop     Kind = "drop"     // dropped (admission control, reconfig, failure, ...)
)

// Event is one lifecycle record. The Dur field carries the span the event
// closes, by kind: Enqueue — time since frontend arrival (dispatch + network
// hop); Execute — the batch's planned GPU latency (utilization timelines);
// Complete and Drop — total time in system. Inc tags Execute events with the
// backend's incarnation so events from before a crash do not attribute to
// the restarted node.
type Event struct {
	At      time.Duration
	Kind    Kind
	ReqID   uint64
	Session string
	Backend string
	Unit    string
	Batch   int
	Dur     time.Duration
	Inc     uint64
	Cause   string // drop cause, matching the backend outcome taxonomy
	Detail  string
}

// eventJSON is the wire form: timestamps and durations in milliseconds with
// explicit units (raw nanosecond integers are unreadable in dumps), and
// batch without omitempty — a legitimate batch-size-0 record must stay
// distinguishable from an unset field.
type eventJSON struct {
	AtMS    float64 `json:"at_ms"`
	Kind    Kind    `json:"kind"`
	ReqID   uint64  `json:"req"`
	Session string  `json:"session,omitempty"`
	Backend string  `json:"backend,omitempty"`
	Unit    string  `json:"unit,omitempty"`
	Batch   int     `json:"batch"`
	DurMS   float64 `json:"dur_ms"`
	Inc     uint64  `json:"inc,omitempty"`
	Cause   string  `json:"cause,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// MS converts a duration to milliseconds for export.
func MS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// FromMS converts exported milliseconds back to a duration, rounding to the
// nearest nanosecond so a marshal/unmarshal round trip is exact.
func FromMS(ms float64) time.Duration {
	return time.Duration(math.Round(ms * float64(time.Millisecond)))
}

// MarshalJSON implements json.Marshaler using the millisecond wire schema.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		AtMS: MS(e.At), Kind: e.Kind, ReqID: e.ReqID, Session: e.Session,
		Backend: e.Backend, Unit: e.Unit, Batch: e.Batch, DurMS: MS(e.Dur),
		Inc: e.Inc, Cause: e.Cause, Detail: e.Detail,
	})
}

// UnmarshalJSON implements json.Unmarshaler for the millisecond wire schema.
func (e *Event) UnmarshalJSON(data []byte) error {
	var w eventJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*e = Event{
		At: FromMS(w.AtMS), Kind: w.Kind, ReqID: w.ReqID, Session: w.Session,
		Backend: w.Backend, Unit: w.Unit, Batch: w.Batch, Dur: FromMS(w.DurMS),
		Inc: w.Inc, Cause: w.Cause, Detail: w.Detail,
	}
	return nil
}

// Tracer is a bounded in-memory event recorder. A nil Tracer discards
// events. Tracer is not safe for concurrent use; the simulation is
// single-threaded by design.
type Tracer struct {
	events []Event
	next   int
	filled bool
	total  uint64
	filter func(Event) bool
}

// New creates a tracer holding up to capacity events (older events are
// overwritten). Capacity below 1 panics.
func New(capacity int) *Tracer {
	if capacity < 1 {
		panic("trace: capacity must be >= 1")
	}
	return &Tracer{events: make([]Event, capacity)}
}

// SetFilter installs a predicate; events failing it are discarded.
// A nil predicate accepts everything.
func (t *Tracer) SetFilter(f func(Event) bool) {
	if t == nil {
		return
	}
	t.filter = f
}

// Record appends an event (no-op on a nil tracer). Filtered events are
// discarded before touching the ring: they advance neither the write cursor
// nor the total, so a filter cannot evict retained events.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	if t.filter != nil && !t.filter(e) {
		return
	}
	t.events[t.next] = e
	t.next++
	t.total++
	if t.next == len(t.events) {
		t.next = 0
		t.filled = true
	}
}

// Reserve returns the next ring slot, already counted, for dispatch-hot-path
// callers to fill in place: one struct write into the ring, no argument copy,
// and the method inlines (Record cannot — the filter call exceeds the inline
// budget). The slot still holds its previous occupant until overwritten, so
// callers must assign a complete Event. Reserve bypasses any SetFilter
// predicate; a nil tracer returns nil.
func (t *Tracer) Reserve() *Event {
	if t == nil {
		return nil
	}
	s := &t.events[t.next]
	t.next++
	t.total++
	if t.next == len(t.events) {
		t.next = 0
		t.filled = true
	}
	return s
}

// Total returns how many events were recorded (including overwritten ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.filled {
		out := make([]Event, t.next)
		copy(out, t.events[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// ByRequest groups retained events per request ID, each group in order.
func (t *Tracer) ByRequest() map[uint64][]Event {
	out := make(map[uint64][]Event)
	for _, e := range t.Events() {
		out[e.ReqID] = append(out[e.ReqID], e)
	}
	return out
}

// RequestLatency reconstructs, for every completed request retained in the
// buffer, the arrival-to-completion latency.
func (t *Tracer) RequestLatency() map[uint64]time.Duration {
	out := make(map[uint64]time.Duration)
	arrivals := make(map[uint64]time.Duration)
	for _, e := range t.Events() {
		switch e.Kind {
		case Arrive:
			arrivals[e.ReqID] = e.At
		case Complete:
			if at, ok := arrivals[e.ReqID]; ok {
				out[e.ReqID] = e.At - at
			}
		}
	}
	return out
}

// WriteJSON streams retained events as a JSON array in the millisecond
// wire schema.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.Events())
}

// ReadJSON parses a JSON event array previously produced by WriteJSON.
// Empty and truncated inputs are reported as such — they usually mean a
// run crashed mid-write or the wrong file was passed, and "unexpected EOF"
// alone sends people debugging the wrong layer.
func ReadJSON(r io.Reader) ([]Event, error) {
	var out []Event
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		switch {
		case errors.Is(err, io.EOF):
			return nil, fmt.Errorf("trace: empty input: no JSON event array found")
		case errors.Is(err, io.ErrUnexpectedEOF):
			return nil, fmt.Errorf("trace: truncated input: event array ends mid-document (incomplete write?): %w", err)
		}
		return nil, fmt.Errorf("trace: parsing event JSON: %w", err)
	}
	return out, nil
}

// WriteText renders retained events human-readably, one per line.
func (t *Tracer) WriteText(w io.Writer) error {
	for _, e := range t.Events() {
		var err error
		switch e.Kind {
		case Execute:
			_, err = fmt.Fprintf(w, "%-14v %-9s req=%-8d %s unit=%s batch=%d inc=%d\n",
				e.At, e.Kind, e.ReqID, e.Backend, e.Unit, e.Batch, e.Inc)
		case Drop:
			_, err = fmt.Fprintf(w, "%-14v %-9s req=%-8d %s cause=%s %s\n",
				e.At, e.Kind, e.ReqID, e.Session, e.Cause, e.Detail)
		default:
			_, err = fmt.Fprintf(w, "%-14v %-9s req=%-8d %s %s\n",
				e.At, e.Kind, e.ReqID, e.Session, e.Backend)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates retained events by kind.
func (t *Tracer) Summary() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range t.Events() {
		out[e.Kind]++
	}
	return out
}

// Sessions lists the distinct sessions seen in retained events, sorted.
func (t *Tracer) Sessions() []string {
	set := make(map[string]bool)
	for _, e := range t.Events() {
		if e.Session != "" {
			set[e.Session] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
