package trace

import (
	"sort"
	"strings"
	"testing"
	"time"
)

const ms = time.Millisecond

// sortByTime puts a hand-built stream into the chronological order a real
// trace has (the analyzer consumes events as recorded, time-ascending).
func sortByTime(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
}

// fullSpan emits the canonical event sequence for one request.
func fullSpan(id uint64, session string, arrive, route, enqueue, execute, complete time.Duration,
	backend, unit string, batchDur time.Duration) []Event {
	return []Event{
		{At: arrive, Kind: Arrive, ReqID: id, Session: session},
		{At: route, Kind: Route, ReqID: id, Session: session, Backend: backend},
		{At: enqueue, Kind: Enqueue, ReqID: id, Session: session, Backend: backend, Unit: unit},
		{At: execute, Kind: Execute, ReqID: id, Session: session, Backend: backend, Unit: unit, Dur: batchDur, Inc: 1},
		{At: complete, Kind: Complete, ReqID: id, Session: session, Backend: backend},
	}
}

func TestAttributeBlameSingleRequest(t *testing.T) {
	events := fullSpan(1, "s", 0, 2*ms, 5*ms, 9*ms, 20*ms, "b0", "u", 10*ms)
	blames := AttributeBlame(events)
	if len(blames) != 1 {
		t.Fatalf("got %d blames, want 1", len(blames))
	}
	b := blames[0]
	want := StageBlame{
		Admission: 2 * ms, Dispatch: 3 * ms, Stall: 0, Queue: 4 * ms,
		GPU: 11 * ms, Service: 11 * ms, Interference: 0, Total: 20 * ms,
	}
	if b.StageBlame != want {
		t.Fatalf("blame mismatch:\n got %+v\nwant %+v", b.StageBlame, want)
	}
}

func TestAttributeBlameNoRoute(t *testing.T) {
	// Without a Route event everything up to the enqueue is dispatch.
	events := []Event{
		{At: 0, Kind: Arrive, ReqID: 1, Session: "s"},
		{At: 4 * ms, Kind: Enqueue, ReqID: 1, Session: "s", Backend: "b0", Unit: "u"},
		{At: 6 * ms, Kind: Execute, ReqID: 1, Session: "s", Backend: "b0", Unit: "u", Dur: 5 * ms, Inc: 1},
		{At: 12 * ms, Kind: Complete, ReqID: 1, Session: "s"},
	}
	b := AttributeBlame(events)
	if len(b) != 1 {
		t.Fatalf("got %d blames, want 1", len(b))
	}
	if b[0].Admission != 0 || b[0].Dispatch != 4*ms {
		t.Fatalf("routeless span: admission=%v dispatch=%v, want 0/4ms", b[0].Admission, b[0].Dispatch)
	}
}

// TestAttributeBlameBatchStall: two members of the same batch — the early
// member's wait until the batch stopped filling is stall, not queue.
func TestAttributeBlameBatchStall(t *testing.T) {
	var events []Event
	events = append(events, fullSpan(1, "s", 0, 1*ms, 5*ms, 9*ms, 20*ms, "b0", "u", 10*ms)...)
	events = append(events, fullSpan(2, "s", 0, 1*ms, 8*ms, 9*ms, 20*ms, "b0", "u", 10*ms)...)
	sortByTime(events)
	blames := AttributeBlame(events)
	if len(blames) != 2 {
		t.Fatalf("got %d blames, want 2", len(blames))
	}
	byID := map[uint64]RequestBlame{}
	for _, b := range blames {
		byID[b.ReqID] = b
	}
	// Batch closed at the last member's enqueue (8ms).
	if got := byID[1]; got.Stall != 3*ms || got.Queue != 1*ms {
		t.Errorf("req 1: stall=%v queue=%v, want 3ms/1ms", got.Stall, got.Queue)
	}
	if got := byID[2]; got.Stall != 0 || got.Queue != 1*ms {
		t.Errorf("req 2: stall=%v queue=%v, want 0/1ms", got.Stall, got.Queue)
	}
}

// TestAttributeBlameInterference: two units co-resident on one backend with
// overlapping batch windows blame the overlap as interference; a third
// request alone on another backend stays clean.
func TestAttributeBlameInterference(t *testing.T) {
	var events []Event
	events = append(events, fullSpan(1, "a", 0, 1*ms, 5*ms, 10*ms, 21*ms, "b0", "uA", 10*ms)...)
	events = append(events, fullSpan(2, "b", 0, 1*ms, 5*ms, 15*ms, 26*ms, "b0", "uB", 10*ms)...)
	events = append(events, fullSpan(3, "c", 0, 1*ms, 5*ms, 10*ms, 21*ms, "b1", "uC", 10*ms)...)
	sortByTime(events)
	blames := AttributeBlame(events)
	byID := map[uint64]RequestBlame{}
	for _, b := range blames {
		byID[b.ReqID] = b
	}
	// uA's window [10,20) overlaps uB's [15,25) for 5ms, and vice versa.
	if got := byID[1]; got.Interference != 5*ms || got.Service != got.GPU-5*ms {
		t.Errorf("req 1: interference=%v service=%v gpu=%v, want 5ms split", got.Interference, got.Service, got.GPU)
	}
	if got := byID[2]; got.Interference != 5*ms {
		t.Errorf("req 2: interference=%v, want 5ms", got.Interference)
	}
	if got := byID[3]; got.Interference != 0 {
		t.Errorf("req 3 (solo backend): interference=%v, want 0", got.Interference)
	}
}

// TestAttributeBlameSkipsPartialSpans: drops and half-seen requests produce
// no decomposition rather than a misattributed one.
func TestAttributeBlameSkipsPartialSpans(t *testing.T) {
	events := []Event{
		// Dropped request: full prefix, then Drop.
		{At: 0, Kind: Arrive, ReqID: 1, Session: "s"},
		{At: 2 * ms, Kind: Enqueue, ReqID: 1, Session: "s", Backend: "b0", Unit: "u"},
		{At: 5 * ms, Kind: Drop, ReqID: 1, Session: "s", Cause: "deadline"},
		// Completed but never seen executing (ring eviction).
		{At: 0, Kind: Arrive, ReqID: 2, Session: "s"},
		{At: 9 * ms, Kind: Complete, ReqID: 2, Session: "s"},
		// Complete without any prior events at all.
		{At: 9 * ms, Kind: Complete, ReqID: 3, Session: "s"},
	}
	if blames := AttributeBlame(events); len(blames) != 0 {
		t.Fatalf("partial spans attributed: %+v", blames)
	}
}

// TestAttributeBlameReconciles is the exact-sum contract on a busier
// synthetic stream: stages always sum to the traced total.
func TestAttributeBlameReconciles(t *testing.T) {
	var events []Event
	for i := uint64(0); i < 40; i++ {
		base := time.Duration(i) * ms
		events = append(events, fullSpan(i, "s",
			base, base+1*ms, base+2*ms, base+4*ms, base+9*ms, "b0", "u", 4*ms)...)
	}
	blames := AttributeBlame(events)
	if len(blames) != 40 {
		t.Fatalf("got %d blames, want 40", len(blames))
	}
	for _, b := range blames {
		if sum := b.Admission + b.Dispatch + b.Stall + b.Queue + b.GPU; sum != b.Total {
			t.Fatalf("req %d: stages sum to %v, total %v", b.ReqID, sum, b.Total)
		}
		if b.Service+b.Interference != b.GPU {
			t.Fatalf("req %d: service %v + interference %v != gpu %v", b.ReqID, b.Service, b.Interference, b.GPU)
		}
	}
}

func TestSessionBlames(t *testing.T) {
	var events []Event
	// Ten requests with distinct totals 10..19ms and one 40ms outlier. With
	// 11 sorted totals the p99 rank is index int(0.99*10)=9 — the 19ms
	// request — so the tail cohort is {19ms, 40ms}.
	for i := uint64(0); i < 10; i++ {
		base := time.Duration(i) * 100 * ms
		events = append(events, fullSpan(i, "s",
			base, base+1*ms, base+2*ms, base+4*ms, base+time.Duration(10+i)*ms, "b0", "u", 4*ms)...)
	}
	events = append(events, fullSpan(99, "s", 5000*ms, 5001*ms, 5002*ms, 5030*ms, 5040*ms, "b0", "u", 8*ms)...)
	sbs := SessionBlames(AttributeBlame(events))
	if len(sbs) != 1 {
		t.Fatalf("got %d sessions, want 1", len(sbs))
	}
	sb := sbs[0]
	if sb.Session != "s" || sb.Count != 11 {
		t.Fatalf("session %q count %d, want s/11", sb.Session, sb.Count)
	}
	if sb.Exemplar != 99 {
		t.Fatalf("exemplar %d, want the slowest request 99", sb.Exemplar)
	}
	if sb.P99 != 19*ms {
		t.Fatalf("p99 %v, want 19ms", sb.P99)
	}
	if sb.TailCount != 2 {
		t.Fatalf("tail cohort %d, want 2", sb.TailCount)
	}
	// Tail mean queue: the 19ms request queued 2ms (enqueue 2ms → execute
	// 4ms), the outlier 28ms (enqueue 5002ms → execute 5030ms).
	if sb.Tail.Queue != 15*ms {
		t.Fatalf("tail queue %v, want 15ms", sb.Tail.Queue)
	}
	if sum := sb.Tail.Admission + sb.Tail.Dispatch + sb.Tail.Stall + sb.Tail.Queue + sb.Tail.GPU; sum != sb.Tail.Total {
		t.Fatalf("tail stages sum to %v, total %v", sum, sb.Tail.Total)
	}
}

func TestWriteBlameReport(t *testing.T) {
	events := fullSpan(7, "game", 0, 1*ms, 2*ms, 4*ms, 10*ms, "b0", "u", 4*ms)
	var sb strings.Builder
	if err := WriteBlameReport(&sb, SessionBlames(AttributeBlame(events))); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"p99 blame breakdown", "game", "exemplar=req 7",
		"admission", "dispatch", "batch-stall", "queue", "gpu-service", "interference",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Empty input writes nothing.
	var empty strings.Builder
	if err := WriteBlameReport(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("empty blame report wrote %q", empty.String())
	}
}
