package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// StageStats summarizes one latency stage across requests.
type StageStats struct {
	Count int
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// GPUSlot is one second of a unit's duty-cycle timeline: how much GPU time
// the unit's batches occupied within that wall-clock second.
type GPUSlot struct {
	Second int // simulation second (floor(At / 1s))
	Busy   time.Duration
}

// UnitTimeline is one execution unit's utilization timeline.
type UnitTimeline struct {
	Backend string
	Unit    string
	Batches int
	Slots   []GPUSlot
}

// Analysis is the digest nexus-trace prints: per-stage latency breakdowns
// reconstructed from request spans, drop attribution by cause, and per-GPU
// duty-cycle utilization.
type Analysis struct {
	Requests  int // requests with an Arrive event retained
	Completed int
	Dropped   int

	// Stage breakdowns over completed requests. Dispatch is arrival →
	// enqueue (frontend routing + network hop), Queue is enqueue → batch
	// submission, GPU is batch submission → completion (execute + reply
	// hop), Total is arrival → completion.
	Dispatch StageStats
	Queue    StageStats
	GPU      StageStats
	Total    StageStats

	// DropsByCause counts Drop events per cause (outcome taxonomy).
	DropsByCause map[string]int

	// Timelines is per-unit GPU utilization, sorted by backend then unit.
	Timelines []UnitTimeline

	// Blame is the per-session p99 tail attribution: for every session, a
	// stage-exact decomposition (admission, dispatch, batch-formation stall,
	// queue, GPU service, co-residency interference) averaged over the p99
	// cohort, with an exemplar request ID. Built by AttributeBlame.
	Blame []SessionBlame
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func makeStats(samples []time.Duration) StageStats {
	if len(samples) == 0 {
		return StageStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return StageStats{
		Count: len(samples),
		P50:   quantile(samples, 0.50),
		P99:   quantile(samples, 0.99),
		Max:   samples[len(samples)-1],
	}
}

// Analyze reconstructs per-request spans from a flat event stream. Requests
// missing their Arrive event (evicted by ring wraparound) are excluded from
// stage stats; Drop events always count toward attribution.
func Analyze(events []Event) *Analysis {
	a := &Analysis{DropsByCause: make(map[string]int)}

	type span struct {
		arrive, enqueue, execute time.Duration
		hasEnqueue, hasExecute   bool
	}
	spans := make(map[uint64]*span)
	var dispatch, queue, gpu, total []time.Duration

	type unitKey struct{ backend, unit string }
	type batchKey struct {
		unitKey
		at  time.Duration
		inc uint64
	}
	seenBatch := map[batchKey]bool{}
	busy := map[unitKey]map[int]time.Duration{}
	batches := map[unitKey]int{}

	for _, e := range events {
		switch e.Kind {
		case Arrive:
			a.Requests++
			spans[e.ReqID] = &span{arrive: e.At}
		case Enqueue:
			if s, ok := spans[e.ReqID]; ok {
				s.enqueue, s.hasEnqueue = e.At, true
			}
		case Execute:
			if s, ok := spans[e.ReqID]; ok {
				s.execute, s.hasExecute = e.At, true
			}
			uk := unitKey{e.Backend, e.Unit}
			bk := batchKey{uk, e.At, e.Inc}
			if !seenBatch[bk] {
				seenBatch[bk] = true
				batches[uk]++
				if busy[uk] == nil {
					busy[uk] = map[int]time.Duration{}
				}
				// Spread the batch's GPU time across the seconds it spans.
				start, remaining := e.At, e.Dur
				for remaining > 0 {
					sec := int(start / time.Second)
					end := time.Duration(sec+1) * time.Second
					chunk := remaining
					if start+chunk > end {
						chunk = end - start
					}
					busy[uk][sec] += chunk
					start += chunk
					remaining -= chunk
				}
			}
		case Complete:
			a.Completed++
			s, ok := spans[e.ReqID]
			if !ok {
				continue
			}
			total = append(total, e.At-s.arrive)
			if s.hasEnqueue {
				dispatch = append(dispatch, s.enqueue-s.arrive)
				if s.hasExecute {
					queue = append(queue, s.execute-s.enqueue)
					gpu = append(gpu, e.At-s.execute)
				}
			}
			delete(spans, e.ReqID)
		case Drop:
			a.Dropped++
			cause := e.Cause
			if cause == "" {
				cause = "unknown"
			}
			a.DropsByCause[cause]++
			delete(spans, e.ReqID)
		}
	}

	a.Dispatch = makeStats(dispatch)
	a.Queue = makeStats(queue)
	a.GPU = makeStats(gpu)
	a.Total = makeStats(total)

	units := make([]unitKey, 0, len(batches))
	for uk := range batches {
		units = append(units, uk)
	}
	sort.Slice(units, func(i, j int) bool {
		if units[i].backend != units[j].backend {
			return units[i].backend < units[j].backend
		}
		return units[i].unit < units[j].unit
	})
	for _, uk := range units {
		tl := UnitTimeline{Backend: uk.backend, Unit: uk.unit, Batches: batches[uk]}
		secs := make([]int, 0, len(busy[uk]))
		for s := range busy[uk] {
			secs = append(secs, s)
		}
		sort.Ints(secs)
		for _, s := range secs {
			tl.Slots = append(tl.Slots, GPUSlot{Second: s, Busy: busy[uk][s]})
		}
		a.Timelines = append(a.Timelines, tl)
	}
	a.Blame = SessionBlames(AttributeBlame(events))
	return a
}

func fmtStage(w io.Writer, name string, s StageStats) error {
	_, err := fmt.Fprintf(w, "  %-10s n=%-7d p50=%-12v p99=%-12v max=%v\n",
		name, s.Count, s.P50, s.P99, s.Max)
	return err
}

// WriteReport prints the analysis: stage breakdown, drop attribution, and
// per-unit utilization timelines.
func (a *Analysis) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "requests: %d arrived, %d completed, %d dropped\n",
		a.Requests, a.Completed, a.Dropped); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "stage latency (completed requests)"); err != nil {
		return err
	}
	for _, st := range []struct {
		name  string
		stats StageStats
	}{
		{"dispatch", a.Dispatch}, {"queue", a.Queue},
		{"gpu+reply", a.GPU}, {"total", a.Total},
	} {
		if err := fmtStage(w, st.name, st.stats); err != nil {
			return err
		}
	}
	if len(a.DropsByCause) > 0 {
		if _, err := fmt.Fprintln(w, "drop attribution"); err != nil {
			return err
		}
		causes := make([]string, 0, len(a.DropsByCause))
		for c := range a.DropsByCause {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		for _, c := range causes {
			if _, err := fmt.Fprintf(w, "  %-12s %d\n", c, a.DropsByCause[c]); err != nil {
				return err
			}
		}
	}
	if len(a.Timelines) > 0 {
		if _, err := fmt.Fprintln(w, "gpu utilization (per unit, per second)"); err != nil {
			return err
		}
		for _, tl := range a.Timelines {
			if _, err := fmt.Fprintf(w, "  %s/%s batches=%d\n", tl.Backend, tl.Unit, tl.Batches); err != nil {
				return err
			}
			for _, slot := range tl.Slots {
				util := float64(slot.Busy) / float64(time.Second)
				if _, err := fmt.Fprintf(w, "    [%3ds] %5.1f%% %s\n",
					slot.Second, util*100, bar(util)); err != nil {
					return err
				}
			}
		}
	}
	if err := WriteBlameReport(w, a.Blame); err != nil {
		return err
	}
	return nil
}

// bar renders a 0..1 utilization as a 20-char gauge.
func bar(util float64) string {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	n := int(util*20 + 0.5)
	out := make([]byte, 20)
	for i := range out {
		if i < n {
			out[i] = '#'
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
