package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// lifecycle emits a full request span: arrive at t, enqueue at t+1ms,
// execute at t+3ms (dur 2ms), complete at t+6ms.
func lifecycle(req uint64, t time.Duration) []Event {
	return []Event{
		{At: t, Kind: Arrive, ReqID: req, Session: "s"},
		{At: t + time.Millisecond, Kind: Enqueue, ReqID: req, Session: "s", Backend: "be0", Unit: "u0", Dur: time.Millisecond},
		{At: t + 3*time.Millisecond, Kind: Execute, ReqID: req, Session: "s", Backend: "be0", Unit: "u0", Batch: 1, Dur: 2 * time.Millisecond},
		{At: t + 6*time.Millisecond, Kind: Complete, ReqID: req, Session: "s", Backend: "be0", Dur: 6 * time.Millisecond},
	}
}

func TestAnalyzeStages(t *testing.T) {
	var events []Event
	for i := 0; i < 10; i++ {
		events = append(events, lifecycle(uint64(i), time.Duration(i)*10*time.Millisecond)...)
	}
	events = append(events, Event{At: time.Second, Kind: Drop, ReqID: 99, Session: "s", Cause: "deadline"})
	events = append(events, Event{At: time.Second, Kind: Drop, ReqID: 100, Session: "s", Cause: "overload"})
	events = append(events, Event{At: time.Second, Kind: Drop, ReqID: 101, Session: "s", Cause: "overload"})

	a := Analyze(events)
	if a.Requests != 10 || a.Completed != 10 || a.Dropped != 3 {
		t.Fatalf("counts: %+v", a)
	}
	if a.Dispatch.P50 != time.Millisecond || a.Queue.P50 != 2*time.Millisecond ||
		a.GPU.P50 != 3*time.Millisecond || a.Total.P50 != 6*time.Millisecond {
		t.Fatalf("stage p50s: dispatch=%v queue=%v gpu=%v total=%v",
			a.Dispatch.P50, a.Queue.P50, a.GPU.P50, a.Total.P50)
	}
	if a.DropsByCause["deadline"] != 1 || a.DropsByCause["overload"] != 2 {
		t.Fatalf("drops by cause = %v", a.DropsByCause)
	}
	if len(a.Timelines) != 1 || a.Timelines[0].Batches != 10 {
		t.Fatalf("timelines = %+v", a.Timelines)
	}
	// 10 batches × 2ms GPU time, all inside second 0.
	if got := a.Timelines[0].Slots[0].Busy; got != 20*time.Millisecond {
		t.Fatalf("busy = %v", got)
	}
}

// Execute events are per-request; a batch of N must count once in the
// utilization timeline, not N times.
func TestAnalyzeDedupesBatches(t *testing.T) {
	var events []Event
	for i := 0; i < 4; i++ {
		events = append(events, Event{
			At: 10 * time.Millisecond, Kind: Execute, ReqID: uint64(i),
			Backend: "be0", Unit: "u0", Batch: 4, Dur: 8 * time.Millisecond,
		})
	}
	a := Analyze(events)
	if a.Timelines[0].Batches != 1 {
		t.Fatalf("batches = %d, want 1", a.Timelines[0].Batches)
	}
	if a.Timelines[0].Slots[0].Busy != 8*time.Millisecond {
		t.Fatalf("busy = %v, want 8ms", a.Timelines[0].Slots[0].Busy)
	}
	// Same timestamp on a different incarnation is a different batch
	// (post-restart events must not merge with pre-crash ones).
	events = append(events, Event{
		At: 10 * time.Millisecond, Kind: Execute, ReqID: 9,
		Backend: "be0", Unit: "u0", Batch: 1, Dur: time.Millisecond, Inc: 1,
	})
	if got := Analyze(events).Timelines[0].Batches; got != 2 {
		t.Fatalf("batches with inc bump = %d, want 2", got)
	}
}

func TestAnalyzeBatchSpansSeconds(t *testing.T) {
	events := []Event{{
		At: 900 * time.Millisecond, Kind: Execute, ReqID: 1,
		Backend: "be0", Unit: "u0", Batch: 1, Dur: 300 * time.Millisecond,
	}}
	a := Analyze(events)
	slots := a.Timelines[0].Slots
	if len(slots) != 2 || slots[0].Busy != 100*time.Millisecond || slots[1].Busy != 200*time.Millisecond {
		t.Fatalf("slots = %+v", slots)
	}
}

func TestWriteReport(t *testing.T) {
	events := lifecycle(1, 0)
	events = append(events, Event{At: time.Millisecond, Kind: Drop, ReqID: 2, Cause: "unroutable"})
	var buf bytes.Buffer
	if err := Analyze(events).WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"1 arrived", "queue", "gpu+reply", "unroutable", "be0/u0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// Golden Chrome export: the exact serialized form is load-bearing (tools
// parse it), so pin it.
func TestWriteChromeGolden(t *testing.T) {
	events := []Event{
		{At: 1 * time.Millisecond, Kind: Arrive, ReqID: 1, Session: "game"},
		{At: 2 * time.Millisecond, Kind: Execute, ReqID: 1, Session: "game",
			Backend: "be0", Unit: "u0", Batch: 2, Dur: 1500 * time.Microsecond},
		{At: 2 * time.Millisecond, Kind: Execute, ReqID: 2, Session: "game",
			Backend: "be0", Unit: "u0", Batch: 2, Dur: 1500 * time.Microsecond},
		{At: 4 * time.Millisecond, Kind: Complete, ReqID: 1, Session: "game"},
		{At: 5 * time.Millisecond, Kind: Drop, ReqID: 3, Session: "game", Cause: "overload"},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	const golden = `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"frontend"}},` +
		`{"name":"game","cat":"request","ph":"b","ts":1000,"pid":0,"tid":1,"id":"req1"},` +
		`{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"be0"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"u0"}},` +
		`{"name":"game batch=2","cat":"gpu","ph":"X","ts":2000,"dur":1500,"pid":1,"tid":1,"args":{"batch":2,"inc":0}},` +
		`{"name":"game","cat":"request","ph":"e","ts":4000,"pid":0,"tid":1,"id":"req1"},` +
		`{"name":"drop:overload","cat":"drop","ph":"i","ts":5000,"pid":0,"tid":1,"s":"t","args":{"req":3,"session":"game"}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != golden {
		t.Fatalf("chrome export drifted from golden:\n got: %s\nwant: %s", got, golden)
	}
	// And it must be well-formed JSON with the envelope Chrome expects.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("event count = %d", len(doc.TraceEvents))
	}
}

func TestAuditNilAndRoundTrip(t *testing.T) {
	var nilAudit *Audit
	nilAudit.RecordPlacement(PlacementRecord{}) // must not panic
	nilAudit.RecordSplit(SplitRecord{})
	nilAudit.RecordDropWindow(DropWindowRecord{})
	if nilAudit.Placements() != nil || nilAudit.WriteText(&bytes.Buffer{}) != nil {
		t.Fatal("nil audit should be inert")
	}

	a := NewAudit()
	a.RecordPlacement(PlacementRecord{
		Epoch: 1, Node: "gpu0", Backends: []string{"be0"}, DutyMS: 50, Occupancy: 0.8,
		Units: []PlacedUnit{{Unit: "u0", Session: "game", Batch: 8, Rate: 120,
			Members: []string{"game", "news"}}},
	})
	a.RecordSplit(SplitRecord{Epoch: 1, Query: "amber", Method: "dp", GPUs: 2.5,
		Budgets: map[string]float64{"detect": 60, "recog": 40}})
	a.RecordDropWindow(DropWindowRecord{AtMS: 1200, Backend: "be0", Unit: "u0", Window: 3, Dropped: 3})

	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAudit(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Placements()) != 1 || len(back.Splits()) != 1 || len(back.DropWindows()) != 1 {
		t.Fatalf("round trip lost records: %+v", back)
	}
	if back.Placements()[0].Units[0].Members[1] != "news" {
		t.Fatalf("members lost: %+v", back.Placements()[0])
	}

	var text bytes.Buffer
	if err := a.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"epoch 1", "gpu0", "members=[game news]", "amber", "detect=60.0ms", "be0/u0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("audit text missing %q:\n%s", want, out)
		}
	}
}

func TestAuditDropWindowBound(t *testing.T) {
	a := NewAudit()
	for i := 0; i < maxDropWindows+5; i++ {
		a.RecordDropWindow(DropWindowRecord{Dropped: 1})
	}
	if len(a.DropWindows()) != maxDropWindows || a.dropsLost != 5 {
		t.Fatalf("bound not enforced: len=%d lost=%d", len(a.DropWindows()), a.dropsLost)
	}
}
