package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// StageBlame decomposes one request's (or a cohort's mean) end-to-end
// latency into the stages the critical path can hide in:
//
//	Admission     — frontend arrival until a backend was picked (admission
//	                control, routing-table waits)
//	Dispatch      — route decision until the request entered its unit's
//	                queue (ingress ring hop + network delay + retries)
//	Stall         — batch-formation wait: the request sat queued while its
//	                batch was still filling (until the last member arrived)
//	Queue         — the formed batch waiting for the GPU
//	GPU           — batch submission until completion (execute + reply hop),
//	                split into Service and Interference
//	Interference  — the fraction of GPU time during which another unit on
//	                the same backend was also executing (spatial
//	                co-residency contention; zero under temporal sharing)
//	Service       — GPU minus Interference
//
// The stages reconcile exactly: Admission + Dispatch + Stall + Queue + GPU
// == Total, and Service + Interference == GPU.
type StageBlame struct {
	Admission    time.Duration
	Dispatch     time.Duration
	Stall        time.Duration
	Queue        time.Duration
	GPU          time.Duration
	Service      time.Duration
	Interference time.Duration
	Total        time.Duration
}

// add accumulates another decomposition (for cohort means).
func (b *StageBlame) add(o StageBlame) {
	b.Admission += o.Admission
	b.Dispatch += o.Dispatch
	b.Stall += o.Stall
	b.Queue += o.Queue
	b.GPU += o.GPU
	b.Service += o.Service
	b.Interference += o.Interference
	b.Total += o.Total
}

// scale divides every stage by n (for cohort means).
func (b *StageBlame) scale(n int) {
	if n <= 0 {
		return
	}
	d := time.Duration(n)
	b.Admission /= d
	b.Dispatch /= d
	b.Stall /= d
	b.Queue /= d
	b.GPU /= d
	b.Service /= d
	b.Interference /= d
	b.Total /= d
}

// RequestBlame is one completed request's latency decomposition.
type RequestBlame struct {
	ReqID   uint64
	Session string
	StageBlame
}

// SessionBlame aggregates request decompositions per session: the mean over
// all completed requests, and the mean over the p99 tail cohort (requests
// whose total latency is at or above the session's p99) — where the SLO
// budget actually went for the requests that blew it. Exemplar is the
// request ID of the worst-latency request, so a hot histogram cell links to
// a concrete trace.
type SessionBlame struct {
	Session   string
	Count     int           // completed requests with a full span
	TailCount int           // requests in the p99 cohort
	P99       time.Duration // p99 total latency
	Exemplar  uint64        // request ID of the max-latency request
	Mean      StageBlame    // mean decomposition over all requests
	Tail      StageBlame    // mean decomposition over the p99 cohort
}

// blameSpan accumulates one request's events until its Complete arrives.
type blameSpan struct {
	session                          string
	arrive, route, enqueue, execute  time.Duration
	hasRoute, hasEnqueue, hasExecute bool
	backend, unit                    string
	batchDur                         time.Duration
	inc                              uint64
}

type blameUnitKey struct{ backend, unit string }

type blameBatchKey struct {
	blameUnitKey
	at  time.Duration
	inc uint64
}

// execInterval is one batch's GPU occupancy window on a backend.
type execInterval struct {
	unit       string
	start, end time.Duration
}

// AttributeBlame reconstructs a latency decomposition for every completed
// request whose full span (Arrive, Enqueue, Execute, Complete) is retained
// in the event stream. Requests with partial spans (ring eviction, drops)
// are skipped — blaming a half-seen request would misattribute the missing
// stages to whichever ones happened to survive.
func AttributeBlame(events []Event) []RequestBlame {
	spans := make(map[uint64]*blameSpan)
	// batchClose is the latest member-enqueue time per batch: the moment the
	// batch stopped filling. Everything a request waits between its own
	// enqueue and that close is batch-formation stall, not GPU queueing.
	batchClose := map[blameBatchKey]time.Duration{}
	seenBatch := map[blameBatchKey]bool{}
	// byBackend indexes batch execute intervals for the co-residency
	// interference overlap computed after the main pass.
	byBackend := map[string][]execInterval{}
	// pending keeps per-request exec intervals until interference resolves.
	type pendingBlame struct {
		RequestBlame
		backend, unit   string
		execAt, execEnd time.Duration
	}
	var out []pendingBlame

	for _, e := range events {
		switch e.Kind {
		case Arrive:
			spans[e.ReqID] = &blameSpan{session: e.Session, arrive: e.At}
		case Route:
			if s, ok := spans[e.ReqID]; ok && !s.hasRoute {
				s.route, s.hasRoute = e.At, true
			}
		case Enqueue:
			if s, ok := spans[e.ReqID]; ok {
				s.enqueue, s.hasEnqueue = e.At, true
			}
		case Execute:
			s, ok := spans[e.ReqID]
			if !ok {
				continue
			}
			s.execute, s.hasExecute = e.At, true
			s.backend, s.unit, s.batchDur, s.inc = e.Backend, e.Unit, e.Dur, e.Inc
			bk := blameBatchKey{blameUnitKey{e.Backend, e.Unit}, e.At, e.Inc}
			if s.hasEnqueue && s.enqueue > batchClose[bk] {
				batchClose[bk] = s.enqueue
			}
			if !seenBatch[bk] {
				seenBatch[bk] = true
				byBackend[e.Backend] = append(byBackend[e.Backend],
					execInterval{unit: e.Unit, start: e.At, end: e.At + e.Dur})
			}
		case Complete:
			s, ok := spans[e.ReqID]
			if !ok {
				continue
			}
			delete(spans, e.ReqID)
			if !s.hasEnqueue || !s.hasExecute {
				continue
			}
			b := pendingBlame{
				RequestBlame: RequestBlame{ReqID: e.ReqID, Session: s.session},
				backend:      s.backend,
				unit:         s.unit,
				execAt:       s.execute,
				execEnd:      s.execute + s.batchDur,
			}
			if s.hasRoute {
				b.Admission = s.route - s.arrive
				b.Dispatch = s.enqueue - s.route
			} else {
				b.Dispatch = s.enqueue - s.arrive
			}
			bk := blameBatchKey{blameUnitKey{s.backend, s.unit}, s.execute, s.inc}
			cl := batchClose[bk]
			if cl < s.enqueue {
				cl = s.enqueue
			}
			b.Stall = cl - s.enqueue
			b.Queue = s.execute - cl
			b.GPU = e.At - s.execute
			b.Total = e.At - s.arrive
			out = append(out, b)
		case Drop:
			delete(spans, e.ReqID)
		}
	}

	// Co-residency interference: for each request's batch interval, how much
	// of it overlapped execute intervals of *other* units on the same
	// backend. Under temporal sharing units serialize on the device, so this
	// is zero; under spatial compute slices concurrent batches contend for
	// memory bandwidth and the model's dilated latency shows up here.
	for be := range byBackend {
		ivs := byBackend[be]
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].start != ivs[j].start {
				return ivs[i].start < ivs[j].start
			}
			return ivs[i].unit < ivs[j].unit
		})
	}
	blames := make([]RequestBlame, len(out))
	for i := range out {
		p := &out[i]
		inter := overlapOtherUnits(byBackend[p.backend], p.unit, p.execAt, p.execEnd)
		// GPU includes the reply hop, which interference cannot exceed.
		if inter > p.GPU {
			inter = p.GPU
		}
		p.Interference = inter
		p.Service = p.GPU - inter
		blames[i] = p.RequestBlame
	}
	return blames
}

// overlapOtherUnits returns how much of [start, end) is covered by the
// union of intervals belonging to other units. Intervals are sorted by
// start; the sweep advances a cursor so double-covered time counts once.
func overlapOtherUnits(intervals []execInterval, unit string, start, end time.Duration) time.Duration {
	var covered time.Duration
	cursor := start
	for _, iv := range intervals {
		if iv.start >= end {
			break
		}
		if iv.unit == unit || iv.end <= cursor {
			continue
		}
		s := iv.start
		if s < cursor {
			s = cursor
		}
		e := iv.end
		if e > end {
			e = end
		}
		if e > s {
			covered += e - s
			cursor = e
		}
	}
	return covered
}

// SessionBlames aggregates request decompositions into per-session mean and
// p99-tail breakdowns, sorted by session ID for deterministic output.
func SessionBlames(blames []RequestBlame) []SessionBlame {
	bySession := map[string][]RequestBlame{}
	for _, b := range blames {
		bySession[b.Session] = append(bySession[b.Session], b)
	}
	sessions := make([]string, 0, len(bySession))
	for s := range bySession {
		sessions = append(sessions, s)
	}
	sort.Strings(sessions)
	out := make([]SessionBlame, 0, len(sessions))
	for _, sid := range sessions {
		rs := bySession[sid]
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].Total != rs[j].Total {
				return rs[i].Total < rs[j].Total
			}
			return rs[i].ReqID < rs[j].ReqID
		})
		sb := SessionBlame{Session: sid, Count: len(rs)}
		sb.P99 = rs[int(0.99*float64(len(rs)-1))].Total
		sb.Exemplar = rs[len(rs)-1].ReqID
		for _, r := range rs {
			sb.Mean.add(r.StageBlame)
			if r.Total >= sb.P99 {
				sb.Tail.add(r.StageBlame)
				sb.TailCount++
			}
		}
		sb.Mean.scale(sb.Count)
		sb.Tail.scale(sb.TailCount)
		out = append(out, sb)
	}
	return out
}

// WriteBlameReport renders per-session tail attributions: where the p99
// cohort's latency went, stage by stage, with the worst request's ID as an
// exemplar to pull from the trace with `nexus-trace -req`.
func WriteBlameReport(w io.Writer, blames []SessionBlame) error {
	if len(blames) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "p99 blame breakdown (per session, mean over the p99 tail cohort)"); err != nil {
		return err
	}
	for _, sb := range blames {
		if _, err := fmt.Fprintf(w, "  %-24s n=%-6d tail=%-4d p99=%-12v exemplar=req %d\n",
			sb.Session, sb.Count, sb.TailCount, sb.P99, sb.Exemplar); err != nil {
			return err
		}
		t := sb.Tail
		total := float64(t.Total)
		if total <= 0 {
			total = 1
		}
		for _, st := range []struct {
			name string
			d    time.Duration
		}{
			{"admission", t.Admission}, {"dispatch", t.Dispatch},
			{"batch-stall", t.Stall}, {"queue", t.Queue},
			{"gpu-service", t.Service}, {"interference", t.Interference},
		} {
			if _, err := fmt.Fprintf(w, "    %-13s %10.3fms %5.1f%% %s\n",
				st.name, MS(st.d), 100*float64(st.d)/total, bar(float64(st.d)/total)); err != nil {
				return err
			}
		}
	}
	return nil
}
