package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are microseconds; pid/tid are small integers we
// assign to backends and units in first-seen order.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChrome exports events in Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. Backends map to processes and execution
// units to threads, so GPU batch slices ("X" events) lay out as per-unit
// duty-cycle timelines; each request becomes an async span ("b"/"e") from
// arrival to completion, and drops render as instant events annotated with
// their cause. Metadata ("M") events name the rows.
func WriteChrome(w io.Writer, events []Event) error {
	const frontendPID = 0 // request spans and drops live on the frontend row
	pids := map[string]int{"frontend": frontendPID}
	tids := map[string]int{}
	var out []chromeEvent

	meta := func(pid int, name string) {
		out = append(out, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
	}
	meta(frontendPID, "frontend")

	pid := func(backend string) int {
		p, ok := pids[backend]
		if !ok {
			p = len(pids)
			pids[backend] = p
			meta(p, backend)
		}
		return p
	}
	tid := func(p int, unit string) int {
		key := fmt.Sprintf("%d/%s", p, unit)
		t, ok := tids[key]
		if !ok {
			t = len(tids) + 1
			tids[key] = t
			out = append(out, chromeEvent{
				Name: "thread_name", Phase: "M", PID: p, TID: t,
				Args: map[string]any{"name": unit},
			})
		}
		return t
	}

	// One "X" slice per GPU batch: Execute events are per-request, so
	// dedupe on (backend, unit, at, inc) — requests batched together share
	// all four.
	type batchKey struct {
		backend, unit string
		at            time.Duration
		inc           uint64
	}
	seenBatch := map[batchKey]bool{}

	arrivals := map[uint64]Event{}
	for _, e := range events {
		switch e.Kind {
		case Arrive:
			arrivals[e.ReqID] = e
			out = append(out, chromeEvent{
				Name: e.Session, Cat: "request", Phase: "b",
				TS: us(e.At), PID: frontendPID, TID: 1,
				ID: fmt.Sprintf("req%d", e.ReqID),
			})
		case Complete, Drop:
			if _, ok := arrivals[e.ReqID]; ok {
				out = append(out, chromeEvent{
					Name: e.Session, Cat: "request", Phase: "e",
					TS: us(e.At), PID: frontendPID, TID: 1,
					ID: fmt.Sprintf("req%d", e.ReqID),
				})
			}
			if e.Kind == Drop {
				out = append(out, chromeEvent{
					Name: "drop:" + e.Cause, Cat: "drop", Phase: "i",
					TS: us(e.At), PID: frontendPID, TID: 1, Scope: "t",
					Args: map[string]any{"session": e.Session, "req": e.ReqID},
				})
			}
		case Execute:
			k := batchKey{e.Backend, e.Unit, e.At, e.Inc}
			if seenBatch[k] {
				continue
			}
			seenBatch[k] = true
			p := pid(e.Backend)
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("%s batch=%d", e.Session, e.Batch),
				Cat:  "gpu", Phase: "X",
				TS: us(e.At), Dur: us(e.Dur), PID: p, TID: tid(p, e.Unit),
				Args: map[string]any{"batch": e.Batch, "inc": e.Inc},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeDoc{TraceEvents: out, DisplayTimeUnit: "ms"})
}
