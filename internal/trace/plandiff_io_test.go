package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestAuditPlanDiffAndChaosRoundTrip(t *testing.T) {
	a := NewAudit()
	a.RecordChaos(ChaosRecord{AtMS: 9000, Kind: "outage", Backend: "be0", To: "down"})
	a.RecordPlanDiff(PlanDiffRecord{
		Epoch: 2, AtMS: 10000, Cause: "recovery", SessionsMoved: 1,
		Changes: []PlanChange{{Kind: "replica-removed", Node: "plan-0", From: "be0"}},
	})
	if len(a.Chaos()) != 1 || len(a.PlanDiffs()) != 1 {
		t.Fatalf("accessors: chaos=%d diffs=%d, want 1/1", len(a.Chaos()), len(a.PlanDiffs()))
	}

	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAudit(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.PlanDiffs()) != 1 || back.PlanDiffs()[0].Cause != "recovery" {
		t.Fatalf("plan diffs did not survive the file round trip: %+v", back.PlanDiffs())
	}
	if len(back.Chaos()) != 1 || back.Chaos()[0].Backend != "be0" {
		t.Fatalf("chaos records did not survive the file round trip: %+v", back.Chaos())
	}
	if _, err := ReadAudit(strings.NewReader("{not json")); err == nil {
		t.Fatal("corrupt audit parsed without error")
	}
}

func TestAuditPlanDiffOverflowCounted(t *testing.T) {
	a := NewAudit()
	for i := 0; i < maxPlanDiffs+3; i++ {
		a.RecordPlanDiff(PlanDiffRecord{Epoch: i})
	}
	if len(a.PlanDiffs()) != maxPlanDiffs {
		t.Fatalf("log grew past its bound: %d", len(a.PlanDiffs()))
	}
	if a.diffsLost != 3 {
		t.Fatalf("diffsLost = %d, want 3", a.diffsLost)
	}
}

func TestNilAuditNoOps(t *testing.T) {
	var a *Audit
	a.RecordChaos(ChaosRecord{})
	a.RecordPlanDiff(PlanDiffRecord{})
	if a.Chaos() != nil || a.PlanDiffs() != nil {
		t.Fatal("nil audit retained state")
	}
}

func TestWritePlanDiffText(t *testing.T) {
	var sb strings.Builder
	pd := PlanDiffRecord{
		Epoch: 3, AtMS: 15000, Cause: "periodic", SessionsMoved: 2,
		ShardsReplan: 1, ShardsSkipped: 3,
		Changes: []PlanChange{
			{Kind: "session-moved", Session: "s", Unit: "u", From: "plan-0", To: "plan-1"},
			{Kind: "rate-changed", Session: "s", Unit: "u", Node: "plan-1", Detail: "100 -> 130 rps"},
		},
	}
	if err := WritePlanDiffText(&sb, pd); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"epoch 3", "cause=periodic", "moved=2", "shards=1 replanned/3 skipped",
		"session-moved", "plan-0->plan-1", "rate-changed", "(100 -> 130 rps)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("plan-diff text missing %q:\n%s", want, out)
		}
	}

	// A quiet decision renders its header with an explicit no-change marker.
	sb.Reset()
	if err := WritePlanDiffText(&sb, PlanDiffRecord{Epoch: 4, Cause: "periodic"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(no changes)") {
		t.Errorf("quiet diff missing the no-change marker: %q", sb.String())
	}
}

func TestAtMS(t *testing.T) {
	if got := AtMS(1500 * time.Millisecond); got != 1500 {
		t.Fatalf("AtMS(1.5s) = %v, want 1500", got)
	}
}

// TestReserve pins the inlinable fast path against Record: same ring
// semantics (wrap, totals, chronological unroll), no filter consultation.
func TestReserve(t *testing.T) {
	tr := New(2)
	tr.SetFilter(func(Event) bool { return false }) // Reserve must bypass this
	*tr.Reserve() = Event{At: 1, Kind: Arrive, ReqID: 1}
	*tr.Reserve() = Event{At: 2, Kind: Arrive, ReqID: 2}
	*tr.Reserve() = Event{At: 3, Kind: Arrive, ReqID: 3} // wraps, evicts req 1
	if tr.Total() != 3 {
		t.Fatalf("total %d, want 3", tr.Total())
	}
	events := tr.Events()
	if len(events) != 2 || events[0].ReqID != 2 || events[1].ReqID != 3 {
		t.Fatalf("ring contents %+v, want reqs 2,3 in order", events)
	}
	var nilTracer *Tracer
	if nilTracer.Reserve() != nil {
		t.Fatal("nil tracer must reserve nil")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("")); err == nil || !strings.Contains(err.Error(), "empty input") {
		t.Fatalf("empty input: %v", err)
	}
	if _, err := ReadJSON(strings.NewReader(`{"events":[{"at_ms":1`)); err == nil {
		t.Fatal("truncated input parsed without error")
	}
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage parsed without error")
	}
}
