package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ev(at int, kind Kind, req uint64) Event {
	return Event{At: time.Duration(at) * time.Millisecond, Kind: kind, ReqID: req, Session: "s"}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Record(ev(1, Arrive, 1)) // must not panic
	tr.SetFilter(func(Event) bool { return true })
	if tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer should report nothing")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	New(0)
}

func TestRecordAndOrder(t *testing.T) {
	tr := New(10)
	tr.Record(ev(1, Arrive, 1))
	tr.Record(ev(2, Enqueue, 1))
	tr.Record(ev(3, Complete, 1))
	got := tr.Events()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Kind != Arrive || got[2].Kind != Complete {
		t.Fatalf("order wrong: %+v", got)
	}
	if tr.Total() != 3 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		tr.Record(ev(i, Arrive, uint64(i)))
	}
	got := tr.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	// Oldest retained is event 2.
	if got[0].ReqID != 2 || got[2].ReqID != 4 {
		t.Fatalf("ring order wrong: %+v", got)
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d, want 5", tr.Total())
	}
}

func TestFilter(t *testing.T) {
	tr := New(10)
	tr.SetFilter(func(e Event) bool { return e.Kind == Drop })
	tr.Record(ev(1, Arrive, 1))
	tr.Record(ev(2, Drop, 1))
	if len(tr.Events()) != 1 || tr.Events()[0].Kind != Drop {
		t.Fatalf("filter failed: %+v", tr.Events())
	}
}

// Filtered events must be discarded before touching the ring: they advance
// neither the write cursor nor the total, so rejected events can never
// evict retained ones or inflate the overwrite accounting.
func TestFilterDoesNotAdvanceRing(t *testing.T) {
	tr := New(3)
	tr.SetFilter(func(e Event) bool { return e.Kind != Drop })
	tr.Record(ev(0, Arrive, 0))
	tr.Record(ev(1, Arrive, 1))
	// A burst of filtered events between accepted ones.
	for i := 0; i < 10; i++ {
		tr.Record(ev(100+i, Drop, uint64(100+i)))
	}
	tr.Record(ev(2, Arrive, 2))
	if tr.Total() != 3 {
		t.Fatalf("Total = %d, want 3 (filtered events advanced total)", tr.Total())
	}
	got := tr.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	for i, e := range got {
		if e.ReqID != uint64(i) {
			t.Fatalf("filtered events perturbed the ring: %+v", got)
		}
	}

	// Now wrap the ring past capacity with interleaved rejects: accepted
	// events alone determine eviction order.
	for i := 3; i < 7; i++ {
		tr.Record(ev(200, Drop, 999)) // rejected
		tr.Record(ev(i, Arrive, uint64(i)))
	}
	got = tr.Events()
	if tr.Total() != 7 || len(got) != 3 {
		t.Fatalf("after wrap: total=%d retained=%d", tr.Total(), len(got))
	}
	if got[0].ReqID != 4 || got[1].ReqID != 5 || got[2].ReqID != 6 {
		t.Fatalf("wraparound order wrong with filter active: %+v", got)
	}
}

func TestByRequestAndLatency(t *testing.T) {
	tr := New(16)
	tr.Record(ev(10, Arrive, 7))
	tr.Record(ev(11, Enqueue, 7))
	tr.Record(ev(12, Arrive, 8))
	tr.Record(ev(25, Complete, 7))
	byReq := tr.ByRequest()
	if len(byReq[7]) != 3 || len(byReq[8]) != 1 {
		t.Fatalf("ByRequest = %v", byReq)
	}
	lat := tr.RequestLatency()
	if lat[7] != 15*time.Millisecond {
		t.Fatalf("latency = %v", lat[7])
	}
	if _, ok := lat[8]; ok {
		t.Fatal("incomplete request should have no latency")
	}
}

// ByRequest must preserve chronological order within each request even when
// the ring has wrapped and the oldest retained events sit mid-buffer.
func TestByRequestOrderingUnderWraparound(t *testing.T) {
	tr := New(6)
	// Request 1's lifecycle interleaved with filler; capacity 6 retains
	// only the last 6 of 9 events.
	tr.Record(ev(0, Arrive, 1))
	tr.Record(ev(1, Arrive, 50))
	tr.Record(ev(2, Arrive, 51))
	tr.Record(ev(3, Route, 1))
	tr.Record(ev(4, Enqueue, 1))
	tr.Record(ev(5, Arrive, 52))
	tr.Record(ev(6, Execute, 1))
	tr.Record(ev(7, Arrive, 53))
	tr.Record(ev(8, Complete, 1))
	byReq := tr.ByRequest()
	got := byReq[1]
	wantKinds := []Kind{Route, Enqueue, Execute, Complete} // Arrive evicted
	if len(got) != len(wantKinds) {
		t.Fatalf("req 1 events = %+v", got)
	}
	for i, k := range wantKinds {
		if got[i].Kind != k {
			t.Fatalf("req 1 out of order at %d: got %s want %s (%+v)", i, got[i].Kind, k, got)
		}
		if i > 0 && got[i].At <= got[i-1].At {
			t.Fatalf("req 1 timestamps not increasing: %+v", got)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	tr := New(4)
	tr.Record(Event{At: time.Millisecond, Kind: Execute, ReqID: 1, Backend: "be0", Unit: "u",
		Batch: 8, Dur: 2500 * time.Microsecond, Inc: 3})
	tr.Record(Event{At: 7*time.Millisecond + 123*time.Nanosecond, Kind: Drop, ReqID: 2,
		Session: "s", Batch: 0, Cause: "deadline"})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 {
		t.Fatalf("round trip = %+v", decoded)
	}
	for i, want := range tr.Events() {
		if decoded[i] != want {
			t.Fatalf("event %d: got %+v want %+v", i, decoded[i], want)
		}
	}
}

// The wire schema must emit milliseconds with explicit units, and batch
// must not carry omitempty: a batch-size-0 early-drop record has to stay
// distinguishable from an unset field.
func TestJSONSchemaMillisecondsAndBatch(t *testing.T) {
	e := Event{At: 1500 * time.Microsecond, Kind: Drop, ReqID: 9, Session: "s",
		Batch: 0, Cause: "deadline"}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if at, ok := doc["at_ms"].(float64); !ok || at != 1.5 {
		t.Fatalf("at_ms = %v, want 1.5 (%s)", doc["at_ms"], raw)
	}
	if _, ok := doc["at"]; ok {
		t.Fatalf("raw nanosecond field still present: %s", raw)
	}
	if _, ok := doc["batch"]; !ok {
		t.Fatalf("batch omitted at zero: %s", raw)
	}
}

func TestFromMSRoundTripExact(t *testing.T) {
	for _, d := range []time.Duration{0, 1, 999, time.Microsecond,
		1500*time.Microsecond + 7, time.Second, 3*time.Hour + 11} {
		if got := FromMS(MS(d)); got != d {
			t.Fatalf("FromMS(MS(%v)) = %v", d, got)
		}
	}
}

func TestWriteText(t *testing.T) {
	tr := New(8)
	tr.Record(ev(1, Arrive, 1))
	tr.Record(Event{At: 2 * time.Millisecond, Kind: Execute, ReqID: 1, Backend: "be0", Unit: "u", Batch: 4})
	tr.Record(Event{At: 3 * time.Millisecond, Kind: Drop, ReqID: 2, Session: "s", Cause: "deadline"})
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"arrive", "batch=4", "cause=deadline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryAndSessions(t *testing.T) {
	tr := New(8)
	tr.Record(Event{Kind: Arrive, Session: "b"})
	tr.Record(Event{Kind: Arrive, Session: "a"})
	tr.Record(Event{Kind: Drop, Session: "a"})
	sum := tr.Summary()
	if sum[Arrive] != 2 || sum[Drop] != 1 {
		t.Fatalf("summary = %v", sum)
	}
	got := tr.Sessions()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("sessions = %v", got)
	}
}

// Property: after any sequence of records, Events() returns at most
// capacity events, in non-decreasing record order (by sequence of
// insertion), and Total counts every record.
func TestPropertyRing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capn := rng.Intn(16) + 1
		n := rng.Intn(100)
		tr := New(capn)
		for i := 0; i < n; i++ {
			tr.Record(ev(i, Arrive, uint64(i)))
		}
		got := tr.Events()
		if tr.Total() != uint64(n) {
			return false
		}
		want := n
		if want > capn {
			want = capn
		}
		if len(got) != want {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].ReqID != got[i-1].ReqID+1 {
				return false
			}
		}
		// The newest event must be the last recorded.
		if n > 0 && got[len(got)-1].ReqID != uint64(n-1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a filter active, the ring behaves exactly as if rejected
// events were never offered — same retained set, same total.
func TestPropertyFilterTransparent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capn := rng.Intn(8) + 1
		n := rng.Intn(80)
		filtered := New(capn)
		filtered.SetFilter(func(e Event) bool { return e.Kind == Arrive })
		plain := New(capn)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				e := ev(i, Arrive, uint64(i))
				filtered.Record(e)
				plain.Record(e)
			} else {
				filtered.Record(ev(i, Drop, uint64(i))) // rejected
			}
		}
		if filtered.Total() != plain.Total() {
			return false
		}
		a, b := filtered.Events(), plain.Events()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
