package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ev(at int, kind Kind, req uint64) Event {
	return Event{At: time.Duration(at) * time.Millisecond, Kind: kind, ReqID: req, Session: "s"}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Record(ev(1, Arrive, 1)) // must not panic
	tr.SetFilter(func(Event) bool { return true })
	if tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer should report nothing")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	New(0)
}

func TestRecordAndOrder(t *testing.T) {
	tr := New(10)
	tr.Record(ev(1, Arrive, 1))
	tr.Record(ev(2, Dispatch, 1))
	tr.Record(ev(3, Complete, 1))
	got := tr.Events()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Kind != Arrive || got[2].Kind != Complete {
		t.Fatalf("order wrong: %+v", got)
	}
	if tr.Total() != 3 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		tr.Record(ev(i, Arrive, uint64(i)))
	}
	got := tr.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	// Oldest retained is event 2.
	if got[0].ReqID != 2 || got[2].ReqID != 4 {
		t.Fatalf("ring order wrong: %+v", got)
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d, want 5", tr.Total())
	}
}

func TestFilter(t *testing.T) {
	tr := New(10)
	tr.SetFilter(func(e Event) bool { return e.Kind == Drop })
	tr.Record(ev(1, Arrive, 1))
	tr.Record(ev(2, Drop, 1))
	if len(tr.Events()) != 1 || tr.Events()[0].Kind != Drop {
		t.Fatalf("filter failed: %+v", tr.Events())
	}
}

func TestByRequestAndLatency(t *testing.T) {
	tr := New(16)
	tr.Record(ev(10, Arrive, 7))
	tr.Record(ev(11, Dispatch, 7))
	tr.Record(ev(12, Arrive, 8))
	tr.Record(ev(25, Complete, 7))
	byReq := tr.ByRequest()
	if len(byReq[7]) != 3 || len(byReq[8]) != 1 {
		t.Fatalf("ByRequest = %v", byReq)
	}
	lat := tr.RequestLatency()
	if lat[7] != 15*time.Millisecond {
		t.Fatalf("latency = %v", lat[7])
	}
	if _, ok := lat[8]; ok {
		t.Fatal("incomplete request should have no latency")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	tr := New(4)
	tr.Record(Event{At: time.Millisecond, Kind: Execute, ReqID: 1, Backend: "be0", Unit: "u", Batch: 8})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []Event
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0].Batch != 8 || decoded[0].Kind != Execute {
		t.Fatalf("round trip = %+v", decoded)
	}
}

func TestWriteText(t *testing.T) {
	tr := New(8)
	tr.Record(ev(1, Arrive, 1))
	tr.Record(Event{At: 2 * time.Millisecond, Kind: Execute, ReqID: 1, Backend: "be0", Unit: "u", Batch: 4})
	tr.Record(Event{At: 3 * time.Millisecond, Kind: Drop, ReqID: 2, Session: "s", Detail: "deadline"})
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"arrive", "batch=4", "deadline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryAndSessions(t *testing.T) {
	tr := New(8)
	tr.Record(Event{Kind: Arrive, Session: "b"})
	tr.Record(Event{Kind: Arrive, Session: "a"})
	tr.Record(Event{Kind: Drop, Session: "a"})
	sum := tr.Summary()
	if sum[Arrive] != 2 || sum[Drop] != 1 {
		t.Fatalf("summary = %v", sum)
	}
	got := tr.Sessions()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("sessions = %v", got)
	}
}

// Property: after any sequence of records, Events() returns at most
// capacity events, in non-decreasing record order (by sequence of
// insertion), and Total counts every record.
func TestPropertyRing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capn := rng.Intn(16) + 1
		n := rng.Intn(100)
		tr := New(capn)
		for i := 0; i < n; i++ {
			tr.Record(ev(i, Arrive, uint64(i)))
		}
		got := tr.Events()
		if tr.Total() != uint64(n) {
			return false
		}
		want := n
		if want > capn {
			want = capn
		}
		if len(got) != want {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].ReqID != got[i-1].ReqID+1 {
				return false
			}
		}
		// The newest event must be the last recorded.
		if n > 0 && got[len(got)-1].ReqID != uint64(n-1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
