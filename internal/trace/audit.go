package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// PlacedUnit is one session allocation inside a placement record: the
// execution unit serving the session, its planned batch size and rate
// share, and — for merged duty cycles (§6.1) — the member sessions sharing
// the unit's round.
type PlacedUnit struct {
	Unit    string   `json:"unit"`
	Session string   `json:"session"`
	Batch   int      `json:"batch"`
	Rate    float64  `json:"rate"`
	Slice   float64  `json:"slice,omitempty"` // compute-slice fraction (spatial nodes)
	Members []string `json:"members,omitempty"`
}

// PlacementRecord is one plan node of an epoch's squishy-bin-packing
// output: which backends replicate the node, the node's duty cycle and
// occupancy, and the per-session allocations packed onto it.
type PlacementRecord struct {
	Epoch     int          `json:"epoch"`
	AtMS      float64      `json:"at_ms"`
	Node      string       `json:"node"`
	Backends  []string     `json:"backends,omitempty"`
	DutyMS    float64      `json:"duty_ms"`
	Occupancy float64      `json:"occupancy"`
	Saturated bool         `json:"saturated,omitempty"`
	Spatial   bool         `json:"spatial,omitempty"`
	Shard     string       `json:"shard,omitempty"`
	Units     []PlacedUnit `json:"units"`
}

// SplitRecord is one query's latency-SLO split for an epoch (§6.2): how the
// end-to-end budget was divided across the query's stages and the total
// GPU demand the split implies.
type SplitRecord struct {
	Epoch   int                `json:"epoch"`
	Query   string             `json:"query"`
	Method  string             `json:"method"` // "dp" (queryopt) or "even"
	GPUs    float64            `json:"gpus"`
	Budgets map[string]float64 `json:"budgets_ms"`
}

// DropWindowRecord is one early-drop decision (§4.3): the drop policy
// inspected a unit's queue and culled a window of requests that could no
// longer meet their deadlines.
type DropWindowRecord struct {
	AtMS    float64 `json:"at_ms"`
	Backend string  `json:"backend"`
	Unit    string  `json:"unit"`
	Window  int     `json:"window"`
	Dropped int     `json:"dropped"`
}

// ChaosRecord is one degraded-mode survival event on the chaos timeline:
// an injected fault edge (outage, partition, surge), a frontend circuit-
// breaker state transition, a routing-table lease expiry or refresh, or an
// admission shed. Together with the injector's script log these reconcile
// a chaos experiment end to end: what was injected, what the survival
// layer did about it, and when.
type ChaosRecord struct {
	AtMS     float64 `json:"at_ms"`
	Kind     string  `json:"kind"` // "outage", "partition", "surge", "straggler", "breaker", "lease", "admission"
	Frontend string  `json:"frontend,omitempty"`
	Backend  string  `json:"backend,omitempty"`
	Session  string  `json:"session,omitempty"`
	From     string  `json:"from,omitempty"`
	To       string  `json:"to,omitempty"`
}

// PlanChange is one structured difference between two consecutive epoch
// placements: a session's unit appearing, disappearing, or moving between
// nodes, or a retained allocation whose batch, slice, rate, or replica set
// changed. Kind is one of "session-moved", "unit-added", "unit-dropped",
// "batch-changed", "slice-changed", "rate-changed", "replicas-changed",
// "replica-removed", "replica-added".
type PlanChange struct {
	Kind    string `json:"kind"`
	Session string `json:"session,omitempty"`
	Unit    string `json:"unit,omitempty"`
	Node    string `json:"node,omitempty"`
	From    string `json:"from,omitempty"`
	To      string `json:"to,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// PlanDiffRecord is the "why" log for one scheduler decision point: the
// structured diff between the previous placement and this one, plus the
// cause ("initial", "periodic", "recovery") and — under sharded planning —
// how many shards replanned versus skipped on hysteresis.
type PlanDiffRecord struct {
	Epoch         int          `json:"epoch"`
	AtMS          float64      `json:"at_ms"`
	Cause         string       `json:"cause"`
	SessionsMoved int          `json:"sessions_moved,omitempty"`
	ShardsReplan  int          `json:"shards_replanned,omitempty"`
	ShardsSkipped int          `json:"shards_skipped,omitempty"`
	Changes       []PlanChange `json:"changes,omitempty"`
}

// maxPlanDiffs bounds the plan-diff log: one record per epoch plus one per
// off-epoch recovery, so the bound is generous.
const maxPlanDiffs = 1 << 14

// maxDropWindows bounds the early-drop record list; placements and splits
// are bounded by epochs × sessions, but drop windows are data-plane events.
const maxDropWindows = 1 << 16

// maxChaos bounds the chaos timeline; admission sheds especially are
// data-plane-rate events during an overload.
const maxChaos = 1 << 16

// Audit is the control-plane audit log. Like Tracer, a nil *Audit is a
// valid no-op, so the scheduler records unconditionally.
type Audit struct {
	placements  []PlacementRecord
	splits      []SplitRecord
	dropWindows []DropWindowRecord
	dropsLost   int // drop-window records discarded once full
	chaos       []ChaosRecord
	chaosLost   int // chaos records discarded once full
	planDiffs   []PlanDiffRecord
	diffsLost   int // plan-diff records discarded once full
}

// NewAudit creates an empty audit log.
func NewAudit() *Audit { return &Audit{} }

// RecordPlacement appends one plan node's placement for an epoch.
func (a *Audit) RecordPlacement(r PlacementRecord) {
	if a == nil {
		return
	}
	a.placements = append(a.placements, r)
}

// RecordSplit appends one query's budget split for an epoch.
func (a *Audit) RecordSplit(r SplitRecord) {
	if a == nil {
		return
	}
	a.splits = append(a.splits, r)
}

// RecordDropWindow appends one early-drop window decision. The list is
// bounded; overflow is counted, not stored.
func (a *Audit) RecordDropWindow(r DropWindowRecord) {
	if a == nil {
		return
	}
	if len(a.dropWindows) >= maxDropWindows {
		a.dropsLost++
		return
	}
	a.dropWindows = append(a.dropWindows, r)
}

// RecordChaos appends one degraded-mode survival event. The list is
// bounded; overflow is counted, not stored.
func (a *Audit) RecordChaos(r ChaosRecord) {
	if a == nil {
		return
	}
	if len(a.chaos) >= maxChaos {
		a.chaosLost++
		return
	}
	a.chaos = append(a.chaos, r)
}

// RecordPlanDiff appends one scheduler decision's structured diff. The list
// is bounded; overflow is counted, not stored.
func (a *Audit) RecordPlanDiff(r PlanDiffRecord) {
	if a == nil {
		return
	}
	if len(a.planDiffs) >= maxPlanDiffs {
		a.diffsLost++
		return
	}
	a.planDiffs = append(a.planDiffs, r)
}

// PlanDiffs returns the recorded plan diffs in decision order.
func (a *Audit) PlanDiffs() []PlanDiffRecord {
	if a == nil {
		return nil
	}
	return a.planDiffs
}

// Chaos returns the recorded degraded-mode timeline in time order.
func (a *Audit) Chaos() []ChaosRecord {
	if a == nil {
		return nil
	}
	return a.chaos
}

// Placements returns the recorded placements in epoch order.
func (a *Audit) Placements() []PlacementRecord {
	if a == nil {
		return nil
	}
	return a.placements
}

// Splits returns the recorded budget splits in epoch order.
func (a *Audit) Splits() []SplitRecord {
	if a == nil {
		return nil
	}
	return a.splits
}

// DropWindows returns the recorded early-drop decisions in time order.
func (a *Audit) DropWindows() []DropWindowRecord {
	if a == nil {
		return nil
	}
	return a.dropWindows
}

// auditJSON is the audit log's file form.
type auditJSON struct {
	Placements  []PlacementRecord  `json:"placements"`
	Splits      []SplitRecord      `json:"splits"`
	DropWindows []DropWindowRecord `json:"drop_windows"`
	DropsLost   int                `json:"drop_windows_lost,omitempty"`
	Chaos       []ChaosRecord      `json:"chaos,omitempty"`
	ChaosLost   int                `json:"chaos_lost,omitempty"`
	PlanDiffs   []PlanDiffRecord   `json:"plan_diffs,omitempty"`
	DiffsLost   int                `json:"plan_diffs_lost,omitempty"`
}

// WriteJSON writes the audit log as one JSON object.
func (a *Audit) WriteJSON(w io.Writer) error {
	var doc auditJSON
	if a != nil {
		doc = auditJSON{
			Placements: a.placements, Splits: a.splits,
			DropWindows: a.dropWindows, DropsLost: a.dropsLost,
			Chaos: a.chaos, ChaosLost: a.chaosLost,
			PlanDiffs: a.planDiffs, DiffsLost: a.diffsLost,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadAudit parses an audit log produced by WriteJSON.
func ReadAudit(r io.Reader) (*Audit, error) {
	var doc auditJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: parsing audit JSON: %w", err)
	}
	return &Audit{
		placements: doc.Placements, splits: doc.Splits,
		dropWindows: doc.DropWindows, dropsLost: doc.DropsLost,
		chaos: doc.Chaos, chaosLost: doc.ChaosLost,
		planDiffs: doc.PlanDiffs, diffsLost: doc.DiffsLost,
	}, nil
}

// WriteText renders the audit log per epoch: each plan node with its duty
// cycle, occupancy and packed sessions, then the query splits, then a
// summary of early-drop activity per unit.
func (a *Audit) WriteText(w io.Writer) error {
	if a == nil {
		return nil
	}
	byEpoch := make(map[int][]PlacementRecord)
	epochs := []int{}
	for _, p := range a.placements {
		if _, ok := byEpoch[p.Epoch]; !ok {
			epochs = append(epochs, p.Epoch)
		}
		byEpoch[p.Epoch] = append(byEpoch[p.Epoch], p)
	}
	sort.Ints(epochs)
	splitsByEpoch := make(map[int][]SplitRecord)
	for _, s := range a.splits {
		splitsByEpoch[s.Epoch] = append(splitsByEpoch[s.Epoch], s)
	}
	for _, ep := range epochs {
		if _, err := fmt.Fprintf(w, "epoch %d\n", ep); err != nil {
			return err
		}
		for _, p := range byEpoch[ep] {
			sat := ""
			if p.Saturated {
				sat = " saturated"
			}
			if p.Spatial {
				sat += " spatial"
			}
			if p.Shard != "" {
				sat += " shard=" + p.Shard
			}
			if _, err := fmt.Fprintf(w, "  node %-12s duty=%6.2fms occ=%.3f backends=%v%s\n",
				p.Node, p.DutyMS, p.Occupancy, p.Backends, sat); err != nil {
				return err
			}
			for _, u := range p.Units {
				line := fmt.Sprintf("    %-10s session=%-20s batch=%-3d rate=%.1f",
					u.Unit, u.Session, u.Batch, u.Rate)
				if u.Slice > 0 {
					line += fmt.Sprintf(" slice=%.3f", u.Slice)
				}
				if len(u.Members) > 0 {
					line += fmt.Sprintf(" members=%v", u.Members)
				}
				if _, err := fmt.Fprintln(w, line); err != nil {
					return err
				}
			}
		}
		for _, s := range splitsByEpoch[ep] {
			stages := make([]string, 0, len(s.Budgets))
			for name := range s.Budgets {
				stages = append(stages, name)
			}
			sort.Strings(stages)
			parts := make([]string, len(stages))
			for i, name := range stages {
				parts[i] = fmt.Sprintf("%s=%.1fms", name, s.Budgets[name])
			}
			if _, err := fmt.Fprintf(w, "  split %-12s method=%-4s gpus=%.2f %v\n",
				s.Query, s.Method, s.GPUs, parts); err != nil {
				return err
			}
		}
	}
	if len(a.dropWindows) > 0 {
		type unitDrops struct {
			windows, dropped int
		}
		byUnit := make(map[string]*unitDrops)
		keys := []string{}
		for _, d := range a.dropWindows {
			k := d.Backend + "/" + d.Unit
			u, ok := byUnit[k]
			if !ok {
				u = &unitDrops{}
				byUnit[k] = u
				keys = append(keys, k)
			}
			u.windows++
			u.dropped += d.Dropped
		}
		sort.Strings(keys)
		if _, err := fmt.Fprintln(w, "early-drop windows"); err != nil {
			return err
		}
		for _, k := range keys {
			u := byUnit[k]
			if _, err := fmt.Fprintf(w, "  %-20s windows=%-5d dropped=%d\n", k, u.windows, u.dropped); err != nil {
				return err
			}
		}
		if a.dropsLost > 0 {
			if _, err := fmt.Fprintf(w, "  (%d drop-window records discarded: log full)\n", a.dropsLost); err != nil {
				return err
			}
		}
	}
	if len(a.planDiffs) > 0 {
		if _, err := fmt.Fprintln(w, "plan changes"); err != nil {
			return err
		}
		for _, pd := range a.planDiffs {
			if err := WritePlanDiffText(w, pd); err != nil {
				return err
			}
		}
		if a.diffsLost > 0 {
			if _, err := fmt.Fprintf(w, "  (%d plan-diff records discarded: log full)\n", a.diffsLost); err != nil {
				return err
			}
		}
	}
	if len(a.chaos) > 0 {
		if _, err := fmt.Fprintln(w, "chaos timeline"); err != nil {
			return err
		}
		for _, c := range a.chaos {
			line := fmt.Sprintf("  %9.1fms %-10s", c.AtMS, c.Kind)
			if c.Frontend != "" {
				line += " frontend=" + c.Frontend
			}
			if c.Backend != "" {
				line += " backend=" + c.Backend
			}
			if c.Session != "" {
				line += " session=" + c.Session
			}
			if c.From != "" || c.To != "" {
				line += fmt.Sprintf(" %s->%s", c.From, c.To)
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
		if a.chaosLost > 0 {
			if _, err := fmt.Fprintf(w, "  (%d chaos records discarded: log full)\n", a.chaosLost); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePlanDiffText renders one plan-diff record: the decision header
// (epoch, time, cause, shard hysteresis counts) and each structured change.
func WritePlanDiffText(w io.Writer, pd PlanDiffRecord) error {
	hdr := fmt.Sprintf("  epoch %-4d %9.1fms cause=%-9s", pd.Epoch, pd.AtMS, pd.Cause)
	if pd.SessionsMoved > 0 {
		hdr += fmt.Sprintf(" moved=%d", pd.SessionsMoved)
	}
	if pd.ShardsReplan > 0 || pd.ShardsSkipped > 0 {
		hdr += fmt.Sprintf(" shards=%d replanned/%d skipped", pd.ShardsReplan, pd.ShardsSkipped)
	}
	if len(pd.Changes) == 0 {
		hdr += " (no changes)"
	}
	if _, err := fmt.Fprintln(w, hdr); err != nil {
		return err
	}
	for _, c := range pd.Changes {
		line := fmt.Sprintf("    %-16s", c.Kind)
		if c.Session != "" {
			line += " session=" + c.Session
		}
		if c.Unit != "" {
			line += " unit=" + c.Unit
		}
		if c.Node != "" {
			line += " node=" + c.Node
		}
		if c.From != "" || c.To != "" {
			line += fmt.Sprintf(" %s->%s", c.From, c.To)
		}
		if c.Detail != "" {
			line += " (" + c.Detail + ")"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// AtMS stamps a simulation time for audit records.
func AtMS(at time.Duration) float64 { return MS(at) }
