// Package hetero extends squishy bin packing to clusters that mix GPU
// generations. The paper evaluates on homogeneous clusters (GTX 1080Tis
// for the 16-GPU case studies, K80s for the 100-GPU deployment), but its
// cost argument (§2.1, Table 1) implies a placement question the moment a
// fleet holds both: which sessions belong on expensive fast devices and
// which on cheap slow ones?
//
// The answer implemented here: assign each session to the GPU type that
// serves it at the lowest dollar cost per request, subject to SLO
// feasibility and per-type capacity, then run the standard squishy packing
// independently per type. Tight-SLO sessions are forced onto fast devices
// (slow ones cannot meet 2ℓ(1) ≤ SLO); throughput-bound sessions drift to
// whatever is cheapest per request.
package hetero

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nexus/internal/profiler"
	"nexus/internal/scheduler"
)

// TypedProfiles maps GPU type -> model ID -> batching profile.
type TypedProfiles map[profiler.GPUType]map[string]*profiler.Profile

// Capacity is the number of GPUs available per type.
type Capacity map[profiler.GPUType]int

// Assignment is the result of heterogeneous packing.
type Assignment struct {
	// Plans holds one squishy plan per GPU type (types with no sessions
	// are absent).
	Plans map[profiler.GPUType]*scheduler.Plan
	// SessionType records each session's chosen device type.
	SessionType map[string]profiler.GPUType
	// CostPerHour is the dollar cost of the GPUs the assignment uses.
	CostPerHour float64
}

// GPUs returns the total GPU count across types.
func (a *Assignment) GPUs() int {
	n := 0
	for _, p := range a.Plans {
		n += p.GPUCount()
	}
	return n
}

// candidate is one (session, type) option.
type candidate struct {
	gpu profiler.GPUType
	// costPerReq is dollars per request at the best SLO-feasible batch.
	costPerReq float64
	// load is the session's estimated GPU demand on this type.
	load float64
}

// Pack assigns sessions to GPU types and packs each type with the squishy
// algorithm. Every returned plan passes scheduler.Validate for its
// sessions. Sessions infeasible on every type fail with an error.
func Pack(sessions []scheduler.Session, profiles TypedProfiles, capacity Capacity,
	cfg scheduler.Config) (*Assignment, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("hetero: no GPU types")
	}
	types := make([]profiler.GPUType, 0, len(profiles))
	for t := range profiles {
		if capacity[t] < 0 {
			return nil, fmt.Errorf("hetero: negative capacity for %s", t)
		}
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })

	// Rank each session's options by cost per request.
	options := make(map[string][]candidate, len(sessions))
	for _, s := range sessions {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		var cands []candidate
		for _, t := range types {
			p, ok := profiles[t][s.ModelID]
			if !ok {
				continue
			}
			spec, err := profiler.Spec(t)
			if err != nil {
				return nil, err
			}
			factor := cfg.SLOFactor
			if factor == 0 {
				factor = 2
			}
			maxLat := time.Duration(float64(s.SLO) / factor)
			b := p.MaxBatchWithin(maxLat)
			if b == 0 {
				continue // SLO infeasible on this type
			}
			tput := p.Throughput(b)
			cands = append(cands, candidate{
				gpu:        t,
				costPerReq: spec.HourlyUSD / (3600 * tput),
				load:       s.Rate / tput,
			})
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("hetero: session %s infeasible on every GPU type", s.ID)
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].costPerReq != cands[j].costPerReq {
				return cands[i].costPerReq < cands[j].costPerReq
			}
			return cands[i].gpu < cands[j].gpu
		})
		options[s.ID] = cands
	}

	// Greedy assignment, largest loads first so they claim capacity on
	// their cheapest type before small sessions fragment it.
	order := make([]scheduler.Session, len(sessions))
	copy(order, sessions)
	sort.Slice(order, func(i, j int) bool {
		li, lj := options[order[i].ID][0].load, options[order[j].ID][0].load
		if li != lj {
			return li > lj
		}
		return order[i].ID < order[j].ID
	})
	remaining := make(map[profiler.GPUType]float64, len(types))
	for _, t := range types {
		remaining[t] = float64(capacity[t])
	}
	assign := make(map[string]profiler.GPUType, len(sessions))
	byType := make(map[profiler.GPUType][]scheduler.Session)
	for _, s := range order {
		if s.Rate == 0 {
			continue
		}
		placed := false
		for _, c := range options[s.ID] {
			if remaining[c.gpu] >= c.load {
				remaining[c.gpu] -= c.load
				assign[s.ID] = c.gpu
				byType[c.gpu] = append(byType[c.gpu], s)
				placed = true
				break
			}
		}
		if !placed {
			// Spill: feasible type with the most remaining headroom.
			best := candidate{}
			bestIdx := -1
			for i, c := range options[s.ID] {
				if bestIdx == -1 || remaining[c.gpu]-c.load > remaining[best.gpu]-best.load {
					best, bestIdx = c, i
				}
			}
			_ = bestIdx
			remaining[best.gpu] -= best.load
			assign[s.ID] = best.gpu
			byType[best.gpu] = append(byType[best.gpu], s)
		}
	}

	// Pack per type; the greedy estimates ignore packing fragmentation, so
	// a type can come out a GPU over capacity. Repair by migrating the
	// smallest session off the overflowing type to its next-best feasible
	// option and re-packing, bounded by the total session count.
	out := &Assignment{
		Plans:       make(map[profiler.GPUType]*scheduler.Plan),
		SessionType: assign,
	}
	for attempt := 0; attempt <= len(sessions)*len(types); attempt++ {
		out.Plans = make(map[profiler.GPUType]*scheduler.Plan)
		out.CostPerHour = 0
		overflow := profiler.GPUType("")
		for _, t := range types {
			group := byType[t]
			if len(group) == 0 {
				continue
			}
			plan, err := scheduler.Pack(group, profiles[t], cfg)
			if err != nil {
				return nil, fmt.Errorf("hetero: packing %s: %w", t, err)
			}
			if capacity[t] > 0 && plan.GPUCount() > capacity[t] {
				overflow = t
				break
			}
			out.Plans[t] = plan
			spec, err := profiler.Spec(t)
			if err != nil {
				return nil, err
			}
			out.CostPerHour += float64(plan.GPUCount()) * spec.HourlyUSD
		}
		if overflow == "" {
			return out, nil
		}
		moved, err := migrateSmallest(overflow, byType, options, assign)
		if err != nil {
			return nil, err
		}
		if !moved {
			return nil, fmt.Errorf("hetero: %s over capacity and no session can move", overflow)
		}
	}
	return nil, fmt.Errorf("hetero: repair did not converge")
}

// migrateSmallest moves the lowest-load session on the overflowing type to
// its next feasible type, mutating byType and assign. It reports whether a
// move happened.
func migrateSmallest(overflow profiler.GPUType, byType map[profiler.GPUType][]scheduler.Session,
	options map[string][]candidate, assign map[string]profiler.GPUType) (bool, error) {
	group := byType[overflow]
	bestIdx := -1
	bestLoad := math.Inf(1)
	var bestTarget profiler.GPUType
	for i, s := range group {
		for _, c := range options[s.ID] {
			if c.gpu == overflow {
				if c.load < bestLoad {
					// Candidate to move, if another type is feasible.
					for _, alt := range options[s.ID] {
						if alt.gpu != overflow {
							bestIdx, bestLoad, bestTarget = i, c.load, alt.gpu
							break
						}
					}
				}
				break
			}
		}
	}
	if bestIdx < 0 {
		return false, nil
	}
	s := group[bestIdx]
	byType[overflow] = append(group[:bestIdx], group[bestIdx+1:]...)
	byType[bestTarget] = append(byType[bestTarget], s)
	assign[s.ID] = bestTarget
	return true, nil
}

// HomogeneousCost returns the hourly cost of serving all sessions on a
// single GPU type (for comparison), or +Inf when any session is
// infeasible on it.
func HomogeneousCost(sessions []scheduler.Session, profiles TypedProfiles,
	gpu profiler.GPUType, cfg scheduler.Config) float64 {
	prof, ok := profiles[gpu]
	if !ok {
		return math.Inf(1)
	}
	plan, err := scheduler.Pack(sessions, prof, cfg)
	if err != nil {
		return math.Inf(1)
	}
	spec, err := profiler.Spec(gpu)
	if err != nil {
		return math.Inf(1)
	}
	return float64(plan.GPUCount()) * spec.HourlyUSD
}
