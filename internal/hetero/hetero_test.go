package hetero

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/scheduler"
)

func typedProfiles(t *testing.T) TypedProfiles {
	t.Helper()
	mdb := model.Catalog()
	pdb, err := profiler.CatalogProfiles(mdb)
	if err != nil {
		t.Fatal(err)
	}
	out := TypedProfiles{}
	for _, gpu := range []profiler.GPUType{profiler.GTX1080Ti, profiler.K80, profiler.V100} {
		m := map[string]*profiler.Profile{}
		for _, id := range model.CatalogIDs() {
			if p, err := pdb.Get(id, gpu); err == nil {
				m[id] = p
			}
		}
		out[gpu] = m
	}
	return out
}

func TestTightSLOForcedOntoFastGPU(t *testing.T) {
	profiles := typedProfiles(t)
	// SSD at 120ms SLO: 2*l(1) = 94ms on the 1080Ti but 300ms on the K80,
	// so the K80 is infeasible and the session must land on a fast type.
	sessions := []scheduler.Session{
		{ID: "tight", ModelID: model.SSD, SLO: 120 * time.Millisecond, Rate: 30},
	}
	a, err := Pack(sessions, profiles, Capacity{profiler.GTX1080Ti: 4, profiler.K80: 16, profiler.V100: 2}, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := a.SessionType["tight"]
	if got == profiler.K80 {
		t.Fatalf("tight-SLO session placed on the infeasible K80")
	}
}

func TestCheapTypePreferredWhenFeasible(t *testing.T) {
	profiles := typedProfiles(t)
	// A loose-SLO throughput workload: every type is feasible; the winner
	// should be the cheapest per request.
	sessions := []scheduler.Session{
		{ID: "bulk", ModelID: model.ResNet50, SLO: 500 * time.Millisecond, Rate: 500},
	}
	a, err := Pack(sessions, profiles, Capacity{profiler.GTX1080Ti: 8, profiler.K80: 8, profiler.V100: 8}, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	chosen := a.SessionType["bulk"]
	// Verify the choice really is the cost argmin.
	bestType, bestCost := profiler.GPUType(""), math.Inf(1)
	for gpu, profs := range profiles {
		p := profs[model.ResNet50]
		b := p.MaxBatchWithin(250 * time.Millisecond)
		if b == 0 {
			continue
		}
		spec, _ := profiler.Spec(gpu)
		c := spec.HourlyUSD / (3600 * p.Throughput(b))
		if c < bestCost {
			bestType, bestCost = gpu, c
		}
	}
	if chosen != bestType {
		t.Fatalf("chose %s, cheapest is %s", chosen, bestType)
	}
}

func TestCapacitySpill(t *testing.T) {
	profiles := typedProfiles(t)
	// Demand for ~3 GPUs of the cheapest type, but only 1 available: the
	// overflow must land elsewhere rather than failing.
	sessions := []scheduler.Session{
		{ID: "a", ModelID: model.InceptionV3, SLO: 200 * time.Millisecond, Rate: 1200},
		{ID: "b", ModelID: model.InceptionV3, SLO: 200 * time.Millisecond, Rate: 1200},
		{ID: "c", ModelID: model.InceptionV3, SLO: 200 * time.Millisecond, Rate: 1200},
	}
	// Find the cheapest type for this workload, then restrict it.
	probe, err := Pack(sessions[:1], profiles,
		Capacity{profiler.GTX1080Ti: 100, profiler.K80: 100, profiler.V100: 100}, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cheap := probe.SessionType["a"]
	capacity := Capacity{profiler.GTX1080Ti: 100, profiler.K80: 100, profiler.V100: 100}
	capacity[cheap] = 1
	a, err := Pack(sessions, profiles, capacity, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	onCheap := 0
	for _, gpu := range a.SessionType {
		if gpu == cheap {
			onCheap++
		}
	}
	if onCheap == 3 {
		t.Fatal("capacity limit ignored")
	}
	if a.GPUs() == 0 {
		t.Fatal("nothing packed")
	}
}

func TestMixedBeatsOrMatchesHomogeneous(t *testing.T) {
	profiles := typedProfiles(t)
	sessions := []scheduler.Session{
		{ID: "tight", ModelID: model.SSD, SLO: 120 * time.Millisecond, Rate: 60},
		{ID: "bulk1", ModelID: model.ResNet50, SLO: 500 * time.Millisecond, Rate: 2000},
		{ID: "bulk2", ModelID: model.VGGFace, SLO: 800 * time.Millisecond, Rate: 400},
	}
	capacity := Capacity{profiler.GTX1080Ti: 32, profiler.K80: 64, profiler.V100: 16}
	mixed, err := Pack(sessions, profiles, capacity, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, gpu := range []profiler.GPUType{profiler.GTX1080Ti, profiler.V100} {
		if homo := HomogeneousCost(sessions, profiles, gpu, scheduler.Config{}); mixed.CostPerHour > homo+1e-9 {
			t.Fatalf("mixed $%.2f/h worse than all-%s $%.2f/h", mixed.CostPerHour, gpu, homo)
		}
	}
	// All-K80 is infeasible for the tight session.
	if !math.IsInf(HomogeneousCost(sessions, profiles, profiler.K80, scheduler.Config{}), 1) {
		t.Fatal("all-K80 should be infeasible")
	}
}

func TestInfeasibleEverywhere(t *testing.T) {
	profiles := typedProfiles(t)
	sessions := []scheduler.Session{
		{ID: "impossible", ModelID: model.SSD, SLO: 10 * time.Millisecond, Rate: 5},
	}
	if _, err := Pack(sessions, profiles, Capacity{profiler.V100: 4}, scheduler.Config{}); err == nil {
		t.Fatal("impossible SLO accepted")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Pack(nil, TypedProfiles{}, Capacity{}, scheduler.Config{}); err == nil {
		t.Fatal("empty profile set accepted")
	}
	profiles := typedProfiles(t)
	if _, err := Pack(nil, profiles, Capacity{profiler.K80: -1}, scheduler.Config{}); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

// Property: every session is assigned exactly one type, every per-type plan
// validates, and the reported cost matches the plans.
func TestPropertyAssignmentsValid(t *testing.T) {
	profiles := typedProfiles(t)
	models := []string{model.ResNet50, model.InceptionV3, model.GoogLeNetCar, model.VGGFace}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		sessions := make([]scheduler.Session, n)
		for i := range sessions {
			sessions[i] = scheduler.Session{
				ID:      string(rune('a' + i)),
				ModelID: models[rng.Intn(len(models))],
				SLO:     time.Duration(rng.Intn(400)+150) * time.Millisecond,
				Rate:    float64(rng.Intn(1500) + 10),
			}
		}
		capacity := Capacity{profiler.GTX1080Ti: 64, profiler.K80: 64, profiler.V100: 64}
		a, err := Pack(sessions, profiles, capacity, scheduler.Config{})
		if err != nil {
			return true // an infeasible draw is acceptable
		}
		if len(a.SessionType) != n {
			return false
		}
		var cost float64
		for gpu, plan := range a.Plans {
			var group []scheduler.Session
			for _, s := range sessions {
				if a.SessionType[s.ID] == gpu {
					group = append(group, s)
				}
			}
			if err := scheduler.Validate(plan, group, profiles[gpu], scheduler.Config{}); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			spec, _ := profiler.Spec(gpu)
			cost += float64(plan.GPUCount()) * spec.HourlyUSD
		}
		return math.Abs(cost-a.CostPerHour) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
