// Package spec defines a declarative JSON description of a Nexus
// deployment — system kind, cluster size, sessions, and query trees with
// their arrival processes — and builds a runnable cluster.Deployment from
// it. It is the management-plane ingestion format (§5 "developers ingest
// and deploy applications and models") and powers `nexus-sim -spec`.
package spec

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"nexus/internal/cluster"
	"nexus/internal/globalsched"
	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/queryopt"
	"nexus/internal/workload"
)

// Deployment is the top-level spec document.
type Deployment struct {
	// System: "nexus" (default), "nexus-parallel", "clipper", "tfserving".
	System string `json:"system,omitempty"`
	GPUs   int    `json:"gpus"`
	// GPU type: "gtx1080ti" (default), "k80", "v100".
	GPU string `json:"gpu,omitempty"`
	// EpochSec is the control-plane period in seconds (default 30).
	EpochSec float64 `json:"epoch_sec,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	// Fixed spreads spare GPUs across plan nodes (fixed-size cluster).
	Fixed bool `json:"fixed,omitempty"`
	// Features toggles the Nexus optimizations; absent means all on.
	Features *Features `json:"features,omitempty"`

	Sessions []Session `json:"sessions,omitempty"`
	Queries  []Query   `json:"queries,omitempty"`

	// Specialize declares transfer-learned variant families to register
	// before sessions reference them.
	Specialize []Specialize `json:"specialize,omitempty"`
}

// Features mirrors cluster.Features in JSON form.
type Features struct {
	PrefixBatch   bool `json:"prefix_batch"`
	Squishy       bool `json:"squishy"`
	EarlyDrop     bool `json:"early_drop"`
	Overlap       bool `json:"overlap"`
	QueryAnalysis bool `json:"query_analysis"`
}

// Specialize declares N variants of a base catalog model, retraining the
// last `retrain` layers; variant IDs are "<base>-v<start+k>".
type Specialize struct {
	Base    string `json:"base"`
	Count   int    `json:"count"`
	Retrain int    `json:"retrain,omitempty"` // default 1
	Start   int    `json:"start,omitempty"`   // ID namespace offset
}

// Session is a standalone model session.
type Session struct {
	ID      string  `json:"id"`
	Model   string  `json:"model"`
	SLOms   float64 `json:"slo_ms"`
	Rate    float64 `json:"rate"`
	Arrival string  `json:"arrival,omitempty"` // "uniform" (default) | "poisson"
}

// Query is a dataflow query with a whole-query SLO.
type Query struct {
	Name    string  `json:"name"`
	SLOms   float64 `json:"slo_ms"`
	Rate    float64 `json:"rate"`
	Arrival string  `json:"arrival,omitempty"`
	Root    Node    `json:"root"`
}

// Node is one query stage.
type Node struct {
	Name     string `json:"name"`
	Model    string `json:"model"`
	Children []struct {
		Gamma float64 `json:"gamma"`
		Node  Node    `json:"node"`
	} `json:"children,omitempty"`
}

// Parse reads a spec document from JSON.
func Parse(r io.Reader) (*Deployment, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d Deployment
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks the document's internal consistency.
func (d *Deployment) Validate() error {
	if d.GPUs < 1 {
		return fmt.Errorf("spec: gpus must be >= 1")
	}
	switch d.System {
	case "", string(cluster.Nexus), string(cluster.NexusParallel),
		string(cluster.Clipper), string(cluster.TFServing):
	default:
		return fmt.Errorf("spec: unknown system %q", d.System)
	}
	if len(d.Sessions) == 0 && len(d.Queries) == 0 {
		return fmt.Errorf("spec: no sessions or queries")
	}
	ids := make(map[string]bool)
	for _, s := range d.Sessions {
		if s.ID == "" || s.Model == "" {
			return fmt.Errorf("spec: session needs id and model")
		}
		if ids[s.ID] {
			return fmt.Errorf("spec: duplicate session id %q", s.ID)
		}
		ids[s.ID] = true
		if s.SLOms <= 0 || s.Rate < 0 {
			return fmt.Errorf("spec: session %s needs positive slo_ms and non-negative rate", s.ID)
		}
		if err := validArrival(s.Arrival); err != nil {
			return fmt.Errorf("spec: session %s: %w", s.ID, err)
		}
	}
	for _, q := range d.Queries {
		if q.Name == "" {
			return fmt.Errorf("spec: query needs a name")
		}
		if q.SLOms <= 0 || q.Rate < 0 {
			return fmt.Errorf("spec: query %s needs positive slo_ms and non-negative rate", q.Name)
		}
		if err := validArrival(q.Arrival); err != nil {
			return fmt.Errorf("spec: query %s: %w", q.Name, err)
		}
		if err := validNode(q.Root); err != nil {
			return fmt.Errorf("spec: query %s: %w", q.Name, err)
		}
	}
	for _, sp := range d.Specialize {
		if sp.Base == "" || sp.Count < 1 {
			return fmt.Errorf("spec: specialize needs base and count >= 1")
		}
	}
	return nil
}

func validArrival(a string) error {
	switch a {
	case "", "uniform", "poisson":
		return nil
	}
	return fmt.Errorf("unknown arrival %q (uniform|poisson)", a)
}

func validNode(n Node) error {
	if n.Name == "" || n.Model == "" {
		return fmt.Errorf("node needs name and model")
	}
	for _, c := range n.Children {
		if c.Gamma <= 0 {
			return fmt.Errorf("node %s: gamma must be positive", n.Name)
		}
		if err := validNode(c.Node); err != nil {
			return err
		}
	}
	return nil
}

// Build constructs a runnable deployment from the spec.
func (d *Deployment) Build() (*cluster.Deployment, error) {
	features := cluster.AllFeatures()
	if d.Features != nil {
		features = cluster.Features{
			PrefixBatch:   d.Features.PrefixBatch,
			Squishy:       d.Features.Squishy,
			EarlyDrop:     d.Features.EarlyDrop,
			Overlap:       d.Features.Overlap,
			QueryAnalysis: d.Features.QueryAnalysis,
		}
	}
	system := cluster.System(d.System)
	if d.System == "" {
		system = cluster.Nexus
	}
	cfg := cluster.Config{
		System:       system,
		Features:     features,
		GPUs:         d.GPUs,
		GPU:          profiler.GPUType(d.GPU),
		Seed:         d.Seed,
		FixedCluster: d.Fixed,
	}
	if d.EpochSec > 0 {
		cfg.Epoch = time.Duration(d.EpochSec * float64(time.Second))
	}
	dep, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	mdb := dep.ModelDB()
	for _, sp := range d.Specialize {
		base, err := mdb.Get(sp.Base)
		if err != nil {
			return nil, fmt.Errorf("spec: specialize: %w", err)
		}
		retrain := sp.Retrain
		if retrain < 1 {
			retrain = 1
		}
		for k := 0; k < sp.Count; k++ {
			id := fmt.Sprintf("%s-v%d", sp.Base, sp.Start+k)
			if _, err := mdb.Get(id); err == nil {
				continue
			}
			v, err := model.Specialize(base, id, retrain)
			if err != nil {
				return nil, fmt.Errorf("spec: specialize %s: %w", id, err)
			}
			if err := mdb.Register(v); err != nil {
				return nil, err
			}
		}
	}
	if err := dep.RefreshProfiles(); err != nil {
		return nil, err
	}
	for _, s := range d.Sessions {
		if err := dep.AddSession(globalsched.SessionSpec{
			ID:           s.ID,
			ModelID:      s.Model,
			SLO:          time.Duration(s.SLOms * float64(time.Millisecond)),
			ExpectedRate: s.Rate,
		}, arrival(s.Arrival, s.Rate)); err != nil {
			return nil, err
		}
	}
	for _, q := range d.Queries {
		query := &queryopt.Query{
			Name: q.Name,
			SLO:  time.Duration(q.SLOms * float64(time.Millisecond)),
			Root: buildNode(q.Root),
		}
		if err := dep.AddQuery(globalsched.QuerySpec{
			Query:        query,
			ExpectedRate: q.Rate,
		}, arrival(q.Arrival, q.Rate)); err != nil {
			return nil, err
		}
	}
	return dep, nil
}

func arrival(kind string, rate float64) workload.Process {
	switch kind {
	case "poisson":
		return workload.Poisson{Rate: rate}
	default:
		return workload.Uniform{Rate: rate}
	}
}

func buildNode(n Node) *queryopt.Node {
	out := &queryopt.Node{Name: n.Name, ModelID: n.Model}
	for _, c := range n.Children {
		out.Edges = append(out.Edges, queryopt.Edge{
			Gamma: c.Gamma,
			Child: buildNode(c.Node),
		})
	}
	return out
}
