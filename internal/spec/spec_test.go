package spec

import (
	"strings"
	"testing"
	"time"
)

const goodSpec = `{
  "system": "nexus",
  "gpus": 8,
  "epoch_sec": 10,
  "seed": 3,
  "fixed": true,
  "specialize": [{"base": "resnet50", "count": 2, "retrain": 1, "start": 500}],
  "sessions": [
    {"id": "a", "model": "resnet50-v500", "slo_ms": 100, "rate": 200},
    {"id": "b", "model": "resnet50-v501", "slo_ms": 100, "rate": 100, "arrival": "poisson"}
  ],
  "queries": [
    {"name": "q", "slo_ms": 400, "rate": 20, "root": {
      "name": "det", "model": "ssd",
      "children": [{"gamma": 1.5, "node": {"name": "rec", "model": "googlenet_car"}}]
    }}
  ]
}`

func TestParseGood(t *testing.T) {
	d, err := Parse(strings.NewReader(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	if d.GPUs != 8 || len(d.Sessions) != 2 || len(d.Queries) != 1 {
		t.Fatalf("parsed = %+v", d)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"gpus": 1, "bogus": 2, "sessions": [{"id":"a","model":"m","slo_ms":1,"rate":1}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"no gpus", `{"sessions":[{"id":"a","model":"m","slo_ms":1,"rate":1}]}`},
		{"bad system", `{"gpus":1,"system":"zz","sessions":[{"id":"a","model":"m","slo_ms":1,"rate":1}]}`},
		{"empty workload", `{"gpus":1}`},
		{"session no id", `{"gpus":1,"sessions":[{"model":"m","slo_ms":1,"rate":1}]}`},
		{"duplicate id", `{"gpus":1,"sessions":[{"id":"a","model":"m","slo_ms":1,"rate":1},{"id":"a","model":"m","slo_ms":1,"rate":1}]}`},
		{"zero slo", `{"gpus":1,"sessions":[{"id":"a","model":"m","slo_ms":0,"rate":1}]}`},
		{"bad arrival", `{"gpus":1,"sessions":[{"id":"a","model":"m","slo_ms":1,"rate":1,"arrival":"burst"}]}`},
		{"query no name", `{"gpus":1,"queries":[{"slo_ms":1,"rate":1,"root":{"name":"x","model":"m"}}]}`},
		{"node no model", `{"gpus":1,"queries":[{"name":"q","slo_ms":1,"rate":1,"root":{"name":"x"}}]}`},
		{"zero gamma", `{"gpus":1,"queries":[{"name":"q","slo_ms":1,"rate":1,"root":{"name":"x","model":"m","children":[{"gamma":0,"node":{"name":"y","model":"m"}}]}}]}`},
		{"specialize no base", `{"gpus":1,"specialize":[{"count":1}],"sessions":[{"id":"a","model":"m","slo_ms":1,"rate":1}]}`},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestBuildAndRun(t *testing.T) {
	d, err := Parse(strings.NewReader(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	bad, err := dep.Run(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0.02 {
		t.Fatalf("bad rate %.4f", bad)
	}
	// Both specialized sessions and the query stages served traffic.
	for _, sid := range []string{"a", "b", "q/det", "q/rec"} {
		if dep.Recorder.Session(sid).Sent == 0 {
			t.Fatalf("session %s saw no traffic", sid)
		}
	}
}

func TestBuildUnknownModel(t *testing.T) {
	doc := `{"gpus":1,"sessions":[{"id":"a","model":"ghost","slo_ms":100,"rate":1}]}`
	d, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Build(); err == nil {
		t.Fatal("unknown model accepted at build")
	}
}

func TestBuildDefaults(t *testing.T) {
	doc := `{"gpus":2,"sessions":[{"id":"a","model":"googlenet_car","slo_ms":100,"rate":50}]}`
	d, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if dep.Recorder.Session("a").Sent == 0 {
		t.Fatal("no traffic with default system/GPU/arrival")
	}
}

func TestFeaturesOverride(t *testing.T) {
	doc := `{"gpus":2,
		"features":{"prefix_batch":false,"squishy":true,"early_drop":true,"overlap":true,"query_analysis":false},
		"sessions":[{"id":"a","model":"googlenet_car","slo_ms":100,"rate":50}]}`
	d, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if d.Features == nil || d.Features.PrefixBatch || !d.Features.Squishy {
		t.Fatalf("features = %+v", d.Features)
	}
	if _, err := d.Build(); err != nil {
		t.Fatal(err)
	}
}
