// Package queryopt implements Nexus's complex query scheduling (§4.2,
// §6.2): applications express dataflow queries over multiple models (e.g.
// detect objects, then recognize each), specify one whole-query latency
// SLO, and the optimizer splits that budget across the constituent models
// so that the total number of GPUs is minimized:
//
//	minimize   Σ_v  R_v · ℓ_v(b_v)/b_v
//	subject to Σ_{u on root→leaf path} budget_u <= L   for every leaf
//
// solved by dynamic programming over the query tree with the time budget
// discretized into L/ε segments.
package queryopt

import (
	"fmt"
	"math"
	"time"

	"nexus/internal/profiler"
	"nexus/internal/scheduler"
)

// Edge connects a query node to a child with a fan-out factor gamma: each
// invocation of the parent yields gamma invocations of the child on
// average (γ<1 filters, γ=1 maps, γ>1 expands — §4.2).
type Edge struct {
	Gamma float64
	Child *Node
}

// Node is one model invocation stage in a query.
type Node struct {
	Name    string
	ModelID string
	Edges   []Edge
}

// Query is a dataflow query tree with a whole-query latency SLO.
type Query struct {
	Name string
	Root *Node
	SLO  time.Duration
}

// Validate checks tree shape, unique names, and positive gammas.
func (q *Query) Validate() error {
	if q.Root == nil {
		return fmt.Errorf("queryopt: query %s has no root", q.Name)
	}
	if q.SLO <= 0 {
		return fmt.Errorf("queryopt: query %s has non-positive SLO", q.Name)
	}
	seen := make(map[string]bool)
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.Name == "" || n.ModelID == "" {
			return fmt.Errorf("queryopt: node with empty name/model in query %s", q.Name)
		}
		if seen[n.Name] {
			return fmt.Errorf("queryopt: duplicate node name %q in query %s", n.Name, q.Name)
		}
		seen[n.Name] = true
		for _, e := range n.Edges {
			if e.Gamma <= 0 || math.IsNaN(e.Gamma) || math.IsInf(e.Gamma, 0) {
				return fmt.Errorf("queryopt: node %s has invalid gamma %v", n.Name, e.Gamma)
			}
			if e.Child == nil {
				return fmt.Errorf("queryopt: node %s has nil child", n.Name)
			}
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(q.Root)
}

// Nodes returns all nodes in pre-order.
func (q *Query) Nodes() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, e := range n.Edges {
			walk(e.Child)
		}
	}
	if q.Root != nil {
		walk(q.Root)
	}
	return out
}

// Rates returns each node's request rate given the root rate: the root
// rate multiplied by the gammas along the path.
func (q *Query) Rates(rootRate float64) map[string]float64 {
	rates := make(map[string]float64)
	var walk func(n *Node, r float64)
	walk = func(n *Node, r float64) {
		rates[n.Name] = r
		for _, e := range n.Edges {
			walk(e.Child, r*e.Gamma)
		}
	}
	if q.Root != nil {
		walk(q.Root, rootRate)
	}
	return rates
}

// Split is the result of latency-split optimization: a per-node latency
// budget and the estimated GPU cost of serving the query at the given rate.
type Split struct {
	Budgets map[string]time.Duration
	GPUs    float64
}

// DefaultEpsilon is the DP discretization when the caller passes zero.
const DefaultEpsilon = 5 * time.Millisecond

// Optimize computes the latency split minimizing estimated GPU count for
// serving the query at rootRate (§6.2). The cost of a node under budget k
// uses the same worst-case rule the packer enforces downstream: the best
// batch b with factor*ℓ(b) <= k, costing R·ℓ(b)/b GPUs. Infeasible
// (model slower than any split permits) returns an error.
func Optimize(q *Query, rootRate float64, profiles map[string]*profiler.Profile,
	eps time.Duration, cfg scheduler.Config) (*Split, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if rootRate <= 0 {
		return nil, fmt.Errorf("queryopt: non-positive root rate %v", rootRate)
	}
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	steps := int(q.SLO / eps)
	if steps < 1 {
		return nil, fmt.Errorf("queryopt: SLO %v below epsilon %v", q.SLO, eps)
	}
	rates := q.Rates(rootRate)
	factor := cfg.SLOFactor
	if factor == 0 {
		factor = 2
	}

	// nodeCost[v][k] = GPUs for node v with a budget of k*eps.
	cost := func(n *Node, k int) (float64, error) {
		p, ok := profiles[n.ModelID]
		if !ok {
			return 0, fmt.Errorf("queryopt: no profile for model %s (node %s)", n.ModelID, n.Name)
		}
		budget := time.Duration(k) * eps
		b := p.MaxBatchWithin(time.Duration(float64(budget) / factor))
		if b == 0 {
			return math.Inf(1), nil
		}
		return rates[n.Name] / p.Throughput(b), nil
	}

	// f[v] is a table over budgets 0..steps: min GPUs for v's subtree.
	// split[v][t] records the budget v takes for itself at table entry t.
	type table struct {
		f     []float64
		taken []int
	}
	tables := make(map[*Node]*table)
	var build func(n *Node) error
	build = func(n *Node) error {
		for _, e := range n.Edges {
			if err := build(e.Child); err != nil {
				return err
			}
		}
		tb := &table{f: make([]float64, steps+1), taken: make([]int, steps+1)}
		for t := 0; t <= steps; t++ {
			bestVal := math.Inf(1)
			bestK := -1
			for k := 1; k <= t; k++ {
				c, err := cost(n, k)
				if err != nil {
					return err
				}
				if math.IsInf(c, 1) {
					continue
				}
				total := c
				for _, e := range n.Edges {
					total += tables[e.Child].f[t-k]
				}
				if total < bestVal {
					bestVal, bestK = total, k
				}
			}
			tb.f[t] = bestVal
			tb.taken[t] = bestK
		}
		tables[n] = tb
		return nil
	}
	if err := build(q.Root); err != nil {
		return nil, err
	}
	root := tables[q.Root]
	if math.IsInf(root.f[steps], 1) {
		return nil, fmt.Errorf("queryopt: query %s infeasible within SLO %v", q.Name, q.SLO)
	}
	// Walk down recording chosen budgets.
	split := &Split{Budgets: make(map[string]time.Duration), GPUs: root.f[steps]}
	var assign func(n *Node, t int)
	assign = func(n *Node, t int) {
		k := tables[n].taken[t]
		split.Budgets[n.Name] = time.Duration(k) * eps
		for _, e := range n.Edges {
			assign(e.Child, t-k)
		}
	}
	assign(q.Root, steps)
	return split, nil
}

// SplitCost evaluates the estimated GPU cost of serving the query at
// rootRate under a given latency split, with the same cost model Optimize
// uses. It returns +Inf when a stage is infeasible under its budget.
func SplitCost(q *Query, rootRate float64, split *Split, profiles map[string]*profiler.Profile, cfg scheduler.Config) (float64, error) {
	factor := cfg.SLOFactor
	if factor == 0 {
		factor = 2
	}
	rates := q.Rates(rootRate)
	var total float64
	for _, n := range q.Nodes() {
		budget, ok := split.Budgets[n.Name]
		if !ok {
			return 0, fmt.Errorf("queryopt: split missing node %s", n.Name)
		}
		p, ok := profiles[n.ModelID]
		if !ok {
			return 0, fmt.Errorf("queryopt: no profile for model %s", n.ModelID)
		}
		b := p.MaxBatchWithin(time.Duration(float64(budget) / factor))
		if b == 0 {
			return math.Inf(1), nil
		}
		total += rates[n.Name] / p.Throughput(b)
	}
	return total, nil
}

// EvenSplit is the baseline latency split used in §7.2/§7.5: the query SLO
// divided evenly across the stages of the longest root-leaf path, the same
// budget for every node.
func EvenSplit(q *Query) (*Split, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	depth := 0
	var walk func(n *Node, d int)
	walk = func(n *Node, d int) {
		if d > depth {
			depth = d
		}
		for _, e := range n.Edges {
			walk(e.Child, d+1)
		}
	}
	walk(q.Root, 1)
	per := q.SLO / time.Duration(depth)
	split := &Split{Budgets: make(map[string]time.Duration)}
	for _, n := range q.Nodes() {
		split.Budgets[n.Name] = per
	}
	return split, nil
}

// Sessions converts a query plus a latency split into scheduler sessions,
// one per node, with rates derived from the root rate. Session IDs are
// "<query>/<node>".
func Sessions(q *Query, rootRate float64, split *Split) ([]scheduler.Session, error) {
	rates := q.Rates(rootRate)
	var out []scheduler.Session
	for _, n := range q.Nodes() {
		budget, ok := split.Budgets[n.Name]
		if !ok {
			return nil, fmt.Errorf("queryopt: split missing node %s", n.Name)
		}
		out = append(out, scheduler.Session{
			ID:      q.Name + "/" + n.Name,
			ModelID: n.ModelID,
			SLO:     budget,
			Rate:    rates[n.Name],
		})
	}
	return out, nil
}

// PipelineAvgThroughput computes the §4.2 two-stage pipeline metric: with
// per-GPU throughputs tx, ty for stages X and Y and fan-out gamma, GPUs are
// provisioned so neither stage bottlenecks (γ·p·TX = q·TY) and the average
// throughput is the pipeline throughput divided by total GPUs:
// p·TX/(p+q) = TX / (1 + γ·TX/TY).
func PipelineAvgThroughput(tx, ty, gamma float64) float64 {
	if tx <= 0 || ty <= 0 {
		return 0
	}
	return tx / (1 + gamma*tx/ty)
}
