package queryopt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/profiler"
	"nexus/internal/scheduler"
)

func linearProfile(id string, alpha, beta time.Duration) *profiler.Profile {
	return &profiler.Profile{
		ModelID: id, GPU: profiler.GTX1080Ti,
		Alpha: alpha, Beta: beta, MaxBatch: 64,
		MemBase: 1 << 30, MemPerItem: 4 << 20,
	}
}

func chainQuery(slo time.Duration) *Query {
	return &Query{
		Name: "q",
		SLO:  slo,
		Root: &Node{Name: "x", ModelID: "mx", Edges: []Edge{
			{Gamma: 1, Child: &Node{Name: "y", ModelID: "my"}},
		}},
	}
}

func TestValidate(t *testing.T) {
	good := chainQuery(100 * time.Millisecond)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Query{Name: "q", SLO: time.Second}
	if bad.Validate() == nil {
		t.Error("nil root accepted")
	}
	noSLO := chainQuery(0)
	if noSLO.Validate() == nil {
		t.Error("zero SLO accepted")
	}
	dup := &Query{Name: "q", SLO: time.Second, Root: &Node{Name: "x", ModelID: "m", Edges: []Edge{
		{Gamma: 1, Child: &Node{Name: "x", ModelID: "m"}},
	}}}
	if dup.Validate() == nil {
		t.Error("duplicate names accepted")
	}
	badGamma := &Query{Name: "q", SLO: time.Second, Root: &Node{Name: "x", ModelID: "m", Edges: []Edge{
		{Gamma: 0, Child: &Node{Name: "y", ModelID: "m"}},
	}}}
	if badGamma.Validate() == nil {
		t.Error("zero gamma accepted")
	}
}

func TestRates(t *testing.T) {
	q := &Query{Name: "traffic", SLO: 400 * time.Millisecond,
		Root: &Node{Name: "ssd", ModelID: "ssd", Edges: []Edge{
			{Gamma: 2.5, Child: &Node{Name: "car", ModelID: "car"}},
			{Gamma: 0.5, Child: &Node{Name: "face", ModelID: "face"}},
		}}}
	rates := q.Rates(100)
	if rates["ssd"] != 100 || rates["car"] != 250 || rates["face"] != 50 {
		t.Fatalf("rates = %v", rates)
	}
}

func TestOptimizeChain(t *testing.T) {
	profiles := map[string]*profiler.Profile{
		"mx": linearProfile("mx", 2*time.Millisecond, 10*time.Millisecond),
		"my": linearProfile("my", 500*time.Microsecond, 5*time.Millisecond),
	}
	q := chainQuery(200 * time.Millisecond)
	split, err := Optimize(q, 100, profiles, 5*time.Millisecond, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bx, by := split.Budgets["x"], split.Budgets["y"]
	if bx+by > 200*time.Millisecond {
		t.Fatalf("split %v + %v exceeds SLO", bx, by)
	}
	if bx <= 0 || by <= 0 {
		t.Fatalf("non-positive budgets: %v, %v", bx, by)
	}
	// The slower model (mx) should get the larger share.
	if bx <= by {
		t.Errorf("slow stage got %v, fast stage %v; expected more for slow", bx, by)
	}
	if split.GPUs <= 0 || math.IsInf(split.GPUs, 1) {
		t.Fatalf("GPUs = %v", split.GPUs)
	}
}

// TestOptimizeMatchesBruteForce compares the DP against exhaustive split
// enumeration on a two-stage chain.
func TestOptimizeMatchesBruteForce(t *testing.T) {
	profiles := map[string]*profiler.Profile{
		"mx": linearProfile("mx", 2*time.Millisecond, 12*time.Millisecond),
		"my": linearProfile("my", time.Millisecond, 8*time.Millisecond),
	}
	const rate = 200.0
	eps := 5 * time.Millisecond
	q := chainQuery(150 * time.Millisecond)
	split, err := Optimize(q, rate, profiles, eps, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cost := func(m string, budget time.Duration, r float64) float64 {
		p := profiles[m]
		b := p.MaxBatchWithin(budget / 2)
		if b == 0 {
			return math.Inf(1)
		}
		return r / p.Throughput(b)
	}
	best := math.Inf(1)
	steps := int(q.SLO / eps)
	for kx := 1; kx < steps; kx++ {
		ky := steps - kx
		total := cost("mx", time.Duration(kx)*eps, rate) + cost("my", time.Duration(ky)*eps, rate)
		if total < best {
			best = total
		}
	}
	if math.Abs(split.GPUs-best) > 1e-9 {
		t.Fatalf("DP GPUs %v != brute force %v", split.GPUs, best)
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	profiles := map[string]*profiler.Profile{
		"mx": linearProfile("mx", 2*time.Millisecond, 100*time.Millisecond),
		"my": linearProfile("my", 2*time.Millisecond, 100*time.Millisecond),
	}
	q := chainQuery(150 * time.Millisecond) // 2*l(1) per stage is ~204ms+
	if _, err := Optimize(q, 100, profiles, 5*time.Millisecond, scheduler.Config{}); err == nil {
		t.Fatal("infeasible query accepted")
	}
}

func TestOptimizeErrors(t *testing.T) {
	q := chainQuery(100 * time.Millisecond)
	profiles := map[string]*profiler.Profile{
		"mx": linearProfile("mx", time.Millisecond, time.Millisecond),
		"my": linearProfile("my", time.Millisecond, time.Millisecond),
	}
	if _, err := Optimize(q, 0, profiles, 0, scheduler.Config{}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Optimize(q, 10, map[string]*profiler.Profile{}, 0, scheduler.Config{}); err == nil {
		t.Error("missing profiles accepted")
	}
	tiny := chainQuery(time.Millisecond)
	if _, err := Optimize(tiny, 10, profiles, 5*time.Millisecond, scheduler.Config{}); err == nil {
		t.Error("SLO below epsilon accepted")
	}
}

func TestEvenSplit(t *testing.T) {
	q := &Query{Name: "q", SLO: 300 * time.Millisecond,
		Root: &Node{Name: "a", ModelID: "m", Edges: []Edge{
			{Gamma: 1, Child: &Node{Name: "b", ModelID: "m", Edges: []Edge{
				{Gamma: 1, Child: &Node{Name: "c", ModelID: "m"}},
			}}},
			{Gamma: 1, Child: &Node{Name: "d", ModelID: "m"}},
		}}}
	split, err := EvenSplit(q)
	if err != nil {
		t.Fatal(err)
	}
	// Longest path a->b->c has 3 stages: everyone gets 100ms.
	for _, n := range []string{"a", "b", "c", "d"} {
		if split.Budgets[n] != 100*time.Millisecond {
			t.Fatalf("node %s budget %v, want 100ms", n, split.Budgets[n])
		}
	}
}

func TestSessions(t *testing.T) {
	q := chainQuery(100 * time.Millisecond)
	split := &Split{Budgets: map[string]time.Duration{
		"x": 60 * time.Millisecond, "y": 40 * time.Millisecond,
	}}
	sessions, err := Sessions(q, 50, split)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 2 {
		t.Fatalf("%d sessions", len(sessions))
	}
	for _, s := range sessions {
		switch s.ID {
		case "q/x":
			if s.SLO != 60*time.Millisecond || s.Rate != 50 {
				t.Fatalf("bad x session: %+v", s)
			}
		case "q/y":
			if s.SLO != 40*time.Millisecond || s.Rate != 50 {
				t.Fatalf("bad y session: %+v", s)
			}
		default:
			t.Fatalf("unexpected session %s", s.ID)
		}
	}
	incomplete := &Split{Budgets: map[string]time.Duration{"x": time.Millisecond}}
	if _, err := Sessions(q, 50, incomplete); err == nil {
		t.Fatal("incomplete split accepted")
	}
}

// TestFigure4 reproduces the paper's Figure 4 numbers exactly from the
// Figure 3 throughput table.
func TestFigure4(t *testing.T) {
	// Figure 3: X: 40ms->200 r/s, 50->250, 60->300; Y: 40->300, 50->400, 60->500.
	tputX := map[int]float64{40: 200, 50: 250, 60: 300}
	tputY := map[int]float64{40: 300, 50: 400, 60: 500}
	want := map[[2]int]map[string]float64{
		{40, 60}: {"0.1": 192.3, "1": 142.9, "10": 40.0},
		{50, 50}: {"0.1": 235.3, "1": 153.8, "10": 34.5},
		{60, 40}: {"0.1": 272.7, "1": 150.0, "10": 27.3},
	}
	gammas := map[string]float64{"0.1": 0.1, "1": 1, "10": 10}
	for splitPlan, results := range want {
		for gs, wantT := range results {
			got := PipelineAvgThroughput(tputX[splitPlan[0]], tputY[splitPlan[1]], gammas[gs])
			if math.Abs(got-wantT) > 0.1 {
				t.Errorf("split %v gamma %s: got %.1f, want %.1f", splitPlan, gs, got, wantT)
			}
		}
	}
}

// TestFigure4NoUniversalBest verifies §4.2's observation: different gammas
// prefer different splits.
func TestFigure4NoUniversalBest(t *testing.T) {
	tputX := map[int]float64{40: 200, 50: 250, 60: 300}
	tputY := map[int]float64{40: 300, 50: 400, 60: 500}
	bestFor := func(gamma float64) [2]int {
		best, bestT := [2]int{}, -1.0
		for _, p := range [][2]int{{40, 60}, {50, 50}, {60, 40}} {
			if tp := PipelineAvgThroughput(tputX[p[0]], tputY[p[1]], gamma); tp > bestT {
				best, bestT = p, tp
			}
		}
		return best
	}
	if bestFor(0.1) != [2]int{60, 40} {
		t.Errorf("gamma 0.1 best = %v, want [60 40]", bestFor(0.1))
	}
	if bestFor(1) != [2]int{50, 50} {
		t.Errorf("gamma 1 best = %v, want [50 50]", bestFor(1))
	}
	if bestFor(10) != [2]int{40, 60} {
		t.Errorf("gamma 10 best = %v, want [40 60]", bestFor(10))
	}
}

// Property: the DP split always fits the SLO along every root-leaf path and
// never does worse than the even split.
func TestPropertyOptimizeBeatsEvenSplit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		profiles := map[string]*profiler.Profile{
			"a": linearProfile("a", time.Duration(rng.Intn(3000)+200)*time.Microsecond,
				time.Duration(rng.Intn(20)+2)*time.Millisecond),
			"b": linearProfile("b", time.Duration(rng.Intn(3000)+200)*time.Microsecond,
				time.Duration(rng.Intn(20)+2)*time.Millisecond),
		}
		gamma := []float64{0.1, 0.5, 1, 2, 10}[rng.Intn(5)]
		// SLO a multiple of 2*eps so the even split lies on the DP grid
		// (otherwise discretization could make the DP lose unfairly).
		q := &Query{Name: "q", SLO: time.Duration(rng.Intn(30)+15) * 10 * time.Millisecond,
			Root: &Node{Name: "x", ModelID: "a", Edges: []Edge{
				{Gamma: gamma, Child: &Node{Name: "y", ModelID: "b"}},
			}}}
		rate := float64(rng.Intn(500) + 10)
		eps := 5 * time.Millisecond
		opt, err := Optimize(q, rate, profiles, eps, scheduler.Config{})
		if err != nil {
			return true // infeasible under random profiles is fine
		}
		// Path constraint.
		if opt.Budgets["x"]+opt.Budgets["y"] > q.SLO {
			return false
		}
		// Compare with the cost of the even split under the same model.
		even, err := EvenSplit(q)
		if err != nil {
			return false
		}
		cost := func(sp *Split) float64 {
			var total float64
			rates := q.Rates(rate)
			for _, n := range q.Nodes() {
				p := profiles[n.ModelID]
				b := p.MaxBatchWithin(sp.Budgets[n.Name] / 2)
				if b == 0 {
					return math.Inf(1)
				}
				total += rates[n.Name] / p.Throughput(b)
			}
			return total
		}
		return cost(opt) <= cost(even)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
