package queryopt

import (
	"fmt"
	"math"
	"time"

	"nexus/internal/profiler"
	"nexus/internal/scheduler"
)

// Graph is a general fork-join dataflow DAG. The paper solves latency
// splitting "for the case of fork-join dependency graphs" but only
// presents the tree DP (§6.2); this is the general-case optimizer. Nodes
// may have multiple parents (joins), e.g. a fusion model consuming both a
// detector's crops and a tracker's embeddings.
type Graph struct {
	Name string
	SLO  time.Duration
	// Nodes[0] is the root; edges reference nodes by index.
	Nodes []GraphNode
}

// GraphNode is one stage of a DAG query.
type GraphNode struct {
	Name    string
	ModelID string
	Edges   []GraphEdge
}

// GraphEdge links a node to a downstream stage with a fan-out factor.
type GraphEdge struct {
	Gamma float64
	To    int
}

// Validate checks shape: nodes named, edges in range, node 0 the unique
// root, no cycles.
func (g *Graph) Validate() error {
	if g.SLO <= 0 {
		return fmt.Errorf("queryopt: graph %s has non-positive SLO", g.Name)
	}
	if len(g.Nodes) == 0 {
		return fmt.Errorf("queryopt: graph %s has no nodes", g.Name)
	}
	names := make(map[string]bool)
	indeg := make([]int, len(g.Nodes))
	for i, n := range g.Nodes {
		if n.Name == "" || n.ModelID == "" {
			return fmt.Errorf("queryopt: graph %s node %d needs name and model", g.Name, i)
		}
		if names[n.Name] {
			return fmt.Errorf("queryopt: graph %s has duplicate node %q", g.Name, n.Name)
		}
		names[n.Name] = true
		for _, e := range n.Edges {
			if e.To < 0 || e.To >= len(g.Nodes) {
				return fmt.Errorf("queryopt: graph %s node %s edge out of range", g.Name, n.Name)
			}
			if e.To == i {
				return fmt.Errorf("queryopt: graph %s node %s has a self-edge", g.Name, n.Name)
			}
			if e.Gamma <= 0 || math.IsNaN(e.Gamma) || math.IsInf(e.Gamma, 0) {
				return fmt.Errorf("queryopt: graph %s node %s has invalid gamma", g.Name, n.Name)
			}
			indeg[e.To]++
		}
	}
	if indeg[0] != 0 {
		return fmt.Errorf("queryopt: graph %s node 0 must be the root (no in-edges)", g.Name)
	}
	for i := 1; i < len(g.Nodes); i++ {
		if indeg[i] == 0 {
			return fmt.Errorf("queryopt: graph %s node %s unreachable", g.Name, g.Nodes[i].Name)
		}
	}
	if _, err := g.topoOrder(); err != nil {
		return err
	}
	return nil
}

// topoOrder returns a topological ordering or an error on cycles.
func (g *Graph) topoOrder() ([]int, error) {
	indeg := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, e := range n.Edges {
			indeg[e.To]++
		}
	}
	var order []int
	var queue []int
	for i := range g.Nodes {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.Nodes[v].Edges {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("queryopt: graph %s has a cycle", g.Name)
	}
	return order, nil
}

// Rates returns each node's request rate given the root rate: along each
// in-edge, parent rate times gamma, summed over parents (a join receives
// work from every parent).
func (g *Graph) Rates(rootRate float64) map[string]float64 {
	order, err := g.topoOrder()
	if err != nil {
		return nil
	}
	rates := make([]float64, len(g.Nodes))
	rates[0] = rootRate
	for _, v := range order {
		for _, e := range g.Nodes[v].Edges {
			rates[e.To] += rates[v] * e.Gamma
		}
	}
	out := make(map[string]float64, len(g.Nodes))
	for i, n := range g.Nodes {
		out[n.Name] = rates[i]
	}
	return out
}

// depth returns, per node, the maximum number of stages on any root→node
// path (for the even-split seed).
func (g *Graph) depth() []int {
	order, _ := g.topoOrder()
	d := make([]int, len(g.Nodes))
	d[0] = 1
	for _, v := range order {
		for _, e := range g.Nodes[v].Edges {
			if d[v]+1 > d[e.To] {
				d[e.To] = d[v] + 1
			}
		}
	}
	return d
}

// maxPathBudget returns the largest total budget along any root→leaf path.
func (g *Graph) maxPathBudget(budget []time.Duration) time.Duration {
	order, _ := g.topoOrder()
	longest := make([]time.Duration, len(g.Nodes))
	for i := range longest {
		longest[i] = -1
	}
	longest[0] = budget[0]
	var maxTotal time.Duration
	for _, v := range order {
		if longest[v] < 0 {
			continue
		}
		if longest[v] > maxTotal {
			maxTotal = longest[v]
		}
		for _, e := range g.Nodes[v].Edges {
			if cand := longest[v] + budget[e.To]; cand > longest[e.To] {
				longest[e.To] = cand
			}
		}
	}
	return maxTotal
}

// OptimizeGraph finds a latency split for a fork-join DAG minimizing
// estimated GPUs, by coordinate descent on the ε-grid: starting from an
// even split along the deepest path, it repeatedly (a) grows a node's
// budget when paths permit and (b) transfers ε between nodes, accepting
// strictly improving moves. For tree-shaped graphs it matches the DP's
// answer on the same grid in our tests; unlike the DP it also handles
// joins (nodes with multiple parents).
func OptimizeGraph(g *Graph, rootRate float64, profiles map[string]*profiler.Profile,
	eps time.Duration, cfg scheduler.Config) (*Split, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if rootRate <= 0 {
		return nil, fmt.Errorf("queryopt: non-positive root rate %v", rootRate)
	}
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	factor := cfg.SLOFactor
	if factor == 0 {
		factor = 2
	}
	rates := g.Rates(rootRate)
	n := len(g.Nodes)
	cost := func(i int, budget time.Duration) (float64, error) {
		p, ok := profiles[g.Nodes[i].ModelID]
		if !ok {
			return 0, fmt.Errorf("queryopt: no profile for model %s", g.Nodes[i].ModelID)
		}
		if budget <= 0 {
			return math.Inf(1), nil
		}
		b := p.MaxBatchWithin(time.Duration(float64(budget) / factor))
		if b == 0 {
			return math.Inf(1), nil
		}
		return rates[g.Nodes[i].Name] / p.Throughput(b), nil
	}

	// Seed: even split along the deepest path, snapped to the grid.
	depths := g.depth()
	maxDepth := 0
	for _, d := range depths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	per := (g.SLO / time.Duration(maxDepth) / eps) * eps
	if per < eps {
		return nil, fmt.Errorf("queryopt: SLO %v too small for %d stages at epsilon %v", g.SLO, maxDepth, eps)
	}
	budget := make([]time.Duration, n)
	for i := range budget {
		budget[i] = per
	}
	// Grow any node while paths permit (uses slack the even split leaves
	// on shallow branches).
	feasible := func() bool { return g.maxPathBudget(budget) <= g.SLO }
	if !feasible() {
		return nil, fmt.Errorf("queryopt: internal: even seed infeasible")
	}
	costs := make([]float64, n)
	total := 0.0
	for i := range budget {
		c, err := cost(i, budget[i])
		if err != nil {
			return nil, err
		}
		costs[i] = c
		total += c
	}
	improved := true
	for iter := 0; improved && iter < 10000; iter++ {
		improved = false
		// Move 1: grow a node by ε when all its paths still fit.
		for i := 0; i < n; i++ {
			budget[i] += eps
			if feasible() {
				c, err := cost(i, budget[i])
				if err != nil {
					return nil, err
				}
				if c < costs[i]-1e-15 {
					total += c - costs[i]
					costs[i] = c
					improved = true
					continue
				}
			}
			budget[i] -= eps
		}
		// Move 2: transfer ε from node j to node i when it lowers total
		// cost (path feasibility rechecked).
		for i := 0; i < n && !improved; i++ {
			for j := 0; j < n; j++ {
				if i == j || budget[j] <= eps {
					continue
				}
				budget[i] += eps
				budget[j] -= eps
				ci, err := cost(i, budget[i])
				if err != nil {
					return nil, err
				}
				cj, err := cost(j, budget[j])
				if err != nil {
					return nil, err
				}
				newTotal := total - costs[i] - costs[j] + ci + cj
				if feasible() && newTotal < total-1e-12 {
					costs[i], costs[j] = ci, cj
					total = newTotal
					improved = true
					break
				}
				budget[i] -= eps
				budget[j] += eps
			}
		}
	}
	if math.IsInf(total, 1) {
		return nil, fmt.Errorf("queryopt: graph %s infeasible within SLO %v", g.Name, g.SLO)
	}
	split := &Split{Budgets: make(map[string]time.Duration, n), GPUs: total}
	for i, node := range g.Nodes {
		split.Budgets[node.Name] = budget[i]
	}
	return split, nil
}

// GraphFromTree converts a tree query into the DAG representation.
func GraphFromTree(q *Query) (*Graph, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{Name: q.Name, SLO: q.SLO}
	index := make(map[*Node]int)
	var walk func(n *Node)
	walk = func(n *Node) {
		index[n] = len(g.Nodes)
		g.Nodes = append(g.Nodes, GraphNode{Name: n.Name, ModelID: n.ModelID})
		for _, e := range n.Edges {
			walk(e.Child)
		}
	}
	walk(q.Root)
	var link func(n *Node)
	link = func(n *Node) {
		for _, e := range n.Edges {
			g.Nodes[index[n]].Edges = append(g.Nodes[index[n]].Edges, GraphEdge{
				Gamma: e.Gamma, To: index[e.Child],
			})
			link(e.Child)
		}
	}
	link(q.Root)
	return g, nil
}
