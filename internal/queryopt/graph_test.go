package queryopt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/profiler"
	"nexus/internal/scheduler"
)

func diamondGraph(slo time.Duration) *Graph {
	// det fans out to two recognizers that both feed a fusion stage.
	return &Graph{
		Name: "diamond", SLO: slo,
		Nodes: []GraphNode{
			{Name: "det", ModelID: "mx", Edges: []GraphEdge{{Gamma: 2, To: 1}, {Gamma: 1, To: 2}}},
			{Name: "recA", ModelID: "my", Edges: []GraphEdge{{Gamma: 1, To: 3}}},
			{Name: "recB", ModelID: "my", Edges: []GraphEdge{{Gamma: 0.5, To: 3}}},
			{Name: "fuse", ModelID: "my"},
		},
	}
}

func TestGraphValidate(t *testing.T) {
	good := diamondGraph(300 * time.Millisecond)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := diamondGraph(0)
	if bad.Validate() == nil {
		t.Error("zero SLO accepted")
	}
	cyc := &Graph{Name: "c", SLO: time.Second, Nodes: []GraphNode{
		{Name: "a", ModelID: "m", Edges: []GraphEdge{{Gamma: 1, To: 1}}},
		{Name: "b", ModelID: "m", Edges: []GraphEdge{{Gamma: 1, To: 0}}},
	}}
	if cyc.Validate() == nil {
		t.Error("cycle accepted (node 0 has an in-edge)")
	}
	orphan := &Graph{Name: "o", SLO: time.Second, Nodes: []GraphNode{
		{Name: "a", ModelID: "m"},
		{Name: "b", ModelID: "m"},
	}}
	if orphan.Validate() == nil {
		t.Error("unreachable node accepted")
	}
	self := &Graph{Name: "s", SLO: time.Second, Nodes: []GraphNode{
		{Name: "a", ModelID: "m", Edges: []GraphEdge{{Gamma: 1, To: 0}}},
	}}
	if self.Validate() == nil {
		t.Error("self edge accepted")
	}
	dup := &Graph{Name: "d", SLO: time.Second, Nodes: []GraphNode{
		{Name: "a", ModelID: "m", Edges: []GraphEdge{{Gamma: 1, To: 1}}},
		{Name: "a", ModelID: "m"},
	}}
	if dup.Validate() == nil {
		t.Error("duplicate names accepted")
	}
}

func TestGraphRatesJoin(t *testing.T) {
	g := diamondGraph(300 * time.Millisecond)
	rates := g.Rates(100)
	if rates["det"] != 100 || rates["recA"] != 200 || rates["recB"] != 100 {
		t.Fatalf("rates = %v", rates)
	}
	// The join receives work from both parents: 200*1 + 100*0.5.
	if rates["fuse"] != 250 {
		t.Fatalf("join rate = %v, want 250", rates["fuse"])
	}
}

func TestMaxPathBudget(t *testing.T) {
	g := diamondGraph(300 * time.Millisecond)
	b := []time.Duration{100, 50, 80, 30} // det, recA, recB, fuse (ms units below)
	for i := range b {
		b[i] *= time.Millisecond
	}
	// Longest path det->recB->fuse = 100+80+30 = 210ms.
	if got := g.maxPathBudget(b); got != 210*time.Millisecond {
		t.Fatalf("maxPathBudget = %v, want 210ms", got)
	}
}

func TestOptimizeGraphDiamond(t *testing.T) {
	profiles := graphProfiles()
	g := diamondGraph(300 * time.Millisecond)
	split, err := OptimizeGraph(g, 100, profiles, 5*time.Millisecond, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Every root-leaf path must respect the SLO.
	budget := make([]time.Duration, len(g.Nodes))
	for i, n := range g.Nodes {
		budget[i] = split.Budgets[n.Name]
		if budget[i] <= 0 {
			t.Fatalf("node %s got budget %v", n.Name, budget[i])
		}
	}
	if got := g.maxPathBudget(budget); got > g.SLO {
		t.Fatalf("path budget %v exceeds SLO", got)
	}
	if split.GPUs <= 0 || math.IsInf(split.GPUs, 1) {
		t.Fatalf("GPUs = %v", split.GPUs)
	}
	// The slow detector (mx) should receive the largest budget.
	if split.Budgets["det"] < split.Budgets["fuse"] {
		t.Fatalf("det %v < fuse %v", split.Budgets["det"], split.Budgets["fuse"])
	}
}

func graphProfiles() map[string]*profiler.Profile {
	return map[string]*profiler.Profile{
		"mx": linearProfile("mx", 2*time.Millisecond, 20*time.Millisecond),
		"my": linearProfile("my", 500*time.Microsecond, 5*time.Millisecond),
	}
}

func TestOptimizeGraphMatchesTreeDP(t *testing.T) {
	profiles := graphProfiles()
	q := &Query{
		Name: "chain", SLO: 200 * time.Millisecond,
		Root: &Node{Name: "x", ModelID: "mx", Edges: []Edge{
			{Gamma: 2, Child: &Node{Name: "y", ModelID: "my"}},
		}},
	}
	eps := 5 * time.Millisecond
	dp, err := Optimize(q, 100, profiles, eps, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := GraphFromTree(q)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := OptimizeGraph(g, 100, profiles, eps, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Coordinate descent should match the DP's optimum on this small chain
	// (both on the same grid).
	if cd.GPUs > dp.GPUs*1.02+1e-9 {
		t.Fatalf("graph optimizer %.4f GPUs vs DP %.4f", cd.GPUs, dp.GPUs)
	}
}

func TestGraphFromTree(t *testing.T) {
	q := &Query{
		Name: "t", SLO: 400 * time.Millisecond,
		Root: &Node{Name: "a", ModelID: "m", Edges: []Edge{
			{Gamma: 2, Child: &Node{Name: "b", ModelID: "m"}},
			{Gamma: 0.5, Child: &Node{Name: "c", ModelID: "m", Edges: []Edge{
				{Gamma: 1, Child: &Node{Name: "d", ModelID: "m"}},
			}}},
		}},
	}
	g, err := GraphFromTree(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(g.Nodes))
	}
	// Rates must agree with the tree's.
	tr := q.Rates(10)
	gr := g.Rates(10)
	for name, want := range tr {
		if math.Abs(gr[name]-want) > 1e-9 {
			t.Fatalf("rate %s = %v, want %v", name, gr[name], want)
		}
	}
}

func TestOptimizeGraphErrors(t *testing.T) {
	profiles := graphProfiles()
	g := diamondGraph(300 * time.Millisecond)
	if _, err := OptimizeGraph(g, 0, profiles, 0, scheduler.Config{}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := OptimizeGraph(g, 10, map[string]*profiler.Profile{}, 0, scheduler.Config{}); err == nil {
		t.Error("missing profiles accepted")
	}
	tiny := diamondGraph(10 * time.Millisecond) // 3 stages cannot split 10ms at 5ms grid
	if _, err := OptimizeGraph(tiny, 10, profiles, 5*time.Millisecond, scheduler.Config{}); err == nil {
		t.Error("impossible grid accepted")
	}
}

// Property: for random trees, the graph optimizer's split is feasible and
// no worse than the even split.
func TestPropertyGraphOptimizerVsEven(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		profiles := map[string]*profiler.Profile{
			"a": linearProfile("a", time.Duration(rng.Intn(2000)+200)*time.Microsecond,
				time.Duration(rng.Intn(15)+2)*time.Millisecond),
			"b": linearProfile("b", time.Duration(rng.Intn(2000)+200)*time.Microsecond,
				time.Duration(rng.Intn(15)+2)*time.Millisecond),
		}
		q := &Query{Name: "q", SLO: time.Duration(rng.Intn(30)+15) * 10 * time.Millisecond,
			Root: &Node{Name: "x", ModelID: "a", Edges: []Edge{
				{Gamma: []float64{0.5, 1, 3}[rng.Intn(3)], Child: &Node{Name: "y", ModelID: "b"}},
			}}}
		g, err := GraphFromTree(q)
		if err != nil {
			return false
		}
		rate := float64(rng.Intn(400) + 10)
		cd, err := OptimizeGraph(g, rate, profiles, 5*time.Millisecond, scheduler.Config{})
		if err != nil {
			return true // infeasible under random profiles is fine
		}
		even, err := EvenSplit(q)
		if err != nil {
			return false
		}
		evenCost, err := SplitCost(q, rate, even, profiles, scheduler.Config{})
		if err != nil {
			return false
		}
		return cd.GPUs <= evenCost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
