package gpusim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/profiler"
	"nexus/internal/simclock"
)

func newDev(mode Mode) (*simclock.Clock, *Device) {
	c := simclock.New()
	return c, New(c, "gpu0", profiler.GTX1080Ti, mode)
}

func TestExclusiveFIFO(t *testing.T) {
	c, d := newDev(Exclusive)
	var finished []time.Duration
	d.Submit(10*time.Millisecond, func() { finished = append(finished, c.Now()) })
	d.Submit(5*time.Millisecond, func() { finished = append(finished, c.Now()) })
	c.Run()
	if len(finished) != 2 {
		t.Fatalf("finished %d jobs", len(finished))
	}
	if finished[0] != 10*time.Millisecond || finished[1] != 15*time.Millisecond {
		t.Fatalf("completions at %v, want [10ms 15ms]", finished)
	}
}

func TestExclusiveQueueLen(t *testing.T) {
	c, d := newDev(Exclusive)
	d.Submit(10*time.Millisecond, nil)
	d.Submit(10*time.Millisecond, nil)
	if d.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", d.QueueLen())
	}
	c.Run()
	if d.QueueLen() != 0 {
		t.Fatalf("QueueLen after run = %d", d.QueueLen())
	}
}

func TestSubmitNonPositivePanics(t *testing.T) {
	_, d := newDev(Exclusive)
	defer func() {
		if recover() == nil {
			t.Fatal("zero work accepted")
		}
	}()
	d.Submit(0, nil)
}

func TestSharedSingleJobMatchesExclusive(t *testing.T) {
	c, d := newDev(Shared)
	var done time.Duration
	d.Submit(20*time.Millisecond, func() { done = c.Now() })
	c.Run()
	if done != 20*time.Millisecond {
		t.Fatalf("single shared job finished at %v, want 20ms", done)
	}
}

func TestSharedInterference(t *testing.T) {
	c, d := newDev(Shared)
	var t1, t2 time.Duration
	d.Submit(10*time.Millisecond, func() { t1 = c.Now() })
	d.Submit(10*time.Millisecond, func() { t2 = c.Now() })
	c.Run()
	// Two equal jobs under PS with 15% overhead: each runs at rate
	// 1/(2*1.15), so both finish at 10ms * 2.3 = 23ms.
	want := 23 * time.Millisecond
	if !approx(t1, want, time.Millisecond) || !approx(t2, want, time.Millisecond) {
		t.Fatalf("completions %v, %v; want ~%v", t1, t2, want)
	}
}

func TestSharedStaggeredArrivals(t *testing.T) {
	c, d := newDev(Shared)
	var t1, t2 time.Duration
	d.Submit(10*time.Millisecond, func() { t1 = c.Now() })
	c.At(5*time.Millisecond, func() {
		d.Submit(10*time.Millisecond, func() { t2 = c.Now() })
	})
	c.Run()
	// Job 1 runs alone 0-5ms (5ms progress), then shares. Remaining 5ms at
	// rate 1/2.3 takes 11.5ms -> t1 = 16.5ms. During that window job 2 also
	// progresses 11.5/2.3 = 5ms, leaving 5ms to run alone -> t2 = 21.5ms.
	if !approx(t1, 16500*time.Microsecond, 100*time.Microsecond) {
		t.Fatalf("t1 = %v, want ~16.5ms", t1)
	}
	if !approx(t2, 21500*time.Microsecond, 200*time.Microsecond) {
		t.Fatalf("t2 = %v, want ~21.5ms", t2)
	}
}

func approx(got, want, tol time.Duration) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff <= tol
}

func TestLoadUnload(t *testing.T) {
	c, d := newDev(Exclusive)
	ready := false
	if err := d.Load("m1", 1<<30, func() { ready = true }); err != nil {
		t.Fatal(err)
	}
	if !d.IsLoaded("m1") {
		t.Fatal("model not marked loaded")
	}
	if d.MemUsed() != 1<<30 {
		t.Fatalf("MemUsed = %d", d.MemUsed())
	}
	c.Run()
	if !ready {
		t.Fatal("onReady never fired")
	}
	// A 1 GiB model at 2 GiB/s + 100ms fixed = 600ms.
	if got := LoadTime(1 << 30); got != 600*time.Millisecond {
		t.Fatalf("LoadTime = %v, want 600ms", got)
	}
	d.Unload("m1")
	if d.MemUsed() != 0 || d.IsLoaded("m1") {
		t.Fatal("unload did not free memory")
	}
	d.Unload("m1") // double unload is a no-op
}

func TestLoadAlreadyResident(t *testing.T) {
	c, d := newDev(Exclusive)
	if err := d.Load("m1", 1<<20, nil); err != nil {
		t.Fatal(err)
	}
	fired := false
	if err := d.Load("m1", 1<<20, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if !fired {
		t.Fatal("re-load onReady not fired")
	}
	if d.MemUsed() != 1<<20 {
		t.Fatal("re-load double-charged memory")
	}
}

func TestLoadOverCapacity(t *testing.T) {
	_, d := newDev(Exclusive)
	if err := d.Load("big", d.Spec.MemBytes+1, nil); err == nil {
		t.Fatal("over-capacity load accepted")
	}
	if d.MemUsed() != 0 {
		t.Fatal("failed load leaked memory")
	}
}

func TestUtilizationExclusive(t *testing.T) {
	c, d := newDev(Exclusive)
	d.Submit(30*time.Millisecond, nil)
	c.At(50*time.Millisecond, func() { d.Submit(20*time.Millisecond, nil) })
	c.RunUntil(100 * time.Millisecond)
	// Busy 0-30ms and 50-70ms => 50ms of 100ms.
	if got := d.Utilization(0); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}

func TestUtilizationMidBusy(t *testing.T) {
	c, d := newDev(Exclusive)
	d.Submit(time.Second, nil)
	c.RunUntil(500 * time.Millisecond)
	if got := d.Utilization(0); math.Abs(got-1.0) > 0.01 {
		t.Fatalf("mid-job utilization = %v, want 1.0", got)
	}
}

func TestSharedManyJobsThroughputConservation(t *testing.T) {
	// Total service rate under PS is 1/(1+o(n-1)) <= 1: finishing k jobs of
	// work w each takes at least k*w.
	c, d := newDev(Shared)
	const n = 5
	var last time.Duration
	for i := 0; i < n; i++ {
		d.Submit(10*time.Millisecond, func() { last = c.Now() })
	}
	c.Run()
	overhead := 1 + InterferenceOverhead*float64(n-1)
	want := time.Duration(float64(n*10*time.Millisecond) * overhead)
	if !approx(last, want, time.Millisecond) {
		t.Fatalf("all-done at %v, want ~%v", last, want)
	}
}

// Property: in exclusive mode, completion time of the k-th submitted job
// equals the prefix sum of works (all submitted at t=0).
func TestPropertyExclusivePrefixSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, d := newDev(Exclusive)
		n := rng.Intn(20) + 1
		works := make([]time.Duration, n)
		finish := make([]time.Duration, n)
		for i := range works {
			works[i] = time.Duration(rng.Intn(50)+1) * time.Millisecond
			i := i
			d.Submit(works[i], func() { finish[i] = c.Now() })
		}
		c.Run()
		var sum time.Duration
		for i := range works {
			sum += works[i]
			if finish[i] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: shared mode is work-conserving and never finishes a job before
// its exclusive duration.
func TestPropertySharedLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, d := newDev(Shared)
		n := rng.Intn(8) + 1
		ok := true
		for i := 0; i < n; i++ {
			w := time.Duration(rng.Intn(30)+1) * time.Millisecond
			at := time.Duration(rng.Intn(20)) * time.Millisecond
			c.At(at, func() {
				d.Submit(w, func() {
					if c.Now()-at < w {
						ok = false
					}
				})
			})
		}
		c.Run()
		return ok && d.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewUnknownGPUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown GPU type accepted")
		}
	}()
	New(simclock.New(), "x", "not-a-gpu", Exclusive)
}

func TestJobStructsAreReused(t *testing.T) {
	c := simclock.New()
	d := New(c, "g", profiler.GTX1080Ti, Exclusive)
	// Steady-state submit/complete churn: each completion resubmits. After
	// warmup the device must cycle job structs through its free list.
	n := 0
	var resubmit func()
	resubmit = func() {
		n++
		if n < 500 {
			d.Submit(time.Millisecond, resubmit)
		}
	}
	d.Submit(time.Millisecond, resubmit)
	allocs := testing.AllocsPerRun(1, func() { c.Run() })
	if n != 500 {
		t.Fatalf("completed %d jobs, want 500", n)
	}
	if allocs > 50 {
		t.Fatalf("steady-state churn allocated %.0f objects; jobs are not being reused", allocs)
	}
}

func TestExclusiveQueueCompaction(t *testing.T) {
	c := simclock.New()
	d := New(c, "g", profiler.GTX1080Ti, Exclusive)
	// Keep the device permanently backlogged so the queue never fully
	// drains, and verify FIFO order survives the compaction path.
	var got []int
	next := 0
	for i := 0; i < 400; i++ {
		i := i
		d.Submit(time.Millisecond, func() {
			got = append(got, i)
			// Keep ~2 jobs queued at all times.
			if next < 400 {
				next++
			}
		})
	}
	c.Run()
	if len(got) != 400 {
		t.Fatalf("completed %d, want 400", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("completion order broken at %d: got %d", i, v)
		}
	}
	if d.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d after drain, want 0", d.QueueLen())
	}
}
