package gpusim

import (
	"fmt"
	"time"

	"nexus/internal/profiler"
	"nexus/internal/simclock"
)

// Spatial compute partitions (ROADMAP item 3). A Device can be split into
// fractional-SM slices, MPS/MIG-style: each Partition owns a fraction of
// the device's compute and runs its own FIFO stream, concurrently with the
// other partitions. Callers submit work already scaled for the slice
// fraction (profiler.SliceProfile); the device layers on the dynamic
// co-residency cost — with k partitions executing at once, every running
// job progresses at rate 1/(1 + SpatialInterference·(k−1)), the memory-
// bandwidth/L2 contention term of the profiler's interference model. A
// partition merges back into the device when Release is called and its
// stream drains.

// Partition is a fractional compute slice of a Device.
type Partition struct {
	ID   string
	Frac float64

	dev *Device

	// FIFO stream, head-indexed like Device.queue.
	queue   []*job
	qhead   int
	running *job

	releasing bool
	released  bool

	// Per-slice utilization accounting.
	busy      time.Duration
	busySince time.Duration
}

// fracEpsilon absorbs float accumulation when slices sum to exactly 1.
const fracEpsilon = 1e-9

// Partition carves a compute slice of the given fraction out of the device.
// Fractions of all attached partitions may not exceed 1.
func (d *Device) Partition(id string, frac float64) (*Partition, error) {
	if frac <= 0 || frac > 1+fracEpsilon {
		return nil, fmt.Errorf("gpusim %s: partition %q fraction %v out of (0,1]", d.ID, id, frac)
	}
	used := frac
	for _, p := range d.parts {
		if p.ID == id {
			return nil, fmt.Errorf("gpusim %s: duplicate partition %q", d.ID, id)
		}
		used += p.Frac
	}
	if used > 1+fracEpsilon {
		return nil, fmt.Errorf("gpusim %s: partition %q fraction %v overflows device (%.3f used)", d.ID, id, frac, used-frac)
	}
	if d.partDone == nil {
		d.partDone = d.onPartitionDone
	}
	p := &Partition{ID: id, Frac: frac, dev: d}
	d.parts = append(d.parts, p)
	return p, nil
}

// Partitions returns the attached (not yet merged-back) partitions in
// creation order.
func (d *Device) Partitions() []*Partition {
	return d.parts
}

// partRate is per-running-job progress per unit time with k partitions
// executing concurrently. Unlike Shared mode there is no 1/k term — each
// partition owns its SMs — only the co-residency interference cost.
func partRate(k int) float64 {
	if k <= 0 {
		return 0
	}
	return 1 / profiler.InterferenceFactor(k-1)
}

// Submit enqueues slice-scaled work on the partition; done fires at
// completion. Panics on non-positive work or a released partition.
func (p *Partition) Submit(work time.Duration, done func()) {
	if work <= 0 {
		panic(fmt.Sprintf("gpusim %s/%s: non-positive work %v", p.dev.ID, p.ID, work))
	}
	if p.released {
		panic(fmt.Sprintf("gpusim %s/%s: submit on released partition", p.dev.ID, p.ID))
	}
	d := p.dev
	if d.slow > 1 {
		work = time.Duration(float64(work) * d.slow)
	}
	d.advancePartitions()
	j := d.allocJob(work, done)
	p.queue = append(p.queue, j)
	if p.running == nil {
		p.start()
	}
	d.reschedulePartitions()
}

// QueueLen returns submitted-but-unfinished work items on this partition.
func (p *Partition) QueueLen() int {
	n := len(p.queue) - p.qhead
	if p.running != nil {
		n++
	}
	return n
}

// BusyTime returns the partition's accumulated busy time, including the
// in-flight job's elapsed execution.
func (p *Partition) BusyTime() time.Duration {
	b := p.busy
	if p.running != nil {
		b += p.dev.clock.Now() - p.busySince
	}
	return b
}

// Utilization returns the partition's BusyTime / elapsed since t0.
func (p *Partition) Utilization(t0 time.Duration) float64 {
	elapsed := p.dev.clock.Now() - t0
	if elapsed <= 0 {
		return 0
	}
	return float64(p.BusyTime()) / float64(elapsed)
}

// Released reports whether the partition has merged back into the device.
func (p *Partition) Released() bool { return p.released }

// Release marks the partition for merge-back. An idle partition detaches
// immediately; one with queued or running work detaches when it drains, so
// in-flight completion callbacks still run.
func (p *Partition) Release() {
	if p.released || p.releasing {
		return
	}
	p.releasing = true
	p.dev.maybeDetach(p)
}

// start pops the partition's next queued job into execution. The caller is
// responsible for advancing progress first and rescheduling after.
func (p *Partition) start() {
	if p.running != nil || p.qhead == len(p.queue) {
		return
	}
	d := p.dev
	j := p.queue[p.qhead]
	p.queue[p.qhead] = nil
	p.qhead++
	if p.qhead == len(p.queue) {
		p.queue = p.queue[:0]
		p.qhead = 0
	}
	if !d.isBusy() {
		d.markBusy()
	}
	p.running = j
	p.busySince = d.clock.Now()
	d.partRunning++
}

// advancePartitions applies elapsed progress to every running partition job
// at the current co-residency rate.
func (d *Device) advancePartitions() {
	now := d.clock.Now()
	elapsed := now - d.partAt
	d.partAt = now
	if elapsed <= 0 || d.partRunning == 0 {
		return
	}
	progress := time.Duration(float64(elapsed) * partRate(d.partRunning))
	for _, p := range d.parts {
		if p.running != nil {
			p.running.work -= progress
		}
	}
}

// reschedulePartitions arms the single completion timer for the running
// partition job with the least remaining work.
func (d *Device) reschedulePartitions() {
	d.partNext.Stop()
	d.partNext = simclock.Timer{}
	if d.partRunning == 0 {
		return
	}
	var minJob *job
	for _, p := range d.parts {
		if j := p.running; j != nil {
			if minJob == nil || j.work < minJob.work {
				minJob = j
			}
		}
	}
	wait := time.Duration(float64(minJob.work) / partRate(d.partRunning))
	if wait < 0 {
		wait = 0
	}
	d.partNext = d.clock.After(wait, d.partDone)
}

// onPartitionDone fires when the leading partition job should finish. Bound
// once (see partDone) to keep reschedules allocation-free.
func (d *Device) onPartitionDone() {
	d.advancePartitions()
	// Collect every partition whose running job is exhausted; ties finish
	// together, completing in submission order for determinism.
	fin := d.partFin[:0]
	for _, p := range d.parts {
		if p.running != nil && p.running.work <= time.Nanosecond {
			fin = append(fin, p)
		}
	}
	for i := 0; i < len(fin); i++ {
		for k := i + 1; k < len(fin); k++ {
			if fin[k].running.seq < fin[i].running.seq {
				fin[i], fin[k] = fin[k], fin[i]
			}
		}
	}
	for _, p := range fin {
		j := p.running
		p.running = nil
		p.busy += d.clock.Now() - p.busySince
		d.partRunning--
		if !d.isBusy() {
			d.markIdle()
		}
		done := j.done
		d.recycleJob(j)
		if done != nil {
			done()
		}
		// The completion callback may have submitted follow-up work (which
		// starts the partition itself); otherwise pull the next queued job.
		if p.running == nil {
			p.start()
		}
		d.maybeDetach(p)
	}
	for i := range fin {
		fin[i] = nil
	}
	d.partFin = fin[:0]
	d.reschedulePartitions()
}

// maybeDetach merges a drained, release-marked partition back into the
// device, returning its compute fraction to the pool.
func (d *Device) maybeDetach(p *Partition) {
	if !p.releasing || p.released || p.running != nil || p.qhead != len(p.queue) {
		return
	}
	p.released = true
	for i, q := range d.parts {
		if q == p {
			d.parts = append(d.parts[:i], d.parts[i+1:]...)
			break
		}
	}
}
