// Package gpusim simulates a GPU device for DNN serving.
//
// A Device executes opaque work items whose exclusive-execution duration
// the caller supplies (computed from a batching profile). Two execution
// modes reproduce the behaviours §6.3 ("GPU Multiplexing") contrasts:
//
//   - Exclusive: one owner issues kernels; work runs FIFO, back to back.
//     This is how the Nexus node runtime and TF Serving drive a GPU.
//   - Shared: multiple independent clients (Clipper containers,
//     Nexus-parallel) issue kernels concurrently. The GPU runtime
//     interleaves them arbitrarily, modeled as processor sharing with a
//     per-concurrency interference overhead, which increases and blurs
//     everyone's latency — exactly the effect Figure 14 measures.
//
// The device also models GPU memory (models must be loaded before
// execution, loads take hundreds of ms and consume capacity) and tracks
// busy time for utilization accounting.
package gpusim

import (
	"fmt"
	"time"

	"nexus/internal/profiler"
	"nexus/internal/simclock"
)

// Mode selects how concurrent submissions share the device.
type Mode int

const (
	// Exclusive runs work items FIFO, one at a time.
	Exclusive Mode = iota
	// Shared runs work items concurrently under processor sharing with
	// interference overhead.
	Shared
)

// InterferenceOverhead is the per-extra-concurrent-job slowdown applied in
// Shared mode: n concurrent jobs each run at rate 1/(n*(1+o*(n-1))).
// 15% per extra job reproduces the order of degradation Figure 14 shows
// for uncoordinated containers.
const InterferenceOverhead = 0.15

// loadBandwidth is host-to-device weight-transfer bandwidth.
const loadBandwidth = 2 << 30 // bytes/sec

// loadFixed is the fixed per-model initialization cost.
const loadFixed = 100 * time.Millisecond

// Device is one simulated GPU.
type Device struct {
	ID    string
	Spec  profiler.GPUSpec
	Mode  Mode
	clock *simclock.Clock

	memUsed int64
	loaded  map[string]int64

	// Exclusive mode state. queue is a head-indexed slice: Submit appends,
	// maybeStart pops from qhead, and the backing array is reused instead
	// of re-allocated on every drain.
	queue   []*job
	qhead   int
	running *job
	// execDone is the exclusive-mode completion callback, bound once so
	// each job does not allocate a fresh closure.
	execDone func()

	// Shared mode state.
	shared     map[*job]struct{}
	sharedAt   time.Duration // last time remaining-work was advanced
	sharedNext simclock.Timer
	sharedDone func()
	// finBuf is scratch for collecting finished shared jobs.
	finBuf []*job

	// Spatial partition state (see partition.go). parts holds attached
	// partitions in creation order for deterministic iteration.
	parts       []*Partition
	partRunning int           // partitions with a job executing right now
	partAt      time.Duration // last time partition progress was advanced
	partNext    simclock.Timer
	partDone    func()
	partFin     []*Partition // scratch for collecting finished partitions

	// Utilization accounting.
	busy      time.Duration
	busySince time.Duration
	idleFrom  time.Duration

	jobSeq uint64
	// freeJobs recycles job structs through the submit/complete hot path.
	freeJobs []*job

	// slow stretches the execution time of newly submitted work (straggler
	// injection): effective work = work * slow. Always ≥ the neutral 1.
	slow float64
}

type job struct {
	work      time.Duration // exclusive-execution time remaining
	submitted time.Duration
	seq       uint64 // submission order, for deterministic tie-breaks
	done      func()
}

// New creates a device of the given type. It panics on unknown GPU types,
// which indicates a configuration bug.
func New(clock *simclock.Clock, id string, gpu profiler.GPUType, mode Mode) *Device {
	spec, err := profiler.Spec(gpu)
	if err != nil {
		panic(err)
	}
	d := &Device{
		ID:     id,
		Spec:   spec,
		Mode:   mode,
		clock:  clock,
		loaded: make(map[string]int64),
		shared: make(map[*job]struct{}),
		slow:   1,
	}
	d.execDone = d.onExclusiveDone
	d.sharedDone = d.onSharedDone
	return d
}

// allocJob takes a job from the free list or allocates a fresh one.
func (d *Device) allocJob(work time.Duration, done func()) *job {
	var j *job
	if n := len(d.freeJobs); n > 0 {
		j = d.freeJobs[n-1]
		d.freeJobs[n-1] = nil
		d.freeJobs = d.freeJobs[:n-1]
	} else {
		j = &job{}
	}
	j.work, j.submitted, j.seq, j.done = work, d.clock.Now(), d.jobSeq, done
	d.jobSeq++
	return j
}

// recycleJob returns a completed job to the free list, releasing its
// completion closure.
func (d *Device) recycleJob(j *job) {
	j.done = nil
	d.freeJobs = append(d.freeJobs, j)
}

// MemUsed returns the bytes currently allocated for loaded models.
func (d *Device) MemUsed() int64 { return d.memUsed }

// MemFree returns remaining capacity.
func (d *Device) MemFree() int64 { return d.Spec.MemBytes - d.memUsed }

// IsLoaded reports whether a model (by key) is resident.
func (d *Device) IsLoaded(key string) bool {
	_, ok := d.loaded[key]
	return ok
}

// LoadedKeys returns the number of resident models.
func (d *Device) LoadedKeys() int { return len(d.loaded) }

// LoadTime returns how long loading `bytes` of weights takes.
func LoadTime(bytes int64) time.Duration {
	return loadFixed + time.Duration(float64(bytes)/float64(loadBandwidth)*float64(time.Second))
}

// Load begins loading a model's weights; onReady fires when the model is
// usable. Loading is admission-checked against memory capacity. Loading an
// already-resident key is a no-op that fires onReady immediately.
func (d *Device) Load(key string, bytes int64, onReady func()) error {
	if _, ok := d.loaded[key]; ok {
		if onReady != nil {
			d.clock.After(0, onReady)
		}
		return nil
	}
	if bytes > d.MemFree() {
		return fmt.Errorf("gpusim %s: loading %s needs %d bytes, %d free", d.ID, key, bytes, d.MemFree())
	}
	d.memUsed += bytes
	d.loaded[key] = bytes
	if onReady != nil {
		d.clock.After(LoadTime(bytes), onReady)
	}
	return nil
}

// Unload releases a model's memory immediately.
func (d *Device) Unload(key string) {
	if bytes, ok := d.loaded[key]; ok {
		d.memUsed -= bytes
		delete(d.loaded, key)
	}
}

// SetSlowdown scales the execution time of work submitted from now on by
// factor (straggler injection; 1 = nominal speed, 2 = twice as slow).
// Work already queued or running is unaffected. Factors ≤ 1 (including the
// reset value 0) restore nominal speed — the model is a degraded node, not
// an overclocked one.
func (d *Device) SetSlowdown(factor float64) {
	if factor <= 1 {
		factor = 1
	}
	d.slow = factor
}

// Slowdown returns the current straggler factor (1 = nominal).
func (d *Device) Slowdown() float64 { return d.slow }

// Submit enqueues a work item that needs `work` of exclusive GPU time;
// done fires at completion. Non-positive work panics (profile bug).
func (d *Device) Submit(work time.Duration, done func()) {
	if work <= 0 {
		panic(fmt.Sprintf("gpusim %s: non-positive work %v", d.ID, work))
	}
	if d.slow > 1 {
		work = time.Duration(float64(work) * d.slow)
	}
	j := d.allocJob(work, done)
	switch d.Mode {
	case Exclusive:
		d.queue = append(d.queue, j)
		d.maybeStart()
	case Shared:
		d.advanceShared()
		if !d.isBusy() {
			d.markBusy()
		}
		d.shared[j] = struct{}{}
		d.rescheduleShared()
	}
}

// QueueLen returns the number of submitted-but-unfinished work items,
// including work queued on compute partitions.
func (d *Device) QueueLen() int {
	n := len(d.queue) - d.qhead + len(d.shared)
	if d.running != nil {
		n++
	}
	for _, p := range d.parts {
		n += len(p.queue) - p.qhead
		if p.running != nil {
			n++
		}
	}
	return n
}

// BusyTime returns accumulated busy time (including a current in-progress
// busy period up to now).
func (d *Device) BusyTime() time.Duration {
	b := d.busy
	if d.isBusy() {
		b += d.clock.Now() - d.busySince
	}
	return b
}

// Utilization returns BusyTime / elapsed since t0.
func (d *Device) Utilization(t0 time.Duration) float64 {
	elapsed := d.clock.Now() - t0
	if elapsed <= 0 {
		return 0
	}
	return float64(d.BusyTime()) / float64(elapsed)
}

func (d *Device) isBusy() bool {
	return d.running != nil || len(d.shared) > 0 || d.partRunning > 0
}

func (d *Device) markBusy() {
	d.busySince = d.clock.Now()
}

func (d *Device) markIdle() {
	d.busy += d.clock.Now() - d.busySince
}

// --- exclusive mode ----------------------------------------------------

func (d *Device) maybeStart() {
	if d.running != nil || d.qhead == len(d.queue) {
		return
	}
	j := d.queue[d.qhead]
	d.queue[d.qhead] = nil
	d.qhead++
	switch {
	case d.qhead == len(d.queue):
		// Drained: rewind to reuse the backing array.
		d.queue = d.queue[:0]
		d.qhead = 0
	case d.qhead > 64 && d.qhead*2 >= len(d.queue):
		// Mostly-consumed prefix: slide the tail down so a device that
		// never fully drains still has bounded queue memory.
		n := copy(d.queue, d.queue[d.qhead:])
		for i := n; i < len(d.queue); i++ {
			d.queue[i] = nil
		}
		d.queue = d.queue[:n]
		d.qhead = 0
	}
	if !d.isBusy() {
		d.markBusy()
	}
	d.running = j
	d.clock.After(j.work, d.execDone)
}

// onExclusiveDone completes the running job. It is bound once at device
// construction (see execDone) so job completion allocates no closure.
func (d *Device) onExclusiveDone() {
	j := d.running
	d.running = nil
	if !d.isBusy() {
		d.markIdle()
	}
	done := j.done
	d.recycleJob(j)
	if done != nil {
		done()
	}
	d.maybeStart()
}

// --- shared (processor sharing) mode ------------------------------------

// rate returns per-job progress per unit time with n concurrent jobs.
func sharedRate(n int) float64 {
	if n <= 0 {
		return 0
	}
	return 1 / (float64(n) * (1 + InterferenceOverhead*float64(n-1)))
}

// advanceShared applies elapsed progress to all active shared jobs.
func (d *Device) advanceShared() {
	now := d.clock.Now()
	elapsed := now - d.sharedAt
	d.sharedAt = now
	if elapsed <= 0 || len(d.shared) == 0 {
		return
	}
	progress := time.Duration(float64(elapsed) * sharedRate(len(d.shared)))
	for j := range d.shared {
		j.work -= progress
	}
}

// rescheduleShared sets the completion timer for the job with least
// remaining work.
func (d *Device) rescheduleShared() {
	d.sharedNext.Stop()
	d.sharedNext = simclock.Timer{}
	if len(d.shared) == 0 {
		return
	}
	var minJob *job
	for j := range d.shared {
		if minJob == nil || j.work < minJob.work {
			minJob = j
		}
	}
	rate := sharedRate(len(d.shared))
	wait := time.Duration(float64(minJob.work) / rate)
	if wait < 0 {
		wait = 0
	}
	d.sharedNext = d.clock.After(wait, d.sharedDone)
}

// onSharedDone fires when the shared job with least remaining work should
// finish. Bound once at construction (see sharedDone) to keep reschedules
// allocation-free.
func (d *Device) onSharedDone() {
	d.advanceShared()
	// Complete every job whose work is exhausted (ties finish together).
	finished := d.finBuf[:0]
	for j := range d.shared {
		if j.work <= time.Nanosecond {
			finished = append(finished, j)
		}
	}
	for _, j := range finished {
		delete(d.shared, j)
	}
	if !d.isBusy() {
		d.markIdle()
	}
	// Deterministic completion order: by submission sequence.
	for i := 0; i < len(finished); i++ {
		for k := i + 1; k < len(finished); k++ {
			if finished[k].seq < finished[i].seq {
				finished[i], finished[k] = finished[k], finished[i]
			}
		}
	}
	for _, j := range finished {
		done := j.done
		d.recycleJob(j)
		if done != nil {
			done()
		}
	}
	for i := range finished {
		finished[i] = nil
	}
	d.finBuf = finished[:0]
	d.rescheduleShared()
}
