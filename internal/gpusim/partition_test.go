package gpusim

import (
	"math"
	"testing"
	"time"

	"nexus/internal/profiler"
)

func TestPartitionFractionAccounting(t *testing.T) {
	_, d := newDev(Exclusive)
	a, err := d.Partition("a", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Partition("b", 0.6); err == nil {
		t.Fatal("overflowing fraction accepted")
	}
	if _, err := d.Partition("a", 0.25); err == nil {
		t.Fatal("duplicate partition id accepted")
	}
	if _, err := d.Partition("c", 0); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := d.Partition("c", 1.5); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	b, err := d.Partition("b", 0.5)
	if err != nil {
		t.Fatalf("exact fill rejected: %v", err)
	}
	// Releasing an idle partition frees its fraction immediately.
	a.Release()
	if !a.Released() {
		t.Fatal("idle partition not merged back on Release")
	}
	if _, err := d.Partition("c", 0.5); err != nil {
		t.Fatalf("freed fraction not reusable: %v", err)
	}
	_ = b
}

func TestPartitionSingleStreamMatchesExclusive(t *testing.T) {
	// One partition with no co-residents runs FIFO at full rate: identical
	// timing to the exclusive device path.
	c, d := newDev(Exclusive)
	p, err := d.Partition("p", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var done []time.Duration
	p.Submit(10*time.Millisecond, func() { done = append(done, c.Now()) })
	p.Submit(5*time.Millisecond, func() { done = append(done, c.Now()) })
	c.Run()
	if len(done) != 2 || done[0] != 10*time.Millisecond || done[1] != 15*time.Millisecond {
		t.Fatalf("completions = %v, want [10ms 15ms]", done)
	}
}

func TestPartitionCoResidencyInterference(t *testing.T) {
	// Two co-resident partitions each run at 1/(1+0.05): 10ms of work
	// finishes at 10.5ms — dedicated SMs, only the contention tax.
	c, d := newDev(Exclusive)
	a, _ := d.Partition("a", 0.5)
	b, _ := d.Partition("b", 0.5)
	var doneA, doneB time.Duration
	a.Submit(10*time.Millisecond, func() { doneA = c.Now() })
	b.Submit(10*time.Millisecond, func() { doneB = c.Now() })
	c.Run()
	want := time.Duration(float64(10*time.Millisecond) * (1 + profiler.SpatialInterference))
	if !approx(doneA, want, 50*time.Microsecond) || !approx(doneB, want, 50*time.Microsecond) {
		t.Fatalf("completions a=%v b=%v, want ~%v", doneA, doneB, want)
	}
}

func TestPartitionInterferenceOnlyWhileCoRunning(t *testing.T) {
	// b's job arrives after a's finishes: no overlap, no tax on either.
	c, d := newDev(Exclusive)
	a, _ := d.Partition("a", 0.5)
	b, _ := d.Partition("b", 0.5)
	var doneA, doneB time.Duration
	a.Submit(10*time.Millisecond, func() { doneA = c.Now() })
	c.At(20*time.Millisecond, func() {
		b.Submit(10*time.Millisecond, func() { doneB = c.Now() })
	})
	c.Run()
	if doneA != 10*time.Millisecond {
		t.Fatalf("a done at %v, want 10ms", doneA)
	}
	if doneB != 30*time.Millisecond {
		t.Fatalf("b done at %v, want 30ms", doneB)
	}
}

func TestPartitionReleaseDrainsFirst(t *testing.T) {
	c, d := newDev(Exclusive)
	p, _ := d.Partition("p", 0.5)
	var fired bool
	p.Submit(10*time.Millisecond, func() { fired = true })
	p.Release()
	if p.Released() {
		t.Fatal("partition merged back with work in flight")
	}
	c.Run()
	if !fired {
		t.Fatal("in-flight completion lost on Release")
	}
	if !p.Released() {
		t.Fatal("drained partition not merged back")
	}
	if len(d.Partitions()) != 0 {
		t.Fatalf("device still holds %d partitions", len(d.Partitions()))
	}
}

func TestPartitionBusyTimeMidBatch(t *testing.T) {
	// Satellite: sampling utilization mid-execution must include the
	// in-flight job's elapsed time — for the device and for the slice.
	c, d := newDev(Exclusive)
	p, _ := d.Partition("p", 0.5)
	p.Submit(time.Second, nil)
	c.RunUntil(400 * time.Millisecond)
	if got := p.BusyTime(); got != 400*time.Millisecond {
		t.Fatalf("partition mid-batch BusyTime = %v, want 400ms", got)
	}
	if got := d.BusyTime(); got != 400*time.Millisecond {
		t.Fatalf("device mid-batch BusyTime = %v, want 400ms", got)
	}
	if got := p.Utilization(0); math.Abs(got-1.0) > 0.01 {
		t.Fatalf("partition mid-batch utilization = %v, want 1.0", got)
	}
}

func TestDeviceBusyTimeMidBatchExclusive(t *testing.T) {
	// Satellite regression: a long-running exclusive batch contributes its
	// elapsed time to BusyTime while still executing.
	c, d := newDev(Exclusive)
	c.At(100*time.Millisecond, func() { d.Submit(time.Second, nil) })
	c.RunUntil(600 * time.Millisecond)
	if got := d.BusyTime(); got != 500*time.Millisecond {
		t.Fatalf("mid-batch BusyTime = %v, want 500ms", got)
	}
}

func TestDeviceBusyTimeMidBatchShared(t *testing.T) {
	c, d := newDev(Shared)
	d.Submit(time.Second, nil)
	d.Submit(time.Second, nil)
	c.RunUntil(300 * time.Millisecond)
	if got := d.BusyTime(); got != 300*time.Millisecond {
		t.Fatalf("shared mid-batch BusyTime = %v, want 300ms", got)
	}
}

func TestPartitionDeviceBusyIsUnion(t *testing.T) {
	// Two overlapping slices: device busy time counts wall-clock union,
	// not the sum of per-slice busy.
	c, d := newDev(Exclusive)
	a, _ := d.Partition("a", 0.5)
	b, _ := d.Partition("b", 0.5)
	a.Submit(10*time.Millisecond, nil)
	b.Submit(10*time.Millisecond, nil)
	c.Run()
	want := time.Duration(float64(10*time.Millisecond) * (1 + profiler.SpatialInterference))
	if !approx(d.BusyTime(), want, 50*time.Microsecond) {
		t.Fatalf("device BusyTime = %v, want ~%v (union)", d.BusyTime(), want)
	}
	if !approx(a.BusyTime(), want, 50*time.Microsecond) {
		t.Fatalf("slice BusyTime = %v, want ~%v", a.BusyTime(), want)
	}
}

func TestPartitionStragglerSlowdownApplies(t *testing.T) {
	c, d := newDev(Exclusive)
	p, _ := d.Partition("p", 0.5)
	d.SetSlowdown(2)
	var done time.Duration
	p.Submit(10*time.Millisecond, func() { done = c.Now() })
	c.Run()
	if done != 20*time.Millisecond {
		t.Fatalf("straggler slice done at %v, want 20ms", done)
	}
}

func TestPartitionSubmitAfterReleasePanics(t *testing.T) {
	_, d := newDev(Exclusive)
	p, _ := d.Partition("p", 0.5)
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("submit on released partition did not panic")
		}
	}()
	p.Submit(time.Millisecond, nil)
}

func TestPartitionTiesCompleteInSubmissionOrder(t *testing.T) {
	c, d := newDev(Exclusive)
	var order []string
	for _, id := range []string{"a", "b", "c", "d"} {
		id := id
		p, err := d.Partition(id, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		p.Submit(5*time.Millisecond, func() { order = append(order, id) })
	}
	c.Run()
	for i, id := range []string{"a", "b", "c", "d"} {
		if order[i] != id {
			t.Fatalf("completion order %v", order)
		}
	}
}

func TestPartitionQueueLenCountsSliceWork(t *testing.T) {
	_, d := newDev(Exclusive)
	p, _ := d.Partition("p", 0.5)
	p.Submit(10*time.Millisecond, nil)
	p.Submit(10*time.Millisecond, nil)
	if got := d.QueueLen(); got != 2 {
		t.Fatalf("device QueueLen = %d, want 2", got)
	}
	if got := p.QueueLen(); got != 2 {
		t.Fatalf("partition QueueLen = %d, want 2", got)
	}
}
