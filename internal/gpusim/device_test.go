package gpusim

import (
	"math"
	"testing"
	"time"

	"nexus/internal/profiler"
)

func TestUtilizationShared(t *testing.T) {
	c, d := newDev(Shared)
	d.Submit(10*time.Millisecond, nil)
	d.Submit(10*time.Millisecond, nil)
	// Both finish at 23ms (PS with 15% overhead); device busy 0-23ms.
	c.RunUntil(46 * time.Millisecond)
	if got := d.Utilization(0); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("shared utilization = %v, want 0.5", got)
	}
}

func TestSharedCompletionOrderDeterministic(t *testing.T) {
	// Equal jobs submitted in order must complete in submission order.
	c, d := newDev(Shared)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		d.Submit(5*time.Millisecond, func() { order = append(order, i) })
	}
	c.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("completion order %v", order)
		}
	}
}

func TestLoadTimeScalesWithBytes(t *testing.T) {
	small := LoadTime(64 << 20)
	big := LoadTime(4 << 30)
	if big <= small {
		t.Fatalf("LoadTime(4GiB)=%v not > LoadTime(64MiB)=%v", big, small)
	}
	// Fixed floor applies even to tiny models.
	if LoadTime(1) < 100*time.Millisecond {
		t.Fatal("load floor missing")
	}
}

func TestMemAccountingAcrossLoads(t *testing.T) {
	c, d := newDev(Exclusive)
	free0 := d.MemFree()
	if err := d.Load("a", 1<<30, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Load("b", 2<<30, nil); err != nil {
		t.Fatal(err)
	}
	if d.MemFree() != free0-3<<30 {
		t.Fatalf("MemFree = %d", d.MemFree())
	}
	if d.LoadedKeys() != 2 {
		t.Fatalf("LoadedKeys = %d", d.LoadedKeys())
	}
	d.Unload("a")
	if d.MemFree() != free0-2<<30 {
		t.Fatal("unload did not return memory")
	}
	c.Run()
}

func TestSpecsMatchProfilerTable(t *testing.T) {
	_, d := newDev(Exclusive)
	spec, err := profiler.Spec(profiler.GTX1080Ti)
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec.MemBytes != spec.MemBytes {
		t.Fatalf("device spec mismatch: %d vs %d", d.Spec.MemBytes, spec.MemBytes)
	}
}

func TestInterleavedVsExclusiveLatency(t *testing.T) {
	// The §6.3 motivation in one test: the same two batches take longer
	// for BOTH parties when interleaved than when serialized back to back.
	runShared := func() (a, b time.Duration) {
		c, d := newDev(Shared)
		d.Submit(10*time.Millisecond, func() { a = c.Now() })
		d.Submit(10*time.Millisecond, func() { b = c.Now() })
		c.Run()
		return
	}
	runExclusive := func() (a, b time.Duration) {
		c, d := newDev(Exclusive)
		d.Submit(10*time.Millisecond, func() { a = c.Now() })
		d.Submit(10*time.Millisecond, func() { b = c.Now() })
		c.Run()
		return
	}
	sa, sb := runShared()
	ea, eb := runExclusive()
	if sa <= ea {
		t.Fatalf("interleaving should delay the first job: %v vs %v", sa, ea)
	}
	if sb <= eb {
		t.Fatalf("interleaving should delay the second job too: %v vs %v", sb, eb)
	}
	// Total device time is also worse (the 15% overhead).
	if sb <= 20*time.Millisecond {
		t.Fatalf("shared makespan %v should exceed the 20ms of work", sb)
	}
}

func TestSubmitDuringSharedDrain(t *testing.T) {
	// A job arriving exactly when another finishes must not corrupt the
	// PS bookkeeping.
	c, d := newDev(Shared)
	var done int
	d.Submit(10*time.Millisecond, func() { done++ })
	c.At(10*time.Millisecond, func() {
		d.Submit(5*time.Millisecond, func() { done++ })
	})
	c.Run()
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if d.QueueLen() != 0 {
		t.Fatal("jobs left behind")
	}
}
