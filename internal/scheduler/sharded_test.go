package scheduler

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"nexus/internal/profiler"
)

func TestShardOfDeterministic(t *testing.T) {
	for _, id := range []string{"a", "session-7", "game/chat"} {
		k := ShardOf(id, 8)
		if k < 0 || k >= 8 {
			t.Fatalf("ShardOf(%q, 8) = %d out of range", id, k)
		}
		if k2 := ShardOf(id, 8); k2 != k {
			t.Fatalf("ShardOf(%q) not stable: %d then %d", id, k, k2)
		}
		if ShardOf(id, 1) != 0 {
			t.Fatalf("ShardOf(%q, 1) != 0", id)
		}
	}
}

func TestNodeShardRoundTrip(t *testing.T) {
	id := shardNodeID(3, 8, "n7")
	if id != "s3/n7" {
		t.Fatalf("shardNodeID = %q, want s3/n7", id)
	}
	k, ok := NodeShard(id)
	if !ok || k != 3 {
		t.Fatalf("NodeShard(%q) = %d, %v", id, k, ok)
	}
	if bare := shardNodeID(0, 1, "n7"); bare != "n7" {
		t.Fatalf("single-shard node ID = %q, want bare n7", bare)
	}
	for _, bad := range []string{"n7", "s/n7", "sx/n7", "", "saturated"} {
		if _, ok := NodeShard(bad); ok {
			t.Fatalf("NodeShard(%q) parsed a shard", bad)
		}
	}
}

// shardWorkload builds a mixed workload big enough to populate several
// shards: tiny residual sessions plus a few saturated ones.
func shardWorkload(n int) ([]Session, map[string]*profiler.Profile) {
	profiles := map[string]*profiler.Profile{
		"m0": linearProfile("m0", time.Millisecond, 5*time.Millisecond, 32),
		"m1": linearProfile("m1", 2*time.Millisecond, 8*time.Millisecond, 32),
	}
	sessions := make([]Session, n)
	for i := range sessions {
		rate := 400 / float64(1+i%11)
		sessions[i] = Session{
			ID:      fmt.Sprintf("s%03d", i),
			ModelID: fmt.Sprintf("m%d", i%2),
			SLO:     time.Duration(100+50*(i%4)) * time.Millisecond,
			Rate:    rate,
		}
	}
	return sessions, profiles
}

// TestShardedOneShardMatchesPack: with a single shard the sharded planner is
// byte-identical to the monolithic Pack — no ID prefixes, no rebalance, same
// packing. This is what lets Shards=1 reuse the monolithic goldens.
func TestShardedOneShardMatchesPack(t *testing.T) {
	sessions, profiles := shardWorkload(24)
	want, err := Pack(sessions, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sp := NewShardPlanner(1)
	res, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Plan, want) {
		t.Fatalf("1-shard plan differs from monolithic Pack:\n got %+v\nwant %+v", res.Plan, want)
	}
	if res.Stats.Shards != 1 || res.Stats.Replanned != 1 || res.Stats.Skipped != 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestShardedMergedPlanValid(t *testing.T) {
	sessions, profiles := shardWorkload(40)
	for _, shards := range []int{2, 4, 8} {
		sp := NewShardPlanner(shards)
		res, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if err := Validate(res.Plan, sessions, profiles, Config{}); err != nil {
			t.Fatalf("shards=%d: merged plan invalid: %v", shards, err)
		}
		for _, g := range res.Plan.GPUs {
			if _, ok := NodeShard(g.ID); !ok {
				t.Fatalf("shards=%d: node %q lacks shard prefix", shards, g.ID)
			}
		}
	}
}

// TestShardedDeterministicAcrossWorkers: worker count is a throughput knob,
// never a planning input — merged plans must match at any parallelism.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	sessions, profiles := shardWorkload(48)
	var want *Plan
	for _, workers := range []int{1, 2, 8} {
		sp := NewShardPlanner(8)
		res, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = res.Plan
			continue
		}
		if !reflect.DeepEqual(res.Plan, want) {
			t.Fatalf("workers=%d: plan differs from workers=1", workers)
		}
	}
}

// TestShardedHysteresisSkip: an unchanged workload re-plans nothing; every
// shard carries its plan forward verbatim.
func TestShardedHysteresisSkip(t *testing.T) {
	sessions, profiles := shardWorkload(24)
	sp := NewShardPlanner(2)
	first, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{Incremental: true, Hysteresis: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	sp.Commit(first)
	second, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{Incremental: true, Hysteresis: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Skipped != 2 || second.Stats.Replanned != 0 {
		t.Fatalf("unchanged epoch: %+v", second.Stats)
	}
	if !reflect.DeepEqual(second.Plan, first.Plan) {
		t.Fatal("carried-forward plan differs from committed plan")
	}
	if second.Stats.NodesKept != len(first.Plan.GPUs) {
		t.Fatalf("NodesKept = %d, want %d", second.Stats.NodesKept, len(first.Plan.GPUs))
	}

	// In-band wobble (well under 5% and under the absolute floor) still skips.
	wobbled := make([]Session, len(sessions))
	copy(wobbled, sessions)
	for i := range wobbled {
		wobbled[i].Rate *= 1.001
	}
	third, err := sp.Plan(wobbled, profiles, Config{}, ShardOpts{Incremental: true, Hysteresis: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if third.Stats.Skipped != 2 {
		t.Fatalf("in-band wobble re-planned: %+v", third.Stats)
	}
}

// TestShardedHysteresisDirtyShardOnly: a material rate change re-plans the
// session's shard and only that shard.
func TestShardedHysteresisDirtyShardOnly(t *testing.T) {
	sessions, profiles := shardWorkload(24)
	sp := NewShardPlanner(4)
	first, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{Incremental: true, Hysteresis: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	sp.Commit(first)
	changed := make([]Session, len(sessions))
	copy(changed, sessions)
	changed[0].Rate *= 2
	second, err := sp.Plan(changed, profiles, Config{}, ShardOpts{Incremental: true, Hysteresis: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Replanned != 1 || second.Stats.Skipped != 3 {
		t.Fatalf("one dirty session re-planned %d shards (skipped %d), want 1 (3)",
			second.Stats.Replanned, second.Stats.Skipped)
	}
	if err := Validate(second.Plan, changed, profiles, Config{}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedForceReplansAll: admission-control re-iterations mark every
// shard dirty so globally scaled rates take effect everywhere.
func TestShardedForceReplansAll(t *testing.T) {
	sessions, profiles := shardWorkload(24)
	sp := NewShardPlanner(4)
	first, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{Incremental: true, Hysteresis: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	sp.Commit(first)
	second, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{Incremental: true, Hysteresis: 0.05, Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Replanned != 4 || second.Stats.Skipped != 0 {
		t.Fatalf("Force: %+v", second.Stats)
	}
}

// TestShardedPlanIsPure: Plan never mutates the planner; only Commit does.
// The control plane relies on this to iterate admission control safely.
func TestShardedPlanIsPure(t *testing.T) {
	sessions, profiles := shardWorkload(24)
	sp := NewShardPlanner(2)
	first, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{Incremental: true, Hysteresis: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// No Commit: a second identical Plan call must still see no previous
	// state and re-plan everything, identically.
	second, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{Incremental: true, Hysteresis: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Replanned != 2 {
		t.Fatalf("uncommitted Plan leaked state: %+v", second.Stats)
	}
	if !reflect.DeepEqual(second.Plan, first.Plan) {
		t.Fatal("repeated uncommitted Plan calls disagree")
	}
}

// TestShardedRebalanceConsolidates: tiny sessions that land in different
// shards leave each shard with a low-occupancy tail node; the cross-shard
// rebalance drains those into one another's spare duty cycle.
func TestShardedRebalanceConsolidates(t *testing.T) {
	profiles := map[string]*profiler.Profile{
		"m": linearProfile("m", time.Millisecond, 5*time.Millisecond, 32),
	}
	var sessions []Session
	for i := 0; i < 8; i++ {
		sessions = append(sessions, Session{
			ID: fmt.Sprintf("tiny%d", i), ModelID: "m",
			SLO: 500 * time.Millisecond, Rate: 3,
		})
	}
	mono, err := Pack(sessions, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sp := NewShardPlanner(2)
	res, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res.Plan, sessions, profiles, Config{}); err != nil {
		t.Fatalf("rebalanced plan invalid: %v", err)
	}
	if res.Stats.CrossShardMoves == 0 {
		t.Fatalf("expected cross-shard moves, got %+v", res.Stats)
	}
	// Consolidation should close the gap to the monolithic GPU count.
	if res.Plan.GPUCount() != mono.GPUCount() {
		t.Fatalf("sharded used %d GPUs, monolithic %d", res.Plan.GPUCount(), mono.GPUCount())
	}

	// Migrated sessions keep their new home: after Commit, planning the same
	// workload again must not move them back.
	sp.Commit(res)
	again, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.CrossShardMoves != 0 {
		t.Fatalf("rebalance flapped: %+v", again.Stats)
	}
	if again.Plan.GPUCount() != res.Plan.GPUCount() {
		t.Fatalf("post-migration GPU count moved %d -> %d",
			res.Plan.GPUCount(), again.Plan.GPUCount())
	}
	if err := Validate(again.Plan, sessions, profiles, Config{}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSaturatedPinned: sessions holding saturated GPUs in their home
// shard are never migrated by the rebalance.
func TestShardedSaturatedPinned(t *testing.T) {
	profiles := map[string]*profiler.Profile{
		"m": linearProfile("m", time.Millisecond, 5*time.Millisecond, 32),
	}
	// One big session per shard (saturated GPUs + a residual tail node),
	// plus tiny sessions to create donor candidates.
	sessions := []Session{
		{ID: "big0", ModelID: "m", SLO: 200 * time.Millisecond, Rate: 900},
		{ID: "big1", ModelID: "m", SLO: 200 * time.Millisecond, Rate: 900},
	}
	for i := 0; i < 6; i++ {
		sessions = append(sessions, Session{
			ID: fmt.Sprintf("tiny%d", i), ModelID: "m",
			SLO: 500 * time.Millisecond, Rate: 3,
		})
	}
	sp := NewShardPlanner(2)
	res, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res.Plan, sessions, profiles, Config{}); err != nil {
		t.Fatal(err)
	}
	// The big sessions' residual allocations must still sit in the shard
	// that holds their saturated nodes.
	satShard := map[string]int{}
	for _, g := range res.Plan.GPUs {
		if !g.Saturated {
			continue
		}
		k, _ := NodeShard(g.ID)
		for _, a := range g.Allocs {
			satShard[a.SessionID] = k
		}
	}
	for _, g := range res.Plan.GPUs {
		if g.Saturated {
			continue
		}
		k, _ := NodeShard(g.ID)
		for _, a := range g.Allocs {
			if want, ok := satShard[a.SessionID]; ok && k != want {
				t.Fatalf("session %s residual in shard %d, saturated GPUs in %d",
					a.SessionID, k, want)
			}
		}
	}
}
