package scheduler

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"nexus/internal/profiler"
)

// benchWorkload builds a production-scale scheduling input: nModels linear
// batching profiles and nSessions sessions with zipf-ish rates and mixed
// SLOs, the shape §7.4's large-scale experiments stress.
func benchWorkload(nModels, nSessions int) ([]Session, map[string]*profiler.Profile) {
	rng := rand.New(rand.NewSource(42))
	profiles := make(map[string]*profiler.Profile, nModels)
	for m := 0; m < nModels; m++ {
		id := fmt.Sprintf("m%03d", m)
		p := &profiler.Profile{
			ModelID: id, GPU: profiler.GTX1080Ti,
			Alpha:    time.Duration(rng.Intn(1500)+200) * time.Microsecond,
			Beta:     time.Duration(rng.Intn(8)+2) * time.Millisecond,
			MaxBatch: 64,
			MemBase:  1 << 28, MemPerItem: 1 << 20,
		}
		if err := p.Validate(); err != nil {
			panic(err)
		}
		profiles[id] = p
	}
	sessions := make([]Session, nSessions)
	for s := range sessions {
		rate := 400 / float64(1+s%37) // heavy head, long tail
		sessions[s] = Session{
			ID:      fmt.Sprintf("s%04d", s),
			ModelID: fmt.Sprintf("m%03d", s%nModels),
			SLO:     time.Duration(50+25*(s%8)) * time.Millisecond,
			Rate:    rate,
		}
	}
	return sessions, profiles
}

// BenchmarkPackLargeScale measures one squishy-bin-packing epoch over a
// thousand-session cluster — the control-plane hot path that the memoized
// batch-latency tables accelerate.
func BenchmarkPackLargeScale(b *testing.B) {
	sessions, profiles := benchWorkload(40, 1200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := Pack(sessions, profiles, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if plan.GPUCount() == 0 {
			b.Fatal("empty plan")
		}
	}
}

// bench10kWorkload sizes a workload so the resulting plan lands at ~10k GPU
// nodes — the scale regime the north star targets. Rates are inflated over
// benchWorkload's so saturated whole-GPU allocations carry most of the GPU
// count while the 6k-session residue keeps the merge phase (the quadratic
// scaling wall sharding attacks) realistic.
func bench10kWorkload() ([]Session, map[string]*profiler.Profile) {
	sessions, profiles := benchWorkload(40, 6000)
	for i := range sessions {
		sessions[i].Rate *= 40
	}
	return sessions, profiles
}

// BenchmarkPack10kGPU is the sharded-planner sweep at 10k-GPU scale:
// shards=1 is the monolithic baseline (the 1-shard planner is byte-identical
// to Pack), shards=2/4/8 show the parallel-partition speedup, and
// incremental-nochange measures a hysteresis epoch where no shard re-plans.
func BenchmarkPack10kGPU(b *testing.B) {
	sessions, profiles := bench10kWorkload()
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sp := NewShardPlanner(shards)
				res, err := sp.Plan(sessions, profiles, Config{}, ShardOpts{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Plan.GPUCount() < 9000 {
					b.Fatalf("plan has %d GPUs, want ~10k", res.Plan.GPUCount())
				}
			}
		})
	}
	b.Run("incremental-nochange", func(b *testing.B) {
		sp := NewShardPlanner(8)
		opts := ShardOpts{Incremental: true, Hysteresis: 0.05}
		res, err := sp.Plan(sessions, profiles, Config{}, opts)
		if err != nil {
			b.Fatal(err)
		}
		sp.Commit(res)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sp.Plan(sessions, profiles, Config{}, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.Skipped != 8 {
				b.Fatalf("no-change epoch re-planned: %+v", res.Stats)
			}
		}
	})
}
