package scheduler

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"nexus/internal/profiler"
)

// benchWorkload builds a production-scale scheduling input: nModels linear
// batching profiles and nSessions sessions with zipf-ish rates and mixed
// SLOs, the shape §7.4's large-scale experiments stress.
func benchWorkload(nModels, nSessions int) ([]Session, map[string]*profiler.Profile) {
	rng := rand.New(rand.NewSource(42))
	profiles := make(map[string]*profiler.Profile, nModels)
	for m := 0; m < nModels; m++ {
		id := fmt.Sprintf("m%03d", m)
		p := &profiler.Profile{
			ModelID: id, GPU: profiler.GTX1080Ti,
			Alpha:    time.Duration(rng.Intn(1500)+200) * time.Microsecond,
			Beta:     time.Duration(rng.Intn(8)+2) * time.Millisecond,
			MaxBatch: 64,
			MemBase:  1 << 28, MemPerItem: 1 << 20,
		}
		if err := p.Validate(); err != nil {
			panic(err)
		}
		profiles[id] = p
	}
	sessions := make([]Session, nSessions)
	for s := range sessions {
		rate := 400 / float64(1+s%37) // heavy head, long tail
		sessions[s] = Session{
			ID:      fmt.Sprintf("s%04d", s),
			ModelID: fmt.Sprintf("m%03d", s%nModels),
			SLO:     time.Duration(50+25*(s%8)) * time.Millisecond,
			Rate:    rate,
		}
	}
	return sessions, profiles
}

// BenchmarkPackLargeScale measures one squishy-bin-packing epoch over a
// thousand-session cluster — the control-plane hot path that the memoized
// batch-latency tables accelerate.
func BenchmarkPackLargeScale(b *testing.B) {
	sessions, profiles := benchWorkload(40, 1200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := Pack(sessions, profiles, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if plan.GPUCount() == 0 {
			b.Fatal("empty plan")
		}
	}
}
