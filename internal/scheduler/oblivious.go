package scheduler

import (
	"fmt"
	"sort"

	"nexus/internal/profiler"
)

// BatchOblivious is the baseline scheduler furnished to Clipper and TF
// Serving in §7.2: it "greedily allocates to each model/SLO a share of the
// cluster proportional to its request rate and inversely proportional to
// its maximum single-node throughput". It ignores how co-location and duty
// cycles interact with batching — the runtime adapts batch sizes on its own.
//
// The resulting plan uses Share (fraction of a GPU) rather than duty
// cycles: Duty is zero and Batch is only a dispatch hint (the largest batch
// whose execution meets the SLO). Such plans are executed by the baseline
// backends, not validated by Validate.
func BatchOblivious(sessions []Session, profiles map[string]*profiler.Profile, gpuCount int, cfg Config) (*Plan, error) {
	if gpuCount < 1 {
		return nil, fmt.Errorf("scheduler: BatchOblivious with %d GPUs", gpuCount)
	}
	type load struct {
		s     Session
		p     *profiler.Profile
		gpus  float64 // demanded share of the cluster, in GPUs
		batch int
	}
	var loads []load
	var total float64
	for _, s := range sortSessions(sessions) {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if s.Rate == 0 {
			continue
		}
		p, ok := profiles[s.ModelID]
		if !ok {
			return nil, fmt.Errorf("scheduler: no profile for model %s (session %s)", s.ModelID, s.ID)
		}
		// Max single-node throughput, oblivious to SLO interactions.
		maxTput := p.Throughput(p.MaxBatch)
		// Dispatch hint: largest batch that executes within the SLO.
		hint := p.MaxBatchWithin(s.SLO)
		if hint == 0 {
			hint = 1
		}
		l := load{s: s, p: p, gpus: s.Rate / maxTput, batch: hint}
		total += l.gpus
		loads = append(loads, l)
	}
	if len(loads) == 0 {
		return &Plan{}, nil
	}
	// Scale demanded shares onto the fixed cluster size.
	scale := float64(gpuCount) / total
	for i := range loads {
		loads[i].gpus *= scale
	}
	// Integral replica placement: a session gets round(share) whole
	// containers (at least one); each replica lands on the GPU with the
	// most free compute share that can fit the model in memory. Containers
	// are not fractional — the baseline cannot pool a session's load
	// across the whole cluster the way a hypothetical fluid split would.
	sort.SliceStable(loads, func(i, j int) bool { return loads[i].gpus > loads[j].gpus })
	plan := &Plan{GPUs: make([]GPUPlan, gpuCount)}
	free := make([]float64, gpuCount)
	memFree := make([]int64, gpuCount)
	for i := range free {
		free[i] = 1
		memFree[i] = cfg.GPUMemBytes
	}
	for _, l := range loads {
		replicas := int(l.gpus + 0.5)
		if replicas < 1 {
			replicas = 1
		}
		if replicas > gpuCount {
			replicas = gpuCount
		}
		perShare := l.gpus / float64(replicas)
		memNeed := l.p.MemBase + int64(l.batch)*l.p.MemPerItem
		used := make(map[int]bool, replicas)
		for r := 0; r < replicas; r++ {
			best := -1
			for g := 0; g < gpuCount; g++ {
				if used[g] {
					continue
				}
				if cfg.GPUMemBytes > 0 && memFree[g] < memNeed {
					continue
				}
				if best == -1 || free[g] > free[best] {
					best = g
				}
			}
			if best == -1 {
				if r > 0 {
					break // serve with fewer replicas than ideal
				}
				return nil, fmt.Errorf("scheduler: no GPU has memory for model %s", l.s.ModelID)
			}
			used[best] = true
			free[best] -= perShare
			memFree[best] -= memNeed
			plan.GPUs[best].Allocs = append(plan.GPUs[best].Allocs, Alloc{
				SessionID: l.s.ID,
				ModelID:   l.s.ModelID,
				Batch:     l.batch,
				Rate:      l.s.Rate / float64(replicas),
				Share:     perShare,
			})
		}
	}
	// Drop unused bins so GPUCount reflects reality.
	used := plan.GPUs[:0]
	for _, g := range plan.GPUs {
		if len(g.Allocs) > 0 {
			used = append(used, g)
		}
	}
	plan.GPUs = used
	return plan, nil
}
