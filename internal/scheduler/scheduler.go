// Package scheduler implements Nexus's batching-aware GPU cluster
// scheduling: squishy bin packing (§6.1, Algorithm 1), the batch-oblivious
// baseline used for comparison (§7.2), and incremental epoch re-scheduling
// (§6.1 "we extend the algorithm to be incremental across epochs").
//
// The scheduler consumes sessions — (model, latency SLO, request rate)
// triples — and batching profiles, and produces a Plan: a set of GPU nodes,
// each with the sessions it hosts, their target batch sizes, and the node's
// duty cycle. Plan validity (SLOs met in the worst case, duty cycles
// feasible, throughput covered, memory respected) is checked by Validate,
// which tests and simulations rely on.
package scheduler

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nexus/internal/profiler"
)

// Session is a stream of requests for one model under one latency SLO
// (§6.1 "Inputs"). Requests from different users and applications that
// invoke the same model with the same SLO belong to the same session.
type Session struct {
	ID      string
	ModelID string
	SLO     time.Duration
	Rate    float64 // request rate, req/s
}

// Validate checks session fields.
func (s Session) Validate() error {
	if s.ID == "" || s.ModelID == "" {
		return fmt.Errorf("scheduler: session with empty id/model (%+v)", s)
	}
	if s.SLO <= 0 {
		return fmt.Errorf("scheduler: session %s has non-positive SLO", s.ID)
	}
	if s.Rate < 0 || math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) {
		return fmt.Errorf("scheduler: session %s has invalid rate %v", s.ID, s.Rate)
	}
	return nil
}

// Alloc is one session's allocation on one GPU node.
type Alloc struct {
	SessionID string
	ModelID   string
	Batch     int     // target batch size on this node
	Rate      float64 // request rate this node serves for the session
	Share     float64 // fractional GPU share (batch-oblivious plans only)
	// Slice is the fractional-SM compute slice the session is pinned to on
	// a spatial node (0 on temporal nodes). Unlike Share it is a real
	// partition: the session runs concurrently with its co-residents on
	// dedicated SMs instead of taking turns in a duty cycle.
	Slice float64
}

// GPUPlan is the schedule of one GPU: the sessions it hosts and the duty
// cycle within which it round-robins through their batches (§4.1).
type GPUPlan struct {
	// ID names the node stably across incremental epochs, so the control
	// plane can map plan nodes onto physical backends and move as few
	// models as possible.
	ID        string
	Duty      time.Duration
	Allocs    []Alloc
	Saturated bool // a whole-GPU node created by ScheduleSaturate
	// Spatial marks a node multiplexed by fractional-SM slices instead of a
	// duty cycle: Duty is 0 and every alloc carries its Slice fraction.
	Spatial bool
}

// Occupancy returns the bin-packing "fill" metric: for temporal nodes the
// fraction of the duty cycle consumed by batch executions (Algorithm 1),
// for spatial nodes the fraction of the device's SMs handed out as slices.
func (g *GPUPlan) Occupancy(profiles map[string]*profiler.Profile) (float64, error) {
	if g.Spatial {
		var sum float64
		for _, a := range g.Allocs {
			sum += a.Slice
		}
		return sum, nil
	}
	if g.Duty <= 0 {
		return 0, fmt.Errorf("scheduler: node has non-positive duty cycle %v", g.Duty)
	}
	var busy time.Duration
	for _, a := range g.Allocs {
		p, ok := profiles[a.ModelID]
		if !ok {
			return 0, fmt.Errorf("scheduler: no profile for model %s", a.ModelID)
		}
		busy += p.BatchLatency(a.Batch)
	}
	return float64(busy) / float64(g.Duty), nil
}

// MemBytes returns the memory the node's models need.
func (g *GPUPlan) MemBytes(profiles map[string]*profiler.Profile) int64 {
	var sum int64
	for _, a := range g.Allocs {
		if p, ok := profiles[a.ModelID]; ok {
			sum += p.MemBase + int64(a.Batch)*p.MemPerItem
		}
	}
	return sum
}

// Plan is a full cluster schedule.
type Plan struct {
	GPUs []GPUPlan
}

// GPUCount returns the number of GPU nodes the plan uses.
func (p *Plan) GPUCount() int { return len(p.GPUs) }

// SessionRate returns the total rate the plan serves for a session.
func (p *Plan) SessionRate(id string) float64 {
	var sum float64
	for _, g := range p.GPUs {
		for _, a := range g.Allocs {
			if a.SessionID == id {
				sum += a.Rate
			}
		}
	}
	return sum
}

// Placement selects which multiplexing axes the packer may use for
// residual (non-saturating) sessions.
type Placement int

const (
	// PlaceTemporal packs residuals into shared duty cycles only — the
	// paper's Algorithm 1 and the zero-value default.
	PlaceTemporal Placement = iota
	// PlaceSpatial pins every residual that fits one to a fractional-SM
	// compute slice; sessions no slice can serve fall back to temporal.
	PlaceSpatial
	// PlaceHybrid chooses per session: a slice when it costs less GPU than
	// the session's duty-cycle occupancy, temporal otherwise.
	PlaceHybrid
)

// String names the placement for audit records and experiment tables.
func (p Placement) String() string {
	switch p {
	case PlaceSpatial:
		return "spatial"
	case PlaceHybrid:
		return "hybrid"
	default:
		return "temporal"
	}
}

// DefaultSliceGranularity is the number of equal compute slices a GPU
// divides into when Config.SliceGranularity is unset.
const DefaultSliceGranularity = 8

// Config tunes the packing algorithms.
type Config struct {
	// GPUMemBytes caps per-node model memory; 0 disables the check.
	GPUMemBytes int64
	// SLOFactor is the worst-case multiplier for saturated nodes: a task
	// that misses a batch waits for the next one, so worst-case latency is
	// SLOFactor*ℓ(B) (§4.1 uses 2). Values below 2 are unsafe; above 2 are
	// conservative. Zero means 2.
	SLOFactor float64
	// Placement selects temporal, spatial, or hybrid packing of residual
	// sessions. The zero value keeps the paper's temporal-only behaviour.
	Placement Placement
	// SliceGranularity is the number of equal fractions a GPU's SMs divide
	// into for spatial placement (MIG-style); 0 means
	// DefaultSliceGranularity.
	SliceGranularity int
}

func (c Config) sloFactor() float64 {
	if c.SLOFactor == 0 {
		return 2
	}
	return c.SLOFactor
}

func (c Config) sliceGranularity() int {
	if c.SliceGranularity <= 0 {
		return DefaultSliceGranularity
	}
	return c.SliceGranularity
}

// rateEpsilon absorbs floating-point slack in throughput-coverage checks.
const rateEpsilon = 1e-6

// Validate checks that plan is a correct schedule for the sessions:
//
//  1. Each node's batch executions fit within its duty cycle.
//  2. Each alloc's worst-case latency meets its session's SLO:
//     2ℓ(B) for saturated nodes, duty+ℓ(b) for shared nodes (§4.1).
//  3. Each session's demanded rate is covered across nodes.
//  4. Node memory fits within cfg.GPUMemBytes (when set).
func Validate(plan *Plan, sessions []Session, profiles map[string]*profiler.Profile, cfg Config) error {
	byID := make(map[string]Session, len(sessions))
	for _, s := range sessions {
		byID[s.ID] = s
	}
	for gi := range plan.GPUs {
		g := &plan.GPUs[gi]
		if len(g.Allocs) == 0 {
			return fmt.Errorf("scheduler: node %d has no allocations", gi)
		}
		occ, err := g.Occupancy(profiles)
		if err != nil {
			return err
		}
		if occ > 1+1e-9 {
			return fmt.Errorf("scheduler: node %d overcommitted: occupancy %.4f", gi, occ)
		}
		if cfg.GPUMemBytes > 0 {
			if mem := g.MemBytes(profiles); mem > cfg.GPUMemBytes {
				return fmt.Errorf("scheduler: node %d uses %d bytes > capacity %d", gi, mem, cfg.GPUMemBytes)
			}
		}
		for _, a := range g.Allocs {
			s, ok := byID[a.SessionID]
			if !ok {
				return fmt.Errorf("scheduler: node %d allocates unknown session %s", gi, a.SessionID)
			}
			if a.Batch < 1 {
				return fmt.Errorf("scheduler: node %d session %s has batch %d", gi, a.SessionID, a.Batch)
			}
			p, ok := profiles[a.ModelID]
			if !ok {
				return fmt.Errorf("scheduler: no profile for model %s", a.ModelID)
			}
			if g.Spatial {
				// A pinned slice serves its session alone: worst-case wait
				// is the batch-gather window, clamped by the SLO timeout the
				// backend flushes on, so the binding constraints are that a
				// batch executes within the SLO at all (with slack for the
				// wait) and that the slice's service rate sustains the load
				// under worst-case co-residency interference.
				if a.Slice <= 0 || a.Slice > 1+1e-9 {
					return fmt.Errorf("scheduler: node %d session %s slice %v out of (0,1]", gi, a.SessionID, a.Slice)
				}
				q := p.SliceProfile(a.Slice, spatialWorstCo(a.Slice, cfg.sliceGranularity()))
				lat := q.BatchLatency(a.Batch)
				if lat >= s.SLO {
					return fmt.Errorf("scheduler: node %d session %s slice latency %v exceeds SLO %v",
						gi, a.SessionID, lat, s.SLO)
				}
				if q.Throughput(a.Batch)+rateEpsilon < a.Rate {
					return fmt.Errorf("scheduler: node %d session %s slice serves %.3f r/s < allocated %.3f",
						gi, a.SessionID, q.Throughput(a.Batch), a.Rate)
				}
				continue
			}
			var worst time.Duration
			if g.Saturated {
				worst = time.Duration(cfg.sloFactor() * float64(p.BatchLatency(a.Batch)))
			} else {
				worst = g.Duty + p.BatchLatency(a.Batch)
			}
			if worst > s.SLO {
				return fmt.Errorf("scheduler: node %d session %s worst-case %v exceeds SLO %v",
					gi, a.SessionID, worst, s.SLO)
			}
		}
	}
	for _, s := range sessions {
		if s.Rate <= 0 {
			continue
		}
		if got := plan.SessionRate(s.ID); got+rateEpsilon < s.Rate {
			return fmt.Errorf("scheduler: session %s served %.3f r/s < demanded %.3f", s.ID, got, s.Rate)
		}
	}
	return nil
}

// sortSessions returns a copy sorted by ID for deterministic iteration.
func sortSessions(sessions []Session) []Session {
	out := make([]Session, len(sessions))
	copy(out, sessions)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
